//! Criterion benchmarks of the rate-region machinery: per-protocol
//! sum-rate LPs (the Fig. 3 inner loop) and full boundary traces (the
//! Fig. 4 inner loop).

use bcc_bench::fig4_network;
use bcc_core::protocol::{Bound, Protocol};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_sum_rate(c: &mut Criterion) {
    let net = fig4_network(10.0);
    let mut group = c.benchmark_group("sum_rate_lp");
    for proto in Protocol::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(proto.name()), &proto, |b, &p| {
            b.iter(|| black_box(net.max_sum_rate(p).unwrap().sum_rate))
        });
    }
    group.finish();
}

fn bench_boundary(c: &mut Criterion) {
    let net = fig4_network(10.0);
    let mut group = c.benchmark_group("region_boundary_32pts");
    group.sample_size(20);
    for proto in [Protocol::Mabc, Protocol::Tdbc, Protocol::Hbc] {
        let region = net.region(proto, Bound::Inner);
        group.bench_with_input(BenchmarkId::from_parameter(proto.name()), &region, |b, r| {
            b.iter(|| black_box(r.boundary(32).unwrap().len()))
        });
    }
    group.finish();
}

fn bench_membership(c: &mut Criterion) {
    let net = fig4_network(10.0);
    let hbc = net.region(Protocol::Hbc, Bound::Inner);
    c.bench_function("region_contains_hbc", |b| {
        b.iter(|| black_box(hbc.contains(0.8, 0.9)))
    });
}

criterion_group!(benches, bench_sum_rate, bench_boundary, bench_membership);
criterion_main!(benches);
