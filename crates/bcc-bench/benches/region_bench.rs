//! Criterion benchmarks of the rate-region machinery: per-protocol
//! sum-rate LPs (the Fig. 3 inner loop), full boundary traces (the
//! Fig. 4 inner loop), and the batched `Scenario` sweep against the naive
//! per-point loop it replaced.

use bcc_bench::fig4_network;
use bcc_core::protocol::{Bound, Protocol};
use bcc_core::scenario::Scenario;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_sum_rate(c: &mut Criterion) {
    let net = fig4_network(10.0);
    let mut group = c.benchmark_group("sum_rate_lp");
    for proto in Protocol::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(proto.name()),
            &proto,
            |b, &p| b.iter(|| black_box(net.max_sum_rate(p).unwrap().sum_rate)),
        );
    }
    group.finish();
}

fn bench_boundary(c: &mut Criterion) {
    let net = fig4_network(10.0);
    let mut group = c.benchmark_group("region_boundary_32pts");
    group.sample_size(20);
    for proto in [Protocol::Mabc, Protocol::Tdbc, Protocol::Hbc] {
        let region = net.region(proto, Bound::Inner);
        group.bench_with_input(
            BenchmarkId::from_parameter(proto.name()),
            &region,
            |b, r| b.iter(|| black_box(r.boundary(32).unwrap().len())),
        );
    }
    group.finish();
}

fn bench_membership(c: &mut Criterion) {
    let net = fig4_network(10.0);
    let hbc = net.region(Protocol::Hbc, Bound::Inner);
    c.bench_function("region_contains_hbc", |b| {
        b.iter(|| black_box(hbc.contains(0.8, 0.9)))
    });
}

fn bench_batched_sweep(c: &mut Criterion) {
    // The Fig. 3 inner loop both ways: the batch evaluator (one reused LP
    // workspace for the whole grid) versus fresh per-point evaluation.
    let net = fig4_network(0.0);
    let powers: Vec<f64> = (-10..=25).map(f64::from).collect();
    let mut group = c.benchmark_group("power_sweep_36pts");
    group.bench_with_input(BenchmarkId::from_parameter("batched"), &powers, |b, ps| {
        b.iter(|| {
            let sweep = Scenario::power_sweep_db(net, ps.iter().copied())
                .build()
                .sweep()
                .unwrap();
            black_box(sweep.winners().len())
        })
    });
    group.bench_with_input(
        BenchmarkId::from_parameter("per_point"),
        &powers,
        |b, ps| {
            b.iter(|| {
                let mut n = 0usize;
                for &p_db in ps {
                    let point = net.with_power_db(bcc_num::Db::new(p_db));
                    for proto in Protocol::ALL {
                        black_box(point.max_sum_rate(proto).unwrap().sum_rate);
                    }
                    n += 1;
                }
                black_box(n)
            })
        },
    );
    group.finish();
}

criterion_group!(
    benches,
    bench_sum_rate,
    bench_boundary,
    bench_membership,
    bench_batched_sweep
);
criterion_main!(benches);
