//! Criterion benchmarks of the simulators: packet-exchange slot
//! throughput, the joint-ML symbol-level decoder, and the per-trial cost
//! of the fading Monte Carlo.

use bcc_channel::fading::FadingModel;
use bcc_channel::ChannelState;
use bcc_core::gaussian::GaussianNetwork;
use bcc_core::protocol::Protocol;
use bcc_sim::ergodic::ergodic_sum_rate;
use bcc_sim::packet::{simulate_exchange, ErasureNetwork, RelayScheme};
use bcc_sim::symbol::{run_mabc_exchange, SymbolSimConfig};
use bcc_sim::McConfig;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_packet_exchange(c: &mut Criterion) {
    let net = ErasureNetwork::new(0.3, 0.8, 0.6);
    c.bench_function("packet_exchange_1000_pairs_xor", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(5);
            black_box(simulate_exchange(&net, RelayScheme::XorNetworkCoding, 1000, &mut rng).slots)
        })
    });
}

fn bench_symbol_exchange(c: &mut Criterion) {
    let cfg = SymbolSimConfig {
        power: 10.0,
        state: ChannelState::new(0.2, 1.0, 1.0),
    };
    c.bench_function("symbol_mabc_100_exchanges", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(9);
            black_box(run_mabc_exchange(&cfg, 100, &mut rng).successes)
        })
    });
}

fn bench_fading_mc(c: &mut Criterion) {
    let net = GaussianNetwork::new(10.0, ChannelState::new(0.2, 1.0, 3.16));
    c.bench_function("ergodic_hbc_200_trials", |b| {
        b.iter(|| {
            black_box(
                ergodic_sum_rate(
                    &net,
                    Protocol::Hbc,
                    FadingModel::Rayleigh,
                    &McConfig::new(200, 1),
                )
                .mean(),
            )
        })
    });
}

criterion_group!(
    benches,
    bench_packet_exchange,
    bench_symbol_exchange,
    bench_fading_mc
);
criterion_main!(benches);
