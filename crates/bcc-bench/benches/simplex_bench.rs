//! Criterion benchmarks of the LP substrate itself: solve time versus
//! problem size for random dense feasible programs.

use bcc_lp::{Problem, Relation};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn random_problem(vars: usize, rows: usize, seed: u64) -> Problem {
    let mut rng = StdRng::seed_from_u64(seed);
    let obj: Vec<f64> = (0..vars).map(|_| rng.gen_range(0.1..2.0)).collect();
    let mut p = Problem::maximize(&obj);
    for _ in 0..rows {
        let coeffs: Vec<f64> = (0..vars).map(|_| rng.gen_range(0.05..1.0)).collect();
        p.subject_to(&coeffs, Relation::Le, rng.gen_range(1.0..10.0));
    }
    p
}

fn bench_simplex_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("simplex_random_dense");
    for &(vars, rows) in &[(4usize, 6usize), (8, 12), (16, 24), (32, 48)] {
        let p = random_problem(vars, rows, 42);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{vars}v_{rows}c")),
            &p,
            |b, p| b.iter(|| black_box(p.solve().unwrap().objective)),
        );
    }
    group.finish();
}

fn bench_two_phase(c: &mut Criterion) {
    // Equality rows force a phase-1 pass — the paper's LPs all have one.
    let mut p = random_problem(8, 10, 7);
    p.subject_to(&[1.0; 8], Relation::Eq, 1.0);
    c.bench_function("simplex_with_equality_row", |b| {
        b.iter(|| black_box(p.solve().unwrap().objective))
    });
}

criterion_group!(benches, bench_simplex_scaling, bench_two_phase);
criterion_main!(benches);
