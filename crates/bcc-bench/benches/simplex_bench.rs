//! Criterion benchmarks of the LP substrate itself: solve time versus
//! problem size for random dense feasible programs.

use bcc_lp::{Problem, Relation};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn random_problem(vars: usize, rows: usize, seed: u64) -> Problem {
    let mut rng = StdRng::seed_from_u64(seed);
    let obj: Vec<f64> = (0..vars).map(|_| rng.gen_range(0.1..2.0)).collect();
    let mut p = Problem::maximize(&obj);
    for _ in 0..rows {
        let coeffs: Vec<f64> = (0..vars).map(|_| rng.gen_range(0.05..1.0)).collect();
        p.subject_to(&coeffs, Relation::Le, rng.gen_range(1.0..10.0));
    }
    p
}

fn bench_simplex_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("simplex_random_dense");
    for &(vars, rows) in &[(4usize, 6usize), (8, 12), (16, 24), (32, 48)] {
        let p = random_problem(vars, rows, 42);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{vars}v_{rows}c")),
            &p,
            |b, p| b.iter(|| black_box(p.solve().unwrap().objective)),
        );
    }
    group.finish();
}

fn bench_two_phase(c: &mut Criterion) {
    // Equality rows force a phase-1 pass — the paper's LPs all have one.
    let mut p = random_problem(8, 10, 7);
    p.subject_to(&[1.0; 8], Relation::Eq, 1.0);
    c.bench_function("simplex_with_equality_row", |b| {
        b.iter(|| black_box(p.solve().unwrap().objective))
    });
}

criterion_group!(
    benches,
    bench_simplex_scaling,
    bench_two_phase,
    bench_warm_vs_cold,
    bench_reusable_rebuild,
    bench_kernel_vs_simplex,
    bench_block_vs_scalar
);
criterion_main!(benches);

fn bench_warm_vs_cold(c: &mut Criterion) {
    // The sweep-shaped LP of the workspace hot loop: same structure every
    // solve, drifting coefficients. Warm starts should price the previous
    // basis instead of pivoting from scratch.
    let mk = |k: usize| {
        let t = 1.0 + 1e-4 * k as f64;
        let mut p = Problem::maximize(&[1.0, 1.0, 0.0, 0.0]);
        p.subject_to(&[1.0, 0.0, -1.9 * t, 0.0], Relation::Le, 0.0);
        p.subject_to(&[1.0, 0.0, 0.0, -0.8 * t], Relation::Le, 0.0);
        p.subject_to(&[0.0, 1.0, -1.1 * t, 0.0], Relation::Le, 0.0);
        p.subject_to(&[0.0, 1.0, 0.0, -2.3 * t], Relation::Le, 0.0);
        p.subject_to(&[0.0, 0.0, 1.0, 1.0], Relation::Le, 1.0);
        p
    };
    let problems: Vec<Problem> = (0..64).map(mk).collect();
    c.bench_function("sweep_shaped_sequence/cold", |b| {
        let mut ws = bcc_lp::Workspace::new();
        let mut k = 0usize;
        b.iter(|| {
            k = (k + 1) % problems.len();
            black_box(problems[k].solve_with(&mut ws).unwrap().objective)
        })
    });
    c.bench_function("sweep_shaped_sequence/warm", |b| {
        let mut ws = bcc_lp::Workspace::new();
        let mut k = 0usize;
        b.iter(|| {
            k = (k + 1) % problems.len();
            black_box(problems[k].solve_warm_with(&mut ws).unwrap().objective)
        })
    });
}

fn bench_reusable_rebuild(c: &mut Criterion) {
    // Problem::reset + pooled subject_to: the zero-allocation rebuild path
    // measured against building a fresh Problem each time.
    let obj = [1.0, 1.0, 0.0, 0.0];
    let rows: [[f64; 4]; 5] = [
        [1.0, 0.0, -1.9, 0.0],
        [1.0, 0.0, 0.0, -0.8],
        [0.0, 1.0, -1.1, 0.0],
        [0.0, 1.0, 0.0, -2.3],
        [0.0, 0.0, 1.0, 1.0],
    ];
    c.bench_function("problem_rebuild/fresh", |b| {
        b.iter(|| {
            let mut p = Problem::maximize(&obj);
            for r in &rows {
                p.subject_to(r, Relation::Le, 1.0);
            }
            black_box(p.num_constraints())
        })
    });
    c.bench_function("problem_rebuild/reset_pooled", |b| {
        let mut p = Problem::maximize(&obj);
        b.iter(|| {
            p.reset(bcc_lp::Sense::Maximize, &obj);
            for r in &rows {
                p.subject_to(r, Relation::Le, 1.0);
            }
            black_box(p.num_constraints())
        })
    });
}

fn bench_block_vs_scalar(c: &mut Criterion) {
    // The SoA lane kernels against a per-point scalar loop over the same
    // 1024-point grid — the measured gap is what `SolveCtx::solve_block`
    // buys the blocked sweep paths per grid point. Output is bit-identical
    // either way (pinned by the batch_differential suite); only the
    // instruction mix differs.
    use bcc_core::batch::{self, PointBlock};
    use bcc_core::kernel;
    use bcc_core::prelude::*;

    let nets: Vec<GaussianNetwork> = (0..1024)
        .map(|k| {
            let p = 1.0 + 40.0 * (k as f64 / 1024.0);
            GaussianNetwork::with_powers(
                PowerSplit::new(p, p, 0.5 * p),
                ChannelState::new(1.0, 1.0 + (k % 7) as f64, 1.0 + (k % 11) as f64),
            )
        })
        .collect();
    let mut block = PointBlock::new();
    for n in &nets {
        block.push_net(n);
    }
    block.compute_caps();

    let mut group = c.benchmark_group("sum_rate_1024pt");
    for proto in Protocol::ALL {
        let name = format!("{proto:?}").to_lowercase();
        group.bench_with_input(BenchmarkId::new("block", &name), &proto, |b, &proto| {
            let mut sums = Vec::with_capacity(nets.len());
            b.iter(|| {
                sums.clear();
                batch::max_sum_rate_block(&block, proto, &mut sums);
                black_box(sums.last().unwrap().sum_rate)
            })
        });
        group.bench_with_input(
            BenchmarkId::new("scalar_loop", &name),
            &proto,
            |b, &proto| {
                b.iter(|| {
                    let mut acc = 0.0;
                    for n in &nets {
                        acc += kernel::max_sum_rate(n, proto).unwrap().sum_rate;
                    }
                    black_box(acc)
                })
            },
        );
    }
    group.finish();
}

fn bench_kernel_vs_simplex(c: &mut Criterion) {
    // The same sum-rate queries answered by the closed-form kernel and by
    // the general simplex — the measured gap is what the automatic
    // dispatch in `SolveCtx::sum_rate` buys per grid point.
    use bcc_core::prelude::*;
    use bcc_core::{kernel, optimizer};
    let net = GaussianNetwork::from_db(
        bcc_num::Db::new(15.0),
        bcc_num::Db::new(0.0),
        bcc_num::Db::new(10.0),
        bcc_num::Db::new(10.0),
    );
    for proto in [Protocol::Mabc, Protocol::Tdbc] {
        let name = format!("{proto:?}").to_lowercase();
        c.bench_function(&format!("sum_rate_kernel/{name}"), |b| {
            b.iter(|| black_box(kernel::max_sum_rate(&net, proto).unwrap().sum_rate))
        });
        let set = net.constraint_sets(proto, Bound::Inner).remove(0);
        c.bench_function(&format!("sum_rate_simplex/{name}"), |b| {
            let mut ws = bcc_lp::Workspace::new();
            b.iter(|| {
                black_box(
                    optimizer::max_sum_rate_with(&set, &mut ws)
                        .unwrap()
                        .objective,
                )
            })
        });
    }
}
