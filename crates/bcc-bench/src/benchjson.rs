//! Reader for the `BENCH_evaluator.json` artifact that `bench-report`
//! emits and CI trends.
//!
//! The artifact is plain JSON written by `bench-report` itself, so this
//! module does not implement a general JSON parser — only the exact shape
//! the writer produces: a `"scenarios"` array of flat objects keyed by a
//! `"name"` string with numeric fields. That is enough for the CI
//! regression gate (compare one field of one scenario against a committed
//! baseline) without a serde dependency the offline build cannot have.

/// Extracts numeric `field` from the scenario object whose `"name"` equals
/// `name`, or `None` if the scenario or field is absent / malformed.
///
/// ```
/// let json = r#"{ "scenarios": [
///   { "name": "fig3_sweep", "points": 3001, "serial_ms": 240.125 },
///   { "name": "outage_10k", "points": 1, "serial_ms": 900.5 }
/// ] }"#;
/// assert_eq!(
///     bcc_bench::benchjson::scenario_field(json, "fig3_sweep", "serial_ms"),
///     Some(240.125)
/// );
/// assert_eq!(
///     bcc_bench::benchjson::scenario_field(json, "outage_10k", "points"),
///     Some(1.0)
/// );
/// assert_eq!(bcc_bench::benchjson::scenario_field(json, "nope", "points"), None);
/// ```
pub fn scenario_field(json: &str, name: &str, field: &str) -> Option<f64> {
    let tag = format!("\"name\": \"{name}\"");
    let start = json.find(&tag)? + tag.len();
    // The scenario object is flat, so its fields end at the next `}`.
    let object = &json[start..start + json[start..].find('}')?];
    let key = format!("\"{field}\":");
    let after = &object[object.find(&key)? + key.len()..];
    let number: String = after
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E'))
        .collect();
    number.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "schema": 1,
  "threads": { "available": 4, "parallel": 4 },
  "scenarios": [
    { "name": "fig3_sweep", "points": 3001, "trials": 0, "serial_ms": 240.125, "parallel_ms": 80.042, "speedup": 3.000 },
    { "name": "outage_10k", "points": 1, "trials": 10000, "serial_ms": 900.500, "parallel_ms": 300.167, "speedup": 3.000 }
  ]
}"#;

    #[test]
    fn reads_fields_per_scenario() {
        assert_eq!(
            scenario_field(SAMPLE, "fig3_sweep", "serial_ms"),
            Some(240.125)
        );
        assert_eq!(
            scenario_field(SAMPLE, "fig3_sweep", "parallel_ms"),
            Some(80.042)
        );
        assert_eq!(
            scenario_field(SAMPLE, "outage_10k", "trials"),
            Some(10000.0)
        );
        assert_eq!(scenario_field(SAMPLE, "outage_10k", "speedup"), Some(3.0));
    }

    #[test]
    fn missing_scenario_or_field_is_none() {
        assert_eq!(
            scenario_field(SAMPLE, "crossover_search", "serial_ms"),
            None
        );
        assert_eq!(scenario_field(SAMPLE, "fig3_sweep", "nonsense"), None);
        assert_eq!(scenario_field("", "fig3_sweep", "serial_ms"), None);
        assert_eq!(scenario_field("{ garbage", "fig3_sweep", "serial_ms"), None);
    }

    #[test]
    fn field_lookup_stays_inside_the_named_object() {
        // `parallel_ms` exists only in the *second* scenario here; asking
        // the first must not leak across the object boundary.
        let json = r#"{ "scenarios": [
            { "name": "a", "serial_ms": 1.5 },
            { "name": "b", "serial_ms": 2.5, "parallel_ms": 0.5 }
        ] }"#;
        assert_eq!(scenario_field(json, "a", "parallel_ms"), None);
        assert_eq!(scenario_field(json, "b", "parallel_ms"), Some(0.5));
    }
}
