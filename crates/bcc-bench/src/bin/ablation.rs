//! E-A1/E-A2 — ablations of the design choices called out in DESIGN.md §5.
//!
//! * **E-A1 (side information off)**: rebuild the Theorem-3 TDBC inner
//!   bound with the overheard-phase terms removed (the terminals ignore
//!   what they hear during the other's uplink). Quantifies how much of
//!   TDBC's advantage is the side information itself.
//! * **E-A2 (asymmetry response)**: hold `G_ar·G_br` fixed and skew the
//!   ratio; report how the optimal HBC phase durations shift between the
//!   TDBC-like phases (1, 2) and the MABC-like MAC phase (3).
//! * **LP vs grid**: the exact-LP region machinery against a brute-force
//!   simplex grid over phase durations — accuracy and runtime of the
//!   design choice "regions as LPs".

use bcc_bench::{fig4_network, results_dir, FIG4_GAINS_DB};
use bcc_core::constraint::{ConstraintSet, RateConstraint};
use bcc_core::optimizer;
use bcc_core::prelude::*;
use bcc_info::awgn_capacity;
use bcc_plot::{csv, Series, Table};
use std::fs::File;
use std::time::Instant;

/// Theorem-3 inner bound with the side-information terms deleted.
fn tdbc_inner_no_side_info(power: f64, net: &GaussianNetwork) -> ConstraintSet {
    let s = net.state();
    let c_ar = awgn_capacity(power * s.gar());
    let c_br = awgn_capacity(power * s.gbr());
    let mut set = ConstraintSet::new(3, "TDBC inner, side information ablated");
    set.push(RateConstraint::new(
        1.0,
        0.0,
        vec![c_ar, 0.0, 0.0],
        "relay decodes Wa",
    ));
    // b must get everything from the relay broadcast.
    set.push(RateConstraint::new(
        1.0,
        0.0,
        vec![0.0, 0.0, c_br],
        "b decodes Wa (no side info)",
    ));
    set.push(RateConstraint::new(
        0.0,
        1.0,
        vec![0.0, c_br, 0.0],
        "relay decodes Wb",
    ));
    set.push(RateConstraint::new(
        0.0,
        1.0,
        vec![0.0, 0.0, c_ar],
        "a decodes Wb (no side info)",
    ));
    set
}

fn ablation_side_info() {
    println!("== E-A1: TDBC with and without overheard side information ==");
    let mut table = Table::new(vec![
        "P [dB]".into(),
        "TDBC".into(),
        "TDBC (no SI)".into(),
        "SI gain [%]".into(),
    ]);
    let mut series = vec![Series::new("TDBC"), Series::new("TDBC no-SI")];
    // Full TDBC through the batch evaluator; the ablated bound stays a
    // hand-built constraint set (it deletes Theorem-3 terms no scenario
    // can express).
    let (gab, gar, gbr) = FIG4_GAINS_DB;
    let base = GaussianNetwork::from_db(Db::new(0.0), Db::new(gab), Db::new(gar), Db::new(gbr));
    let sweep = Scenario::power_sweep_db(base, (-10..=25).step_by(5).map(|p| p as f64))
        .protocols([Protocol::Tdbc])
        .build()
        .sweep()
        .expect("LP");
    for (i, &p_db) in sweep.xs.iter().enumerate() {
        let net = fig4_network(p_db);
        let full = sweep.series(Protocol::Tdbc).expect("evaluated").solutions[i].sum_rate;
        let ablated = optimizer::max_sum_rate(&tdbc_inner_no_side_info(
            net.power().expect("symmetric network"),
            &net,
        ))
        .expect("LP")
        .objective;
        series[0].push(p_db, full);
        series[1].push(p_db, ablated);
        table.row(vec![
            format!("{p_db}"),
            format!("{full:.4}"),
            format!("{ablated:.4}"),
            format!("{:.1}", (full / ablated - 1.0) * 100.0),
        ]);
    }
    println!("{}", table.render());
    let f = File::create(results_dir().join("ablation_side_info.csv")).expect("create csv");
    csv::write_series(f, "power_db", &series).expect("write csv");
}

fn ablation_asymmetry() {
    println!("== E-A2: HBC phase usage vs relay-link asymmetry ==");
    println!("   (G_ar·G_br fixed at 0 dB² product; P = 10 dB, G_ab = -7 dB)");
    let mut table = Table::new(vec![
        "Gar/Gbr [dB]".into(),
        "Δ1 (a up)".into(),
        "Δ2 (b up)".into(),
        "Δ3 (MAC)".into(),
        "Δ4 (bc)".into(),
        "sum rate".into(),
    ]);
    let skews = [-12.0, -6.0, 0.0, 6.0, 12.0];
    let sweep = Scenario::networks(
        "relay-link skew [dB]",
        skews.map(|skew_db: f64| {
            (
                skew_db,
                GaussianNetwork::from_db(
                    Db::new(10.0),
                    Db::new(-7.0),
                    Db::new(skew_db / 2.0),
                    Db::new(-skew_db / 2.0),
                ),
            )
        }),
    )
    .protocols([Protocol::Hbc])
    .build()
    .sweep()
    .expect("LP");
    for (i, &skew_db) in sweep.xs.iter().enumerate() {
        let sol = &sweep.series(Protocol::Hbc).expect("evaluated").solutions[i];
        table.row(vec![
            format!("{skew_db}"),
            format!("{:.3}", sol.durations[0]),
            format!("{:.3}", sol.durations[1]),
            format!("{:.3}", sol.durations[2]),
            format!("{:.3}", sol.durations[3]),
            format!("{:.4}", sol.sum_rate),
        ]);
    }
    println!("{}", table.render());
}

/// Brute-force sum-rate maximisation on a simplex grid of durations.
fn grid_sum_rate(set: &ConstraintSet, steps: usize) -> f64 {
    let l = set.num_phases();
    let mut best: f64 = 0.0;
    // Enumerate compositions of `steps` into l parts.
    fn rec(
        set: &ConstraintSet,
        remaining: usize,
        parts: &mut Vec<usize>,
        l: usize,
        steps: usize,
        best: &mut f64,
    ) {
        if parts.len() == l - 1 {
            parts.push(remaining);
            let durations: Vec<f64> = parts.iter().map(|&p| p as f64 / steps as f64).collect();
            // For fixed durations the optimum is a tiny 2-var LP; evaluate
            // directly by the closed form max over the min-constraints:
            // maximise Ra + Rb subject to linear caps — still easiest via
            // the LP helper with pinned durations, but a grid evaluation of
            // the caps suffices for the ablation: scan boundary rates.
            let mut set_fixed = ConstraintSet::new(1, "fixed");
            for c in set.constraints() {
                set_fixed.push(RateConstraint::new(
                    c.ra,
                    c.rb,
                    vec![c.rhs(&durations)],
                    c.label.clone(),
                ));
            }
            if let Ok(pt) = optimizer::max_sum_rate(&set_fixed) {
                if pt.objective > *best {
                    *best = pt.objective;
                }
            }
            parts.pop();
            return;
        }
        for p in 0..=remaining {
            parts.push(p);
            rec(set, remaining - p, parts, l, steps, best);
            parts.pop();
        }
    }
    rec(set, steps, &mut Vec::new(), l, steps, &mut best);
    best
}

fn ablation_lp_vs_grid() {
    println!("== LP vs duration-grid ablation (design choice #1) ==");
    let net = fig4_network(10.0);
    let mut table = Table::new(vec![
        "protocol".into(),
        "LP optimum".into(),
        "grid(12)".into(),
        "grid(24)".into(),
        "LP time".into(),
        "grid(24) time".into(),
    ]);
    for proto in [Protocol::Mabc, Protocol::Tdbc, Protocol::Hbc] {
        let set = &net.constraint_sets(proto, Bound::Inner)[0];
        let t0 = Instant::now();
        let exact = optimizer::max_sum_rate(set).expect("LP").objective;
        let lp_time = t0.elapsed();
        let coarse = grid_sum_rate(set, 12);
        let t1 = Instant::now();
        let fine = grid_sum_rate(set, 24);
        let grid_time = t1.elapsed();
        assert!(
            exact >= coarse - 1e-9 && exact >= fine - 1e-9,
            "grid beat the LP?!"
        );
        table.row(vec![
            proto.name().into(),
            format!("{exact:.5}"),
            format!("{coarse:.5}"),
            format!("{fine:.5}"),
            format!("{lp_time:.1?}"),
            format!("{grid_time:.1?}"),
        ]);
    }
    println!("{}", table.render());
    println!("grid always under-estimates; the LP is exact and faster at HBC's 4 phases\n");
}

fn baselines() {
    println!("== E-B1: baselines — naive forwarding and amplify-and-forward ==");
    use bcc_core::bounds::{af, mabc, naive};
    let mut table = Table::new(vec![
        "P [dB]".into(),
        "naive 4-phase".into(),
        "AF 2-phase".into(),
        "MABC (Thm 2)".into(),
        "coded/naive".into(),
        "DF/AF".into(),
    ]);
    let mut series = vec![Series::new("naive"), Series::new("AF"), Series::new("MABC")];
    for p_int in (-10..=25).step_by(5) {
        let p_db = p_int as f64;
        let net = fig4_network(p_db);
        let s = net.state();
        let p = net.power().expect("symmetric network");
        let naive_sr = optimizer::max_sum_rate(&naive::capacity_constraints(p, &s))
            .expect("LP")
            .objective;
        let af_sr = af::achievable_rates(p, &s).sum_rate();
        let mabc_sr = optimizer::max_sum_rate(&mabc::capacity_constraints(p, &s))
            .expect("LP")
            .objective;
        series[0].push(p_db, naive_sr);
        series[1].push(p_db, af_sr);
        series[2].push(p_db, mabc_sr);
        table.row(vec![
            format!("{p_db}"),
            format!("{naive_sr:.4}"),
            format!("{af_sr:.4}"),
            format!("{mabc_sr:.4}"),
            format!("{:.3}", mabc_sr / naive_sr),
            format!("{:.3}", mabc_sr / af_sr.max(1e-12)),
        ]);
    }
    println!("{}", table.render());
    println!("network coding beats routing at every SNR; DF beats AF at low SNR,");
    println!("but AF overtakes DF MABC above ~18 dB (the relay's MAC decoding");
    println!("constraint binds while AF's noise amplification becomes negligible)\n");
    let f = File::create(results_dir().join("baselines.csv")).expect("create csv");
    csv::write_series(f, "power_db", &series).expect("write csv");
}

fn main() {
    ablation_side_info();
    ablation_asymmetry();
    ablation_lp_vs_grid();
    baselines();
    println!("CSV written to {}", results_dir().display());
}
