//! bench-report — times the canonical evaluation scenarios in serial and
//! parallel modes and writes the machine-readable `BENCH_evaluator.json`
//! (schema 7) that CI uploads and trends.
//!
//! Seven workloads cover the engine's hot paths at production scale:
//!
//! * **`fig3_sweep`** — the paper's Fig. 3 symmetric-gain sweep on a
//!   60 001-point grid (every protocol, ~240k solves);
//! * **`crossover_search`** — the E-X1 power sweep (17 501 points) plus the
//!   bisection locating the ≈13.7 dB MABC/TDBC crossover;
//! * **`outage_10k`** — a 10 000-trial Rayleigh outage study at the
//!   Fig. 4 operating point (~40k solves on faded networks);
//! * **`deep_outage`** — the importance-sampled deep-tail study
//!   (`bcc_bench::deepstudy`): a direct-transmission outage near `1e-6`
//!   resolved by tilted fade streams, escalating a trial ladder until the
//!   relative error meets the 10% budget (time-to-fixed-relative-error).
//!   Its extras record the achieved `rel_err`, the trial budget
//!   `is_trials`, the IS-vs-plain-MC per-trial variance ratio
//!   `var_ratio`, and the z-score against the closed-form tail; the gate
//!   requires the 1e-6 tail resolved in fewer trials than plain MC needs
//!   for 1e-3;
//! * **`multipair_k3`** — a 4 001-point, three-pair shared-relay sweep
//!   (sum-rate *and* max–min per pair × protocol, ~96k solves through
//!   the `point × pair × protocol` fan-out);
//! * **`city_scale`** — the city-scale relay-assignment study
//!   (`bcc_bench::citystudy`): 4 000 pairs × 48 candidate relays on a
//!   disc, every `(pair, relay)` edge's best-protocol sum rate through
//!   the streamed `CityEvaluator` (~384k batched solves), then the
//!   greedy/random/refined assignment comparison. Its extras record the
//!   mean congestion-free `assignment_rate` (greedy) and `random_rate`
//!   plus the time-shared refined rate; the gates require
//!   `assignment_rate ≥ random_rate` (a per-pair-max dominance that can
//!   only break if the reduction itself breaks) and the allocation-free
//!   hot loop (`allocs_per_point ≤ 0.05` over the edge grid);
//! * **`serve_loadgen`** — the serving layer's canonical load study
//!   (`bcc_bench::servestudy`): a 40k-query hot-set stream through a
//!   `bcc-serve` engine, closed loop (throughput + p50/p99/p999 service
//!   times) and batched drain, plus a 200k-query repeated-state all-hit
//!   stream, plus a chaos pass of the same stream under the canonical
//!   `servestudy::chaos_plan` fault plan (asserted bit-identical across
//!   worker counts first). Its gates are direction-aware: `qps` may not
//!   drop below baseline ÷ tolerance, the repeated stream must hit the
//!   cache, serve misses must reach the closed-form kernel, the
//!   fault-free stream must record **zero** degraded answers, and the
//!   injected stream must record **some** degraded answers, reject its
//!   malformed queries, and contain every injected panic
//!   (`chaos_panics == 0`).
//!
//! Serial numbers pin the evaluator to one worker
//! (`Scenario::threads(1)`); parallel numbers use the ambient policy
//! (`BCC_THREADS` or available parallelism). Results are bit-identical in
//! both modes — asserted here on every run — so the report measures wall
//! time only.
//!
//! Beyond wall time, each scenario records the **solver-mix counters** of
//! one serial run: simplex `pivots`, `warm_hits` (solves served from a
//! remembered basis), `kernel_hits` (solves served by the closed-form
//! kernels, no LP at all), `batched_points`/`lanes_filled` (points that
//! rode the SoA lane kernels, and how many landed in full SIMD-width
//! lanes rather than the scalar tail) and `allocs_per_point` (heap
//! allocations per grid point/trial, measured by a counting global
//! allocator — the zero-allocation hot-loop regression canary). The
//! report also records the `block_size` the batched paths chunk by.
//!
//! Usage:
//!
//! ```text
//! bench-report [--out PATH] [--check BASELINE.json]
//! ```
//!
//! `--out` defaults to `results/BENCH_evaluator.json`. With `--check`, the
//! run exits non-zero if the Fig. 3 sweep's wall time regressed more than
//! 15% against the committed baseline (serial and parallel each), **or if
//! a fast path silently turned off**: `kernel_hits == 0` or
//! `batched_points == 0` on the Fig. 3 sweep (every solve there is
//! closed-form and must run through the SoA lane kernels), or
//! `warm_hits == 0` summed across all scenarios (a floor-free inner
//! sweep never touches the simplex now, so the warm path's canary is the
//! serve study's floored sub-stream). The factor is overridable via
//! `BCC_BENCH_TOLERANCE` (≥ 1.0) for runners slower than the baseline
//! machine. Refresh the baseline by copying a trusted run's
//! `BENCH_evaluator.json` over `ci/bench_baseline.json`.

use bcc_bench::{benchjson, fig4_network, results_dir, FIG3_GAB_DB, FIG3_POWER_DB};
use bcc_core::comparison::sum_rate_crossover_db;
use bcc_core::prelude::*;
use std::alloc::{GlobalAlloc, Layout, System};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::time::Instant;

/// Counts every heap allocation the process performs, so the report can
/// state allocations *per grid point* for each workload and CI can catch a
/// change that silently reintroduces per-point allocation into the hot
/// loops.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates directly to the system allocator; the counter is a
// relaxed atomic with no further invariants.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Panic-hook invocations whose payload is *not* the injected chaos
/// marker — a genuine panic anywhere in the run. The serve scenario's
/// chaos pass gates on this staying zero.
static GENUINE_PANICS: AtomicU64 = AtomicU64::new(0);

/// Counts genuine panics and silences the injected ones (their unwinds
/// are caught and degraded by the serve engine; the default hook would
/// bury the report in backtraces).
fn install_panic_audit() {
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<&str>()
            .is_some_and(|m| m.contains("injected worker panic"));
        if !injected {
            GENUINE_PANICS.fetch_add(1, Relaxed);
            previous(info);
        }
    }));
}

/// Default regression tolerance of `--check`: measured wall time may
/// exceed the baseline by at most this factor. Override with
/// `BCC_BENCH_TOLERANCE` when the gate runs on hardware meaningfully
/// slower than the machine that produced the committed baseline (the
/// baseline measures *code on a runner class*, not code alone).
const TOLERANCE: f64 = 1.15;

fn tolerance() -> f64 {
    std::env::var("BCC_BENCH_TOLERANCE")
        .ok()
        .and_then(|s| s.trim().parse::<f64>().ok())
        .filter(|t| t.is_finite() && *t >= 1.0)
        .unwrap_or(TOLERANCE)
}

/// Timing repetitions per mode; the minimum is reported (robust against
/// scheduler noise on shared CI runners).
const REPS: usize = 3;

/// Solver-mix counters of one serial run of a scenario.
#[derive(Clone, Copy)]
struct SolveMix {
    pivots: u64,
    warm_hits: u64,
    kernel_hits: u64,
    /// Points solved through the batched SoA lane kernels.
    batched_points: u64,
    /// Of those, how many rode in full SIMD-width lanes (the remainder
    /// is the per-block scalar tail).
    lanes_filled: u64,
    allocs_per_point: f64,
}

struct Timing {
    name: &'static str,
    points: usize,
    trials: usize,
    serial_ms: f64,
    parallel_ms: f64,
    mix: SolveMix,
    /// Scenario-specific metrics rendered verbatim into the JSON object
    /// (e.g. the serve scenario's throughput and latency quantiles).
    extra: Vec<(&'static str, f64)>,
}

impl Timing {
    fn speedup(&self) -> f64 {
        self.serial_ms / self.parallel_ms
    }
}

fn best_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// Runs `f` once, returning the solver-mix counter deltas normalised by
/// `units` (grid points or trials).
///
/// Every measured workload below pins itself to one worker
/// (`Scenario::threads(1)`), which runs inline on this thread — so the
/// *thread-local* solver counters capture it completely while staying
/// immune to anything else the process may be doing (the same helper the
/// in-process gate tests use; see `bcc_lp::stats::scoped`). The
/// allocation counter has no thread-local twin, but the binary is
/// single-threaded outside the parallel timing runs.
fn measure_mix(units: usize, f: impl FnOnce()) -> SolveMix {
    let k0 = bcc_core::kernel::kernel_hits_local();
    let b0 = bcc_core::batch::stats::batched_points_local();
    let l0 = bcc_core::batch::stats::lanes_filled_local();
    let a0 = ALLOCS.load(Relaxed);
    let ((), lp) = bcc_lp::stats::scoped(f);
    let kernel_hits = bcc_core::kernel::kernel_hits_local() - k0;
    let batched_points = bcc_core::batch::stats::batched_points_local() - b0;
    let lanes_filled = bcc_core::batch::stats::lanes_filled_local() - l0;
    let allocs = ALLOCS.load(Relaxed) - a0;
    SolveMix {
        pivots: lp.pivots,
        warm_hits: lp.warm_hits,
        kernel_hits,
        batched_points,
        lanes_filled,
        allocs_per_point: allocs as f64 / units.max(1) as f64,
    }
}

fn fig3_scenario() -> Scenario {
    Scenario::symmetric_gain_sweep_db(
        FIG3_POWER_DB,
        FIG3_GAB_DB,
        (0..=60_000).map(|k| f64::from(k) * 0.0005),
    )
}

fn crossover_scenario() -> Scenario {
    Scenario::power_sweep_db(
        fig4_network(0.0),
        (0..=17_500).map(|k| -10.0 + f64::from(k) * 0.002),
    )
}

fn outage_scenario() -> Scenario {
    Scenario::at(fig4_network(10.0)).rayleigh(10_000, 0xBCC0_0001)
}

/// The K-pair workload: 4 001 power points × the canonical E-M1 study
/// pairs (`bcc_bench::multipairstudy::pair_set`, so the gate and the
/// published study measure the same networks) × every protocol,
/// sum-rate and max–min per pair (the `point × pair × protocol` fan-out
/// of `MultiPairEvaluator::sweep`).
fn multipair_scenario() -> MultiPairScenario {
    MultiPairScenario::power_sweep_db(
        &bcc_bench::multipairstudy::pair_set(),
        (0..=4_000).map(|k| f64::from(k) * 0.005),
    )
}

/// The city workload: the canonical `citystudy` placement at full bench
/// scale — `PAIRS × RELAYS` edges through the streamed per-pair fan-out.
fn city_scenario() -> bcc_core::city::CityScenario {
    use bcc_bench::citystudy;
    Scenario::city(citystudy::topology(citystudy::PAIRS), citystudy::POWER_DB)
        .protocols(citystudy::PROTOCOLS)
}

fn time_fig3(parallel_threads: usize) -> Timing {
    let points = fig3_scenario().build().points().len();
    let serial_sweep = fig3_scenario()
        .threads(1)
        .build()
        .sweep()
        .expect("solvable");
    let parallel_sweep = fig3_scenario()
        .threads(parallel_threads)
        .build()
        .sweep()
        .expect("solvable");
    assert_eq!(
        serial_sweep, parallel_sweep,
        "parallel sweep must be bit-identical"
    );
    let mix = measure_mix(points, || {
        fig3_scenario()
            .threads(1)
            .build()
            .sweep()
            .expect("solvable");
    });
    let serial_ms = best_ms(REPS, || {
        fig3_scenario()
            .threads(1)
            .build()
            .sweep()
            .expect("solvable");
    });
    let parallel_ms = best_ms(REPS, || {
        fig3_scenario()
            .threads(parallel_threads)
            .build()
            .sweep()
            .expect("solvable");
    });
    Timing {
        name: "fig3_sweep",
        points,
        trials: 0,
        serial_ms,
        parallel_ms,
        mix,
        extra: Vec::new(),
    }
}

fn time_crossover(parallel_threads: usize) -> Timing {
    let net = fig4_network(0.0);
    let points = crossover_scenario().build().points().len();
    let run = |threads: usize| {
        let sweep = crossover_scenario()
            .threads(threads)
            .build()
            .sweep()
            .expect("solvable");
        let crossing = sum_rate_crossover_db(&net, Protocol::Mabc, Protocol::Tdbc, -10.0, 25.0)
            .expect("solvable")
            .expect("the paper's crossover exists in this range");
        assert!(
            (crossing.value() - 13.7).abs() < 0.5,
            "crossover drifted: {}",
            crossing.value()
        );
        sweep
    };
    assert_eq!(run(1), run(parallel_threads));
    let mix = measure_mix(points, || {
        run(1);
    });
    let serial_ms = best_ms(REPS, || {
        run(1);
    });
    let parallel_ms = best_ms(REPS, || {
        run(parallel_threads);
    });
    Timing {
        name: "crossover_search",
        points,
        trials: 0,
        serial_ms,
        parallel_ms,
        mix,
        extra: Vec::new(),
    }
}

fn time_outage(parallel_threads: usize) -> Timing {
    let serial = outage_scenario().threads(1).build().outage().expect("runs");
    let parallel = outage_scenario()
        .threads(parallel_threads)
        .build()
        .outage()
        .expect("runs");
    assert_eq!(serial, parallel, "parallel outage must be bit-identical");
    let mix = measure_mix(10_000, || {
        outage_scenario().threads(1).build().outage().expect("runs");
    });
    let serial_ms = best_ms(REPS, || {
        outage_scenario().threads(1).build().outage().expect("runs");
    });
    let parallel_ms = best_ms(REPS, || {
        outage_scenario()
            .threads(parallel_threads)
            .build()
            .outage()
            .expect("runs");
    });
    Timing {
        name: "outage_10k",
        points: 1,
        trials: 10_000,
        serial_ms,
        parallel_ms,
        mix,
        extra: Vec::new(),
    }
}

/// The deep-outage workload (`bcc_bench::deepstudy`): escalates the
/// trial ladder until the importance-sampled DT tail near 1e-6 meets the
/// 10% relative-error budget, then times that rung serial vs parallel
/// (bit-identity asserted on the full result first). The extras carry
/// the quality metrics the gate asserts on: achieved relative error,
/// the winning trial budget, the per-trial variance advantage over plain
/// MC (`p(1−p)/var`), and the z-score against the closed-form tail.
fn time_deep_outage(parallel_threads: usize) -> Timing {
    use bcc_bench::deepstudy;
    let spec = deepstudy::deep_spec();
    let run = |trials: usize, threads: usize| {
        deepstudy::deep_scenario(trials)
            .threads(threads)
            .build()
            .deep_outage(&spec)
            .expect("deep-outage study runs")
    };
    let cell_of = |res: &bcc_core::DeepOutageResult| *res.cell(Protocol::DirectTransmission, 0, 0);

    // Time to fixed relative error: climb the ladder until the 10%
    // budget is met (the last rung is reported even if it falls short —
    // the gate, not the ladder, fails the run then).
    let mut trials = *deepstudy::TRIAL_LADDER.last().expect("non-empty ladder");
    let mut serial = None;
    for &rung in &deepstudy::TRIAL_LADDER {
        let res = run(rung, 1);
        let done = cell_of(&res)
            .rel_error
            .is_some_and(|r| r <= deepstudy::REL_ERR_TARGET);
        trials = rung;
        serial = Some(res);
        if done {
            break;
        }
    }
    let serial = serial.expect("ladder is non-empty");
    let parallel = run(trials, parallel_threads);
    assert_eq!(
        cell_of(&serial),
        cell_of(&parallel),
        "parallel deep outage must be bit-identical"
    );

    let cell = cell_of(&serial);
    let p = cell.probability.expect("tilted estimate resolves");
    let rel = cell.rel_error.expect("resolved");
    let exact = bcc_core::analytic_outage(
        &bcc_bench::fig4_network(deepstudy::POWER_DB),
        Protocol::DirectTransmission,
        FadingModel::Rayleigh,
        serial.target_rate(0, 0),
    )
    .and_then(|t| t.exact())
    .expect("DT Rayleigh tail is closed-form");
    // Per-trial variance advantage over plain MC at the same target: a
    // plain indicator has variance p(1−p); the weighted indicator's is
    // the cell's estimator variance.
    let var_ratio = p * (1.0 - p) / cell.variance;
    let abs_z = (p - exact).abs() / (rel * p);

    let mix = measure_mix(trials, || {
        run(trials, 1);
    });
    let serial_ms = best_ms(REPS, || {
        run(trials, 1);
    });
    let parallel_ms = best_ms(REPS, || {
        run(trials, parallel_threads);
    });
    Timing {
        name: "deep_outage",
        points: 1,
        trials,
        serial_ms,
        parallel_ms,
        mix,
        extra: vec![
            ("rel_err", rel),
            ("is_trials", trials as f64),
            ("var_ratio", var_ratio),
            ("prob_x1e9", p * 1e9),
            ("exact_x1e9", exact * 1e9),
            ("abs_z", abs_z),
        ],
    }
}

fn time_multipair(parallel_threads: usize) -> Timing {
    let ev = multipair_scenario().build();
    let points = ev.points().len();
    let units = points * ev.num_pairs();
    let serial = multipair_scenario()
        .threads(1)
        .build()
        .sweep()
        .expect("solvable");
    let parallel = multipair_scenario()
        .threads(parallel_threads)
        .build()
        .sweep()
        .expect("solvable");
    assert_eq!(
        serial, parallel,
        "parallel multi-pair sweep must be bit-identical"
    );
    // Build the evaluator *outside* the measured closure: constructing a
    // K-pair grid inherently allocates one pair list per point, but the
    // gated quantity is the solve loop — the evaluator is reusable, so a
    // long-lived service pays construction once.
    let mut measured = multipair_scenario().threads(1).build();
    let mix = measure_mix(units, || {
        measured.sweep().expect("solvable");
    });
    let serial_ms = best_ms(REPS, || {
        multipair_scenario()
            .threads(1)
            .build()
            .sweep()
            .expect("solvable");
    });
    let parallel_ms = best_ms(REPS, || {
        multipair_scenario()
            .threads(parallel_threads)
            .build()
            .sweep()
            .expect("solvable");
    });
    Timing {
        name: "multipair_k3",
        points,
        trials: 0,
        serial_ms,
        parallel_ms,
        mix,
        extra: Vec::new(),
    }
}

/// The city-scale relay-assignment workload (E-C1): every `(pair,
/// relay)` edge of the canonical `citystudy` placement through the
/// streamed per-pair fan-out, then the greedy/random/refined
/// comparison. `units` is the edge count `K × n` — the quantity the
/// allocation gate normalises by — and the extras carry the aggregate
/// rates the dominance gate asserts on.
fn time_city(parallel_threads: usize) -> Timing {
    use bcc_core::city::{AssignmentKind, Schedule};

    let ev = city_scenario().build();
    let (k, n) = (ev.topology().num_pairs(), ev.topology().num_relays());
    let units = k * n;
    let serial = city_scenario()
        .threads(1)
        .build()
        .sweep()
        .expect("solvable");
    let parallel = city_scenario()
        .threads(parallel_threads)
        .build()
        .sweep()
        .expect("solvable");
    assert_eq!(
        serial, parallel,
        "parallel city sweep must be bit-identical"
    );
    // Evaluator construction (topology clone) stays outside the measured
    // closure — the gated quantity is the edge-solve loop.
    let mut measured = city_scenario().threads(1).build();
    let mix = measure_mix(units, || {
        measured.sweep().expect("solvable");
    });
    let serial_ms = best_ms(REPS, || {
        city_scenario()
            .threads(1)
            .build()
            .sweep()
            .expect("solvable");
    });
    let parallel_ms = best_ms(REPS, || {
        city_scenario()
            .threads(parallel_threads)
            .build()
            .sweep()
            .expect("solvable");
    });
    let assignment_rate = serial.best_edge_rate(AssignmentKind::Greedy);
    let random_rate = serial.best_edge_rate(AssignmentKind::Random);
    let refined_ts = serial.scheduled_rate(AssignmentKind::Refined, Schedule::TimeShare);
    let greedy_ts = serial.scheduled_rate(AssignmentKind::Greedy, Schedule::TimeShare);
    Timing {
        name: "city_scale",
        points: k,
        trials: 0,
        serial_ms,
        parallel_ms,
        mix,
        extra: vec![
            ("assignment_rate", assignment_rate),
            ("random_rate", random_rate),
            ("refined_ts_rate", refined_ts),
            ("greedy_ts_rate", greedy_ts),
            ("relays", n as f64),
        ],
    }
}

/// The serving-layer workload (E-S1): the canonical `servestudy` mixed
/// hot-set stream through a `bcc-serve` engine, closed loop for latency
/// quantiles and batched for drain throughput, plus the repeated-state
/// all-hit stream. `serial_ms`/`parallel_ms` time the batched drain of
/// the mixed stream at 1 vs `parallel_threads` workers (asserted
/// bit-identical first); the extras carry throughput (`qps`,
/// `repeated_qps`), latency quantiles and the cache hit counters the
/// gate asserts on.
fn time_serve(parallel_threads: usize) -> Timing {
    use bcc_bench::servestudy;
    use bcc_serve::{ServedFrom, Server};

    let queries = servestudy::mixed_stream().queries(servestudy::MIXED_QUERIES);
    let drain_all = |threads: usize| {
        let mut server = Server::new(&servestudy::config().threads(threads));
        let mut answers = Vec::with_capacity(queries.len());
        for chunk in queries.chunks(servestudy::BATCH) {
            for &q in chunk {
                server.submit(q).expect("queue sized to the batch");
            }
            answers.extend(server.drain());
        }
        answers
    };
    assert_eq!(
        drain_all(1),
        drain_all(parallel_threads),
        "batched serve drains must be bit-identical across worker counts"
    );

    // Solver mix of one serial closed-loop pass (every solve lands on
    // this thread, so the thread-local counters capture it completely).
    let mix = measure_mix(queries.len(), || {
        let mut server = Server::new(&servestudy::config());
        for q in &queries {
            let _ = server.serve(q);
        }
    });

    // Closed loop: per-query service times and throughput, plus the
    // serve-stats delta for the hit-rate extras.
    let mut server = Server::new(&servestudy::config());
    let mut latencies_us = Vec::with_capacity(queries.len());
    let t0 = Instant::now();
    let ((), serve_delta) = bcc_serve::stats::scoped(|| {
        for q in &queries {
            let t = Instant::now();
            let _ = server.serve(q);
            latencies_us.push(t.elapsed().as_secs_f64() * 1e6);
        }
    });
    let qps = queries.len() as f64 / t0.elapsed().as_secs_f64();
    let ecdf = bcc_num::stats::Ecdf::new(latencies_us);

    // Repeated-state stream: the all-hit regime the cache gate watches.
    let repeated = servestudy::repeated_stream();
    let mut rep_server = Server::new(&servestudy::config());
    let t0 = Instant::now();
    let ((), rep_delta) = bcc_serve::stats::scoped(|| {
        for k in 0..servestudy::REPEATED_QUERIES {
            let d = rep_server.serve(&repeated.query(k)).expect("feasible");
            debug_assert!(k == 0 || d.served_from == ServedFrom::Cache);
        }
    });
    let repeated_qps = servestudy::REPEATED_QUERIES as f64 / t0.elapsed().as_secs_f64();

    // Chaos pass: the same workload under the canonical fault plan, with
    // malformed queries salted in. Bit-identical across worker counts
    // (the whole point of seed-driven injection), then one counted
    // closed-loop pass for the degradation extras the gate asserts on.
    let chaos_queries = servestudy::chaos_stream().queries(servestudy::MIXED_QUERIES);
    let chaos_config = servestudy::config().faults(servestudy::chaos_plan());
    let drain_chaos = |threads: usize| {
        let mut server = Server::new(&chaos_config.threads(threads));
        let mut answers = Vec::with_capacity(chaos_queries.len());
        for chunk in chaos_queries.chunks(servestudy::BATCH) {
            for &q in chunk {
                server.submit(q).expect("queue sized to the batch");
            }
            answers.extend(server.drain());
        }
        answers
    };
    assert_eq!(
        drain_chaos(1),
        drain_chaos(parallel_threads),
        "injected-fault drains must be bit-identical across worker counts"
    );
    let mut chaos_server = Server::new(&chaos_config);
    let ((), chaos_delta) = bcc_serve::stats::scoped(|| {
        for q in &chaos_queries {
            let _ = chaos_server.serve(q);
        }
    });

    let serial_ms = best_ms(REPS, || {
        drain_all(1);
    });
    let parallel_ms = best_ms(REPS, || {
        drain_all(parallel_threads);
    });
    Timing {
        name: "serve_loadgen",
        points: queries.len(),
        trials: servestudy::REPEATED_QUERIES as usize,
        serial_ms,
        parallel_ms,
        mix,
        extra: vec![
            ("qps", qps),
            ("p50_us", ecdf.quantile(0.50)),
            ("p99_us", ecdf.quantile(0.99)),
            ("p999_us", ecdf.quantile(0.999)),
            ("hit_rate", serve_delta.hit_rate()),
            ("repeated_qps", repeated_qps),
            ("repeated_cache_hits", rep_delta.cache_hits as f64),
            ("degraded", serve_delta.degraded as f64),
            ("chaos_degraded", chaos_delta.degraded as f64),
            (
                "chaos_validated_rejects",
                chaos_delta.validated_rejects as f64,
            ),
            ("chaos_panics", GENUINE_PANICS.load(Relaxed) as f64),
        ],
    }
}

fn render_json(available: usize, parallel: usize, timings: &[Timing]) -> String {
    let mut out = String::from("{\n  \"schema\": 7,\n");
    out.push_str(&format!(
        "  \"threads\": {{ \"available\": {available}, \"parallel\": {parallel} }},\n"
    ));
    out.push_str(&format!(
        "  \"block_size\": {},\n",
        bcc_core::batch::DEFAULT_BLOCK
    ));
    out.push_str("  \"scenarios\": [\n");
    for (i, t) in timings.iter().enumerate() {
        let extras: String = t
            .extra
            .iter()
            .map(|(k, v)| format!(", \"{k}\": {v:.3}"))
            .collect();
        out.push_str(&format!(
            "    {{ \"name\": \"{}\", \"points\": {}, \"trials\": {}, \
             \"serial_ms\": {:.3}, \"parallel_ms\": {:.3}, \"speedup\": {:.3}, \
             \"pivots\": {}, \"warm_hits\": {}, \"kernel_hits\": {}, \
             \"batched_points\": {}, \"lanes_filled\": {}, \
             \"allocs_per_point\": {:.3}{} }}{}\n",
            t.name,
            t.points,
            t.trials,
            t.serial_ms,
            t.parallel_ms,
            t.speedup(),
            t.mix.pivots,
            t.mix.warm_hits,
            t.mix.kernel_hits,
            t.mix.batched_points,
            t.mix.lanes_filled,
            t.mix.allocs_per_point,
            extras,
            if i + 1 < timings.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Applies the `--check` gate to one field of the Fig. 3 scenario.
/// Returns an error message on regression.
fn check_field(baseline: &str, timing: &Timing, field: &str, measured: f64) -> Result<(), String> {
    let Some(base) = benchjson::scenario_field(baseline, timing.name, field) else {
        return Err(format!(
            "baseline has no \"{field}\" for scenario \"{}\"",
            timing.name
        ));
    };
    let tolerance = tolerance();
    let allowed = base * tolerance;
    if measured > allowed {
        return Err(format!(
            "{} {field} regressed: {measured:.1} ms > {allowed:.1} ms \
             (baseline {base:.1} ms × {tolerance})",
            timing.name
        ));
    }
    println!(
        "check ok: {} {field} {measured:.1} ms within {allowed:.1} ms (baseline {base:.1} ms)",
        timing.name
    );
    Ok(())
}

fn main() {
    install_panic_audit();
    let mut out_path: Option<PathBuf> = None;
    let mut check_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = Some(PathBuf::from(args.next().expect("--out needs a path"))),
            "--check" => {
                check_path = Some(PathBuf::from(args.next().expect("--check needs a path")));
            }
            other => {
                eprintln!("usage: bench-report [--out PATH] [--check BASELINE.json]");
                panic!("unknown argument {other:?}");
            }
        }
    }
    let out_path = out_path.unwrap_or_else(|| results_dir().join("BENCH_evaluator.json"));

    let available = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let parallel = bcc_num::par::thread_count();
    println!("bench-report: {available} hardware threads, parallel mode uses {parallel}\n");

    let timings = [
        time_fig3(parallel),
        time_crossover(parallel),
        time_outage(parallel),
        time_deep_outage(parallel),
        time_multipair(parallel),
        time_city(parallel),
        time_serve(parallel),
    ];
    for t in &timings {
        println!(
            "{:<18} {:>6} pts {:>6} trials  serial {:>9.1} ms  parallel {:>9.1} ms  \
             speedup {:.2}x  pivots {:>8}  warm {:>7}  kernel {:>7}  batched {:>7}  \
             lanes {:>7}  allocs/pt {:>7.2}",
            t.name,
            t.points,
            t.trials,
            t.serial_ms,
            t.parallel_ms,
            t.speedup(),
            t.mix.pivots,
            t.mix.warm_hits,
            t.mix.kernel_hits,
            t.mix.batched_points,
            t.mix.lanes_filled,
            t.mix.allocs_per_point,
        );
        if !t.extra.is_empty() {
            let rendered: Vec<String> =
                t.extra.iter().map(|(k, v)| format!("{k} {v:.1}")).collect();
            println!("{:<18} {}", "", rendered.join("  "));
        }
    }

    let json = render_json(available, parallel, &timings);
    std::fs::write(&out_path, &json).expect("write BENCH_evaluator.json");
    println!("\nreport written to {}", out_path.display());

    if let Some(baseline_path) = check_path {
        let baseline = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("read baseline {}: {e}", baseline_path.display()));
        let fig3 = &timings[0];
        let mut failures = Vec::new();
        for (field, measured) in [
            ("serial_ms", fig3.serial_ms),
            ("parallel_ms", fig3.parallel_ms),
        ] {
            if let Err(msg) = check_field(&baseline, fig3, field, measured) {
                failures.push(msg);
            }
        }
        // A fast path going quiet is a silent perf loss even when wall
        // time hasn't (yet) tripped the timing gate on a fast runner. The
        // closed-form kernel carries all four protocols on the fig3
        // sweep, and it must run *batched* — a floor-free inner sweep
        // falling back to per-point scalar solves is a regression even at
        // identical answers. The warm-start path must still fire on the
        // workloads where the simplex is actually in play (floored serve
        // queries).
        if fig3.mix.kernel_hits == 0 {
            failures.push(
                "fig3_sweep kernel_hits == 0: the closed-form kernel never fired \
                 (silently disabled?)"
                    .to_string(),
            );
        } else {
            println!(
                "check ok: fig3_sweep kernel_hits = {}",
                fig3.mix.kernel_hits
            );
        }
        if fig3.mix.batched_points == 0 {
            failures.push(
                "fig3_sweep batched_points == 0: the sweep fell back to scalar \
                 per-point solves (batched lane kernels silently disabled?)"
                    .to_string(),
            );
        } else {
            println!(
                "check ok: fig3_sweep batched_points = {} (lanes_filled = {})",
                fig3.mix.batched_points, fig3.mix.lanes_filled
            );
        }
        let warm_total: u64 = timings.iter().map(|t| t.mix.warm_hits).sum();
        if warm_total == 0 {
            failures.push(
                "warm_hits == 0 across every scenario: the warm-start fast path \
                 never fired (silently disabled?)"
                    .to_string(),
            );
        } else {
            println!("check ok: warm_hits across scenarios = {warm_total}");
        }
        // The K-pair sweep hot loop must stay allocation-free per
        // pair-point (warm-up and result assembly amortise to noise on
        // this grid; 0.05 is far below one allocation per point).
        let scenario = |name: &str| {
            timings
                .iter()
                .find(|t| t.name == name)
                .unwrap_or_else(|| panic!("timings include {name}"))
        };
        // Deep-outage quality gates: the importance sampler must resolve
        // its ~1e-6 tail within the 10% relative-error budget, in fewer
        // trials than plain MC needs for a 1e-3 tail, with a genuine
        // per-trial variance advantage, and statistically consistent
        // with the closed-form answer.
        {
            use bcc_bench::deepstudy;
            let deep = scenario("deep_outage");
            let extra = |key: &str| {
                deep.extra
                    .iter()
                    .find(|(k, _)| *k == key)
                    .map(|(_, v)| *v)
                    .unwrap_or_else(|| panic!("deep_outage records {key}"))
            };
            let rel_err = extra("rel_err");
            if rel_err > deepstudy::REL_ERR_TARGET {
                failures.push(format!(
                    "deep_outage rel_err = {rel_err:.3}: the tilted estimator missed the \
                     {:.0}% relative-error budget even at the top of the trial ladder",
                    deepstudy::REL_ERR_TARGET * 100.0
                ));
            } else {
                println!("check ok: deep_outage rel_err = {rel_err:.3}");
            }
            if deep.trials >= deepstudy::PLAIN_MC_FLOOR {
                failures.push(format!(
                    "deep_outage is_trials = {}: the 1e-6 tail took at least as many \
                     trials as plain MC needs for 1e-3 ({})",
                    deep.trials,
                    deepstudy::PLAIN_MC_FLOOR
                ));
            } else {
                println!(
                    "check ok: deep_outage is_trials = {} (plain-MC 1e-3 floor {})",
                    deep.trials,
                    deepstudy::PLAIN_MC_FLOOR
                );
            }
            let var_ratio = extra("var_ratio");
            if var_ratio <= 1.0 {
                failures.push(format!(
                    "deep_outage var_ratio = {var_ratio:.2}: importance sampling lost its \
                     per-trial variance advantage over plain MC"
                ));
            } else {
                println!("check ok: deep_outage var_ratio = {var_ratio:.1}");
            }
            let abs_z = extra("abs_z");
            if abs_z > 5.0 {
                failures.push(format!(
                    "deep_outage abs_z = {abs_z:.2}: the estimate is more than 5 standard \
                     errors from the closed-form tail (biased sampler?)"
                ));
            } else {
                println!("check ok: deep_outage abs_z = {abs_z:.2}");
            }
        }
        let multipair = scenario("multipair_k3");
        if multipair.mix.allocs_per_point > 0.05 {
            failures.push(format!(
                "multipair_k3 allocs_per_point = {:.3}: the K-pair hot loop \
                 allocates per pair-point (budget 0.05)",
                multipair.mix.allocs_per_point
            ));
        } else {
            println!(
                "check ok: multipair_k3 allocs_per_point = {:.3}",
                multipair.mix.allocs_per_point
            );
        }
        if multipair.mix.kernel_hits == 0 {
            failures.push(
                "multipair_k3 kernel_hits == 0: the closed-form kernel never fired \
                 on the K-pair sweep (silently disabled?)"
                    .to_string(),
            );
        } else {
            println!(
                "check ok: multipair_k3 kernel_hits = {}",
                multipair.mix.kernel_hits
            );
        }
        // City-assignment gates: the greedy best-edge aggregate is a
        // per-pair maximum, so it can only fall below the random
        // baseline if the candidate reduction itself is broken; and the
        // streamed edge loop must stay allocation-free per edge and on
        // the batched kernel path.
        {
            let city = scenario("city_scale");
            let city_extra = |key: &str| {
                city.extra
                    .iter()
                    .find(|(k, _)| *k == key)
                    .map(|(_, v)| *v)
                    .unwrap_or_else(|| panic!("city timing records {key}"))
            };
            let assignment_rate = city_extra("assignment_rate");
            let random_rate = city_extra("random_rate");
            if assignment_rate < random_rate {
                failures.push(format!(
                    "city_scale assignment_rate = {assignment_rate:.4} < random_rate = \
                     {random_rate:.4}: greedy best-edge attachment lost to random \
                     (candidate reduction broken?)"
                ));
            } else {
                println!(
                    "check ok: city_scale assignment_rate {assignment_rate:.4} ≥ \
                     random_rate {random_rate:.4}"
                );
            }
            let refined_ts = city_extra("refined_ts_rate");
            let greedy_ts = city_extra("greedy_ts_rate");
            if refined_ts < greedy_ts {
                failures.push(format!(
                    "city_scale refined_ts_rate = {refined_ts:.4} < greedy seed's \
                     {greedy_ts:.4}: the refinement search regressed below its seed"
                ));
            } else {
                println!(
                    "check ok: city_scale refined_ts_rate {refined_ts:.4} ≥ greedy \
                     seed {greedy_ts:.4}"
                );
            }
            if city.mix.allocs_per_point > 0.05 {
                failures.push(format!(
                    "city_scale allocs_per_point = {:.3}: the streamed edge loop \
                     allocates per edge (budget 0.05)",
                    city.mix.allocs_per_point
                ));
            } else {
                println!(
                    "check ok: city_scale allocs_per_point = {:.3}",
                    city.mix.allocs_per_point
                );
            }
            if city.mix.batched_points == 0 {
                failures.push(
                    "city_scale batched_points == 0: the edge grid fell back to \
                     scalar per-point solves (lane kernels silently disabled?)"
                        .to_string(),
                );
            } else {
                println!(
                    "check ok: city_scale batched_points = {} (lanes_filled = {})",
                    city.mix.batched_points, city.mix.lanes_filled
                );
            }
        }
        // Serving-path gates: throughput is higher-is-better (a drop
        // below baseline/tolerance is the regression), and the two cache
        // fast-path canaries must fire — repeated-state streams must hit
        // the cache, and serve misses must reach the closed-form kernel.
        let serve = scenario("serve_loadgen");
        let measured_qps = serve
            .extra
            .iter()
            .find(|(k, _)| *k == "qps")
            .map(|(_, v)| *v)
            .expect("serve timing records qps");
        match benchjson::scenario_field(&baseline, serve.name, "qps") {
            Some(base_qps) => {
                let floor = base_qps / tolerance();
                if measured_qps < floor {
                    failures.push(format!(
                        "serve_loadgen qps regressed: {measured_qps:.0} q/s < {floor:.0} q/s \
                         (baseline {base_qps:.0} q/s ÷ {})",
                        tolerance()
                    ));
                } else {
                    println!(
                        "check ok: serve_loadgen qps {measured_qps:.0} above {floor:.0} \
                         (baseline {base_qps:.0})"
                    );
                }
            }
            None => failures.push("baseline has no \"qps\" for serve_loadgen".to_string()),
        }
        let repeated_hits = serve
            .extra
            .iter()
            .find(|(k, _)| *k == "repeated_cache_hits")
            .map(|(_, v)| *v)
            .expect("serve timing records repeated_cache_hits");
        if repeated_hits == 0.0 {
            failures.push(
                "serve_loadgen repeated_cache_hits == 0: a repeated-state stream \
                 never hit the decision cache (quantization or cache broken?)"
                    .to_string(),
            );
        } else {
            println!("check ok: serve_loadgen repeated_cache_hits = {repeated_hits:.0}");
        }
        if serve.mix.kernel_hits == 0 {
            failures.push(
                "serve_loadgen kernel_hits == 0: serve misses never reached the \
                 closed-form kernel (silently disabled?)"
                    .to_string(),
            );
        } else {
            println!(
                "check ok: serve_loadgen kernel_hits = {}",
                serve.mix.kernel_hits
            );
        }
        // Degradation gates, both directions: the fault-free stream must
        // never fall back to the conservative answer, and the injected
        // stream must degrade somewhere, reject its malformed queries,
        // and contain every injected panic.
        let serve_extra = |key: &str| {
            serve
                .extra
                .iter()
                .find(|(k, _)| *k == key)
                .map(|(_, v)| *v)
                .unwrap_or_else(|| panic!("serve timing records {key}"))
        };
        let degraded = serve_extra("degraded");
        if degraded > 0.0 {
            failures.push(format!(
                "serve_loadgen degraded = {degraded:.0} on the fault-free stream: \
                 a healthy serve must never fall back to the conservative answer"
            ));
        } else {
            println!("check ok: serve_loadgen degraded = 0 on the fault-free stream");
        }
        let chaos_degraded = serve_extra("chaos_degraded");
        if chaos_degraded == 0.0 {
            failures.push(
                "serve_loadgen chaos_degraded == 0: the injected fault plan never \
                 exercised the degraded fallback (injection silently disabled?)"
                    .to_string(),
            );
        } else {
            println!("check ok: serve_loadgen chaos_degraded = {chaos_degraded:.0}");
        }
        let chaos_rejects = serve_extra("chaos_validated_rejects");
        if chaos_rejects == 0.0 {
            failures.push(
                "serve_loadgen chaos_validated_rejects == 0: malformed queries were \
                 not refused up front"
                    .to_string(),
            );
        } else {
            println!("check ok: serve_loadgen chaos_validated_rejects = {chaos_rejects:.0}");
        }
        let chaos_panics = serve_extra("chaos_panics");
        if chaos_panics > 0.0 {
            failures.push(format!(
                "serve_loadgen chaos_panics = {chaos_panics:.0}: a genuine panic \
                 escaped the injected run (isolation broken)"
            ));
        } else {
            println!("check ok: serve_loadgen chaos_panics = 0");
        }
        if !failures.is_empty() {
            for msg in &failures {
                eprintln!("REGRESSION: {msg}");
            }
            std::process::exit(1);
        }
        println!("bench check passed against {}", baseline_path.display());
    }
}
