//! city — E-C1: the city-scale many-relay × many-pair assignment study.
//!
//! Places [`citystudy::PAIRS`] terminal pairs and [`citystudy::RELAYS`]
//! candidate relays on a disc, solves every `(pair, relay)` edge's
//! best-protocol sum rate through the streamed
//! [`bcc_core::city::CityEvaluator`], and compares the
//! three relay assignments (random attachment, greedy best-edge,
//! auction-refined) under both relay schedules. Headline shapes:
//! greedy dominates random on the congestion-free rate **by
//! construction**, and the refined assignment dominates both seeds on
//! the time-shared objective — the invariants the bench-report gates
//! pin.
//!
//! Configuration is shared with the `city_scale` bench-report scenario
//! via [`bcc_bench::citystudy`]. The CSV written to
//! `results/CITY_study.csv` is long-format:
//! `assignment, best_edge_rate, time_share_rate, joint_rate`.
//!
//! Usage:
//!
//! ```text
//! city [--pairs N] [--out PATH]
//! ```
//!
//! `--pairs` scales the placement (default 4000; the CI smoke leg uses
//! 400); `--out` defaults to `results/CITY_study.csv`.

use bcc_bench::{citystudy, results_dir};
use bcc_core::city::{AssignmentKind, ASSIGNMENTS, SCHEDULES};
use bcc_core::prelude::*;
use bcc_plot::{csv, Table};
use std::fs::File;
use std::path::PathBuf;

fn main() {
    let mut pairs = citystudy::PAIRS;
    let mut out_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--pairs" => {
                pairs = args
                    .next()
                    .expect("--pairs needs a count")
                    .parse()
                    .expect("--pairs takes an integer");
                assert!(pairs > 0, "--pairs must be positive");
            }
            "--out" => out_path = Some(PathBuf::from(args.next().expect("--out needs a path"))),
            other => {
                eprintln!("usage: city [--pairs N] [--out PATH]");
                panic!("unknown argument {other:?}");
            }
        }
    }
    let out_path = out_path.unwrap_or_else(|| results_dir().join("CITY_study.csv"));

    println!(
        "== E-C1: K = {pairs} pairs × n = {} relays on a {}-unit disc (γ = {}) ==\n",
        citystudy::RELAYS,
        citystudy::RADIUS,
        citystudy::GAMMA,
    );
    let result = Scenario::city(citystudy::topology(pairs), citystudy::POWER_DB)
        .protocols(citystudy::PROTOCOLS)
        .build()
        .sweep()
        .expect("city sweep is solvable");

    let mut table = Table::new(vec![
        "assignment".into(),
        "best-edge rate".into(),
        "time-share rate".into(),
        "joint rate".into(),
    ]);
    let mut rows: Vec<Vec<String>> = vec![vec![
        "assignment".into(),
        "best_edge_rate".into(),
        "time_share_rate".into(),
        "joint_rate".into(),
    ]];
    for kind in ASSIGNMENTS {
        let best = result.best_edge_rate(kind);
        let ts = result.scheduled_rate(kind, Schedule::TimeShare);
        let joint = result.scheduled_rate(kind, Schedule::Joint);
        table.row(vec![
            kind.to_string(),
            format!("{best:.4}"),
            format!("{ts:.4}"),
            format!("{joint:.4}"),
        ]);
        rows.push(vec![
            kind.to_string(),
            format!("{best:.12}"),
            format!("{ts:.12}"),
            format!("{joint:.12}"),
        ]);
    }
    println!("{}", table.render());

    // Shape claims (also pinned by the bench-report gates and the
    // dominance proptests).
    assert!(
        result.best_edge_rate(AssignmentKind::Greedy)
            >= result.best_edge_rate(AssignmentKind::Random),
        "greedy best-edge rate must dominate random attachment"
    );
    let refined = result.scheduled_rate(AssignmentKind::Refined, Schedule::TimeShare);
    for seed in [AssignmentKind::Greedy, AssignmentKind::Random] {
        assert!(
            refined >= result.scheduled_rate(seed, Schedule::TimeShare),
            "refined must dominate the {seed} seed on the time-shared objective"
        );
    }
    for kind in ASSIGNMENTS {
        for schedule in SCHEDULES {
            assert!(
                result.scheduled_rate(kind, schedule).is_finite(),
                "{kind}/{schedule} rate must be finite"
            );
        }
    }
    let gain = result.best_edge_rate(AssignmentKind::Greedy)
        / result.best_edge_rate(AssignmentKind::Random);
    println!("greedy-over-random best-edge gain: {gain:.3}×\n");

    let f = File::create(&out_path).expect("create CSV");
    csv::write_rows(f, &rows).expect("write CSV");
    println!("wrote {}", out_path.display());
}
