//! E-X1 — the paper's low-vs-high SNR protocol reversal.
//!
//! Runs one power-sweep `Scenario` at the Fig. 4 gains and reports each
//! protocol's optimal sum rate, then locates the exact MABC/TDBC crossover
//! power by bisection and the band where HBC is *strictly* better than
//! both special cases (the paper's Fig. 3 observation that HBC "does not
//! reduce to either protocol in general").

use bcc_bench::{fig4_network, results_dir, sweep_series};
use bcc_core::comparison::sum_rate_crossover_db;
use bcc_core::prelude::*;
use bcc_plot::{csv, Series, Table};
use std::fs::File;

fn main() {
    let net = fig4_network(0.0);

    let sweep = Scenario::power_sweep_db(net, (-10..=25).map(f64::from))
        .build()
        .sweep()
        .expect("LP solvable");

    let mut series = sweep_series(&sweep);
    let mut best = Series::new("best");
    let mut table = Table::new(vec![
        "P [dB]".into(),
        "DT".into(),
        "MABC".into(),
        "TDBC".into(),
        "HBC".into(),
        "winner".into(),
    ]);
    for (i, &p_db) in sweep.xs.iter().enumerate() {
        let mut row = vec![format!("{p_db}")];
        for proto in Protocol::ALL {
            row.push(format!(
                "{:.4}",
                sweep.series(proto).expect("all protocols").solutions[i].sum_rate
            ));
        }
        let winner = sweep.winner(i);
        best.push(p_db, sweep.series(winner).unwrap().solutions[i].sum_rate);
        row.push(winner.name().to_string());
        table.row(row);
    }
    series.push(best);
    println!("== E-X1: optimal sum rates vs transmit power (Fig. 4 gains) ==");
    println!("{}", table.render());

    match sum_rate_crossover_db(&net, Protocol::Mabc, Protocol::Tdbc, -10.0, 25.0)
        .expect("LP solvable")
    {
        Some(p) => println!("MABC/TDBC sum-rate crossover at P = {:.3} dB", p.value()),
        None => println!("no MABC/TDBC crossover in [-10, 25] dB"),
    }
    let hbc_strict_band = sweep.strict_wins(Protocol::Hbc, 1e-6);
    if let (Some(lo), Some(hi)) = (hbc_strict_band.first(), hbc_strict_band.last()) {
        println!(
            "HBC strictly beats both special cases for P ∈ [{lo}, {hi}] dB \
             ({} grid points)",
            hbc_strict_band.len()
        );
    } else {
        println!("HBC never strictly better on this grid");
    }

    let f = File::create(results_dir().join("crossover_sum_rates.csv")).expect("create csv");
    csv::write_series(f, "power_db", &series).expect("write csv");
    println!("\nCSV written to {}", results_dir().display());
}
