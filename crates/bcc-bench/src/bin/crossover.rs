//! E-X1 — the paper's low-vs-high SNR protocol reversal.
//!
//! Sweeps the transmit power at the Fig. 4 gains and reports each
//! protocol's optimal sum rate, then locates the exact MABC/TDBC crossover
//! power by bisection and the band where HBC is *strictly* better than
//! both special cases (the paper's Fig. 3 observation that HBC "does not
//! reduce to either protocol in general").

use bcc_bench::{fig4_network, results_dir};
use bcc_core::comparison::{sum_rate_crossover_db, SumRateComparison};
use bcc_core::protocol::Protocol;
use bcc_plot::{csv, Series, Table};
use std::fs::File;

fn main() {
    let net = fig4_network(0.0);

    let mut series: Vec<Series> = Protocol::ALL
        .iter()
        .map(|p| Series::new(p.name()))
        .collect();
    let mut best = Series::new("best");
    let mut table = Table::new(vec![
        "P [dB]".into(),
        "DT".into(),
        "MABC".into(),
        "TDBC".into(),
        "HBC".into(),
        "winner".into(),
    ]);
    let mut hbc_strict_band: Vec<f64> = Vec::new();
    for p_int in -10..=25 {
        let p_db = p_int as f64;
        let n = net.with_power_db(bcc_num::Db::new(p_db));
        let cmp = SumRateComparison::evaluate(&n).expect("LP solvable");
        let mut row = vec![format!("{p_db}")];
        for (i, proto) in Protocol::ALL.iter().enumerate() {
            let sr = cmp.get(*proto).sum_rate;
            series[i].push(p_db, sr);
            row.push(format!("{sr:.4}"));
        }
        let hbc = cmp.get(Protocol::Hbc).sum_rate;
        let mabc = cmp.get(Protocol::Mabc).sum_rate;
        let tdbc = cmp.get(Protocol::Tdbc).sum_rate;
        if hbc > mabc.max(tdbc) + 1e-6 {
            hbc_strict_band.push(p_db);
        }
        best.push(p_db, cmp.best().sum_rate);
        row.push(cmp.best().protocol.name().to_string());
        table.row(row);
    }
    println!("== E-X1: optimal sum rates vs transmit power (Fig. 4 gains) ==");
    println!("{}", table.render());

    match sum_rate_crossover_db(&net, Protocol::Mabc, Protocol::Tdbc, -10.0, 25.0)
        .expect("LP solvable")
    {
        Some(p) => println!("MABC/TDBC sum-rate crossover at P = {:.3} dB", p.value()),
        None => println!("no MABC/TDBC crossover in [-10, 25] dB"),
    }
    if let (Some(lo), Some(hi)) = (hbc_strict_band.first(), hbc_strict_band.last()) {
        println!(
            "HBC strictly beats both special cases for P ∈ [{lo}, {hi}] dB \
             ({} grid points)",
            hbc_strict_band.len()
        );
    } else {
        println!("HBC never strictly better on this grid");
    }

    let f = File::create(results_dir().join("crossover_sum_rates.csv")).expect("create csv");
    csv::write_series(f, "power_db", &series).expect("write csv");
    println!("\nCSV written to {}", results_dir().display());
}
