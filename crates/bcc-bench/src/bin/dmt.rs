//! dmt — E-D1/E-D2: the finite-SNR diversity–multiplexing tradeoff and
//! optimum-power-allocation study (after Yi & Kim, "Finite-SNR
//! Diversity-Multiplexing Tradeoff and Optimum Power Allocation in
//! Bidirectional Cooperative Networks").
//!
//! * **E-D1 (DMT sweep)** — outage probability of every protocol at
//!   multiplexing gains `r ∈ {0.1, 0.25, 0.5}` over a 0–20 dB SNR grid on
//!   the symmetric unit-gain network, with pointwise and least-squares
//!   finite-SNR diversity slopes. Headline shape: at low `r`, direct
//!   transmission's slope sits near its single-path diversity 1 while the
//!   protocols that exploit the overheard direct link (TDBC, HBC) fall
//!   visibly faster.
//! * **E-D2 (power allocation)** — per protocol, the split of a fixed
//!   total budget (3·P at P = 10 dB) minimising outage, found by
//!   golden-section search on the ε-outage rate. On the symmetric
//!   channel the optimum degenerates to balanced terminals — pinned by
//!   the golden tests in `crates/bcc/tests/dmt_golden.rs`, which share
//!   this binary's configuration via `bcc_bench::dmtstudy`.
//!
//! Usage:
//!
//! ```text
//! dmt [--trials N] [--out PATH]
//! ```
//!
//! `--trials` scales both studies (default 4000 / 2000); `--out` defaults
//! to `results/DMT_study.json`.

use bcc_bench::{dmtstudy, results_dir};
use bcc_core::prelude::*;
use bcc_plot::{Chart, Series, Table};
use std::path::PathBuf;

fn fmt_probs(probs: &[f64]) -> Vec<String> {
    probs.iter().map(|p| format!("{p:.4}")).collect()
}

fn json_array(values: &[f64]) -> String {
    let inner: Vec<String> = values
        .iter()
        .map(|v| {
            if v.is_finite() {
                format!("{v:.6}")
            } else {
                "null".to_string()
            }
        })
        .collect();
    format!("[{}]", inner.join(", "))
}

fn render_json(
    dmt: &DmtResult,
    alloc: &AllocationResult,
    trials: usize,
    alloc_trials: usize,
) -> String {
    let mut out = String::from("{\n  \"schema\": 1,\n");
    out.push_str(&format!("  \"trials\": {trials},\n"));
    out.push_str(&format!(
        "  \"snr_db\": {},\n",
        json_array(
            &dmt.snrs
                .iter()
                .map(|s| 10.0 * s.log10())
                .collect::<Vec<f64>>()
        )
    ));
    out.push_str(&format!("  \"gains\": {},\n", json_array(&dmt.gains)));
    out.push_str("  \"protocols\": [\n");
    let protos = dmt.protocols();
    for (pi, &p) in protos.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"name\": \"{}\",\n      \"outage\": [",
            p.name()
        ));
        let rows: Vec<String> = (0..dmt.gains.len())
            .map(|gi| json_array(dmt.outage(p, gi)))
            .collect();
        out.push_str(&rows.join(", "));
        out.push_str("],\n      \"diversity\": [");
        let rows: Vec<String> = (0..dmt.gains.len())
            .map(|gi| json_array(dmt.diversity(p, gi)))
            .collect();
        out.push_str(&rows.join(", "));
        out.push_str("],\n      \"diversity_fit\": ");
        let fits: Vec<f64> = (0..dmt.gains.len())
            .map(|gi| dmt.diversity_fit(p, gi).unwrap_or(f64::NAN))
            .collect();
        out.push_str(&json_array(&fits));
        out.push_str(&format!(
            " }}{}\n",
            if pi + 1 < protos.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"allocation\": {{ \"eps\": {}, \"trials\": {alloc_trials}, \"total_power\": {:.6}, \"entries\": [\n",
        alloc.eps, alloc.total_power
    ));
    let entries: Vec<&Allocation> = alloc.entries().collect();
    for (i, a) in entries.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"protocol\": \"{}\", \"p_a\": {:.6}, \"p_b\": {:.6}, \"p_r\": {:.6}, \
             \"relay_share\": {:.6}, \"terminal_balance\": {:.6}, \
             \"value\": {:.6}, \"uniform_value\": {:.6} }}{}\n",
            a.protocol.name(),
            a.split.p_a(),
            a.split.p_b(),
            a.split.p_r(),
            a.split.relay_share(),
            a.split.terminal_balance(),
            a.value,
            a.uniform_value,
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    out.push_str("  ] }\n}\n");
    out
}

fn main() {
    let mut trials: Option<usize> = None;
    let mut out_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--trials" => {
                trials = Some(
                    args.next()
                        .expect("--trials needs a count")
                        .parse()
                        .expect("--trials needs an integer"),
                );
            }
            "--out" => out_path = Some(PathBuf::from(args.next().expect("--out needs a path"))),
            other => {
                eprintln!("usage: dmt [--trials N] [--out PATH]");
                panic!("unknown argument {other:?}");
            }
        }
    }
    let dmt_trials = trials.unwrap_or(dmtstudy::TRIALS);
    let alloc_trials = trials.unwrap_or(dmtstudy::TRIALS / 2);
    let out_path = out_path.unwrap_or_else(|| results_dir().join("DMT_study.json"));

    // ---- E-D1: the finite-SNR DMT sweep.
    println!(
        "== E-D1: finite-SNR DMT sweep ({dmt_trials} trials/point, seed {:#x}) ==",
        dmtstudy::SEED
    );
    let dmt = dmtstudy::dmt_scenario(dmt_trials)
        .build()
        .dmt()
        .expect("DMT estimation runs");
    for (gi, &r) in dmt.gains.clone().iter().enumerate() {
        let mut table = Table::new(
            std::iter::once("SNR [dB]".to_string())
                .chain(dmt.protocols().iter().map(|p| p.name().to_string()))
                .collect(),
        );
        for (k, &snr) in dmt.snrs.iter().enumerate() {
            let mut row = vec![format!("{:.0}", 10.0 * snr.log10())];
            for &p in dmt.protocols() {
                row.push(fmt_probs(dmt.outage(p, gi))[k].clone());
            }
            table.row(row);
        }
        println!("-- outage probability at r = {r}");
        println!("{}", table.render());
        let mut chart = Chart::new(64, 16)
            .title(format!("P_out vs SNR at r = {r} (log10)"))
            .x_label("SNR [dB]")
            .y_label("log10 P_out");
        for &p in dmt.protocols() {
            let pts: Vec<(f64, f64)> = dmt
                .snrs
                .iter()
                .zip(dmt.outage(p, gi))
                .filter(|&(_, &prob)| prob > 0.0)
                .map(|(&s, &prob)| (10.0 * s.log10(), prob.log10()))
                .collect();
            if pts.len() >= 2 {
                chart = chart.add(Series::from_points(p.name(), pts));
            }
        }
        println!("{}", chart.render());
        for &p in dmt.protocols() {
            if let Some(d) = dmt.diversity_fit(p, gi) {
                println!("   finite-SNR diversity fit {}: {d:.3}", p.name());
            }
        }
        println!();
    }

    // ---- E-D2: optimum power allocation on the symmetric channel.
    println!(
        "== E-D2: power allocation (ε = {}, {alloc_trials} trials) ==",
        dmtstudy::EPS
    );
    let alloc = dmtstudy::allocation_scenario(alloc_trials)
        .build()
        .allocation(dmtstudy::EPS)
        .expect("allocation search runs");
    let mut table = Table::new(
        ["protocol", "relay share", "balance", "eps-rate", "uniform"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
    );
    for a in alloc.entries() {
        table.row(vec![
            a.protocol.name().to_string(),
            format!("{:.3}", a.split.relay_share()),
            format!("{:.3}", a.split.terminal_balance()),
            format!("{:.4}", a.value),
            format!("{:.4}", a.uniform_value),
        ]);
    }
    println!("{}", table.render());

    let json = render_json(&dmt, &alloc, dmt_trials, alloc_trials);
    std::fs::write(&out_path, &json).expect("write DMT_study.json");
    println!("study written to {}", out_path.display());
}
