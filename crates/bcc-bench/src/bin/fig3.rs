//! E-F3a/E-F3b — regenerate Fig. 3: "Achievable sum rates of the
//! protocols (P = 15 dB, G_ab = 0 dB)".
//!
//! The scanned caption pins only `P` and `G_ab`; the relay-gain axis is
//! reproduced two ways (DESIGN.md §2):
//!
//! * **Sweep A (symmetric gains)** — `G_ar = G_br` swept from 0 to 30 dB.
//! * **Sweep B (relay position)** — relay at `d ∈ (0, 1)` on the a–b line
//!   with path-loss exponent γ = 3 (G_ab normalised to 0 dB).
//!
//! Both sweeps run through the batch `Scenario` evaluator — the same code
//! path the test-suite pins down. Shape claims checked here (and recorded
//! in EXPERIMENTS.md): HBC ≥ max(MABC, TDBC) everywhere, strictly greater
//! somewhere; DT is the floor once the relay links are stronger than the
//! direct link.

use bcc_bench::{sweep_series, FIG3_GAB_DB, FIG3_POWER_DB};
use bcc_core::prelude::*;
use bcc_plot::{csv, Chart, Series, Table};
use std::fs::File;

fn report(label: &str, sweep: &SweepResult) -> Vec<Series> {
    let series = sweep_series(sweep);
    let mut table = Table::new(
        std::iter::once(sweep.x_name.clone())
            .chain(Protocol::ALL.iter().map(|p| p.name().to_string()))
            .collect(),
    );
    for (i, &x) in sweep.xs.iter().enumerate() {
        let mut row = vec![format!("{x:.2}")];
        for proto in Protocol::ALL {
            row.push(format!(
                "{:.4}",
                sweep.series(proto).expect("all protocols").solutions[i].sum_rate
            ));
        }
        table.row(row);
    }
    println!("== Fig. 3 {label} ==");
    println!("{}", table.render());
    let mut chart = Chart::new(64, 18)
        .title(format!(
            "Fig. 3 {label}: optimal sum rate (P = {FIG3_POWER_DB} dB)"
        ))
        .x_label(&sweep.x_name)
        .y_label("sum rate [bits/use]");
    for s in &series {
        chart = chart.add(s.clone());
    }
    println!("{}", chart.render());
    series
}

fn check_shape(sweep: &SweepResult) {
    let strictly_better = sweep.strict_wins(Protocol::Hbc, 1e-6).len();
    for i in 0..sweep.len() {
        let h = sweep.series(Protocol::Hbc).unwrap().solutions[i].sum_rate;
        let m = sweep.series(Protocol::Mabc).unwrap().solutions[i].sum_rate;
        let t = sweep.series(Protocol::Tdbc).unwrap().solutions[i].sum_rate;
        assert!(h >= m - 1e-8 && h >= t - 1e-8, "HBC dominated at index {i}");
    }
    println!(
        "shape check: HBC >= max(MABC,TDBC) at all {} points; strictly greater at {}\n",
        sweep.len(),
        strictly_better
    );
}

fn main() {
    // ---- Sweep A: symmetric relay gains (E-F3a).
    let sweep_a =
        Scenario::symmetric_gain_sweep_db(FIG3_POWER_DB, FIG3_GAB_DB, (0..=30).map(f64::from))
            .build()
            .sweep()
            .expect("sum-rate LPs solvable");
    let series_a = report("sweep A (G_ar = G_br)", &sweep_a);
    check_shape(&sweep_a);
    let f = File::create(bcc_bench::results_dir().join("fig3_symmetric.csv")).expect("create csv");
    csv::write_series(f, "relay_gain_db", &series_a).expect("write csv");

    // ---- Sweep B: relay position on the a-b line (E-F3b).
    let sweep_b =
        Scenario::relay_position_sweep(FIG3_POWER_DB, 3.0, (1..=19).map(|i| i as f64 / 20.0))
            .expect("positions in (0,1)")
            .build()
            .sweep()
            .expect("sum-rate LPs solvable");
    let series_b = report("sweep B (relay position, γ = 3)", &sweep_b);
    check_shape(&sweep_b);
    let f = File::create(bcc_bench::results_dir().join("fig3_position.csv")).expect("create csv");
    csv::write_series(f, "relay_position", &series_b).expect("write csv");

    println!("CSV written to {}", bcc_bench::results_dir().display());
}
