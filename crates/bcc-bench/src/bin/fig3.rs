//! E-F3a/E-F3b — regenerate Fig. 3: "Achievable sum rates of the
//! protocols (P = 15 dB, G_ab = 0 dB)".
//!
//! The scanned caption pins only `P` and `G_ab`; the relay-gain axis is
//! reproduced two ways (DESIGN.md §2):
//!
//! * **Sweep A (symmetric gains)** — `G_ar = G_br` swept from 0 to 30 dB.
//! * **Sweep B (relay position)** — relay at `d ∈ (0, 1)` on the a–b line
//!   with path-loss exponent γ = 3 (G_ab normalised to 0 dB).
//!
//! Shape claims checked here (and recorded in EXPERIMENTS.md):
//! HBC ≥ max(MABC, TDBC) everywhere, strictly greater somewhere; DT is the
//! floor once the relay links are stronger than the direct link.

use bcc_bench::{fig3_symmetric_network, results_dir, FIG3_POWER_DB};
use bcc_channel::topology::LineNetwork;
use bcc_core::gaussian::GaussianNetwork;
use bcc_core::protocol::Protocol;
use bcc_num::Db;
use bcc_plot::{csv, Chart, Series, Table};
use std::fs::File;

fn sweep(
    label: &str,
    x_name: &str,
    xs: &[f64],
    net_of: impl Fn(f64) -> GaussianNetwork,
) -> Vec<Series> {
    let mut series: Vec<Series> = Protocol::ALL
        .iter()
        .map(|p| Series::new(p.name()))
        .collect();
    let mut table = Table::new(
        std::iter::once(x_name.to_string())
            .chain(Protocol::ALL.iter().map(|p| p.name().to_string()))
            .collect(),
    );
    for &x in xs {
        let net = net_of(x);
        let mut row = vec![format!("{x:.2}")];
        for (i, proto) in Protocol::ALL.iter().enumerate() {
            let sr = net
                .max_sum_rate(*proto)
                .expect("sum-rate LP solvable")
                .sum_rate;
            series[i].push(x, sr);
            row.push(format!("{sr:.4}"));
        }
        table.row(row);
    }
    println!("== Fig. 3 {label} ==");
    println!("{}", table.render());
    println!(
        "{}",
        Chart::new(64, 18)
            .title(format!("Fig. 3 {label}: optimal sum rate (P = {FIG3_POWER_DB} dB)"))
            .x_label(x_name)
            .y_label("sum rate [bits/use]")
            .add(series[0].clone())
            .add(series[1].clone())
            .add(series[2].clone())
            .add(series[3].clone())
            .render()
    );
    series
}

fn check_shape(series: &[Series]) {
    // Order matches Protocol::ALL: DT, MABC, TDBC, HBC.
    let (mabc, tdbc, hbc) = (&series[1], &series[2], &series[3]);
    let mut strictly_better = 0usize;
    for i in 0..hbc.len() {
        let h = hbc.points[i].1;
        let m = mabc.points[i].1;
        let t = tdbc.points[i].1;
        assert!(h >= m - 1e-8 && h >= t - 1e-8, "HBC dominated at index {i}");
        if h > m.max(t) + 1e-6 {
            strictly_better += 1;
        }
    }
    println!(
        "shape check: HBC >= max(MABC,TDBC) at all {} points; strictly greater at {}\n",
        hbc.len(),
        strictly_better
    );
}

fn main() {
    // ---- Sweep A: symmetric relay gains (E-F3a).
    let xs_a: Vec<f64> = (0..=30).map(|g| g as f64).collect();
    let series_a = sweep("sweep A (G_ar = G_br)", "relay gain [dB]", &xs_a, |g| {
        fig3_symmetric_network(g)
    });
    check_shape(&series_a);
    let f = File::create(results_dir().join("fig3_symmetric.csv")).expect("create csv");
    csv::write_series(f, "relay_gain_db", &series_a).expect("write csv");

    // ---- Sweep B: relay position on the a-b line (E-F3b).
    let xs_b: Vec<f64> = (1..=19).map(|i| i as f64 / 20.0).collect();
    let series_b = sweep("sweep B (relay position, γ = 3)", "relay position d", &xs_b, |d| {
        GaussianNetwork::new(
            Db::new(FIG3_POWER_DB).to_linear(),
            LineNetwork::new(d, 3.0).channel_state(),
        )
    });
    check_shape(&series_b);
    let f = File::create(results_dir().join("fig3_position.csv")).expect("create csv");
    csv::write_series(f, "relay_position", &series_b).expect("write csv");

    println!("CSV written to {}", results_dir().display());
}
