//! E-F4a/E-F4b/E-X2 — regenerate Fig. 4: achievable rate regions and
//! outer bounds at P = 0 dB (top panel) and P = 10 dB (bottom panel),
//! gains `G_ab = −7 dB, G_ar = 0 dB, G_br = 5 dB`.
//!
//! Each panel is one single-point `Scenario` whose evaluator traces every
//! protocol's bounds (capacity protocols once, open protocols inner +
//! outer):
//!
//! * DT capacity, MABC capacity (Theorem 2 — inner = outer),
//! * TDBC achievable (Theorem 3) and TDBC outer (Theorem 4),
//! * HBC achievable (Theorem 5) and the Gaussian-restricted Theorem-6
//!   ρ-family (reported as a reference curve; the paper declines to
//!   evaluate the true HBC outer bound — DESIGN.md §2).
//!
//! The binary also verifies the paper's Section-IV observation (E-X2):
//! at P = 10 dB some HBC-achievable points lie **outside** the MABC and
//! TDBC outer bounds.

use bcc_bench::{fig4_network, results_dir, FIG4_POWERS_DB};
use bcc_core::comparison::hbc_outside_competitor_outer_bounds;
use bcc_core::prelude::*;
use bcc_plot::{csv, Chart, Series};
use std::fs::File;

const BOUNDARY_POINTS: usize = 48;

fn trace_label(t: &RegionTrace) -> String {
    if t.is_capacity {
        format!("{} capacity", t.protocol.name())
    } else if t.protocol == Protocol::Hbc && t.bound == Bound::Outer {
        "HBC outer (Gaussian-restricted)".to_string()
    } else {
        format!("{} {}", t.protocol.name(), t.bound)
    }
}

fn panel(p_db: f64) -> Vec<Series> {
    let net = fig4_network(p_db);
    println!("== Fig. 4 panel: P = {p_db} dB ({}) ==", net.state());
    let regions = Scenario::at(net)
        .build()
        .regions(BOUNDARY_POINTS)
        .expect("boundary trace");
    let series: Vec<Series> = regions[0]
        .traces
        .iter()
        .map(|t| {
            // Fig. 4 plots Ra on x and Rb on y.
            Series::from_points(
                trace_label(t),
                t.boundary.iter().map(|p| (p.ra, p.rb)).collect(),
            )
        })
        .collect();

    let mut chart = Chart::new(64, 20)
        .title(format!("Fig. 4: rate regions at P = {p_db} dB"))
        .x_label("Ra [bits/use]")
        .y_label("Rb [bits/use]");
    for s in &series {
        chart = chart.add(s.clone());
    }
    println!("{}", chart.render());

    for s in &series {
        let tip = s
            .points
            .iter()
            .map(|(ra, rb)| ra + rb)
            .fold(f64::NEG_INFINITY, f64::max);
        println!("  max sum rate on {:<32} {:.4}", s.name, tip);
    }
    println!();
    series
}

fn main() {
    for p_db in FIG4_POWERS_DB {
        let series = panel(p_db);
        let f = File::create(results_dir().join(format!("fig4_regions_p{}db.csv", p_db as i64)))
            .expect("create csv");
        // Region boundaries do not share an x-grid; store as (name, ra, rb)
        // triples instead.
        let mut rows = vec![vec![
            "region".to_string(),
            "ra".to_string(),
            "rb".to_string(),
        ]];
        for s in &series {
            for (ra, rb) in &s.points {
                rows.push(vec![s.name.clone(), format!("{ra}"), format!("{rb}")]);
            }
        }
        csv::write_rows(f, &rows).expect("write csv");
    }

    // E-X2: the paper's "HBC escapes both outer bounds" observation.
    println!("== E-X2: HBC achievable points vs MABC/TDBC outer bounds ==");
    for p_db in [0.0, 10.0] {
        let net = fig4_network(p_db);
        let violations = hbc_outside_competitor_outer_bounds(&net, 64).expect("violation scan");
        let mabc = violations
            .iter()
            .filter(|v| v.victim == Protocol::Mabc)
            .count();
        let tdbc = violations
            .iter()
            .filter(|v| v.victim == Protocol::Tdbc)
            .count();
        println!(
            "P = {p_db:>4} dB: {mabc} boundary points outside MABC outer, {tdbc} outside TDBC outer"
        );
        if let Some(v) = violations.first() {
            println!(
                "  example witness: {} outside {} outer bound",
                v.witness, v.victim
            );
        }
    }
    println!("\nCSV written to {}", results_dir().display());
}
