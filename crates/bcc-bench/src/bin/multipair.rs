//! multipair — E-M1/E-M2: the `K`-pair shared-relay study (after Kim,
//! Smida & Devroye, "Achievable rate regions and outer bounds for a
//! multi-pair bi-directional relay network").
//!
//! * **E-M1 (scheduling sweep)** — for every protocol and both relay
//!   schedules (equal time-share vs jointly optimised), the network sum
//!   rate and the fair (max–min per-user) rate of the canonical
//!   three-pair set over a 0–20 dB SNR grid. Headline shapes: joint
//!   scheduling dominates time-sharing everywhere, and the gap is widest
//!   where the pairs are most dissimilar (low SNR, where the
//!   direct-advantaged pair starves under TDMA).
//! * **E-M2 (multi-pair outage)** — Rayleigh ε-outage schedule sum rates
//!   on the same grid, each pair fading through its own decorrelated
//!   stream.
//!
//! Both studies share their configuration with the workspace golden
//! tests via [`bcc_bench::multipairstudy`]. The CSV written to
//! `results/MULTIPAIR_study.csv` is long-format:
//! `power_db, protocol, schedule, sum_rate, fair_rate, outage_rate_eps10`.
//!
//! Usage:
//!
//! ```text
//! multipair [--trials N] [--out PATH]
//! ```
//!
//! `--trials` scales the outage study (default 2000; the CI smoke leg
//! uses 200); `--out` defaults to `results/MULTIPAIR_study.csv`.

use bcc_bench::{multipairstudy, results_dir};
use bcc_core::prelude::*;
use bcc_plot::{csv, Chart, Series, Table};
use std::fs::File;
use std::path::PathBuf;

fn main() {
    let mut trials = multipairstudy::TRIALS;
    let mut out_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--trials" => {
                trials = args
                    .next()
                    .expect("--trials needs a count")
                    .parse()
                    .expect("--trials takes an integer");
                assert!(trials > 0, "--trials must be positive");
            }
            "--out" => out_path = Some(PathBuf::from(args.next().expect("--out needs a path"))),
            other => {
                eprintln!("usage: multipair [--trials N] [--out PATH]");
                panic!("unknown argument {other:?}");
            }
        }
    }
    let out_path = out_path.unwrap_or_else(|| results_dir().join("MULTIPAIR_study.csv"));

    println!(
        "== E-M1: K = {} pairs, schedules on the {}-point {}-{} dB grid ==\n",
        multipairstudy::K,
        multipairstudy::SNR_GRID_DB.len(),
        multipairstudy::SNR_GRID_DB[0],
        multipairstudy::SNR_GRID_DB[multipairstudy::SNR_GRID_DB.len() - 1]
    );
    let sweep = multipairstudy::sweep_scenario()
        .build()
        .sweep()
        .expect("multi-pair sweep is solvable");
    let outage = multipairstudy::outage_scenario(trials)
        .build()
        .outage()
        .expect("multi-pair outage runs");

    let mut table = Table::new(vec![
        "P [dB]".into(),
        "protocol".into(),
        "schedule".into(),
        "sum rate".into(),
        "fair rate".into(),
        format!("eps={} outage rate", multipairstudy::EPS),
    ]);
    let mut rows: Vec<Vec<String>> = vec![vec![
        "power_db".into(),
        "protocol".into(),
        "schedule".into(),
        "sum_rate".into(),
        "fair_rate".into(),
        "outage_rate_eps10".into(),
    ]];
    for (i, &p_db) in sweep.xs.iter().enumerate() {
        for proto in Protocol::ALL {
            for schedule in SCHEDULES {
                let sum = sweep.sum_rate(proto, i, schedule);
                let fair = sweep.fair_rate(proto, i, schedule);
                let eps_rate =
                    bcc_num::stats::Ecdf::new(outage.schedule_samples(proto, i, schedule))
                        .quantile(multipairstudy::EPS);
                table.row(vec![
                    format!("{p_db:.0}"),
                    proto.name().into(),
                    schedule.to_string(),
                    format!("{sum:.4}"),
                    format!("{fair:.4}"),
                    format!("{eps_rate:.4}"),
                ]);
                rows.push(vec![
                    format!("{p_db}"),
                    proto.name().into(),
                    schedule.to_string(),
                    format!("{sum:.12}"),
                    format!("{fair:.12}"),
                    format!("{eps_rate:.12}"),
                ]);
            }
        }
    }
    println!("{}", table.render());

    // Joint-vs-TDMA headline chart for HBC (the dominant protocol).
    let mut chart = Chart::new(64, 16)
        .title(format!(
            "E-M1: HBC sum rate, K = {} (joint vs time-share)",
            multipairstudy::K
        ))
        .x_label("power [dB]")
        .y_label("sum rate [bits/use]");
    for schedule in SCHEDULES {
        chart = chart.add(Series::from_points(
            schedule.to_string(),
            sweep.sum_rate_series(Protocol::Hbc, schedule),
        ));
    }
    println!("{}", chart.render());

    // Shape claims (also pinned by the golden tests).
    for proto in Protocol::ALL {
        for i in 0..sweep.len() {
            assert!(
                sweep.sum_rate(proto, i, Schedule::Joint)
                    >= sweep.sum_rate(proto, i, Schedule::TimeShare) - 1e-12,
                "{proto}: joint must dominate time-share"
            );
        }
    }

    csv::write_rows(File::create(&out_path).expect("create CSV"), &rows).expect("write CSV");
    println!(
        "E-M2 outage used {trials} trials/point; CSV written to {}",
        out_path.display()
    );
}
