//! E-X3 — the protocol phase diagram (ours, extending Fig. 3 + Fig. 4).
//!
//! Sweeps relay position × transmit power and records the sum-rate-optimal
//! protocol at each grid point, rendering a categorical "phase diagram" of
//! the design space. Each power row is one relay-position `Scenario`; the
//! batched evaluator supplies every per-point comparison. The paper's
//! individual observations (MABC near the terminals / at low SNR, TDBC
//! mid-span / at high SNR, an HBC wedge in between) appear as regions of
//! this single map.

use bcc_bench::results_dir;
use bcc_core::prelude::*;
use bcc_plot::{csv, CategoryMap};
use std::fs::File;

fn main() {
    let cols = 19; // relay positions 0.05..0.95
    let rows = 13; // powers -6..30 dB
    let gamma = 3.0;
    let mut map = CategoryMap::new(cols, rows, 0.0, 1.0, -9.0, 33.0);
    let mut rows_csv = vec![vec![
        "relay_position".to_string(),
        "power_db".to_string(),
        "winner".to_string(),
        "sum_rate".to_string(),
        "hbc_strict".to_string(),
    ]];
    let mut hbc_strict_cells = 0usize;
    for r in 0..rows {
        let p_db = map.y_of(r);
        let positions: Vec<f64> = (0..cols).map(|c| map.x_of(c)).collect();
        let comparisons = Scenario::relay_position_sweep(p_db, gamma, positions)
            .expect("positions in (0,1)")
            .build()
            .comparisons()
            .expect("LP solvable");
        for (c, cmp) in comparisons.iter().enumerate() {
            let best = cmp.best().expect("finite optimum");
            // Label HBC specially when it is *strictly* better than both
            // of its special cases (beyond LP tolerance).
            let mabc = cmp.get(Protocol::Mabc).unwrap().sum_rate;
            let tdbc = cmp.get(Protocol::Tdbc).unwrap().sum_rate;
            let hbc = cmp.get(Protocol::Hbc).unwrap().sum_rate;
            let strict = hbc > mabc.max(tdbc) + 1e-6;
            let label = if strict {
                hbc_strict_cells += 1;
                "HBC (strict)".to_string()
            } else if best.protocol == Protocol::Hbc {
                // Tie with a special case: report the simpler protocol.
                if (hbc - mabc).abs() < 1e-6 {
                    "MABC".to_string()
                } else {
                    "TDBC".to_string()
                }
            } else {
                best.protocol.name().to_string()
            };
            rows_csv.push(vec![
                format!("{:.3}", cmp.x),
                format!("{p_db:.2}"),
                label.clone(),
                format!("{:.5}", best.sum_rate),
                format!("{strict}"),
            ]);
            map.set(c, r, label);
        }
    }
    println!("== E-X3: sum-rate-optimal protocol over (relay position, power) ==");
    println!("   (γ = {gamma}, G_ab normalised to 0 dB)\n");
    println!("{}", map.render());
    println!(
        "HBC strictly better than both special cases in {hbc_strict_cells}/{} cells",
        cols * rows
    );
    let f = File::create(results_dir().join("protocol_map.csv")).expect("create csv");
    csv::write_rows(f, &rows_csv).expect("write csv");
    println!("CSV written to {}", results_dir().display());
}
