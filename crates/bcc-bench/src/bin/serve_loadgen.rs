//! serve-loadgen — closed-loop load generator for the `bcc-serve` query
//! engine.
//!
//! Drives a deterministic query stream (see `bcc_serve::loadgen`)
//! through one serving engine in closed loop — each query is submitted
//! as soon as the previous answer returns, so the measured latencies are
//! service times, not queueing artefacts — and reports throughput
//! (queries/sec), the latency distribution (p50/p99/p999 in µs) and the
//! serve-stats delta (hit rate, kernel vs simplex solves, evictions).
//! A second pass drains the same stream through the batched `Server`
//! at the configured batch size for the throughput-oriented number.
//!
//! Usage:
//!
//! ```text
//! serve-loadgen [--queries N] [--stream repeated|hotset|fresh]
//!               [--pool N] [--batch N] [--step-db X] [--capacity N]
//!               [--seed N] [--out PATH]
//! ```
//!
//! Defaults follow `bcc_bench::servestudy` (hot-set stream, Fig. 4
//! operating point). Writes `results/SERVE_loadgen.json`.

use bcc_bench::{results_dir, servestudy};
use bcc_num::stats::Ecdf;
use bcc_serve::{LoadSpec, QuantSpec, Server, StreamKind};
use std::path::PathBuf;
use std::time::Instant;

struct Args {
    queries: u64,
    stream: String,
    pool: usize,
    batch: usize,
    step_db: f64,
    capacity: usize,
    seed: u64,
    out: Option<PathBuf>,
}

fn parse_args() -> Args {
    let mut args = Args {
        queries: servestudy::MIXED_QUERIES,
        stream: "hotset".to_string(),
        pool: servestudy::HOTSET_POOL,
        batch: servestudy::BATCH,
        step_db: servestudy::STEP_DB,
        capacity: servestudy::CACHE_CAPACITY,
        seed: servestudy::SEED,
        out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut take = |name: &str| it.next().unwrap_or_else(|| panic!("{name} needs a value"));
        match arg.as_str() {
            "--queries" => args.queries = take("--queries").parse().expect("integer"),
            "--stream" => args.stream = take("--stream"),
            "--pool" => args.pool = take("--pool").parse().expect("integer"),
            "--batch" => args.batch = take("--batch").parse().expect("integer"),
            "--step-db" => args.step_db = take("--step-db").parse().expect("number"),
            "--capacity" => args.capacity = take("--capacity").parse().expect("integer"),
            "--seed" => args.seed = take("--seed").parse().expect("integer"),
            "--out" => args.out = Some(PathBuf::from(take("--out"))),
            other => {
                eprintln!(
                    "usage: serve-loadgen [--queries N] [--stream repeated|hotset|fresh] \
                     [--pool N] [--batch N] [--step-db X] [--capacity N] [--seed N] [--out PATH]"
                );
                panic!("unknown argument {other:?}");
            }
        }
    }
    args
}

fn spec_for(args: &Args) -> LoadSpec {
    let kind = match args.stream.as_str() {
        "repeated" => StreamKind::Repeated,
        "hotset" => StreamKind::HotSet { pool: args.pool },
        "fresh" => StreamKind::Fresh,
        other => panic!("unknown stream kind {other:?} (repeated|hotset|fresh)"),
    };
    let mut spec = servestudy::mixed_stream();
    spec.kind = kind;
    spec.seed = args.seed;
    if kind == StreamKind::Repeated {
        // The all-hit regime measures pure cache latency; a periodic
        // floor would split it across two keys.
        spec.floor_every = None;
    }
    spec
}

fn main() {
    let args = parse_args();
    let spec = spec_for(&args);
    let config = servestudy::config()
        .quant(QuantSpec::db_grid(args.step_db))
        .cache_capacity(args.capacity)
        .queue_capacity(args.batch);

    println!(
        "serve-loadgen: {} queries, stream {}, cache {} entries, {} dB grid",
        args.queries, args.stream, args.capacity, args.step_db
    );

    // Closed loop: one query in flight at a time, per-query latency.
    let mut server = Server::new(&config);
    let queries = spec.queries(args.queries);
    let mut latencies_us = Vec::with_capacity(queries.len());
    let (wall, delta) = {
        let t0 = Instant::now();
        let ((), delta) = bcc_serve::stats::scoped(|| {
            for q in &queries {
                let t = Instant::now();
                let _ = server.serve(q);
                latencies_us.push(t.elapsed().as_secs_f64() * 1e6);
            }
        });
        (t0.elapsed().as_secs_f64(), delta)
    };
    let qps = args.queries as f64 / wall;
    let ecdf = Ecdf::new(latencies_us);
    let (p50, p99, p999) = (
        ecdf.quantile(0.50),
        ecdf.quantile(0.99),
        ecdf.quantile(0.999),
    );
    println!(
        "closed loop : {qps:>10.0} q/s  p50 {p50:>7.2} µs  p99 {p99:>7.2} µs  \
         p999 {p999:>7.2} µs"
    );
    println!(
        "serve stats : hit rate {:.3} ({} hits / {} queries), kernel {}, simplex {}, \
         evictions {}, infeasible answers included",
        delta.hit_rate(),
        delta.cache_hits,
        delta.queries,
        delta.kernel_solves,
        delta.simplex_solves,
        delta.evictions,
    );

    // Batched drain of the same stream on a fresh server: throughput of
    // the admission path at the configured batch size.
    let mut batched = Server::new(&config);
    let t0 = Instant::now();
    for chunk in queries.chunks(args.batch) {
        for &q in chunk {
            batched.submit(q).expect("queue sized to the batch");
        }
        let answers = batched.drain();
        assert_eq!(answers.len(), chunk.len());
    }
    let batch_wall = t0.elapsed().as_secs_f64();
    let batch_qps = args.queries as f64 / batch_wall;
    println!(
        "batched drain: {batch_qps:>9.0} q/s at batch {}",
        args.batch
    );

    let out = args
        .out
        .unwrap_or_else(|| results_dir().join("SERVE_loadgen.json"));
    let json = format!(
        "{{\n  \"schema\": 1,\n  \"stream\": \"{}\",\n  \"queries\": {},\n  \
         \"qps\": {:.1},\n  \"batch_qps\": {:.1},\n  \"p50_us\": {:.3},\n  \
         \"p99_us\": {:.3},\n  \"p999_us\": {:.3},\n  \"hit_rate\": {:.4},\n  \
         \"cache_hits\": {},\n  \"kernel_solves\": {},\n  \"simplex_solves\": {},\n  \
         \"evictions\": {}\n}}\n",
        args.stream,
        args.queries,
        qps,
        batch_qps,
        p50,
        p99,
        p999,
        delta.hit_rate(),
        delta.cache_hits,
        delta.kernel_solves,
        delta.simplex_solves,
        delta.evictions,
    );
    std::fs::write(&out, json).expect("write SERVE_loadgen.json");
    println!("report written to {}", out.display());
}
