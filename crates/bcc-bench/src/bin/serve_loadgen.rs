//! serve-loadgen — closed-loop load generator for the `bcc-serve` query
//! engine.
//!
//! Drives a deterministic query stream (see `bcc_serve::loadgen`)
//! through one serving engine in closed loop — each query is submitted
//! as soon as the previous answer returns, so the measured latencies are
//! service times, not queueing artefacts — and reports throughput
//! (queries/sec), the latency distribution (p50/p99/p999 in µs) and the
//! serve-stats delta (hit rate, kernel vs simplex solves, evictions,
//! degraded/shed/validated-reject counters). A second pass drains the
//! same stream through the batched `Server` at the configured batch
//! size for the throughput-oriented number.
//!
//! With `--faults`, the run arms the canonical chaos
//! [`FaultPlan`](bcc_num::faults::FaultPlan)
//! (`bcc_bench::servestudy::chaos_plan`) and salts the stream with
//! malformed queries: every injected failure must be contained to its
//! query (the run aborts on any uncontained panic), some answers must
//! degrade to the conservative fallback, and the whole stream is
//! bit-reproducible across thread counts. Without it, the run asserts
//! the converse: zero degraded answers on a healthy stream.
//!
//! Usage:
//!
//! ```text
//! serve-loadgen [--queries N] [--stream repeated|hotset|fresh]
//!               [--pool N] [--batch N] [--step-db X] [--capacity N]
//!               [--seed N] [--faults] [--out PATH]
//! ```
//!
//! Defaults follow `bcc_bench::servestudy` (hot-set stream, Fig. 4
//! operating point). Writes `results/SERVE_loadgen.json` (schema 2).

use bcc_bench::{results_dir, servestudy};
use bcc_num::stats::Ecdf;
use bcc_serve::{LoadSpec, QuantSpec, Server, StreamKind};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::time::Instant;

/// Panic-hook invocations whose payload is *not* the injected chaos
/// marker — a genuine panic anywhere in the run. The report gates on
/// this staying zero.
static GENUINE_PANICS: AtomicU64 = AtomicU64::new(0);

/// Counts genuine panics and silences the injected ones (their unwinds
/// are caught and degraded by the engine; the default hook would bury
/// the output in backtraces).
fn install_panic_audit() {
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<&str>()
            .is_some_and(|m| m.contains("injected worker panic"));
        if !injected {
            GENUINE_PANICS.fetch_add(1, Relaxed);
            previous(info);
        }
    }));
}

struct Args {
    queries: u64,
    stream: String,
    pool: usize,
    batch: usize,
    step_db: f64,
    capacity: usize,
    seed: u64,
    faults: bool,
    out: Option<PathBuf>,
}

fn parse_args() -> Args {
    let mut args = Args {
        queries: servestudy::MIXED_QUERIES,
        stream: "hotset".to_string(),
        pool: servestudy::HOTSET_POOL,
        batch: servestudy::BATCH,
        step_db: servestudy::STEP_DB,
        capacity: servestudy::CACHE_CAPACITY,
        seed: servestudy::SEED,
        faults: false,
        out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut take = |name: &str| it.next().unwrap_or_else(|| panic!("{name} needs a value"));
        match arg.as_str() {
            "--queries" => args.queries = take("--queries").parse().expect("integer"),
            "--stream" => args.stream = take("--stream"),
            "--pool" => args.pool = take("--pool").parse().expect("integer"),
            "--batch" => args.batch = take("--batch").parse().expect("integer"),
            "--step-db" => args.step_db = take("--step-db").parse().expect("number"),
            "--capacity" => args.capacity = take("--capacity").parse().expect("integer"),
            "--seed" => args.seed = take("--seed").parse().expect("integer"),
            "--faults" => args.faults = true,
            "--out" => args.out = Some(PathBuf::from(take("--out"))),
            other => {
                eprintln!(
                    "usage: serve-loadgen [--queries N] [--stream repeated|hotset|fresh] \
                     [--pool N] [--batch N] [--step-db X] [--capacity N] [--seed N] \
                     [--faults] [--out PATH]"
                );
                panic!("unknown argument {other:?}");
            }
        }
    }
    args
}

fn spec_for(args: &Args) -> LoadSpec {
    let kind = match args.stream.as_str() {
        "repeated" => StreamKind::Repeated,
        "hotset" => StreamKind::HotSet { pool: args.pool },
        "fresh" => StreamKind::Fresh,
        other => panic!("unknown stream kind {other:?} (repeated|hotset|fresh)"),
    };
    let mut spec = servestudy::mixed_stream();
    spec.kind = kind;
    spec.seed = args.seed;
    if kind == StreamKind::Repeated {
        // The all-hit regime measures pure cache latency; a periodic
        // floor would split it across two keys.
        spec.floor_every = None;
    }
    if args.faults {
        // The injected stream carries malformed queries too, so the
        // validation path is exercised amid the fault sites.
        spec.invalid_every = Some(servestudy::INVALID_EVERY);
    }
    spec
}

fn main() {
    install_panic_audit();
    let args = parse_args();
    let spec = spec_for(&args);
    let mut config = servestudy::config()
        .quant(QuantSpec::db_grid(args.step_db))
        .cache_capacity(args.capacity)
        .queue_capacity(args.batch);
    if args.faults {
        config = config.faults(servestudy::chaos_plan());
    }

    println!(
        "serve-loadgen: {} queries, stream {}, cache {} entries, {} dB grid, faults {}",
        args.queries,
        args.stream,
        args.capacity,
        args.step_db,
        if args.faults { "armed" } else { "off" },
    );

    // Closed loop: one query in flight at a time, per-query latency.
    let mut server = Server::new(&config);
    let queries = spec.queries(args.queries);
    let mut latencies_us = Vec::with_capacity(queries.len());
    let (wall, delta) = {
        let t0 = Instant::now();
        let ((), delta) = bcc_serve::stats::scoped(|| {
            for q in &queries {
                let t = Instant::now();
                let _ = server.serve(q);
                latencies_us.push(t.elapsed().as_secs_f64() * 1e6);
            }
        });
        (t0.elapsed().as_secs_f64(), delta)
    };
    let qps = args.queries as f64 / wall;
    let ecdf = Ecdf::new(latencies_us);
    let (p50, p99, p999) = (
        ecdf.quantile(0.50),
        ecdf.quantile(0.99),
        ecdf.quantile(0.999),
    );
    println!(
        "closed loop : {qps:>10.0} q/s  p50 {p50:>7.2} µs  p99 {p99:>7.2} µs  \
         p999 {p999:>7.2} µs"
    );
    println!(
        "serve stats : hit rate {:.3} ({} hits / {} queries), kernel {}, simplex {}, \
         evictions {}, infeasible answers included",
        delta.hit_rate(),
        delta.cache_hits,
        delta.queries,
        delta.kernel_solves,
        delta.simplex_solves,
        delta.evictions,
    );
    let corruptions = server.engine_mut().cache().corruptions_detected();
    println!(
        "degradation : degraded {}, shed {}, validated rejects {}, corruptions detected {}",
        delta.degraded, delta.shed, delta.validated_rejects, corruptions,
    );

    // Batched drain of the same stream on a fresh server: throughput of
    // the admission path at the configured batch size.
    let mut batched = Server::new(&config);
    let t0 = Instant::now();
    for chunk in queries.chunks(args.batch) {
        for &q in chunk {
            batched.submit(q).expect("queue sized to the batch");
        }
        let answers = batched.drain();
        assert_eq!(answers.len(), chunk.len());
    }
    let batch_wall = t0.elapsed().as_secs_f64();
    let batch_qps = args.queries as f64 / batch_wall;
    println!(
        "batched drain: {batch_qps:>9.0} q/s at batch {}",
        args.batch
    );

    // The degradation contract, both directions: a healthy run never
    // degrades; an injected run degrades somewhere, rejects the
    // malformed queries, and contains every panic.
    let panics = GENUINE_PANICS.load(Relaxed);
    assert_eq!(panics, 0, "a genuine panic escaped the run");
    if args.faults {
        assert!(
            delta.degraded > 0,
            "the chaos plan should degrade some answers"
        );
        assert!(
            delta.validated_rejects > 0,
            "the chaos stream should carry malformed queries"
        );
        println!("fault audit : zero uncontained panics, degradation contract held");
    } else {
        assert_eq!(delta.degraded, 0, "a healthy stream must never degrade");
        assert_eq!(
            delta.validated_rejects, 0,
            "healthy streams are well-formed"
        );
    }

    let out = args
        .out
        .unwrap_or_else(|| results_dir().join("SERVE_loadgen.json"));
    let json = format!(
        "{{\n  \"schema\": 2,\n  \"stream\": \"{}\",\n  \"faults\": {},\n  \
         \"queries\": {},\n  \
         \"qps\": {:.1},\n  \"batch_qps\": {:.1},\n  \"p50_us\": {:.3},\n  \
         \"p99_us\": {:.3},\n  \"p999_us\": {:.3},\n  \"hit_rate\": {:.4},\n  \
         \"cache_hits\": {},\n  \"kernel_solves\": {},\n  \"simplex_solves\": {},\n  \
         \"evictions\": {},\n  \"degraded\": {},\n  \"shed\": {},\n  \
         \"validated_rejects\": {},\n  \"corruptions_detected\": {},\n  \"panics\": {}\n}}\n",
        args.stream,
        args.faults,
        args.queries,
        qps,
        batch_qps,
        p50,
        p99,
        p999,
        delta.hit_rate(),
        delta.cache_hits,
        delta.kernel_solves,
        delta.simplex_solves,
        delta.evictions,
        delta.degraded,
        delta.shed,
        delta.validated_rejects,
        corruptions,
        panics,
    );
    std::fs::write(&out, json).expect("write SERVE_loadgen.json");
    println!("report written to {}", out.display());
}
