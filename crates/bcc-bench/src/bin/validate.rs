//! E-V1/E-V2 — operational validation of the analytical machinery.
//!
//! * **E-V1 (packet level)**: the XOR-relaying ARQ scheme on packet-erasure
//!   links must stay below its LP throughput bound and beat plain
//!   forwarding (the network-coding slot saving the paper's Fig. 1
//!   motivates).
//! * **E-V2 (fading level)**: ergodic sum rates and 10%-outage rates of
//!   every protocol under Rayleigh fading at the Fig. 4 gains; the DT
//!   ergodic rate is cross-checked against Gauss–Laguerre quadrature.
//! * **Symbol level**: the end-to-end Hamming-coded MABC exchange BER
//!   waterfall (Theorem 2's achievability made literal).

use bcc_bench::{fig4_network, results_dir, FIG4_GAINS_DB};
use bcc_channel::fading::FadingModel;
use bcc_core::prelude::*;
use bcc_num::quadrature::ergodic_rayleigh_capacity;
use bcc_plot::{csv, Series, Table};
use bcc_sim::ergodic::ergodic_sum_rate;
use bcc_sim::packet::{simulate_exchange, ErasureNetwork, RelayScheme};
use bcc_sim::symbol::{run_mabc_exchange, SymbolSimConfig, SymbolSimResult};
use bcc_sim::McConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fs::File;

fn validate_packets() {
    println!("== E-V1: packet-level XOR relaying vs LP bound ==");
    let mut table = Table::new(vec![
        "links (q_ar, q_br)".into(),
        "LP bound".into(),
        "XOR measured".into(),
        "fwd measured".into(),
        "XOR/fwd".into(),
    ]);
    for (q_ar, q_br) in [(0.9, 0.9), (0.8, 0.6), (0.5, 0.5), (0.95, 0.4)] {
        let net = ErasureNetwork::new(0.3, q_ar, q_br);
        let bound = net.xor_relay_bound();
        let mut rng = StdRng::seed_from_u64(1001);
        let xor = simulate_exchange(&net, RelayScheme::XorNetworkCoding, 20_000, &mut rng);
        let mut rng = StdRng::seed_from_u64(1001);
        let fwd = simulate_exchange(&net, RelayScheme::PlainForwarding, 20_000, &mut rng);
        assert!(
            xor.sum_throughput <= bound + 1e-9,
            "measured throughput exceeded the bound"
        );
        table.row(vec![
            format!("({q_ar}, {q_br})"),
            format!("{bound:.4}"),
            format!("{:.4}", xor.sum_throughput),
            format!("{:.4}", fwd.sum_throughput),
            format!("{:.3}", xor.sum_throughput / fwd.sum_throughput),
        ]);
    }
    println!("{}", table.render());
    println!("measured ≤ bound everywhere; XOR > forwarding everywhere\n");
}

fn validate_fading() {
    println!("== E-V2: Rayleigh ergodic and 10%-outage sum rates (Fig. 4 gains) ==");
    // One scenario covers the whole study: the deterministic envelope via
    // the sweep, the fading quantities via the attached Rayleigh study.
    let (gab, gar, gbr) = FIG4_GAINS_DB;
    let base = GaussianNetwork::from_db(Db::new(0.0), Db::new(gab), Db::new(gar), Db::new(gbr));
    let mut evaluator = Scenario::power_sweep_db(base, [0.0, 10.0, 20.0])
        .rayleigh(5000, 777)
        .build();
    let envelope = evaluator.sweep().expect("LP solvable");
    let fading = evaluator.outage().expect("LP solvable");
    let mut table = Table::new(vec![
        "P [dB]".into(),
        "protocol".into(),
        "ergodic".into(),
        "10%-outage".into(),
        "no-fading".into(),
    ]);
    let mut series: Vec<Series> = Protocol::ALL
        .iter()
        .map(|p| Series::new(format!("{} ergodic", p.name())))
        .collect();
    for (j, &p_db) in envelope.xs.iter().enumerate() {
        for (i, &proto) in Protocol::ALL.iter().enumerate() {
            let erg = fading.ergodic_series(proto)[j].1;
            let exact = envelope.series(proto).expect("evaluated").solutions[j].sum_rate;
            series[i].push(p_db, erg);
            table.row(vec![
                format!("{p_db}"),
                proto.name().into(),
                format!("{erg:.4}"),
                fading
                    .outage_rate(proto, j, 0.1)
                    .map_or_else(|| "unresolved".into(), |r| format!("{r:.4}")),
                format!("{exact:.4}"),
            ]);
        }
    }
    println!("{}", table.render());
    let cfg = McConfig::new(5000, 777);

    // Quadrature cross-check for DT.
    let net = fig4_network(10.0);
    let mc = ergodic_sum_rate(
        &net,
        Protocol::DirectTransmission,
        FadingModel::Rayleigh,
        &cfg,
    );
    let exact =
        ergodic_rayleigh_capacity(net.power().expect("symmetric network") * net.state().gab());
    println!(
        "DT ergodic cross-check @ P = 10 dB: MC {:.4} vs Gauss-Laguerre {:.4} (|Δ| = {:.4})\n",
        mc.mean(),
        exact,
        (mc.mean() - exact).abs()
    );
    let f = File::create(results_dir().join("validate_ergodic.csv")).expect("create csv");
    csv::write_series(f, "power_db", &series).expect("write csv");
}

fn validate_symbols() {
    println!("== Symbol-level MABC exchange (Hamming-coded BPSK, joint-ML relay) ==");
    let mut table = Table::new(vec![
        "P [dB]".into(),
        "trials".into(),
        "pair error rate".into(),
    ]);
    let mut series = Series::new("MABC pair error rate");
    for p_db in [-2.0, 2.0, 6.0, 10.0, 14.0] {
        let cfg = SymbolSimConfig {
            power: 10f64.powf(p_db / 10.0),
            state: bcc_channel::ChannelState::new(0.2, 1.0, 1.0),
        };
        let mut rng = StdRng::seed_from_u64(2024);
        let r: SymbolSimResult = run_mabc_exchange(&cfg, 2000, &mut rng);
        series.push(p_db, r.error_rate());
        table.row(vec![
            format!("{p_db}"),
            format!("{}", r.trials),
            format!("{:.4}", r.error_rate()),
        ]);
    }
    println!("{}", table.render());
    let f = File::create(results_dir().join("validate_symbol_waterfall.csv")).expect("create csv");
    csv::write_series(f, "power_db", &[series]).expect("write csv");
}

fn validate_binning() {
    println!("== E-V3: Theorem-3 binning vs side-information budget ==");
    use bcc_sim::binning_sim::{run_binning_decode, BinningConfig};
    let mut table = Table::new(vec![
        "bins B".into(),
        "saved bits".into(),
        "SI budget [bits]".into(),
        "error rate".into(),
    ]);
    for (p_side, bins) in [
        (0.05, 1u32),
        (0.05, 16),
        (0.05, 256),
        (0.49, 1),
        (0.49, 256),
    ] {
        let cfg = BinningConfig {
            num_messages: 1024,
            block_length: 63,
            side_crossover: p_side,
            num_bins: bins,
        };
        let mut rng = StdRng::seed_from_u64(99);
        let r = run_binning_decode(&cfg, 400, &mut rng);
        table.row(vec![
            format!("{bins} (p_ab={p_side})"),
            format!("{:.1}", cfg.bin_saving_bits()),
            format!("{:.1}", cfg.side_information_bits()),
            format!("{:.4}", r.error_rate()),
        ]);
    }
    println!("{}", table.render());
    println!("decoding collapses exactly when the saved bits exceed the side-information budget\n");
}

fn validate_selection() {
    println!("== E-V4: relay-selection diversity (multi-relay extension) ==");
    use bcc_core::selection::RelayCandidates;
    use bcc_num::stats::Ecdf;
    use bcc_sim::selection::{sample_mean, selection_rate_samples};
    let cfg = McConfig::new(1500, 4242);
    let mut table = Table::new(vec![
        "N relays".into(),
        "ergodic".into(),
        "10%-outage".into(),
    ]);
    for n in [1usize, 2, 4] {
        let candidates = RelayCandidates::new(0.2, vec![(1.0, 1.0); n]);
        let samples = selection_rate_samples(
            &candidates,
            bcc_core::protocol::Protocol::Mabc,
            10.0,
            FadingModel::Rayleigh,
            &cfg,
        );
        let ecdf = Ecdf::new(samples.clone());
        table.row(vec![
            format!("{n}"),
            format!("{:.4}", sample_mean(&samples)),
            format!("{:.4}", ecdf.quantile(0.10)),
        ]);
    }
    println!("{}", table.render());
}

fn main() {
    validate_packets();
    validate_fading();
    validate_symbols();
    validate_binning();
    validate_selection();
    println!("CSV written to {}", results_dir().display());
}
