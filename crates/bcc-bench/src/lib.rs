//! Shared infrastructure for the experiment binaries.
//!
//! The five binaries in `src/bin/` regenerate the paper's evaluation and
//! the extensions indexed in DESIGN.md §4:
//!
//! | binary | experiment ids | paper artifact |
//! |---|---|---|
//! | `fig3` | E-F3a, E-F3b | Fig. 3 — optimal sum rates vs relay gain/position |
//! | `fig4` | E-F4a, E-F4b, E-X2 | Fig. 4 — rate regions and outer bounds |
//! | `crossover` | E-X1 | MABC/TDBC low-vs-high SNR reversal |
//! | `ablation` | E-A1, E-A2 | side-information & LP-vs-grid ablations |
//! | `validate` | E-V1, E-V2 | packet/symbol/fading validations |
//! | `dmt` | E-D1, E-D2 | finite-SNR DMT sweep & optimum power allocation |
//! | `multipair` | E-M1, E-M2 | K-pair shared-relay sum-rate/fairness & outage study |
//! | `city` | E-C1 | city-scale many-relay × many-pair assignment study |
//!
//! This library crate carries the paper's canonical parameter sets and the
//! output-directory convention so the binaries agree on both.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use bcc_core::gaussian::GaussianNetwork;
use bcc_core::scenario::SweepResult;
use bcc_num::Db;
use bcc_plot::Series;
use std::fs;
use std::path::{Path, PathBuf};

pub mod benchjson;

/// Fig. 3 transmit power: `P = 15 dB`.
pub const FIG3_POWER_DB: f64 = 15.0;
/// Fig. 3 direct-link gain normalisation: `G_ab = 0 dB`.
pub const FIG3_GAB_DB: f64 = 0.0;

/// Fig. 4 gains `(G_ab, G_ar, G_br)` in dB — see DESIGN.md §4 for why the
/// garbled caption resolves to this assignment.
pub const FIG4_GAINS_DB: (f64, f64, f64) = (-7.0, 0.0, 5.0);
/// Fig. 4 power settings (top and bottom panel).
pub const FIG4_POWERS_DB: [f64; 2] = [0.0, 10.0];

/// The Fig. 4 network at transmit power `p_db`.
pub fn fig4_network(p_db: f64) -> GaussianNetwork {
    let (gab, gar, gbr) = FIG4_GAINS_DB;
    GaussianNetwork::from_db(Db::new(p_db), Db::new(gab), Db::new(gar), Db::new(gbr))
}

/// A Fig. 3 network with symmetric relay gains `G_ar = G_br = g_db`.
pub fn fig3_symmetric_network(g_db: f64) -> GaussianNetwork {
    GaussianNetwork::from_db(
        Db::new(FIG3_POWER_DB),
        Db::new(FIG3_GAB_DB),
        Db::new(g_db),
        Db::new(g_db),
    )
}

/// Converts a batch [`SweepResult`] into one plottable [`Series`] per
/// evaluated protocol (in evaluation order) — the bridge between
/// `bcc-core`'s typed results and `bcc-plot`'s chart/CSV writers.
pub fn sweep_series(sweep: &SweepResult) -> Vec<Series> {
    sweep
        .protocols()
        .iter()
        .map(|&p| Series::from_points(p.name(), sweep.series_points(p)))
        .collect()
}

/// Canonical configuration of the finite-SNR DMT / power-allocation study
/// (E-D1/E-D2) — one source of truth shared by the `dmt` binary and the
/// workspace golden tests, so the pinned slopes and the published JSON
/// describe the same experiment.
pub mod dmtstudy {
    use bcc_channel::ChannelState;
    use bcc_core::prelude::*;

    /// SNR grid of the DMT sweep (per-node power in dB, noise unit).
    pub const SNR_GRID_DB: [f64; 6] = [0.0, 4.0, 8.0, 12.0, 16.0, 20.0];
    /// Multiplexing gains `r` of the sweep (sum-rate targets
    /// `r·log2(1+SNR)`).
    pub const GAINS: [f64; 3] = [0.1, 0.25, 0.5];
    /// Default Monte-Carlo trials per grid point (the binary's
    /// `--trials` overrides it; golden tests use a reduced count).
    pub const TRIALS: usize = 4000;
    /// Master seed of the study.
    pub const SEED: u64 = 0xD117_0001;
    /// Outage level ε of the allocation search.
    pub const EPS: f64 = 0.1;
    /// Common per-node power (dB) of the allocation study's budget.
    pub const ALLOC_POWER_DB: f64 = 10.0;

    /// The study's channel: fully symmetric unit gains, so the direct and
    /// relay links carry the same average SNR, relay-aided protocols get
    /// their diversity from path *multiplicity* alone, and the symmetric-
    /// case allocation golden test is exact by symmetry.
    pub fn state() -> ChannelState {
        ChannelState::new(1.0, 1.0, 1.0)
    }

    /// The DMT sweep scenario at `trials` Monte-Carlo trials per point.
    pub fn dmt_scenario(trials: usize) -> Scenario {
        Scenario::power_sweep_db(GaussianNetwork::new(1.0, state()), SNR_GRID_DB)
            .multiplexing_gains(GAINS)
            .rayleigh(trials, SEED)
    }

    /// The power-allocation scenario at `trials` trials.
    pub fn allocation_scenario(trials: usize) -> Scenario {
        Scenario::at(GaussianNetwork::from_db(
            Db::new(ALLOC_POWER_DB),
            Db::new(0.0),
            Db::new(0.0),
            Db::new(0.0),
        ))
        .rayleigh(trials, SEED)
    }
}

/// Canonical configuration of the deep-outage importance-sampling study
/// (the `deep_outage` bench-report scenario) — a direct-transmission
/// tail near `1e-6` that plain Monte Carlo cannot resolve, pinned
/// against the closed-form Rayleigh tail. One source of truth shared by
/// the bench gate and the CI smoke leg.
pub mod deepstudy {
    use bcc_core::prelude::*;

    /// Transmit power \[dB\] placing the DT Rayleigh tail near `1e-6` at
    /// multiplexing gain [`GAIN`].
    pub const POWER_DB: f64 = 75.0;
    /// Multiplexing gain `r` of the finite-SNR target
    /// `r·log2(1 + SNR_ref)`.
    pub const GAIN: f64 = 0.1;
    /// Master seed of the tilted fade streams.
    pub const SEED: u64 = 0xDEE2_0001;
    /// Escalating trial budgets; the bench reports the first rung whose
    /// relative error meets [`REL_ERR_TARGET`] — "time to fixed relative
    /// error" at the deep target.
    pub const TRIAL_LADDER: [usize; 4] = [2_500, 5_000, 10_000, 20_000];
    /// Relative-error budget of the study (10%).
    pub const REL_ERR_TARGET: f64 = 0.1;
    /// Trials plain MC would need for ~10% relative error at `p = 1e-3`
    /// (`(1 − p)/(p·0.1²) ≈ 1e5`). The gate requires the importance
    /// sampler to resolve its *thousand-fold deeper* `1e-6` tail in
    /// fewer trials than this.
    pub const PLAIN_MC_FLOOR: usize = 100_000;

    /// The single-cell deep-outage scenario at `trials` tilted trials.
    pub fn deep_scenario(trials: usize) -> Scenario {
        Scenario::at(crate::fig4_network(POWER_DB))
            .protocols([Protocol::DirectTransmission])
            .multiplexing_gains([GAIN])
            .rayleigh(trials, SEED)
    }

    /// The study's estimator settings: sampling is forced so the bench
    /// times the tilted kernel path rather than the analytic fast path
    /// (which would short-circuit the DT cell entirely).
    pub fn deep_spec() -> DeepSpec {
        DeepSpec::new().force_sampling(true)
    }
}

/// Canonical configuration of the multi-pair shared-relay study
/// (E-M1/E-M2) — one source of truth shared by the `multipair` binary
/// and the workspace golden tests, so the pinned shapes and the
/// published CSV describe the same experiment.
pub mod multipairstudy {
    use bcc_channel::ChannelState;
    use bcc_core::prelude::*;

    /// Number of terminal pairs sharing the relay.
    pub const K: usize = 3;
    /// SNR grid of the sweep (common per-node power in dB).
    pub const SNR_GRID_DB: [f64; 6] = [0.0, 4.0, 8.0, 12.0, 16.0, 20.0];
    /// Default Monte-Carlo trials per grid point of the outage study
    /// (the binary's `--trials` overrides it; the CI smoke leg runs a
    /// reduced count).
    pub const TRIALS: usize = 2000;
    /// Master seed of the study.
    pub const SEED: u64 = 0x3BCC_0001;
    /// Outage level ε quoted by the study.
    pub const EPS: f64 = 0.1;

    /// The study's three deliberately heterogeneous pairs at unit power:
    /// one relay-advantaged (the Fig. 4 gains), one fully symmetric, one
    /// direct-advantaged (a weak relay) — so the time-share/joint gap
    /// and the per-pair protocol preferences are all visible in one run.
    pub fn pair_set() -> PairSet {
        PairSet::new(vec![
            GaussianNetwork::from_db(Db::new(0.0), Db::new(-7.0), Db::new(0.0), Db::new(5.0)),
            GaussianNetwork::new(1.0, ChannelState::new(1.0, 1.0, 1.0)),
            GaussianNetwork::new(1.0, ChannelState::new(1.0, 0.1, 0.1)),
        ])
    }

    /// The deterministic sweep scenario (E-M1).
    pub fn sweep_scenario() -> MultiPairScenario {
        MultiPairScenario::power_sweep_db(&pair_set(), SNR_GRID_DB)
    }

    /// The Rayleigh outage scenario (E-M2) at `trials` trials per point.
    pub fn outage_scenario(trials: usize) -> MultiPairScenario {
        sweep_scenario().rayleigh(trials, SEED)
    }
}

/// Canonical configuration of the city-scale relay-assignment study
/// (the `city_scale` bench-report scenario and the `city` binary). One
/// source of truth shared by the bench gates
/// (`assignment_rate ≥ random_rate`, bounded allocations) and the CI
/// smoke leg, so the gated numbers and the published CSV describe the
/// same deployment.
pub mod citystudy {
    use bcc_channel::Topology;
    use bcc_core::protocol::Protocol;

    /// Placement seed of the canonical city.
    pub const SEED: u64 = 0xC17B_0001;
    /// Pairs `K` of the bench run (the binary's `--pairs` overrides it;
    /// the CI smoke leg runs a reduced count).
    pub const PAIRS: usize = 4_000;
    /// Candidate relays `n`.
    pub const RELAYS: usize = 48;
    /// Disc radius of the placement (distance units of the `d_min`
    /// clamp).
    pub const RADIUS: f64 = 12.0;
    /// Path-loss exponent (urban-ish).
    pub const GAMMA: f64 = 3.0;
    /// Common per-node transmit power (dB).
    pub const POWER_DB: f64 = 10.0;
    /// Protocols the edge weight maximises over — the two- and
    /// three-phase relayings; DT needs no relay and HBC's extra phase
    /// prices identically into the same inner-bound kernel.
    pub const PROTOCOLS: [Protocol; 2] = [Protocol::Mabc, Protocol::Tdbc];

    /// The canonical city at `pairs` terminal pairs.
    ///
    /// # Panics
    ///
    /// Panics only on an invalid pair count (the canonical extents are
    /// validated by construction).
    pub fn topology(pairs: usize) -> Topology {
        Topology::random(SEED, pairs, RELAYS, RADIUS, GAMMA).expect("canonical city is valid")
    }
}

/// Canonical configuration of the serving-layer load study (E-S1). The
/// `serve-loadgen` binary, the `serve_loadgen` bench-report scenario and
/// the CI smoke leg all read these constants, so the gated numbers and
/// the published JSON describe the same workload.
pub mod servestudy {
    use bcc_num::faults::{FaultPlan, FaultSite};
    use bcc_serve::{LoadSpec, QuantSpec, ServeConfig, StreamKind};

    /// Master seed of the study's query streams.
    pub const SEED: u64 = 0x5E4E_0001;
    /// Hot-set pool size of the mixed stream — 64 states against a
    /// 4 096-entry cache, so steady state is hit-dominated with a fresh
    /// miss now and then from the floor sub-stream.
    pub const HOTSET_POOL: usize = 64;
    /// Queries of the mixed (hot-set) closed-loop run.
    pub const MIXED_QUERIES: u64 = 40_000;
    /// Queries of the repeated-state (all-hit) closed-loop run.
    pub const REPEATED_QUERIES: u64 = 200_000;
    /// Quantization grid step (dB).
    pub const STEP_DB: f64 = 0.25;
    /// Decision-cache capacity (entries).
    pub const CACHE_CAPACITY: usize = 4_096;
    /// Submission-batch size of the batched-drain throughput runs.
    pub const BATCH: usize = 1_024;
    /// Transmit power (dB) of the base operating point.
    pub const POWER_DB: f64 = 10.0;
    /// Every n-th mixed query carries this QoS floor, keeping the
    /// simplex path in play amid kernel traffic.
    pub const FLOOR_EVERY: u64 = 16;
    /// The QoS floor `(ra, rb)` of the floored sub-stream.
    pub const FLOOR: (f64, f64) = (0.05, 0.05);

    /// The study's serve configuration.
    pub fn config() -> ServeConfig {
        ServeConfig::default()
            .quant(QuantSpec::db_grid(STEP_DB))
            .cache_capacity(CACHE_CAPACITY)
            .queue_capacity(BATCH)
    }

    /// Base spec around the Fig. 4 operating point at
    /// [`POWER_DB`](self::POWER_DB).
    fn base(kind: StreamKind, seed: u64) -> LoadSpec {
        let net = super::fig4_network(POWER_DB);
        LoadSpec::new(kind, seed, net.state(), net.powers())
    }

    /// The mixed steady-state stream: hot-set draws with a periodic QoS
    /// floor.
    pub fn mixed_stream() -> LoadSpec {
        base(StreamKind::HotSet { pool: HOTSET_POOL }, SEED).floor_every(
            FLOOR_EVERY,
            FLOOR.0,
            FLOOR.1,
        )
    }

    /// The repeated-state stream (pure cache-latency regime).
    pub fn repeated_stream() -> LoadSpec {
        base(StreamKind::Repeated, SEED ^ 0x0E11)
    }

    /// The all-miss stream (pure solve-throughput regime).
    pub fn fresh_stream() -> LoadSpec {
        base(StreamKind::Fresh, SEED ^ 0xF5)
    }

    /// Seed of the canonical chaos [`FaultPlan`].
    pub const CHAOS_SEED: u64 = 0xC4A0_5EED;
    /// Every n-th chaos query carries a malformed (NaN) floor, so the
    /// injected stream exercises up-front validation too.
    pub const INVALID_EVERY: u64 = 997;

    /// The canonical fault plan of the chaos smoke runs: every site
    /// armed at once — transient LP faults that recover on the engine's
    /// retry, per-key kernel poison (degrades to the DT fallback), cache
    /// evict/corrupt fates, and worker panics that occasionally
    /// double-fire past the retry. Decisions are a pure function of
    /// [`CHAOS_SEED`], so the injected run is bit-reproducible across
    /// threads and batch sizes.
    pub fn chaos_plan() -> FaultPlan {
        FaultPlan::new(CHAOS_SEED)
            .with(FaultSite::LpIterationLimit, 0.05, 1)
            .with(FaultSite::LpWarmReject, 0.10, 2)
            .with(FaultSite::KernelPoison, 0.01, 1)
            .with(FaultSite::CacheEvict, 0.02, 1)
            .with(FaultSite::CacheCorrupt, 0.02, 1)
            .with(FaultSite::WorkerPanic, 0.05, 2)
    }

    /// The injected-fault stream: the mixed hot-set stream with a
    /// malformed query every [`INVALID_EVERY`] slots.
    pub fn chaos_stream() -> LoadSpec {
        mixed_stream().invalid_every(INVALID_EVERY)
    }
}

/// Directory where binaries drop CSV artifacts (`results/` at the
/// workspace root, created on demand).
///
/// # Panics
///
/// Panics if the directory cannot be created.
pub fn results_dir() -> PathBuf {
    let dir = workspace_root().join("results");
    fs::create_dir_all(&dir).expect("create results directory");
    dir
}

fn workspace_root() -> PathBuf {
    // CARGO_MANIFEST_DIR of this crate is <root>/crates/bcc-bench.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root exists")
        .to_path_buf()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_core::protocol::Protocol;

    #[test]
    fn fig4_network_uses_canonical_gains() {
        let net = fig4_network(10.0);
        let s = net.state();
        assert!((s.gab() - Db::new(-7.0).to_linear()).abs() < 1e-12);
        assert!((s.gar() - 1.0).abs() < 1e-12);
        assert!((s.gbr() - Db::new(5.0).to_linear()).abs() < 1e-12);
        assert!(
            s.relay_advantaged(),
            "Fig. 4 must be in the interesting case"
        );
    }

    #[test]
    fn fig3_network_is_symmetric() {
        let net = fig3_symmetric_network(10.0);
        assert_eq!(net.state().gar(), net.state().gbr());
        assert!((net.power().expect("symmetric network") - Db::new(15.0).to_linear()).abs() < 1e-9);
    }

    #[test]
    fn fig4_reproduces_headline_ordering() {
        // Low power: MABC ≥ TDBC; high power: TDBC ≥ MABC.
        let low = fig4_network(FIG4_POWERS_DB[0]);
        let high = fig4_network(FIG4_POWERS_DB[1] + 5.0);
        let sr = |net: &GaussianNetwork, p| net.max_sum_rate(p).unwrap().sum_rate;
        assert!(sr(&low, Protocol::Mabc) > sr(&low, Protocol::Tdbc));
        assert!(sr(&high, Protocol::Tdbc) > sr(&high, Protocol::Mabc));
    }

    #[test]
    fn results_dir_is_creatable() {
        let d = results_dir();
        assert!(d.ends_with("results"));
        assert!(d.exists());
    }

    #[test]
    fn sweep_series_mirrors_sweep_result() {
        use bcc_core::scenario::Scenario;
        let sweep = Scenario::power_sweep_db(fig4_network(0.0), [0.0, 10.0])
            .build()
            .sweep()
            .unwrap();
        let series = sweep_series(&sweep);
        assert_eq!(series.len(), Protocol::ALL.len());
        for (s, p) in series.iter().zip(Protocol::ALL) {
            assert_eq!(s.name, p.name());
            assert_eq!(s.points, sweep.series_points(p));
        }
    }
}
