//! Tests of the experiment harness itself: the binaries' inner loops
//! (shared through `bcc-bench`'s lib and `bcc-core::sweep`) must keep
//! producing the recorded EXPERIMENTS.md shapes.

use bcc_bench::{fig3_symmetric_network, fig4_network, FIG4_POWERS_DB};
use bcc_core::protocol::Protocol;
use bcc_core::sweep::{position_sweep, power_sweep, symmetric_gain_sweep};
use bcc_num::interp::crossings;

#[test]
fn fig3_sweep_a_shape() {
    // DT flat; TDBC ≥ MABC at P = 15 dB and symmetric gains (high-SNR
    // regime); HBC = max of the two everywhere on this sweep.
    let gains: Vec<f64> = (0..=30).step_by(5).map(f64::from).collect();
    let r = symmetric_gain_sweep(15.0, 0.0, &gains).unwrap();
    let dt = r.series(Protocol::DirectTransmission);
    assert!((dt[0].1 - dt.last().unwrap().1).abs() < 1e-9);
    for row in &r.rows {
        let m = row.sum_rates[1];
        let t = row.sum_rates[2];
        let h = row.sum_rates[3];
        assert!(t >= m - 1e-9, "TDBC must dominate MABC at 15 dB symmetric");
        assert!((h - t.max(m)).abs() < 1e-6);
    }
}

#[test]
fn fig3_sweep_b_has_mabc_tdbc_hbc_zones() {
    let positions: Vec<f64> = (1..=19).map(|k| k as f64 / 20.0).collect();
    let r = position_sweep(15.0, 3.0, &positions).unwrap();
    let winners: Vec<Protocol> = r.rows.iter().map(|row| row.winner).collect();
    assert!(winners.contains(&Protocol::Mabc), "MABC zone missing");
    assert!(winners.contains(&Protocol::Tdbc) || winners.contains(&Protocol::Hbc));
    // HBC strictly wins somewhere (the wedge of EXPERIMENTS.md E-F3).
    assert!(
        !r.strict_wins(Protocol::Hbc, 1e-6).is_empty(),
        "HBC strict band missing from sweep B"
    );
    // DT never wins once the relay is in play on this geometry.
    assert!(!winners.contains(&Protocol::DirectTransmission));
}

#[test]
fn crossover_location_locked() {
    // EXPERIMENTS.md records the MABC/TDBC crossover at ≈ 13.7 dB; lock
    // it to ±0.5 dB via the sweep + interpolation path.
    let net = fig4_network(0.0);
    let grid: Vec<f64> = (-10..=25).map(f64::from).collect();
    let r = power_sweep(&net, &grid).unwrap();
    let mabc = r.series(Protocol::Mabc);
    let tdbc = r.series(Protocol::Tdbc);
    let cross = crossings(&mabc, &tdbc);
    assert_eq!(cross.len(), 1, "exactly one crossover expected: {cross:?}");
    assert!(
        (cross[0] - 13.7).abs() < 0.5,
        "crossover drifted: {} dB",
        cross[0]
    );
}

#[test]
fn fig4_panel_powers_bracket_the_crossover() {
    // The two Fig. 4 panels (0 and 10 dB) must sit on the same side or
    // below the crossover so the paper's "low SNR" panel shows MABC ahead.
    let low = fig4_network(FIG4_POWERS_DB[0]);
    let mabc = low.max_sum_rate(Protocol::Mabc).unwrap().sum_rate;
    let tdbc = low.max_sum_rate(Protocol::Tdbc).unwrap().sum_rate;
    assert!(mabc > tdbc);
}

#[test]
fn fig3_network_constructor_normalisation() {
    let net = fig3_symmetric_network(0.0);
    // All gains 0 dB → all SNRs equal the power.
    assert!((net.snr_ab() - net.snr_ar()).abs() < 1e-9);
    assert!((net.snr_ar() - net.snr_br()).abs() < 1e-9);
}
