//! Tests of the experiment harness itself: the binaries' inner loops
//! (shared through `bcc-bench`'s lib and the `Scenario` evaluator of
//! `bcc-core`) must keep producing the recorded EXPERIMENTS.md shapes.

use bcc_bench::{fig3_symmetric_network, fig4_network, sweep_series, FIG4_POWERS_DB};
use bcc_core::prelude::*;
use bcc_num::interp::crossings;

#[test]
fn fig3_sweep_a_shape() {
    // DT flat; TDBC ≥ MABC at P = 15 dB and symmetric gains (high-SNR
    // regime); HBC = max of the two everywhere on this sweep.
    let sweep = Scenario::symmetric_gain_sweep_db(15.0, 0.0, (0..=30).step_by(5).map(f64::from))
        .build()
        .sweep()
        .unwrap();
    let dt = sweep.series_points(Protocol::DirectTransmission);
    assert!((dt[0].1 - dt.last().unwrap().1).abs() < 1e-9);
    for i in 0..sweep.len() {
        let m = sweep.series(Protocol::Mabc).unwrap().solutions[i].sum_rate;
        let t = sweep.series(Protocol::Tdbc).unwrap().solutions[i].sum_rate;
        let h = sweep.series(Protocol::Hbc).unwrap().solutions[i].sum_rate;
        assert!(t >= m - 1e-9, "TDBC must dominate MABC at 15 dB symmetric");
        assert!((h - t.max(m)).abs() < 1e-6);
    }
}

#[test]
fn fig3_sweep_b_has_mabc_tdbc_hbc_zones() {
    let sweep = Scenario::relay_position_sweep(15.0, 3.0, (1..=19).map(|k| k as f64 / 20.0))
        .unwrap()
        .build()
        .sweep()
        .unwrap();
    let winners = sweep.winners();
    assert!(winners.contains(&Some(Protocol::Mabc)), "MABC zone missing");
    assert!(winners.contains(&Some(Protocol::Tdbc)) || winners.contains(&Some(Protocol::Hbc)));
    // HBC strictly wins somewhere (the wedge of EXPERIMENTS.md E-F3).
    assert!(
        !sweep.strict_wins(Protocol::Hbc, 1e-6).is_empty(),
        "HBC strict band missing from sweep B"
    );
    // DT never wins once the relay is in play on this geometry.
    assert!(!winners.contains(&Some(Protocol::DirectTransmission)));
}

#[test]
fn crossover_location_locked() {
    // EXPERIMENTS.md records the MABC/TDBC crossover at ≈ 13.7 dB; lock
    // it to ±0.5 dB via the sweep + interpolation path.
    let sweep = Scenario::power_sweep_db(fig4_network(0.0), (-10..=25).map(f64::from))
        .build()
        .sweep()
        .unwrap();
    let mabc = sweep.series_points(Protocol::Mabc);
    let tdbc = sweep.series_points(Protocol::Tdbc);
    let cross = crossings(&mabc, &tdbc);
    assert_eq!(cross.len(), 1, "exactly one crossover expected: {cross:?}");
    assert!(
        (cross[0] - 13.7).abs() < 0.5,
        "crossover drifted: {} dB",
        cross[0]
    );
}

#[test]
fn fig4_panel_powers_bracket_the_crossover() {
    // The two Fig. 4 panels (0 and 10 dB) must sit on the same side or
    // below the crossover so the paper's "low SNR" panel shows MABC ahead.
    let cmp = Scenario::at(fig4_network(FIG4_POWERS_DB[0]))
        .build()
        .compare()
        .unwrap();
    let mabc = cmp.get(Protocol::Mabc).unwrap().sum_rate;
    let tdbc = cmp.get(Protocol::Tdbc).unwrap().sum_rate;
    assert!(mabc > tdbc);
}

#[test]
fn fig3_network_constructor_normalisation() {
    let net = fig3_symmetric_network(0.0);
    // All gains 0 dB → all SNRs equal the power.
    assert!((net.snr_ab() - net.snr_ar()).abs() < 1e-9);
    assert!((net.snr_ar() - net.snr_br()).abs() < 1e-9);
}

#[test]
fn multipair_study_shapes() {
    // The canonical E-M1 study: joint dominates time-share for every
    // protocol and point, the gap is strict somewhere (heterogeneous
    // pairs), and on the fully symmetric middle pair HBC's per-pair sum
    // dominates MABC/TDBC as always.
    let sweep = bcc_bench::multipairstudy::sweep_scenario()
        .build()
        .sweep()
        .unwrap();
    assert_eq!(sweep.num_pairs(), bcc_bench::multipairstudy::K);
    let mut strict_gap = false;
    for proto in Protocol::ALL {
        for i in 0..sweep.len() {
            let joint = sweep.sum_rate(proto, i, Schedule::Joint);
            let shared = sweep.sum_rate(proto, i, Schedule::TimeShare);
            assert!(joint >= shared - 1e-12, "{proto} point {i}");
            strict_gap |= joint > shared + 1e-6;
        }
    }
    for i in 0..sweep.len() {
        let h = sweep.solution(Protocol::Hbc, i, 1).sum.sum_rate;
        let m = sweep.solution(Protocol::Mabc, i, 1).sum.sum_rate;
        assert!(h >= m - 1e-8, "HBC must dominate MABC on pair 1");
    }
    assert!(
        strict_gap,
        "heterogeneous pairs must open a joint-vs-TDMA gap"
    );
}

/// The bench gate's solver-mix assertions (`kernel_hits`, `warm_hits`,
/// zero-allocation hot loop) are reproducible **in-process** on
/// miniature versions of the bench-report scenarios, without
/// `--test-threads=1`: the thread-local counters (`bcc_lp::stats::scoped`,
/// `kernel_hits_local`) only see this test's own solves even while the
/// rest of the suite hammers the solver from sibling test threads.
#[test]
fn bench_gate_counters_observable_in_process() {
    // Miniature fig3 sweep: every protocol has a closed form now, so the
    // batched lane kernels must carry all 4 protocols × 201 points with
    // zero simplex solves.
    let k0 = bcc_core::kernel::kernel_hits_local();
    let (_, lp) = bcc_lp::stats::scoped(|| {
        Scenario::symmetric_gain_sweep_db(15.0, 0.0, (0..=200).map(|k| f64::from(k) * 0.15))
            .threads(1)
            .build()
            .sweep()
            .unwrap()
    });
    let kernel = bcc_core::kernel::kernel_hits_local() - k0;
    assert_eq!(kernel, 4 * 201, "the kernel must serve every solve");
    assert_eq!(lp.solves, 0, "a floor-free inner sweep never touches LP");

    // Miniature floored crossover sweep: QoS floors force the simplex,
    // and repeated solves on one context must fire the warm-start path.
    let (_, lp) = bcc_lp::stats::scoped(|| {
        Scenario::power_sweep_db(
            fig4_network(0.0),
            (0..=300).map(|k| -5.0 + f64::from(k) * 0.05),
        )
        .rate_floor(0.01, 0.01)
        .threads(1)
        .build()
        .sweep()
        .unwrap()
    });
    assert!(lp.solves > 0, "floors force LP solves");
    assert!(
        lp.warm_hits > 0,
        "warm-start path never fired on the floored mini-sweep: {lp:?}"
    );
    assert!(lp.warm_attempts >= lp.warm_hits);
}

#[test]
fn plot_bridge_round_trips_fig3_series() {
    // The binaries plot through sweep_series(); its output must agree with
    // the typed result it was derived from.
    let sweep = Scenario::symmetric_gain_sweep_db(15.0, 0.0, [0.0, 15.0, 30.0])
        .build()
        .sweep()
        .unwrap();
    for s in sweep_series(&sweep) {
        assert_eq!(s.points.len(), 3);
        assert!(s.points.iter().all(|(_, y)| y.is_finite()));
    }
}
