//! Complex AWGN channel simulation.
//!
//! The symbol-level experiments transmit unit-energy constellations scaled
//! by `√P` through a complex gain and add unit-power circularly-symmetric
//! Gaussian noise — exactly the paper's model
//! `Y_r = g_ar·X_a + g_br·X_b + Z_r` (per channel use).
//! [`AwgnChannel`] owns the noise power so tests can also run off-nominal
//! noise floors.

use crate::fading::complex_gaussian;
use crate::gain::LinkGain;
use bcc_num::Complex64;
use rand::Rng;

/// A complex additive white Gaussian noise channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AwgnChannel {
    noise_power: f64,
}

impl Default for AwgnChannel {
    /// Unit noise power — the paper's normalisation.
    fn default() -> Self {
        AwgnChannel { noise_power: 1.0 }
    }
}

impl AwgnChannel {
    /// Creates a channel with the given noise power.
    ///
    /// # Panics
    ///
    /// Panics if `noise_power < 0`.
    pub fn new(noise_power: f64) -> Self {
        assert!(noise_power >= 0.0, "noise power must be non-negative");
        AwgnChannel { noise_power }
    }

    /// Noise power (variance of the complex noise).
    pub fn noise_power(&self) -> f64 {
        self.noise_power
    }

    /// One noise sample.
    pub fn sample_noise<R: Rng + ?Sized>(&self, rng: &mut R) -> Complex64 {
        complex_gaussian(rng, self.noise_power)
    }

    /// Receives one symbol from a single transmitter:
    /// `y = g·x + z`.
    pub fn receive<R: Rng + ?Sized>(&self, gain: LinkGain, x: Complex64, rng: &mut R) -> Complex64 {
        gain.apply(x) + self.sample_noise(rng)
    }

    /// Receives one symbol of a two-user multiple-access phase:
    /// `y = g_a·x_a + g_b·x_b + z` (the relay's observation in MABC/HBC
    /// phase 3).
    pub fn receive_mac<R: Rng + ?Sized>(
        &self,
        gain_a: LinkGain,
        x_a: Complex64,
        gain_b: LinkGain,
        x_b: Complex64,
        rng: &mut R,
    ) -> Complex64 {
        gain_a.apply(x_a) + gain_b.apply(x_b) + self.sample_noise(rng)
    }

    /// Transmits a whole block through the channel.
    pub fn receive_block<R: Rng + ?Sized>(
        &self,
        gain: LinkGain,
        xs: &[Complex64],
        rng: &mut R,
    ) -> Vec<Complex64> {
        xs.iter().map(|&x| self.receive(gain, x, rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_num::RunningStats;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn noise_has_configured_power() {
        let ch = AwgnChannel::new(3.0);
        let mut rng = StdRng::seed_from_u64(1);
        let s: RunningStats = (0..100_000)
            .map(|_| ch.sample_noise(&mut rng).norm_sqr())
            .collect();
        assert!((s.mean() - 3.0).abs() < 0.05, "noise power {}", s.mean());
    }

    #[test]
    fn zero_noise_channel_is_transparent() {
        let ch = AwgnChannel::new(0.0);
        let g = LinkGain::from_power(4.0, 0.0);
        let mut rng = StdRng::seed_from_u64(2);
        let y = ch.receive(g, Complex64::new(1.0, 0.0), &mut rng);
        assert!((y.re - 2.0).abs() < 1e-12);
        assert!(y.im.abs() < 1e-12);
    }

    #[test]
    fn received_snr_matches_power_budget() {
        // snr = P * G / N0.
        let p = 10.0_f64;
        let g = LinkGain::from_power(0.5, 1.0);
        let ch = AwgnChannel::default();
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mut signal = RunningStats::new();
        for _ in 0..n {
            let x = Complex64::new(p.sqrt(), 0.0);
            let y = ch.receive(g, x, &mut rng);
            signal.push(y.norm_sqr());
        }
        // E|y|^2 = P G + N0 = 5 + 1 = 6.
        assert!(
            (signal.mean() - 6.0).abs() < 0.1,
            "mean power {}",
            signal.mean()
        );
    }

    #[test]
    fn mac_superposes_both_users() {
        let ch = AwgnChannel::new(0.0);
        let ga = LinkGain::from_power(1.0, 0.0);
        let gb = LinkGain::from_power(4.0, 0.0);
        let mut rng = StdRng::seed_from_u64(4);
        let y = ch.receive_mac(
            ga,
            Complex64::new(1.0, 0.0),
            gb,
            Complex64::new(-1.0, 0.0),
            &mut rng,
        );
        assert!((y.re - (1.0 - 2.0)).abs() < 1e-12);
    }

    #[test]
    fn block_length_preserved() {
        let ch = AwgnChannel::default();
        let g = LinkGain::from_power(1.0, 0.0);
        let mut rng = StdRng::seed_from_u64(5);
        let xs = vec![Complex64::ONE; 37];
        assert_eq!(ch.receive_block(g, &xs, &mut rng).len(), 37);
    }
}
