//! Channel-state information for the three-node bidirectional relay
//! network.
//!
//! The paper assumes full CSI at all nodes and reciprocal channels, so the
//! entire network state is the triple of *power* gains
//! `(G_ab, G_ar, G_br)` plus the common per-node transmit power `P`
//! (noise is normalised to unit power). [`ChannelState`] carries the gains;
//! power is kept separate because the bounds are evaluated as functions of
//! `P` for fixed gains (e.g. the Fig. 4 low/high-SNR comparison).

use crate::halfduplex::NodeId;
use bcc_num::Db;

/// Reciprocal power gains of the three links of the network.
///
/// `gab` connects the two terminals; `gar` and `gbr` connect each terminal
/// to the relay. All values are **linear** power gains (`G_ij = |g_ij|²`,
/// incorporating both path loss and the current fading realisation).
///
/// ```
/// use bcc_channel::ChannelState;
/// use bcc_num::Db;
///
/// // Fig. 4 of the paper: Gab = −7 dB, Gar = 0 dB, Gbr = 5 dB.
/// let cs = ChannelState::from_db(Db::new(-7.0), Db::new(0.0), Db::new(5.0));
/// assert!((cs.gar() - 1.0).abs() < 1e-12);
/// assert!(cs.gab() < cs.gar() && cs.gbr() > cs.gar());
/// assert!(cs.relay_advantaged());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelState {
    gab: f64,
    gar: f64,
    gbr: f64,
}

impl ChannelState {
    /// Creates a channel state from linear power gains.
    ///
    /// # Panics
    ///
    /// Panics if any gain is negative, NaN or infinite.
    pub fn new(gab: f64, gar: f64, gbr: f64) -> Self {
        for (name, g) in [("gab", gab), ("gar", gar), ("gbr", gbr)] {
            assert!(
                g.is_finite() && g >= 0.0,
                "power gain {name} must be finite and non-negative, got {g}"
            );
        }
        ChannelState { gab, gar, gbr }
    }

    /// Creates a channel state from gains in dB.
    pub fn from_db(gab: Db, gar: Db, gbr: Db) -> Self {
        ChannelState::new(gab.to_linear(), gar.to_linear(), gbr.to_linear())
    }

    /// Terminal-to-terminal power gain `G_ab`.
    pub fn gab(&self) -> f64 {
        self.gab
    }

    /// Terminal-`a`-to-relay power gain `G_ar`.
    pub fn gar(&self) -> f64 {
        self.gar
    }

    /// Terminal-`b`-to-relay power gain `G_br`.
    pub fn gbr(&self) -> f64 {
        self.gbr
    }

    /// Power gain of the (reciprocal) link between two distinct nodes.
    ///
    /// # Panics
    ///
    /// Panics if `i == j` (no self-links in the model).
    pub fn link(&self, i: NodeId, j: NodeId) -> f64 {
        use NodeId::*;
        match (i, j) {
            (A, B) | (B, A) => self.gab,
            (A, R) | (R, A) => self.gar,
            (B, R) | (R, B) => self.gbr,
            _ => panic!("no self-link {i:?} -> {j:?}"),
        }
    }

    /// Returns a copy with every gain multiplied by the corresponding entry
    /// of `(fab, far, fbr)` — how a quasi-static fading realisation is
    /// applied on top of path loss.
    ///
    /// # Panics
    ///
    /// Panics if any factor is negative or non-finite.
    pub fn faded(&self, fab: f64, far: f64, fbr: f64) -> Self {
        ChannelState::new(self.gab * fab, self.gar * far, self.gbr * fbr)
    }

    /// `true` if the state satisfies the paper's "interesting case"
    /// ordering `G_ab ≤ G_ar` and `G_ab ≤ G_br` (both relay links at least
    /// as strong as the direct link).
    pub fn relay_advantaged(&self) -> bool {
        self.gab <= self.gar && self.gab <= self.gbr
    }

    /// Swaps the roles of terminals `a` and `b` (exchanges `G_ar` and
    /// `G_br`); useful for symmetry tests.
    pub fn swapped(&self) -> Self {
        ChannelState {
            gab: self.gab,
            gar: self.gbr,
            gbr: self.gar,
        }
    }
}

impl std::fmt::Display for ChannelState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Gab={:.3} dB, Gar={:.3} dB, Gbr={:.3} dB",
            Db::from_linear(self.gab).value(),
            Db::from_linear(self.gar).value(),
            Db::from_linear(self.gbr).value()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_num::approx_eq;

    #[test]
    fn db_construction_matches_linear() {
        let cs = ChannelState::from_db(Db::new(-7.0), Db::new(0.0), Db::new(5.0));
        assert!(approx_eq(cs.gab(), 0.19952623149688797, 1e-12));
        assert!(approx_eq(cs.gar(), 1.0, 1e-12));
        assert!(approx_eq(cs.gbr(), 3.1622776601683795, 1e-12));
    }

    #[test]
    fn links_are_reciprocal() {
        use NodeId::*;
        let cs = ChannelState::new(1.0, 2.0, 3.0);
        for (i, j) in [(A, B), (A, R), (B, R)] {
            assert_eq!(cs.link(i, j), cs.link(j, i));
        }
        assert_eq!(cs.link(A, R), 2.0);
    }

    #[test]
    #[should_panic(expected = "no self-link")]
    fn self_link_panics() {
        let cs = ChannelState::new(1.0, 1.0, 1.0);
        let _ = cs.link(NodeId::A, NodeId::A);
    }

    #[test]
    fn fading_scales_gains() {
        let cs = ChannelState::new(1.0, 2.0, 4.0).faded(0.5, 2.0, 0.25);
        assert!(approx_eq(cs.gab(), 0.5, 1e-12));
        assert!(approx_eq(cs.gar(), 4.0, 1e-12));
        assert!(approx_eq(cs.gbr(), 1.0, 1e-12));
    }

    #[test]
    fn relay_advantage_predicate() {
        assert!(ChannelState::new(1.0, 2.0, 1.5).relay_advantaged());
        assert!(!ChannelState::new(1.0, 2.0, 0.5).relay_advantaged());
    }

    #[test]
    fn swap_is_involution() {
        let cs = ChannelState::new(1.0, 2.0, 3.0);
        assert_eq!(cs.swapped().swapped(), cs);
        assert_eq!(cs.swapped().gar(), 3.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_gain_rejected() {
        let _ = ChannelState::new(-1.0, 1.0, 1.0);
    }
}
