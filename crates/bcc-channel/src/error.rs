//! Error type for channel-substrate construction and geometry.

use std::error::Error;
use std::fmt;

/// Errors produced while validating geometry inputs or deriving channel
/// gains from them.
///
/// These are *input* errors, not solver errors: every variant describes a
/// parameter the caller supplied (a coordinate, an exponent, a relay
/// position) or a gain that came out non-finite because of one. The
/// batch layers above (`bcc-core`) convert them into their own
/// validation errors rather than panicking mid-sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChannelError {
    /// A node coordinate is NaN or infinite.
    InvalidCoordinate {
        /// Which node (`"a"`, `"b"`, `"r"`, or a placement label).
        node: &'static str,
        /// The offending coordinates.
        x: f64,
        /// Second coordinate.
        y: f64,
    },
    /// The path-loss exponent is negative or non-finite.
    InvalidGamma {
        /// The offending exponent.
        gamma: f64,
    },
    /// A relay position left the open interval `(0, 1)` of the line
    /// network.
    InvalidPosition {
        /// The offending position.
        position: f64,
    },
    /// A derived link gain is non-finite (e.g. `d_min^{-γ}` overflowed at
    /// an extreme exponent even after the near-field clamp).
    NonFiniteGain {
        /// Which link (`"ab"`, `"ar"`, `"br"`).
        link: &'static str,
        /// The (clamped) distance the gain was computed from.
        dist: f64,
        /// The path-loss exponent.
        gamma: f64,
    },
    /// A topology size or extent parameter is unusable (zero node counts,
    /// non-positive radius).
    InvalidTopology {
        /// What was wrong, e.g. `"need at least one pair"`.
        what: &'static str,
    },
}

impl fmt::Display for ChannelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChannelError::InvalidCoordinate { node, x, y } => {
                write!(f, "node {node} has a non-finite coordinate ({x}, {y})")
            }
            ChannelError::InvalidGamma { gamma } => {
                write!(
                    f,
                    "path-loss exponent must be finite and non-negative, got {gamma}"
                )
            }
            ChannelError::InvalidPosition { position } => {
                write!(f, "relay position must be in (0,1), got {position}")
            }
            ChannelError::NonFiniteGain { link, dist, gamma } => {
                write!(
                    f,
                    "link {link} gain is non-finite at distance {dist} with exponent {gamma}"
                )
            }
            ChannelError::InvalidTopology { what } => {
                write!(f, "invalid topology: {what}")
            }
        }
    }
}

impl Error for ChannelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_parameter() {
        let e = ChannelError::InvalidGamma { gamma: -1.0 };
        assert!(e.to_string().contains("-1"));
        let e = ChannelError::NonFiniteGain {
            link: "ar",
            dist: 1e-3,
            gamma: 400.0,
        };
        assert!(e.to_string().contains("ar"));
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ChannelError>();
    }
}
