//! Quasi-static block fading models.
//!
//! The paper's effective gains combine path loss with **quasi-static
//! fading**: the fade is constant over a protocol block and i.i.d. across
//! blocks. With full CSI, each realisation simply rescales the power
//! gains; the outage/ergodic experiments in `bcc-sim` draw one
//! [`FadingModel`] sample per link per block and multiply it onto the
//! path-loss [`ChannelState`](crate::csi::ChannelState).

use bcc_num::Complex64;
use rand::Rng;
use rand_distr_shim::standard_normal;

/// A tiny internal shim so we only depend on `rand`'s uniform source: a
/// standard normal via Box–Muller. (The offline crate set does not include
/// `rand_distr`.)
mod rand_distr_shim {
    use rand::Rng;

    /// One standard-normal draw via the Box–Muller transform.
    pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // Draw u1 in (0,1] to avoid ln(0).
        let u1: f64 = 1.0 - rng.gen::<f64>();
        let u2: f64 = rng.gen();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

/// A complex circularly-symmetric Gaussian sample `CN(0, variance)`.
pub fn complex_gaussian<R: Rng + ?Sized>(rng: &mut R, variance: f64) -> Complex64 {
    assert!(variance >= 0.0, "variance must be non-negative");
    let s = (variance / 2.0).sqrt();
    Complex64::new(s * standard_normal(rng), s * standard_normal(rng))
}

/// Block-fading models for one link.
///
/// Every model is normalised to **unit mean power** so it can scale a
/// path-loss gain without changing the average link budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FadingModel {
    /// No fading: the gain factor is always 1.
    None,
    /// Rayleigh fading: amplitude `h ~ CN(0,1)`, power `|h|² ~ Exp(1)`.
    Rayleigh,
    /// Rician fading with K-factor `k` (ratio of line-of-sight to scattered
    /// power); reduces to Rayleigh at `k = 0`.
    Rician {
        /// Line-of-sight to scattered power ratio (linear, ≥ 0).
        k: f64,
    },
}

impl FadingModel {
    /// Samples one complex amplitude fade (unit mean power).
    pub fn sample_amplitude<R: Rng + ?Sized>(&self, rng: &mut R) -> Complex64 {
        match *self {
            FadingModel::None => Complex64::ONE,
            FadingModel::Rayleigh => complex_gaussian(rng, 1.0),
            FadingModel::Rician { k } => {
                assert!(k >= 0.0, "Rician K-factor must be non-negative");
                let los = (k / (k + 1.0)).sqrt();
                let scatter = complex_gaussian(rng, 1.0 / (k + 1.0));
                Complex64::new(los, 0.0) + scatter
            }
        }
    }

    /// Samples one *power* fade `|h|²` (unit mean).
    pub fn sample_power<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.sample_amplitude(rng).norm_sqr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_num::RunningStats;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn power_stats(model: FadingModel, n: usize, seed: u64) -> RunningStats {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| model.sample_power(&mut rng)).collect()
    }

    #[test]
    fn no_fading_is_deterministic_unity() {
        let s = power_stats(FadingModel::None, 100, 1);
        assert_eq!(s.mean(), 1.0);
        assert_eq!(s.population_variance(), 0.0);
    }

    #[test]
    fn rayleigh_power_is_unit_mean_exponential() {
        let s = power_stats(FadingModel::Rayleigh, 200_000, 42);
        // Exp(1): mean 1, variance 1.
        assert!((s.mean() - 1.0).abs() < 0.01, "mean {}", s.mean());
        assert!(
            (s.sample_variance() - 1.0).abs() < 0.05,
            "variance {}",
            s.sample_variance()
        );
    }

    #[test]
    fn rayleigh_power_cdf_matches_exponential() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 100_000;
        let below_one = (0..n)
            .filter(|_| FadingModel::Rayleigh.sample_power(&mut rng) < 1.0)
            .count() as f64
            / n as f64;
        // P[Exp(1) < 1] = 1 - e^{-1} ≈ 0.632.
        assert!((below_one - 0.6321).abs() < 0.01, "P[X<1] = {below_one}");
    }

    #[test]
    fn rician_unit_mean_power_any_k() {
        for &k in &[0.0, 1.0, 5.0, 20.0] {
            let s = power_stats(FadingModel::Rician { k }, 100_000, 7);
            assert!((s.mean() - 1.0).abs() < 0.02, "K={k}: mean {}", s.mean());
        }
    }

    #[test]
    fn rician_variance_shrinks_with_k() {
        let v0 = power_stats(FadingModel::Rician { k: 0.0 }, 50_000, 3).sample_variance();
        let v10 = power_stats(FadingModel::Rician { k: 10.0 }, 50_000, 3).sample_variance();
        assert!(
            v10 < v0,
            "K=10 variance {v10} should be below K=0 variance {v0}"
        );
    }

    #[test]
    fn complex_gaussian_components_independent_zero_mean() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut re = RunningStats::new();
        let mut im = RunningStats::new();
        let mut cross = RunningStats::new();
        for _ in 0..100_000 {
            let z = complex_gaussian(&mut rng, 2.0);
            re.push(z.re);
            im.push(z.im);
            cross.push(z.re * z.im);
        }
        assert!(re.mean().abs() < 0.02);
        assert!(im.mean().abs() < 0.02);
        // Each component has variance sigma^2 / 2 = 1.
        assert!((re.sample_variance() - 1.0).abs() < 0.03);
        assert!((im.sample_variance() - 1.0).abs() < 0.03);
        assert!(cross.mean().abs() < 0.02);
    }
}
