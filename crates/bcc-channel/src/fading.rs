//! Quasi-static block fading models.
//!
//! The paper's effective gains combine path loss with **quasi-static
//! fading**: the fade is constant over a protocol block and i.i.d. across
//! blocks. With full CSI, each realisation simply rescales the power
//! gains; the outage/ergodic experiments in `bcc-sim` draw one
//! [`FadingModel`] sample per link per block and multiply it onto the
//! path-loss [`ChannelState`](crate::csi::ChannelState).

use bcc_num::Complex64;
use rand::Rng;
use rand_distr_shim::standard_normal;

/// A tiny internal shim so we only depend on `rand`'s uniform source: a
/// standard normal via Box–Muller. (The offline crate set does not include
/// `rand_distr`.)
mod rand_distr_shim {
    use rand::Rng;

    /// One standard-normal draw via the Box–Muller transform.
    pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // Draw u1 in (0,1] to avoid ln(0).
        let u1: f64 = 1.0 - rng.gen::<f64>();
        let u2: f64 = rng.gen();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

/// A complex circularly-symmetric Gaussian sample `CN(0, variance)`.
pub fn complex_gaussian<R: Rng + ?Sized>(rng: &mut R, variance: f64) -> Complex64 {
    assert!(variance >= 0.0, "variance must be non-negative");
    let s = (variance / 2.0).sqrt();
    Complex64::new(s * standard_normal(rng), s * standard_normal(rng))
}

/// One `Gamma(shape, 1)` draw via the Marsaglia–Tsang squeeze method
/// (shape ≥ 1), the standard rejection sampler: `d = shape − 1/3`,
/// `c = 1/√(9d)`, accept `d·(1 + c·x)³` for a standard-normal `x` with the
/// cheap squeeze `u < 1 − 0.0331·x⁴` and the exact log test as fallback.
fn gamma_standard<R: Rng + ?Sized>(rng: &mut R, shape: f64) -> f64 {
    debug_assert!(shape >= 1.0, "Marsaglia–Tsang needs shape >= 1");
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = standard_normal(rng);
        let t = 1.0 + c * x;
        if t <= 0.0 {
            continue;
        }
        let v = t * t * t;
        let u: f64 = rng.gen();
        if u < 1.0 - 0.0331 * x.powi(4) {
            return d * v;
        }
        if u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
            return d * v;
        }
    }
}

/// Block-fading models for one link.
///
/// Every model is normalised to **unit mean power** so it can scale a
/// path-loss gain without changing the average link budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FadingModel {
    /// No fading: the gain factor is always 1.
    None,
    /// Rayleigh fading: amplitude `h ~ CN(0,1)`, power `|h|² ~ Exp(1)`.
    Rayleigh,
    /// Rician fading with K-factor `k` (ratio of line-of-sight to scattered
    /// power); reduces to Rayleigh at `k = 0`.
    Rician {
        /// Line-of-sight to scattered power ratio (linear, ≥ 0).
        k: f64,
    },
    /// Nakagami-m fading: power `|h|² ~ Gamma(m, 1/m)` (unit mean,
    /// variance `1/m`), amplitude phase uniform. `m = 1` **is** Rayleigh —
    /// the sampler special-cases it to draw the identical `CN(0,1)`
    /// amplitude from the identical RNG stream — `m = 1/2` is one-sided
    /// Gaussian, and `m → ∞` approaches no fading.
    Nakagami {
        /// Shape parameter (≥ 1/2, the Nakagami constraint).
        m: f64,
    },
}

impl FadingModel {
    /// Samples one complex amplitude fade (unit mean power).
    pub fn sample_amplitude<R: Rng + ?Sized>(&self, rng: &mut R) -> Complex64 {
        match *self {
            FadingModel::None => Complex64::ONE,
            FadingModel::Rayleigh => complex_gaussian(rng, 1.0),
            FadingModel::Rician { k } => {
                assert!(k >= 0.0, "Rician K-factor must be non-negative");
                let los = (k / (k + 1.0)).sqrt();
                let scatter = complex_gaussian(rng, 1.0 / (k + 1.0));
                Complex64::new(los, 0.0) + scatter
            }
            FadingModel::Nakagami { m } => {
                assert!(
                    m.is_finite() && m >= 0.5,
                    "Nakagami shape must be finite and >= 1/2, got {m}"
                );
                if m == 1.0 {
                    // Exactly Rayleigh — same draws from the same stream, so
                    // seeded experiments are bit-identical across the two
                    // spellings of the model.
                    return complex_gaussian(rng, 1.0);
                }
                // Gamma(m, 1/m) power. For 1/2 <= m < 1 use the boost
                // Gamma(m) = Gamma(m + 1) · U^{1/m}.
                let g = if m >= 1.0 {
                    gamma_standard(rng, m)
                } else {
                    let boost = gamma_standard(rng, m + 1.0);
                    let u: f64 = 1.0 - rng.gen::<f64>(); // (0, 1], ln-safe
                    boost * u.powf(1.0 / m)
                };
                let power = g / m;
                let theta = 2.0 * std::f64::consts::PI * rng.gen::<f64>();
                Complex64::new(theta.cos(), theta.sin()) * power.sqrt()
            }
        }
    }

    /// Samples one *power* fade `|h|²` (unit mean).
    pub fn sample_power<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.sample_amplitude(rng).norm_sqr()
    }

    /// The analytic variance of the power fade `|h|²` (its mean is 1 for
    /// every model): 0 for no fading, 1 for Rayleigh,
    /// `(1 + 2K)/(1 + K)²` for Rician-K and `1/m` for Nakagami-m. The
    /// sampler property tests pin the empirical moments against this.
    pub fn power_variance(&self) -> f64 {
        match *self {
            FadingModel::None => 0.0,
            FadingModel::Rayleigh => 1.0,
            FadingModel::Rician { k } => (1.0 + 2.0 * k) / ((1.0 + k) * (1.0 + k)),
            FadingModel::Nakagami { m } => 1.0 / m,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_num::RunningStats;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn power_stats(model: FadingModel, n: usize, seed: u64) -> RunningStats {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| model.sample_power(&mut rng)).collect()
    }

    #[test]
    fn no_fading_is_deterministic_unity() {
        let s = power_stats(FadingModel::None, 100, 1);
        assert_eq!(s.mean(), 1.0);
        assert_eq!(s.population_variance(), 0.0);
    }

    #[test]
    fn rayleigh_power_is_unit_mean_exponential() {
        let s = power_stats(FadingModel::Rayleigh, 200_000, 42);
        // Exp(1): mean 1, variance 1.
        assert!((s.mean() - 1.0).abs() < 0.01, "mean {}", s.mean());
        assert!(
            (s.sample_variance() - 1.0).abs() < 0.05,
            "variance {}",
            s.sample_variance()
        );
    }

    #[test]
    fn rayleigh_power_cdf_matches_exponential() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 100_000;
        let below_one = (0..n)
            .filter(|_| FadingModel::Rayleigh.sample_power(&mut rng) < 1.0)
            .count() as f64
            / n as f64;
        // P[Exp(1) < 1] = 1 - e^{-1} ≈ 0.632.
        assert!((below_one - 0.6321).abs() < 0.01, "P[X<1] = {below_one}");
    }

    #[test]
    fn rician_unit_mean_power_any_k() {
        for &k in &[0.0, 1.0, 5.0, 20.0] {
            let s = power_stats(FadingModel::Rician { k }, 100_000, 7);
            assert!((s.mean() - 1.0).abs() < 0.02, "K={k}: mean {}", s.mean());
        }
    }

    #[test]
    fn rician_variance_shrinks_with_k() {
        let v0 = power_stats(FadingModel::Rician { k: 0.0 }, 50_000, 3).sample_variance();
        let v10 = power_stats(FadingModel::Rician { k: 10.0 }, 50_000, 3).sample_variance();
        assert!(
            v10 < v0,
            "K=10 variance {v10} should be below K=0 variance {v0}"
        );
    }

    #[test]
    fn all_samplers_match_analytic_power_moments() {
        // Satellite property test: for every fading family, the empirical
        // mean and variance of |g|² over seeded draws match the analytic
        // moments (mean 1, variance FadingModel::power_variance).
        let models = [
            FadingModel::None,
            FadingModel::Rayleigh,
            FadingModel::Rician { k: 0.0 },
            FadingModel::Rician { k: 3.0 },
            FadingModel::Rician { k: 12.0 },
            FadingModel::Nakagami { m: 0.5 },
            FadingModel::Nakagami { m: 1.0 },
            FadingModel::Nakagami { m: 2.5 },
            FadingModel::Nakagami { m: 6.0 },
        ];
        for model in models {
            let s = power_stats(model, 150_000, 0xFAD0);
            let var = model.power_variance();
            assert!(
                (s.mean() - 1.0).abs() < 0.02,
                "{model:?}: mean {}",
                s.mean()
            );
            // Variance tolerance scales with the distribution's spread
            // (heavier tails need more slack at fixed sample size).
            let tol = 0.03 + 0.05 * var;
            assert!(
                (s.sample_variance() - var).abs() < tol,
                "{model:?}: variance {} vs analytic {var}",
                s.sample_variance()
            );
        }
    }

    #[test]
    fn nakagami_m1_is_bit_identical_to_rayleigh() {
        // Under the same seed stream, m = 1 Nakagami must reproduce the
        // Rayleigh draws exactly — distribution-identity by construction.
        let mut ray = StdRng::seed_from_u64(77);
        let mut nak = StdRng::seed_from_u64(77);
        for _ in 0..1000 {
            let r = FadingModel::Rayleigh.sample_amplitude(&mut ray);
            let n = FadingModel::Nakagami { m: 1.0 }.sample_amplitude(&mut nak);
            assert_eq!(r, n);
        }
    }

    #[test]
    fn nakagami_power_cdf_matches_gamma() {
        // m = 2: |h|² ~ Gamma(2, 1/2), so P[X < x] = 1 − e^{−2x}(1 + 2x).
        let mut rng = StdRng::seed_from_u64(31);
        let model = FadingModel::Nakagami { m: 2.0 };
        let n = 120_000;
        for x in [0.5, 1.0, 2.0] {
            let below =
                (0..n).filter(|_| model.sample_power(&mut rng) < x).count() as f64 / n as f64;
            let exact = 1.0 - (-2.0 * x).exp() * (1.0 + 2.0 * x);
            assert!(
                (below - exact).abs() < 0.01,
                "P[X<{x}] = {below} vs {exact}"
            );
        }
    }

    #[test]
    fn nakagami_variance_shrinks_with_m() {
        let v_half = power_stats(FadingModel::Nakagami { m: 0.5 }, 60_000, 3).sample_variance();
        let v1 = power_stats(FadingModel::Nakagami { m: 1.0 }, 60_000, 3).sample_variance();
        let v8 = power_stats(FadingModel::Nakagami { m: 8.0 }, 60_000, 3).sample_variance();
        assert!(v_half > v1, "m=1/2 must fade harder than Rayleigh");
        assert!(v8 < v1, "m=8 must fade less than Rayleigh");
    }

    #[test]
    #[should_panic(expected = "Nakagami shape")]
    fn nakagami_sub_half_shape_rejected() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = FadingModel::Nakagami { m: 0.3 }.sample_power(&mut rng);
    }

    #[test]
    fn complex_gaussian_components_independent_zero_mean() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut re = RunningStats::new();
        let mut im = RunningStats::new();
        let mut cross = RunningStats::new();
        for _ in 0..100_000 {
            let z = complex_gaussian(&mut rng, 2.0);
            re.push(z.re);
            im.push(z.im);
            cross.push(z.re * z.im);
        }
        assert!(re.mean().abs() < 0.02);
        assert!(im.mean().abs() < 0.02);
        // Each component has variance sigma^2 / 2 = 1.
        assert!((re.sample_variance() - 1.0).abs() < 0.03);
        assert!((im.sample_variance() - 1.0).abs() < 0.03);
        assert!(cross.mean().abs() < 0.02);
    }
}
