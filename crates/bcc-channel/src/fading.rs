//! Quasi-static block fading models.
//!
//! The paper's effective gains combine path loss with **quasi-static
//! fading**: the fade is constant over a protocol block and i.i.d. across
//! blocks. With full CSI, each realisation simply rescales the power
//! gains; the outage/ergodic experiments in `bcc-sim` draw one
//! [`FadingModel`] sample per link per block and multiply it onto the
//! path-loss [`ChannelState`](crate::csi::ChannelState).
//!
//! # Importance sampling for deep outage tails
//!
//! Plain Monte Carlo cannot resolve outage probabilities below `1/trials`;
//! the deep-outage engine instead draws fade powers from an
//! **exponentially tilted** proposal and reweights each trial by its
//! likelihood ratio. For the gamma-family powers here (Rayleigh is
//! `Exp(1) = Gamma(1, 1)`, Nakagami-m is `Gamma(m, 1/m)`), an exponential
//! tilt is exactly a *scale* tilt: the proposal is the same gamma shape
//! with mean `θ ∈ (0, 1]` instead of 1, pushing mass into the deep-fade
//! region. To keep the weights bounded (a pure tilt with `θ < 1/2` has an
//! infinite second moment under the nominal measure — one healthy-fade
//! outlier would carry unbounded weight), the sampler draws from the
//! **defensive mixture** `q = α·p + (1−α)·p_θ`, whose weight
//! `w = p/q ≤ 1/α` by construction. See
//! [`FadingModel::sample_power_tilted`] and [`PowerTilt`].

use bcc_num::Complex64;
use rand::Rng;
use rand_distr_shim::standard_normal;

/// A tiny internal shim so we only depend on `rand`'s uniform source: a
/// standard normal via Box–Muller. (The offline crate set does not include
/// `rand_distr`.)
mod rand_distr_shim {
    use rand::Rng;

    /// One standard-normal draw via the Box–Muller transform.
    pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // Draw u1 in (0,1] to avoid ln(0).
        let u1: f64 = 1.0 - rng.gen::<f64>();
        let u2: f64 = rng.gen();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

/// A complex circularly-symmetric Gaussian sample `CN(0, variance)`.
pub fn complex_gaussian<R: Rng + ?Sized>(rng: &mut R, variance: f64) -> Complex64 {
    assert!(variance >= 0.0, "variance must be non-negative");
    let s = (variance / 2.0).sqrt();
    Complex64::new(s * standard_normal(rng), s * standard_normal(rng))
}

/// One `Gamma(shape, 1)` draw via the Marsaglia–Tsang squeeze method
/// (shape ≥ 1), the standard rejection sampler: `d = shape − 1/3`,
/// `c = 1/√(9d)`, accept `d·(1 + c·x)³` for a standard-normal `x` with the
/// cheap squeeze `u < 1 − 0.0331·x⁴` and the exact log test as fallback.
fn gamma_standard<R: Rng + ?Sized>(rng: &mut R, shape: f64) -> f64 {
    debug_assert!(shape >= 1.0, "Marsaglia–Tsang needs shape >= 1");
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = standard_normal(rng);
        let t = 1.0 + c * x;
        if t <= 0.0 {
            continue;
        }
        let v = t * t * t;
        let u: f64 = rng.gen();
        if u < 1.0 - 0.0331 * x.powi(4) {
            return d * v;
        }
        if u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
            return d * v;
        }
    }
}

/// Block-fading models for one link.
///
/// Every model is normalised to **unit mean power** so it can scale a
/// path-loss gain without changing the average link budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FadingModel {
    /// No fading: the gain factor is always 1.
    None,
    /// Rayleigh fading: amplitude `h ~ CN(0,1)`, power `|h|² ~ Exp(1)`.
    Rayleigh,
    /// Rician fading with K-factor `k` (ratio of line-of-sight to scattered
    /// power); reduces to Rayleigh at `k = 0`.
    Rician {
        /// Line-of-sight to scattered power ratio (linear, ≥ 0).
        k: f64,
    },
    /// Nakagami-m fading: power `|h|² ~ Gamma(m, 1/m)` (unit mean,
    /// variance `1/m`), amplitude phase uniform. `m = 1` **is** Rayleigh —
    /// the sampler special-cases it to draw the identical `CN(0,1)`
    /// amplitude from the identical RNG stream — `m = 1/2` is one-sided
    /// Gaussian, and `m → ∞` approaches no fading.
    Nakagami {
        /// Shape parameter (≥ 1/2, the Nakagami constraint).
        m: f64,
    },
}

/// One link's importance-sampling proposal: a scale (exponential) tilt of
/// the fade *power* toward deep fades, defended by a mixture with the
/// nominal distribution.
///
/// `theta` is the proposal's mean power in `(0, 1]` — `1.0` means "no
/// tilt" and is guaranteed to consume the RNG stream exactly like
/// [`FadingModel::sample_power`] with weight exactly `1.0`, so untilted
/// links in a tilted trial stay bit-identical to a plain run. `alpha` is
/// the defensive mass kept on the nominal distribution; every
/// likelihood-ratio weight is bounded by `1/alpha`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerTilt {
    /// Mean power of the tilted proposal, in `(0, 1]`.
    pub theta: f64,
    /// Defensive-mixture mass on the *untilted* distribution, in `(0, 1]`.
    pub alpha: f64,
}

impl PowerTilt {
    /// The default defensive mass: 10% of draws come from the nominal
    /// distribution, bounding every weight by 10.
    pub const DEFAULT_ALPHA: f64 = 0.1;

    /// The identity tilt: plain sampling, weight exactly 1.
    pub const NONE: PowerTilt = PowerTilt {
        theta: 1.0,
        alpha: 1.0,
    };

    /// A tilt toward mean power `theta` with explicit defensive mass.
    ///
    /// # Panics
    ///
    /// Panics unless `theta ∈ (0, 1]` and `alpha ∈ (0, 1]`.
    pub fn new(theta: f64, alpha: f64) -> Self {
        assert!(
            theta > 0.0 && theta <= 1.0,
            "tilt mean must lie in (0, 1], got {theta}"
        );
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "defensive mass must lie in (0, 1], got {alpha}"
        );
        PowerTilt { theta, alpha }
    }

    /// A tilt toward mean power `theta` with [`PowerTilt::DEFAULT_ALPHA`].
    pub fn toward(theta: f64) -> Self {
        PowerTilt::new(theta, PowerTilt::DEFAULT_ALPHA)
    }

    /// `true` if this tilt is the identity (no reweighting).
    pub fn is_identity(&self) -> bool {
        self.theta == 1.0
    }
}

/// Likelihood-ratio weight `p(x)/q(x)` of the defensive mixture
/// `q = α·p + (1−α)·p_θ` for a `Gamma(m, 1/m)` nominal power: with the
/// densities' log ratio `t = ln(p_θ/p)(x) = m·(ln(1/θ) − x·(1/θ − 1))`,
/// the weight is `1/(α + (1−α)·eᵗ)`, evaluated on whichever side of `t = 0`
/// keeps the exponential from overflowing.
fn defensive_mixture_weight(m: f64, theta: f64, alpha: f64, x: f64) -> f64 {
    let t = m * ((1.0 / theta).ln() - x * (1.0 / theta - 1.0));
    if t >= 0.0 {
        // Deep-fade side: the tilted density dominates; w ≤ 1.
        let e = (-t).exp();
        e / (alpha * e + (1.0 - alpha))
    } else {
        // Healthy-fade side: the nominal density dominates; w ≤ 1/α.
        1.0 / (alpha + (1.0 - alpha) * t.exp())
    }
}

impl FadingModel {
    /// A validated Nakagami-m model.
    ///
    /// The enum variant can be constructed with any `m`, but the
    /// Marsaglia–Tsang sampler (with the `Gamma(m+1)·U^{1/m}` boost for
    /// `m < 1`) is only correct for `m ≥ 1/2` — which is also the Nakagami
    /// constraint itself — so invalid shapes must be rejected at
    /// construction instead of producing silently-wrong draws later.
    ///
    /// # Panics
    ///
    /// Panics unless `m` is finite and `m ≥ 1/2`.
    pub fn nakagami(m: f64) -> Self {
        assert!(
            m.is_finite() && m >= 0.5,
            "Nakagami shape must be finite and >= 1/2, got {m}"
        );
        FadingModel::Nakagami { m }
    }

    /// A validated Rician model (rejects `k` outside `[0, ∞)`).
    ///
    /// An infinite K-factor is the subtle case: the sampler's
    /// `k / (k + 1)` line-of-sight and `1 / (k + 1)` scatter terms both
    /// become `∞/∞`-style NaNs, which would then propagate silently
    /// through every faded gain. `k → ∞` *means* "no fading" — ask for
    /// [`FadingModel::None`] instead.
    ///
    /// # Panics
    ///
    /// Panics unless `k` is finite and `k ≥ 0`.
    pub fn rician(k: f64) -> Self {
        assert!(
            k.is_finite() && k >= 0.0,
            "Rician K-factor must be finite and non-negative, got {k}"
        );
        FadingModel::Rician { k }
    }

    /// The gamma shape of this model's *power* distribution
    /// (`|h|² ~ Gamma(shape, 1/shape)`), if it has one: `1` for Rayleigh,
    /// `m` for Nakagami-m. `None` for the non-gamma models (no fading,
    /// Rician), which the tilted sampler and the analytic tails do not
    /// support.
    ///
    /// # Panics
    ///
    /// Panics on an invalid Nakagami shape (see [`FadingModel::nakagami`]).
    pub fn power_shape(&self) -> Option<f64> {
        match *self {
            FadingModel::Rayleigh => Some(1.0),
            FadingModel::Nakagami { m } => {
                assert!(
                    m.is_finite() && m >= 0.5,
                    "Nakagami shape must be finite and >= 1/2, got {m}"
                );
                Some(m)
            }
            FadingModel::None | FadingModel::Rician { .. } => None,
        }
    }

    /// `true` if [`FadingModel::sample_power_tilted`] supports this model.
    pub fn supports_tilt(&self) -> bool {
        self.power_shape().is_some()
    }

    /// Samples one interest-weighted *power* fade from the defensive
    /// mixture `α·p + (1−α)·p_θ`, returning `(power, weight)` where
    /// `weight = p(power)/q(power)` is the trial's likelihood ratio.
    ///
    /// The estimator contract: for any event `A` and trials drawn through
    /// this sampler, `E[w·1{x ∈ A}] = P_p[A]` exactly (unnormalized IS),
    /// and `E[w] = 1`. With the identity tilt the method consumes the RNG
    /// stream exactly like [`FadingModel::sample_power`] and returns weight
    /// exactly `1.0`, so a partially tilted trial (only the
    /// outage-relevant links tilted) is bit-compatible with plain sampling
    /// on its untilted links.
    ///
    /// # Panics
    ///
    /// Panics if the tilt is non-identity and the model has no gamma power
    /// shape (see [`FadingModel::power_shape`]).
    pub fn sample_power_tilted<R: Rng + ?Sized>(&self, rng: &mut R, tilt: PowerTilt) -> (f64, f64) {
        if tilt.is_identity() {
            return (self.sample_power(rng), 1.0);
        }
        let m = self.power_shape().unwrap_or_else(|| {
            panic!("{self:?} has no gamma power shape; importance tilting is undefined")
        });
        // Branch first, then one nominal draw: the tilted component is the
        // *scaled* nominal draw, so both branches consume identical
        // randomness and the trial stays a pure function of its stream.
        let from_tilt = rng.gen::<f64>() >= tilt.alpha;
        let base = self.sample_power(rng);
        let x = if from_tilt { tilt.theta * base } else { base };
        (x, defensive_mixture_weight(m, tilt.theta, tilt.alpha, x))
    }

    /// Samples one complex amplitude fade (unit mean power).
    pub fn sample_amplitude<R: Rng + ?Sized>(&self, rng: &mut R) -> Complex64 {
        match *self {
            FadingModel::None => Complex64::ONE,
            FadingModel::Rayleigh => complex_gaussian(rng, 1.0),
            FadingModel::Rician { k } => {
                assert!(
                    k.is_finite() && k >= 0.0,
                    "Rician K-factor must be finite and non-negative, got {k}"
                );
                let los = (k / (k + 1.0)).sqrt();
                let scatter = complex_gaussian(rng, 1.0 / (k + 1.0));
                Complex64::new(los, 0.0) + scatter
            }
            FadingModel::Nakagami { m } => {
                assert!(
                    m.is_finite() && m >= 0.5,
                    "Nakagami shape must be finite and >= 1/2, got {m}"
                );
                if m == 1.0 {
                    // Exactly Rayleigh — same draws from the same stream, so
                    // seeded experiments are bit-identical across the two
                    // spellings of the model.
                    return complex_gaussian(rng, 1.0);
                }
                // Gamma(m, 1/m) power. For 1/2 <= m < 1 use the boost
                // Gamma(m) = Gamma(m + 1) · U^{1/m}.
                let g = if m >= 1.0 {
                    gamma_standard(rng, m)
                } else {
                    let boost = gamma_standard(rng, m + 1.0);
                    let u: f64 = 1.0 - rng.gen::<f64>(); // (0, 1], ln-safe
                    boost * u.powf(1.0 / m)
                };
                let power = g / m;
                let theta = 2.0 * std::f64::consts::PI * rng.gen::<f64>();
                Complex64::new(theta.cos(), theta.sin()) * power.sqrt()
            }
        }
    }

    /// Samples one *power* fade `|h|²` (unit mean).
    pub fn sample_power<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.sample_amplitude(rng).norm_sqr()
    }

    /// The analytic variance of the power fade `|h|²` (its mean is 1 for
    /// every model): 0 for no fading, 1 for Rayleigh,
    /// `(1 + 2K)/(1 + K)²` for Rician-K and `1/m` for Nakagami-m. The
    /// sampler property tests pin the empirical moments against this.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range Nakagami shape — `1/m` would otherwise
    /// report a plausible-looking variance for a model the sampler cannot
    /// draw from (see [`FadingModel::nakagami`]).
    pub fn power_variance(&self) -> f64 {
        match *self {
            FadingModel::None => 0.0,
            FadingModel::Rayleigh => 1.0,
            FadingModel::Rician { k } => {
                assert!(
                    k.is_finite() && k >= 0.0,
                    "Rician K-factor must be finite and non-negative, got {k}"
                );
                (1.0 + 2.0 * k) / ((1.0 + k) * (1.0 + k))
            }
            FadingModel::Nakagami { m } => {
                assert!(
                    m.is_finite() && m >= 0.5,
                    "Nakagami shape must be finite and >= 1/2, got {m}"
                );
                1.0 / m
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_num::RunningStats;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn power_stats(model: FadingModel, n: usize, seed: u64) -> RunningStats {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| model.sample_power(&mut rng)).collect()
    }

    #[test]
    fn no_fading_is_deterministic_unity() {
        let s = power_stats(FadingModel::None, 100, 1);
        assert_eq!(s.mean(), 1.0);
        assert_eq!(s.population_variance(), 0.0);
    }

    #[test]
    fn rayleigh_power_is_unit_mean_exponential() {
        let s = power_stats(FadingModel::Rayleigh, 200_000, 42);
        // Exp(1): mean 1, variance 1.
        assert!((s.mean() - 1.0).abs() < 0.01, "mean {}", s.mean());
        assert!(
            (s.sample_variance() - 1.0).abs() < 0.05,
            "variance {}",
            s.sample_variance()
        );
    }

    #[test]
    fn rayleigh_power_cdf_matches_exponential() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 100_000;
        let below_one = (0..n)
            .filter(|_| FadingModel::Rayleigh.sample_power(&mut rng) < 1.0)
            .count() as f64
            / n as f64;
        // P[Exp(1) < 1] = 1 - e^{-1} ≈ 0.632.
        assert!((below_one - 0.6321).abs() < 0.01, "P[X<1] = {below_one}");
    }

    #[test]
    fn rician_unit_mean_power_any_k() {
        for &k in &[0.0, 1.0, 5.0, 20.0] {
            let s = power_stats(FadingModel::Rician { k }, 100_000, 7);
            assert!((s.mean() - 1.0).abs() < 0.02, "K={k}: mean {}", s.mean());
        }
    }

    #[test]
    fn rician_variance_shrinks_with_k() {
        let v0 = power_stats(FadingModel::Rician { k: 0.0 }, 50_000, 3).sample_variance();
        let v10 = power_stats(FadingModel::Rician { k: 10.0 }, 50_000, 3).sample_variance();
        assert!(
            v10 < v0,
            "K=10 variance {v10} should be below K=0 variance {v0}"
        );
    }

    #[test]
    fn all_samplers_match_analytic_power_moments() {
        // Satellite property test: for every fading family, the empirical
        // mean and variance of |g|² over seeded draws match the analytic
        // moments (mean 1, variance FadingModel::power_variance).
        let models = [
            FadingModel::None,
            FadingModel::Rayleigh,
            FadingModel::Rician { k: 0.0 },
            FadingModel::Rician { k: 3.0 },
            FadingModel::Rician { k: 12.0 },
            FadingModel::Nakagami { m: 0.5 },
            FadingModel::Nakagami { m: 1.0 },
            FadingModel::Nakagami { m: 2.5 },
            FadingModel::Nakagami { m: 6.0 },
        ];
        for model in models {
            let s = power_stats(model, 150_000, 0xFAD0);
            let var = model.power_variance();
            assert!(
                (s.mean() - 1.0).abs() < 0.02,
                "{model:?}: mean {}",
                s.mean()
            );
            // Variance tolerance scales with the distribution's spread
            // (heavier tails need more slack at fixed sample size).
            let tol = 0.03 + 0.05 * var;
            assert!(
                (s.sample_variance() - var).abs() < tol,
                "{model:?}: variance {} vs analytic {var}",
                s.sample_variance()
            );
        }
    }

    #[test]
    fn nakagami_m1_is_bit_identical_to_rayleigh() {
        // Under the same seed stream, m = 1 Nakagami must reproduce the
        // Rayleigh draws exactly — distribution-identity by construction.
        let mut ray = StdRng::seed_from_u64(77);
        let mut nak = StdRng::seed_from_u64(77);
        for _ in 0..1000 {
            let r = FadingModel::Rayleigh.sample_amplitude(&mut ray);
            let n = FadingModel::Nakagami { m: 1.0 }.sample_amplitude(&mut nak);
            assert_eq!(r, n);
        }
    }

    #[test]
    fn nakagami_power_cdf_matches_gamma() {
        // m = 2: |h|² ~ Gamma(2, 1/2), so P[X < x] = 1 − e^{−2x}(1 + 2x).
        let mut rng = StdRng::seed_from_u64(31);
        let model = FadingModel::Nakagami { m: 2.0 };
        let n = 120_000;
        for x in [0.5, 1.0, 2.0] {
            let below =
                (0..n).filter(|_| model.sample_power(&mut rng) < x).count() as f64 / n as f64;
            let exact = 1.0 - (-2.0 * x).exp() * (1.0 + 2.0 * x);
            assert!(
                (below - exact).abs() < 0.01,
                "P[X<{x}] = {below} vs {exact}"
            );
        }
    }

    #[test]
    fn nakagami_variance_shrinks_with_m() {
        let v_half = power_stats(FadingModel::Nakagami { m: 0.5 }, 60_000, 3).sample_variance();
        let v1 = power_stats(FadingModel::Nakagami { m: 1.0 }, 60_000, 3).sample_variance();
        let v8 = power_stats(FadingModel::Nakagami { m: 8.0 }, 60_000, 3).sample_variance();
        assert!(v_half > v1, "m=1/2 must fade harder than Rayleigh");
        assert!(v8 < v1, "m=8 must fade less than Rayleigh");
    }

    #[test]
    #[should_panic(expected = "Nakagami shape")]
    fn nakagami_sub_half_shape_rejected() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = FadingModel::Nakagami { m: 0.3 }.sample_power(&mut rng);
    }

    #[test]
    #[should_panic(expected = "Nakagami shape")]
    fn nakagami_constructor_rejects_sub_half_shape() {
        let _ = FadingModel::nakagami(0.49);
    }

    #[test]
    #[should_panic(expected = "Nakagami shape")]
    fn nakagami_constructor_rejects_non_finite_shape() {
        let _ = FadingModel::nakagami(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "Nakagami shape")]
    fn power_variance_rejects_invalid_nakagami() {
        // Regression: this used to report a plausible 1/m = 10 for a shape
        // the sampler cannot draw from.
        let _ = FadingModel::Nakagami { m: 0.1 }.power_variance();
    }

    #[test]
    #[should_panic(expected = "Rician K-factor")]
    fn rician_constructor_rejects_nan() {
        let _ = FadingModel::rician(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "Rician K-factor")]
    fn rician_constructor_rejects_infinity() {
        // Regression: `Rician { k: ∞ }` used to pass the sampler's old
        // `k >= 0` check and silently produce NaN amplitudes (∞/∞ in the
        // line-of-sight/scatter split).
        let _ = FadingModel::rician(f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "Rician K-factor")]
    fn rician_constructor_rejects_negative() {
        let _ = FadingModel::rician(-0.5);
    }

    #[test]
    #[should_panic(expected = "Rician K-factor")]
    fn rician_infinite_k_sampling_rejected() {
        let mut rng = StdRng::seed_from_u64(9);
        let _ = FadingModel::Rician { k: f64::INFINITY }.sample_power(&mut rng);
    }

    #[test]
    #[should_panic(expected = "Rician K-factor")]
    fn power_variance_rejects_invalid_rician() {
        let _ = FadingModel::Rician { k: f64::INFINITY }.power_variance();
    }

    #[test]
    fn rician_constructor_accepts_valid_factors_and_samples_finite() {
        let mut rng = StdRng::seed_from_u64(10);
        for k in [0.0, 0.5, 3.0, 50.0] {
            let model = FadingModel::rician(k);
            assert_eq!(model, FadingModel::Rician { k });
            for _ in 0..100 {
                let p = model.sample_power(&mut rng);
                assert!(p.is_finite() && p >= 0.0, "K={k}: power {p}");
            }
        }
    }

    #[test]
    fn nakagami_constructor_moment_regression() {
        // Satellite regression: every constructor-validated shape (boost
        // branch included) reproduces the analytic power moments.
        for m in [0.5, 0.7, 1.0, 3.0] {
            let model = FadingModel::nakagami(m);
            let s = power_stats(model, 200_000, 0xBEEF ^ m.to_bits());
            assert!((s.mean() - 1.0).abs() < 0.02, "m={m}: mean {}", s.mean());
            let var = model.power_variance();
            assert!(
                (s.sample_variance() - var).abs() < 0.03 + 0.05 * var,
                "m={m}: variance {} vs analytic {var}",
                s.sample_variance()
            );
        }
    }

    #[test]
    fn identity_tilt_is_bit_identical_to_plain_sampling() {
        for model in [FadingModel::Rayleigh, FadingModel::nakagami(2.5)] {
            let mut plain = StdRng::seed_from_u64(404);
            let mut tilted = StdRng::seed_from_u64(404);
            for _ in 0..500 {
                let x = model.sample_power(&mut plain);
                let (y, w) = model.sample_power_tilted(&mut tilted, PowerTilt::NONE);
                assert_eq!(x.to_bits(), y.to_bits());
                assert_eq!(w, 1.0);
            }
        }
    }

    #[test]
    fn tilted_weights_are_bounded_and_average_to_one() {
        // E_q[w] = 1 exactly for the defensive mixture; w ≤ 1/α always.
        for model in [
            FadingModel::Rayleigh,
            FadingModel::nakagami(0.6),
            FadingModel::nakagami(2.0),
        ] {
            let tilt = PowerTilt::toward(0.05);
            let mut rng = StdRng::seed_from_u64(0x7117);
            let mut stats = RunningStats::new();
            for _ in 0..120_000 {
                let (_, w) = model.sample_power_tilted(&mut rng, tilt);
                assert!(w > 0.0 && w <= 1.0 / tilt.alpha + 1e-12, "w = {w}");
                stats.push(w);
            }
            let z = (stats.mean() - 1.0) / stats.std_error();
            assert!(
                z.abs() < 4.0,
                "{model:?}: mean weight {} (z = {z})",
                stats.mean()
            );
        }
    }

    #[test]
    fn tilted_estimator_recovers_deep_gamma_tail() {
        // P[Exp(1) < g] with g = 1e-4 is ~1e-4 — far below what 20k plain
        // trials resolve, but the tilted unnormalized estimator
        // (1/n)Σ w·1{x<g} nails it to a few percent.
        let g = 1e-4_f64;
        let exact = -(-g).exp_m1();
        let tilt = PowerTilt::toward(g);
        let mut rng = StdRng::seed_from_u64(0xD3EF);
        let n = 20_000;
        let est: f64 = (0..n)
            .map(|_| {
                let (x, w) = FadingModel::Rayleigh.sample_power_tilted(&mut rng, tilt);
                if x < g {
                    w
                } else {
                    0.0
                }
            })
            .sum::<f64>()
            / n as f64;
        assert!(
            (est / exact - 1.0).abs() < 0.05,
            "IS estimate {est} vs exact {exact}"
        );
    }

    #[test]
    fn tilted_estimator_matches_nakagami_closed_form() {
        // m = 2: P[X < x] = 1 − e^{−2x}(1 + 2x) ≈ 2x² for small x.
        let g = 5e-3_f64;
        let exact = 1.0 - (-2.0 * g).exp() * (1.0 + 2.0 * g);
        let tilt = PowerTilt::toward(g);
        let model = FadingModel::nakagami(2.0);
        let mut rng = StdRng::seed_from_u64(0xACED);
        let n = 30_000;
        let est: f64 = (0..n)
            .map(|_| {
                let (x, w) = model.sample_power_tilted(&mut rng, tilt);
                if x < g {
                    w
                } else {
                    0.0
                }
            })
            .sum::<f64>()
            / n as f64;
        assert!(
            (est / exact - 1.0).abs() < 0.1,
            "IS estimate {est} vs exact {exact}"
        );
    }

    #[test]
    #[should_panic(expected = "no gamma power shape")]
    fn tilting_rician_is_rejected() {
        let mut rng = StdRng::seed_from_u64(2);
        let _ =
            FadingModel::Rician { k: 3.0 }.sample_power_tilted(&mut rng, PowerTilt::toward(0.1));
    }

    #[test]
    #[should_panic(expected = "tilt mean")]
    fn power_tilt_rejects_zero_theta() {
        let _ = PowerTilt::new(0.0, 0.1);
    }

    #[test]
    fn complex_gaussian_components_independent_zero_mean() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut re = RunningStats::new();
        let mut im = RunningStats::new();
        let mut cross = RunningStats::new();
        for _ in 0..100_000 {
            let z = complex_gaussian(&mut rng, 2.0);
            re.push(z.re);
            im.push(z.im);
            cross.push(z.re * z.im);
        }
        assert!(re.mean().abs() < 0.02);
        assert!(im.mean().abs() < 0.02);
        // Each component has variance sigma^2 / 2 = 1.
        assert!((re.sample_variance() - 1.0).abs() < 0.03);
        assert!((im.sample_variance() - 1.0).abs() < 0.03);
        assert!(cross.mean().abs() < 0.02);
    }
}
