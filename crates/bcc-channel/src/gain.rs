//! Complex amplitude link gains.
//!
//! The paper works with complex effective gains `g_ij` that combine
//! quasi-static fading and path loss; only the power `G_ij = |g_ij|²`
//! enters the rate expressions, but the symbol-level simulator needs the
//! complex amplitude (coherent detection rotates by the conjugate phase).

use bcc_num::{Complex64, Db};

/// A complex amplitude gain of one reciprocal link.
///
/// ```
/// use bcc_channel::gain::LinkGain;
/// use bcc_num::Db;
///
/// let g = LinkGain::from_power_db(Db::new(5.0), 0.3);
/// assert!((g.power() - Db::new(5.0).to_linear()).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkGain(Complex64);

impl LinkGain {
    /// Wraps a raw complex amplitude.
    pub fn new(amplitude: Complex64) -> Self {
        LinkGain(amplitude)
    }

    /// Builds a gain with the given *power* in dB and carrier `phase`
    /// (radians).
    pub fn from_power_db(power: Db, phase: f64) -> Self {
        LinkGain(Complex64::from_polar(power.to_amplitude(), phase))
    }

    /// Builds a gain from linear power and phase.
    ///
    /// # Panics
    ///
    /// Panics if `power < 0`.
    pub fn from_power(power: f64, phase: f64) -> Self {
        assert!(power >= 0.0, "power must be non-negative, got {power}");
        LinkGain(Complex64::from_polar(power.sqrt(), phase))
    }

    /// The complex amplitude `g`.
    pub fn amplitude(&self) -> Complex64 {
        self.0
    }

    /// The power gain `G = |g|²` that enters the paper's rate expressions.
    pub fn power(&self) -> f64 {
        self.0.norm_sqr()
    }

    /// Carrier phase in radians.
    pub fn phase(&self) -> f64 {
        self.0.arg()
    }

    /// Applies the gain to a transmitted symbol.
    pub fn apply(&self, x: Complex64) -> Complex64 {
        self.0 * x
    }

    /// The matched-filter (conjugate) rotation used for coherent detection.
    pub fn matched_filter(&self, y: Complex64) -> Complex64 {
        self.0.conj() * y
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_num::approx_eq;

    #[test]
    fn power_phase_roundtrip() {
        let g = LinkGain::from_power(4.0, 0.7);
        assert!(approx_eq(g.power(), 4.0, 1e-12));
        assert!(approx_eq(g.phase(), 0.7, 1e-12));
        assert!(approx_eq(g.amplitude().norm(), 2.0, 1e-12));
    }

    #[test]
    fn db_constructor_squares_amplitude() {
        let g = LinkGain::from_power_db(Db::new(-7.0), 1.2);
        assert!(approx_eq(g.power(), Db::new(-7.0).to_linear(), 1e-12));
    }

    #[test]
    fn matched_filter_removes_phase() {
        let g = LinkGain::from_power(2.5, 1.9);
        let x = Complex64::new(1.0, 0.0);
        let y = g.apply(x);
        let z = g.matched_filter(y);
        // g* g x = |g|^2 x is real and positive.
        assert!(approx_eq(z.im, 0.0, 1e-12));
        assert!(approx_eq(z.re, 2.5, 1e-12));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_power_rejected() {
        let _ = LinkGain::from_power(-1.0, 0.0);
    }
}
