//! Node identities and half-duplex scheduling rules.
//!
//! The paper's channel model (Section II-A) gives every node the extended
//! alphabets `X* = X ∪ {∅}`, `Y* = Y ∪ {∅}` with the constraint
//! `X_i = ∅ ⟺ Y_i ≠ ∅`: a silent node listens, a transmitting node hears
//! nothing. This module encodes that rule once so the protocol definitions
//! in `bcc-core` and the simulators in `bcc-sim` cannot disagree about it.

use std::fmt;

/// The three nodes of the bidirectional relay network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NodeId {
    /// Terminal node `a`.
    A,
    /// Terminal node `b`.
    B,
    /// Relay node `r`.
    R,
}

impl NodeId {
    /// All nodes, in canonical order.
    pub const ALL: [NodeId; 3] = [NodeId::A, NodeId::B, NodeId::R];
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeId::A => write!(f, "a"),
            NodeId::B => write!(f, "b"),
            NodeId::R => write!(f, "r"),
        }
    }
}

/// The transmit/listen split of one protocol phase.
///
/// Construction validates the half-duplex rule structurally: a node is
/// either in the transmitter set or it listens; it can never do both.
/// An empty transmitter set is rejected (such a phase carries no
/// information and the paper's protocols never schedule one).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseActivity {
    transmitters: Vec<NodeId>,
}

impl PhaseActivity {
    /// Creates a phase in which exactly the nodes in `transmitters` send.
    ///
    /// # Errors
    ///
    /// Returns [`HalfDuplexError::NoTransmitter`] for an empty set and
    /// [`HalfDuplexError::DuplicateTransmitter`] if a node appears twice.
    pub fn new(transmitters: &[NodeId]) -> Result<Self, HalfDuplexError> {
        if transmitters.is_empty() {
            return Err(HalfDuplexError::NoTransmitter);
        }
        let mut seen = Vec::new();
        for &t in transmitters {
            if seen.contains(&t) {
                return Err(HalfDuplexError::DuplicateTransmitter(t));
            }
            seen.push(t);
        }
        seen.sort();
        Ok(PhaseActivity { transmitters: seen })
    }

    /// The transmitting nodes (sorted).
    pub fn transmitters(&self) -> &[NodeId] {
        &self.transmitters
    }

    /// The listening nodes (complement of the transmitters), sorted.
    pub fn listeners(&self) -> Vec<NodeId> {
        NodeId::ALL
            .iter()
            .copied()
            .filter(|n| !self.transmitters.contains(n))
            .collect()
    }

    /// `true` if `node` transmits in this phase.
    pub fn is_transmitting(&self, node: NodeId) -> bool {
        self.transmitters.contains(&node)
    }

    /// `true` if `node` can receive `from` in this phase: `from` must
    /// transmit and `node` must listen (half-duplex) and differ from
    /// `from`.
    pub fn can_hear(&self, node: NodeId, from: NodeId) -> bool {
        node != from && !self.is_transmitting(node) && self.is_transmitting(from)
    }
}

/// Violations of the half-duplex scheduling rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HalfDuplexError {
    /// A phase had no transmitting node.
    NoTransmitter,
    /// A node was listed as transmitter twice.
    DuplicateTransmitter(NodeId),
    /// A node was required to transmit and receive simultaneously.
    SimultaneousTransmitReceive(NodeId),
}

impl fmt::Display for HalfDuplexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HalfDuplexError::NoTransmitter => write!(f, "phase has no transmitter"),
            HalfDuplexError::DuplicateTransmitter(n) => {
                write!(f, "node {n} listed as transmitter twice")
            }
            HalfDuplexError::SimultaneousTransmitReceive(n) => {
                write!(f, "node {n} cannot transmit and receive simultaneously")
            }
        }
    }
}

impl std::error::Error for HalfDuplexError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listeners_complement_transmitters() {
        let p = PhaseActivity::new(&[NodeId::A, NodeId::B]).unwrap();
        assert_eq!(p.listeners(), vec![NodeId::R]);
        assert!(p.is_transmitting(NodeId::A));
        assert!(!p.is_transmitting(NodeId::R));
    }

    #[test]
    fn can_hear_respects_half_duplex() {
        // MABC phase 1: a and b transmit, r listens.
        let p = PhaseActivity::new(&[NodeId::A, NodeId::B]).unwrap();
        assert!(p.can_hear(NodeId::R, NodeId::A));
        assert!(p.can_hear(NodeId::R, NodeId::B));
        // b transmits, so it cannot hear a — this is exactly why MABC yields
        // no side information (paper Section II-C).
        assert!(!p.can_hear(NodeId::B, NodeId::A));
        assert!(!p.can_hear(NodeId::A, NodeId::A));
    }

    #[test]
    fn tdbc_phase_gives_side_information() {
        // TDBC phase 1: only a transmits; BOTH r and b hear it.
        let p = PhaseActivity::new(&[NodeId::A]).unwrap();
        assert!(p.can_hear(NodeId::R, NodeId::A));
        assert!(p.can_hear(NodeId::B, NodeId::A));
    }

    #[test]
    fn empty_phase_rejected() {
        assert_eq!(
            PhaseActivity::new(&[]).unwrap_err(),
            HalfDuplexError::NoTransmitter
        );
    }

    #[test]
    fn duplicate_transmitter_rejected() {
        assert_eq!(
            PhaseActivity::new(&[NodeId::A, NodeId::A]).unwrap_err(),
            HalfDuplexError::DuplicateTransmitter(NodeId::A)
        );
    }

    #[test]
    fn transmitters_sorted_canonically() {
        let p = PhaseActivity::new(&[NodeId::B, NodeId::A]).unwrap();
        assert_eq!(p.transmitters(), &[NodeId::A, NodeId::B]);
    }

    #[test]
    fn display_names() {
        assert_eq!(NodeId::A.to_string(), "a");
        assert_eq!(NodeId::R.to_string(), "r");
        assert_eq!(
            HalfDuplexError::SimultaneousTransmitReceive(NodeId::B).to_string(),
            "node b cannot transmit and receive simultaneously"
        );
    }
}
