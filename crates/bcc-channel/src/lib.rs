//! Physical-layer substrate: gains, path loss, fading, AWGN, half-duplex.
//!
//! The paper's Section IV evaluates the protocol bounds on a three-node
//! Gaussian network whose links combine **quasi-static fading and path
//! loss** into reciprocal complex gains `g_ij` (`g_ij = g_ji`), with power
//! gains `G_ij = |g_ij|²`. Each node transmits with power `P` against unit
//! complex AWGN, and the **half-duplex constraint** forces `X_i = ∅` iff
//! `Y_i ≠ ∅` (a node never transmits and receives simultaneously).
//!
//! Modules:
//!
//! * [`csi`] — the `(G_ab, G_ar, G_br)` channel-state triple all bound
//!   computations consume.
//! * [`gain`] — complex amplitude gains and reciprocity.
//! * [`topology`] — node geometry → path-loss gains: line networks for
//!   the relay-placement experiments, and city-scale disc placements
//!   ([`topology::Topology`]) for the many-relay assignment studies,
//!   with a documented `d_min` near-field clamp keeping every gain
//!   finite.
//! * [`error`] — the validation error type ([`ChannelError`]) of the
//!   geometry constructors.
//! * [`power`] — per-node transmit powers under a total-power budget
//!   (the allocation axis of the finite-SNR DMT studies).
//! * [`fading`] — Rayleigh/Rician/Nakagami-m quasi-static block fading.
//! * [`awgn`] — complex AWGN sampling and channel application.
//! * [`halfduplex`] — node identities, per-phase transmit sets, and
//!   violation checking shared by the protocol definitions and simulators.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod awgn;
pub mod csi;
pub mod error;
pub mod fading;
pub mod gain;
pub mod halfduplex;
pub mod power;
pub mod topology;

pub use csi::ChannelState;
pub use error::ChannelError;
pub use fading::{FadingModel, PowerTilt};
pub use halfduplex::NodeId;
pub use power::PowerSplit;
pub use topology::Topology;
