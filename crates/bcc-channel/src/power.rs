//! Per-node transmit powers under a total-power constraint.
//!
//! The paper evaluates every bound with a *common* per-node power `P`
//! (noise normalised to 1). Power-allocation studies — Yi & Kim's
//! finite-SNR diversity–multiplexing work in particular — instead fix the
//! network's **total** power budget and ask how to split it between the
//! terminals and the relay. [`PowerSplit`] carries that split; the bound
//! builders in `bcc-core` evaluate each mutual-information term with the
//! *transmitting* node's power, so a symmetric split reproduces the
//! paper's formulas exactly.

use bcc_num::Db;

/// Per-node transmit powers `(p_a, p_b, p_r)` of the three-node network.
///
/// All values are **linear** powers against unit-variance noise. The type
/// does not itself enforce a budget — it *describes* one point of the
/// allocation simplex; search routines (e.g.
/// `Evaluator::allocation` in `bcc-core`) hold [`PowerSplit::total`]
/// fixed while moving along [`PowerSplit::relay_share`] and
/// [`PowerSplit::terminal_balance`].
///
/// ```
/// use bcc_channel::PowerSplit;
///
/// // The paper's convention: every node transmits with P = 10.
/// let sym = PowerSplit::symmetric(10.0);
/// assert_eq!(sym.total(), 30.0);
/// assert!(sym.is_symmetric());
///
/// // Same budget, 60% of it at the relay, terminals imbalanced 3:1.
/// let skew = PowerSplit::from_shares(30.0, 0.6, 0.75);
/// assert!((skew.p_r() - 18.0).abs() < 1e-12);
/// assert!((skew.p_a() - 9.0).abs() < 1e-12);
/// assert!((skew.p_b() - 3.0).abs() < 1e-12);
/// assert!((skew.total() - sym.total()).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerSplit {
    p_a: f64,
    p_b: f64,
    p_r: f64,
}

impl PowerSplit {
    /// Creates a split from the three per-node powers.
    ///
    /// # Panics
    ///
    /// Panics if any power is negative, NaN or infinite.
    pub fn new(p_a: f64, p_b: f64, p_r: f64) -> Self {
        for (name, p) in [("p_a", p_a), ("p_b", p_b), ("p_r", p_r)] {
            assert!(
                p.is_finite() && p >= 0.0,
                "transmit power {name} must be finite and non-negative, got {p}"
            );
        }
        PowerSplit { p_a, p_b, p_r }
    }

    /// The paper's setting: every node transmits with the same power `p`.
    pub fn symmetric(p: f64) -> Self {
        PowerSplit::new(p, p, p)
    }

    /// An even three-way split of the budget `total` (`total / 3` each) —
    /// the natural baseline of an allocation study.
    pub fn uniform(total: f64) -> Self {
        PowerSplit::symmetric(total / 3.0)
    }

    /// Builds a split from a budget and two simplex coordinates: the relay
    /// takes `relay_share · total`, and the terminals divide the remainder
    /// with `a` taking the `terminal_balance` fraction.
    ///
    /// `relay_share = 1/3`, `terminal_balance = 1/2` is
    /// [`PowerSplit::uniform`].
    ///
    /// # Panics
    ///
    /// Panics if `total < 0` or either share is outside `[0, 1]`.
    pub fn from_shares(total: f64, relay_share: f64, terminal_balance: f64) -> Self {
        assert!(
            total.is_finite() && total >= 0.0,
            "total power must be finite and non-negative, got {total}"
        );
        assert!(
            (0.0..=1.0).contains(&relay_share),
            "relay share out of [0, 1]: {relay_share}"
        );
        assert!(
            (0.0..=1.0).contains(&terminal_balance),
            "terminal balance out of [0, 1]: {terminal_balance}"
        );
        let p_r = total * relay_share;
        let rest = total - p_r;
        PowerSplit::new(
            rest * terminal_balance,
            rest * (1.0 - terminal_balance),
            p_r,
        )
    }

    /// Terminal `a`'s transmit power.
    pub fn p_a(&self) -> f64 {
        self.p_a
    }

    /// Terminal `b`'s transmit power.
    pub fn p_b(&self) -> f64 {
        self.p_b
    }

    /// The relay's transmit power.
    pub fn p_r(&self) -> f64 {
        self.p_r
    }

    /// The total budget `p_a + p_b + p_r`.
    pub fn total(&self) -> f64 {
        self.p_a + self.p_b + self.p_r
    }

    /// The relay's fraction of the budget (`1/3` for a uniform split; `0`
    /// for a zero-budget split, by convention).
    pub fn relay_share(&self) -> f64 {
        let t = self.total();
        if t == 0.0 {
            0.0
        } else {
            self.p_r / t
        }
    }

    /// Terminal `a`'s fraction of the terminal budget (`1/2` when the
    /// terminals are balanced; `1/2` for a zero terminal budget, by
    /// convention).
    pub fn terminal_balance(&self) -> f64 {
        let t = self.p_a + self.p_b;
        if t == 0.0 {
            0.5
        } else {
            self.p_a / t
        }
    }

    /// `true` if all three nodes transmit with exactly the same power.
    pub fn is_symmetric(&self) -> bool {
        self.p_a == self.p_b && self.p_b == self.p_r
    }

    /// The common per-node power, or `None` if the split is asymmetric.
    pub fn common(&self) -> Option<f64> {
        if self.is_symmetric() {
            Some(self.p_a)
        } else {
            None
        }
    }

    /// Swaps the terminal powers (pairs with
    /// [`ChannelState::swapped`](crate::ChannelState::swapped) for
    /// symmetry tests).
    pub fn swapped(&self) -> Self {
        PowerSplit {
            p_a: self.p_b,
            p_b: self.p_a,
            p_r: self.p_r,
        }
    }

    /// Every power multiplied by `factor` (an SNR-axis move that preserves
    /// the split's shape).
    ///
    /// # Panics
    ///
    /// Panics if the scaled powers are invalid (negative or non-finite
    /// `factor`).
    pub fn scaled(&self, factor: f64) -> Self {
        PowerSplit::new(self.p_a * factor, self.p_b * factor, self.p_r * factor)
    }
}

impl std::fmt::Display for PowerSplit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Pa={:.3} dB, Pb={:.3} dB, Pr={:.3} dB",
            Db::from_linear(self.p_a).value(),
            Db::from_linear(self.p_b).value(),
            Db::from_linear(self.p_r).value()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_num::approx_eq;

    #[test]
    fn symmetric_round_trip() {
        let s = PowerSplit::symmetric(4.0);
        assert_eq!(s.common(), Some(4.0));
        assert!(s.is_symmetric());
        assert!(approx_eq(s.total(), 12.0, 1e-12));
        assert!(approx_eq(s.relay_share(), 1.0 / 3.0, 1e-12));
        assert!(approx_eq(s.terminal_balance(), 0.5, 1e-12));
    }

    #[test]
    fn shares_round_trip() {
        let s = PowerSplit::from_shares(30.0, 0.4, 0.7);
        assert!(approx_eq(s.relay_share(), 0.4, 1e-12));
        assert!(approx_eq(s.terminal_balance(), 0.7, 1e-12));
        assert!(approx_eq(s.total(), 30.0, 1e-12));
        assert_eq!(s.common(), None);
    }

    #[test]
    fn uniform_is_even_three_way() {
        let u = PowerSplit::uniform(30.0);
        assert!(u.is_symmetric());
        assert!(approx_eq(u.p_a(), 10.0, 1e-12));
        assert_eq!(u, PowerSplit::from_shares(30.0, 1.0 / 3.0, 0.5).scaled(1.0));
    }

    #[test]
    fn swap_is_involution_and_preserves_relay() {
        let s = PowerSplit::new(1.0, 2.0, 3.0);
        assert_eq!(s.swapped().swapped(), s);
        assert_eq!(s.swapped().p_a(), 2.0);
        assert_eq!(s.swapped().p_r(), 3.0);
    }

    #[test]
    fn zero_budget_conventions() {
        let z = PowerSplit::new(0.0, 0.0, 0.0);
        assert_eq!(z.relay_share(), 0.0);
        assert_eq!(z.terminal_balance(), 0.5);
        assert!(z.is_symmetric());
    }

    #[test]
    fn scaling_preserves_shape() {
        let s = PowerSplit::from_shares(10.0, 0.6, 0.8).scaled(3.0);
        assert!(approx_eq(s.total(), 30.0, 1e-12));
        assert!(approx_eq(s.relay_share(), 0.6, 1e-12));
        assert!(approx_eq(s.terminal_balance(), 0.8, 1e-12));
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_power_rejected() {
        let _ = PowerSplit::new(1.0, -0.1, 1.0);
    }

    #[test]
    #[should_panic(expected = "relay share out of")]
    fn bad_share_rejected() {
        let _ = PowerSplit::from_shares(1.0, 1.2, 0.5);
    }
}
