//! Node geometry → path-loss channel gains.
//!
//! The paper motivates the bidirectional relay with a cellular picture
//! (`a` a mobile, `b` a base station, `r` a relay station) and evaluates
//! bounds for gains satisfying `G_ab ≤ G_ar, G_br`. The natural generator
//! of such gain triples is a **line network**: `a` at the origin, `b` at
//! unit distance, the relay at position `d ∈ (0,1)` between them, with
//! power-law path loss `G = dist^{-γ}` normalised so that `G_ab = 1`
//! (0 dB, the paper's Fig. 3/4 normalisation). [`PlanarNetwork`] frees
//! the three nodes onto the plane, and [`Topology`] scales the picture to
//! a city: `K` terminal pairs and `n` candidate relays placed on a disc,
//! deterministically per seed.
//!
//! # The `d_min` near-field clamp
//!
//! The free-space power law diverges as `dist → 0`: at `γ = 3`,
//! `dist^{-γ}` overflows `f64` to `+∞` below `dist ≈ 1e-103`, and random
//! placements *will* put nodes arbitrarily close together eventually.
//! A non-finite gain is poison for every solver downstream (the
//! [`ChannelState`] constructor rejects it by panicking), so this module
//! clamps every link distance to the documented near-field radius
//! [`D_MIN`] before applying the power law:
//!
//! > `path_loss(d, γ) = max(d, D_MIN)^{-γ}`
//!
//! Physically this is the standard bounded near-field model — the
//! far-field power law is meaningless inside the antenna's near zone, so
//! the gain saturates there instead of diverging. With `D_MIN = 1e-3`
//! the clamp is inert for every distance the workspace's named
//! experiments use, and it keeps gains finite for any exponent
//! `γ ≤ ~102`. Exponents beyond that can still overflow the clamped
//! power law; the `Result`-based constructors
//! ([`PlanarNetwork::try_channel_state`], [`Topology::try_edge_state`])
//! reject such gains with [`ChannelError::NonFiniteGain`] instead of
//! panicking.

use crate::csi::ChannelState;
use crate::error::ChannelError;
use bcc_num::seed::mix_seed;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Near-field clamp radius of [`path_loss`]: distances below this are
/// treated as exactly `D_MIN`, so the power-law gain saturates at
/// `D_MIN^{-γ}` instead of diverging for co-located nodes (see the
/// module docs).
pub const D_MIN: f64 = 1e-3;

/// Free-space/power-law path loss `max(dist, D_MIN)^{-gamma}`, normalised
/// to unit gain at unit distance, with the near-field clamp of the
/// module docs.
///
/// # Panics
///
/// Panics if `dist` is negative or non-finite, or `gamma` is negative or
/// non-finite. (A very large `gamma` can still overflow the clamped
/// power law to `+∞`; use the `Result`-based `try_channel_state`
/// constructors to surface that as a [`ChannelError`] instead.)
///
/// ```
/// let g = bcc_channel::topology::path_loss(0.5, 3.0);
/// assert!((g - 8.0).abs() < 1e-12);
/// // Co-location saturates at the near-field clamp instead of overflowing:
/// let cap = bcc_channel::topology::path_loss(0.0, 3.0);
/// assert!(cap.is_finite());
/// assert_eq!(cap, bcc_channel::topology::D_MIN.powf(-3.0));
/// ```
pub fn path_loss(dist: f64, gamma: f64) -> f64 {
    assert!(
        dist >= 0.0 && dist.is_finite(),
        "distance must be finite and non-negative, got {dist}"
    );
    assert!(
        gamma >= 0.0 && gamma.is_finite(),
        "path-loss exponent must be finite and non-negative, got {gamma}"
    );
    dist.max(D_MIN).powf(-gamma)
}

/// [`path_loss`] with the non-finite overflow case surfaced as an error:
/// the finite-gain contract of the `try_*` constructors.
fn checked_gain(dist: f64, gamma: f64, link: &'static str) -> Result<f64, ChannelError> {
    let g = path_loss(dist, gamma);
    if g.is_finite() {
        Ok(g)
    } else {
        Err(ChannelError::NonFiniteGain {
            link,
            dist: dist.max(D_MIN),
            gamma,
        })
    }
}

fn check_gamma(gamma: f64) -> Result<(), ChannelError> {
    if gamma.is_finite() && gamma >= 0.0 {
        Ok(())
    } else {
        Err(ChannelError::InvalidGamma { gamma })
    }
}

fn check_coord(node: &'static str, p: (f64, f64)) -> Result<(), ChannelError> {
    if p.0.is_finite() && p.1.is_finite() {
        Ok(())
    } else {
        Err(ChannelError::InvalidCoordinate {
            node,
            x: p.0,
            y: p.1,
        })
    }
}

/// A relay on the segment between the two terminals.
///
/// `a` sits at 0, `b` at 1, the relay at `position ∈ (0, 1)`. With
/// exponent `gamma`, the gains are `G_ab = 1`, `G_ar = position^{-γ}`,
/// `G_br = (1-position)^{-γ}` — exactly the "interesting case"
/// `G_ab ≤ G_ar, G_br` of the paper for any interior relay position.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LineNetwork {
    position: f64,
    gamma: f64,
}

impl LineNetwork {
    /// Creates a line network with the relay at `position` and path-loss
    /// exponent `gamma`, validating both.
    ///
    /// # Errors
    ///
    /// [`ChannelError::InvalidPosition`] unless `position` is strictly
    /// inside `(0, 1)`; [`ChannelError::InvalidGamma`] unless `gamma` is
    /// finite and non-negative.
    pub fn try_new(position: f64, gamma: f64) -> Result<Self, ChannelError> {
        if !(position > 0.0 && position < 1.0) {
            return Err(ChannelError::InvalidPosition { position });
        }
        check_gamma(gamma)?;
        Ok(LineNetwork { position, gamma })
    }

    /// Panicking thin wrapper over [`LineNetwork::try_new`], kept for
    /// literal geometry in tests and examples where an invalid position
    /// is a bug at the call site.
    ///
    /// # Panics
    ///
    /// Panics if `position` is not strictly inside `(0, 1)` or `gamma` is
    /// negative or non-finite.
    pub fn new(position: f64, gamma: f64) -> Self {
        LineNetwork::try_new(position, gamma)
            .unwrap_or_else(|e| panic!("invalid line network: {e}"))
    }

    /// Relay position in `(0, 1)`.
    pub fn position(&self) -> f64 {
        self.position
    }

    /// Path-loss exponent.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// The path-loss channel state of this geometry, under the
    /// finite-gain contract.
    ///
    /// # Errors
    ///
    /// [`ChannelError::NonFiniteGain`] if the clamped power law still
    /// overflows (extreme `gamma`).
    pub fn try_channel_state(&self) -> Result<ChannelState, ChannelError> {
        Ok(ChannelState::new(
            1.0,
            checked_gain(self.position, self.gamma, "ar")?,
            checked_gain(1.0 - self.position, self.gamma, "br")?,
        ))
    }

    /// Panicking thin wrapper over [`LineNetwork::try_channel_state`].
    ///
    /// # Panics
    ///
    /// Panics if a gain overflows the clamped power law (extreme
    /// `gamma`).
    pub fn channel_state(&self) -> ChannelState {
        self.try_channel_state()
            .unwrap_or_else(|e| panic!("invalid line-network gains: {e}"))
    }
}

/// A fully general planar topology: explicit 2-D coordinates for the three
/// nodes. Gains are path-loss only (near-field clamped at [`D_MIN`]),
/// normalised so a unit-distance link has unit gain.
///
/// The fields stay public for literal construction in tests and
/// examples; [`PlanarNetwork::new`] is the validated path that rejects
/// non-finite coordinates and bad exponents up front, and
/// [`PlanarNetwork::try_channel_state`] re-validates before deriving
/// gains, so a field mutated to NaN after construction is still caught.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanarNetwork {
    /// Position of terminal `a`.
    pub a: (f64, f64),
    /// Position of terminal `b`.
    pub b: (f64, f64),
    /// Position of the relay.
    pub r: (f64, f64),
    /// Path-loss exponent.
    pub gamma: f64,
}

impl PlanarNetwork {
    /// Validated constructor: rejects non-finite coordinates and a
    /// negative or non-finite `gamma`.
    ///
    /// # Errors
    ///
    /// [`ChannelError::InvalidCoordinate`] or
    /// [`ChannelError::InvalidGamma`] on the first offending parameter.
    pub fn new(
        a: (f64, f64),
        b: (f64, f64),
        r: (f64, f64),
        gamma: f64,
    ) -> Result<Self, ChannelError> {
        check_coord("a", a)?;
        check_coord("b", b)?;
        check_coord("r", r)?;
        check_gamma(gamma)?;
        Ok(PlanarNetwork { a, b, r, gamma })
    }

    fn dist(p: (f64, f64), q: (f64, f64)) -> f64 {
        ((p.0 - q.0).powi(2) + (p.1 - q.1).powi(2)).sqrt()
    }

    /// The path-loss channel state of this geometry, under the
    /// finite-gain contract: coordinates and exponent are re-validated
    /// (the fields are public), distances are near-field clamped at
    /// [`D_MIN`], and a gain that still overflows is an error rather
    /// than a poisoned [`ChannelState`].
    ///
    /// # Errors
    ///
    /// [`ChannelError::InvalidCoordinate`] / [`ChannelError::InvalidGamma`]
    /// if a public field was set to an invalid value;
    /// [`ChannelError::NonFiniteGain`] if the clamped power law
    /// overflows (extreme `gamma`).
    pub fn try_channel_state(&self) -> Result<ChannelState, ChannelError> {
        check_coord("a", self.a)?;
        check_coord("b", self.b)?;
        check_coord("r", self.r)?;
        check_gamma(self.gamma)?;
        Ok(ChannelState::new(
            checked_gain(Self::dist(self.a, self.b), self.gamma, "ab")?,
            checked_gain(Self::dist(self.a, self.r), self.gamma, "ar")?,
            checked_gain(Self::dist(self.b, self.r), self.gamma, "br")?,
        ))
    }

    /// Panicking thin wrapper over
    /// [`PlanarNetwork::try_channel_state`], kept for literal geometry
    /// where invalid inputs are a bug at the call site. Co-located nodes
    /// no longer panic — their link saturates at the [`D_MIN`]
    /// near-field clamp.
    ///
    /// # Panics
    ///
    /// Panics if a field holds a non-finite coordinate or invalid
    /// exponent, or a gain overflows the clamped power law.
    pub fn channel_state(&self) -> ChannelState {
        self.try_channel_state()
            .unwrap_or_else(|e| panic!("invalid planar network: {e}"))
    }
}

/// Domain-separation tag of the relay placement streams, so relay `j`'s
/// position never collides with pair `j`'s stream under one master seed.
const RELAY_STREAM: u64 = 0x52_454C_4159;

/// A city-scale node layout: `K` terminal pairs and `n` candidate relays
/// on a disc, with one shared path-loss exponent.
///
/// Construct with [`Topology::random`] (uniform placement, deterministic
/// per seed via the workspace [`mix_seed`] stream discipline) or
/// [`Topology::grid`] (deterministic lattice). Every candidate edge
/// `(pair k, relay j)` yields a [`PlanarNetwork`] via [`Topology::edge`]
/// and a finite-gain [`ChannelState`] via [`Topology::try_edge_state`].
///
/// Placement streams are **prefix-stable**: pair `k` and relay `j` draw
/// from their own decorrelated child streams of the master seed, so
/// `Topology::random(seed, K, n + m, ..)` places its first `n` relays
/// exactly where `Topology::random(seed, K, n, ..)` does — the property
/// the "more relays ⇒ no worse" dominance tests lean on.
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    pairs: Vec<((f64, f64), (f64, f64))>,
    relays: Vec<(f64, f64)>,
    radius: f64,
    gamma: f64,
}

impl Topology {
    fn check_extent(
        pairs: usize,
        relays: usize,
        radius: f64,
        gamma: f64,
    ) -> Result<(), ChannelError> {
        if pairs == 0 {
            return Err(ChannelError::InvalidTopology {
                what: "need at least one terminal pair",
            });
        }
        if relays == 0 {
            return Err(ChannelError::InvalidTopology {
                what: "need at least one candidate relay",
            });
        }
        if !(radius.is_finite() && radius > 0.0) {
            return Err(ChannelError::InvalidTopology {
                what: "disc radius must be finite and positive",
            });
        }
        check_gamma(gamma)
    }

    /// Uniform-on-disc placement of `pairs` terminal pairs and `relays`
    /// candidate relays, deterministic per `seed`.
    ///
    /// Pair `k` draws its two terminals from the child stream
    /// `mix_seed(seed, k)`; relay `j` draws from the domain-separated
    /// stream `mix_seed(seed ^ RELAY_STREAM, j)` — so placements are
    /// reproducible node by node and prefix-stable in both counts.
    ///
    /// # Errors
    ///
    /// [`ChannelError::InvalidTopology`] for zero counts or a
    /// non-positive radius, [`ChannelError::InvalidGamma`] for a bad
    /// exponent.
    pub fn random(
        seed: u64,
        pairs: usize,
        relays: usize,
        radius: f64,
        gamma: f64,
    ) -> Result<Self, ChannelError> {
        Self::check_extent(pairs, relays, radius, gamma)?;
        let disc_point = |rng: &mut StdRng| {
            let r = radius * rng.gen::<f64>().sqrt();
            let theta = 2.0 * std::f64::consts::PI * rng.gen::<f64>();
            (r * theta.cos(), r * theta.sin())
        };
        let pairs = (0..pairs)
            .map(|k| {
                let mut rng = StdRng::seed_from_u64(mix_seed(seed, k as u64));
                (disc_point(&mut rng), disc_point(&mut rng))
            })
            .collect();
        let relays = (0..relays)
            .map(|j| {
                let mut rng = StdRng::seed_from_u64(mix_seed(seed ^ RELAY_STREAM, j as u64));
                disc_point(&mut rng)
            })
            .collect();
        Ok(Topology {
            pairs,
            relays,
            radius,
            gamma,
        })
    }

    /// Deterministic lattice placement: relays on a `⌈√n⌉ × ⌈√n⌉` grid
    /// over the disc's inscribed square (shrunk to 70% so pair terminals
    /// fit beside it), pair terminals `a_k` on their own lattice with
    /// `b_k` a fixed `radius / 5` to the east — the regular-deployment
    /// baseline the random study is compared against.
    ///
    /// # Errors
    ///
    /// Same contract as [`Topology::random`].
    pub fn grid(
        pairs: usize,
        relays: usize,
        radius: f64,
        gamma: f64,
    ) -> Result<Self, ChannelError> {
        Self::check_extent(pairs, relays, radius, gamma)?;
        let lattice = |count: usize| {
            let side = (count as f64).sqrt().ceil() as usize;
            let half = 0.7 * radius / std::f64::consts::SQRT_2;
            (0..count)
                .map(|i| {
                    let (row, col) = (i / side, i % side);
                    let step = if side > 1 {
                        2.0 * half / (side - 1) as f64
                    } else {
                        0.0
                    };
                    (-half + col as f64 * step, -half + row as f64 * step)
                })
                .collect::<Vec<_>>()
        };
        let offset = radius / 5.0;
        let pairs = lattice(pairs)
            .into_iter()
            .map(|a| (a, (a.0 + offset, a.1)))
            .collect();
        Ok(Topology {
            pairs,
            relays: lattice(relays),
            radius,
            gamma,
        })
    }

    /// Number of terminal pairs `K`.
    pub fn num_pairs(&self) -> usize {
        self.pairs.len()
    }

    /// Number of candidate relays `n`.
    pub fn num_relays(&self) -> usize {
        self.relays.len()
    }

    /// Disc radius of the placement.
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// Path-loss exponent shared by every link.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// Terminal coordinates `(a_k, b_k)` of pair `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn pair(&self, k: usize) -> ((f64, f64), (f64, f64)) {
        self.pairs[k]
    }

    /// Coordinates of relay `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn relay(&self, j: usize) -> (f64, f64) {
        self.relays[j]
    }

    /// The same topology restricted to its first `n` relays — the
    /// prefix restriction the "more relays ⇒ no worse" dominance tests
    /// compare against (see the type docs on prefix stability).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or exceeds the relay count.
    pub fn with_relays(&self, n: usize) -> Self {
        assert!(
            n >= 1 && n <= self.relays.len(),
            "relay prefix must be 1..={}, got {n}",
            self.relays.len()
        );
        Topology {
            pairs: self.pairs.clone(),
            relays: self.relays[..n].to_vec(),
            radius: self.radius,
            gamma: self.gamma,
        }
    }

    /// The candidate edge `(pair k, relay j)` as a three-node planar
    /// geometry.
    ///
    /// # Panics
    ///
    /// Panics if `k` or `j` is out of range.
    pub fn edge(&self, k: usize, j: usize) -> PlanarNetwork {
        let (a, b) = self.pairs[k];
        PlanarNetwork {
            a,
            b,
            r: self.relays[j],
            gamma: self.gamma,
        }
    }

    /// The finite-gain channel state of candidate edge `(k, j)` — the
    /// validated path every batch consumer goes through.
    ///
    /// # Errors
    ///
    /// [`ChannelError::NonFiniteGain`] if a clamped gain overflows
    /// (extreme `gamma`).
    ///
    /// # Panics
    ///
    /// Panics if `k` or `j` is out of range.
    pub fn try_edge_state(&self, k: usize, j: usize) -> Result<ChannelState, ChannelError> {
        self.edge(k, j).try_channel_state()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_num::approx_eq;

    #[test]
    fn midpoint_relay_is_symmetric() {
        let cs = LineNetwork::new(0.5, 3.0).channel_state();
        assert!(approx_eq(cs.gar(), cs.gbr(), 1e-12));
        assert!(approx_eq(cs.gar(), 8.0, 1e-12));
        assert!(approx_eq(cs.gab(), 1.0, 1e-12));
        assert!(cs.relay_advantaged());
    }

    #[test]
    fn relay_near_a_boosts_gar() {
        let cs = LineNetwork::new(0.1, 3.0).channel_state();
        assert!(cs.gar() > cs.gbr());
        assert!(approx_eq(cs.gar(), 1000.0, 1e-9));
        assert!(approx_eq(cs.gbr(), 0.9_f64.powf(-3.0), 1e-12));
    }

    #[test]
    fn any_interior_position_is_relay_advantaged() {
        for k in 1..20 {
            let cs = LineNetwork::new(k as f64 / 20.0, 2.7).channel_state();
            assert!(cs.relay_advantaged(), "position {}", k as f64 / 20.0);
        }
    }

    #[test]
    fn zero_gamma_makes_all_gains_unity() {
        let cs = LineNetwork::new(0.3, 0.0).channel_state();
        assert!(approx_eq(cs.gar(), 1.0, 1e-12));
        assert!(approx_eq(cs.gbr(), 1.0, 1e-12));
    }

    #[test]
    fn planar_reduces_to_line() {
        let line = LineNetwork::new(0.25, 3.0).channel_state();
        let planar = PlanarNetwork::new((0.0, 0.0), (1.0, 0.0), (0.25, 0.0), 3.0)
            .expect("valid geometry")
            .channel_state();
        assert!(approx_eq(line.gar(), planar.gar(), 1e-12));
        assert!(approx_eq(line.gbr(), planar.gbr(), 1e-12));
        assert!(approx_eq(line.gab(), planar.gab(), 1e-12));
    }

    #[test]
    fn offset_relay_weakens_links() {
        let at = |r| {
            PlanarNetwork::new((0.0, 0.0), (1.0, 0.0), r, 3.0)
                .expect("valid geometry")
                .channel_state()
        };
        let on_line = at((0.5, 0.0));
        let off_line = at((0.5, 0.5));
        assert!(off_line.gar() < on_line.gar());
        assert!(off_line.gbr() < on_line.gbr());
    }

    #[test]
    #[should_panic(expected = "in (0,1)")]
    fn boundary_position_rejected() {
        let _ = LineNetwork::new(1.0, 3.0);
    }

    #[test]
    fn try_new_surfaces_boundary_as_error() {
        assert_eq!(
            LineNetwork::try_new(1.0, 3.0),
            Err(ChannelError::InvalidPosition { position: 1.0 })
        );
        assert_eq!(
            LineNetwork::try_new(0.5, -1.0),
            Err(ChannelError::InvalidGamma { gamma: -1.0 })
        );
    }

    #[test]
    fn colocated_nodes_saturate_at_near_field_clamp() {
        // The headline bug: this used to overflow to +INF (and panic in
        // ChannelState::new). Now the link saturates at D_MIN^{-γ}.
        let net = PlanarNetwork::new((0.2, 0.2), (0.2, 0.2), (0.5, 0.5), 3.0).expect("valid");
        let cs = net.try_channel_state().expect("finite gains");
        assert!(cs.gab().is_finite());
        assert!(approx_eq(cs.gab(), D_MIN.powf(-3.0), 1e-9));
        // Near-but-not-co-located lands on the same saturated gain:
        let near = PlanarNetwork::new((0.2, 0.2), (0.2 + 1e-120, 0.2), (0.5, 0.5), 3.0)
            .expect("valid")
            .try_channel_state()
            .expect("finite gains");
        assert_eq!(near.gab(), cs.gab());
    }

    #[test]
    fn invalid_inputs_error_instead_of_poisoning() {
        assert!(matches!(
            PlanarNetwork::new((f64::NAN, 0.0), (1.0, 0.0), (0.5, 0.0), 3.0),
            Err(ChannelError::InvalidCoordinate { node: "a", .. })
        ));
        assert!(matches!(
            PlanarNetwork::new((0.0, 0.0), (1.0, 0.0), (0.5, 0.0), f64::INFINITY),
            Err(ChannelError::InvalidGamma { .. })
        ));
        // Public-field mutation after construction is caught on derive:
        let mut net = PlanarNetwork::new((0.0, 0.0), (1.0, 0.0), (0.5, 0.0), 3.0).expect("valid");
        net.b.1 = f64::NAN;
        assert!(matches!(
            net.try_channel_state(),
            Err(ChannelError::InvalidCoordinate { node: "b", .. })
        ));
        // An exponent extreme enough to overflow the clamped power law:
        let extreme = PlanarNetwork::new((0.0, 0.0), (1.0, 0.0), (0.0, 1e-9), 400.0).expect("ok");
        assert!(matches!(
            extreme.try_channel_state(),
            Err(ChannelError::NonFiniteGain { link: "ar", .. })
        ));
    }

    #[test]
    fn random_topology_is_deterministic_and_in_extent() {
        let t1 = Topology::random(0xC17, 32, 8, 5.0, 3.0).expect("valid");
        let t2 = Topology::random(0xC17, 32, 8, 5.0, 3.0).expect("valid");
        assert_eq!(t1, t2);
        assert_eq!(t1.num_pairs(), 32);
        assert_eq!(t1.num_relays(), 8);
        let inside = |p: (f64, f64)| (p.0 * p.0 + p.1 * p.1).sqrt() <= 5.0 + 1e-12;
        for k in 0..t1.num_pairs() {
            let (a, b) = t1.pair(k);
            assert!(inside(a) && inside(b));
        }
        for j in 0..t1.num_relays() {
            assert!(inside(t1.relay(j)));
        }
        // A different seed moves the nodes:
        assert_ne!(t1, Topology::random(0xC18, 32, 8, 5.0, 3.0).expect("ok"));
    }

    #[test]
    fn random_topology_is_prefix_stable() {
        let small = Topology::random(7, 16, 4, 2.0, 3.0).expect("valid");
        let large = Topology::random(7, 16, 9, 2.0, 3.0).expect("valid");
        assert_eq!(small, large.with_relays(4));
    }

    #[test]
    fn grid_topology_is_regular_and_valid() {
        let t = Topology::grid(9, 4, 1.0, 3.0).expect("valid");
        assert_eq!(t.num_pairs(), 9);
        assert_eq!(t.num_relays(), 4);
        // Lattice rows share y coordinates:
        assert_eq!(t.relay(0).1, t.relay(1).1);
        for k in 0..9 {
            for j in 0..4 {
                assert!(t.try_edge_state(k, j).is_ok());
            }
        }
    }

    #[test]
    fn topology_rejects_degenerate_extents() {
        assert!(matches!(
            Topology::random(1, 0, 4, 1.0, 3.0),
            Err(ChannelError::InvalidTopology { .. })
        ));
        assert!(matches!(
            Topology::random(1, 4, 0, 1.0, 3.0),
            Err(ChannelError::InvalidTopology { .. })
        ));
        assert!(matches!(
            Topology::grid(4, 4, -1.0, 3.0),
            Err(ChannelError::InvalidTopology { .. })
        ));
        assert!(matches!(
            Topology::grid(4, 4, 1.0, f64::NAN),
            Err(ChannelError::InvalidGamma { .. })
        ));
    }
}
