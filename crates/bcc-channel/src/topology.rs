//! Node geometry → path-loss channel gains.
//!
//! The paper motivates the bidirectional relay with a cellular picture
//! (`a` a mobile, `b` a base station, `r` a relay station) and evaluates
//! bounds for gains satisfying `G_ab ≤ G_ar, G_br`. The natural generator
//! of such gain triples is a **line network**: `a` at the origin, `b` at
//! unit distance, the relay at position `d ∈ (0,1)` between them, with
//! power-law path loss `G = dist^{-γ}` normalised so that `G_ab = 1`
//! (0 dB, the paper's Fig. 3/4 normalisation).

use crate::csi::ChannelState;

/// Free-space/power-law path loss `dist^{-gamma}` normalised to unit gain
/// at unit distance.
///
/// # Panics
///
/// Panics if `dist <= 0` or `gamma < 0`.
///
/// ```
/// let g = bcc_channel::topology::path_loss(0.5, 3.0);
/// assert!((g - 8.0).abs() < 1e-12);
/// ```
pub fn path_loss(dist: f64, gamma: f64) -> f64 {
    assert!(dist > 0.0, "distance must be positive, got {dist}");
    assert!(gamma >= 0.0, "path-loss exponent must be non-negative");
    dist.powf(-gamma)
}

/// A relay on the segment between the two terminals.
///
/// `a` sits at 0, `b` at 1, the relay at `position ∈ (0, 1)`. With
/// exponent `gamma`, the gains are `G_ab = 1`, `G_ar = position^{-γ}`,
/// `G_br = (1-position)^{-γ}` — exactly the "interesting case"
/// `G_ab ≤ G_ar, G_br` of the paper for any interior relay position.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LineNetwork {
    position: f64,
    gamma: f64,
}

impl LineNetwork {
    /// Creates a line network with the relay at `position` and path-loss
    /// exponent `gamma`.
    ///
    /// # Panics
    ///
    /// Panics if `position` is not strictly inside `(0, 1)` or `gamma < 0`.
    pub fn new(position: f64, gamma: f64) -> Self {
        assert!(
            position > 0.0 && position < 1.0,
            "relay position must be in (0,1), got {position}"
        );
        assert!(gamma >= 0.0, "path-loss exponent must be non-negative");
        LineNetwork { position, gamma }
    }

    /// Relay position in `(0, 1)`.
    pub fn position(&self) -> f64 {
        self.position
    }

    /// Path-loss exponent.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// The path-loss channel state of this geometry.
    pub fn channel_state(&self) -> ChannelState {
        ChannelState::new(
            1.0,
            path_loss(self.position, self.gamma),
            path_loss(1.0 - self.position, self.gamma),
        )
    }
}

/// A fully general planar topology: explicit 2-D coordinates for the three
/// nodes. Gains are path-loss only, normalised so a unit-distance link has
/// unit gain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanarNetwork {
    /// Position of terminal `a`.
    pub a: (f64, f64),
    /// Position of terminal `b`.
    pub b: (f64, f64),
    /// Position of the relay.
    pub r: (f64, f64),
    /// Path-loss exponent.
    pub gamma: f64,
}

impl PlanarNetwork {
    fn dist(p: (f64, f64), q: (f64, f64)) -> f64 {
        ((p.0 - q.0).powi(2) + (p.1 - q.1).powi(2)).sqrt()
    }

    /// The path-loss channel state of this geometry.
    ///
    /// # Panics
    ///
    /// Panics if any two nodes are co-located.
    pub fn channel_state(&self) -> ChannelState {
        ChannelState::new(
            path_loss(Self::dist(self.a, self.b), self.gamma),
            path_loss(Self::dist(self.a, self.r), self.gamma),
            path_loss(Self::dist(self.b, self.r), self.gamma),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_num::approx_eq;

    #[test]
    fn midpoint_relay_is_symmetric() {
        let cs = LineNetwork::new(0.5, 3.0).channel_state();
        assert!(approx_eq(cs.gar(), cs.gbr(), 1e-12));
        assert!(approx_eq(cs.gar(), 8.0, 1e-12));
        assert!(approx_eq(cs.gab(), 1.0, 1e-12));
        assert!(cs.relay_advantaged());
    }

    #[test]
    fn relay_near_a_boosts_gar() {
        let cs = LineNetwork::new(0.1, 3.0).channel_state();
        assert!(cs.gar() > cs.gbr());
        assert!(approx_eq(cs.gar(), 1000.0, 1e-9));
        assert!(approx_eq(cs.gbr(), 0.9_f64.powf(-3.0), 1e-12));
    }

    #[test]
    fn any_interior_position_is_relay_advantaged() {
        for k in 1..20 {
            let cs = LineNetwork::new(k as f64 / 20.0, 2.7).channel_state();
            assert!(cs.relay_advantaged(), "position {}", k as f64 / 20.0);
        }
    }

    #[test]
    fn zero_gamma_makes_all_gains_unity() {
        let cs = LineNetwork::new(0.3, 0.0).channel_state();
        assert!(approx_eq(cs.gar(), 1.0, 1e-12));
        assert!(approx_eq(cs.gbr(), 1.0, 1e-12));
    }

    #[test]
    fn planar_reduces_to_line() {
        let line = LineNetwork::new(0.25, 3.0).channel_state();
        let planar = PlanarNetwork {
            a: (0.0, 0.0),
            b: (1.0, 0.0),
            r: (0.25, 0.0),
            gamma: 3.0,
        }
        .channel_state();
        assert!(approx_eq(line.gar(), planar.gar(), 1e-12));
        assert!(approx_eq(line.gbr(), planar.gbr(), 1e-12));
        assert!(approx_eq(line.gab(), planar.gab(), 1e-12));
    }

    #[test]
    fn offset_relay_weakens_links() {
        let on_line = PlanarNetwork {
            a: (0.0, 0.0),
            b: (1.0, 0.0),
            r: (0.5, 0.0),
            gamma: 3.0,
        }
        .channel_state();
        let off_line = PlanarNetwork {
            a: (0.0, 0.0),
            b: (1.0, 0.0),
            r: (0.5, 0.5),
            gamma: 3.0,
        }
        .channel_state();
        assert!(off_line.gar() < on_line.gar());
        assert!(off_line.gbr() < on_line.gbr());
    }

    #[test]
    #[should_panic(expected = "in (0,1)")]
    fn boundary_position_rejected() {
        let _ = LineNetwork::new(1.0, 3.0);
    }
}
