//! Property-based tests of the channel substrate.

use bcc_channel::fading::FadingModel;
use bcc_channel::gain::LinkGain;
use bcc_channel::halfduplex::PhaseActivity;
use bcc_channel::topology::{path_loss, LineNetwork};
use bcc_channel::{ChannelState, NodeId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn channel_state_swap_involution(gab in 0.0f64..100.0, gar in 0.0f64..100.0, gbr in 0.0f64..100.0) {
        let cs = ChannelState::new(gab, gar, gbr);
        prop_assert_eq!(cs.swapped().swapped(), cs);
        prop_assert_eq!(cs.swapped().gab(), cs.gab());
    }

    #[test]
    fn links_reciprocal(gab in 0.0f64..10.0, gar in 0.0f64..10.0, gbr in 0.0f64..10.0) {
        let cs = ChannelState::new(gab, gar, gbr);
        use NodeId::*;
        for (i, j) in [(A, B), (A, R), (B, R)] {
            prop_assert_eq!(cs.link(i, j), cs.link(j, i));
        }
    }

    #[test]
    fn path_loss_monotone_in_distance(d1 in 0.01f64..10.0, d2 in 0.01f64..10.0, gamma in 0.5f64..5.0) {
        prop_assume!(d1 < d2);
        prop_assert!(path_loss(d1, gamma) > path_loss(d2, gamma));
    }

    #[test]
    fn line_network_always_relay_advantaged(d in 0.01f64..0.99, gamma in 0.0f64..5.0) {
        let cs = LineNetwork::new(d, gamma).channel_state();
        prop_assert!(cs.relay_advantaged());
        // Mirror symmetry of the line (relative tolerance — gains span
        // many orders of magnitude at extreme positions).
        let mirror = LineNetwork::new(1.0 - d, gamma).channel_state();
        prop_assert!(bcc_num::approx_eq(cs.gar(), mirror.gbr(), 1e-9));
    }

    #[test]
    fn gain_power_phase_consistent(power in 0.0f64..100.0, phase in -3.0f64..3.0) {
        let g = LinkGain::from_power(power, phase);
        prop_assert!((g.power() - power).abs() < 1e-9 * (1.0 + power));
        if power > 1e-9 {
            prop_assert!((g.phase() - phase).abs() < 1e-9);
        }
    }

    #[test]
    fn matched_filter_output_nonnegative_real(power in 0.01f64..100.0, phase in -3.0f64..3.0) {
        let g = LinkGain::from_power(power, phase);
        let y = g.apply(bcc_num::Complex64::ONE);
        let z = g.matched_filter(y);
        prop_assert!(z.im.abs() < 1e-9 * power.max(1.0));
        prop_assert!(z.re >= 0.0);
    }

    #[test]
    fn phase_activity_partition(transmitters in prop::sample::subsequence(
        vec![NodeId::A, NodeId::B, NodeId::R], 1..=3)
    ) {
        let p = PhaseActivity::new(&transmitters).unwrap();
        let listeners = p.listeners();
        // Transmitters and listeners partition the node set.
        prop_assert_eq!(p.transmitters().len() + listeners.len(), 3);
        for n in NodeId::ALL {
            prop_assert!(p.is_transmitting(n) != listeners.contains(&n));
            // Half-duplex: no node hears itself or hears while sending.
            prop_assert!(!p.can_hear(n, n));
            if p.is_transmitting(n) {
                for m in NodeId::ALL {
                    prop_assert!(!p.can_hear(n, m));
                }
            }
        }
    }

    #[test]
    fn fading_samples_nonnegative_power(seed in 0u64..1000, k in 0.0f64..20.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        for model in [FadingModel::None, FadingModel::Rayleigh, FadingModel::Rician { k }] {
            let p = model.sample_power(&mut rng);
            prop_assert!(p >= 0.0 && p.is_finite());
        }
    }

    #[test]
    fn faded_state_scales_linearly(
        gab in 0.01f64..10.0, f in 0.0f64..5.0,
    ) {
        let cs = ChannelState::new(gab, 1.0, 2.0).faded(f, 1.0, 1.0);
        prop_assert!((cs.gab() - gab * f).abs() < 1e-12);
        prop_assert_eq!(cs.gar(), 1.0);
    }
}
