//! Random binning for the TDBC relay (paper Theorem 3).
//!
//! In TDBC the terminals overhear each other, so the relay need not resend
//! full messages: it partitions each message set `S_a` into `⌊2^{nR_a'}⌋`
//! bins by *random assignment* (uniform, independent), and broadcasts only
//! `s_a(ŵ_a) ⊕ s_b(ŵ_b)`. Terminal `b` recovers `s_a(w_a)`, then finds the
//! unique message in that bin that is jointly typical with its overheard
//! phase-1 signal. [`BinPartition`] implements the partition; the list
//! decoding against side information lives in `bcc-sim`.

use rand::Rng;

/// A random partition of `{0, …, n_messages−1}` into `n_bins` bins.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinPartition {
    assignment: Vec<u32>,
    n_bins: u32,
}

impl BinPartition {
    /// Draws a uniform random partition.
    ///
    /// # Panics
    ///
    /// Panics if `n_messages == 0` or `n_bins == 0`.
    pub fn random<R: Rng + ?Sized>(n_messages: usize, n_bins: u32, rng: &mut R) -> Self {
        assert!(n_messages > 0, "need at least one message");
        assert!(n_bins > 0, "need at least one bin");
        BinPartition {
            assignment: (0..n_messages).map(|_| rng.gen_range(0..n_bins)).collect(),
            n_bins,
        }
    }

    /// Number of messages in the partitioned set.
    pub fn n_messages(&self) -> usize {
        self.assignment.len()
    }

    /// Number of bins.
    pub fn n_bins(&self) -> u32 {
        self.n_bins
    }

    /// The bin index `s(w)` of message `w`.
    ///
    /// # Panics
    ///
    /// Panics if `w` is out of range.
    pub fn bin_of(&self, w: usize) -> u32 {
        self.assignment[w]
    }

    /// All messages assigned to `bin` (the decoder's candidate list).
    pub fn bin_members(&self, bin: u32) -> Vec<usize> {
        self.assignment
            .iter()
            .enumerate()
            .filter(|(_, &b)| b == bin)
            .map(|(w, _)| w)
            .collect()
    }

    /// Decodes a message from its bin index and a side-information scorer:
    /// returns the candidate in `bin` maximising `score`, or `None` if the
    /// bin is empty. Ties resolve to the smallest index (an error event in
    /// the random-coding analysis).
    pub fn decode_with_score<F: Fn(usize) -> f64>(&self, bin: u32, score: F) -> Option<usize> {
        self.bin_members(bin).into_iter().max_by(|&x, &y| {
            score(x)
                .partial_cmp(&score(y))
                .expect("scores must not be NaN")
                // stable preference for smaller index on ties
                .then(y.cmp(&x))
        })
    }

    /// Expected bin size `n_messages / n_bins` — the list size the side
    /// information must disambiguate.
    pub fn expected_bin_size(&self) -> f64 {
        self.assignment.len() as f64 / self.n_bins as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn partition_covers_every_message() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = BinPartition::random(100, 8, &mut rng);
        let total: usize = (0..8).map(|b| p.bin_members(b).len()).sum();
        assert_eq!(total, 100);
        for w in 0..100 {
            assert!(p.bin_members(p.bin_of(w)).contains(&w));
        }
    }

    #[test]
    fn bins_are_roughly_balanced() {
        let mut rng = StdRng::seed_from_u64(2);
        let p = BinPartition::random(80_000, 8, &mut rng);
        let expected = p.expected_bin_size();
        for b in 0..8 {
            let size = p.bin_members(b).len() as f64;
            assert!(
                (size - expected).abs() < 0.05 * expected,
                "bin {b}: {size} vs expected {expected}"
            );
        }
    }

    #[test]
    fn decode_with_perfect_side_info() {
        let mut rng = StdRng::seed_from_u64(3);
        let p = BinPartition::random(64, 4, &mut rng);
        // Perfect side information: the scorer peaks at the true message.
        for truth in 0..64usize {
            let decoded = p
                .decode_with_score(p.bin_of(truth), |w| -((w as f64 - truth as f64).abs()))
                .expect("bin non-empty");
            assert_eq!(decoded, truth);
        }
    }

    #[test]
    fn decode_ambiguity_without_side_info() {
        // A constant scorer cannot distinguish within a bin, so decoding
        // only succeeds when the bin is a singleton — with many more bins
        // than messages, most bins are singletons (analogue of R' > H).
        let mut rng = StdRng::seed_from_u64(4);
        let p = BinPartition::random(16, 1024, &mut rng);
        let correct = (0..16usize)
            .filter(|&w| p.decode_with_score(p.bin_of(w), |_| 0.0) == Some(w))
            .count();
        assert!(correct >= 14, "only {correct}/16 decodable with 1024 bins");
    }

    #[test]
    fn empty_bin_returns_none() {
        let mut rng = StdRng::seed_from_u64(5);
        // 1 message into many bins: all but one bin empty.
        let p = BinPartition::random(1, 64, &mut rng);
        let occupied = p.bin_of(0);
        let empty = (0..64).find(|&b| b != occupied).expect("some empty bin");
        assert_eq!(p.decode_with_score(empty, |_| 1.0), None);
        assert_eq!(p.decode_with_score(occupied, |_| 1.0), Some(0));
    }
}
