//! Generic binary linear block codes.
//!
//! A `[n, k]` code is defined by a `k × n` generator matrix. Decoders:
//! brute-force maximum-likelihood (minimum Hamming distance) for small `k`,
//! and syndrome decoding when a parity-check matrix is available. These are
//! the workhorses of the symbol-level protocol simulation — the relay
//! XORs *codewords* (linearity makes the XOR of codewords a codeword of
//! the same code, which is what makes physical-layer network coding work).

use crate::gf2::{hamming_distance, xor_bits, BitMatrix};
use rand::Rng;

/// A binary linear block code `[n, k]` given by its generator matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinearCode {
    generator: BitMatrix,
}

impl LinearCode {
    /// Wraps a `k × n` generator matrix.
    ///
    /// # Panics
    ///
    /// Panics if the generator does not have full row rank (the encoder
    /// would not be injective).
    pub fn new(generator: BitMatrix) -> Self {
        assert_eq!(
            generator.rank(),
            generator.rows(),
            "generator must have full row rank"
        );
        LinearCode { generator }
    }

    /// A random `[n, k]` code (resamples until the generator has full row
    /// rank; for `n ≥ k` this takes O(1) attempts in expectation).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `k > n`.
    pub fn random<R: Rng + ?Sized>(n: usize, k: usize, rng: &mut R) -> Self {
        assert!(k > 0 && k <= n, "need 0 < k <= n, got k={k}, n={n}");
        loop {
            let g = BitMatrix::random(k, n, rng);
            if g.rank() == k {
                return LinearCode { generator: g };
            }
        }
    }

    /// Block length `n`.
    pub fn block_length(&self) -> usize {
        self.generator.cols()
    }

    /// Message length `k`.
    pub fn dimension(&self) -> usize {
        self.generator.rows()
    }

    /// Code rate `k/n`.
    pub fn rate(&self) -> f64 {
        self.dimension() as f64 / self.block_length() as f64
    }

    /// Encodes `k` message bits into an `n`-bit codeword.
    ///
    /// # Panics
    ///
    /// Panics if `message.len() != k`.
    pub fn encode(&self, message: &[u8]) -> Vec<u8> {
        assert_eq!(message.len(), self.dimension(), "message length mismatch");
        self.generator.transpose().mul_vec(message)
    }

    /// Brute-force maximum-likelihood decoding over a BSC: returns the
    /// message whose codeword is nearest (Hamming) to `received`, together
    /// with that distance. Complexity `O(2^k · n)` — fine for `k ≤ 16`.
    ///
    /// # Panics
    ///
    /// Panics if `received.len() != n` or `k > 24` (guard against
    /// accidentally exponential calls).
    pub fn decode_ml(&self, received: &[u8]) -> (Vec<u8>, usize) {
        assert_eq!(received.len(), self.block_length(), "length mismatch");
        let k = self.dimension();
        assert!(k <= 24, "ML decoding is exponential in k; got k={k}");
        let mut best_msg = vec![0u8; k];
        let mut best_dist = usize::MAX;
        for m in 0..(1u32 << k) {
            let msg: Vec<u8> = (0..k).map(|i| ((m >> i) & 1) as u8).collect();
            let cw = self.encode(&msg);
            let d = hamming_distance(&cw, received);
            if d < best_dist {
                best_dist = d;
                best_msg = msg;
                if d == 0 {
                    break;
                }
            }
        }
        (best_msg, best_dist)
    }

    /// The minimum distance of the code (brute force; `k ≤ 20`).
    ///
    /// # Panics
    ///
    /// Panics if `k > 20`.
    pub fn minimum_distance(&self) -> usize {
        let k = self.dimension();
        assert!(k <= 20, "minimum distance search is exponential in k");
        let mut best = usize::MAX;
        for m in 1..(1u32 << k) {
            let msg: Vec<u8> = (0..k).map(|i| ((m >> i) & 1) as u8).collect();
            let w = crate::gf2::weight(&self.encode(&msg));
            best = best.min(w);
        }
        best
    }

    /// XOR of two codewords — a codeword again (linearity), encoding the
    /// XOR of the messages. This is the relay's network-coding operation at
    /// the physical layer.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ from `n`.
    pub fn xor_codewords(&self, cw_a: &[u8], cw_b: &[u8]) -> Vec<u8> {
        assert_eq!(cw_a.len(), self.block_length(), "length mismatch");
        xor_bits(cw_a, cw_b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn test_code() -> LinearCode {
        // [6,3] code with identity prefix (systematic).
        LinearCode::new(BitMatrix::from_rows(&[
            &[1, 0, 0, 1, 1, 0],
            &[0, 1, 0, 0, 1, 1],
            &[0, 0, 1, 1, 0, 1],
        ]))
    }

    #[test]
    fn encode_is_linear() {
        let code = test_code();
        let a = [1, 0, 1];
        let b = [1, 1, 0];
        let ab = xor_bits(&a, &b);
        assert_eq!(
            code.encode(&ab),
            xor_bits(&code.encode(&a), &code.encode(&b))
        );
    }

    #[test]
    fn rate_and_dimensions() {
        let code = test_code();
        assert_eq!(code.block_length(), 6);
        assert_eq!(code.dimension(), 3);
        assert!((code.rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ml_decodes_clean_and_single_error() {
        let code = test_code();
        let msg = [1, 1, 0];
        let cw = code.encode(&msg);
        let (decoded, d) = code.decode_ml(&cw);
        assert_eq!(decoded, msg.to_vec());
        assert_eq!(d, 0);
        // This code has minimum distance 3 → corrects any single error.
        assert_eq!(code.minimum_distance(), 3);
        for pos in 0..6 {
            let mut noisy = cw.clone();
            noisy[pos] ^= 1;
            let (dec, d) = code.decode_ml(&noisy);
            assert_eq!(dec, msg.to_vec(), "error at position {pos}");
            assert_eq!(d, 1);
        }
    }

    #[test]
    fn xor_of_codewords_encodes_xor_of_messages() {
        let code = test_code();
        let wa = [1, 0, 1];
        let wb = [0, 1, 1];
        let relay_cw = code.xor_codewords(&code.encode(&wa), &code.encode(&wb));
        assert_eq!(relay_cw, code.encode(&xor_bits(&wa, &wb)));
        // Terminal a strips its own codeword to get b's.
        let recovered_b = xor_bits(&relay_cw, &code.encode(&wa));
        assert_eq!(recovered_b, code.encode(&wb));
    }

    #[test]
    fn random_codes_have_full_rank_and_roundtrip() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            let code = LinearCode::random(12, 5, &mut rng);
            assert_eq!(code.dimension(), 5);
            let msg: Vec<u8> = (0..5).map(|_| rng.gen_range(0..2u8)).collect();
            let (dec, d) = code.decode_ml(&code.encode(&msg));
            assert_eq!(dec, msg);
            assert_eq!(d, 0);
        }
    }

    #[test]
    #[should_panic(expected = "full row rank")]
    fn rank_deficient_generator_rejected() {
        let _ = LinearCode::new(BitMatrix::from_rows(&[&[1, 0], &[1, 0]]));
    }
}
