//! CRC-16/CCITT-FALSE error detection.
//!
//! The packet-level protocols assume per-slot success/failure feedback;
//! in a real system that feedback comes from an integrity check like this
//! one. The module implements the bitwise CRC-16 (polynomial `0x1021`,
//! initial value `0xFFFF`) and quantifies the one figure that matters for
//! the ARQ abstraction: the **undetected-error probability**, which the
//! tests measure against the `2^-16` folklore value.

/// CRC-16/CCITT-FALSE over a byte slice (poly `0x1021`, init `0xFFFF`,
/// no reflection, no final XOR).
///
/// ```
/// // The canonical check value for "123456789".
/// assert_eq!(bcc_coding::crc::crc16_ccitt(b"123456789"), 0x29B1);
/// ```
pub fn crc16_ccitt(data: &[u8]) -> u16 {
    let mut crc: u16 = 0xFFFF;
    for &byte in data {
        crc ^= (byte as u16) << 8;
        for _ in 0..8 {
            if crc & 0x8000 != 0 {
                crc = (crc << 1) ^ 0x1021;
            } else {
                crc <<= 1;
            }
        }
    }
    crc
}

/// Appends the CRC (big-endian) to a payload, producing a frame.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = payload.to_vec();
    let crc = crc16_ccitt(payload);
    out.push((crc >> 8) as u8);
    out.push((crc & 0xFF) as u8);
    out
}

/// Checks a frame produced by [`frame`]; returns the payload if the CRC
/// verifies, `None` otherwise (including frames shorter than the CRC).
pub fn check(framed: &[u8]) -> Option<&[u8]> {
    if framed.len() < 2 {
        return None;
    }
    let (payload, tail) = framed.split_at(framed.len() - 2);
    let expect = ((tail[0] as u16) << 8) | tail[1] as u16;
    if crc16_ccitt(payload) == expect {
        Some(payload)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn known_check_value() {
        assert_eq!(crc16_ccitt(b"123456789"), 0x29B1);
        assert_eq!(crc16_ccitt(b""), 0xFFFF);
    }

    #[test]
    fn frame_roundtrip() {
        let payload = b"bidirectional coded cooperation";
        let f = frame(payload);
        assert_eq!(check(&f), Some(payload.as_slice()));
        assert_eq!(f.len(), payload.len() + 2);
    }

    #[test]
    fn detects_every_single_bit_error() {
        let f = frame(b"relay");
        for byte in 0..f.len() {
            for bit in 0..8 {
                let mut corrupted = f.clone();
                corrupted[byte] ^= 1 << bit;
                assert_eq!(check(&corrupted), None, "missed flip at {byte}.{bit}");
            }
        }
    }

    #[test]
    fn detects_all_burst_errors_up_to_16_bits() {
        // CRC-16 guarantees detection of any burst ≤ 16 bits.
        let f = frame(&[0xAB; 24]);
        let total_bits = f.len() * 8;
        for start in 0..total_bits - 16 {
            let mut corrupted = f.clone();
            for b in start..start + 16 {
                corrupted[b / 8] ^= 1 << (b % 8);
            }
            assert_eq!(check(&corrupted), None, "missed burst at bit {start}");
        }
    }

    #[test]
    fn undetected_error_rate_near_two_to_minus_16() {
        // Random corruption (heavy, uncorrelated): the undetected-error
        // probability of a 16-bit CRC is ≈ 2^-16 ≈ 1.5e-5. With 3e5
        // trials we expect a handful of misses at most — assert an upper
        // bound an order of magnitude above the theory to keep the test
        // robust, plus a sanity lower bound of zero.
        let mut rng = StdRng::seed_from_u64(0xC0DE);
        let payload: Vec<u8> = (0..32).map(|_| rng.gen()).collect();
        let f = frame(&payload);
        let trials = 300_000;
        let mut undetected = 0u32;
        for _ in 0..trials {
            // Replace the frame with uniformly random bytes — the worst
            // case for detection.
            let corrupted: Vec<u8> = (0..f.len()).map(|_| rng.gen()).collect();
            if corrupted != f && check(&corrupted).is_some() {
                undetected += 1;
            }
        }
        let rate = undetected as f64 / trials as f64;
        assert!(
            rate < 1.5e-4,
            "undetected rate {rate} far above 2^-16 ≈ 1.53e-5"
        );
    }

    #[test]
    fn short_frames_rejected() {
        assert_eq!(check(&[]), None);
        assert_eq!(check(&[0x12]), None);
    }
}
