//! Dense linear algebra over GF(2).
//!
//! Bits are stored one per byte — at the block lengths used in this
//! workspace (n ≤ a few thousand) simplicity beats bit-packing, and the
//! representation keeps the row-reduction code readable.

use rand::Rng;
use std::fmt;

/// A dense matrix over GF(2).
///
/// ```
/// use bcc_coding::BitMatrix;
///
/// let m = BitMatrix::from_rows(&[&[1, 0, 1], &[0, 1, 1]]);
/// assert_eq!(m.rank(), 2);
/// assert_eq!(m.mul_vec(&[1, 1, 0]), vec![1, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitMatrix {
    rows: usize,
    cols: usize,
    data: Vec<u8>,
}

impl BitMatrix {
    /// Creates a zero matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        BitMatrix {
            rows,
            cols,
            data: vec![0; rows * cols],
        }
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = BitMatrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1);
        }
        m
    }

    /// Builds from rows of 0/1 values.
    ///
    /// # Panics
    ///
    /// Panics on empty/ragged input or entries other than 0/1.
    pub fn from_rows(rows: &[&[u8]]) -> Self {
        assert!(!rows.is_empty(), "need at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "need at least one column");
        assert!(rows.iter().all(|r| r.len() == cols), "ragged rows");
        let mut m = BitMatrix::zeros(rows.len(), cols);
        for (i, row) in rows.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                assert!(v <= 1, "entries must be bits, got {v}");
                m.set(i, j, v);
            }
        }
        m
    }

    /// A uniformly random matrix.
    pub fn random<R: Rng + ?Sized>(rows: usize, cols: usize, rng: &mut R) -> Self {
        let mut m = BitMatrix::zeros(rows, cols);
        for v in &mut m.data {
            *v = rng.gen_range(0..2u8);
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Entry `(r, c)`.
    pub fn get(&self, r: usize, c: usize) -> u8 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Sets entry `(r, c)` to `v` (0 or 1).
    pub fn set(&mut self, r: usize, c: usize, v: u8) {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        assert!(v <= 1, "entries must be bits");
        self.data[r * self.cols + c] = v;
    }

    /// A view of row `r`.
    pub fn row(&self, r: usize) -> &[u8] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix–vector product over GF(2).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn mul_vec(&self, x: &[u8]) -> Vec<u8> {
        assert_eq!(x.len(), self.cols, "dimension mismatch");
        (0..self.rows)
            .map(|r| {
                self.row(r)
                    .iter()
                    .zip(x)
                    .fold(0u8, |acc, (&a, &b)| acc ^ (a & b))
            })
            .collect()
    }

    /// Matrix product over GF(2).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn mul(&self, other: &BitMatrix) -> BitMatrix {
        assert_eq!(self.cols, other.rows, "dimension mismatch");
        let mut out = BitMatrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                if self.get(i, k) == 1 {
                    for j in 0..other.cols {
                        let v = out.get(i, j) ^ other.get(k, j);
                        out.set(i, j, v);
                    }
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> BitMatrix {
        let mut out = BitMatrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.set(j, i, self.get(i, j));
            }
        }
        out
    }

    /// Row-reduces in place to (non-canonical) row echelon form and returns
    /// the rank.
    pub fn row_reduce(&mut self) -> usize {
        let mut pivot_row = 0;
        for col in 0..self.cols {
            if pivot_row == self.rows {
                break;
            }
            // Find a pivot.
            let Some(r) = (pivot_row..self.rows).find(|&r| self.get(r, col) == 1) else {
                continue;
            };
            // Swap into place.
            if r != pivot_row {
                for j in 0..self.cols {
                    let tmp = self.get(r, j);
                    self.set(r, j, self.get(pivot_row, j));
                    self.set(pivot_row, j, tmp);
                }
            }
            // Eliminate everywhere else.
            for rr in 0..self.rows {
                if rr != pivot_row && self.get(rr, col) == 1 {
                    for j in 0..self.cols {
                        let v = self.get(rr, j) ^ self.get(pivot_row, j);
                        self.set(rr, j, v);
                    }
                }
            }
            pivot_row += 1;
        }
        pivot_row
    }

    /// Rank over GF(2).
    pub fn rank(&self) -> usize {
        self.clone().row_reduce()
    }

    /// Solves `A·x = b` over GF(2). Returns any solution, or `None` if the
    /// system is inconsistent.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != rows`.
    pub fn solve(&self, b: &[u8]) -> Option<Vec<u8>> {
        assert_eq!(b.len(), self.rows, "rhs length mismatch");
        // Augment and reduce.
        let mut aug = BitMatrix::zeros(self.rows, self.cols + 1);
        for (i, &bi) in b.iter().enumerate() {
            for j in 0..self.cols {
                aug.set(i, j, self.get(i, j));
            }
            aug.set(i, self.cols, bi);
        }
        aug.row_reduce();
        // Check consistency and back-substitute (free variables = 0).
        let mut x = vec![0u8; self.cols];
        for i in (0..self.rows).rev() {
            let lead = (0..self.cols).find(|&j| aug.get(i, j) == 1);
            match lead {
                None => {
                    if aug.get(i, self.cols) == 1 {
                        return None; // 0 = 1 row
                    }
                }
                Some(j) => {
                    let mut v = aug.get(i, self.cols);
                    for (jj, &xj) in x.iter().enumerate().skip(j + 1) {
                        v ^= aug.get(i, jj) & xj;
                    }
                    x[j] = v;
                }
            }
        }
        Some(x)
    }
}

/// XOR of two bit vectors.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn xor_bits(a: &[u8], b: &[u8]) -> Vec<u8> {
    assert_eq!(a.len(), b.len(), "length mismatch");
    a.iter().zip(b).map(|(&x, &y)| x ^ y).collect()
}

/// Hamming weight of a bit vector.
pub fn weight(bits: &[u8]) -> usize {
    bits.iter().filter(|&&b| b == 1).count()
}

/// Hamming distance between two bit vectors.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn hamming_distance(a: &[u8], b: &[u8]) -> usize {
    assert_eq!(a.len(), b.len(), "length mismatch");
    a.iter().zip(b).filter(|(&x, &y)| x != y).count()
}

impl fmt::Display for BitMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            for c in 0..self.cols {
                write!(f, "{}", self.get(r, c))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identity_properties() {
        let i = BitMatrix::identity(4);
        assert_eq!(i.rank(), 4);
        let m = BitMatrix::random(4, 4, &mut StdRng::seed_from_u64(1));
        assert_eq!(i.mul(&m), m);
        assert_eq!(m.mul(&i), m);
    }

    #[test]
    fn mul_vec_is_linear() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = BitMatrix::random(5, 8, &mut rng);
        let x: Vec<u8> = (0..8).map(|_| rng.gen_range(0..2u8)).collect();
        let y: Vec<u8> = (0..8).map(|_| rng.gen_range(0..2u8)).collect();
        let xy = xor_bits(&x, &y);
        assert_eq!(m.mul_vec(&xy), xor_bits(&m.mul_vec(&x), &m.mul_vec(&y)));
    }

    #[test]
    fn rank_of_dependent_rows() {
        let m = BitMatrix::from_rows(&[&[1, 0, 1], &[0, 1, 1], &[1, 1, 0]]);
        // Row 3 = row 1 + row 2.
        assert_eq!(m.rank(), 2);
    }

    #[test]
    fn solve_consistent_system() {
        let m = BitMatrix::from_rows(&[&[1, 1, 0], &[0, 1, 1]]);
        let b = [1, 0];
        let x = m.solve(&b).expect("consistent");
        assert_eq!(m.mul_vec(&x), b.to_vec());
    }

    #[test]
    fn solve_inconsistent_system() {
        let m = BitMatrix::from_rows(&[&[1, 1], &[1, 1]]);
        assert!(m.solve(&[1, 0]).is_none());
        assert!(m.solve(&[1, 1]).is_some());
    }

    #[test]
    fn solve_random_systems_roundtrip() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let m = BitMatrix::random(6, 6, &mut rng);
            let x: Vec<u8> = (0..6).map(|_| rng.gen_range(0..2u8)).collect();
            let b = m.mul_vec(&x);
            let x2 = m.solve(&b).expect("by construction consistent");
            assert_eq!(m.mul_vec(&x2), b, "solution must reproduce rhs");
        }
    }

    #[test]
    fn transpose_involution_and_rank_invariance() {
        let m = BitMatrix::random(4, 7, &mut StdRng::seed_from_u64(4));
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.rank(), m.transpose().rank());
    }

    #[test]
    fn weight_and_distance() {
        assert_eq!(weight(&[1, 0, 1, 1]), 3);
        assert_eq!(hamming_distance(&[1, 0, 1], &[0, 0, 1]), 1);
        assert_eq!(hamming_distance(&[1, 1], &[1, 1]), 0);
    }

    #[test]
    fn xor_is_self_inverse() {
        let a = [1, 0, 1, 0];
        let b = [1, 1, 0, 0];
        assert_eq!(xor_bits(&xor_bits(&a, &b), &b), a.to_vec());
    }

    #[test]
    #[should_panic(expected = "bits")]
    fn non_bit_entry_rejected() {
        let _ = BitMatrix::from_rows(&[&[2, 0]]);
    }
}
