//! The message group of the MABC relay (paper Section II-C).
//!
//! `w_a ∈ {0,…,⌊2^{nR_a}⌋−1}` and `w_b ∈ {0,…,⌊2^{nR_b}⌋−1}` are both
//! embedded in the additive group `L = ℤ_L` with
//! `L = max(⌊2^{nR_a}⌋, ⌊2^{nR_b}⌋)`. The relay transmits
//! `w_r = w_a ⊕ w_b` (addition mod `L`); terminal `a` knows `w_a` and so
//! can invert to `w_b`, and vice versa. Crucially the relay spends only
//! `log2(L) = n·max(R_a, R_b)` bits — not the sum — which is exactly where
//! network coding beats routing.

/// The additive group `ℤ_L` used for XOR-combining at the relay.
///
/// ```
/// use bcc_coding::MessageGroup;
///
/// let g = MessageGroup::for_message_counts(16, 11); // L = 16
/// let wr = g.combine(7, 10);
/// assert_eq!(g.recover_b(wr, 7), 10);   // a strips its own message
/// assert_eq!(g.recover_a(wr, 10), 7);   // b strips its own message
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MessageGroup {
    order: u64,
}

impl MessageGroup {
    /// Creates the group `ℤ_L` of the given order.
    ///
    /// # Panics
    ///
    /// Panics if `order == 0`.
    pub fn new(order: u64) -> Self {
        assert!(order > 0, "group order must be positive");
        MessageGroup { order }
    }

    /// The paper's construction: `L = max(|S_a|, |S_b|)` for message-set
    /// sizes `|S_a| = ⌊2^{nR_a}⌋`, `|S_b| = ⌊2^{nR_b}⌋`.
    ///
    /// # Panics
    ///
    /// Panics if either count is zero.
    pub fn for_message_counts(count_a: u64, count_b: u64) -> Self {
        assert!(count_a > 0 && count_b > 0, "message sets must be non-empty");
        MessageGroup::new(count_a.max(count_b))
    }

    /// The construction from block length and rates:
    /// `L = max(⌊2^{n·R_a}⌋, ⌊2^{n·R_b}⌋)` (counts clamped up to 1 so the
    /// group is well defined even at rate 0).
    ///
    /// # Panics
    ///
    /// Panics if a rate is negative or the counts overflow `u64`.
    pub fn for_rates(n: usize, ra: f64, rb: f64) -> Self {
        assert!(ra >= 0.0 && rb >= 0.0, "rates must be non-negative");
        let count = |r: f64| -> u64 {
            let bits = n as f64 * r;
            assert!(bits < 63.0, "message set too large for u64");
            (bits.exp2().floor() as u64).max(1)
        };
        MessageGroup::for_message_counts(count(ra), count(rb))
    }

    /// Group order `L`.
    pub fn order(&self) -> u64 {
        self.order
    }

    /// Relay combining `w_r = w_a ⊕ w_b` (addition mod `L`).
    ///
    /// # Panics
    ///
    /// Panics if either message is outside the group.
    pub fn combine(&self, wa: u64, wb: u64) -> u64 {
        assert!(wa < self.order && wb < self.order, "message outside group");
        (wa + wb) % self.order
    }

    /// Terminal `b` recovers `w_a = w_r ⊖ w_b` (it knows its own `w_b`).
    ///
    /// # Panics
    ///
    /// Panics if either argument is outside the group.
    pub fn recover_a(&self, wr: u64, wb: u64) -> u64 {
        assert!(wr < self.order && wb < self.order, "message outside group");
        (wr + self.order - wb) % self.order
    }

    /// Terminal `a` recovers `w_b = w_r ⊖ w_a`.
    ///
    /// # Panics
    ///
    /// Panics if either argument is outside the group.
    pub fn recover_b(&self, wr: u64, wa: u64) -> u64 {
        self.recover_a(wr, wa)
    }

    /// Bits the relay must convey per block: `log2(L)`.
    pub fn broadcast_bits(&self) -> f64 {
        (self.order as f64).log2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_pairs_small_group() {
        let g = MessageGroup::new(13);
        for wa in 0..13 {
            for wb in 0..13 {
                let wr = g.combine(wa, wb);
                assert_eq!(g.recover_a(wr, wb), wa);
                assert_eq!(g.recover_b(wr, wa), wb);
            }
        }
    }

    #[test]
    fn order_is_max_of_counts() {
        assert_eq!(MessageGroup::for_message_counts(8, 32).order(), 32);
        assert_eq!(MessageGroup::for_message_counts(32, 8).order(), 32);
        assert_eq!(MessageGroup::for_message_counts(1, 1).order(), 1);
    }

    #[test]
    fn for_rates_matches_paper_formula() {
        // n = 10, Ra = 0.5, Rb = 0.8 → L = max(2^5, 2^8) = 256.
        let g = MessageGroup::for_rates(10, 0.5, 0.8);
        assert_eq!(g.order(), 256);
        assert!((g.broadcast_bits() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn zero_rate_degenerates_to_trivial_group() {
        let g = MessageGroup::for_rates(100, 0.0, 0.0);
        assert_eq!(g.order(), 1);
        assert_eq!(g.combine(0, 0), 0);
    }

    #[test]
    fn network_coding_saves_vs_routing() {
        // Broadcast cost is max(Ra, Rb), routing cost would be Ra + Rb.
        let g = MessageGroup::for_rates(20, 0.4, 0.3);
        let routing_bits =
            (20.0 * 0.4f64).exp2().floor().log2() + (20.0 * 0.3f64).exp2().floor().log2();
        assert!(g.broadcast_bits() < routing_bits);
    }

    #[test]
    #[should_panic(expected = "outside group")]
    fn combine_checks_range() {
        let g = MessageGroup::new(4);
        let _ = g.combine(4, 0);
    }
}
