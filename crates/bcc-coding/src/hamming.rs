//! The `[7,4,3]` Hamming code with one-step syndrome decoding.
//!
//! Used by the symbol-level demo as a cheap single-error-correcting code
//! whose behaviour is fully understood — the BER waterfall it produces over
//! the simulated AWGN links is checked against the closed-form union bound
//! in the `bcc-sim` tests.

use crate::gf2::BitMatrix;

/// The systematic `[7,4,3]` Hamming code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hamming74 {
    generator: BitMatrix,
    parity: BitMatrix,
}

impl Default for Hamming74 {
    fn default() -> Self {
        Hamming74::new()
    }
}

impl Hamming74 {
    /// Constructs the code with generator `[I₄ | P]` and check `[Pᵀ | I₃]`.
    pub fn new() -> Self {
        let generator = BitMatrix::from_rows(&[
            &[1, 0, 0, 0, 1, 1, 0],
            &[0, 1, 0, 0, 1, 0, 1],
            &[0, 0, 1, 0, 0, 1, 1],
            &[0, 0, 0, 1, 1, 1, 1],
        ]);
        let parity = BitMatrix::from_rows(&[
            &[1, 1, 0, 1, 1, 0, 0],
            &[1, 0, 1, 1, 0, 1, 0],
            &[0, 1, 1, 1, 0, 0, 1],
        ]);
        Hamming74 { generator, parity }
    }

    /// Encodes 4 message bits into 7 coded bits.
    ///
    /// # Panics
    ///
    /// Panics if `message.len() != 4`.
    pub fn encode(&self, message: &[u8]) -> Vec<u8> {
        assert_eq!(message.len(), 4, "Hamming(7,4) takes 4 bits");
        self.generator.transpose().mul_vec(message)
    }

    /// Computes the 3-bit syndrome of a received word.
    ///
    /// # Panics
    ///
    /// Panics if `received.len() != 7`.
    pub fn syndrome(&self, received: &[u8]) -> Vec<u8> {
        assert_eq!(received.len(), 7, "Hamming(7,4) words have 7 bits");
        self.parity.mul_vec(received)
    }

    /// Corrects up to one bit error and returns the 4 decoded message bits.
    ///
    /// # Panics
    ///
    /// Panics if `received.len() != 7`.
    pub fn decode(&self, received: &[u8]) -> Vec<u8> {
        let syn = self.syndrome(received);
        let mut corrected = received.to_vec();
        if syn.contains(&1) {
            // The syndrome equals the parity-check column of the errored
            // position; find and flip it.
            for (pos, bit) in corrected.iter_mut().enumerate() {
                let col: Vec<u8> = (0..3).map(|r| self.parity.get(r, pos)).collect();
                if col == syn {
                    *bit ^= 1;
                    break;
                }
            }
        }
        corrected[..4].to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_and_parity_are_orthogonal() {
        let code = Hamming74::new();
        // H · Gᵀ = 0.
        for m in 0..16u8 {
            let msg: Vec<u8> = (0..4).map(|i| (m >> i) & 1).collect();
            let cw = code.encode(&msg);
            assert_eq!(
                code.syndrome(&cw),
                vec![0, 0, 0],
                "codeword {m} not in null space"
            );
        }
    }

    #[test]
    fn systematic_prefix() {
        let code = Hamming74::new();
        let msg = [1, 0, 1, 1];
        let cw = code.encode(&msg);
        assert_eq!(&cw[..4], &msg);
    }

    #[test]
    fn corrects_every_single_error() {
        let code = Hamming74::new();
        for m in 0..16u8 {
            let msg: Vec<u8> = (0..4).map(|i| (m >> i) & 1).collect();
            let cw = code.encode(&msg);
            for pos in 0..7 {
                let mut noisy = cw.clone();
                noisy[pos] ^= 1;
                assert_eq!(code.decode(&noisy), msg, "m={m}, error at {pos}");
            }
        }
    }

    #[test]
    fn double_errors_are_miscorrected() {
        // d_min = 3: two errors decode to a *wrong* codeword — verify the
        // decoder does not crash and returns some 4-bit message.
        let code = Hamming74::new();
        let cw = code.encode(&[0, 0, 0, 0]);
        let mut noisy = cw.clone();
        noisy[0] ^= 1;
        noisy[1] ^= 1;
        let decoded = code.decode(&noisy);
        assert_eq!(decoded.len(), 4);
        assert_ne!(decoded, vec![0, 0, 0, 0], "two errors exceed capability");
    }

    #[test]
    fn distinct_messages_distinct_codewords() {
        let code = Hamming74::new();
        let mut seen = std::collections::HashSet::new();
        for m in 0..16u8 {
            let msg: Vec<u8> = (0..4).map(|i| (m >> i) & 1).collect();
            assert!(seen.insert(code.encode(&msg)), "duplicate codeword");
        }
    }
}
