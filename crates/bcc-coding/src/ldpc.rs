//! Regular Gallager LDPC codes with bit-flipping decoding.
//!
//! The strong end of the validation code spectrum: a `(w_c, w_r)`-regular
//! parity-check matrix (every column participates in `w_c` checks, every
//! check covers `w_r` bits) decoded with Gallager's bit-flipping algorithm.
//! The point is not state-of-the-art performance but a code whose
//! throughput over the simulated links climbs visibly toward the
//! information-theoretic bounds as blocklength grows.

use crate::gf2::BitMatrix;
use rand::seq::SliceRandom;
use rand::Rng;

/// A regular LDPC code defined by its sparse parity-check matrix.
#[derive(Debug, Clone)]
pub struct LdpcCode {
    /// `m × n` parity-check matrix.
    parity: BitMatrix,
    /// For each check row, the participating bit positions.
    check_neighbors: Vec<Vec<usize>>,
    /// For each bit column, the covering check rows.
    bit_neighbors: Vec<Vec<usize>>,
}

impl LdpcCode {
    /// Builds a `(wc, wr)`-regular Gallager ensemble member with `n`
    /// variable nodes (requires `n·wc` divisible by `wr`; the number of
    /// checks is `m = n·wc/wr`).
    ///
    /// The construction permutes `wc` stacked "strips" of sockets, the
    /// classic Gallager construction. Duplicate edges are tolerated (they
    /// cancel over GF(2) and slightly reduce degrees).
    ///
    /// # Panics
    ///
    /// Panics if `n·wc` is not divisible by `wr` or any parameter is zero.
    pub fn gallager<R: Rng + ?Sized>(n: usize, wc: usize, wr: usize, rng: &mut R) -> Self {
        assert!(n > 0 && wc > 0 && wr > 0, "parameters must be positive");
        assert_eq!(n * wc % wr, 0, "n·wc must be divisible by wr");
        let m = n * wc / wr;
        let mut parity = BitMatrix::zeros(m, n);
        let checks_per_strip = m / wc;
        assert!(checks_per_strip > 0, "need at least one check per strip");
        for strip in 0..wc {
            // Permute the n sockets of this strip; socket s goes to check
            // strip·checks_per_strip + s / wr.
            let mut sockets: Vec<usize> = (0..n).collect();
            sockets.shuffle(rng);
            for (s, &bit) in sockets.iter().enumerate() {
                let check = strip * checks_per_strip + s / wr;
                if check < m {
                    // XOR semantics: a duplicate edge cancels.
                    let v = parity.get(check, bit) ^ 1;
                    parity.set(check, bit, v);
                }
            }
        }
        Self::from_parity(parity)
    }

    /// Wraps an explicit parity-check matrix.
    pub fn from_parity(parity: BitMatrix) -> Self {
        let m = parity.rows();
        let n = parity.cols();
        let mut check_neighbors = vec![Vec::new(); m];
        let mut bit_neighbors = vec![Vec::new(); n];
        for (r, row_neighbors) in check_neighbors.iter_mut().enumerate() {
            for (c, col_neighbors) in bit_neighbors.iter_mut().enumerate() {
                if parity.get(r, c) == 1 {
                    row_neighbors.push(c);
                    col_neighbors.push(r);
                }
            }
        }
        LdpcCode {
            parity,
            check_neighbors,
            bit_neighbors,
        }
    }

    /// Block length `n`.
    pub fn block_length(&self) -> usize {
        self.parity.cols()
    }

    /// Number of parity checks `m`.
    pub fn num_checks(&self) -> usize {
        self.parity.rows()
    }

    /// Design rate `1 − m/n` (actual rate can be slightly higher if checks
    /// are dependent).
    pub fn design_rate(&self) -> f64 {
        1.0 - self.num_checks() as f64 / self.block_length() as f64
    }

    /// `true` if `word` satisfies every parity check.
    pub fn is_codeword(&self, word: &[u8]) -> bool {
        self.parity.mul_vec(word).iter().all(|&s| s == 0)
    }

    /// Gallager bit-flipping decoding: repeatedly flip the bits involved in
    /// the most unsatisfied checks. Returns the corrected word and whether
    /// decoding converged to a codeword within `max_iters`.
    ///
    /// # Panics
    ///
    /// Panics if `received.len() != n`.
    pub fn decode_bit_flip(&self, received: &[u8], max_iters: usize) -> (Vec<u8>, bool) {
        assert_eq!(received.len(), self.block_length(), "length mismatch");
        let mut word = received.to_vec();
        for _ in 0..max_iters {
            let syndrome = self.parity.mul_vec(&word);
            if syndrome.iter().all(|&s| s == 0) {
                return (word, true);
            }
            // Count unsatisfied checks per bit.
            let mut unsat = vec![0usize; word.len()];
            for (check, &s) in syndrome.iter().enumerate() {
                if s == 1 {
                    for &bit in &self.check_neighbors[check] {
                        unsat[bit] += 1;
                    }
                }
            }
            // Flip all bits with the maximal violation count.
            let max = *unsat.iter().max().expect("non-empty");
            if max == 0 {
                break;
            }
            // Require a strict majority of a bit's checks to be unsatisfied
            // OR the bit to be among the worst offenders.
            for (bit, &u) in unsat.iter().enumerate() {
                if u == max && 2 * u > self.bit_neighbors[bit].len() {
                    word[bit] ^= 1;
                }
            }
            // If nothing crossed the majority threshold, flip the single
            // worst bit to avoid stalling.
            if self.parity.mul_vec(&word) == self.parity.mul_vec(received) && word == *received {
                if let Some(bit) = unsat
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, &u)| u)
                    .map(|(b, _)| b)
                {
                    word[bit] ^= 1;
                }
            }
        }
        let ok = self.is_codeword(&word);
        (word, ok)
    }

    /// The all-zero codeword (always valid for a linear code) — used with
    /// the standard all-zero-codeword simulation trick over symmetric
    /// channels.
    pub fn zero_codeword(&self) -> Vec<u8> {
        vec![0; self.block_length()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_code(seed: u64) -> LdpcCode {
        LdpcCode::gallager(120, 3, 6, &mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn construction_shapes() {
        let code = small_code(1);
        assert_eq!(code.block_length(), 120);
        assert_eq!(code.num_checks(), 60);
        assert!((code.design_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_word_is_codeword() {
        let code = small_code(2);
        assert!(code.is_codeword(&code.zero_codeword()));
    }

    #[test]
    fn decodes_few_errors_on_zero_codeword() {
        let code = small_code(3);
        let mut rng = StdRng::seed_from_u64(4);
        let mut successes = 0;
        let trials = 100;
        for _ in 0..trials {
            let mut word = code.zero_codeword();
            // Flip 3 random distinct bits (2.5% raw BER).
            for _ in 0..3 {
                let pos = rng.gen_range(0..word.len());
                word[pos] = 1;
            }
            let (decoded, ok) = code.decode_bit_flip(&word, 50);
            if ok && decoded == code.zero_codeword() {
                successes += 1;
            }
        }
        assert!(
            successes >= 85,
            "bit-flipping should fix 3 errors most of the time: {successes}/{trials}"
        );
    }

    #[test]
    fn fails_gracefully_under_heavy_noise() {
        let code = small_code(5);
        let mut rng = StdRng::seed_from_u64(6);
        // 30% of bits flipped: decoding should mostly fail but never panic.
        let mut word = code.zero_codeword();
        for b in word.iter_mut() {
            if rng.gen::<f64>() < 0.3 {
                *b = 1;
            }
        }
        let (decoded, _ok) = code.decode_bit_flip(&word, 30);
        assert_eq!(decoded.len(), code.block_length());
    }

    #[test]
    fn clean_codeword_converges_immediately() {
        let code = small_code(7);
        let (decoded, ok) = code.decode_bit_flip(&code.zero_codeword(), 1);
        assert!(ok);
        assert_eq!(decoded, code.zero_codeword());
    }

    #[test]
    fn degrees_are_near_regular() {
        let code = small_code(8);
        // Gallager construction: every bit in ~wc checks (duplicates may
        // cancel a few), every check covers ~wr bits.
        let avg_bit_degree: f64 = code
            .bit_neighbors
            .iter()
            .map(|v| v.len() as f64)
            .sum::<f64>()
            / code.block_length() as f64;
        assert!(
            (avg_bit_degree - 3.0).abs() < 0.3,
            "average bit degree {avg_bit_degree}"
        );
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn bad_socket_count_rejected() {
        let _ = LdpcCode::gallager(10, 3, 7, &mut StdRng::seed_from_u64(0));
    }
}
