//! Coding substrate for bidirectional coded cooperation.
//!
//! The "coded" in the paper's title is network coding at the relay: after
//! decoding both messages, the relay broadcasts a **single** codeword that
//! carries `w_a ⊕ w_b` (MABC, Theorem 2) or the XOR of *bin indices*
//! `s_a(w_a) ⊕ s_b(w_b)` (TDBC, Theorem 3), and each terminal resolves the
//! ambiguity with what it already knows. This crate implements those
//! mechanisms concretely so the simulators in `bcc-sim` can run the
//! protocols end to end:
//!
//! * [`gf2`] — dense GF(2) linear algebra (rank, solving, products).
//! * [`group`] — the additive message group `L = max(⌊2^{nR_a}⌋,
//!   ⌊2^{nR_b}⌋)` with XOR-combining and per-terminal recovery.
//! * [`binning`] — random binning `s_a(·), s_b(·)` for rate-asymmetric
//!   relaying with side information.
//! * [`block`] — generic binary linear block codes with brute-force ML and
//!   syndrome decoding.
//! * [`hamming`] — the `[7,4,3]` Hamming code (syndrome decoder).
//! * [`repetition`] — repetition codes with majority decoding.
//! * [`ldpc`] — regular Gallager LDPC codes with bit-flipping decoding,
//!   used for the waterfall validation experiment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binning;
pub mod block;
pub mod crc;
pub mod gf2;
pub mod group;
pub mod hamming;
pub mod ldpc;
pub mod repetition;

pub use gf2::BitMatrix;
pub use group::MessageGroup;
