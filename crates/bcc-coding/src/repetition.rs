//! Repetition codes with majority decoding.
//!
//! The simplest rate-`1/n` code — used in the validation experiments as
//! the "cheap and weak" end of the code spectrum, to show that operating a
//! protocol *further below* its information-theoretic bound buys
//! reliability.

/// A rate-`1/n` repetition code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepetitionCode {
    n: usize,
}

impl RepetitionCode {
    /// Creates a repetition code that sends each bit `n` times.
    ///
    /// # Panics
    ///
    /// Panics if `n` is even or zero (majority decoding needs an odd count).
    pub fn new(n: usize) -> Self {
        assert!(n % 2 == 1, "repetition factor must be odd, got {n}");
        RepetitionCode { n }
    }

    /// Repetition factor.
    pub fn factor(&self) -> usize {
        self.n
    }

    /// Code rate `1/n`.
    pub fn rate(&self) -> f64 {
        1.0 / self.n as f64
    }

    /// Encodes a bit string by repeating each bit `n` times.
    pub fn encode(&self, bits: &[u8]) -> Vec<u8> {
        bits.iter()
            .flat_map(|&b| std::iter::repeat_n(b, self.n))
            .collect()
    }

    /// Majority-decodes a received string.
    ///
    /// # Panics
    ///
    /// Panics if the length is not a multiple of the repetition factor.
    pub fn decode(&self, received: &[u8]) -> Vec<u8> {
        assert_eq!(
            received.len() % self.n,
            0,
            "received length {} not a multiple of {}",
            received.len(),
            self.n
        );
        received
            .chunks(self.n)
            .map(|chunk| {
                let ones = chunk.iter().filter(|&&b| b == 1).count();
                u8::from(ones * 2 > self.n)
            })
            .collect()
    }

    /// Exact block error probability of one bit over a BSC(p): the
    /// probability that more than `n/2` of the `n` repetitions flip.
    pub fn bit_error_probability(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "crossover out of range");
        let n = self.n;
        let mut total = 0.0;
        for k in (n / 2 + 1)..=n {
            total += binomial(n, k) * p.powi(k as i32) * (1.0 - p).powi((n - k) as i32);
        }
        total
    }
}

fn binomial(n: usize, k: usize) -> f64 {
    let mut v = 1.0;
    for i in 0..k {
        v *= (n - i) as f64 / (i + 1) as f64;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn roundtrip_noiseless() {
        let code = RepetitionCode::new(3);
        let bits = [1, 0, 0, 1, 1];
        assert_eq!(code.decode(&code.encode(&bits)), bits.to_vec());
        assert_eq!(code.encode(&bits).len(), 15);
    }

    #[test]
    fn corrects_minority_flips() {
        let code = RepetitionCode::new(5);
        let cw = code.encode(&[1]);
        let mut noisy = cw.clone();
        noisy[0] ^= 1;
        noisy[3] ^= 1; // two of five flipped: still decodes to 1
        assert_eq!(code.decode(&noisy), vec![1]);
        noisy[4] ^= 1; // three of five: flips the decision
        assert_eq!(code.decode(&noisy), vec![0]);
    }

    #[test]
    fn analytic_ber_matches_simulation() {
        let code = RepetitionCode::new(3);
        let p = 0.2;
        let expected = code.bit_error_probability(p);
        // Closed form: 3p²(1-p) + p³ = 0.104.
        assert!((expected - (3.0 * p * p * (1.0 - p) + p * p * p)).abs() < 1e-12);
        let mut rng = StdRng::seed_from_u64(11);
        let trials = 200_000;
        let mut errors = 0;
        for _ in 0..trials {
            let cw = code.encode(&[0]);
            let noisy: Vec<u8> = cw
                .iter()
                .map(|&b| if rng.gen::<f64>() < p { b ^ 1 } else { b })
                .collect();
            if code.decode(&noisy)[0] != 0 {
                errors += 1;
            }
        }
        let observed = errors as f64 / trials as f64;
        assert!(
            (observed - expected).abs() < 0.005,
            "observed {observed} vs analytic {expected}"
        );
    }

    #[test]
    fn longer_codes_are_stronger() {
        let p = 0.1;
        let e3 = RepetitionCode::new(3).bit_error_probability(p);
        let e5 = RepetitionCode::new(5).bit_error_probability(p);
        let e9 = RepetitionCode::new(9).bit_error_probability(p);
        assert!(e3 > e5 && e5 > e9);
        // Closed form at p = 0.1: e9 = Σ_{k≥5} C(9,k) p^k (1-p)^{9-k} ≈ 8.9e-4.
        assert!((e9 - 8.9092e-4).abs() < 1e-6, "e9 = {e9}");
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_factor_rejected() {
        let _ = RepetitionCode::new(4);
    }
}
