//! Property-based tests of the coding substrate.

use bcc_coding::binning::BinPartition;
use bcc_coding::block::LinearCode;
use bcc_coding::gf2::{hamming_distance, weight, xor_bits, BitMatrix};
use bcc_coding::group::MessageGroup;
use bcc_coding::hamming::Hamming74;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bits(n: usize) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u8..2, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn group_roundtrip(order in 1u64..10_000, wa_raw in 0u64..10_000, wb_raw in 0u64..10_000) {
        let g = MessageGroup::new(order);
        let wa = wa_raw % order;
        let wb = wb_raw % order;
        let wr = g.combine(wa, wb);
        prop_assert_eq!(g.recover_a(wr, wb), wa);
        prop_assert_eq!(g.recover_b(wr, wa), wb);
    }

    #[test]
    fn group_combine_is_commutative(order in 1u64..1000, a in 0u64..1000, b in 0u64..1000) {
        let g = MessageGroup::new(order);
        prop_assert_eq!(g.combine(a % order, b % order), g.combine(b % order, a % order));
    }

    #[test]
    fn xor_involution(a in bits(16), b in bits(16)) {
        prop_assert_eq!(xor_bits(&xor_bits(&a, &b), &b), a.clone());
        // Triangle-ish identities for Hamming metrics.
        prop_assert_eq!(hamming_distance(&a, &b), weight(&xor_bits(&a, &b)));
    }

    #[test]
    fn hamming74_corrects_any_single_error(msg in bits(4), pos in 0usize..7) {
        let code = Hamming74::new();
        let mut cw = code.encode(&msg);
        cw[pos] ^= 1;
        prop_assert_eq!(code.decode(&cw), msg);
    }

    #[test]
    fn random_code_encode_decode_clean(seed in 0u64..1000, msg in bits(5)) {
        let mut rng = StdRng::seed_from_u64(seed);
        let code = LinearCode::random(12, 5, &mut rng);
        let (decoded, dist) = code.decode_ml(&code.encode(&msg));
        prop_assert_eq!(decoded, msg);
        prop_assert_eq!(dist, 0);
    }

    #[test]
    fn linearity_of_random_codes(seed in 0u64..500, a in bits(4), b in bits(4)) {
        let mut rng = StdRng::seed_from_u64(seed);
        let code = LinearCode::random(10, 4, &mut rng);
        let sum_then_encode = code.encode(&xor_bits(&a, &b));
        let encode_then_sum = xor_bits(&code.encode(&a), &code.encode(&b));
        prop_assert_eq!(sum_then_encode, encode_then_sum);
    }

    #[test]
    fn bitmatrix_rank_bounds(seed in 0u64..1000, rows in 1usize..8, cols in 1usize..8) {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = BitMatrix::random(rows, cols, &mut rng);
        let r = m.rank();
        prop_assert!(r <= rows.min(cols));
        // Rank invariance under transpose.
        prop_assert_eq!(r, m.transpose().rank());
    }

    #[test]
    fn solve_returns_actual_solutions(seed in 0u64..1000, n in 2usize..7) {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = BitMatrix::random(n, n, &mut rng);
        let x: Vec<u8> = (0..n).map(|i| ((seed >> i) & 1) as u8).collect();
        let b = m.mul_vec(&x);
        // The system is consistent by construction; any returned solution
        // must reproduce b.
        let sol = m.solve(&b).expect("consistent by construction");
        prop_assert_eq!(m.mul_vec(&sol), b);
    }

    #[test]
    fn binning_covers_and_respects_assignment(
        seed in 0u64..1000,
        n_msgs in 1usize..200,
        n_bins in 1u32..64,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = BinPartition::random(n_msgs, n_bins, &mut rng);
        let total: usize = (0..n_bins).map(|b| p.bin_members(b).len()).sum();
        prop_assert_eq!(total, n_msgs);
        for w in 0..n_msgs {
            prop_assert!(p.bin_members(p.bin_of(w)).contains(&w));
        }
    }

    #[test]
    fn codeword_xor_matches_message_xor(seed in 0u64..500, wa in bits(4), wb in bits(4)) {
        // The physical-layer network-coding identity used by the relay.
        let mut rng = StdRng::seed_from_u64(seed);
        let code = LinearCode::random(9, 4, &mut rng);
        let relay = code.xor_codewords(&code.encode(&wa), &code.encode(&wb));
        prop_assert_eq!(relay, code.encode(&xor_bits(&wa, &wb)));
    }
}
