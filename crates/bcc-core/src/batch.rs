//! Structure-of-arrays batch kernels: SIMD-ready lanes for the sweep hot
//! path.
//!
//! # Why batches
//!
//! The closed-form solve kernels ([`crate::kernel`]) are tens of flops
//! per point, but evaluated one point at a time they leave 2–8-wide
//! `f64` vector units idle and pay a data-dependent branch per candidate.
//! This module restates the hot queries over a [`PointBlock`] — a
//! structure-of-arrays block of operating points with contiguous lanes
//! for powers, gains and the seven [`LinkCaps`] capacities — and runs the
//! enumeration as **branch-free straight-line lane code** (masked
//! selects instead of data-dependent branches) that the autovectorizer
//! can chew on. With the `simd` feature the same lane bodies are
//! compiled a second time inside `#[target_feature(enable = "avx2")]`
//! wrappers and dispatched by runtime CPU detection, widening every lane
//! op to 4×`f64` without hand-written intrinsics.
//!
//! # Lane layout and the tail
//!
//! Blocks are processed in fixed chunks of [`LANE`] points; a block
//! whose length is not a multiple of `LANE` finishes with a scalar tail
//! that instantiates the *same* generic lane body at width 1. Every
//! candidate in the enumeration is evaluated for every lane and the
//! running best is updated by masked select, so the per-lane operation
//! sequence is identical at any width.
//!
//! # Determinism and the ULP contract
//!
//! There is no ULP gap to document: batched results are **bit-identical**
//! to the scalar kernel by construction. The scalar entry points in
//! [`crate::kernel`] call the width-1 instantiation of the exact same
//! generic lane functions, every lane op is an exact IEEE-754 operation
//! (`mul`/`add`/`min`/`max`/`div` — no FMA contraction, no horizontal
//! reductions), and lanes never interact. The AVX2 path performs the
//! same lanewise operations and is therefore also bit-identical; the
//! oracle proptests (`kernel_oracle.rs`) and the batch differential
//! suite (`bcc/tests/batch_differential.rs`) enforce this.
//!
//! # Counters
//!
//! [`stats`] mirrors [`bcc_lp::stats`]: relaxed process-wide atomics
//! plus race-free thread-local twins, counting points solved through
//! block kernels and how many of them ran in full-`LANE` chunks.

use crate::bounds::LinkCaps;
use crate::constraint::PhaseVec;
use crate::gaussian::{GaussianNetwork, SumRateSolution};
use crate::optimizer::SchedulePoint;
use crate::protocol::Protocol;
use bcc_channel::{ChannelState, PowerSplit};
use bcc_info::awgn_capacity;
use bcc_info::gaussian::mac_sum_capacity;

/// Lane width of the batched kernels: points per vector chunk.
///
/// Four `f64` lanes fill one AVX2 register; narrower targets simply
/// unroll, and the scalar tail instantiates the same code at width 1.
pub const LANE: usize = 4;

/// Default points per [`PointBlock`] when a caller does not override it
/// (see `Scenario::block_size`): large enough to amortise per-block
/// bookkeeping to well under 0.01 allocations per point, small enough
/// to stay cache-resident (13 lanes × 1024 × 8 B ≈ 104 KiB).
pub const DEFAULT_BLOCK: usize = 1024;

/// Batched-kernel hit counters (the [`bcc_lp::stats`] pattern: relaxed
/// process-wide atomics plus race-free thread-local twins).
pub mod stats {
    use std::cell::Cell;
    use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

    static BATCHED_POINTS: AtomicU64 = AtomicU64::new(0);
    static LANES_FILLED: AtomicU64 = AtomicU64::new(0);

    thread_local! {
        static BATCHED_POINTS_LOCAL: Cell<u64> = const { Cell::new(0) };
        static LANES_FILLED_LOCAL: Cell<u64> = const { Cell::new(0) };
    }

    /// Process-wide count of points solved through a block kernel.
    pub fn batched_points() -> u64 {
        BATCHED_POINTS.load(Relaxed)
    }

    /// Process-wide count of batched points that ran inside a full
    /// [`LANE`](super::LANE)-wide chunk (the vectorised share; the
    /// remainder went through the width-1 scalar tail).
    pub fn lanes_filled() -> u64 {
        LANES_FILLED.load(Relaxed)
    }

    /// Calling-thread twin of [`batched_points`] (race-free; see
    /// [`crate::kernel::kernel_hits_local`] for the capture caveats).
    pub fn batched_points_local() -> u64 {
        BATCHED_POINTS_LOCAL.with(Cell::get)
    }

    /// Calling-thread twin of [`lanes_filled`].
    pub fn lanes_filled_local() -> u64 {
        LANES_FILLED_LOCAL.with(Cell::get)
    }

    /// Records one block solve of `points` points, `filled` of which ran
    /// in full-width chunks.
    pub(super) fn record(points: u64, filled: u64) {
        BATCHED_POINTS.fetch_add(points, Relaxed);
        LANES_FILLED.fetch_add(filled, Relaxed);
        BATCHED_POINTS_LOCAL.with(|c| c.set(c.get() + points));
        LANES_FILLED_LOCAL.with(|c| c.set(c.get() + filled));
    }
}

/// A structure-of-arrays block of operating points: contiguous lanes for
/// the three transmit powers, the three channel gains and — after
/// [`PointBlock::compute_caps`] — the seven [`LinkCaps`] capacities.
///
/// Blocks are plain buffers: build one with [`PointBlock::with_capacity`],
/// [`push`](PointBlock::push) points into it (or whole networks with
/// [`push_net`](PointBlock::push_net)), compute the capacity lanes once,
/// and hand it to the block kernels ([`max_sum_rate_block`],
/// [`max_min_rate_block`]) or to `SolveCtx::solve_block`.
/// [`clear`](PointBlock::clear) keeps the lane storage, so a per-worker
/// block allocates only while growing to its high-water mark.
///
/// The capacity lanes use exactly the expressions of
/// [`LinkCaps::compute`], so block-computed and scalar-computed
/// capacities are bit-identical.
#[derive(Debug, Clone, Default)]
pub struct PointBlock {
    pa: Vec<f64>,
    pb: Vec<f64>,
    pr: Vec<f64>,
    gab: Vec<f64>,
    gar: Vec<f64>,
    gbr: Vec<f64>,
    c_a_ab: Vec<f64>,
    c_b_ab: Vec<f64>,
    c_a_ar: Vec<f64>,
    c_b_br: Vec<f64>,
    c_r_ar: Vec<f64>,
    c_r_br: Vec<f64>,
    c_mac: Vec<f64>,
    caps_ready: bool,
}

impl PointBlock {
    /// Creates an empty block.
    pub fn new() -> Self {
        PointBlock::default()
    }

    /// Creates an empty block with lane storage for `n` points.
    pub fn with_capacity(n: usize) -> Self {
        let mut b = PointBlock::default();
        b.reserve(n);
        b
    }

    /// Reserves lane storage for `n` additional points.
    pub fn reserve(&mut self, n: usize) {
        for v in [
            &mut self.pa,
            &mut self.pb,
            &mut self.pr,
            &mut self.gab,
            &mut self.gar,
            &mut self.gbr,
        ] {
            v.reserve(n);
        }
    }

    /// Number of points staged in the block.
    pub fn len(&self) -> usize {
        self.pa.len()
    }

    /// Whether the block holds no points.
    pub fn is_empty(&self) -> bool {
        self.pa.is_empty()
    }

    /// Removes all points, keeping the lane storage.
    pub fn clear(&mut self) {
        self.pa.clear();
        self.pb.clear();
        self.pr.clear();
        self.gab.clear();
        self.gar.clear();
        self.gbr.clear();
        self.caps_ready = false;
    }

    /// Stages one operating point.
    pub fn push(&mut self, powers: &PowerSplit, state: &ChannelState) {
        self.pa.push(powers.p_a());
        self.pb.push(powers.p_b());
        self.pr.push(powers.p_r());
        self.gab.push(state.gab());
        self.gar.push(state.gar());
        self.gbr.push(state.gbr());
        self.caps_ready = false;
    }

    /// Stages one network (its power split and channel state).
    pub fn push_net(&mut self, net: &GaussianNetwork) {
        self.push(&net.powers(), &net.state());
    }

    /// Evaluates the seven capacity lanes for every staged point —
    /// lanewise products with one scalar `log2` per capacity, using
    /// exactly the expressions of [`LinkCaps::compute`] (bit-identical
    /// to the scalar path).
    pub fn compute_caps(&mut self) {
        let n = self.len();
        self.c_a_ab.clear();
        self.c_b_ab.clear();
        self.c_a_ar.clear();
        self.c_b_br.clear();
        self.c_r_ar.clear();
        self.c_r_br.clear();
        self.c_mac.clear();
        for i in 0..n {
            let snr_ar = self.pa[i] * self.gar[i];
            let snr_br = self.pb[i] * self.gbr[i];
            self.c_a_ab.push(awgn_capacity(self.pa[i] * self.gab[i]));
            self.c_b_ab.push(awgn_capacity(self.pb[i] * self.gab[i]));
            self.c_a_ar.push(awgn_capacity(snr_ar));
            self.c_b_br.push(awgn_capacity(snr_br));
            self.c_r_ar.push(awgn_capacity(self.pr[i] * self.gar[i]));
            self.c_r_br.push(awgn_capacity(self.pr[i] * self.gbr[i]));
            self.c_mac.push(mac_sum_capacity(snr_ar, snr_br));
        }
        self.caps_ready = true;
    }

    /// Whether [`PointBlock::compute_caps`] has run since the last push.
    pub fn caps_ready(&self) -> bool {
        self.caps_ready
    }

    /// The capacity bundle of point `i` (requires
    /// [`PointBlock::compute_caps`]).
    ///
    /// # Panics
    ///
    /// Panics if the capacity lanes are stale or `i` is out of range.
    pub fn caps(&self, i: usize) -> LinkCaps {
        assert!(self.caps_ready, "PointBlock::compute_caps has not run");
        LinkCaps {
            c_a_ab: self.c_a_ab[i],
            c_b_ab: self.c_b_ab[i],
            c_a_ar: self.c_a_ar[i],
            c_b_br: self.c_b_br[i],
            c_r_ar: self.c_r_ar[i],
            c_r_br: self.c_r_br[i],
            c_mac: self.c_mac[i],
        }
    }

    /// Reconstructs the network of point `i` (for scalar fallbacks —
    /// outer bounds, QoS floors — that need the full network).
    pub fn net(&self, i: usize) -> GaussianNetwork {
        GaussianNetwork::with_powers(
            PowerSplit::new(self.pa[i], self.pb[i], self.pr[i]),
            ChannelState::new(self.gab[i], self.gar[i], self.gbr[i]),
        )
    }
}

/// Branchless scalar select (compiles to `cmov`/vector blend; keeps the
/// lane bodies free of data-dependent branches).
#[inline(always)]
fn sel(m: bool, t: f64, f: f64) -> f64 {
    if m {
        t
    } else {
        f
    }
}

/// Copies `M` consecutive lane values starting at `i`.
#[inline(always)]
fn gather<const M: usize>(v: &[f64], i: usize) -> [f64; M] {
    let mut a = [0.0; M];
    a.copy_from_slice(&v[i..i + M]);
    a
}

/// The seven capacity lanes of one chunk.
struct CapsLanes<const M: usize> {
    c_a_ab: [f64; M],
    c_b_ab: [f64; M],
    c_a_ar: [f64; M],
    c_b_br: [f64; M],
    c_r_ar: [f64; M],
    c_r_br: [f64; M],
    c_mac: [f64; M],
}

impl<const M: usize> CapsLanes<M> {
    #[inline(always)]
    fn load(b: &PointBlock, i: usize) -> Self {
        CapsLanes {
            c_a_ab: gather(&b.c_a_ab, i),
            c_b_ab: gather(&b.c_b_ab, i),
            c_a_ar: gather(&b.c_a_ar, i),
            c_b_br: gather(&b.c_b_br, i),
            c_r_ar: gather(&b.c_r_ar, i),
            c_r_br: gather(&b.c_r_br, i),
            c_mac: gather(&b.c_mac, i),
        }
    }
}

impl CapsLanes<1> {
    #[inline(always)]
    fn from_caps(c: &LinkCaps) -> Self {
        CapsLanes {
            c_a_ab: [c.c_a_ab],
            c_b_ab: [c.c_b_ab],
            c_a_ar: [c.c_a_ar],
            c_b_br: [c.c_b_br],
            c_r_ar: [c.c_r_ar],
            c_r_br: [c.c_r_br],
            c_mac: [c.c_mac],
        }
    }
}

// ---------------------------------------------------------------------------
// Sum-rate lane kernels
// ---------------------------------------------------------------------------

/// DT sum rate: the objective is linear in the split, so all time goes
/// to the stronger direction. Returns `(rate, ra, rb, Δ₁)`.
#[inline(always)]
fn dt_sum_lanes<const M: usize>(c: &CapsLanes<M>) -> ([f64; M], [f64; M], [f64; M], [f64; M]) {
    let (mut rate, mut ra, mut rb, mut d0) = ([0.0; M], [0.0; M], [0.0; M], [0.0; M]);
    for l in 0..M {
        let (ca, cb) = (c.c_a_ab[l], c.c_b_ab[l]);
        let m = ca >= cb;
        rate[l] = sel(m, ca, cb);
        ra[l] = sel(m, ca, 0.0);
        rb[l] = sel(m, 0.0, cb);
        d0[l] = sel(m, 1.0, 0.0);
    }
    (rate, ra, rb, d0)
}

/// The exact MABC sum-rate profile `f(Δ) = min(mA(Δ) + mB(Δ), Δ·s)` with
/// `mX(Δ) = min(Δ·x₁, (1−Δ)·x₂)`.
#[inline(always)]
fn mabc_f(d: f64, a1: f64, a2: f64, b1: f64, b2: f64, s: f64) -> f64 {
    let g = (d * a1).min((1.0 - d) * a2) + (d * b1).min((1.0 - d) * b2);
    g.min(d * s)
}

/// MABC sum rate: maximises the concave piecewise-linear `f` above by
/// evaluating its exact value at the seven analytic candidates — the
/// endpoints, the two kinks of `mA + mB`, and the crossing of each
/// linear branch combination with the MAC line `Δ·s` (the combination
/// `Δ·a₁ + Δ·b₁` crosses at Δ = 0, already an endpoint). Degenerate
/// candidates (0/0 → NaN) never win a strict comparison, and candidates
/// clamped into `[0, 1]` re-evaluate an endpoint exactly, so extras are
/// harmless. Returns `(rate, ra, rb, Δ₁)`.
#[inline(always)]
fn mabc_sum_lanes<const M: usize>(c: &CapsLanes<M>) -> ([f64; M], [f64; M], [f64; M], [f64; M]) {
    let (a1, a2) = (&c.c_a_ar, &c.c_r_br);
    let (b1, b2) = (&c.c_b_br, &c.c_r_ar);
    let s = &c.c_mac;
    let mut bd = [0.0; M];
    let mut bf = [0.0; M];
    for l in 0..M {
        bf[l] = mabc_f(0.0, a1[l], a2[l], b1[l], b2[l], s[l]);
    }
    for cand in 1..7 {
        for l in 0..M {
            let d = match cand {
                1 => 1.0,
                2 => a2[l] / (a1[l] + a2[l]),
                3 => b2[l] / (b1[l] + b2[l]),
                4 => b2[l] / (s[l] - a1[l] + b2[l]),
                5 => a2[l] / (s[l] - b1[l] + a2[l]),
                _ => (a2[l] + b2[l]) / (s[l] + a2[l] + b2[l]),
            }
            .clamp(0.0, 1.0);
            let v = mabc_f(d, a1[l], a2[l], b1[l], b2[l], s[l]);
            let m = v > bf[l];
            bd[l] = sel(m, d, bd[l]);
            bf[l] = sel(m, v, bf[l]);
        }
    }
    let (mut ra, mut rb) = ([0.0; M], [0.0; M]);
    for l in 0..M {
        let d = bd[l];
        let ra0 = (d * a1[l]).min((1.0 - d) * a2[l]);
        let rb0 = (d * b1[l]).min((1.0 - d) * b2[l]);
        let cap = d * s[l];
        // When the MAC sum row binds, keep R_b at its individual cap and
        // give R_a the remainder (deterministic feasible split).
        let over = ra0 + rb0 > cap;
        let rbx = rb0.min(cap);
        ra[l] = sel(over, cap - rbx, ra0);
        rb[l] = sel(over, rbx, rb0);
    }
    (bf, ra, rb, bd)
}

/// TDBC sum rate by vertex enumeration over the 2-simplex (see
/// `crate::kernel`'s module docs): a division-free homogeneous
/// tournament over the ≤ 10 pairwise intersections of the three facets
/// and the two `min`-kink planes. Returns `(rate, ra, rb, Δ)`.
#[inline(always)]
fn tdbc_sum_lanes<const M: usize>(
    c: &CapsLanes<M>,
) -> ([f64; M], [f64; M], [f64; M], [[f64; M]; 3]) {
    let (alpha, beta, gamma) = (&c.c_a_ar, &c.c_a_ab, &c.c_r_br);
    let (delta, eps, zeta) = (&c.c_b_br, &c.c_b_ab, &c.c_r_ar);
    let mut planes = [[[0.0; M]; 3]; 5];
    for l in 0..M {
        planes[0][0][l] = 1.0; // Δ₁ = 0
        planes[1][1][l] = 1.0; // Δ₂ = 0
        planes[2][2][l] = 1.0; // Δ₃ = 0
        planes[3][0][l] = alpha[l] - beta[l]; // α·Δ₁ = β·Δ₁ + γ·Δ₃
        planes[3][2][l] = -gamma[l];
        planes[4][1][l] = delta[l] - eps[l]; // δ·Δ₂ = ε·Δ₂ + ζ·Δ₃
        planes[4][2][l] = -zeta[l];
    }
    let mut bf = [0.0; M];
    let mut bs = [1.0; M];
    let mut bd = [[0.0; M], [0.0; M], [1.0; M]];
    for i in 0..5 {
        for j in i + 1..5 {
            let (a, b) = (&planes[i], &planes[j]);
            for l in 0..M {
                // The two planes meet the simplex plane along their
                // cross product's ray.
                let mut d0 = a[1][l] * b[2][l] - a[2][l] * b[1][l];
                let mut d1 = a[2][l] * b[0][l] - a[0][l] * b[2][l];
                let mut d2 = a[0][l] * b[1][l] - a[1][l] * b[0][l];
                let mut sum = d0 + d1 + d2;
                let neg = sum < 0.0;
                d0 = sel(neg, -d0, d0);
                d1 = sel(neg, -d1, d1);
                d2 = sel(neg, -d2, d2);
                sum = sel(neg, -sum, sum);
                let norm = d0.abs() + d1.abs() + d2.abs();
                let tol = 1e-9 * sum;
                let ok = (sum > 1e-12 * norm) & (d0 >= -tol) & (d1 >= -tol) & (d2 >= -tol);
                let d0 = d0.max(0.0);
                let d1 = d1.max(0.0);
                let d2 = d2.max(0.0);
                let u = (alpha[l] * d0).min(beta[l] * d0 + gamma[l] * d2);
                let v = (delta[l] * d1).min(eps[l] * d1 + zeta[l] * d2);
                let f = u + v;
                let m = ok & (f * bs[l] > bf[l] * sum);
                bf[l] = sel(m, f, bf[l]);
                bs[l] = sel(m, sum, bs[l]);
                bd[0][l] = sel(m, d0, bd[0][l]);
                bd[1][l] = sel(m, d1, bd[1][l]);
                bd[2][l] = sel(m, d2, bd[2][l]);
            }
        }
    }
    let (mut rate, mut ra, mut rb, mut d) = ([0.0; M], [0.0; M], [0.0; M], [[0.0; M]; 3]);
    for l in 0..M {
        let inv = 1.0 / bs[l];
        let (d0, d1, d2) = (bd[0][l] * inv, bd[1][l] * inv, bd[2][l] * inv);
        let uu = ((alpha[l] * d0).min(beta[l] * d0 + gamma[l] * d2)).max(0.0);
        let vv = ((delta[l] * d1).min(eps[l] * d1 + zeta[l] * d2)).max(0.0);
        rate[l] = uu + vv;
        ra[l] = uu;
        rb[l] = vv;
        d[0][l] = d0;
        d[1][l] = d1;
        d[2][l] = d2;
    }
    (rate, ra, rb, d)
}

/// HBC coefficient lanes (the Theorem-5 inner structure).
struct HbcCoef<const M: usize> {
    a1: [f64; M],
    a2: [f64; M],
    a3: [f64; M],
    b1: [f64; M],
    b2: [f64; M],
    b3: [f64; M],
    s: [f64; M],
}

/// HBC tournament state: best exact value, best ray mass, best ray.
struct HbcBest<const M: usize> {
    f: [f64; M],
    sum: [f64; M],
    d: [[f64; M]; 4],
}

/// One candidate ray per lane through the HBC homogeneous tournament:
/// sign-normalise, screen for simplex membership, evaluate the exact
/// `F = min(u + v, w)` and keep the cross-multiplied winner — all by
/// masked select, no data-dependent branches.
#[inline(always)]
#[allow(clippy::needless_range_loop)] // `l` is the lane index across d/co/best
fn hbc_consider<const M: usize>(d: &[[f64; M]; 4], co: &HbcCoef<M>, best: &mut HbcBest<M>) {
    for l in 0..M {
        let (mut d0, mut d1, mut d2, mut d3) = (d[0][l], d[1][l], d[2][l], d[3][l]);
        let mut sum = d0 + d1 + d2 + d3;
        let neg = sum < 0.0;
        d0 = sel(neg, -d0, d0);
        d1 = sel(neg, -d1, d1);
        d2 = sel(neg, -d2, d2);
        d3 = sel(neg, -d3, d3);
        sum = sel(neg, -sum, sum);
        let norm = d0.abs() + d1.abs() + d2.abs() + d3.abs();
        let tol = 1e-9 * sum;
        let ok = (sum > 1e-12 * norm) & (d0 >= -tol) & (d1 >= -tol) & (d2 >= -tol) & (d3 >= -tol);
        let d0 = d0.max(0.0);
        let d1 = d1.max(0.0);
        let d2 = d2.max(0.0);
        let d3 = d3.max(0.0);
        let u = (co.a1[l] * (d0 + d2)).min(co.a2[l] * d0 + co.a3[l] * d3);
        let v = (co.b1[l] * (d1 + d2)).min(co.b2[l] * d1 + co.b3[l] * d3);
        let w = co.a1[l] * d0 + co.b1[l] * d1 + co.s[l] * d2;
        let f = (u + v).min(w);
        let m = ok & (f * best.sum[l] > best.f[l] * sum);
        best.f[l] = sel(m, f, best.f[l]);
        best.sum[l] = sel(m, sum, best.sum[l]);
        best.d[0][l] = sel(m, d0, best.d[0][l]);
        best.d[1][l] = sel(m, d1, best.d[1][l]);
        best.d[2][l] = sel(m, d2, best.d[2][l]);
        best.d[3][l] = sel(m, d3, best.d[3][l]);
    }
}

/// Lanewise generalised cross product of three 4-d rows (null-space
/// direction by cofactor expansion).
#[inline(always)]
fn null4_lanes<const M: usize>(
    p: &[[f64; M]; 4],
    q: &[[f64; M]; 4],
    r: &[[f64; M]; 4],
) -> [[f64; M]; 4] {
    let mut out = [[0.0; M]; 4];
    for l in 0..M {
        let det = |i: usize, j: usize, k: usize| {
            p[i][l] * (q[j][l] * r[k][l] - q[k][l] * r[j][l])
                - p[j][l] * (q[i][l] * r[k][l] - q[k][l] * r[i][l])
                + p[k][l] * (q[i][l] * r[j][l] - q[j][l] * r[i][l])
        };
        out[0][l] = det(1, 2, 3);
        out[1][l] = -det(0, 2, 3);
        out[2][l] = det(0, 1, 3);
        out[3][l] = -det(0, 1, 2);
    }
    out
}

/// HBC sum rate by vertex enumeration over the 3-simplex (see
/// `crate::kernel`'s module docs for the geometry): ≤ 65 candidate rays
/// — corners, edge ∩ kink plane, facet ∩ plane pair, interior triples —
/// through the division-free homogeneous tournament. Returns
/// `(rate, ra, rb, Δ)`.
#[inline(always)]
fn hbc_sum_lanes<const M: usize>(
    c: &CapsLanes<M>,
) -> ([f64; M], [f64; M], [f64; M], [[f64; M]; 4]) {
    let mut co = HbcCoef {
        a1: [0.0; M],
        a2: [0.0; M],
        a3: [0.0; M],
        b1: [0.0; M],
        b2: [0.0; M],
        b3: [0.0; M],
        s: [0.0; M],
    };
    for l in 0..M {
        co.a1[l] = c.c_a_ar[l];
        co.a2[l] = c.c_a_ab[l];
        co.a3[l] = c.c_r_br[l];
        co.b1[l] = c.c_b_br[l];
        co.b2[l] = c.c_b_ab[l];
        co.b3[l] = c.c_r_ar[l];
        co.s[l] = c.c_mac[l];
    }
    // The five kink planes: the two `min` kinks K₁, K₂ and the three
    // admissible `u + v = w` tie planes (T₁₁ degenerates to Δ₃ = 0).
    let mut kinks = [[[0.0; M]; 4]; 5];
    #[allow(clippy::needless_range_loop)] // `l` is the lane index across kinks/co
    for l in 0..M {
        kinks[0][0][l] = co.a1[l] - co.a2[l]; // K₁
        kinks[0][2][l] = co.a1[l];
        kinks[0][3][l] = -co.a3[l];
        kinks[1][1][l] = co.b1[l] - co.b2[l]; // K₂
        kinks[1][2][l] = co.b1[l];
        kinks[1][3][l] = -co.b3[l];
        kinks[2][1][l] = co.b2[l] - co.b1[l]; // T₁₂
        kinks[2][2][l] = co.a1[l] - co.s[l];
        kinks[2][3][l] = co.b3[l];
        kinks[3][0][l] = co.a2[l] - co.a1[l]; // T₂₁
        kinks[3][2][l] = co.b1[l] - co.s[l];
        kinks[3][3][l] = co.a3[l];
        kinks[4][0][l] = co.a2[l] - co.a1[l]; // T₂₂
        kinks[4][1][l] = co.b2[l] - co.b1[l];
        kinks[4][2][l] = -co.s[l];
        kinks[4][3][l] = co.a3[l] + co.b3[l];
    }
    let mut best = HbcBest {
        f: [0.0; M],
        sum: [1.0; M],
        d: [[0.0; M], [0.0; M], [0.0; M], [1.0; M]],
    };
    // Corners of the simplex (three facets).
    for corner in 0..4 {
        let mut d = [[0.0; M]; 4];
        d[corner] = [1.0; M];
        hbc_consider(&d, &co, &mut best);
    }
    // Simplex edges (two facets) crossed with one kink plane: on the
    // edge span{eᵢ, eⱼ}, the ray `n_j·eᵢ − n_i·eⱼ` solves `n·d = 0`.
    for i in 0..4 {
        for j in i + 1..4 {
            for kink in &kinks {
                let mut d = [[0.0; M]; 4];
                for l in 0..M {
                    d[i][l] = kink[j][l];
                    d[j][l] = -kink[i][l];
                }
                hbc_consider(&d, &co, &mut best);
            }
        }
    }
    // One facet crossed with two kink planes (skipping tie-plane pairs:
    // no linearity region is bounded by two tie planes at once).
    for fct in 0..4 {
        let rest = match fct {
            0 => [1, 2, 3],
            1 => [0, 2, 3],
            2 => [0, 1, 3],
            _ => [0, 1, 2],
        };
        for p in 0..5 {
            for q in p + 1..5 {
                if p >= 2 && q >= 2 {
                    continue; // two tie planes
                }
                let mut d = [[0.0; M]; 4];
                for l in 0..M {
                    let a0 = kinks[p][rest[0]][l];
                    let a1 = kinks[p][rest[1]][l];
                    let a2 = kinks[p][rest[2]][l];
                    let b0 = kinks[q][rest[0]][l];
                    let b1 = kinks[q][rest[1]][l];
                    let b2 = kinks[q][rest[2]][l];
                    d[rest[0]][l] = a1 * b2 - a2 * b1;
                    d[rest[1]][l] = a2 * b0 - a0 * b2;
                    d[rest[2]][l] = a0 * b1 - a1 * b0;
                }
                hbc_consider(&d, &co, &mut best);
            }
        }
    }
    // Interior vertices: K₁ ∩ K₂ ∩ one tie plane.
    for t in 2..5 {
        let d = null4_lanes(&kinks[0], &kinks[1], &kinks[t]);
        hbc_consider(&d, &co, &mut best);
    }
    // Normalise the winning ray and recompute the exact operating point.
    let (mut rate, mut ra, mut rb, mut d) = ([0.0; M], [0.0; M], [0.0; M], [[0.0; M]; 4]);
    for l in 0..M {
        let inv = 1.0 / best.sum[l];
        let (d0, d1, d2, d3) = (
            best.d[0][l] * inv,
            best.d[1][l] * inv,
            best.d[2][l] * inv,
            best.d[3][l] * inv,
        );
        let u = (co.a1[l] * (d0 + d2)).min(co.a2[l] * d0 + co.a3[l] * d3);
        let v = (co.b1[l] * (d1 + d2)).min(co.b2[l] * d1 + co.b3[l] * d3);
        let w = co.a1[l] * d0 + co.b1[l] * d1 + co.s[l] * d2;
        // When the sum row binds, keep R_b at its individual cap and
        // give R_a the remainder (the MABC kernel's convention).
        let direct = u + v <= w;
        let rbx = v.min(w);
        rate[l] = (u + v).min(w);
        ra[l] = sel(direct, u, w - rbx);
        rb[l] = sel(direct, v, rbx);
        d[0][l] = d0;
        d[1][l] = d1;
        d[2][l] = d2;
        d[3][l] = d3;
    }
    (rate, ra, rb, d)
}

// ---------------------------------------------------------------------------
// Max–min lane kernels
// ---------------------------------------------------------------------------

/// DT max–min: both direct-link lines bind at the optimum. Returns
/// `(t, Δ₁)`.
#[inline(always)]
fn dt_mm_lanes<const M: usize>(c: &CapsLanes<M>) -> ([f64; M], [f64; M]) {
    let (mut t, mut d0) = ([0.0; M], [0.0; M]);
    for l in 0..M {
        let (ca, cb) = (c.c_a_ab[l], c.c_b_ab[l]);
        let dead = ca <= 0.0 || cb <= 0.0;
        let dd = cb / (ca + cb);
        let tt = ca * cb / (ca + cb);
        d0[l] = sel(dead, 0.5, dd);
        t[l] = sel(dead, 0.0, tt);
    }
    (t, d0)
}

/// MABC max–min: `t ≤ mA(Δ)`, `t ≤ mB(Δ)`, `2t ≤ Δ·s` — the maximum of
/// a min of five lines sits at a pairwise crossing or an endpoint.
/// Candidates are screened (not clamped) exactly like the scalar
/// `Cands` list, so out-of-range and degenerate crossings are rejected
/// and the first-found maximum resolves ties identically. Returns
/// `(t, Δ₁)`.
#[inline(always)]
fn mabc_mm_lanes<const M: usize>(c: &CapsLanes<M>) -> ([f64; M], [f64; M]) {
    const PAIRS: [(usize, usize); 10] = [
        (0, 1),
        (0, 2),
        (0, 3),
        (0, 4),
        (1, 2),
        (1, 3),
        (1, 4),
        (2, 3),
        (2, 4),
        (3, 4),
    ];
    let mut bd = [0.0; M];
    let mut bv = [f64::NEG_INFINITY; M];
    for cand in 0..12 {
        for l in 0..M {
            // The five lines `p·Δ + q·(1 − Δ)`.
            let p = [c.c_a_ar[l], 0.0, c.c_b_br[l], 0.0, 0.5 * c.c_mac[l]];
            let q = [0.0, c.c_r_br[l], 0.0, c.c_r_ar[l], 0.0];
            let d = match cand {
                0 => 0.0,
                1 => 1.0,
                _ => {
                    let (i, j) = PAIRS[cand - 2];
                    let denom = (p[i] - q[i]) - (p[j] - q[j]);
                    (q[j] - q[i]) / denom
                }
            };
            let ok = (0.0..=1.0).contains(&d); // NaN/±inf crossings rejected
            let mut v = f64::INFINITY;
            for k in 0..5 {
                v = v.min(p[k] * d + q[k] * (1.0 - d));
            }
            let m = ok & (v > bv[l]);
            bd[l] = sel(m, d, bd[l]);
            bv[l] = sel(m, v, bv[l]);
        }
    }
    let mut t = [0.0; M];
    for l in 0..M {
        t[l] = bv[l].max(0.0);
    }
    (t, bd)
}

/// TDBC max–min by vertex enumeration: nine cut planes (three facets,
/// six pairwise ties of the four rate lines), ≤ 36 pairwise candidates
/// through the homogeneous tournament. Returns `(t, Δ)`.
#[inline(always)]
fn tdbc_mm_lanes<const M: usize>(c: &CapsLanes<M>) -> ([f64; M], [[f64; M]; 3]) {
    let (alpha, beta, gamma) = (&c.c_a_ar, &c.c_a_ab, &c.c_r_br);
    let (delta, eps, zeta) = (&c.c_b_br, &c.c_b_ab, &c.c_r_ar);
    let mut planes = [[[0.0; M]; 3]; 9];
    for l in 0..M {
        planes[0][0][l] = 1.0;
        planes[1][1][l] = 1.0;
        planes[2][2][l] = 1.0;
        planes[3][0][l] = alpha[l] - beta[l];
        planes[3][2][l] = -gamma[l];
        planes[4][0][l] = alpha[l];
        planes[4][1][l] = -delta[l];
        planes[5][0][l] = alpha[l];
        planes[5][1][l] = -eps[l];
        planes[5][2][l] = -zeta[l];
        planes[6][0][l] = beta[l];
        planes[6][1][l] = -delta[l];
        planes[6][2][l] = gamma[l];
        planes[7][0][l] = beta[l];
        planes[7][1][l] = -eps[l];
        planes[7][2][l] = gamma[l] - zeta[l];
        planes[8][1][l] = delta[l] - eps[l];
        planes[8][2][l] = -zeta[l];
    }
    let mut bt = [0.0; M];
    let mut bs = [1.0; M];
    let mut bd = [[0.0; M], [0.0; M], [1.0; M]];
    for i in 0..9 {
        for j in i + 1..9 {
            let (a, b) = (&planes[i], &planes[j]);
            for l in 0..M {
                let mut d0 = a[1][l] * b[2][l] - a[2][l] * b[1][l];
                let mut d1 = a[2][l] * b[0][l] - a[0][l] * b[2][l];
                let mut d2 = a[0][l] * b[1][l] - a[1][l] * b[0][l];
                let mut sum = d0 + d1 + d2;
                let neg = sum < 0.0;
                d0 = sel(neg, -d0, d0);
                d1 = sel(neg, -d1, d1);
                d2 = sel(neg, -d2, d2);
                sum = sel(neg, -sum, sum);
                let norm = d0.abs() + d1.abs() + d2.abs();
                let tol = 1e-9 * sum;
                let ok = (sum > 1e-12 * norm) & (d0 >= -tol) & (d1 >= -tol) & (d2 >= -tol);
                let d0 = d0.max(0.0);
                let d1 = d1.max(0.0);
                let d2 = d2.max(0.0);
                let t = (alpha[l] * d0)
                    .min(beta[l] * d0 + gamma[l] * d2)
                    .min(delta[l] * d1)
                    .min(eps[l] * d1 + zeta[l] * d2);
                let m = ok & (t * bs[l] > bt[l] * sum);
                bt[l] = sel(m, t, bt[l]);
                bs[l] = sel(m, sum, bs[l]);
                bd[0][l] = sel(m, d0, bd[0][l]);
                bd[1][l] = sel(m, d1, bd[1][l]);
                bd[2][l] = sel(m, d2, bd[2][l]);
            }
        }
    }
    let (mut t, mut d) = ([0.0; M], [[0.0; M]; 3]);
    for l in 0..M {
        let inv = 1.0 / bs[l];
        let (d0, d1, d2) = (bd[0][l] * inv, bd[1][l] * inv, bd[2][l] * inv);
        t[l] = (alpha[l] * d0)
            .min(beta[l] * d0 + gamma[l] * d2)
            .min(delta[l] * d1)
            .min(eps[l] * d1 + zeta[l] * d2)
            .max(0.0);
        d[0][l] = d0;
        d[1][l] = d1;
        d[2][l] = d2;
    }
    (t, d)
}

// ---------------------------------------------------------------------------
// Scalar entry points (width-1 instantiations — the kernel's closed forms)
// ---------------------------------------------------------------------------

/// Closed-form sum rate of one point from its capacity bundle: the
/// width-1 instantiation of the lane kernels (bit-identical to the
/// block path by construction).
pub(crate) fn sum_rate_one(caps: &LinkCaps, protocol: Protocol) -> SumRateSolution {
    let c = CapsLanes::<1>::from_caps(caps);
    match protocol {
        Protocol::DirectTransmission => {
            let (rate, ra, rb, d0) = dt_sum_lanes(&c);
            sum_sol2(protocol, rate[0], ra[0], rb[0], d0[0])
        }
        Protocol::Mabc => {
            let (rate, ra, rb, d0) = mabc_sum_lanes(&c);
            sum_sol2(protocol, rate[0], ra[0], rb[0], d0[0])
        }
        Protocol::Tdbc => {
            let (rate, ra, rb, d) = tdbc_sum_lanes(&c);
            SumRateSolution {
                protocol,
                sum_rate: rate[0],
                ra: ra[0],
                rb: rb[0],
                durations: PhaseVec::from([d[0][0], d[1][0], d[2][0]]),
            }
        }
        Protocol::Hbc => {
            let (rate, ra, rb, d) = hbc_sum_lanes(&c);
            SumRateSolution {
                protocol,
                sum_rate: rate[0],
                ra: ra[0],
                rb: rb[0],
                durations: PhaseVec::from([d[0][0], d[1][0], d[2][0], d[3][0]]),
            }
        }
    }
}

/// Closed-form max–min point of one point from its capacity bundle
/// (`None` for HBC — its four-phase max–min stays on the simplex).
pub(crate) fn max_min_one(caps: &LinkCaps, protocol: Protocol) -> Option<SchedulePoint> {
    let c = CapsLanes::<1>::from_caps(caps);
    Some(match protocol {
        Protocol::DirectTransmission => {
            let (t, d0) = dt_mm_lanes(&c);
            mm_pt2(t[0], d0[0])
        }
        Protocol::Mabc => {
            let (t, d0) = mabc_mm_lanes(&c);
            mm_pt2(t[0], d0[0])
        }
        Protocol::Tdbc => {
            let (t, d) = tdbc_mm_lanes(&c);
            SchedulePoint {
                ra: t[0],
                rb: t[0],
                durations: PhaseVec::from([d[0][0], d[1][0], d[2][0]]),
                objective: t[0],
            }
        }
        Protocol::Hbc => return None,
    })
}

#[inline(always)]
fn sum_sol2(protocol: Protocol, rate: f64, ra: f64, rb: f64, d0: f64) -> SumRateSolution {
    SumRateSolution {
        protocol,
        sum_rate: rate,
        ra,
        rb,
        durations: PhaseVec::from([d0, 1.0 - d0]),
    }
}

#[inline(always)]
fn mm_pt2(t: f64, d0: f64) -> SchedulePoint {
    SchedulePoint {
        ra: t,
        rb: t,
        durations: PhaseVec::from([d0, 1.0 - d0]),
        objective: t,
    }
}

// ---------------------------------------------------------------------------
// Block drivers
// ---------------------------------------------------------------------------

/// Runs `$chunk` over the block: full [`LANE`]-wide chunks, then a
/// width-1 scalar tail through the same generic body.
macro_rules! chunked {
    ($chunk:ident, $block:expr, $out:expr, $n:expr) => {{
        let mut i = 0usize;
        while i + LANE <= $n {
            $chunk::<LANE>($block, i, $out);
            i += LANE;
        }
        while i < $n {
            $chunk::<1>($block, i, $out);
            i += 1;
        }
    }};
}

#[inline(always)]
fn dt_sum_chunk<const M: usize>(b: &PointBlock, i: usize, out: &mut Vec<SumRateSolution>) {
    let c = CapsLanes::<M>::load(b, i);
    let (rate, ra, rb, d0) = dt_sum_lanes(&c);
    for l in 0..M {
        out.push(sum_sol2(
            Protocol::DirectTransmission,
            rate[l],
            ra[l],
            rb[l],
            d0[l],
        ));
    }
}

#[inline(always)]
fn mabc_sum_chunk<const M: usize>(b: &PointBlock, i: usize, out: &mut Vec<SumRateSolution>) {
    let c = CapsLanes::<M>::load(b, i);
    let (rate, ra, rb, d0) = mabc_sum_lanes(&c);
    for l in 0..M {
        out.push(sum_sol2(Protocol::Mabc, rate[l], ra[l], rb[l], d0[l]));
    }
}

#[inline(always)]
fn tdbc_sum_chunk<const M: usize>(b: &PointBlock, i: usize, out: &mut Vec<SumRateSolution>) {
    let c = CapsLanes::<M>::load(b, i);
    let (rate, ra, rb, d) = tdbc_sum_lanes(&c);
    for l in 0..M {
        out.push(SumRateSolution {
            protocol: Protocol::Tdbc,
            sum_rate: rate[l],
            ra: ra[l],
            rb: rb[l],
            durations: PhaseVec::from([d[0][l], d[1][l], d[2][l]]),
        });
    }
}

#[inline(always)]
fn hbc_sum_chunk<const M: usize>(b: &PointBlock, i: usize, out: &mut Vec<SumRateSolution>) {
    let c = CapsLanes::<M>::load(b, i);
    let (rate, ra, rb, d) = hbc_sum_lanes(&c);
    for l in 0..M {
        out.push(SumRateSolution {
            protocol: Protocol::Hbc,
            sum_rate: rate[l],
            ra: ra[l],
            rb: rb[l],
            durations: PhaseVec::from([d[0][l], d[1][l], d[2][l], d[3][l]]),
        });
    }
}

#[inline(always)]
fn dt_mm_chunk<const M: usize>(b: &PointBlock, i: usize, out: &mut Vec<SchedulePoint>) {
    let c = CapsLanes::<M>::load(b, i);
    let (t, d0) = dt_mm_lanes(&c);
    for l in 0..M {
        out.push(mm_pt2(t[l], d0[l]));
    }
}

#[inline(always)]
fn mabc_mm_chunk<const M: usize>(b: &PointBlock, i: usize, out: &mut Vec<SchedulePoint>) {
    let c = CapsLanes::<M>::load(b, i);
    let (t, d0) = mabc_mm_lanes(&c);
    for l in 0..M {
        out.push(mm_pt2(t[l], d0[l]));
    }
}

#[inline(always)]
fn tdbc_mm_chunk<const M: usize>(b: &PointBlock, i: usize, out: &mut Vec<SchedulePoint>) {
    let c = CapsLanes::<M>::load(b, i);
    let (t, d) = tdbc_mm_lanes(&c);
    for l in 0..M {
        out.push(SchedulePoint {
            ra: t[l],
            rb: t[l],
            durations: PhaseVec::from([d[0][l], d[1][l], d[2][l]]),
            objective: t[l],
        });
    }
}

/// The whole-block sum-rate body (shared by the plain and AVX2 builds;
/// `inline(always)` so the `target_feature` wrapper recompiles it with
/// wider lanes).
#[inline(always)]
fn sum_block_body(block: &PointBlock, protocol: Protocol, out: &mut Vec<SumRateSolution>) {
    let n = block.len();
    out.reserve(n);
    match protocol {
        Protocol::DirectTransmission => chunked!(dt_sum_chunk, block, out, n),
        Protocol::Mabc => chunked!(mabc_sum_chunk, block, out, n),
        Protocol::Tdbc => chunked!(tdbc_sum_chunk, block, out, n),
        Protocol::Hbc => chunked!(hbc_sum_chunk, block, out, n),
    }
}

/// The whole-block max–min body (DT/MABC/TDBC).
#[inline(always)]
fn mm_block_body(block: &PointBlock, protocol: Protocol, out: &mut Vec<SchedulePoint>) {
    let n = block.len();
    out.reserve(n);
    match protocol {
        Protocol::DirectTransmission => chunked!(dt_mm_chunk, block, out, n),
        Protocol::Mabc => chunked!(mabc_mm_chunk, block, out, n),
        Protocol::Tdbc => chunked!(tdbc_mm_chunk, block, out, n),
        Protocol::Hbc => unreachable!("HBC max-min has no closed form"),
    }
}

/// AVX2 twins of the block bodies, gated behind the `simd` feature and
/// dispatched by runtime CPU detection. The bodies are the same generic
/// lane code — recompiling them with AVX2 enabled only widens the lane
/// ops (exact IEEE mul/add/min/max, no FMA contraction), so results
/// stay bit-identical to the portable build.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod simd {
    #![allow(unsafe_code)]

    use super::*;

    /// # Safety
    ///
    /// Caller must ensure the CPU supports AVX2.
    #[target_feature(enable = "avx2")]
    unsafe fn sum_block_avx2(
        block: &PointBlock,
        protocol: Protocol,
        out: &mut Vec<SumRateSolution>,
    ) {
        sum_block_body(block, protocol, out);
    }

    /// # Safety
    ///
    /// Caller must ensure the CPU supports AVX2.
    #[target_feature(enable = "avx2")]
    unsafe fn mm_block_avx2(block: &PointBlock, protocol: Protocol, out: &mut Vec<SchedulePoint>) {
        mm_block_body(block, protocol, out);
    }

    /// Runs the AVX2 sum-rate body if the CPU supports it; `false` means
    /// the caller should take the portable path.
    pub(super) fn sum_block(
        block: &PointBlock,
        protocol: Protocol,
        out: &mut Vec<SumRateSolution>,
    ) -> bool {
        if !std::arch::is_x86_feature_detected!("avx2") {
            return false;
        }
        // SAFETY: AVX2 support was just detected at runtime.
        unsafe { sum_block_avx2(block, protocol, out) };
        true
    }

    /// Runs the AVX2 max–min body if the CPU supports it; `false` means
    /// the caller should take the portable path.
    pub(super) fn mm_block(
        block: &PointBlock,
        protocol: Protocol,
        out: &mut Vec<SchedulePoint>,
    ) -> bool {
        if !std::arch::is_x86_feature_detected!("avx2") {
            return false;
        }
        // SAFETY: AVX2 support was just detected at runtime.
        unsafe { mm_block_avx2(block, protocol, out) };
        true
    }
}

/// Records the per-block bookkeeping: `n` kernel-served solves, with
/// the full-chunk share on the batch counters.
fn finish_block(n: usize) {
    stats::record(n as u64, (n - n % LANE) as u64);
    crate::kernel::record_kernel_hits(n as u64);
}

/// Batched closed-form `max_sum_rate`: appends one solution per staged
/// point (in block order) to `out`. Covers all four protocols;
/// bit-identical to the scalar kernel at any lane width.
///
/// # Panics
///
/// Panics if [`PointBlock::compute_caps`] has not run since the last
/// push.
pub fn max_sum_rate_block(block: &PointBlock, protocol: Protocol, out: &mut Vec<SumRateSolution>) {
    assert!(
        block.caps_ready,
        "PointBlock::compute_caps has not run since the last push"
    );
    let n = block.len();
    if n == 0 {
        return;
    }
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd::sum_block(block, protocol, out) {
        finish_block(n);
        return;
    }
    sum_block_body(block, protocol, out);
    finish_block(n);
}

/// Batched closed-form `max_min_rate` for DT/MABC/TDBC: appends one
/// schedule point per staged point to `out` and returns `true`. For HBC
/// — whose four-phase max–min stays on the simplex — returns `false`
/// without touching `out`.
///
/// # Panics
///
/// Panics if [`PointBlock::compute_caps`] has not run since the last
/// push.
pub fn max_min_rate_block(
    block: &PointBlock,
    protocol: Protocol,
    out: &mut Vec<SchedulePoint>,
) -> bool {
    assert!(
        block.caps_ready,
        "PointBlock::compute_caps has not run since the last push"
    );
    if protocol == Protocol::Hbc {
        return false;
    }
    let n = block.len();
    if n == 0 {
        return true;
    }
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd::mm_block(block, protocol, out) {
        finish_block(n);
        return true;
    }
    mm_block_body(block, protocol, out);
    finish_block(n);
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel;

    /// A 13-point grid (3 full lanes + scalar tail) spanning symmetric,
    /// lopsided and degenerate channels.
    fn grid() -> Vec<GaussianNetwork> {
        let mut nets = Vec::new();
        for (p, gab, gar, gbr) in [
            (10.0, 0.2, 1.0, 3.16),
            (0.5, 1.0, 1.0, 1.0),
            (2.0, 1.0, 0.01, 10.0),
            (31.6, 0.0, 2.0, 2.0),
            (1.0, 5.0, 0.5, 0.5),
            (10.0, 1.0, 0.0, 1.0),
            (3.0, 0.5, 10.0, 0.1),
            (0.0, 1.0, 1.0, 1.0),
            (100.0, 0.1, 4.0, 0.25),
            (7.0, 2.0, 2.0, 2.0),
            (0.1, 0.3, 0.7, 1.3),
            (50.0, 0.01, 8.0, 8.0),
            (5.0, 1.5, 0.2, 6.0),
        ] {
            nets.push(GaussianNetwork::new(p, ChannelState::new(gab, gar, gbr)));
        }
        nets
    }

    fn filled_block(nets: &[GaussianNetwork]) -> PointBlock {
        let mut b = PointBlock::with_capacity(nets.len());
        for net in nets {
            b.push_net(net);
        }
        b.compute_caps();
        b
    }

    #[test]
    fn caps_lanes_are_bit_identical_to_scalar() {
        let nets = grid();
        let b = filled_block(&nets);
        for (i, net) in nets.iter().enumerate() {
            let scalar = LinkCaps::compute(&net.powers(), &net.state());
            assert_eq!(b.caps(i), scalar, "point {i}");
        }
    }

    #[test]
    fn block_sum_rates_are_bit_identical_to_scalar_kernel() {
        let nets = grid();
        let b = filled_block(&nets);
        for proto in Protocol::ALL {
            let mut out = Vec::new();
            max_sum_rate_block(&b, proto, &mut out);
            assert_eq!(out.len(), nets.len());
            for (i, net) in nets.iter().enumerate() {
                let scalar = kernel::max_sum_rate(net, proto).expect("covered");
                let batch = &out[i];
                assert_eq!(
                    batch.sum_rate.to_bits(),
                    scalar.sum_rate.to_bits(),
                    "{proto} rate {i}"
                );
                assert_eq!(batch.ra.to_bits(), scalar.ra.to_bits(), "{proto} ra {i}");
                assert_eq!(batch.rb.to_bits(), scalar.rb.to_bits(), "{proto} rb {i}");
                assert_eq!(batch.durations.len(), scalar.durations.len());
                for (x, y) in batch.durations.iter().zip(scalar.durations.iter()) {
                    assert_eq!(x.to_bits(), y.to_bits(), "{proto} durations {i}");
                }
            }
        }
    }

    #[test]
    fn block_max_min_is_bit_identical_to_scalar_kernel() {
        let nets = grid();
        let b = filled_block(&nets);
        for proto in [Protocol::DirectTransmission, Protocol::Mabc, Protocol::Tdbc] {
            let mut out = Vec::new();
            assert!(max_min_rate_block(&b, proto, &mut out));
            for (i, net) in nets.iter().enumerate() {
                let scalar = kernel::max_min_rate(net, proto).expect("covered");
                let batch = &out[i];
                assert_eq!(
                    batch.objective.to_bits(),
                    scalar.objective.to_bits(),
                    "{proto} t {i}"
                );
                for (x, y) in batch.durations.iter().zip(scalar.durations.iter()) {
                    assert_eq!(x.to_bits(), y.to_bits(), "{proto} durations {i}");
                }
            }
        }
        let mut out = Vec::new();
        assert!(!max_min_rate_block(&b, Protocol::Hbc, &mut out));
        assert!(out.is_empty());
    }

    #[test]
    fn counters_track_points_and_full_lanes() {
        let nets = grid(); // 13 points: 12 in full lanes, 1 tail
        let b = filled_block(&nets);
        let p0 = stats::batched_points_local();
        let f0 = stats::lanes_filled_local();
        let k0 = kernel::kernel_hits_local();
        let mut out = Vec::new();
        max_sum_rate_block(&b, Protocol::Hbc, &mut out);
        assert_eq!(stats::batched_points_local() - p0, 13);
        assert_eq!(stats::lanes_filled_local() - f0, 12);
        assert_eq!(kernel::kernel_hits_local() - k0, 13);
    }

    #[test]
    fn clear_keeps_storage_and_resets_caps() {
        let nets = grid();
        let mut b = filled_block(&nets);
        assert!(b.caps_ready());
        b.clear();
        assert!(b.is_empty());
        assert!(!b.caps_ready());
        b.push_net(&nets[0]);
        b.compute_caps();
        assert_eq!(
            b.caps(0),
            LinkCaps::compute(&nets[0].powers(), &nets[0].state())
        );
    }
}
