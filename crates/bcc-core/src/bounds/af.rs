//! Amplify-and-forward (AF) two-phase baseline.
//!
//! The paper's references \[7\], \[8\] (Popovski–Yomo) and \[9\]
//! (Rankov–Wittneben) study the two-phase protocol where the relay simply
//! **amplifies** its received superposition instead of decoding — the
//! natural competitor to the decode-and-forward MABC of Theorem 2. This
//! module implements the standard achievable rates for comparison (an
//! *extension* of the paper's evaluation, not one of its theorems).
//!
//! Model: equal phase halves (symbol-by-symbol forwarding), relay transmit
//! scaling `β² = P / (P·G_ar + P·G_br + 1)` to satisfy its power
//! constraint. Each terminal subtracts its own self-interference (it knows
//! what it sent and has full CSI), leaving
//!
//! ```text
//! SNR_{a→b} = β²·G_ar·G_br·P / (β²·G_br + 1)
//! SNR_{b→a} = β²·G_ar·G_br·P / (β²·G_ar + 1)
//! R_a ≤ ½·C(SNR_{a→b}),   R_b ≤ ½·C(SNR_{b→a})
//! ```
//!
//! AF never beats the relaxed MABC cut-set bound (each direction still
//! crosses both hops) but avoids the decoding requirement at the relay —
//! at high SNR the noise amplification penalty shrinks and AF becomes
//! competitive with DF.

use bcc_channel::ChannelState;
use bcc_info::awgn_capacity;

/// Achievable rate pair of two-phase amplify-and-forward relaying.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AfRates {
    /// Rate of `w_a` (decoded at `b`), bits per channel use.
    pub ra: f64,
    /// Rate of `w_b` (decoded at `a`), bits per channel use.
    pub rb: f64,
}

impl AfRates {
    /// Sum rate.
    pub fn sum_rate(&self) -> f64 {
        self.ra + self.rb
    }
}

/// The relay's amplification power gain `β²`.
pub fn relay_gain_squared(power: f64, state: &ChannelState) -> f64 {
    assert!(power >= 0.0, "transmit power must be non-negative");
    power / (power * state.gar() + power * state.gbr() + 1.0)
}

/// End-to-end received SNR of the `a → r → b` direction after
/// self-interference cancellation at `b`.
pub fn snr_a_to_b(power: f64, state: &ChannelState) -> f64 {
    let b2 = relay_gain_squared(power, state);
    b2 * state.gar() * state.gbr() * power / (b2 * state.gbr() + 1.0)
}

/// End-to-end received SNR of the `b → r → a` direction.
pub fn snr_b_to_a(power: f64, state: &ChannelState) -> f64 {
    let b2 = relay_gain_squared(power, state);
    b2 * state.gar() * state.gbr() * power / (b2 * state.gar() + 1.0)
}

/// The AF achievable rate pair at this power and channel.
///
/// # Panics
///
/// Panics if `power < 0`.
pub fn achievable_rates(power: f64, state: &ChannelState) -> AfRates {
    AfRates {
        ra: 0.5 * awgn_capacity(snr_a_to_b(power, state)),
        rb: 0.5 * awgn_capacity(snr_b_to_a(power, state)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::mabc;
    use crate::optimizer;

    fn fig4_state() -> ChannelState {
        ChannelState::new(0.19952623149688797, 1.0, 3.1622776601683795)
    }

    #[test]
    fn relay_power_constraint_met() {
        // β²·E|y_r|² = β²(P·Gar + P·Gbr + 1) = P.
        let p = 10.0;
        let s = fig4_state();
        let b2 = relay_gain_squared(p, &s);
        let relay_tx_power = b2 * (p * s.gar() + p * s.gbr() + 1.0);
        assert!((relay_tx_power - p).abs() < 1e-12);
    }

    #[test]
    fn af_within_cut_set_limits() {
        // Data processing: each direction is capped by both hops at half
        // time share.
        for p in [0.5, 5.0, 50.0] {
            let s = fig4_state();
            let r = achievable_rates(p, &s);
            assert!(r.ra <= 0.5 * awgn_capacity(p * s.gar()) + 1e-12);
            assert!(r.ra <= 0.5 * awgn_capacity(p * s.gbr()) + 1e-12);
            assert!(r.rb <= 0.5 * awgn_capacity(p * s.gbr()) + 1e-12);
            assert!(r.rb <= 0.5 * awgn_capacity(p * s.gar()) + 1e-12);
        }
    }

    #[test]
    fn df_beats_af_at_low_snr() {
        // Noise amplification dominates at low SNR: decode-and-forward
        // MABC (with optimised Δ) wins clearly.
        let p = 0.5;
        let s = fig4_state();
        let af = achievable_rates(p, &s).sum_rate();
        let df = optimizer::max_sum_rate(&mabc::capacity_constraints(p, &s))
            .unwrap()
            .objective;
        assert!(
            df > af * 1.2,
            "DF {df} should clearly beat AF {af} at low SNR"
        );
    }

    #[test]
    fn af_gap_narrows_with_snr() {
        let s = fig4_state();
        let rel_gap = |p: f64| {
            let af = achievable_rates(p, &s).sum_rate();
            let df = optimizer::max_sum_rate(&mabc::capacity_constraints(p, &s))
                .unwrap()
                .objective;
            (df - af) / df
        };
        let lo = rel_gap(1.0);
        let hi = rel_gap(1000.0);
        assert!(
            hi < lo,
            "relative DF-AF gap should shrink with SNR: {lo} -> {hi}"
        );
    }

    #[test]
    fn symmetric_channel_symmetric_rates() {
        let s = ChannelState::new(0.3, 2.0, 2.0);
        let r = achievable_rates(7.0, &s);
        assert!((r.ra - r.rb).abs() < 1e-12);
    }

    #[test]
    fn zero_power_zero_rates() {
        let r = achievable_rates(0.0, &fig4_state());
        assert_eq!(r.sum_rate(), 0.0);
    }

    #[test]
    fn monotone_in_power() {
        let s = fig4_state();
        let mut last = 0.0;
        for p in [0.1, 1.0, 10.0, 100.0] {
            let sum = achievable_rates(p, &s).sum_rate();
            assert!(sum > last);
            last = sum;
        }
    }
}
