//! Direct transmission (DT): the relayless two-way TDMA baseline.
//!
//! With a memoryless channel the capacity region (Section II-C of the
//! paper) is
//!
//! ```text
//! R_a ≤ Δ₁ · C(P·G_ab)        (a → b in phase 1)
//! R_b ≤ Δ₂ · C(P·G_ab)        (b → a in phase 2)
//! ```
//!
//! Inner and outer bounds coincide — this is the exact capacity region of
//! the strategy.

use crate::constraint::{ConstraintSet, RateConstraint};
use bcc_channel::ChannelState;
use bcc_info::awgn_capacity;

/// Builds the DT capacity constraints at power `power` and channel `state`.
///
/// # Panics
///
/// Panics if `power < 0`.
pub fn capacity_constraints(power: f64, state: &ChannelState) -> ConstraintSet {
    assert!(power >= 0.0, "transmit power must be non-negative");
    let c_ab = awgn_capacity(power * state.gab());
    let mut set = ConstraintSet::new(2, "DT capacity");
    set.push(RateConstraint::new(
        1.0,
        0.0,
        vec![c_ab, 0.0],
        "DT: b decodes Wa (phase 1 direct link)",
    ));
    set.push(RateConstraint::new(
        0.0,
        1.0,
        vec![0.0, c_ab],
        "DT: a decodes Wb (phase 2 direct link)",
    ));
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_num::approx_eq;

    #[test]
    fn symmetric_in_the_direct_gain_only() {
        // Relay gains must not matter for DT.
        let s1 = ChannelState::new(2.0, 100.0, 0.01);
        let s2 = ChannelState::new(2.0, 0.5, 7.0);
        assert_eq!(
            capacity_constraints(3.0, &s1),
            capacity_constraints(3.0, &s2)
        );
    }

    #[test]
    fn full_time_to_one_user_gives_point_to_point_capacity() {
        let state = ChannelState::new(1.0, 1.0, 1.0);
        let set = capacity_constraints(15.0, &state);
        // Δ = (1, 0): Ra can reach C(15) = 4 bits, Rb must be 0.
        assert!(set.all_satisfied(4.0, 0.0, &[1.0, 0.0], 1e-9));
        assert!(!set.all_satisfied(4.01, 0.0, &[1.0, 0.0], 1e-9));
        assert!(!set.all_satisfied(0.0, 0.1, &[1.0, 0.0], 1e-9));
    }

    #[test]
    fn equal_split_halves_each_rate() {
        let state = ChannelState::new(1.0, 1.0, 1.0);
        let set = capacity_constraints(15.0, &state);
        assert!(set.all_satisfied(2.0, 2.0, &[0.5, 0.5], 1e-9));
        assert!(!set.all_satisfied(2.1, 2.0, &[0.5, 0.5], 1e-9));
    }

    #[test]
    fn zero_power_kills_both_rates() {
        let set = capacity_constraints(0.0, &ChannelState::new(1.0, 1.0, 1.0));
        for c in set.constraints() {
            assert!(approx_eq(c.rhs(&[0.5, 0.5]), 0.0, 1e-12));
        }
    }
}
