//! Direct transmission (DT): the relayless two-way TDMA baseline.
//!
//! With a memoryless channel the capacity region (Section II-C of the
//! paper) is
//!
//! ```text
//! R_a ≤ Δ₁ · C(P·G_ab)        (a → b in phase 1)
//! R_b ≤ Δ₂ · C(P·G_ab)        (b → a in phase 2)
//! ```
//!
//! Inner and outer bounds coincide — this is the exact capacity region of
//! the strategy.

use crate::constraint::{ConstraintSet, RateConstraint};
use bcc_channel::{ChannelState, PowerSplit};

/// Builds the DT capacity constraints at power `power` and channel `state`.
///
/// # Panics
///
/// Panics if `power < 0`.
pub fn capacity_constraints(power: f64, state: &ChannelState) -> ConstraintSet {
    assert!(power >= 0.0, "transmit power must be non-negative");
    capacity_constraints_split(&PowerSplit::symmetric(power), state)
}

/// [`capacity_constraints`] with per-node powers: each direction of the
/// direct link is evaluated at the *transmitting* terminal's power (the
/// relay's allocation is wasted on DT, which is exactly what a power-
/// allocation search should discover).
pub fn capacity_constraints_split(powers: &PowerSplit, state: &ChannelState) -> ConstraintSet {
    let mut set = ConstraintSet::new(2, "");
    capacity_constraints_split_into(powers, state, &mut set);
    set
}

/// [`capacity_constraints_split`] rebuilding `set` in place (arena reuse —
/// no heap allocation after warm-up).
pub fn capacity_constraints_split_into(
    powers: &PowerSplit,
    state: &ChannelState,
    set: &mut ConstraintSet,
) {
    capacity_constraints_from_caps_into(&crate::bounds::LinkCaps::compute(powers, state), set)
}

/// [`capacity_constraints_split_into`] from precomputed link capacities.
pub fn capacity_constraints_from_caps_into(
    caps: &crate::bounds::LinkCaps,
    set: &mut ConstraintSet,
) {
    let c_a = caps.c_a_ab;
    let c_b = caps.c_b_ab;
    set.reset(2, "DT capacity");
    set.push(RateConstraint::new(
        1.0,
        0.0,
        [c_a, 0.0],
        "DT: b decodes Wa (phase 1 direct link)",
    ));
    set.push(RateConstraint::new(
        0.0,
        1.0,
        [0.0, c_b],
        "DT: a decodes Wb (phase 2 direct link)",
    ));
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_num::approx_eq;

    #[test]
    fn symmetric_in_the_direct_gain_only() {
        // Relay gains must not matter for DT.
        let s1 = ChannelState::new(2.0, 100.0, 0.01);
        let s2 = ChannelState::new(2.0, 0.5, 7.0);
        assert_eq!(
            capacity_constraints(3.0, &s1),
            capacity_constraints(3.0, &s2)
        );
    }

    #[test]
    fn full_time_to_one_user_gives_point_to_point_capacity() {
        let state = ChannelState::new(1.0, 1.0, 1.0);
        let set = capacity_constraints(15.0, &state);
        // Δ = (1, 0): Ra can reach C(15) = 4 bits, Rb must be 0.
        assert!(set.all_satisfied(4.0, 0.0, &[1.0, 0.0], 1e-9));
        assert!(!set.all_satisfied(4.01, 0.0, &[1.0, 0.0], 1e-9));
        assert!(!set.all_satisfied(0.0, 0.1, &[1.0, 0.0], 1e-9));
    }

    #[test]
    fn equal_split_halves_each_rate() {
        let state = ChannelState::new(1.0, 1.0, 1.0);
        let set = capacity_constraints(15.0, &state);
        assert!(set.all_satisfied(2.0, 2.0, &[0.5, 0.5], 1e-9));
        assert!(!set.all_satisfied(2.1, 2.0, &[0.5, 0.5], 1e-9));
    }

    #[test]
    fn split_reduces_to_symmetric_at_equal_powers() {
        let state = ChannelState::new(2.0, 1.0, 1.0);
        assert_eq!(
            capacity_constraints_split(&PowerSplit::symmetric(5.0), &state),
            capacity_constraints(5.0, &state)
        );
    }

    #[test]
    fn split_uses_transmitter_power_per_direction() {
        let state = ChannelState::new(1.0, 1.0, 1.0);
        let set = capacity_constraints_split(&PowerSplit::new(3.0, 15.0, 100.0), &state);
        // Phase 1 (a transmits) sees p_a, phase 2 (b transmits) sees p_b;
        // the relay power never appears.
        assert!(approx_eq(set.constraints()[0].phase_coefs[0], 2.0, 1e-12));
        assert!(approx_eq(set.constraints()[1].phase_coefs[1], 4.0, 1e-12));
    }

    #[test]
    fn zero_power_kills_both_rates() {
        let set = capacity_constraints(0.0, &ChannelState::new(1.0, 1.0, 1.0));
        for c in set.constraints() {
            assert!(approx_eq(c.rhs(&[0.5, 0.5]), 0.0, 1e-12));
        }
    }
}
