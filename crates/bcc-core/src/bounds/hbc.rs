//! Theorems 5 and 6 — achievable region and outer bound of HBC.
//!
//! The hybrid broadcast protocol has four phases: `a` alone (Δ₁), `b`
//! alone (Δ₂), a joint MAC phase `{a,b} → r` (Δ₃), and the relay broadcast
//! (Δ₄). Setting Δ₁ = Δ₂ = 0 recovers MABC; setting Δ₃ = 0 recovers TDBC —
//! which is why the paper's headline observation that HBC is *sometimes
//! strictly better than both* is interesting.
//!
//! Gaussian inner bound (Theorem 5):
//!
//! ```text
//! R_a ≤ min( Δ₁·C(P·G_ar) + Δ₃·C(P·G_ar),  Δ₁·C(P·G_ab) + Δ₄·C(P·G_br) )
//! R_b ≤ min( Δ₂·C(P·G_br) + Δ₃·C(P·G_br),  Δ₂·C(P·G_ab) + Δ₄·C(P·G_ar) )
//! R_a + R_b ≤ Δ₁·C(P·G_ar) + Δ₂·C(P·G_br) + Δ₃·C(P·(G_ar + G_br))
//! ```
//!
//! **Theorem 6 (outer).** The paper does not evaluate this bound
//! numerically: the optimum over the *joint* phase-3 input distribution
//! `p⁽³⁾(x_a, x_b)` is open, and with correlated inputs neither Gaussian
//! optimality nor a single dominating correlation is known. Mirroring that,
//! [`outer_constraint_family`] returns the **Gaussian-restricted** family
//! parameterised by the phase-3 correlation coefficient `ρ ∈ [0, 1]`; the
//! union over `ρ` is an outer bound *for jointly-Gaussian inputs only* and
//! is reported as a heuristic reference curve (DESIGN.md §2), not as the
//! true converse.

use crate::constraint::{ConstraintSet, RateConstraint};
use bcc_channel::{ChannelState, PowerSplit};
use bcc_info::awgn_capacity;
use bcc_info::gaussian::{
    mac_individual_capacity_correlated, mac_sum_capacity_correlated, two_receiver_capacity,
};

/// Builds the Theorem-5 achievable constraints.
///
/// # Panics
///
/// Panics if `power < 0`.
pub fn inner_constraints(power: f64, state: &ChannelState) -> ConstraintSet {
    assert!(power >= 0.0, "transmit power must be non-negative");
    inner_constraints_split(&PowerSplit::symmetric(power), state)
}

/// [`inner_constraints`] with per-node powers: terminal phases (1–3) see
/// `p_a`/`p_b`, the relay broadcast (phase 4) sees `p_r`.
pub fn inner_constraints_split(powers: &PowerSplit, state: &ChannelState) -> ConstraintSet {
    let mut set = ConstraintSet::new(4, "");
    inner_constraints_split_into(powers, state, &mut set);
    set
}

/// [`inner_constraints_split`] rebuilding `set` in place (arena reuse —
/// no heap allocation after warm-up).
pub fn inner_constraints_split_into(
    powers: &PowerSplit,
    state: &ChannelState,
    set: &mut ConstraintSet,
) {
    inner_constraints_from_caps_into(&crate::bounds::LinkCaps::compute(powers, state), set)
}

/// [`inner_constraints_split_into`] from precomputed link capacities.
pub fn inner_constraints_from_caps_into(caps: &crate::bounds::LinkCaps, set: &mut ConstraintSet) {
    let c_a_ab = caps.c_a_ab;
    let c_b_ab = caps.c_b_ab;
    let c_a_ar = caps.c_a_ar;
    let c_b_br = caps.c_b_br;
    let c_r_ar = caps.c_r_ar;
    let c_r_br = caps.c_r_br;
    let c_mac = caps.c_mac;

    set.reset(4, "HBC achievable (Thm 5)");
    set.push(RateConstraint::new(
        1.0,
        0.0,
        [c_a_ar, 0.0, c_a_ar, 0.0],
        "Thm 5: relay decodes Wa (phases 1 and 3)",
    ));
    set.push(RateConstraint::new(
        1.0,
        0.0,
        [c_a_ab, 0.0, 0.0, c_r_br],
        "Thm 5: b decodes Wa from side info + broadcast",
    ));
    set.push(RateConstraint::new(
        0.0,
        1.0,
        [0.0, c_b_br, c_b_br, 0.0],
        "Thm 5: relay decodes Wb (phases 2 and 3)",
    ));
    set.push(RateConstraint::new(
        0.0,
        1.0,
        [0.0, c_b_ab, 0.0, c_r_ar],
        "Thm 5: a decodes Wb from side info + broadcast",
    ));
    set.push(RateConstraint::new(
        1.0,
        1.0,
        [c_a_ar, c_b_br, c_mac, 0.0],
        "Thm 5: relay sum rate across phases 1-3",
    ));
}

/// One member of the Gaussian-restricted Theorem-6 family at phase-3 input
/// correlation `rho`.
///
/// # Panics
///
/// Panics if `power < 0` or `rho ∉ [0, 1]`.
pub fn outer_constraints_with_rho(power: f64, state: &ChannelState, rho: f64) -> ConstraintSet {
    assert!(power >= 0.0, "transmit power must be non-negative");
    outer_constraints_with_rho_split(&PowerSplit::symmetric(power), state, rho)
}

/// [`outer_constraints_with_rho`] with per-node powers.
///
/// # Panics
///
/// Panics if `rho ∉ [0, 1]`.
pub fn outer_constraints_with_rho_split(
    powers: &PowerSplit,
    state: &ChannelState,
    rho: f64,
) -> ConstraintSet {
    let mut set = ConstraintSet::new(4, "");
    outer_constraints_with_rho_split_into(powers, state, rho, &mut set);
    set
}

/// [`outer_constraints_with_rho_split`] rebuilding `set` in place (arena
/// reuse — the formatted family name is written into the set's existing
/// name buffer, so steady-state rebuilds perform no heap allocation).
///
/// # Panics
///
/// Panics if `rho ∉ [0, 1]`.
pub fn outer_constraints_with_rho_split_into(
    powers: &PowerSplit,
    state: &ChannelState,
    rho: f64,
    set: &mut ConstraintSet,
) {
    assert!(
        (0.0..=1.0).contains(&rho),
        "correlation out of range: {rho}"
    );
    let snr_ar = powers.p_a() * state.gar();
    let snr_br = powers.p_b() * state.gbr();
    let c_a_ab = awgn_capacity(powers.p_a() * state.gab());
    let c_b_ab = awgn_capacity(powers.p_b() * state.gab());
    let c_a_ar = awgn_capacity(snr_ar);
    let c_b_br = awgn_capacity(snr_br);
    let c_r_ar = awgn_capacity(powers.p_r() * state.gar());
    let c_r_br = awgn_capacity(powers.p_r() * state.gbr());
    let c_a_cut = two_receiver_capacity(snr_ar, powers.p_a() * state.gab());
    let c_b_cut = two_receiver_capacity(snr_br, powers.p_b() * state.gab());
    let c_ar_rho = mac_individual_capacity_correlated(snr_ar, rho);
    let c_br_rho = mac_individual_capacity_correlated(snr_br, rho);
    let c_mac_rho = mac_sum_capacity_correlated(snr_ar, snr_br, rho);

    set.reset_fmt(4, format_args!("HBC outer (Thm 6, Gaussian, ρ={rho:.3})"));
    set.push(RateConstraint::new(
        1.0,
        0.0,
        [c_a_cut, 0.0, c_ar_rho, 0.0],
        "Thm 6: cut {a} — joint observation + phase-3 MAC",
    ));
    set.push(RateConstraint::new(
        1.0,
        0.0,
        [c_a_ab, 0.0, 0.0, c_r_br],
        "Thm 6: cut {a,r} — b's total information about Wa",
    ));
    set.push(RateConstraint::new(
        0.0,
        1.0,
        [0.0, c_b_cut, c_br_rho, 0.0],
        "Thm 6: cut {b} — joint observation + phase-3 MAC",
    ));
    set.push(RateConstraint::new(
        0.0,
        1.0,
        [0.0, c_b_ab, 0.0, c_r_ar],
        "Thm 6: cut {b,r} — a's total information about Wb",
    ));
    set.push(RateConstraint::new(
        1.0,
        1.0,
        [c_a_ar, c_b_br, c_mac_rho, 0.0],
        "Thm 6: relay decodes both (sum rate, phases 1-3)",
    ));
}

/// The ρ-grid family whose union approximates the Gaussian-restricted
/// Theorem-6 outer region. `grid` points are spread uniformly over
/// `ρ ∈ [0, 1]` (endpoints included).
///
/// # Panics
///
/// Panics if `grid < 2`.
pub fn outer_constraint_family(
    power: f64,
    state: &ChannelState,
    grid: usize,
) -> Vec<ConstraintSet> {
    assert!(power >= 0.0, "transmit power must be non-negative");
    outer_constraint_family_split(&PowerSplit::symmetric(power), state, grid)
}

/// [`outer_constraint_family`] with per-node powers.
///
/// # Panics
///
/// Panics if `grid < 2`.
pub fn outer_constraint_family_split(
    powers: &PowerSplit,
    state: &ChannelState,
    grid: usize,
) -> Vec<ConstraintSet> {
    assert!(grid >= 2, "need at least the two endpoint correlations");
    (0..grid)
        .map(|i| {
            let rho = i as f64 / (grid - 1) as f64;
            outer_constraints_with_rho_split(powers, state, rho)
        })
        .collect()
}

/// [`outer_constraint_family_split`] rebuilding the family inside a
/// [`ConstraintBuf`](crate::constraint::ConstraintBuf) arena (the caller
/// must have called [`ConstraintBuf::begin`](crate::constraint::ConstraintBuf::begin)).
///
/// # Panics
///
/// Panics if `grid < 2`.
pub fn outer_constraint_family_split_into(
    powers: &PowerSplit,
    state: &ChannelState,
    grid: usize,
    buf: &mut crate::constraint::ConstraintBuf,
) {
    assert!(grid >= 2, "need at least the two endpoint correlations");
    for i in 0..grid {
        let rho = i as f64 / (grid - 1) as f64;
        outer_constraints_with_rho_split_into(powers, state, rho, buf.next_set());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig4_state() -> ChannelState {
        ChannelState::new(0.19952623149688797, 1.0, 3.1622776601683795)
    }

    #[test]
    fn mabc_is_embedded_at_zero_uplink_phases() {
        // Δ = (0, 0, δ, 1-δ) must reproduce MABC feasibility exactly.
        let p = 10.0;
        let s = fig4_state();
        let hbc = inner_constraints(p, &s);
        let mabc = crate::bounds::mabc::capacity_constraints(p, &s);
        for delta in [0.3, 0.5, 0.7] {
            let d_hbc = [0.0, 0.0, delta, 1.0 - delta];
            let d_mabc = [delta, 1.0 - delta];
            for i in 0..15 {
                for j in 0..15 {
                    let (ra, rb) = (i as f64 * 0.15, j as f64 * 0.15);
                    assert_eq!(
                        hbc.all_satisfied(ra, rb, &d_hbc, 1e-12),
                        mabc.all_satisfied(ra, rb, &d_mabc, 1e-12),
                        "({ra},{rb}) delta={delta}"
                    );
                }
            }
        }
    }

    #[test]
    fn tdbc_is_embedded_at_zero_mac_phase() {
        // Δ = (d1, d2, 0, d3): HBC row set must accept exactly the TDBC
        // achievable points (the sum-rate row is implied by the two relay
        // rows when Δ3 = 0... it is *looser*, so check inner ⊆ hbc).
        let p = 10.0;
        let s = fig4_state();
        let hbc = inner_constraints(p, &s);
        let tdbc = crate::bounds::tdbc::inner_constraints(p, &s);
        let d3 = [0.4, 0.3, 0.3];
        let d4 = [0.4, 0.3, 0.0, 0.3];
        for i in 0..15 {
            for j in 0..15 {
                let (ra, rb) = (i as f64 * 0.15, j as f64 * 0.15);
                if tdbc.all_satisfied(ra, rb, &d3, 1e-12) {
                    assert!(
                        hbc.all_satisfied(ra, rb, &d4, 1e-9),
                        "TDBC point ({ra},{rb}) rejected by HBC"
                    );
                }
            }
        }
    }

    #[test]
    fn inner_implies_every_outer_family_member() {
        let p = 10.0;
        let s = fig4_state();
        let inner = inner_constraints(p, &s);
        let family = outer_constraint_family(p, &s, 5);
        let d = [0.25, 0.25, 0.25, 0.25];
        for i in 0..12 {
            for j in 0..12 {
                let (ra, rb) = (i as f64 * 0.2, j as f64 * 0.2);
                if inner.all_satisfied(ra, rb, &d, 1e-12) {
                    // Inner point must be inside the union — in fact it is
                    // inside the ρ=0 member already.
                    assert!(
                        family[0].all_satisfied(ra, rb, &d, 1e-9),
                        "inner point ({ra},{rb}) escapes ρ=0 outer member"
                    );
                }
            }
        }
    }

    #[test]
    fn split_reduces_to_symmetric_at_equal_powers() {
        let s = fig4_state();
        let sym = PowerSplit::symmetric(10.0);
        assert_eq!(
            inner_constraints_split(&sym, &s),
            inner_constraints(10.0, &s)
        );
        assert_eq!(
            outer_constraints_with_rho_split(&sym, &s, 0.4),
            outer_constraints_with_rho(10.0, &s, 0.4)
        );
    }

    #[test]
    fn split_mabc_embedding_survives_asymmetric_powers() {
        // Δ = (0, 0, δ, 1−δ) must reproduce the split MABC region too.
        let s = fig4_state();
        let powers = PowerSplit::new(3.0, 11.0, 19.0);
        let hbc = inner_constraints_split(&powers, &s);
        let mabc = crate::bounds::mabc::capacity_constraints_split(&powers, &s);
        let delta = 0.55;
        let d_hbc = [0.0, 0.0, delta, 1.0 - delta];
        let d_mabc = [delta, 1.0 - delta];
        for i in 0..15 {
            for j in 0..15 {
                let (ra, rb) = (i as f64 * 0.15, j as f64 * 0.15);
                assert_eq!(
                    hbc.all_satisfied(ra, rb, &d_hbc, 1e-12),
                    mabc.all_satisfied(ra, rb, &d_mabc, 1e-12),
                    "({ra},{rb})"
                );
            }
        }
    }

    #[test]
    fn rho_trades_individual_for_sum() {
        let p = 10.0;
        let s = fig4_state();
        let lo = outer_constraints_with_rho(p, &s, 0.0);
        let hi = outer_constraints_with_rho(p, &s, 0.9);
        // Sum-rate phase-3 coefficient increases with ρ…
        assert!(hi.constraints()[4].phase_coefs[2] > lo.constraints()[4].phase_coefs[2]);
        // …while the individual phase-3 coefficient decreases.
        assert!(hi.constraints()[0].phase_coefs[2] < lo.constraints()[0].phase_coefs[2]);
    }

    #[test]
    fn family_grid_endpoints() {
        let fam = outer_constraint_family(1.0, &fig4_state(), 11);
        assert_eq!(fam.len(), 11);
        assert!(fam[0].name.contains("ρ=0.000"));
        assert!(fam[10].name.contains("ρ=1.000"));
    }

    #[test]
    #[should_panic(expected = "at least the two endpoint")]
    fn tiny_grid_rejected() {
        let _ = outer_constraint_family(1.0, &fig4_state(), 1);
    }
}
