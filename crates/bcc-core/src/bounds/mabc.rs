//! Theorem 2 — the capacity region of the MABC protocol.
//!
//! Phase 1 (duration Δ₁): `a` and `b` transmit simultaneously; the relay
//! decodes **both** messages (a multiple-access channel). Phase 2
//! (duration Δ₂): the relay broadcasts `w_r = ŵ_a ⊕ ŵ_b` in the group
//! `L = max(⌊2^{nR_a}⌋, ⌊2^{nR_b}⌋)`; each terminal strips its own message
//! off the XOR. Because the terminals never listen while the other
//! transmits, there is **no side information** and the direct gain `G_ab`
//! does not appear anywhere.
//!
//! In the Gaussian case the region is
//!
//! ```text
//! R_a ≤ min( Δ₁·C(P·G_ar), Δ₂·C(P·G_br) )
//! R_b ≤ min( Δ₁·C(P·G_br), Δ₂·C(P·G_ar) )
//! R_a + R_b ≤ Δ₁·C(P·G_ar + P·G_br)
//! ```
//!
//! Inner and outer bounds **coincide** (the paper's headline exact result);
//! [`capacity_constraints`] therefore serves both. Per the remark after
//! Theorem 2, if the relay is *not* required to decode both messages,
//! dropping the sum-rate row still upper-bounds any such scheme —
//! [`relaxed_outer_constraints`] exposes that variant.

use crate::constraint::{ConstraintSet, RateConstraint};
use bcc_channel::{ChannelState, PowerSplit};

/// Builds the Theorem-2 capacity region constraints.
///
/// # Panics
///
/// Panics if `power < 0`.
pub fn capacity_constraints(power: f64, state: &ChannelState) -> ConstraintSet {
    assert!(power >= 0.0, "transmit power must be non-negative");
    capacity_constraints_split(&PowerSplit::symmetric(power), state)
}

/// [`capacity_constraints`] with per-node powers: the MAC-phase terms see
/// the terminals' powers, the broadcast-phase terms the relay's.
pub fn capacity_constraints_split(powers: &PowerSplit, state: &ChannelState) -> ConstraintSet {
    let mut set = ConstraintSet::new(2, "");
    capacity_constraints_split_into(powers, state, &mut set);
    set
}

/// [`capacity_constraints_split`] rebuilding `set` in place (arena reuse —
/// no heap allocation after warm-up).
pub fn capacity_constraints_split_into(
    powers: &PowerSplit,
    state: &ChannelState,
    set: &mut ConstraintSet,
) {
    capacity_constraints_from_caps_into(&crate::bounds::LinkCaps::compute(powers, state), set)
}

/// [`capacity_constraints_split_into`] from precomputed link capacities.
pub fn capacity_constraints_from_caps_into(
    caps: &crate::bounds::LinkCaps,
    set: &mut ConstraintSet,
) {
    let c_ar = caps.c_a_ar;
    let c_br = caps.c_b_br;
    let c_bc_b = caps.c_r_br;
    let c_bc_a = caps.c_r_ar;
    let c_mac = caps.c_mac;

    set.reset(2, "MABC capacity (Thm 2)");
    set.push(RateConstraint::new(
        1.0,
        0.0,
        [c_ar, 0.0],
        "Thm 2: relay decodes Wa in MAC phase (cut {a})",
    ));
    set.push(RateConstraint::new(
        1.0,
        0.0,
        [0.0, c_bc_b],
        "Thm 2: b decodes broadcast (cut {a,r})",
    ));
    set.push(RateConstraint::new(
        0.0,
        1.0,
        [c_br, 0.0],
        "Thm 2: relay decodes Wb in MAC phase (cut {b})",
    ));
    set.push(RateConstraint::new(
        0.0,
        1.0,
        [0.0, c_bc_a],
        "Thm 2: a decodes broadcast (cut {b,r})",
    ));
    set.push(RateConstraint::new(
        1.0,
        1.0,
        [c_mac, 0.0],
        "Thm 2: MAC sum rate at relay (cut {a,b})",
    ));
}

/// The relaxed outer bound of the remark after Theorem 2 (relay not
/// required to decode both messages): the Theorem-2 region **without** the
/// MAC sum-rate row.
pub fn relaxed_outer_constraints(power: f64, state: &ChannelState) -> ConstraintSet {
    let full = capacity_constraints(power, state);
    let mut set = ConstraintSet::new(2, "MABC relaxed outer (Thm 2 remark)");
    for c in full.constraints() {
        if !(c.ra == 1.0 && c.rb == 1.0) {
            set.push(c.clone());
        }
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_info::awgn_capacity;
    use bcc_num::approx_eq;

    fn fig4_state() -> ChannelState {
        // Fig. 4 gains: Gab = -7 dB, Gar = 0 dB, Gbr = 5 dB.
        ChannelState::new(0.19952623149688797, 1.0, 3.1622776601683795)
    }

    #[test]
    fn direct_gain_never_appears() {
        let p = 10.0;
        let weak_direct = ChannelState::new(1e-6, 2.0, 3.0);
        let strong_direct = ChannelState::new(1e6, 2.0, 3.0);
        assert_eq!(
            capacity_constraints(p, &weak_direct),
            capacity_constraints(p, &strong_direct),
            "MABC must be blind to Gab (no side information)"
        );
    }

    #[test]
    fn row_count_and_shape() {
        let set = capacity_constraints(1.0, &fig4_state());
        assert_eq!(set.constraints().len(), 5);
        assert_eq!(set.num_phases(), 2);
        // Exactly one sum-rate row.
        let sums = set
            .constraints()
            .iter()
            .filter(|c| c.ra == 1.0 && c.rb == 1.0)
            .count();
        assert_eq!(sums, 1);
    }

    #[test]
    fn mac_sum_row_is_subadditive_bound() {
        let p = 10.0;
        let s = fig4_state();
        let set = capacity_constraints(p, &s);
        let sum_row = set
            .constraints()
            .iter()
            .find(|c| c.ra == 1.0 && c.rb == 1.0)
            .expect("sum row");
        let c_ar = awgn_capacity(p * s.gar());
        let c_br = awgn_capacity(p * s.gbr());
        // C(x+y) ≤ C(x) + C(y): the MAC constraint binds below the naive sum.
        assert!(sum_row.phase_coefs[0] <= c_ar + c_br);
        assert!(sum_row.phase_coefs[0] >= c_ar.max(c_br));
    }

    #[test]
    fn symmetric_network_symmetric_region() {
        let s = ChannelState::new(1.0, 2.5, 2.5);
        let set = capacity_constraints(4.0, &s);
        // With Gar = Gbr, swapping (Ra, Rb) leaves satisfaction unchanged.
        let d = [0.6, 0.4];
        for (ra, rb) in [(0.3, 0.9), (0.9, 0.3), (0.5, 0.5)] {
            assert_eq!(
                set.all_satisfied(ra, rb, &d, 1e-12),
                set.all_satisfied(rb, ra, &d, 1e-12)
            );
        }
    }

    #[test]
    fn relaxed_outer_drops_only_sum_row() {
        let s = fig4_state();
        let full = capacity_constraints(2.0, &s);
        let relaxed = relaxed_outer_constraints(2.0, &s);
        assert_eq!(relaxed.constraints().len(), full.constraints().len() - 1);
        assert!(relaxed
            .constraints()
            .iter()
            .all(|c| !(c.ra == 1.0 && c.rb == 1.0)));
    }

    #[test]
    fn split_reduces_to_symmetric_at_equal_powers() {
        let s = fig4_state();
        assert_eq!(
            capacity_constraints_split(&PowerSplit::symmetric(7.0), &s),
            capacity_constraints(7.0, &s)
        );
    }

    #[test]
    fn silent_relay_kills_broadcast_rows_only() {
        // p_r = 0: the MAC-phase rows survive, the broadcast rows collapse.
        let s = fig4_state();
        let set = capacity_constraints_split(&PowerSplit::new(10.0, 10.0, 0.0), &s);
        assert!(set.constraints()[0].phase_coefs[0] > 0.0, "MAC row alive");
        assert_eq!(set.constraints()[1].phase_coefs[1], 0.0, "b broadcast dead");
        assert_eq!(set.constraints()[3].phase_coefs[1], 0.0, "a broadcast dead");
    }

    #[test]
    fn weak_relay_link_throttles_rate() {
        // Gbr tiny: b can hardly be served, and the relay can hardly hear b.
        let s = ChannelState::new(1.0, 10.0, 1e-9);
        let set = capacity_constraints(10.0, &s);
        // Ra ≤ Δ2 C(P·Gbr) ≈ 0 → at Δ=(0.5,0.5) any visible Ra violates.
        assert!(!set.all_satisfied(0.01, 0.0, &[0.5, 0.5], 1e-12));
        assert!(set.all_satisfied(1e-10, 0.0, &[0.5, 0.5], 1e-9));
    }

    #[test]
    fn capacity_values_at_unit_gains() {
        // P = 1, all gains 1: C(1) = 1, C(2) = log2(3).
        let set = capacity_constraints(1.0, &ChannelState::new(1.0, 1.0, 1.0));
        let sum_row = &set.constraints()[4];
        assert!(approx_eq(sum_row.phase_coefs[0], 3f64.log2(), 1e-12));
        assert!(approx_eq(set.constraints()[0].phase_coefs[0], 1.0, 1e-12));
    }
}
