//! Theorem-by-theorem constraint builders for the Gaussian case.
//!
//! Every submodule evaluates one protocol's inner/outer bound at a given
//! transmit power `P` and channel state `(G_ab, G_ar, G_br)`, producing a
//! [`ConstraintSet`] whose rows are
//! linear in `(R_a, R_b, Δ_1..Δ_L)`:
//!
//! * [`dt`] — direct transmission (two-way TDMA baseline, no relay).
//! * [`mabc`] — **Theorem 2**: the exact capacity region of the two-phase
//!   multiple-access broadcast protocol.
//! * [`tdbc`] — **Theorem 3** (achievable) and **Theorem 4** (outer) for
//!   the three-phase time-division broadcast protocol.
//! * [`hbc`] — **Theorem 5** (achievable) and the Gaussian-restricted
//!   **Theorem 6** family (outer, parameterised by the phase-3 input
//!   correlation ρ) for the four-phase hybrid protocol.
//!
//! Two baselines beyond the paper's theorems round out the comparison:
//!
//! * [`naive`] — four-phase forwarding without network coding
//!   (Fig. 1(ii)), provably contained in the MABC region.
//! * [`af`] — two-phase amplify-and-forward (the paper's refs \[7\]–\[9\]),
//!   the non-decoding competitor to Theorem 2.
//!
//! All mutual informations are evaluated with jointly Gaussian codebooks,
//! which maximises each term individually under the per-phase power
//! constraint (the argument the paper uses to justify `|Q| = 1` in
//! Section IV).

pub mod af;
pub mod dt;
pub mod hbc;
pub mod mabc;
pub mod naive;
pub mod tdbc;

use crate::constraint::{ConstraintBuf, ConstraintSet};
use crate::protocol::{Bound, Protocol};
use bcc_channel::{ChannelState, PowerSplit};
use bcc_info::awgn_capacity;
use bcc_info::gaussian::mac_sum_capacity;

/// The seven distinct link capacities every **inner** bound of the four
/// protocols is assembled from, evaluated once per operating point.
///
/// A full-protocol grid point used to evaluate `log2(1 + SNR)` 22 times
/// across the four builders; these seven values cover all of them
/// (outer bounds add cut/correlated terms and stay on the direct
/// builders). [`SolveCtx`](crate::kernel::SolveCtx) memoises one
/// `LinkCaps` per `(powers, state)`, so the per-point cost across
/// protocols is paid once. Each field uses exactly the expression the
/// direct builders use, so cached and uncached builds are bit-identical.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkCaps {
    /// `C(p_a·G_ab)` — a's direct link.
    pub c_a_ab: f64,
    /// `C(p_b·G_ab)` — b's direct link.
    pub c_b_ab: f64,
    /// `C(p_a·G_ar)` — a's relay uplink.
    pub c_a_ar: f64,
    /// `C(p_b·G_br)` — b's relay uplink.
    pub c_b_br: f64,
    /// `C(p_r·G_ar)` — relay broadcast towards a.
    pub c_r_ar: f64,
    /// `C(p_r·G_br)` — relay broadcast towards b.
    pub c_r_br: f64,
    /// `C(p_a·G_ar + p_b·G_br)` — the MAC sum capacity at the relay.
    pub c_mac: f64,
}

impl LinkCaps {
    /// Evaluates the seven capacities at one operating point.
    pub fn compute(powers: &PowerSplit, state: &ChannelState) -> Self {
        let snr_ar = powers.p_a() * state.gar();
        let snr_br = powers.p_b() * state.gbr();
        LinkCaps {
            c_a_ab: awgn_capacity(powers.p_a() * state.gab()),
            c_b_ab: awgn_capacity(powers.p_b() * state.gab()),
            c_a_ar: awgn_capacity(snr_ar),
            c_b_br: awgn_capacity(snr_br),
            c_r_ar: awgn_capacity(powers.p_r() * state.gar()),
            c_r_br: awgn_capacity(powers.p_r() * state.gbr()),
            c_mac: mac_sum_capacity(snr_ar, snr_br),
        }
    }
}

/// Builds the inner (achievable) constraint set of `protocol` from
/// precomputed [`LinkCaps`] — the allocation-free per-point hot path.
pub fn inner_constraints_from_caps_into(
    protocol: Protocol,
    caps: &LinkCaps,
    set: &mut ConstraintSet,
) {
    match protocol {
        Protocol::DirectTransmission => dt::capacity_constraints_from_caps_into(caps, set),
        Protocol::Mabc => mabc::capacity_constraints_from_caps_into(caps, set),
        Protocol::Tdbc => tdbc::inner_constraints_from_caps_into(caps, set),
        Protocol::Hbc => hbc::inner_constraints_from_caps_into(caps, set),
    }
}

/// Dispatches to the right theorem for `(protocol, bound)` at the paper's
/// common per-node power `P` — shorthand for [`constraint_sets_split`]
/// with a symmetric split.
///
/// # Panics
///
/// Panics if `power < 0`.
pub fn constraint_sets(
    protocol: Protocol,
    bound: Bound,
    power: f64,
    state: &ChannelState,
) -> Vec<ConstraintSet> {
    assert!(power >= 0.0, "transmit power must be non-negative");
    constraint_sets_split(protocol, bound, &PowerSplit::symmetric(power), state)
}

/// Grid resolution of the HBC Theorem-6 ρ-family (the region is the union
/// over the correlation grid).
const HBC_OUTER_RHO_GRID: usize = 33;

/// Dispatches to the right theorem for `(protocol, bound)` with per-node
/// transmit powers — the entry point of the power-allocation studies.
///
/// For [`Protocol::Hbc`] with [`Bound::Outer`] this returns the
/// **ρ-family** of Gaussian-restricted Theorem-6 sets (the region is their
/// union); every other combination returns a single set. The paper itself
/// declines to evaluate the HBC outer bound numerically because the optimal
/// joint phase-3 input distribution is unknown — see DESIGN.md §2 for why
/// the Gaussian-restricted family is reported instead.
pub fn constraint_sets_split(
    protocol: Protocol,
    bound: Bound,
    powers: &PowerSplit,
    state: &ChannelState,
) -> Vec<ConstraintSet> {
    let mut buf = ConstraintBuf::new();
    constraint_sets_split_into(protocol, bound, powers, state, &mut buf);
    buf.into_sets()
}

/// [`constraint_sets_split`] rebuilding the family inside a reusable
/// [`ConstraintBuf`] arena and returning the built slice — the batch hot
/// loops' entry point: after the first call through a given arena, no heap
/// allocation is performed per rebuild.
pub fn constraint_sets_split_into<'a>(
    protocol: Protocol,
    bound: Bound,
    powers: &PowerSplit,
    state: &ChannelState,
    buf: &'a mut ConstraintBuf,
) -> &'a [ConstraintSet] {
    buf.begin();
    match (protocol, bound) {
        (Protocol::DirectTransmission, _) => {
            dt::capacity_constraints_split_into(powers, state, buf.next_set());
        }
        (Protocol::Mabc, _) => {
            mabc::capacity_constraints_split_into(powers, state, buf.next_set());
        }
        (Protocol::Tdbc, Bound::Inner) => {
            tdbc::inner_constraints_split_into(powers, state, buf.next_set());
        }
        (Protocol::Tdbc, Bound::Outer) => {
            tdbc::outer_constraints_split_into(powers, state, buf.next_set());
        }
        (Protocol::Hbc, Bound::Inner) => {
            hbc::inner_constraints_split_into(powers, state, buf.next_set());
        }
        (Protocol::Hbc, Bound::Outer) => {
            hbc::outer_constraint_family_split_into(powers, state, HBC_OUTER_RHO_GRID, buf);
        }
    }
    buf.sets()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state() -> ChannelState {
        ChannelState::new(0.19952623149688797, 1.0, 3.1622776601683795)
    }

    #[test]
    fn dispatch_phase_counts() {
        for proto in Protocol::ALL {
            for bound in [Bound::Inner, Bound::Outer] {
                for set in constraint_sets(proto, bound, 10.0, &state()) {
                    assert_eq!(set.num_phases(), proto.num_phases(), "{proto} {bound}");
                    assert!(!set.constraints().is_empty());
                }
            }
        }
    }

    #[test]
    fn hbc_outer_is_a_family() {
        let sets = constraint_sets(Protocol::Hbc, Bound::Outer, 10.0, &state());
        assert!(sets.len() > 1, "HBC outer should be a ρ-family");
        let singles = constraint_sets(Protocol::Tdbc, Bound::Outer, 10.0, &state());
        assert_eq!(singles.len(), 1);
    }
}
