//! Theorem-by-theorem constraint builders for the Gaussian case.
//!
//! Every submodule evaluates one protocol's inner/outer bound at a given
//! transmit power `P` and channel state `(G_ab, G_ar, G_br)`, producing a
//! [`ConstraintSet`] whose rows are
//! linear in `(R_a, R_b, Δ_1..Δ_L)`:
//!
//! * [`dt`] — direct transmission (two-way TDMA baseline, no relay).
//! * [`mabc`] — **Theorem 2**: the exact capacity region of the two-phase
//!   multiple-access broadcast protocol.
//! * [`tdbc`] — **Theorem 3** (achievable) and **Theorem 4** (outer) for
//!   the three-phase time-division broadcast protocol.
//! * [`hbc`] — **Theorem 5** (achievable) and the Gaussian-restricted
//!   **Theorem 6** family (outer, parameterised by the phase-3 input
//!   correlation ρ) for the four-phase hybrid protocol.
//!
//! Two baselines beyond the paper's theorems round out the comparison:
//!
//! * [`naive`] — four-phase forwarding without network coding
//!   (Fig. 1(ii)), provably contained in the MABC region.
//! * [`af`] — two-phase amplify-and-forward (the paper's refs \[7\]–\[9\]),
//!   the non-decoding competitor to Theorem 2.
//!
//! All mutual informations are evaluated with jointly Gaussian codebooks,
//! which maximises each term individually under the per-phase power
//! constraint (the argument the paper uses to justify `|Q| = 1` in
//! Section IV).

pub mod af;
pub mod dt;
pub mod hbc;
pub mod mabc;
pub mod naive;
pub mod tdbc;

use crate::constraint::ConstraintSet;
use crate::protocol::{Bound, Protocol};
use bcc_channel::{ChannelState, PowerSplit};

/// Dispatches to the right theorem for `(protocol, bound)` at the paper's
/// common per-node power `P` — shorthand for [`constraint_sets_split`]
/// with a symmetric split.
///
/// # Panics
///
/// Panics if `power < 0`.
pub fn constraint_sets(
    protocol: Protocol,
    bound: Bound,
    power: f64,
    state: &ChannelState,
) -> Vec<ConstraintSet> {
    assert!(power >= 0.0, "transmit power must be non-negative");
    constraint_sets_split(protocol, bound, &PowerSplit::symmetric(power), state)
}

/// Dispatches to the right theorem for `(protocol, bound)` with per-node
/// transmit powers — the entry point of the power-allocation studies.
///
/// For [`Protocol::Hbc`] with [`Bound::Outer`] this returns the
/// **ρ-family** of Gaussian-restricted Theorem-6 sets (the region is their
/// union); every other combination returns a single set. The paper itself
/// declines to evaluate the HBC outer bound numerically because the optimal
/// joint phase-3 input distribution is unknown — see DESIGN.md §2 for why
/// the Gaussian-restricted family is reported instead.
pub fn constraint_sets_split(
    protocol: Protocol,
    bound: Bound,
    powers: &PowerSplit,
    state: &ChannelState,
) -> Vec<ConstraintSet> {
    match (protocol, bound) {
        (Protocol::DirectTransmission, _) => vec![dt::capacity_constraints_split(powers, state)],
        (Protocol::Mabc, _) => vec![mabc::capacity_constraints_split(powers, state)],
        (Protocol::Tdbc, Bound::Inner) => vec![tdbc::inner_constraints_split(powers, state)],
        (Protocol::Tdbc, Bound::Outer) => vec![tdbc::outer_constraints_split(powers, state)],
        (Protocol::Hbc, Bound::Inner) => vec![hbc::inner_constraints_split(powers, state)],
        (Protocol::Hbc, Bound::Outer) => hbc::outer_constraint_family_split(powers, state, 33),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state() -> ChannelState {
        ChannelState::new(0.19952623149688797, 1.0, 3.1622776601683795)
    }

    #[test]
    fn dispatch_phase_counts() {
        for proto in Protocol::ALL {
            for bound in [Bound::Inner, Bound::Outer] {
                for set in constraint_sets(proto, bound, 10.0, &state()) {
                    assert_eq!(set.num_phases(), proto.num_phases(), "{proto} {bound}");
                    assert!(!set.constraints().is_empty());
                }
            }
        }
    }

    #[test]
    fn hbc_outer_is_a_family() {
        let sets = constraint_sets(Protocol::Hbc, Bound::Outer, 10.0, &state());
        assert!(sets.len() > 1, "HBC outer should be a ρ-family");
        let singles = constraint_sets(Protocol::Tdbc, Bound::Outer, 10.0, &state());
        assert_eq!(singles.len(), 1);
    }
}
