//! The naive four-phase forwarding baseline (paper Fig. 1(ii)).
//!
//! Without network coding the relay routes each direction separately:
//! `a→r` (Δ₁), `r→b` (Δ₂), `b→r` (Δ₃), `r→a` (Δ₄). No terminal listens to
//! the other's uplink and the relay transmits each message in its own
//! phase, so the constraints are four independent hop capacities:
//!
//! ```text
//! R_a ≤ min( Δ₁·C(P·G_ar), Δ₂·C(P·G_br) )
//! R_b ≤ min( Δ₃·C(P·G_br), Δ₄·C(P·G_ar) )
//! ```
//!
//! The MABC region provably contains this one (combine phases 1+3 and 2+4
//! and use the concavity of `C`), which is exactly the analytical form of
//! the "third and fourth transmissions may be combined" observation that
//! motivates coded bidirectional relaying.

use crate::constraint::{ConstraintSet, RateConstraint};
use bcc_channel::ChannelState;
use bcc_info::awgn_capacity;

/// Builds the naive four-phase forwarding capacity constraints.
///
/// # Panics
///
/// Panics if `power < 0`.
pub fn capacity_constraints(power: f64, state: &ChannelState) -> ConstraintSet {
    assert!(power >= 0.0, "transmit power must be non-negative");
    let c_ar = awgn_capacity(power * state.gar());
    let c_br = awgn_capacity(power * state.gbr());
    let mut set = ConstraintSet::new(4, "naive four-phase forwarding (Fig. 1(ii))");
    set.push(RateConstraint::new(
        1.0,
        0.0,
        vec![c_ar, 0.0, 0.0, 0.0],
        "naive: relay decodes Wa (phase 1)",
    ));
    set.push(RateConstraint::new(
        1.0,
        0.0,
        vec![0.0, c_br, 0.0, 0.0],
        "naive: b decodes forwarded Wa (phase 2)",
    ));
    set.push(RateConstraint::new(
        0.0,
        1.0,
        vec![0.0, 0.0, c_br, 0.0],
        "naive: relay decodes Wb (phase 3)",
    ));
    set.push(RateConstraint::new(
        0.0,
        1.0,
        vec![0.0, 0.0, 0.0, c_ar],
        "naive: a decodes forwarded Wb (phase 4)",
    ));
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::mabc;
    use crate::optimizer;

    fn fig4_state() -> ChannelState {
        ChannelState::new(0.19952623149688797, 1.0, 3.1622776601683795)
    }

    #[test]
    fn mabc_always_dominates_naive_forwarding() {
        // The paper's Fig. 1 motivation, in numbers: combining the two
        // relay transmissions into one XOR broadcast can only help.
        for p in [0.1, 1.0, 10.0, 100.0] {
            let s = fig4_state();
            let naive = optimizer::max_sum_rate(&capacity_constraints(p, &s))
                .unwrap()
                .objective;
            let coded = optimizer::max_sum_rate(&mabc::capacity_constraints(p, &s))
                .unwrap()
                .objective;
            assert!(coded >= naive - 1e-9, "P={p}: MABC {coded} < naive {naive}");
        }
    }

    #[test]
    fn symmetric_network_gain_between_four_thirds_and_two() {
        // Closed form for G_ar = G_br = G: naive sum = C(PG)/2, MABC sum =
        // 2·C(2PG)·C(PG)/(C(2PG)+2·C(PG)), so the coding gain is
        // 4·c1/(c1+2·c2) with c1 = C(2PG), c2 = C(PG). Since
        // c2 ≤ c1 ≤ 2·c2, the gain lies in (4/3, 2), approaching 4/3 from
        // above as P → ∞ and 2 as P → 0.
        let s = ChannelState::new(0.1, 2.0, 2.0);
        let mut last_gain = 2.0 + 1e-9;
        for p in [0.01, 1.0, 10.0, 100.0, 10_000.0] {
            let naive = optimizer::max_sum_rate(&capacity_constraints(p, &s))
                .unwrap()
                .objective;
            let coded = optimizer::max_sum_rate(&mabc::capacity_constraints(p, &s))
                .unwrap()
                .objective;
            let gain = coded / naive;
            let c1 = awgn_capacity(2.0 * p * 2.0);
            let c2 = awgn_capacity(p * 2.0);
            let closed_form = 4.0 * c1 / (c1 + 2.0 * c2);
            assert!(
                (gain - closed_form).abs() < 1e-8,
                "P={p}: {gain} vs {closed_form}"
            );
            assert!(gain > 4.0 / 3.0 && gain < 2.0, "P={p}: gain {gain}");
            assert!(gain <= last_gain, "gain must decrease with P");
            last_gain = gain;
        }
    }

    #[test]
    fn naive_sum_rate_closed_form_symmetric() {
        // Symmetric gains G, equal splits: sum rate = C(PG)/2 (each
        // message uses two quarter-length hops at capacity C each:
        // R = C/4 per message with Δ = 1/4 each... the LP finds the
        // optimal split; verify against the known optimum R_a = R_b =
        // C/4 ⇒ sum C/2).
        let s = ChannelState::new(1.0, 1.0, 1.0);
        let p = 15.0; // C(15) = 4 bits
        let sol = optimizer::max_sum_rate(&capacity_constraints(p, &s)).unwrap();
        assert!((sol.objective - 2.0).abs() < 1e-8, "sum {}", sol.objective);
    }

    #[test]
    fn phase_count_is_four() {
        let set = capacity_constraints(1.0, &fig4_state());
        assert_eq!(set.num_phases(), 4);
        assert_eq!(set.constraints().len(), 4);
    }
}
