//! Theorems 3 and 4 — achievable region and outer bound of TDBC.
//!
//! Phase 1 (Δ₁): `a` transmits; **both** `r` and `b` listen — `b`'s
//! observation is the *first-phase side information*. Phase 2 (Δ₂): `b`
//! transmits; `r` and `a` listen. Phase 3 (Δ₃): the relay broadcasts the
//! XOR of **bin indices** `s_a(ŵ_a) ⊕ s_b(ŵ_b)` (random binning lets the
//! relay spend fewer bits than the raw messages because each terminal
//! combines the bin index with its overheard side information).
//!
//! Gaussian inner bound (Theorem 3, eqs. (22)–(23) of the paper):
//!
//! ```text
//! R_a ≤ min( Δ₁·C(P·G_ar),  Δ₁·C(P·G_ab) + Δ₃·C(P·G_br) )
//! R_b ≤ min( Δ₂·C(P·G_br),  Δ₂·C(P·G_ab) + Δ₃·C(P·G_ar) )
//! ```
//!
//! Gaussian outer bound (Theorem 4): the relay-decoding terms are replaced
//! by the two-receiver cut `C(P·(G_ar + G_ab))` (the cut `S₁ = {a}` sees
//! both `Y_r` and `Y_b`), and a sum-rate row
//! `R_a + R_b ≤ Δ₁·C(P·G_ar) + Δ₂·C(P·G_br)` is added (relay decodes both).

use crate::constraint::{ConstraintSet, RateConstraint};
use bcc_channel::{ChannelState, PowerSplit};
use bcc_info::awgn_capacity;
use bcc_info::gaussian::two_receiver_capacity;

/// Builds the Theorem-3 achievable constraints.
///
/// # Panics
///
/// Panics if `power < 0`.
pub fn inner_constraints(power: f64, state: &ChannelState) -> ConstraintSet {
    assert!(power >= 0.0, "transmit power must be non-negative");
    inner_constraints_split(&PowerSplit::symmetric(power), state)
}

/// [`inner_constraints`] with per-node powers: phase-1 terms see `p_a`,
/// phase-2 terms `p_b`, and the relay's bin broadcast `p_r`.
pub fn inner_constraints_split(powers: &PowerSplit, state: &ChannelState) -> ConstraintSet {
    let mut set = ConstraintSet::new(3, "");
    inner_constraints_split_into(powers, state, &mut set);
    set
}

/// [`inner_constraints_split`] rebuilding `set` in place (arena reuse —
/// no heap allocation after warm-up).
pub fn inner_constraints_split_into(
    powers: &PowerSplit,
    state: &ChannelState,
    set: &mut ConstraintSet,
) {
    inner_constraints_from_caps_into(&crate::bounds::LinkCaps::compute(powers, state), set)
}

/// [`inner_constraints_split_into`] from precomputed link capacities.
pub fn inner_constraints_from_caps_into(caps: &crate::bounds::LinkCaps, set: &mut ConstraintSet) {
    let c_a_ab = caps.c_a_ab;
    let c_b_ab = caps.c_b_ab;
    let c_a_ar = caps.c_a_ar;
    let c_b_br = caps.c_b_br;
    let c_r_ar = caps.c_r_ar;
    let c_r_br = caps.c_r_br;

    set.reset(3, "TDBC achievable (Thm 3)");
    set.push(RateConstraint::new(
        1.0,
        0.0,
        [c_a_ar, 0.0, 0.0],
        "Thm 3: relay decodes Wa (phase 1)",
    ));
    set.push(RateConstraint::new(
        1.0,
        0.0,
        [c_a_ab, 0.0, c_r_br],
        "Thm 3: b decodes Wa from side info + bin broadcast",
    ));
    set.push(RateConstraint::new(
        0.0,
        1.0,
        [0.0, c_b_br, 0.0],
        "Thm 3: relay decodes Wb (phase 2)",
    ));
    set.push(RateConstraint::new(
        0.0,
        1.0,
        [0.0, c_b_ab, c_r_ar],
        "Thm 3: a decodes Wb from side info + bin broadcast",
    ));
}

/// Builds the Theorem-4 outer-bound constraints.
///
/// # Panics
///
/// Panics if `power < 0`.
pub fn outer_constraints(power: f64, state: &ChannelState) -> ConstraintSet {
    assert!(power >= 0.0, "transmit power must be non-negative");
    outer_constraints_split(&PowerSplit::symmetric(power), state)
}

/// [`outer_constraints`] with per-node powers (cut terms at the
/// transmitting node's power, relay broadcast at `p_r`).
pub fn outer_constraints_split(powers: &PowerSplit, state: &ChannelState) -> ConstraintSet {
    let mut set = ConstraintSet::new(3, "");
    outer_constraints_split_into(powers, state, &mut set);
    set
}

/// [`outer_constraints_split`] rebuilding `set` in place (arena reuse —
/// no heap allocation after warm-up).
pub fn outer_constraints_split_into(
    powers: &PowerSplit,
    state: &ChannelState,
    set: &mut ConstraintSet,
) {
    let c_a_ab = awgn_capacity(powers.p_a() * state.gab());
    let c_b_ab = awgn_capacity(powers.p_b() * state.gab());
    let c_a_ar = awgn_capacity(powers.p_a() * state.gar());
    let c_b_br = awgn_capacity(powers.p_b() * state.gbr());
    let c_r_ar = awgn_capacity(powers.p_r() * state.gar());
    let c_r_br = awgn_capacity(powers.p_r() * state.gbr());
    let c_a_cut = two_receiver_capacity(powers.p_a() * state.gar(), powers.p_a() * state.gab());
    let c_b_cut = two_receiver_capacity(powers.p_b() * state.gbr(), powers.p_b() * state.gab());

    set.reset(3, "TDBC outer (Thm 4)");
    set.push(RateConstraint::new(
        1.0,
        0.0,
        [c_a_cut, 0.0, 0.0],
        "Thm 4: cut {a} — r and b jointly observe phase 1",
    ));
    set.push(RateConstraint::new(
        1.0,
        0.0,
        [c_a_ab, 0.0, c_r_br],
        "Thm 4: cut {a,r} — b's total information about Wa",
    ));
    set.push(RateConstraint::new(
        0.0,
        1.0,
        [0.0, c_b_cut, 0.0],
        "Thm 4: cut {b} — r and a jointly observe phase 2",
    ));
    set.push(RateConstraint::new(
        0.0,
        1.0,
        [0.0, c_b_ab, c_r_ar],
        "Thm 4: cut {b,r} — a's total information about Wb",
    ));
    set.push(RateConstraint::new(
        1.0,
        1.0,
        [c_a_ar, c_b_br, 0.0],
        "Thm 4: relay decodes both messages (sum rate)",
    ));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig4_state() -> ChannelState {
        ChannelState::new(0.19952623149688797, 1.0, 3.1622776601683795)
    }

    #[test]
    fn inner_has_four_rows_outer_five() {
        let s = fig4_state();
        assert_eq!(inner_constraints(10.0, &s).constraints().len(), 4);
        assert_eq!(outer_constraints(10.0, &s).constraints().len(), 5);
    }

    #[test]
    fn inner_implies_outer_pointwise() {
        // Any (ra, rb, Δ) feasible for Thm 3 must be feasible for Thm 4.
        let p = 10.0;
        let s = fig4_state();
        let inner = inner_constraints(p, &s);
        let outer = outer_constraints(p, &s);
        let durations = [
            [0.4, 0.4, 0.2],
            [0.1, 0.8, 0.1],
            [1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0],
        ];
        for d in durations {
            // Scan a grid of rate pairs.
            for i in 0..20 {
                for j in 0..20 {
                    let ra = i as f64 * 0.2;
                    let rb = j as f64 * 0.2;
                    if inner.all_satisfied(ra, rb, &d, 1e-12) {
                        assert!(
                            outer.all_satisfied(ra, rb, &d, 1e-9),
                            "inner point ({ra},{rb}) @ {d:?} escapes the outer bound"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn side_information_term_uses_direct_link() {
        // With a dead direct link, b relies entirely on the relay phase.
        let p = 10.0;
        let dead = ChannelState::new(0.0, 2.0, 2.0);
        let set = inner_constraints(p, &dead);
        let b_decodes = &set.constraints()[1];
        assert_eq!(b_decodes.phase_coefs[0], 0.0, "no phase-1 side info");
        assert!(b_decodes.phase_coefs[2] > 0.0, "relay phase still helps");
    }

    #[test]
    fn strong_direct_link_lets_tdbc_bypass_relay() {
        // With a very strong direct link the side-information constraint is
        // loose even at Δ3 = 0.
        let p = 10.0;
        let strong = ChannelState::new(100.0, 2.0, 2.0);
        let set = inner_constraints(p, &strong);
        // Δ = (0.5, 0.5, 0): b decodes Wa from side info alone up to
        // 0.5·C(1000) ≈ 4.98 bits, but relay decode caps at 0.5·C(20).
        let d = [0.5, 0.5, 0.0];
        let cap = 0.5 * awgn_capacity(p * 2.0);
        assert!(set.all_satisfied(cap - 1e-6, 0.0, &d, 1e-9));
        assert!(!set.all_satisfied(cap + 1e-3, 0.0, &d, 1e-9));
    }

    #[test]
    fn outer_cut_terms_dominate_inner_terms() {
        let p = 3.0;
        let s = fig4_state();
        let inner = inner_constraints(p, &s);
        let outer = outer_constraints(p, &s);
        // Row 0: C(P(Gar+Gab)) ≥ C(P·Gar).
        assert!(outer.constraints()[0].phase_coefs[0] >= inner.constraints()[0].phase_coefs[0]);
        // Row 2 similarly for b.
        assert!(outer.constraints()[2].phase_coefs[1] >= inner.constraints()[2].phase_coefs[1]);
    }

    #[test]
    fn split_reduces_to_symmetric_at_equal_powers() {
        let s = fig4_state();
        let sym = PowerSplit::symmetric(10.0);
        assert_eq!(
            inner_constraints_split(&sym, &s),
            inner_constraints(10.0, &s)
        );
        assert_eq!(
            outer_constraints_split(&sym, &s),
            outer_constraints(10.0, &s)
        );
    }

    #[test]
    fn split_inner_implies_split_outer_pointwise() {
        // The Thm 3 ⊆ Thm 4 containment must survive asymmetric powers.
        let s = fig4_state();
        let powers = PowerSplit::new(4.0, 12.0, 20.0);
        let inner = inner_constraints_split(&powers, &s);
        let outer = outer_constraints_split(&powers, &s);
        let d = [0.4, 0.3, 0.3];
        for i in 0..20 {
            for j in 0..20 {
                let (ra, rb) = (i as f64 * 0.2, j as f64 * 0.2);
                if inner.all_satisfied(ra, rb, &d, 1e-12) {
                    assert!(
                        outer.all_satisfied(ra, rb, &d, 1e-9),
                        "split inner point ({ra},{rb}) escapes outer"
                    );
                }
            }
        }
    }

    #[test]
    fn zero_relay_phase_reduces_to_overheard_links() {
        // With Δ3 = 0 the inner region is what the direct link supports,
        // intersected with the relay-decoding constraints.
        let p = 15.0;
        let s = fig4_state();
        let set = inner_constraints(p, &s);
        let d = [0.5, 0.5, 0.0];
        let direct = 0.5 * awgn_capacity(p * s.gab());
        let relay_a = 0.5 * awgn_capacity(p * s.gar());
        let max_ra = direct.min(relay_a);
        assert!(set.all_satisfied(max_ra - 1e-9, 0.0, &d, 1e-9));
        assert!(!set.all_satisfied(max_ra + 1e-3, 0.0, &d, 1e-9));
    }
}
