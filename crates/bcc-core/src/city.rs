//! City-scale topology studies: many relays × many pairs with assignment.
//!
//! The paper evaluates its protocol bounds on a *single* three-node
//! network. This module asks the deployment question that follows: given
//! `K` bi-directional pairs and `n` candidate relays scattered over a
//! disc (a [`Topology`]), **which relay should serve which pair**, and
//! how much does optimising that choice buy over a random attachment?
//!
//! # Model
//!
//! Every `(pair k, relay j)` edge is the paper's three-node network with
//! path-loss gains from the geometry ([`Topology::try_edge_state`]),
//! all nodes at the same transmit power. The edge weight
//! `S_kj` is the best closed-form **sum rate over the configured
//! protocols** at that geometry — exactly what
//! [`SolveCtx::solve_block`] computes per point, so the city study
//! reuses the batched SoA kernel unchanged.
//!
//! Three assignments are compared:
//!
//! * **random** — pair `k` attaches to relay `mix_seed(assign_seed, k)
//!   mod n`, the deterministic stand-in for uncoordinated deployment.
//! * **greedy** — pair `k` attaches to its best edge `argmax_j S_kj`.
//!   Because a per-pair maximum dominates any other per-pair choice, the
//!   greedy *best-edge* aggregate is `≥` the random aggregate **by
//!   construction** — the invariant the CI gate checks.
//! * **refined** — an auction-style local search on the *congested*
//!   objective: each relay time-shares among its assigned pairs
//!   ([`Schedule::TimeShare`]), so piling every pair onto one relay
//!   dilutes each share. Starting from both greedy and random seeds,
//!   pairs repeatedly re-bid onto the relay (among their top
//!   [`MAX_CANDIDATES`] edges plus their random fallback) that most
//!   improves the city-wide scheduled rate; moves are strictly
//!   improving, so the refined scheduled rate dominates both seeds.
//!
//! # Streaming and determinism
//!
//! [`CityEvaluator::sweep`] fans **one job per pair** across the worker
//! pool; inside a job the pair's `n` relay edges stream through a
//! per-worker [`PointBlock`](crate::batch::PointBlock) in chunks of the
//! scenario's block size and are immediately reduced to a fixed-size
//! [`PairCandidates`] (best edge, random edge, top-`C` list). Memory is
//! `O(K + block)` regardless of `n × K`, so `K = 10^5` pairs × 100
//! relays fits comfortably; and because each edge's solve is bitwise
//! independent of its chunk (the [`SolveCtx::solve_block`] contract) and
//! jobs are order-preserving, results are **bit-identical at any thread
//! count and any block size**.
//!
//! ```
//! use bcc_channel::Topology;
//! use bcc_core::city::{AssignmentKind, Schedule};
//! use bcc_core::scenario::Scenario;
//!
//! let topo = Topology::random(7, 40, 8, 10.0, 3.0).unwrap();
//! let result = Scenario::city(topo, 10.0).build().sweep().unwrap();
//! assert!(result.best_edge_rate(AssignmentKind::Greedy)
//!     >= result.best_edge_rate(AssignmentKind::Random));
//! assert!(result.scheduled_rate(AssignmentKind::Refined, Schedule::TimeShare)
//!     >= result.scheduled_rate(AssignmentKind::Random, Schedule::TimeShare));
//! ```

use crate::error::CoreError;
use crate::kernel::{SolveCtx, SolveOutcome, SolveRequest};
use crate::protocol::Protocol;
use bcc_channel::{PowerSplit, Topology};
use bcc_num::par;
use bcc_num::seed::mix_seed;
use bcc_num::Db;

pub use crate::multipair::{Schedule, SCHEDULES};

/// Per-pair candidate-list width for the refinement stage. Four relays
/// per pair keeps [`PairCandidates`] `Copy` (no per-pair heap traffic in
/// the hot loop) while giving the local search enough alternatives to
/// spread congestion in practice.
pub const MAX_CANDIDATES: usize = 4;

/// Default assignment-stream seed (decorrelated from placement seeds by
/// [`mix_seed`]'s avalanche, but override it per study for independent
/// random baselines).
pub const DEFAULT_ASSIGN_SEED: u64 = 0xC17A_551C;

/// Upper bound on refinement passes over all pairs; each pass is `O(K ·
/// MAX_CANDIDATES)` and strictly improves the scheduled rate, so the
/// search almost always converges much earlier.
const MAX_REFINE_PASSES: usize = 16;

/// Strictly-improving move threshold for the refinement search: guards
/// against bit-noise churn without affecting the dominance guarantee
/// (a rejected move leaves the monotone objective unchanged).
const REFINE_EPS: f64 = 1e-12;

/// One `(relay, sum rate)` edge of a pair's candidate list.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CandidateEdge {
    /// Relay index in the topology.
    pub relay: usize,
    /// Best sum rate over the configured protocols on this edge
    /// (bits per channel use, congestion-free).
    pub rate: f64,
}

/// The fixed-size reduction of one pair's `n` relay edges: its random
/// attachment, and its top-[`MAX_CANDIDATES`] edges sorted by
/// descending rate (ties keep the lower relay index first, so the
/// reduction is deterministic and independent of chunking).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairCandidates {
    random: CandidateEdge,
    top: [CandidateEdge; MAX_CANDIDATES],
    len: usize,
}

impl PairCandidates {
    fn new(random_relay: usize) -> Self {
        PairCandidates {
            random: CandidateEdge {
                relay: random_relay,
                rate: f64::NEG_INFINITY,
            },
            top: [CandidateEdge {
                relay: usize::MAX,
                rate: f64::NEG_INFINITY,
            }; MAX_CANDIDATES],
            len: 0,
        }
    }

    /// Offers one edge to the reduction, in ascending relay order.
    fn offer(&mut self, relay: usize, rate: f64) {
        if relay == self.random.relay {
            self.random.rate = rate;
        }
        // Insertion position: strictly greater displaces; equal rates
        // keep the earlier relay ahead (deterministic tie-break).
        let mut pos = self.len.min(MAX_CANDIDATES);
        while pos > 0 && rate > self.top[pos - 1].rate {
            pos -= 1;
        }
        if pos < MAX_CANDIDATES {
            let upper = self.len.min(MAX_CANDIDATES - 1);
            for i in (pos..upper).rev() {
                self.top[i + 1] = self.top[i];
            }
            self.top[pos] = CandidateEdge { relay, rate };
            self.len = (self.len + 1).min(MAX_CANDIDATES);
        }
    }

    /// The pair's best edge (`argmax_j S_kj`, lowest relay index on
    /// ties).
    pub fn best(&self) -> CandidateEdge {
        self.top[0]
    }

    /// The pair's random-baseline edge.
    pub fn random(&self) -> CandidateEdge {
        self.random
    }

    /// The pair's top edges, best first (at most [`MAX_CANDIDATES`]).
    pub fn candidates(&self) -> &[CandidateEdge] {
        &self.top[..self.len]
    }

    /// Rate of this pair at `relay`, if it is in the candidate set
    /// (top list or random fallback).
    fn rate_at(&self, relay: usize) -> Option<f64> {
        if self.random.relay == relay {
            return Some(self.random.rate);
        }
        self.candidates()
            .iter()
            .find(|e| e.relay == relay)
            .map(|e| e.rate)
    }

    /// Move targets for the refinement search: the top list plus the
    /// random fallback (deduplicated by `rate_at` lookup order).
    fn options(&self) -> impl Iterator<Item = CandidateEdge> + '_ {
        self.candidates()
            .iter()
            .copied()
            .chain(std::iter::once(self.random))
    }
}

/// Which relay assignment a [`CityResult`] accessor reports on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AssignmentKind {
    /// Deterministic pseudo-random attachment (the uncoordinated
    /// baseline).
    Random,
    /// Per-pair best edge, ignoring congestion.
    Greedy,
    /// Auction-style local search on the time-shared objective, seeded
    /// from both greedy and random.
    Refined,
}

/// All assignment kinds, in presentation order.
pub const ASSIGNMENTS: [AssignmentKind; 3] = [
    AssignmentKind::Random,
    AssignmentKind::Greedy,
    AssignmentKind::Refined,
];

impl std::fmt::Display for AssignmentKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AssignmentKind::Random => write!(f, "random"),
            AssignmentKind::Greedy => write!(f, "greedy"),
            AssignmentKind::Refined => write!(f, "refined"),
        }
    }
}

/// Builder for a city-scale assignment study. Construct via
/// [`Scenario::city`](crate::scenario::Scenario::city).
#[derive(Debug, Clone)]
pub struct CityScenario {
    topology: Topology,
    power: f64,
    protocols: Vec<Protocol>,
    threads: Option<usize>,
    block_size: Option<usize>,
    assign_seed: u64,
}

impl CityScenario {
    /// A city study over `topology` with every node transmitting at
    /// `power_db` dB (linear power applied symmetrically per node).
    ///
    /// # Panics
    ///
    /// Panics if `power_db` is non-finite.
    pub fn new(topology: Topology, power_db: f64) -> Self {
        assert!(power_db.is_finite(), "power must be finite dB");
        CityScenario {
            topology,
            power: Db::new(power_db).to_linear(),
            protocols: vec![Protocol::Mabc, Protocol::Tdbc],
            threads: None,
            block_size: None,
            assign_seed: DEFAULT_ASSIGN_SEED,
        }
    }

    /// Replaces the protocol set the edge weight maximises over
    /// (default: MABC and TDBC inner bounds).
    ///
    /// # Panics
    ///
    /// Panics if `protocols` is empty or contains a non-batchable
    /// request.
    pub fn protocols(mut self, protocols: impl IntoIterator<Item = Protocol>) -> Self {
        self.protocols = protocols.into_iter().collect();
        assert!(!self.protocols.is_empty(), "need at least one protocol");
        for &p in &self.protocols {
            assert!(
                SolveRequest::sum_rate(p).is_batchable(),
                "protocol {p:?} has no batchable sum-rate request"
            );
        }
        self
    }

    /// Pins the worker count (default: `BCC_THREADS`, then available
    /// parallelism). Results are bit-identical at every worker count.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "need at least one worker thread");
        self.threads = Some(threads);
        self
    }

    /// Pins the per-worker edge-chunk size (default
    /// [`DEFAULT_BLOCK`](crate::batch::DEFAULT_BLOCK)). Results are
    /// bit-identical at every block size.
    ///
    /// # Panics
    ///
    /// Panics if `block_size == 0`.
    pub fn block_size(mut self, block_size: usize) -> Self {
        assert!(block_size >= 1, "block size must be at least 1");
        self.block_size = Some(block_size);
        self
    }

    /// Replaces the seed of the random-assignment baseline stream
    /// (default [`DEFAULT_ASSIGN_SEED`]).
    pub fn assign_seed(mut self, seed: u64) -> Self {
        self.assign_seed = seed;
        self
    }

    /// Compiles the scenario into a reusable [`CityEvaluator`].
    pub fn build(self) -> CityEvaluator {
        CityEvaluator { scenario: self }
    }

    fn effective_block_size(&self) -> usize {
        self.block_size.unwrap_or(crate::batch::DEFAULT_BLOCK)
    }
}

/// The compiled form of a [`CityScenario`]: fans one job per pair
/// across scoped worker threads, one [`SolveCtx`] and
/// [`PointBlock`](crate::batch::PointBlock) per worker.
#[derive(Debug)]
pub struct CityEvaluator {
    scenario: CityScenario,
}

impl CityEvaluator {
    /// The topology being evaluated.
    pub fn topology(&self) -> &Topology {
        &self.scenario.topology
    }

    /// The protocols the edge weight maximises over.
    pub fn protocols(&self) -> &[Protocol] {
        &self.scenario.protocols
    }

    /// The effective worker count (override, else the global policy).
    pub fn thread_count(&self) -> usize {
        self.scenario
            .threads
            .unwrap_or_else(bcc_num::par::thread_count)
    }

    /// Runs the streamed city evaluation (see the [module
    /// docs](crate::city)): per pair, all `n` relay edges through the
    /// SoA block kernel, reduced on the fly to [`PairCandidates`];
    /// then the serial assignment stage (greedy, random, refined).
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidInput`] if any edge geometry yields an
    /// invalid channel state (the topology constructors make this
    /// unreachable for in-contract inputs), and any LP failure from the
    /// solve kernel.
    pub fn sweep(&mut self) -> Result<CityResult, CoreError> {
        let sc = &self.scenario;
        let topo = &sc.topology;
        let (k, n) = (topo.num_pairs(), topo.num_relays());
        let nproto = sc.protocols.len();
        let bsz = sc.effective_block_size();
        let threads = self.thread_count();
        let powers = PowerSplit::symmetric(sc.power);

        let worker = || {
            (
                SolveCtx::new(),
                crate::batch::PointBlock::new(),
                vec![Vec::<SolveOutcome>::new(); nproto],
            )
        };
        let pairs: Vec<PairCandidates> =
            par::try_par_map_range(threads, k, worker, |(ctx, block, outs), pair| {
                let random_relay = (mix_seed(sc.assign_seed, pair as u64) % n as u64) as usize;
                let mut cand = PairCandidates::new(random_relay);
                let mut lo = 0;
                while lo < n {
                    let hi = (lo + bsz).min(n);
                    block.clear();
                    for j in lo..hi {
                        let state =
                            topo.try_edge_state(pair, j)
                                .map_err(|e| CoreError::InvalidInput {
                                    context: format!("city edge (pair {pair}, relay {j}): {e}"),
                                })?;
                        block.push(&powers, &state);
                    }
                    block.compute_caps();
                    for (pi, &p) in sc.protocols.iter().enumerate() {
                        outs[pi].clear();
                        ctx.solve_block(block, SolveRequest::sum_rate(p), &mut outs[pi])?;
                    }
                    for i in 0..hi - lo {
                        // Best over protocols; first strictly-greater
                        // wins, so protocol order breaks exact ties.
                        let mut rate = f64::NEG_INFINITY;
                        for po in outs.iter() {
                            if po[i].value > rate {
                                rate = po[i].value;
                            }
                        }
                        cand.offer(lo + i, rate);
                    }
                    lo = hi;
                }
                Ok(cand)
            })?;

        // Serial assignment stage: identical regardless of how the edge
        // solves above were fanned out.
        let greedy: Vec<usize> = pairs.iter().map(|c| c.best().relay).collect();
        let random: Vec<usize> = pairs.iter().map(|c| c.random().relay).collect();
        let refined = {
            let from_greedy = refine(&pairs, n, &greedy);
            let from_random = refine(&pairs, n, &random);
            let sg = scheduled_total(&pairs, n, &from_greedy, Schedule::TimeShare);
            let sr = scheduled_total(&pairs, n, &from_random, Schedule::TimeShare);
            // Strict > keeps the greedy-seeded solution on exact ties.
            if sr > sg {
                from_random
            } else {
                from_greedy
            }
        };

        Ok(CityResult {
            num_relays: n,
            protocols: sc.protocols.clone(),
            pairs,
            refined,
        })
    }
}

impl crate::scenario::Scenario {
    /// A city-scale relay-assignment study over `topology` at
    /// `power_db` dB per node — the entry point of the many-relay ×
    /// many-pair workload (see the [`city`](crate::city) module docs).
    ///
    /// # Panics
    ///
    /// Panics if `power_db` is non-finite.
    pub fn city(topology: Topology, power_db: f64) -> CityScenario {
        CityScenario::new(topology, power_db)
    }
}

/// Results of a city sweep: every pair's candidate reduction plus the
/// three assignments, with closed-form aggregate views.
#[derive(Debug, Clone, PartialEq)]
pub struct CityResult {
    num_relays: usize,
    protocols: Vec<Protocol>,
    pairs: Vec<PairCandidates>,
    refined: Vec<usize>,
}

impl CityResult {
    /// Number of pairs `K`.
    pub fn num_pairs(&self) -> usize {
        self.pairs.len()
    }

    /// Number of candidate relays `n`.
    pub fn num_relays(&self) -> usize {
        self.num_relays
    }

    /// The protocols the edge weight maximised over.
    pub fn protocols(&self) -> &[Protocol] {
        &self.protocols
    }

    /// Pair `k`'s candidate reduction.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn pair(&self, k: usize) -> &PairCandidates {
        &self.pairs[k]
    }

    /// The relay serving each pair under `kind` (index `k` → relay).
    pub fn assignment(&self, kind: AssignmentKind) -> Vec<usize> {
        match kind {
            AssignmentKind::Random => self.pairs.iter().map(|c| c.random().relay).collect(),
            AssignmentKind::Greedy => self.pairs.iter().map(|c| c.best().relay).collect(),
            AssignmentKind::Refined => self.refined.clone(),
        }
    }

    /// Mean **congestion-free** per-pair sum rate under `kind`: each
    /// pair served at full time by its assigned relay. For
    /// [`AssignmentKind::Greedy`] this is the per-pair maximum, so it
    /// dominates every other assignment's value — the CI-gated
    /// invariant.
    pub fn best_edge_rate(&self, kind: AssignmentKind) -> f64 {
        let total: f64 = match kind {
            AssignmentKind::Random => self.pairs.iter().map(|c| c.random().rate).sum(),
            AssignmentKind::Greedy => self.pairs.iter().map(|c| c.best().rate).sum(),
            AssignmentKind::Refined => self
                .pairs
                .iter()
                .zip(&self.refined)
                .map(|(c, &j)| c.rate_at(j).expect("refined stays in candidate set"))
                .sum(),
        };
        total / self.pairs.len() as f64
    }

    /// City-wide scheduled sum rate under `kind`: each relay aggregates
    /// its assigned pairs' rates via `schedule`
    /// ([`Schedule::aggregate_sum_rates`]), relays operate under
    /// spatial reuse (disjoint bands), and empty relays contribute
    /// nothing. The refined assignment dominates both seeds under
    /// [`Schedule::TimeShare`] by construction.
    pub fn scheduled_rate(&self, kind: AssignmentKind, schedule: Schedule) -> f64 {
        let assign = self.assignment(kind);
        scheduled_total(&self.pairs, self.num_relays, &assign, schedule)
    }
}

/// City-wide scheduled sum rate of `assign`: per non-empty relay, the
/// schedule's aggregate of its assigned pairs' rates (pair-index order
/// within each relay, so serial and parallel paths sum identically).
fn scheduled_total(
    pairs: &[PairCandidates],
    n: usize,
    assign: &[usize],
    schedule: Schedule,
) -> f64 {
    let mut buckets: Vec<Vec<f64>> = vec![Vec::new(); n];
    for (k, &j) in assign.iter().enumerate() {
        buckets[j].push(
            pairs[k]
                .rate_at(j)
                .expect("assignment stays in candidate set"),
        );
    }
    buckets
        .iter()
        .filter(|b| !b.is_empty())
        .map(|b| schedule.aggregate_sum_rates(b))
        .sum()
}

/// Auction-style refinement: pairs repeatedly re-bid onto the candidate
/// relay that most improves the time-shared city rate; only strictly
/// improving moves are taken, so the result dominates the `start`
/// assignment and the search terminates.
fn refine(pairs: &[PairCandidates], n: usize, start: &[usize]) -> Vec<usize> {
    let mut assign = start.to_vec();
    let mut sum = vec![0.0f64; n];
    let mut cnt = vec![0usize; n];
    for (k, &j) in assign.iter().enumerate() {
        sum[j] += pairs[k].rate_at(j).expect("start stays in candidate set");
        cnt[j] += 1;
    }
    let val = |s: f64, c: usize| if c == 0 { 0.0 } else { s / c as f64 };
    for _ in 0..MAX_REFINE_PASSES {
        let mut moved = false;
        for (k, cand) in pairs.iter().enumerate() {
            let cur = assign[k];
            let r_cur = cand
                .rate_at(cur)
                .expect("assignment stays in candidate set");
            let mut best_delta = REFINE_EPS;
            let mut best = None;
            for edge in cand.options() {
                let j = edge.relay;
                if j == cur {
                    continue;
                }
                let delta = val(sum[cur] - r_cur, cnt[cur] - 1) - val(sum[cur], cnt[cur])
                    + val(sum[j] + edge.rate, cnt[j] + 1)
                    - val(sum[j], cnt[j]);
                if delta > best_delta {
                    best_delta = delta;
                    best = Some(edge);
                }
            }
            if let Some(edge) = best {
                sum[cur] -= r_cur;
                cnt[cur] -= 1;
                sum[edge.relay] += edge.rate;
                cnt[edge.relay] += 1;
                assign[k] = edge.relay;
                moved = true;
            }
        }
        if !moved {
            break;
        }
    }
    assign
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;

    fn small_result() -> CityResult {
        let topo = Topology::random(11, 24, 6, 8.0, 3.0).unwrap();
        Scenario::city(topo, 10.0).build().sweep().unwrap()
    }

    #[test]
    fn candidate_reduction_is_sorted_and_deterministic() {
        let mut c = PairCandidates::new(2);
        for (j, r) in [(0, 1.0), (1, 3.0), (2, 2.0), (3, 3.0), (4, 0.5), (5, 2.5)] {
            c.offer(j, r);
        }
        let relays: Vec<usize> = c.candidates().iter().map(|e| e.relay).collect();
        // Ties (relays 1 and 3 at rate 3.0) keep the earlier relay first.
        assert_eq!(relays, vec![1, 3, 5, 2]);
        assert_eq!(c.best().relay, 1);
        assert_eq!(c.random().relay, 2);
        assert_eq!(c.random().rate, 2.0);
        assert_eq!(c.rate_at(5), Some(2.5));
        assert_eq!(c.rate_at(4), None);
    }

    #[test]
    fn candidate_reduction_handles_fewer_relays_than_width() {
        let mut c = PairCandidates::new(0);
        c.offer(0, 1.0);
        c.offer(1, 2.0);
        assert_eq!(c.candidates().len(), 2);
        assert_eq!(c.best().relay, 1);
    }

    #[test]
    fn greedy_dominates_random_by_construction() {
        let r = small_result();
        assert!(
            r.best_edge_rate(AssignmentKind::Greedy) >= r.best_edge_rate(AssignmentKind::Random)
        );
        // Per-pair: the best edge dominates every candidate including
        // the random one.
        for k in 0..r.num_pairs() {
            assert!(r.pair(k).best().rate >= r.pair(k).random().rate);
        }
    }

    #[test]
    fn refined_dominates_both_seeds_on_the_scheduled_objective() {
        let r = small_result();
        let refined = r.scheduled_rate(AssignmentKind::Refined, Schedule::TimeShare);
        assert!(refined >= r.scheduled_rate(AssignmentKind::Greedy, Schedule::TimeShare));
        assert!(refined >= r.scheduled_rate(AssignmentKind::Random, Schedule::TimeShare));
    }

    #[test]
    fn all_rates_finite() {
        let r = small_result();
        for kind in ASSIGNMENTS {
            assert!(r.best_edge_rate(kind).is_finite());
            for s in SCHEDULES {
                assert!(r.scheduled_rate(kind, s).is_finite());
            }
        }
    }

    #[test]
    fn bit_identical_across_threads_and_block_sizes() {
        let topo = Topology::random(3, 30, 7, 9.0, 3.2).unwrap();
        let base = Scenario::city(topo.clone(), 12.0)
            .threads(1)
            .block_size(1)
            .build()
            .sweep()
            .unwrap();
        for (threads, bsz) in [(1, 1024), (4, 1), (4, 3), (3, 1024)] {
            let other = Scenario::city(topo.clone(), 12.0)
                .threads(threads)
                .block_size(bsz)
                .build()
                .sweep()
                .unwrap();
            assert_eq!(base, other, "threads={threads} block={bsz}");
        }
    }

    #[test]
    fn assignment_vectors_are_consistent() {
        let r = small_result();
        for kind in ASSIGNMENTS {
            let a = r.assignment(kind);
            assert_eq!(a.len(), r.num_pairs());
            assert!(a.iter().all(|&j| j < r.num_relays()));
        }
        let greedy = r.assignment(AssignmentKind::Greedy);
        for (k, &j) in greedy.iter().enumerate() {
            assert_eq!(j, r.pair(k).best().relay);
        }
    }

    #[test]
    fn single_relay_city_collapses_all_assignments() {
        let topo = Topology::random(5, 10, 1, 6.0, 3.0).unwrap();
        let r = Scenario::city(topo, 8.0).build().sweep().unwrap();
        for kind in ASSIGNMENTS {
            assert!(r.assignment(kind).iter().all(|&j| j == 0));
        }
        assert_eq!(
            r.best_edge_rate(AssignmentKind::Greedy),
            r.best_edge_rate(AssignmentKind::Random)
        );
    }

    /// The acceptance-scale run: `K = 10^5` pairs × 100 relays (10M
    /// edges) streamed under `O(K + block)` memory, every aggregate
    /// finite. Ignored by default — takes tens of seconds in debug
    /// builds; run explicitly with `--release -- --ignored`.
    #[test]
    #[ignore = "acceptance-scale run; invoke with --release -- --ignored"]
    fn city_at_acceptance_scale() {
        let topo = Topology::random(1, 100_000, 100, 20.0, 3.0).unwrap();
        let r = Scenario::city(topo, 10.0).build().sweep().unwrap();
        assert_eq!(r.num_pairs(), 100_000);
        assert_eq!(r.num_relays(), 100);
        assert!(
            r.best_edge_rate(AssignmentKind::Greedy) >= r.best_edge_rate(AssignmentKind::Random)
        );
        for kind in ASSIGNMENTS {
            assert!(r.best_edge_rate(kind).is_finite());
            for s in SCHEDULES {
                assert!(r.scheduled_rate(kind, s).is_finite());
            }
        }
    }

    #[test]
    fn more_relays_never_hurt_greedy() {
        let topo = Topology::random(21, 16, 12, 10.0, 3.0).unwrap();
        let small = Scenario::city(topo.with_relays(5), 10.0)
            .build()
            .sweep()
            .unwrap();
        let large = Scenario::city(topo, 10.0).build().sweep().unwrap();
        assert!(
            large.best_edge_rate(AssignmentKind::Greedy)
                >= small.best_edge_rate(AssignmentKind::Greedy)
        );
    }
}
