//! Protocol comparison utilities: SNR crossovers and the paper's
//! dominance claims.
//!
//! Section IV observes that (i) MABC beats TDBC at low SNR while TDBC wins
//! at high SNR (Fig. 4), and (ii) the HBC achievable region sometimes
//! contains points **outside the outer bounds** of both MABC and TDBC.
//! This module turns those observations into queryable functions.
//!
//! Point comparisons themselves live in the batch API —
//! [`ComparisonResult`](crate::scenario::ComparisonResult), produced by
//! [`Scenario::at`](crate::scenario::Scenario::at). (The long-deprecated
//! `SumRateComparison` shim was removed together with the `sweep` module
//! once every caller had migrated to scenarios.)

use crate::error::CoreError;
use crate::gaussian::GaussianNetwork;
use crate::protocol::{Bound, Protocol};
use crate::region::RatePoint;
use bcc_num::optim::bisect_root;
use bcc_num::Db;

/// Finds the transmit power (in dB) at which `lhs` and `rhs` achieve equal
/// optimal sum rate, searching `[lo_db, hi_db]` by bisection on the
/// (continuous) sum-rate difference. Returns `None` if the difference does
/// not change sign over the bracket.
///
/// # Errors
///
/// Propagates LP failures from the endpoint evaluations.
pub fn sum_rate_crossover_db(
    net: &GaussianNetwork,
    lhs: Protocol,
    rhs: Protocol,
    lo_db: f64,
    hi_db: f64,
) -> Result<Option<Db>, CoreError> {
    let diff = |p_db: f64| -> f64 {
        let n = net.with_power_db(Db::new(p_db));
        let l = n.max_sum_rate(lhs).map(|s| s.sum_rate).unwrap_or(0.0);
        let r = n.max_sum_rate(rhs).map(|s| s.sum_rate).unwrap_or(0.0);
        l - r
    };
    // Validate the endpoints through the fallible path so genuine LP errors
    // surface instead of being swallowed by the closure's unwrap_or.
    for p_db in [lo_db, hi_db] {
        let n = net.with_power_db(Db::new(p_db));
        n.max_sum_rate(lhs)?;
        n.max_sum_rate(rhs)?;
    }
    Ok(bisect_root(diff, lo_db, hi_db, 1e-9).map(Db::new))
}

/// Evidence for the paper's claim that an HBC achievable point lies outside
/// a competitor's **outer** bound.
#[derive(Debug, Clone, PartialEq)]
pub struct OuterBoundViolation {
    /// The protocol whose outer bound is beaten.
    pub victim: Protocol,
    /// An HBC-achievable rate pair outside the victim's outer region.
    pub witness: RatePoint,
}

/// Searches the HBC achievable boundary for points outside the outer bounds
/// of MABC and/or TDBC (the paper's Section IV observation). `resolution`
/// boundary points are examined.
///
/// # Errors
///
/// Propagates LP failures from boundary tracing.
pub fn hbc_outside_competitor_outer_bounds(
    net: &GaussianNetwork,
    resolution: usize,
) -> Result<Vec<OuterBoundViolation>, CoreError> {
    let hbc_inner = net.region(Protocol::Hbc, Bound::Inner);
    let mabc_outer = net.region(Protocol::Mabc, Bound::Outer);
    let tdbc_outer = net.region(Protocol::Tdbc, Bound::Outer);
    let mut out = Vec::new();
    for pt in hbc_inner.boundary(resolution)? {
        // Probe strictly achievable points (tiny inward shrink).
        let ra = (pt.ra - 1e-9).max(0.0);
        let rb = (pt.rb - 1e-9).max(0.0);
        for (victim, outer) in [(Protocol::Mabc, &mabc_outer), (Protocol::Tdbc, &tdbc_outer)] {
            if !outer.contains(ra, rb) {
                out.push(OuterBoundViolation {
                    victim,
                    witness: RatePoint::new(ra, rb),
                });
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig4_net(p_db: f64) -> GaussianNetwork {
        // Fig. 4 gains: Gab = −7 dB, Gar = 0 dB, Gbr = 5 dB (the unique
        // assignment of the caption's {0, 5, −7} consistent with the
        // paper's "interesting case" Gab ≤ Gar ≤ Gbr).
        GaussianNetwork::from_db(Db::new(p_db), Db::new(-7.0), Db::new(0.0), Db::new(5.0))
    }

    #[test]
    fn mabc_tdbc_crossover_exists_at_fig4_gains() {
        // Paper: MABC dominates at low SNR, TDBC at high SNR → the
        // difference changes sign somewhere in a wide bracket.
        let net = fig4_net(0.0);
        let cross = sum_rate_crossover_db(&net, Protocol::Mabc, Protocol::Tdbc, -10.0, 25.0)
            .expect("no LP failure");
        let cross = cross.expect("crossover must exist at Fig. 4 gains");
        // Verify the ordering flips around the crossover.
        let below = net.with_power_db(Db::new(cross.value() - 3.0));
        let above = net.with_power_db(Db::new(cross.value() + 3.0));
        let mabc_below = below.max_sum_rate(Protocol::Mabc).unwrap().sum_rate;
        let tdbc_below = below.max_sum_rate(Protocol::Tdbc).unwrap().sum_rate;
        let mabc_above = above.max_sum_rate(Protocol::Mabc).unwrap().sum_rate;
        let tdbc_above = above.max_sum_rate(Protocol::Tdbc).unwrap().sum_rate;
        assert!(
            mabc_below > tdbc_below,
            "below crossover MABC should win: {mabc_below} vs {tdbc_below}"
        );
        assert!(
            tdbc_above > mabc_above,
            "above crossover TDBC should win: {tdbc_above} vs {mabc_above}"
        );
    }

    #[test]
    fn no_crossover_when_one_protocol_dominates() {
        // Symmetric strong relay links, dead direct link: TDBC can never
        // beat MABC (side information is worthless), so no sign change.
        let net = GaussianNetwork::new(1.0, bcc_channel::ChannelState::new(1e-9, 10.0, 10.0));
        let cross =
            sum_rate_crossover_db(&net, Protocol::Mabc, Protocol::Tdbc, -10.0, 20.0).unwrap();
        assert!(cross.is_none());
    }

    #[test]
    fn hbc_escapes_some_outer_bound_at_high_snr() {
        // The paper's Fig. 4 (bottom, P = 10 dB) shows HBC achievable
        // points outside the MABC and TDBC outer bounds.
        let violations = hbc_outside_competitor_outer_bounds(&fig4_net(10.0), 60).unwrap();
        assert!(
            !violations.is_empty(),
            "expected HBC points outside some competitor outer bound at P = 10 dB"
        );
        // Every reported witness must itself be HBC-achievable.
        let net = fig4_net(10.0);
        let hbc = net.region(Protocol::Hbc, Bound::Inner);
        for v in &violations {
            assert!(
                hbc.contains(v.witness.ra, v.witness.rb),
                "witness {}",
                v.witness
            );
        }
    }
}
