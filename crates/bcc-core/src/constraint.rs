//! Linear rate constraints — the common representation of Theorems 2–6.
//!
//! Every bound in the Gaussian evaluation has the shape
//!
//! ```text
//! α·R_a + β·R_b  ≤  Σ_ℓ Δ_ℓ · c_ℓ
//! ```
//!
//! with `α, β ∈ {0, 1}` and per-phase information coefficients `c_ℓ`
//! (bits per channel use, already evaluated at the channel state). A
//! [`ConstraintSet`] is a list of such rows plus the phase count; `bcc-lp`
//! turns them into LP rows with decision variables `(R_a, R_b, Δ_1..Δ_L)`.
//!
//! # Allocation discipline
//!
//! Constraint sets are rebuilt at **every grid point** of a batched sweep
//! and at every fade draw of a Monte-Carlo study, so their representation
//! is allocation-free after warm-up: phase coefficients live inline in a
//! fixed-capacity [`PhaseVec`] (every protocol in this workspace has at
//! most [`MAX_PHASES`] phases), labels are `Cow`-borrowed `&'static str`
//! theorem IDs, and batch drivers rebuild sets in place through a
//! reusable [`ConstraintBuf`] arena via the bounds module's `*_into`
//! builders instead of collecting fresh `Vec<ConstraintSet>`s.

use std::borrow::Cow;
use std::fmt;
use std::fmt::Write as _;

/// The largest phase count of any protocol in the workspace (HBC's four);
/// [`PhaseVec`] stores coefficients inline up to this arity.
pub const MAX_PHASES: usize = 4;

/// A fixed-capacity inline vector of per-phase values (`f64`, at most
/// [`MAX_PHASES`] entries).
///
/// Dereferences to `&[f64]`, so indexing, iteration and slice methods all
/// work as they would on a `Vec<f64>` — but construction and cloning never
/// touch the heap, which is what keeps the sweep/outage/DMT hot loops
/// allocation-free per point.
///
/// ```
/// use bcc_core::constraint::PhaseVec;
///
/// let v = PhaseVec::from([1.0, 2.0]);
/// assert_eq!(v.len(), 2);
/// assert_eq!(v[1], 2.0);
/// assert_eq!(v.iter().sum::<f64>(), 3.0);
/// ```
#[derive(Clone, Copy)]
pub struct PhaseVec {
    buf: [f64; MAX_PHASES],
    len: u8,
}

impl PhaseVec {
    /// Creates an empty vector.
    pub fn new() -> Self {
        PhaseVec {
            buf: [0.0; MAX_PHASES],
            len: 0,
        }
    }

    /// A vector of `n` zeros.
    ///
    /// # Panics
    ///
    /// Panics if `n > MAX_PHASES`.
    pub fn zeros(n: usize) -> Self {
        assert!(n <= MAX_PHASES, "phase arity {n} exceeds {MAX_PHASES}");
        PhaseVec {
            buf: [0.0; MAX_PHASES],
            len: n as u8,
        }
    }

    /// Copies a slice into an inline vector.
    ///
    /// # Panics
    ///
    /// Panics if `s.len() > MAX_PHASES`.
    pub fn from_slice(s: &[f64]) -> Self {
        assert!(
            s.len() <= MAX_PHASES,
            "phase arity {} exceeds {MAX_PHASES}",
            s.len()
        );
        let mut v = PhaseVec::new();
        v.buf[..s.len()].copy_from_slice(s);
        v.len = s.len() as u8;
        v
    }

    /// Appends a value.
    ///
    /// # Panics
    ///
    /// Panics if the vector is full.
    pub fn push(&mut self, value: f64) {
        assert!((self.len as usize) < MAX_PHASES, "PhaseVec full");
        self.buf[self.len as usize] = value;
        self.len += 1;
    }

    /// The values as a slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.buf[..self.len as usize]
    }
}

impl Default for PhaseVec {
    fn default() -> Self {
        PhaseVec::new()
    }
}

impl std::ops::Deref for PhaseVec {
    type Target = [f64];
    fn deref(&self) -> &[f64] {
        self.as_slice()
    }
}

impl std::ops::DerefMut for PhaseVec {
    fn deref_mut(&mut self) -> &mut [f64] {
        let n = self.len as usize;
        &mut self.buf[..n]
    }
}

impl fmt::Debug for PhaseVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.as_slice().fmt(f)
    }
}

impl PartialEq for PhaseVec {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Vec<f64>> for PhaseVec {
    fn eq(&self, other: &Vec<f64>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<[f64]> for PhaseVec {
    fn eq(&self, other: &[f64]) -> bool {
        self.as_slice() == other
    }
}

impl<const N: usize> From<[f64; N]> for PhaseVec {
    fn from(a: [f64; N]) -> Self {
        PhaseVec::from_slice(&a)
    }
}

impl From<Vec<f64>> for PhaseVec {
    fn from(v: Vec<f64>) -> Self {
        PhaseVec::from_slice(&v)
    }
}

impl From<&[f64]> for PhaseVec {
    fn from(s: &[f64]) -> Self {
        PhaseVec::from_slice(s)
    }
}

impl FromIterator<f64> for PhaseVec {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut v = PhaseVec::new();
        for x in iter {
            v.push(x);
        }
        v
    }
}

impl<'a> IntoIterator for &'a PhaseVec {
    type Item = &'a f64;
    type IntoIter = std::slice::Iter<'a, f64>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// One linear rate constraint `ra·R_a + rb·R_b ≤ Σ_ℓ Δ_ℓ·phase_coefs[ℓ]`.
#[derive(Debug, Clone, PartialEq)]
pub struct RateConstraint {
    /// Coefficient of `R_a` (0 or 1 in the paper's bounds).
    pub ra: f64,
    /// Coefficient of `R_b`.
    pub rb: f64,
    /// Information rate contributed by each phase (bits/use); length equals
    /// the protocol's phase count. Stored inline ([`PhaseVec`]) so a
    /// constraint row costs no heap allocation — the sets are rebuilt at
    /// every grid point of a batched sweep.
    pub phase_coefs: PhaseVec,
    /// Human-readable provenance, e.g. `"Thm 3: relay decodes Wa (phase 1)"`.
    ///
    /// Stored as a `Cow` so the (static) theorem labels cost no allocation
    /// per constraint-set build.
    pub label: Cow<'static, str>,
}

impl RateConstraint {
    /// Creates a constraint row.
    ///
    /// # Panics
    ///
    /// Panics if any coefficient is non-finite or negative (all the paper's
    /// information coefficients are non-negative mutual informations), or
    /// if the phase arity exceeds [`MAX_PHASES`].
    pub fn new(
        ra: f64,
        rb: f64,
        phase_coefs: impl Into<PhaseVec>,
        label: impl Into<Cow<'static, str>>,
    ) -> Self {
        let phase_coefs = phase_coefs.into();
        assert!(
            ra.is_finite() && rb.is_finite() && ra >= 0.0 && rb >= 0.0,
            "rate coefficients must be finite and non-negative"
        );
        assert!(
            phase_coefs.iter().all(|c| c.is_finite() && *c >= 0.0),
            "phase coefficients must be finite and non-negative"
        );
        RateConstraint {
            ra,
            rb,
            phase_coefs,
            label: label.into(),
        }
    }

    /// Left-hand side evaluated at a rate pair.
    pub fn lhs(&self, ra: f64, rb: f64) -> f64 {
        self.ra * ra + self.rb * rb
    }

    /// Right-hand side evaluated at phase durations.
    ///
    /// # Panics
    ///
    /// Panics if `durations.len() != phase_coefs.len()`.
    pub fn rhs(&self, durations: &[f64]) -> f64 {
        assert_eq!(
            durations.len(),
            self.phase_coefs.len(),
            "duration arity mismatch"
        );
        self.phase_coefs
            .iter()
            .zip(durations)
            .map(|(c, d)| c * d)
            .sum()
    }

    /// `true` if the rate pair satisfies this constraint at the given
    /// durations (with tolerance `tol`).
    pub fn satisfied(&self, ra: f64, rb: f64, durations: &[f64], tol: f64) -> bool {
        self.lhs(ra, rb) <= self.rhs(durations) + tol
    }
}

impl fmt::Display for RateConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut lhs = Vec::new();
        if self.ra != 0.0 {
            lhs.push("Ra".to_string());
        }
        if self.rb != 0.0 {
            lhs.push("Rb".to_string());
        }
        let rhs: Vec<String> = self
            .phase_coefs
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0.0)
            .map(|(l, c)| format!("{:.4}·Δ{}", c, l + 1))
            .collect();
        write!(
            f,
            "{} ≤ {}   [{}]",
            lhs.join(" + "),
            if rhs.is_empty() {
                "0".to_string()
            } else {
                rhs.join(" + ")
            },
            self.label
        )
    }
}

/// The full constraint system of one protocol bound at one channel state.
#[derive(Debug, Clone, PartialEq)]
pub struct ConstraintSet {
    num_phases: usize,
    constraints: Vec<RateConstraint>,
    /// Descriptive name, e.g. `"MABC capacity (Thm 2)"`.
    pub name: Cow<'static, str>,
}

impl ConstraintSet {
    /// Creates an empty set for a protocol with `num_phases` phases.
    ///
    /// # Panics
    ///
    /// Panics if `num_phases == 0` or `num_phases > MAX_PHASES`.
    pub fn new(num_phases: usize, name: impl Into<Cow<'static, str>>) -> Self {
        assert!(num_phases > 0, "need at least one phase");
        assert!(
            num_phases <= MAX_PHASES,
            "phase arity {num_phases} exceeds {MAX_PHASES}"
        );
        ConstraintSet {
            num_phases,
            constraints: Vec::new(),
            name: name.into(),
        }
    }

    /// Clears the set back to empty with a new arity and name, retaining
    /// the row storage — the arena-reuse path of the `*_into` bound
    /// builders ([`ConstraintBuf`]).
    ///
    /// # Panics
    ///
    /// Same contract as [`ConstraintSet::new`].
    pub fn reset(&mut self, num_phases: usize, name: impl Into<Cow<'static, str>>) {
        assert!(num_phases > 0, "need at least one phase");
        assert!(
            num_phases <= MAX_PHASES,
            "phase arity {num_phases} exceeds {MAX_PHASES}"
        );
        self.num_phases = num_phases;
        self.constraints.clear();
        self.name = name.into();
    }

    /// [`ConstraintSet::reset`] with a *formatted* name (the HBC ρ-family
    /// case), writing into the set's existing owned name buffer when there
    /// is one so steady-state rebuilds stay allocation-free.
    pub fn reset_fmt(&mut self, num_phases: usize, args: fmt::Arguments<'_>) {
        assert!(num_phases > 0, "need at least one phase");
        assert!(
            num_phases <= MAX_PHASES,
            "phase arity {num_phases} exceeds {MAX_PHASES}"
        );
        self.num_phases = num_phases;
        self.constraints.clear();
        match &mut self.name {
            Cow::Owned(s) => {
                s.clear();
                let _ = s.write_fmt(args);
            }
            _ => self.name = Cow::Owned(fmt::format(args)),
        }
    }

    /// Number of phase-duration variables.
    pub fn num_phases(&self) -> usize {
        self.num_phases
    }

    /// The constraint rows.
    pub fn constraints(&self) -> &[RateConstraint] {
        &self.constraints
    }

    /// Adds a row.
    ///
    /// # Panics
    ///
    /// Panics if the row's phase arity differs from the set's.
    pub fn push(&mut self, c: RateConstraint) -> &mut Self {
        assert_eq!(
            c.phase_coefs.len(),
            self.num_phases,
            "constraint arity mismatch"
        );
        self.constraints.push(c);
        self
    }

    /// `true` if `(ra, rb)` with `durations` satisfies every row.
    ///
    /// # Panics
    ///
    /// Panics if `durations.len() != num_phases()` (propagated from the
    /// row check).
    pub fn all_satisfied(&self, ra: f64, rb: f64, durations: &[f64], tol: f64) -> bool {
        self.constraints
            .iter()
            .all(|c| c.satisfied(ra, rb, durations, tol))
    }
}

impl fmt::Display for ConstraintSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} ({} phases):", self.name, self.num_phases)?;
        for c in &self.constraints {
            writeln!(f, "  {c}")?;
        }
        Ok(())
    }
}

/// A reusable arena of [`ConstraintSet`]s for the batch hot loops.
///
/// Every call to a bounds `*_into` builder
/// ([`bounds::constraint_sets_split_into`](crate::bounds::constraint_sets_split_into))
/// restarts the arena and rebuilds the requested family **in place**:
/// set slots, their row vectors and (for the HBC ρ-family) their owned
/// name buffers are all recycled, so after the first grid point a sweep
/// worker performs no heap allocation to materialise constraint systems.
#[derive(Debug, Default)]
pub struct ConstraintBuf {
    sets: Vec<ConstraintSet>,
    len: usize,
}

impl ConstraintBuf {
    /// Creates an empty arena.
    pub fn new() -> Self {
        ConstraintBuf::default()
    }

    /// Restarts the arena for a new family (retains storage).
    pub fn begin(&mut self) {
        self.len = 0;
    }

    /// Hands out the next set slot (callers must `reset`/`reset_fmt` it).
    pub fn next_set(&mut self) -> &mut ConstraintSet {
        if self.len == self.sets.len() {
            self.sets.push(ConstraintSet::new(1, ""));
        }
        let s = &mut self.sets[self.len];
        self.len += 1;
        s
    }

    /// The sets built since the last [`ConstraintBuf::begin`].
    pub fn sets(&self) -> &[ConstraintSet] {
        &self.sets[..self.len]
    }

    /// Consumes the arena into an owned `Vec` of the built sets.
    pub fn into_sets(mut self) -> Vec<ConstraintSet> {
        self.sets.truncate(self.len);
        self.sets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lhs_rhs_evaluation() {
        let c = RateConstraint::new(1.0, 0.0, vec![2.0, 0.0, 1.0], "test");
        assert_eq!(c.lhs(0.7, 100.0), 0.7);
        assert_eq!(c.rhs(&[0.5, 0.25, 0.25]), 1.25);
        assert!(c.satisfied(1.25, 0.0, &[0.5, 0.25, 0.25], 1e-12));
        assert!(!c.satisfied(1.26, 0.0, &[0.5, 0.25, 0.25], 1e-9));
    }

    #[test]
    fn sum_rate_constraint_uses_both_rates() {
        let c = RateConstraint::new(1.0, 1.0, vec![3.0], "sum");
        assert_eq!(c.lhs(1.0, 1.5), 2.5);
        assert!(c.satisfied(1.0, 1.5, &[1.0], 0.0));
        assert!(!c.satisfied(2.0, 1.5, &[1.0], 1e-9));
    }

    #[test]
    fn set_validates_arity() {
        let mut s = ConstraintSet::new(2, "demo");
        s.push(RateConstraint::new(1.0, 0.0, vec![1.0, 0.5], "ok"));
        assert_eq!(s.constraints().len(), 1);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn wrong_arity_rejected() {
        let mut s = ConstraintSet::new(2, "demo");
        s.push(RateConstraint::new(1.0, 0.0, vec![1.0], "bad"));
    }

    #[test]
    fn all_satisfied_checks_every_row() {
        let mut s = ConstraintSet::new(1, "demo");
        s.push(RateConstraint::new(1.0, 0.0, vec![1.0], "ra"));
        s.push(RateConstraint::new(0.0, 1.0, vec![2.0], "rb"));
        assert!(s.all_satisfied(1.0, 2.0, &[1.0], 1e-12));
        assert!(!s.all_satisfied(1.0, 2.1, &[1.0], 1e-9));
    }

    #[test]
    fn display_is_readable() {
        let c = RateConstraint::new(1.0, 1.0, vec![0.5, 0.0], "Thm 2 sum");
        let s = c.to_string();
        assert!(s.contains("Ra + Rb"));
        assert!(s.contains("Δ1"));
        assert!(s.contains("Thm 2 sum"));
        assert!(!s.contains("Δ2"), "zero coefficients are elided: {s}");
    }

    #[test]
    fn phase_vec_behaves_like_a_slice() {
        let v = PhaseVec::from([1.0, 2.0, 3.0]);
        assert_eq!(v.len(), 3);
        assert_eq!(v[2], 3.0);
        assert_eq!(v.iter().copied().sum::<f64>(), 6.0);
        assert_eq!(v.to_vec(), vec![1.0, 2.0, 3.0]);
        assert_eq!(v, vec![1.0, 2.0, 3.0]);
        let mut total = 0.0;
        for x in &v {
            total += x;
        }
        assert_eq!(total, 6.0);
        assert_eq!(PhaseVec::zeros(2).as_slice(), &[0.0, 0.0]);
        assert_eq!(
            PhaseVec::from_slice(&[4.0, 5.0]),
            [4.0, 5.0].iter().copied().collect::<PhaseVec>()
        );
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn phase_vec_rejects_over_capacity() {
        let _ = PhaseVec::from_slice(&[0.0; 5]);
    }

    #[test]
    fn set_reset_reuses_storage() {
        let mut s = ConstraintSet::new(2, "first");
        s.push(RateConstraint::new(1.0, 0.0, [1.0, 0.5], "r"));
        let cap = s.constraints.capacity();
        s.reset(3, "second");
        assert_eq!(s.num_phases(), 3);
        assert!(s.constraints().is_empty());
        assert_eq!(s.name, "second");
        assert!(s.constraints.capacity() >= cap, "row storage retained");
        s.reset_fmt(4, format_args!("rho = {:.3}", 0.25));
        assert_eq!(s.name, "rho = 0.250");
        assert_eq!(s.num_phases(), 4);
    }

    #[test]
    fn constraint_buf_recycles_slots() {
        let mut buf = ConstraintBuf::new();
        buf.begin();
        buf.next_set().reset(2, "a");
        buf.next_set().reset(3, "b");
        assert_eq!(buf.sets().len(), 2);
        assert_eq!(buf.sets()[1].name, "b");
        buf.begin();
        buf.next_set().reset(4, "c");
        assert_eq!(buf.sets().len(), 1);
        assert_eq!(buf.sets()[0].name, "c");
        let owned = buf.into_sets();
        assert_eq!(owned.len(), 1);
        assert_eq!(owned[0].num_phases(), 4);
    }
}
