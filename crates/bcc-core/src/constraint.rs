//! Linear rate constraints — the common representation of Theorems 2–6.
//!
//! Every bound in the Gaussian evaluation has the shape
//!
//! ```text
//! α·R_a + β·R_b  ≤  Σ_ℓ Δ_ℓ · c_ℓ
//! ```
//!
//! with `α, β ∈ {0, 1}` and per-phase information coefficients `c_ℓ`
//! (bits per channel use, already evaluated at the channel state). A
//! [`ConstraintSet`] is a list of such rows plus the phase count; `bcc-lp`
//! turns them into LP rows with decision variables `(R_a, R_b, Δ_1..Δ_L)`.

use std::borrow::Cow;
use std::fmt;

/// One linear rate constraint `ra·R_a + rb·R_b ≤ Σ_ℓ Δ_ℓ·phase_coefs[ℓ]`.
#[derive(Debug, Clone, PartialEq)]
pub struct RateConstraint {
    /// Coefficient of `R_a` (0 or 1 in the paper's bounds).
    pub ra: f64,
    /// Coefficient of `R_b`.
    pub rb: f64,
    /// Information rate contributed by each phase (bits/use); length equals
    /// the protocol's phase count.
    pub phase_coefs: Vec<f64>,
    /// Human-readable provenance, e.g. `"Thm 3: relay decodes Wa (phase 1)"`.
    ///
    /// Stored as a `Cow` so the (static) theorem labels cost no allocation
    /// per constraint-set build — the sets are rebuilt at every grid point
    /// of a batched sweep.
    pub label: Cow<'static, str>,
}

impl RateConstraint {
    /// Creates a constraint row.
    ///
    /// # Panics
    ///
    /// Panics if any coefficient is non-finite or negative (all the paper's
    /// information coefficients are non-negative mutual informations).
    pub fn new(
        ra: f64,
        rb: f64,
        phase_coefs: Vec<f64>,
        label: impl Into<Cow<'static, str>>,
    ) -> Self {
        assert!(
            ra.is_finite() && rb.is_finite() && ra >= 0.0 && rb >= 0.0,
            "rate coefficients must be finite and non-negative"
        );
        assert!(
            phase_coefs.iter().all(|c| c.is_finite() && *c >= 0.0),
            "phase coefficients must be finite and non-negative"
        );
        RateConstraint {
            ra,
            rb,
            phase_coefs,
            label: label.into(),
        }
    }

    /// Left-hand side evaluated at a rate pair.
    pub fn lhs(&self, ra: f64, rb: f64) -> f64 {
        self.ra * ra + self.rb * rb
    }

    /// Right-hand side evaluated at phase durations.
    ///
    /// # Panics
    ///
    /// Panics if `durations.len() != phase_coefs.len()`.
    pub fn rhs(&self, durations: &[f64]) -> f64 {
        assert_eq!(
            durations.len(),
            self.phase_coefs.len(),
            "duration arity mismatch"
        );
        self.phase_coefs
            .iter()
            .zip(durations)
            .map(|(c, d)| c * d)
            .sum()
    }

    /// `true` if the rate pair satisfies this constraint at the given
    /// durations (with tolerance `tol`).
    pub fn satisfied(&self, ra: f64, rb: f64, durations: &[f64], tol: f64) -> bool {
        self.lhs(ra, rb) <= self.rhs(durations) + tol
    }
}

impl fmt::Display for RateConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut lhs = Vec::new();
        if self.ra != 0.0 {
            lhs.push("Ra".to_string());
        }
        if self.rb != 0.0 {
            lhs.push("Rb".to_string());
        }
        let rhs: Vec<String> = self
            .phase_coefs
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0.0)
            .map(|(l, c)| format!("{:.4}·Δ{}", c, l + 1))
            .collect();
        write!(
            f,
            "{} ≤ {}   [{}]",
            lhs.join(" + "),
            if rhs.is_empty() {
                "0".to_string()
            } else {
                rhs.join(" + ")
            },
            self.label
        )
    }
}

/// The full constraint system of one protocol bound at one channel state.
#[derive(Debug, Clone, PartialEq)]
pub struct ConstraintSet {
    num_phases: usize,
    constraints: Vec<RateConstraint>,
    /// Descriptive name, e.g. `"MABC capacity (Thm 2)"`.
    pub name: Cow<'static, str>,
}

impl ConstraintSet {
    /// Creates an empty set for a protocol with `num_phases` phases.
    ///
    /// # Panics
    ///
    /// Panics if `num_phases == 0`.
    pub fn new(num_phases: usize, name: impl Into<Cow<'static, str>>) -> Self {
        assert!(num_phases > 0, "need at least one phase");
        ConstraintSet {
            num_phases,
            constraints: Vec::new(),
            name: name.into(),
        }
    }

    /// Number of phase-duration variables.
    pub fn num_phases(&self) -> usize {
        self.num_phases
    }

    /// The constraint rows.
    pub fn constraints(&self) -> &[RateConstraint] {
        &self.constraints
    }

    /// Adds a row.
    ///
    /// # Panics
    ///
    /// Panics if the row's phase arity differs from the set's.
    pub fn push(&mut self, c: RateConstraint) -> &mut Self {
        assert_eq!(
            c.phase_coefs.len(),
            self.num_phases,
            "constraint arity mismatch"
        );
        self.constraints.push(c);
        self
    }

    /// `true` if `(ra, rb)` with `durations` satisfies every row.
    ///
    /// # Panics
    ///
    /// Panics if `durations.len() != num_phases()` (propagated from the
    /// row check).
    pub fn all_satisfied(&self, ra: f64, rb: f64, durations: &[f64], tol: f64) -> bool {
        self.constraints
            .iter()
            .all(|c| c.satisfied(ra, rb, durations, tol))
    }
}

impl fmt::Display for ConstraintSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} ({} phases):", self.name, self.num_phases)?;
        for c in &self.constraints {
            writeln!(f, "  {c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lhs_rhs_evaluation() {
        let c = RateConstraint::new(1.0, 0.0, vec![2.0, 0.0, 1.0], "test");
        assert_eq!(c.lhs(0.7, 100.0), 0.7);
        assert_eq!(c.rhs(&[0.5, 0.25, 0.25]), 1.25);
        assert!(c.satisfied(1.25, 0.0, &[0.5, 0.25, 0.25], 1e-12));
        assert!(!c.satisfied(1.26, 0.0, &[0.5, 0.25, 0.25], 1e-9));
    }

    #[test]
    fn sum_rate_constraint_uses_both_rates() {
        let c = RateConstraint::new(1.0, 1.0, vec![3.0], "sum");
        assert_eq!(c.lhs(1.0, 1.5), 2.5);
        assert!(c.satisfied(1.0, 1.5, &[1.0], 0.0));
        assert!(!c.satisfied(2.0, 1.5, &[1.0], 1e-9));
    }

    #[test]
    fn set_validates_arity() {
        let mut s = ConstraintSet::new(2, "demo");
        s.push(RateConstraint::new(1.0, 0.0, vec![1.0, 0.5], "ok"));
        assert_eq!(s.constraints().len(), 1);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn wrong_arity_rejected() {
        let mut s = ConstraintSet::new(2, "demo");
        s.push(RateConstraint::new(1.0, 0.0, vec![1.0], "bad"));
    }

    #[test]
    fn all_satisfied_checks_every_row() {
        let mut s = ConstraintSet::new(1, "demo");
        s.push(RateConstraint::new(1.0, 0.0, vec![1.0], "ra"));
        s.push(RateConstraint::new(0.0, 1.0, vec![2.0], "rb"));
        assert!(s.all_satisfied(1.0, 2.0, &[1.0], 1e-12));
        assert!(!s.all_satisfied(1.0, 2.1, &[1.0], 1e-9));
    }

    #[test]
    fn display_is_readable() {
        let c = RateConstraint::new(1.0, 1.0, vec![0.5, 0.0], "Thm 2 sum");
        let s = c.to_string();
        assert!(s.contains("Ra + Rb"));
        assert!(s.contains("Δ1"));
        assert!(s.contains("Thm 2 sum"));
        assert!(!s.contains("Δ2"), "zero coefficients are elided: {s}");
    }
}
