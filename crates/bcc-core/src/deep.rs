//! Deep-outage estimation: importance-sampled tails over the scenario grid.
//!
//! Plain Monte-Carlo outage estimation ([`Evaluator::outage`],
//! [`Evaluator::dmt`]) cannot resolve probabilities below its resolution
//! floor `1/trials` — at 10k trials the study bottoms out near 1e-3, while
//! reliability targets live at 1e-6..1e-9. This module closes that gap with
//! **exponentially tilted importance sampling** of the fade powers:
//!
//! 1. **Tilt selection** — per cell (`protocol × multiplexing gain × grid
//!    point`), a deterministic bisection on the closed-form sum-rate kernel
//!    finds the common fade level `s*` where the all-links-equally-faded
//!    rate crosses the target; per-link probes then decide which links the
//!    outage event actually depends on. Relevant links are tilted to mean
//!    `s*`, irrelevant links stay at the nominal unit mean.
//! 2. **Weighted sampling** — each trial draws the three link fades from
//!    the defensive-mixture tilted sampler
//!    ([`FadingModel::sample_power_tilted`]), carries the product
//!    likelihood-ratio weight, and rides the same SoA block kernels as
//!    every other fading study. The per-trial weighted indicators reduce
//!    into a [`WeightedTailStats`] in trial order, so results are
//!    **bit-identical at any thread count and any block size**.
//! 3. **Exact fast path** — where the analytic tail is exact
//!    ([`crate::tails`]: DT under Rayleigh/Nakagami-m) the evaluator skips
//!    sampling entirely and reports the closed form, unless
//!    [`DeepSpec::force_sampling`] asks for the estimator (cross-check
//!    tests and benches do).
//!
//! Estimator contract: with `q = α·p + (1−α)·p_θ` per tilted link, the
//! unnormalised estimator `p̂ = (1/n)·Σ wᵢ·1{rateᵢ < target}` is unbiased
//! for the true outage probability; the defensive mass `α` bounds every
//! weight by `1/α` per link, which keeps the estimator's variance finite
//! and lets a single tilt cover union-shaped outage events (either uplink
//! failing) at an `O(1/α)` variance premium rather than a blown tail. A
//! cell with zero weighted hits is reported as **unresolved**
//! (`probability = None`) rather than extrapolated — the same contract as
//! the fixed [`OutageProfile`](https://docs.rs/) resolution-floor
//! semantics.
//!
//! [`FadingModel::sample_power_tilted`]: bcc_channel::fading::FadingModel::sample_power_tilted
//! [`WeightedTailStats`]: bcc_num::stats::WeightedTailStats

use crate::batch::PointBlock;
use crate::error::CoreError;
use crate::gaussian::GaussianNetwork;
use crate::kernel::{SolveCtx, SolveOutcome, SolveRequest};
use crate::protocol::{Protocol, ProtocolMap};
use crate::scenario::{mix_seed, trial_stream, Evaluator, FadingSpec};
use crate::tails::analytic_outage;
use bcc_channel::fading::PowerTilt;
use bcc_num::par;
use bcc_num::special::log2_1p;
use bcc_num::stats::WeightedTailStats;

/// Smallest admissible tilt mean: keeps `PowerTilt::new` satisfied and the
/// log-density ratio finite.
const MIN_TILT: f64 = 1e-9;
/// Bisection iterations for the tilt-level search (`2^-60` bracket).
const TILT_BISECT_ITERS: u32 = 60;

/// How [`Evaluator::deep_outage`] picks the per-link tilt means.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TiltSelect {
    /// Per-cell automatic selection (bisection + per-link relevance
    /// probes) — the default.
    Auto,
    /// A fixed `(ab, ar, br)` tilt applied to every cell. `[1.0; 3]`
    /// reproduces plain Monte-Carlo exactly (identity tilt, all weights
    /// 1).
    Fixed([f64; 3]),
}

/// Configuration of a deep-outage run (see [`Evaluator::deep_outage`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeepSpec {
    trials: Option<usize>,
    alpha: f64,
    tilt: TiltSelect,
    force_sampling: bool,
}

impl Default for DeepSpec {
    fn default() -> Self {
        DeepSpec {
            trials: None,
            alpha: PowerTilt::DEFAULT_ALPHA,
            tilt: TiltSelect::Auto,
            force_sampling: false,
        }
    }
}

impl DeepSpec {
    /// The default spec: scenario trial count, automatic tilts, defensive
    /// mass [`PowerTilt::DEFAULT_ALPHA`], exact fast path enabled.
    pub fn new() -> Self {
        DeepSpec::default()
    }

    /// Overrides the scenario's fading trial count for the deep study.
    ///
    /// # Panics
    ///
    /// Panics if `trials` is zero.
    pub fn trials(mut self, trials: usize) -> Self {
        assert!(trials > 0, "need at least one deep-outage trial");
        self.trials = Some(trials);
        self
    }

    /// Sets the defensive mixture mass `α ∈ (0, 1]` of every tilted link.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]`.
    pub fn alpha(mut self, alpha: f64) -> Self {
        assert!(
            alpha.is_finite() && alpha > 0.0 && alpha <= 1.0,
            "defensive mass must lie in (0, 1], got {alpha}"
        );
        self.alpha = alpha;
        self
    }

    /// Forces the fixed `(ab, ar, br)` tilt means instead of automatic
    /// selection.
    ///
    /// # Panics
    ///
    /// Panics if any mean is outside `(0, 1]`.
    pub fn fixed_tilt(mut self, theta: [f64; 3]) -> Self {
        for t in theta {
            assert!(
                t.is_finite() && t > 0.0 && t <= 1.0,
                "tilt mean must lie in (0, 1], got {t}"
            );
        }
        self.tilt = TiltSelect::Fixed(theta);
        self
    }

    /// Disables the exact analytic fast path so every cell is sampled —
    /// the cross-check tests and the `deep_outage` bench use this to
    /// exercise the estimator against the closed form.
    pub fn force_sampling(mut self, force: bool) -> Self {
        self.force_sampling = force;
        self
    }
}

/// Where a [`DeepCell`]'s probability came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TailSource {
    /// Closed-form analytic tail ([`crate::tails`]); no sampling ran.
    Exact,
    /// Importance-sampled estimate.
    Sampled,
}

/// One cell of a [`DeepOutageResult`]: the outage estimate of one protocol
/// at one `(multiplexing gain, grid point)` pair, with its diagnostics.
#[derive(Debug, Clone, Copy)]
pub struct DeepCell {
    /// The outage-probability estimate, or `None` when the cell is
    /// **unresolved** (zero weighted hits — never extrapolated).
    pub probability: Option<f64>,
    /// Relative standard error of the estimate (`se/p̂`); `None` when
    /// unresolved or exact-with-no-sampling reports `Some(0.0)`.
    pub rel_error: Option<f64>,
    /// Kish effective sample size `(Σw)²/Σw²`; 0 for exact cells.
    pub ess: f64,
    /// Per-trial variance of the weighted indicator `w·1{outage}`; 0 for
    /// exact cells. The plain-MC comparison `p(1−p)/variance` is the
    /// variance-reduction ratio the bench gates on.
    pub variance: f64,
    /// Trials actually sampled (0 for exact cells).
    pub trials: usize,
    /// Raw (unweighted) count of below-target trials.
    pub hits: u64,
    /// The `(ab, ar, br)` tilt means used; `1.0` means untilted.
    pub theta: [f64; 3],
    /// Whether the probability is analytic or sampled.
    pub source: TailSource,
}

/// Bit-identity on every float field (`f64::to_bits`), matching the
/// workspace convention for results asserted equal across worker counts.
impl PartialEq for DeepCell {
    fn eq(&self, other: &Self) -> bool {
        let ob = |v: Option<f64>| v.map(f64::to_bits);
        ob(self.probability) == ob(other.probability)
            && ob(self.rel_error) == ob(other.rel_error)
            && self.ess.to_bits() == other.ess.to_bits()
            && self.variance.to_bits() == other.variance.to_bits()
            && self.trials == other.trials
            && self.hits == other.hits
            && self.theta.map(f64::to_bits) == other.theta.map(f64::to_bits)
            && self.source == other.source
    }
}

/// The output of [`Evaluator::deep_outage`]: per-protocol deep-outage
/// estimates over the `multiplexing gain × SNR` grid, with per-cell
/// importance-sampling diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct DeepOutageResult {
    /// Human-readable name of the swept parameter.
    pub x_name: String,
    /// Reference SNR (linear) of each grid point, in sweep order.
    pub snrs: Vec<f64>,
    /// The multiplexing gains evaluated.
    pub gains: Vec<f64>,
    /// The fading specification the samples were drawn under.
    pub spec: FadingSpec,
    protocols: Vec<Protocol>,
    /// `cells[protocol][gain][point]`.
    cells: ProtocolMap<Vec<Vec<DeepCell>>>,
}

impl DeepOutageResult {
    /// The protocols evaluated, in evaluation order.
    pub fn protocols(&self) -> &[Protocol] {
        &self.protocols
    }

    /// The target sum rate `r·log2(1 + SNR)` at `(gain_idx, point_idx)`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn target_rate(&self, gain_idx: usize, point_idx: usize) -> f64 {
        self.gains[gain_idx] * log2_1p(self.snrs[point_idx])
    }

    /// The cell of `protocol` at `(gain_idx, point_idx)`.
    ///
    /// # Panics
    ///
    /// Panics if `protocol` was not part of the scenario or an index is
    /// out of range.
    pub fn cell(&self, protocol: Protocol, gain_idx: usize, point_idx: usize) -> &DeepCell {
        &self.cells.get(protocol).expect("protocol evaluated")[gain_idx][point_idx]
    }

    /// The outage-probability estimates of `protocol` at `gains[gain_idx]`
    /// across the grid; `None` entries are unresolved cells.
    ///
    /// # Panics
    ///
    /// Panics if `protocol` was not part of the scenario or the index is
    /// out of range.
    pub fn outage(&self, protocol: Protocol, gain_idx: usize) -> Vec<Option<f64>> {
        self.cells.get(protocol).expect("protocol evaluated")[gain_idx]
            .iter()
            .map(|c| c.probability)
            .collect()
    }

    /// Least-squares finite-SNR diversity over every resolved, positive
    /// cell — the deep-tail analogue of
    /// [`DmtResult::diversity_fit`](crate::dmt::DmtResult::diversity_fit).
    /// `None` with fewer than two usable points.
    ///
    /// # Panics
    ///
    /// Panics if `protocol` was not part of the scenario or the index is
    /// out of range.
    pub fn diversity_fit(&self, protocol: Protocol, gain_idx: usize) -> Option<f64> {
        let row = &self.cells.get(protocol).expect("protocol evaluated")[gain_idx];
        let pts: Vec<(f64, f64)> = self
            .snrs
            .iter()
            .zip(row.iter())
            .filter_map(|(&s, c)| match c.probability {
                Some(p) if p > 0.0 => Some((s.ln(), p.ln())),
                _ => None,
            })
            .collect();
        if pts.len() < 2 {
            return None;
        }
        let n = pts.len() as f64;
        let mx = pts.iter().map(|p| p.0).sum::<f64>() / n;
        let my = pts.iter().map(|p| p.1).sum::<f64>() / n;
        let sxx: f64 = pts.iter().map(|p| (p.0 - mx) * (p.0 - mx)).sum();
        if sxx == 0.0 {
            return None;
        }
        let sxy: f64 = pts.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum();
        Some(-sxy / sxx)
    }
}

/// The all-links-equal fade level `s*` where `protocol`'s sum rate crosses
/// `target`, by bisection on the closed-form kernel. Returns 1.0 when even
/// the unfaded network sits at or below the target (no tilt needed — the
/// outage probability is not deep).
fn common_tilt_level(
    ctx: &mut SolveCtx,
    net: &GaussianNetwork,
    protocol: Protocol,
    target: f64,
) -> f64 {
    let state = net.state();
    let rate_at = |ctx: &mut SolveCtx, s: f64| {
        ctx.solve_one(
            &net.with_state(state.faded(s, s, s)),
            SolveRequest::sum_rate(protocol),
        )
        .expect("closed-form inner sum-rate solve is infallible")
        .value
    };
    if rate_at(ctx, 1.0) <= target {
        return 1.0;
    }
    let (mut lo, mut hi) = (0.0_f64, 1.0_f64);
    for _ in 0..TILT_BISECT_ITERS {
        let mid = 0.5 * (lo + hi);
        if rate_at(ctx, mid) < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    (0.5 * (lo + hi)).clamp(MIN_TILT, 1.0)
}

/// Automatic per-link tilt means for one cell: the common level `s*` on
/// every link the outage event depends on, nominal mean on the rest.
///
/// Relevance probe: fade link `l` alone to `s*` with the other links
/// unfaded — if the rate drops measurably below the unfaded rate, the
/// event depends on `l`. This catches both min-structures (MABC needs each
/// uplink individually) and single-link protocols (DT depends only on the
/// direct link).
fn select_tilt(
    ctx: &mut SolveCtx,
    net: &GaussianNetwork,
    protocol: Protocol,
    target: f64,
) -> [f64; 3] {
    let s = common_tilt_level(ctx, net, protocol, target);
    if s >= 1.0 {
        return [1.0; 3];
    }
    let state = net.state();
    let rate_of = |ctx: &mut SolveCtx, fades: [f64; 3]| {
        ctx.solve_one(
            &net.with_state(state.faded(fades[0], fades[1], fades[2])),
            SolveRequest::sum_rate(protocol),
        )
        .expect("closed-form inner sum-rate solve is infallible")
        .value
    };
    let full = rate_of(ctx, [1.0; 3]);
    let tol = (1e-6 * full).max(1e-12);
    let mut theta = [1.0; 3];
    for l in 0..3 {
        let mut probe = [1.0; 3];
        probe[l] = s;
        if rate_of(ctx, probe) < full - tol {
            theta[l] = s;
        }
    }
    theta
}

/// Everything one sampled cell needs inside the worker fan-out.
struct CellPlan {
    protocol: Protocol,
    net: GaussianNetwork,
    target: f64,
    seed: u64,
    tilt: [PowerTilt; 3],
    theta: [f64; 3],
    /// `(protocol index, gain index, point index)` to place the result.
    slot: (usize, usize, usize),
}

impl Evaluator {
    /// Runs the deep-outage study over the scenario's
    /// `protocol × multiplexing gain × grid point` cells.
    ///
    /// Requires a fading model attached with
    /// [`Scenario::fading`](crate::scenario::Scenario::fading) (or
    /// `rayleigh`) whose fade power is Gamma-distributed
    /// (Rayleigh/Nakagami-m), and multiplexing gains from
    /// [`Scenario::multiplexing_gains`](crate::scenario::Scenario::multiplexing_gains).
    ///
    /// Results are bit-identical at any worker count and any block size:
    /// every cell draws from its own deterministic per-trial seed streams
    /// (`mix_seed(seed, cell_index)`; the scenario seed itself for a
    /// single-cell study), blocks never straddle cells, and the weighted
    /// reduction runs serially in trial order.
    ///
    /// # Errors
    ///
    /// Currently infallible (fading cells always solve the unconstrained
    /// closed-form optimum); the `Result` keeps the signature uniform with
    /// the other studies.
    ///
    /// # Panics
    ///
    /// Panics if the scenario has no fading model or multiplexing gains,
    /// carries a `rate_floor`, any grid point has a non-positive reference
    /// SNR, or the fading model does not support tilting (Rician / no
    /// fading).
    pub fn deep_outage(&mut self, deep: &DeepSpec) -> Result<DeepOutageResult, CoreError> {
        let sc = &self.scenario;
        assert!(
            sc.rate_floor.is_none(),
            "rate_floor applies to sweep()/comparisons() only; deep-outage studies \
             solve the unconstrained optimum — remove the floor"
        );
        let spec = sc
            .fading
            .expect("scenario has no fading model; attach one with Scenario::fading(...)");
        assert!(
            spec.model.supports_tilt(),
            "deep-outage importance sampling needs a Gamma fade power \
             (Rayleigh or Nakagami-m), got {:?}",
            spec.model
        );
        let gains = sc.multiplexing_gains.clone();
        assert!(
            !gains.is_empty(),
            "scenario has no multiplexing gains; attach them with Scenario::multiplexing_gains(...)"
        );
        assert!(
            gains.iter().all(|&g| g > 0.0),
            "deep-outage multiplexing gains must be positive"
        );
        let snrs: Vec<f64> = sc.points.iter().map(|p| p.net.reference_snr()).collect();
        assert!(
            snrs.iter().all(|&s| s > 0.0),
            "every grid point needs a positive reference SNR for deep-outage estimation"
        );
        let trials = deep.trials.unwrap_or(spec.trials);
        let protocols = sc.protocols.clone();
        let npoints = sc.points.len();
        let ngains = gains.len();
        let ncells = protocols.len() * ngains * npoints;
        let threads = self.thread_count();
        let bsz = sc.effective_block_size();

        // Plan every cell serially (deterministic): exact fast path where
        // the analytic tail is exact, otherwise tilt selection.
        let mut ctx = SolveCtx::new();
        let mut exact_cells: Vec<((usize, usize, usize), f64)> = Vec::new();
        let mut plans: Vec<CellPlan> = Vec::new();
        for (p_idx, &protocol) in protocols.iter().enumerate() {
            for (gi, &gain) in gains.iter().enumerate() {
                for (pi, point) in sc.points.iter().enumerate() {
                    let target = gain * log2_1p(snrs[pi]);
                    let slot = (p_idx, gi, pi);
                    if !deep.force_sampling {
                        if let Some(p) = analytic_outage(&point.net, protocol, spec.model, target)
                            .and_then(|t| t.exact())
                        {
                            exact_cells.push((slot, p));
                            continue;
                        }
                    }
                    // Cell seeds index the *full* grid so adding or
                    // removing the fast path never reshuffles the streams
                    // of the sampled cells.
                    let cell_index = (p_idx * ngains + gi) * npoints + pi;
                    let seed = if ncells == 1 {
                        spec.seed
                    } else {
                        mix_seed(spec.seed, cell_index as u64)
                    };
                    let theta = match deep.tilt {
                        TiltSelect::Auto => select_tilt(&mut ctx, &point.net, protocol, target),
                        TiltSelect::Fixed(t) => t,
                    };
                    let tilt = theta.map(|t| {
                        if t >= 1.0 {
                            PowerTilt::NONE
                        } else {
                            PowerTilt::new(t, deep.alpha)
                        }
                    });
                    plans.push(CellPlan {
                        protocol,
                        net: point.net,
                        target,
                        seed,
                        tilt,
                        theta,
                        slot,
                    });
                }
            }
        }

        // Fan the sampled cells across the workers in block-sized chunks;
        // blocks never straddle cells so every block solves one protocol.
        let blocks_per_cell = trials.div_ceil(bsz);
        let njobs = plans.len() * blocks_per_cell;
        let worker = || {
            (
                SolveCtx::new(),
                PointBlock::new(),
                Vec::<SolveOutcome>::new(),
            )
        };
        let model = spec.model;
        let job_rows: Vec<Vec<(f64, bool)>> =
            par::par_map_range(threads, njobs, worker, |(ctx, block, outs), j| {
                let plan = &plans[j / blocks_per_cell];
                let lo = (j % blocks_per_cell) * bsz;
                let hi = (lo + bsz).min(trials);
                block.clear();
                let mut weights = Vec::with_capacity(hi - lo);
                let state = plan.net.state();
                for k in lo..hi {
                    let mut rng = trial_stream(plan.seed, k as u64);
                    let (fab, wab) = model.sample_power_tilted(&mut rng, plan.tilt[0]);
                    let (far, war) = model.sample_power_tilted(&mut rng, plan.tilt[1]);
                    let (fbr, wbr) = model.sample_power_tilted(&mut rng, plan.tilt[2]);
                    block.push_net(&plan.net.with_state(state.faded(fab, far, fbr)));
                    weights.push(wab * war * wbr);
                }
                block.compute_caps();
                outs.clear();
                ctx.solve_block(block, SolveRequest::sum_rate(plan.protocol), outs)
                    .expect("closed-form batch solve is infallible");
                weights
                    .iter()
                    .zip(outs.iter())
                    .map(|(&w, o)| (w, o.value < plan.target))
                    .collect()
            });

        // Serial trial-order reduction: bit-identical regardless of how
        // the jobs were scheduled.
        let mut cells: ProtocolMap<Vec<Vec<DeepCell>>> = ProtocolMap::new();
        let unplanned = DeepCell {
            probability: None,
            rel_error: None,
            ess: 0.0,
            variance: 0.0,
            trials: 0,
            hits: 0,
            theta: [1.0; 3],
            source: TailSource::Exact,
        };
        for &p in &protocols {
            cells.insert(p, vec![vec![unplanned; npoints]; ngains]);
        }
        for ((p_idx, gi, pi), p) in exact_cells {
            cells.get_mut(protocols[p_idx]).expect("pre-populated")[gi][pi] = DeepCell {
                probability: Some(p),
                rel_error: Some(0.0),
                ..unplanned
            };
        }
        for (ci, plan) in plans.iter().enumerate() {
            let mut stats = WeightedTailStats::new();
            for row in &job_rows[ci * blocks_per_cell..(ci + 1) * blocks_per_cell] {
                for &(w, below) in row {
                    stats.push(w, below);
                }
            }
            let (p_idx, gi, pi) = plan.slot;
            cells.get_mut(protocols[p_idx]).expect("pre-populated")[gi][pi] = DeepCell {
                probability: stats.probability(),
                rel_error: stats.relative_error(),
                ess: stats.ess(),
                variance: stats.estimator_variance(),
                trials,
                hits: stats.hits(),
                theta: plan.theta,
                source: TailSource::Sampled,
            };
        }

        Ok(DeepOutageResult {
            x_name: sc.x_name.clone(),
            snrs,
            gains,
            spec,
            protocols,
            cells,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;
    use bcc_channel::fading::FadingModel;
    use bcc_channel::ChannelState;
    use bcc_num::approx_eq;

    fn fig4_net(p_db: f64) -> GaussianNetwork {
        GaussianNetwork::new(
            10f64.powf(p_db / 10.0),
            ChannelState::new(0.19952623149688797, 1.0, 3.1622776601683795),
        )
    }

    fn deep_scenario(trials: usize, threads: usize) -> Scenario {
        Scenario::power_sweep_db(fig4_net(0.0), [14.0, 20.0])
            .protocols([Protocol::DirectTransmission, Protocol::Mabc])
            .multiplexing_gains([0.25])
            .rayleigh(trials, 0xD33B_0001)
            .threads(threads)
    }

    #[test]
    fn deep_outage_is_bit_identical_across_threads_and_block_sizes() {
        let spec = DeepSpec::new().force_sampling(true);
        let serial = deep_scenario(600, 1).build().deep_outage(&spec).unwrap();
        let parallel = deep_scenario(600, 4).build().deep_outage(&spec).unwrap();
        let chunked = deep_scenario(600, 4)
            .block_size(37)
            .build()
            .deep_outage(&spec)
            .unwrap();
        assert_eq!(serial, parallel);
        assert_eq!(serial, chunked);
    }

    #[test]
    fn dt_exact_fast_path_agrees_with_forced_sampling() {
        let exact = deep_scenario(3000, 2)
            .build()
            .deep_outage(&DeepSpec::new())
            .unwrap();
        let sampled = deep_scenario(3000, 2)
            .build()
            .deep_outage(&DeepSpec::new().force_sampling(true))
            .unwrap();
        for pi in 0..2 {
            let e = exact.cell(Protocol::DirectTransmission, 0, pi);
            let s = sampled.cell(Protocol::DirectTransmission, 0, pi);
            assert_eq!(e.source, TailSource::Exact);
            assert_eq!(s.source, TailSource::Sampled);
            let p_exact = e.probability.unwrap();
            let p_hat = s.probability.expect("tilted run resolves the tail");
            let rel = s.rel_error.unwrap();
            assert!(
                (p_hat - p_exact).abs() <= 4.0 * rel * p_hat + 1e-12,
                "point {pi}: exact {p_exact} vs sampled {p_hat} (rel {rel})"
            );
        }
    }

    #[test]
    fn identity_tilt_reproduces_plain_monte_carlo() {
        // One cell → the cell seed is the scenario seed, and θ = 1 walks
        // the identity sampling path: the estimate must equal the plain
        // dmt() outage probability bit for bit.
        let trials = 800;
        let build = || {
            Scenario::at(fig4_net(6.0))
                .protocols([Protocol::Mabc])
                .multiplexing_gains([0.4])
                .rayleigh(trials, 0xD33B_0002)
                .threads(2)
        };
        let deep = build()
            .build()
            .deep_outage(&DeepSpec::new().fixed_tilt([1.0; 3]).force_sampling(true))
            .unwrap();
        let dmt = build().build().dmt().unwrap();
        let cell = deep.cell(Protocol::Mabc, 0, 0);
        let plain = dmt.outage(Protocol::Mabc, 0)[0];
        // Same seed stream + identity tilt ⇒ the same fades and the same
        // below-target trials; the running-mean estimate agrees with the
        // plain count/n ratio to rounding.
        assert_eq!(cell.hits as usize, (plain * trials as f64).round() as usize);
        assert!(approx_eq(cell.probability.unwrap(), plain, 1e-12));
        assert!(approx_eq(cell.ess, trials as f64, 1e-9));
    }

    #[test]
    fn auto_tilt_resolves_a_deep_direct_transmission_tail() {
        // DT at high SNR and low gain: the true outage is ~1e-5..1e-6, far
        // below the 4k-trial plain-MC floor. The auto-tilted estimator
        // must resolve it within tight relative error.
        let mut eval = Scenario::power_sweep_db(fig4_net(0.0), [62.0])
            .protocols([Protocol::DirectTransmission])
            .multiplexing_gains([0.1])
            .rayleigh(4000, 0xD33B_0003)
            .threads(2)
            .build();
        let exact = eval
            .deep_outage(&DeepSpec::new())
            .unwrap()
            .cell(Protocol::DirectTransmission, 0, 0)
            .probability
            .unwrap();
        assert!(exact < 1e-4, "test premise: deep tail, got {exact}");
        let cell = *eval
            .deep_outage(&DeepSpec::new().force_sampling(true))
            .unwrap()
            .cell(Protocol::DirectTransmission, 0, 0);
        let p_hat = cell.probability.expect("tilted run resolves the tail");
        let rel = cell.rel_error.unwrap();
        assert!(rel <= 0.1, "relative error {rel} too large");
        assert!(
            (p_hat - exact).abs() <= 4.0 * rel * p_hat,
            "exact {exact} vs sampled {p_hat} (rel {rel})"
        );
        assert!(cell.theta[0] < 1.0, "direct link must be tilted");
        assert!(
            cell.theta[1] == 1.0 && cell.theta[2] == 1.0,
            "uplinks are irrelevant to DT"
        );
    }

    #[test]
    fn untilted_deep_cell_reports_unresolved_not_zero() {
        let cell = *Scenario::power_sweep_db(fig4_net(0.0), [62.0])
            .protocols([Protocol::DirectTransmission])
            .multiplexing_gains([0.1])
            .rayleigh(500, 0xD33B_0004)
            .threads(1)
            .build()
            .deep_outage(&DeepSpec::new().fixed_tilt([1.0; 3]).force_sampling(true))
            .unwrap()
            .cell(Protocol::DirectTransmission, 0, 0);
        assert_eq!(cell.probability, None, "plain MC cannot see 1e-6");
        assert_eq!(cell.rel_error, None);
        assert_eq!(cell.hits, 0);
    }

    #[test]
    fn mabc_estimate_lands_between_analytic_bounds() {
        let net = fig4_net(24.0);
        let mut eval = Scenario::at(net)
            .protocols([Protocol::Mabc])
            .multiplexing_gains([0.15])
            .rayleigh(6000, 0xD33B_0005)
            .threads(2)
            .build();
        let res = eval.deep_outage(&DeepSpec::new()).unwrap();
        let cell = res.cell(Protocol::Mabc, 0, 0);
        assert_eq!(cell.source, TailSource::Sampled);
        let p_hat = cell.probability.expect("tilted run resolves the tail");
        let rel = cell.rel_error.unwrap();
        let tail = analytic_outage(
            &net,
            Protocol::Mabc,
            FadingModel::Rayleigh,
            res.target_rate(0, 0),
        )
        .unwrap();
        let slack = 4.0 * rel * p_hat;
        assert!(
            p_hat >= tail.lo - slack && p_hat <= tail.hi + slack,
            "estimate {p_hat} (rel {rel}) outside [{}, {}]",
            tail.lo,
            tail.hi
        );
    }

    #[test]
    #[should_panic(expected = "needs a Gamma fade power")]
    fn rician_fading_is_rejected() {
        Scenario::at(fig4_net(10.0))
            .protocols([Protocol::DirectTransmission])
            .multiplexing_gains([0.3])
            .fading(FadingModel::Rician { k: 2.0 }, 100, 1)
            .build()
            .deep_outage(&DeepSpec::new())
            .unwrap();
    }

    #[test]
    #[should_panic(expected = "no multiplexing gains")]
    fn missing_gains_are_rejected() {
        Scenario::at(fig4_net(10.0))
            .protocols([Protocol::DirectTransmission])
            .rayleigh(100, 1)
            .build()
            .deep_outage(&DeepSpec::new())
            .unwrap();
    }
}
