//! The general discrete-memoryless-channel form of the bounds.
//!
//! Sections II–III of the paper state Theorems 2–5 for *arbitrary*
//! discrete memoryless channels; the Gaussian expressions of
//! [`crate::gaussian`] are the Section-IV specialisation. This module
//! evaluates the same constraint sets for finite alphabets: given the
//! per-phase channel transition matrices and input distributions, every
//! mutual-information coefficient is computed exactly by
//! [`bcc_info::discrete`], and the resulting [`ConstraintSet`]s plug into
//! the identical LP machinery ([`crate::optimizer`], [`crate::region`]).
//!
//! The fixed-input evaluation corresponds to the paper's bounds at
//! `|Q| = 1`; optimising the input distributions (and time-sharing via
//! `Q`) is the caller's loop.

use crate::constraint::{ConstraintSet, RateConstraint};
use bcc_info::discrete::{JointPmf, Pmf};
use bcc_info::Dmc;

/// The channels of a three-node discrete-alphabet network.
///
/// The MAC phase channel `mac_to_relay` is indexed by the product input
/// `x_a·|X_b| + x_b`; all other links are point-to-point. Independent
/// noise across simultaneous receivers is assumed (matching the paper's
/// model), so a broadcast phase is described by its two marginal channels.
#[derive(Debug, Clone, PartialEq)]
pub struct DiscreteNetwork {
    /// `(x_a, x_b) → y_r` multiple-access channel (product-indexed rows).
    pub mac_to_relay: Dmc,
    /// `x_a → y_r` (phase with `a` transmitting alone, relay listening).
    pub a_to_r: Dmc,
    /// `x_a → y_b` (the side-information link of TDBC/HBC phase 1).
    pub a_to_b: Dmc,
    /// `x_b → y_r`.
    pub b_to_r: Dmc,
    /// `x_b → y_a`.
    pub b_to_a: Dmc,
    /// `x_r → y_a` (broadcast phase, terminal `a`).
    pub r_to_a: Dmc,
    /// `x_r → y_b` (broadcast phase, terminal `b`).
    pub r_to_b: Dmc,
}

impl DiscreteNetwork {
    /// Validates alphabet consistency.
    ///
    /// # Panics
    ///
    /// Panics if the MAC channel's input count differs from
    /// `|X_a| · |X_b|` as implied by the point-to-point channels, or if
    /// the two broadcast channels have different input alphabets.
    pub fn new(
        mac_to_relay: Dmc,
        a_to_r: Dmc,
        a_to_b: Dmc,
        b_to_r: Dmc,
        b_to_a: Dmc,
        r_to_a: Dmc,
        r_to_b: Dmc,
    ) -> Self {
        assert_eq!(
            a_to_r.num_inputs(),
            a_to_b.num_inputs(),
            "inconsistent |X_a|"
        );
        assert_eq!(
            b_to_r.num_inputs(),
            b_to_a.num_inputs(),
            "inconsistent |X_b|"
        );
        assert_eq!(
            mac_to_relay.num_inputs(),
            a_to_r.num_inputs() * b_to_r.num_inputs(),
            "MAC channel must be indexed by the product alphabet"
        );
        assert_eq!(
            r_to_a.num_inputs(),
            r_to_b.num_inputs(),
            "inconsistent |X_r|"
        );
        DiscreteNetwork {
            mac_to_relay,
            a_to_r,
            a_to_b,
            b_to_r,
            b_to_a,
            r_to_a,
            r_to_b,
        }
    }

    /// Builds the all-BSC network used throughout the tests and the
    /// binning simulator: every point-to-point link is a `BSC(p_link)` and
    /// the MAC is the **binary adder with XOR noise**
    /// `y_r = x_a ⊕ x_b ⊕ e`, `e ~ Bern(p_mac)`.
    pub fn binary_symmetric(p_direct: f64, p_ar: f64, p_br: f64, p_mac: f64) -> Self {
        let xor_mac = {
            // rows indexed by (xa, xb): output distribution of xa^xb^e.
            let mut rows = Vec::with_capacity(4);
            for xa in 0..2usize {
                for xb in 0..2usize {
                    let clean = xa ^ xb;
                    let mut row = vec![0.0; 2];
                    row[clean] = 1.0 - p_mac;
                    row[clean ^ 1] = p_mac;
                    rows.push(row);
                }
            }
            Dmc::new(rows)
        };
        DiscreteNetwork::new(
            xor_mac,
            Dmc::bsc(p_ar),
            Dmc::bsc(p_direct),
            Dmc::bsc(p_br),
            Dmc::bsc(p_direct),
            Dmc::bsc(p_ar),
            Dmc::bsc(p_br),
        )
    }

    /// `I(X_a; Y_r | X_b)` of the MAC phase with independent inputs.
    pub fn mac_mi_a_given_b(&self, pa: &Pmf, pb: &Pmf) -> f64 {
        self.conditional_mac_mi(pa, pb, true)
    }

    /// `I(X_b; Y_r | X_a)` of the MAC phase with independent inputs.
    pub fn mac_mi_b_given_a(&self, pa: &Pmf, pb: &Pmf) -> f64 {
        self.conditional_mac_mi(pa, pb, false)
    }

    fn conditional_mac_mi(&self, pa: &Pmf, pb: &Pmf, a_is_message: bool) -> f64 {
        let nb = self.b_to_r.num_inputs();
        // Average over the conditioning variable of the per-value MI.
        let (cond, msg) = if a_is_message { (pb, pa) } else { (pa, pb) };
        let mut total = 0.0;
        for c in 0..cond.len() {
            // Channel rows for the message variable with the conditioned
            // input fixed at value c.
            let rows: Vec<Vec<f64>> = (0..msg.len())
                .map(|m| {
                    let (xa, xb) = if a_is_message { (m, c) } else { (c, m) };
                    let idx = xa * nb + xb;
                    self.mac_to_relay.rows()[idx].clone()
                })
                .collect();
            total +=
                cond.prob(c) * JointPmf::from_input_and_channel(msg, &rows).mutual_information();
        }
        total
    }

    /// `I(X_a, X_b; Y_r)` of the MAC phase with independent inputs.
    pub fn mac_mi_sum(&self, pa: &Pmf, pb: &Pmf) -> f64 {
        let nb = self.b_to_r.num_inputs();
        let mut joint_input = Vec::with_capacity(pa.len() * nb);
        for xa in 0..pa.len() {
            for xb in 0..nb {
                joint_input.push(pa.prob(xa) * pb.prob(xb));
            }
        }
        let product = Pmf::new(joint_input).expect("product of PMFs is a PMF");
        JointPmf::from_input_and_channel(&product, self.mac_to_relay.rows()).mutual_information()
    }

    /// Theorem 2 (MABC capacity region) for this network at the given
    /// input distributions (`|Q| = 1` evaluation).
    pub fn mabc_constraints(&self, pa: &Pmf, pb: &Pmf, pr: &Pmf) -> ConstraintSet {
        let i_a = self.mac_mi_a_given_b(pa, pb);
        let i_b = self.mac_mi_b_given_a(pa, pb);
        let i_sum = self.mac_mi_sum(pa, pb);
        let i_ra = self.r_to_a.mutual_information(pr);
        let i_rb = self.r_to_b.mutual_information(pr);
        let mut set = ConstraintSet::new(2, "MABC capacity (Thm 2, DMC)");
        set.push(RateConstraint::new(
            1.0,
            0.0,
            vec![i_a, 0.0],
            "relay decodes Wa",
        ));
        set.push(RateConstraint::new(
            1.0,
            0.0,
            vec![0.0, i_rb],
            "b decodes broadcast",
        ));
        set.push(RateConstraint::new(
            0.0,
            1.0,
            vec![i_b, 0.0],
            "relay decodes Wb",
        ));
        set.push(RateConstraint::new(
            0.0,
            1.0,
            vec![0.0, i_ra],
            "a decodes broadcast",
        ));
        set.push(RateConstraint::new(
            1.0,
            1.0,
            vec![i_sum, 0.0],
            "MAC sum at relay",
        ));
        set
    }

    /// Theorem 3 (TDBC achievable region) for this network.
    pub fn tdbc_inner_constraints(&self, pa: &Pmf, pb: &Pmf, pr: &Pmf) -> ConstraintSet {
        let i_ar = self.a_to_r.mutual_information(pa);
        let i_ab = self.a_to_b.mutual_information(pa);
        let i_br = self.b_to_r.mutual_information(pb);
        let i_ba = self.b_to_a.mutual_information(pb);
        let i_ra = self.r_to_a.mutual_information(pr);
        let i_rb = self.r_to_b.mutual_information(pr);
        let mut set = ConstraintSet::new(3, "TDBC achievable (Thm 3, DMC)");
        set.push(RateConstraint::new(
            1.0,
            0.0,
            vec![i_ar, 0.0, 0.0],
            "relay decodes Wa",
        ));
        set.push(RateConstraint::new(
            1.0,
            0.0,
            vec![i_ab, 0.0, i_rb],
            "b decodes Wa from side info + bins",
        ));
        set.push(RateConstraint::new(
            0.0,
            1.0,
            vec![0.0, i_br, 0.0],
            "relay decodes Wb",
        ));
        set.push(RateConstraint::new(
            0.0,
            1.0,
            vec![0.0, i_ba, i_ra],
            "a decodes Wb from side info + bins",
        ));
        set
    }

    /// Theorem 5 (HBC achievable region) for this network, with
    /// independent inputs in the joint MAC phase.
    pub fn hbc_inner_constraints(&self, pa: &Pmf, pb: &Pmf, pr: &Pmf) -> ConstraintSet {
        let i_ar = self.a_to_r.mutual_information(pa);
        let i_ab = self.a_to_b.mutual_information(pa);
        let i_br = self.b_to_r.mutual_information(pb);
        let i_ba = self.b_to_a.mutual_information(pb);
        let i_ra = self.r_to_a.mutual_information(pr);
        let i_rb = self.r_to_b.mutual_information(pr);
        let i_a_mac = self.mac_mi_a_given_b(pa, pb);
        let i_b_mac = self.mac_mi_b_given_a(pa, pb);
        let i_sum = self.mac_mi_sum(pa, pb);
        let mut set = ConstraintSet::new(4, "HBC achievable (Thm 5, DMC)");
        set.push(RateConstraint::new(
            1.0,
            0.0,
            vec![i_ar, 0.0, i_a_mac, 0.0],
            "relay decodes Wa (phases 1+3)",
        ));
        set.push(RateConstraint::new(
            1.0,
            0.0,
            vec![i_ab, 0.0, 0.0, i_rb],
            "b decodes Wa",
        ));
        set.push(RateConstraint::new(
            0.0,
            1.0,
            vec![0.0, i_br, i_b_mac, 0.0],
            "relay decodes Wb (phases 2+3)",
        ));
        set.push(RateConstraint::new(
            0.0,
            1.0,
            vec![0.0, i_ba, 0.0, i_ra],
            "a decodes Wb",
        ));
        set.push(RateConstraint::new(
            1.0,
            1.0,
            vec![i_ar, i_br, i_sum, 0.0],
            "relay sum (phases 1-3)",
        ));
        set
    }
}

impl DiscreteNetwork {
    /// The MABC boundary achievable with **time sharing** (the paper's
    /// `Q` variable) across several input-distribution triples: per
    /// triple, the fixed-input region boundary is traced at resolution
    /// `n`, and the convex hull of all points is returned
    /// ([`crate::region::time_sharing_hull`]).
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty or `n == 0`.
    pub fn mabc_time_sharing_boundary(
        &self,
        inputs: &[(Pmf, Pmf, Pmf)],
        n: usize,
    ) -> Vec<crate::region::RatePoint> {
        assert!(!inputs.is_empty(), "need at least one input triple");
        let mut points = Vec::new();
        for (pa, pb, pr) in inputs {
            let region = crate::region::RateRegion::new(
                vec![self.mabc_constraints(pa, pb, pr)],
                "MABC (fixed inputs)",
            );
            points.extend(region.boundary(n).expect("boundary trace"));
        }
        crate::region::time_sharing_hull(&points)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer;
    use bcc_num::approx_eq;
    use bcc_num::special::binary_entropy;

    fn uniform_inputs() -> (Pmf, Pmf, Pmf) {
        (Pmf::uniform(2), Pmf::uniform(2), Pmf::uniform(2))
    }

    #[test]
    fn xor_mac_mutual_informations() {
        // XOR MAC with noise p: I(Xa; Yr | Xb) = 1 - h2(p); the *sum* MI is
        // the same because the one-bit output cannot carry more — the
        // defining quirk that makes XOR relaying natural.
        let p = 0.11;
        let net = DiscreteNetwork::binary_symmetric(0.2, 0.1, 0.1, p);
        let (pa, pb, _) = uniform_inputs();
        let expect = 1.0 - binary_entropy(p);
        assert!(approx_eq(net.mac_mi_a_given_b(&pa, &pb), expect, 1e-12));
        assert!(approx_eq(net.mac_mi_b_given_a(&pa, &pb), expect, 1e-12));
        assert!(approx_eq(net.mac_mi_sum(&pa, &pb), expect, 1e-12));
    }

    #[test]
    fn mabc_sum_rate_binary_symmetric() {
        // Perfect links except the MAC: sum rate limited by the XOR-MAC
        // term at Δ1, and by the broadcast capacities at Δ2. With
        // noiseless broadcast (p=0 → capacity 1 each) and MAC capacity
        // c = 1-h2(p): maximize min over the LP → known closed form
        // 2c/(c+... let the LP find it and verify feasibility/valeur by
        // direct argument: sum = max_Δ min(Δ1·c, Δ2·(1+1)/... individual
        // caps bind: Ra ≤ Δ2, Rb ≤ Δ2, sum ≤ Δ1 c ⇒
        // sum* = max_Δ min(Δ1 c, 2(1-Δ1)) = 2c/(c+2).
        let p = 0.11;
        let net = DiscreteNetwork::binary_symmetric(0.5, 0.0, 0.0, p);
        let (pa, pb, pr) = uniform_inputs();
        let set = net.mabc_constraints(&pa, &pb, &pr);
        let sol = optimizer::max_sum_rate(&set).unwrap();
        let c = 1.0 - binary_entropy(p);
        assert!(approx_eq(sol.objective, 2.0 * c / (c + 2.0), 1e-9));
    }

    #[test]
    fn noiseless_network_reaches_one_bit_per_use_per_direction_cap() {
        // All links perfect: MABC sum rate = 2·1/(1+2) = 2/3 bits/use
        // (relay bottleneck: 1 bit per MAC use, 1 bit per broadcast use).
        let net = DiscreteNetwork::binary_symmetric(0.0, 0.0, 0.0, 0.0);
        let (pa, pb, pr) = uniform_inputs();
        let sol = optimizer::max_sum_rate(&net.mabc_constraints(&pa, &pb, &pr)).unwrap();
        assert!(approx_eq(sol.objective, 2.0 / 3.0, 1e-9));
    }

    #[test]
    fn tdbc_uses_side_information_in_dmc_form() {
        // Strong direct links (p_direct small) let TDBC beat MABC whose
        // XOR MAC is noisy — the DMC analogue of the high-SNR regime.
        let net = DiscreteNetwork::binary_symmetric(0.01, 0.05, 0.05, 0.25);
        let (pa, pb, pr) = uniform_inputs();
        let tdbc = optimizer::max_sum_rate(&net.tdbc_inner_constraints(&pa, &pb, &pr))
            .unwrap()
            .objective;
        let mabc = optimizer::max_sum_rate(&net.mabc_constraints(&pa, &pb, &pr))
            .unwrap()
            .objective;
        assert!(tdbc > mabc, "TDBC {tdbc} should beat MABC {mabc} here");
        // And the reverse regime: dead direct link, clean MAC.
        let net2 = DiscreteNetwork::binary_symmetric(0.5, 0.05, 0.05, 0.01);
        let tdbc2 = optimizer::max_sum_rate(&net2.tdbc_inner_constraints(&pa, &pb, &pr))
            .unwrap()
            .objective;
        let mabc2 = optimizer::max_sum_rate(&net2.mabc_constraints(&pa, &pb, &pr))
            .unwrap()
            .objective;
        assert!(mabc2 > tdbc2, "MABC {mabc2} should beat TDBC {tdbc2} here");
    }

    #[test]
    fn hbc_dominates_in_dmc_form_too() {
        for (pd, pr_, pm) in [(0.1, 0.05, 0.1), (0.3, 0.02, 0.02), (0.02, 0.2, 0.3)] {
            let net = DiscreteNetwork::binary_symmetric(pd, pr_, pr_, pm);
            let (pa, pb, pr) = uniform_inputs();
            let hbc = optimizer::max_sum_rate(&net.hbc_inner_constraints(&pa, &pb, &pr))
                .unwrap()
                .objective;
            let mabc = optimizer::max_sum_rate(&net.mabc_constraints(&pa, &pb, &pr))
                .unwrap()
                .objective;
            let tdbc = optimizer::max_sum_rate(&net.tdbc_inner_constraints(&pa, &pb, &pr))
                .unwrap()
                .objective;
            assert!(
                hbc >= mabc - 1e-9 && hbc >= tdbc - 1e-9,
                "({pd},{pr_},{pm})"
            );
        }
    }

    #[test]
    fn biased_inputs_lose_on_symmetric_channels() {
        let net = DiscreteNetwork::binary_symmetric(0.1, 0.05, 0.05, 0.1);
        let uniform = Pmf::uniform(2);
        let biased = Pmf::bernoulli(0.2);
        let pr = Pmf::uniform(2);
        let sym = optimizer::max_sum_rate(&net.mabc_constraints(&uniform, &uniform, &pr))
            .unwrap()
            .objective;
        let skew = optimizer::max_sum_rate(&net.mabc_constraints(&biased, &biased, &pr))
            .unwrap()
            .objective;
        assert!(
            sym > skew,
            "uniform {sym} must beat biased {skew} on symmetric links"
        );
    }

    #[test]
    fn time_sharing_hull_dominates_each_fixed_input() {
        // On a Z-channel-flavoured asymmetric MAC, different input biases
        // favour different corners; time sharing (Q) glues them together.
        let net = DiscreteNetwork::binary_symmetric(0.2, 0.05, 0.15, 0.08);
        let inputs = vec![
            (Pmf::uniform(2), Pmf::uniform(2), Pmf::uniform(2)),
            (Pmf::bernoulli(0.2), Pmf::uniform(2), Pmf::uniform(2)),
            (Pmf::uniform(2), Pmf::bernoulli(0.8), Pmf::uniform(2)),
        ];
        let hull = net.mabc_time_sharing_boundary(&inputs, 12);
        assert!(!hull.is_empty());
        for (pa, pb, pr) in &inputs {
            let region =
                crate::region::RateRegion::new(vec![net.mabc_constraints(pa, pb, pr)], "member");
            for pt in region.boundary(6).unwrap() {
                let hull_ra =
                    crate::region::hull_max_ra(&hull, pt.rb).expect("rb within hull range");
                assert!(
                    hull_ra >= pt.ra - 1e-7,
                    "hull {hull_ra} lost member point {pt}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "product alphabet")]
    fn mismatched_mac_alphabet_rejected() {
        let _ = DiscreteNetwork::new(
            Dmc::bsc(0.1), // wrong: 2 inputs, needs 4
            Dmc::bsc(0.1),
            Dmc::bsc(0.1),
            Dmc::bsc(0.1),
            Dmc::bsc(0.1),
            Dmc::bsc(0.1),
            Dmc::bsc(0.1),
        );
    }
}
