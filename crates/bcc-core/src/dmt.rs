//! Finite-SNR diversity–multiplexing tradeoff (DMT) estimation and
//! optimum power allocation — the study layer of Yi & Kim, *"Finite-SNR
//! Diversity-Multiplexing Tradeoff and Optimum Power Allocation in
//! Bidirectional Cooperative Networks"*, on top of this crate's bounds.
//!
//! Asymptotic DMT analysis sends the SNR to infinity; the finite-SNR
//! variant asks the operational question instead: at *this* SNR, operating
//! at multiplexing gain `r` (target sum rate `r·log2(1 + SNR)`), what
//! outage probability does each protocol deliver, and how fast does it
//! fall as the SNR grows? The **finite-SNR diversity order** is the local
//! log–log slope
//!
//! ```text
//! d(r, SNR) = −∂ ln P_out(r, SNR) / ∂ ln SNR
//! ```
//!
//! estimated here by finite differences over the scenario's SNR grid
//! ([`Evaluator::dmt`] → [`DmtResult`]). The companion question — how to
//! split a *fixed total power* between the terminals and the relay so the
//! network fades out least often — is answered by a golden-section search
//! over the allocation simplex ([`Evaluator::allocation`] →
//! [`AllocationResult`]), with common random fades across candidate
//! splits so the search surface is deterministic and smooth.
//!
//! Both entry points reuse the scenario engine wholesale: the Monte-Carlo
//! fan-out is the same deterministic `point × trial` grid as
//! [`Evaluator::outage`] (bit-identical at every worker count), and every
//! faded operating point is solved by the same LP bounds as the rest of
//! the workspace.

use crate::error::CoreError;
use crate::gaussian::GaussianNetwork;
use crate::kernel::SolveCtx;
use crate::protocol::{Protocol, ProtocolMap};
use crate::scenario::{trial_stream, Evaluator, FadingSpec};
use bcc_channel::PowerSplit;
use bcc_num::optim::golden_section_max;
use bcc_num::special::log2_1p;
use bcc_num::{par, stats::Ecdf};

/// Relay-share search bracket of the allocation polish (a share of
/// exactly 0 or 1 silences a node entirely; the search stays strictly
/// inside the simplex).
const RELAY_SHARE_RANGE: (f64, f64) = (0.02, 0.96);
/// Terminal-balance search bracket.
const BALANCE_RANGE: (f64, f64) = (0.02, 0.98);
/// Golden-section bracket tolerance on both simplex coordinates.
const SEARCH_TOL: f64 = 5e-3;
/// Width of the polish bracket around the best coarse candidate's relay
/// share.
const POLISH_WINDOW: f64 = 0.18;
/// Built-in coarse relay-share grid used when the scenario carries no
/// [`Scenario::power_grid`](crate::scenario::Scenario::power_grid).
const DEFAULT_RELAY_SHARES: [f64; 8] = [0.1, 0.2, 0.3, 1.0 / 3.0, 0.4, 0.5, 0.65, 0.8];

/// The output of [`Evaluator::dmt`]: per-protocol outage probabilities and
/// finite-SNR diversity estimates over an `SNR × multiplexing-gain` grid.
///
/// ```
/// use bcc_core::prelude::*;
///
/// let net = GaussianNetwork::from_db(Db::new(0.0), Db::new(0.0), Db::new(0.0), Db::new(0.0));
/// let dmt = Scenario::power_sweep_db(net, [0.0, 6.0, 12.0])
///     .protocols([Protocol::DirectTransmission])
///     .multiplexing_gains([0.3])
///     .rayleigh(400, 7)
///     .build()
///     .dmt()
///     .unwrap();
/// let outage = dmt.outage(Protocol::DirectTransmission, 0);
/// // Outage falls with SNR at fixed multiplexing gain...
/// assert!(outage[0] > outage[2]);
/// // ...and the log–log slope is the finite-SNR diversity estimate.
/// let d = dmt.diversity_fit(Protocol::DirectTransmission, 0).unwrap();
/// assert!(d > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct DmtResult {
    /// Human-readable name of the swept parameter.
    pub x_name: String,
    /// Reference SNR (linear) of each grid point, in sweep order.
    pub snrs: Vec<f64>,
    /// The multiplexing gains evaluated, in the order given to
    /// [`Scenario::multiplexing_gains`](crate::scenario::Scenario::multiplexing_gains).
    pub gains: Vec<f64>,
    /// The fading specification the samples were drawn under.
    pub spec: FadingSpec,
    protocols: Vec<Protocol>,
    /// `outage[protocol][gain][point]`.
    outage: ProtocolMap<Vec<Vec<f64>>>,
    /// `diversity[protocol][gain][point]` (NaN where undefined).
    diversity: ProtocolMap<Vec<Vec<f64>>>,
}

/// Equality is **bit-identity** on the probability/diversity matrices
/// (`f64::to_bits`), not IEEE `==`: the diversity matrix legitimately
/// carries NaN placeholders where a slope is undefined, and the type's
/// main equality use is asserting that serial and parallel runs agree —
/// a derived `PartialEq` would report bit-identical results as unequal
/// the moment any outage estimate hits 0.
impl PartialEq for DmtResult {
    fn eq(&self, other: &Self) -> bool {
        fn bits_eq(a: &ProtocolMap<Vec<Vec<f64>>>, b: &ProtocolMap<Vec<Vec<f64>>>) -> bool {
            Protocol::ALL.iter().all(|&p| match (a.get(p), b.get(p)) {
                (None, None) => true,
                (Some(x), Some(y)) => {
                    x.len() == y.len()
                        && x.iter().zip(y).all(|(r, s)| {
                            r.len() == s.len()
                                && r.iter().zip(s).all(|(u, v)| u.to_bits() == v.to_bits())
                        })
                }
                _ => false,
            })
        }
        self.x_name == other.x_name
            && self.snrs == other.snrs
            && self.gains == other.gains
            && self.spec == other.spec
            && self.protocols == other.protocols
            && bits_eq(&self.outage, &other.outage)
            && bits_eq(&self.diversity, &other.diversity)
    }
}

impl DmtResult {
    /// The protocols evaluated, in evaluation order.
    pub fn protocols(&self) -> &[Protocol] {
        &self.protocols
    }

    /// The target sum rate `r·log2(1 + SNR)` at `(gain_idx, point_idx)`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn target_rate(&self, gain_idx: usize, point_idx: usize) -> f64 {
        self.gains[gain_idx] * log2_1p(self.snrs[point_idx])
    }

    /// Empirical outage probabilities of `protocol` at multiplexing gain
    /// `gains[gain_idx]`, one per grid point.
    ///
    /// # Panics
    ///
    /// Panics if `protocol` was not part of the scenario or the index is
    /// out of range.
    pub fn outage(&self, protocol: Protocol, gain_idx: usize) -> &[f64] {
        &self.outage.get(protocol).expect("protocol evaluated")[gain_idx]
    }

    /// Pointwise finite-SNR diversity estimates
    /// `d(r, SNR_k) = −Δ ln P_out / Δ ln SNR` of `protocol` at
    /// `gains[gain_idx]` (central differences, one-sided at the grid
    /// edges; NaN where a neighbouring outage probability is 0 and the
    /// slope is undefined).
    ///
    /// # Panics
    ///
    /// Panics if `protocol` was not part of the scenario or the index is
    /// out of range.
    pub fn diversity(&self, protocol: Protocol, gain_idx: usize) -> &[f64] {
        &self.diversity.get(protocol).expect("protocol evaluated")[gain_idx]
    }

    /// The least-squares finite-SNR diversity over the whole grid: the
    /// slope of `−ln P_out` against `ln SNR` fitted to every point with a
    /// positive outage estimate. `None` if fewer than two such points
    /// exist. More robust than the pointwise slopes when the per-point
    /// probabilities carry Monte-Carlo noise — the golden tests pin this.
    ///
    /// # Panics
    ///
    /// Panics if `protocol` was not part of the scenario or the index is
    /// out of range.
    pub fn diversity_fit(&self, protocol: Protocol, gain_idx: usize) -> Option<f64> {
        let probs = self.outage(protocol, gain_idx);
        let pts: Vec<(f64, f64)> = self
            .snrs
            .iter()
            .zip(probs)
            .filter(|&(_, &p)| p > 0.0)
            .map(|(&s, &p)| (s.ln(), p.ln()))
            .collect();
        if pts.len() < 2 {
            return None;
        }
        let n = pts.len() as f64;
        let mx = pts.iter().map(|p| p.0).sum::<f64>() / n;
        let my = pts.iter().map(|p| p.1).sum::<f64>() / n;
        let sxx: f64 = pts.iter().map(|p| (p.0 - mx) * (p.0 - mx)).sum();
        if sxx == 0.0 {
            return None;
        }
        let sxy: f64 = pts.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum();
        Some(-sxy / sxx)
    }
}

/// One protocol's entry of an [`AllocationResult`]: the outage-optimal
/// power split found by the search, against the uniform-split baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Allocation {
    /// The protocol this allocation belongs to.
    pub protocol: Protocol,
    /// The best split found (same total budget as the scenario's network).
    pub split: PowerSplit,
    /// The ε-outage equal-rate sum rate achieved at
    /// [`Allocation::split`].
    pub value: f64,
    /// The same objective at the uniform split — never above
    /// [`Allocation::value`], because the uniform split is always among
    /// the candidates.
    pub uniform_value: f64,
}

impl Allocation {
    /// The ε-outage equal-rate sum rate gained over the uniform split
    /// (≥ 0).
    pub fn gain_over_uniform(&self) -> f64 {
        self.value - self.uniform_value
    }
}

/// The output of [`Evaluator::allocation`]: per-protocol optimal power
/// splits under a fixed total budget.
///
/// ```
/// use bcc_core::prelude::*;
///
/// let net = GaussianNetwork::from_db(Db::new(10.0), Db::new(0.0), Db::new(0.0), Db::new(0.0));
/// let alloc = Scenario::at(net)
///     .protocols([Protocol::Mabc])
///     .rayleigh(120, 5)
///     .build()
///     .allocation(0.25)
///     .unwrap();
/// let best = alloc.get(Protocol::Mabc).unwrap();
/// // The search respects the total-power budget...
/// assert!((best.split.total() - alloc.total_power).abs() < 1e-9 * alloc.total_power);
/// // ...and can only improve on the uniform baseline.
/// assert!(best.value >= best.uniform_value);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AllocationResult {
    /// The outage level ε the search optimised for.
    pub eps: f64,
    /// The fixed total budget every candidate split distributes.
    pub total_power: f64,
    /// The fading specification the fades were drawn under.
    pub spec: FadingSpec,
    protocols: Vec<Protocol>,
    entries: ProtocolMap<Allocation>,
}

impl AllocationResult {
    /// The protocols evaluated, in evaluation order.
    pub fn protocols(&self) -> &[Protocol] {
        &self.protocols
    }

    /// The allocation of `protocol`, or `None` if it was not evaluated.
    pub fn get(&self, protocol: Protocol) -> Option<&Allocation> {
        self.entries.get(protocol)
    }

    /// Iterates the allocations in evaluation order.
    pub fn entries(&self) -> impl Iterator<Item = &Allocation> {
        self.protocols.iter().filter_map(|&p| self.entries.get(p))
    }
}

impl Evaluator {
    /// Estimates the finite-SNR diversity–multiplexing tradeoff over the
    /// scenario's grid: at each grid point (reference SNR `ρ`) and each
    /// attached multiplexing gain `r`, the outage probability of the
    /// optimal sum rate against the target `r·log2(1 + ρ)`, plus the
    /// log–log diversity slopes across the SNR axis.
    ///
    /// The Monte-Carlo samples are drawn exactly as in
    /// [`Evaluator::outage`] — one draw serves every multiplexing gain,
    /// and results are bit-identical at any worker count.
    ///
    /// # Errors
    ///
    /// Currently infallible (LP failures on faded draws count as rate 0,
    /// the Monte-Carlo convention); the `Result` keeps the signature
    /// uniform with the other evaluator runs.
    ///
    /// # Panics
    ///
    /// Panics if the scenario has no fading spec or no multiplexing
    /// gains, or if any grid point has a zero reference SNR (its log-SNR
    /// coordinate would be undefined).
    pub fn dmt(&mut self) -> Result<DmtResult, CoreError> {
        let gains = self.scenario.multiplexing_gains.clone();
        assert!(
            !gains.is_empty(),
            "scenario has no multiplexing gains; attach them with Scenario::multiplexing_gains(...)"
        );
        let snrs: Vec<f64> = self
            .scenario
            .points
            .iter()
            .map(|p| p.net.reference_snr())
            .collect();
        assert!(
            snrs.iter().all(|&s| s > 0.0),
            "every grid point needs a positive reference SNR for DMT estimation"
        );
        let (spec, samples) = self.fading_sum_rate_samples();
        let sc = &self.scenario;

        let mut outage: ProtocolMap<Vec<Vec<f64>>> = ProtocolMap::new();
        let mut diversity: ProtocolMap<Vec<Vec<f64>>> = ProtocolMap::new();
        for &p in &sc.protocols {
            let per_point = samples.get(p).expect("sampled");
            let mut out_rows = Vec::with_capacity(gains.len());
            let mut div_rows = Vec::with_capacity(gains.len());
            for &r in &gains {
                let probs: Vec<f64> = per_point
                    .iter()
                    .zip(&snrs)
                    .map(|(trials, &snr)| {
                        let target = r * log2_1p(snr);
                        trials.iter().filter(|&&v| v < target).count() as f64 / trials.len() as f64
                    })
                    .collect();
                div_rows.push(log_log_slopes(&snrs, &probs));
                out_rows.push(probs);
            }
            outage.insert(p, out_rows);
            diversity.insert(p, div_rows);
        }
        Ok(DmtResult {
            x_name: sc.x_name.clone(),
            snrs,
            gains,
            spec,
            protocols: sc.protocols.clone(),
            outage,
            diversity,
        })
    }

    /// Searches, per protocol, for the power split of the scenario
    /// network's total budget that maximises the **ε-outage equal-rate
    /// sum rate**: twice the max–min rate supported in all but an `eps`
    /// fraction of fades — the standard dual of minimising outage
    /// probability at a symmetric target, which is how the bidirectional
    /// DMT literature (Yi & Kim) defines outage. Equal rates matter: the
    /// unconstrained *sum* rate would happily starve one terminal (and
    /// one direction) entirely, so its optimal "split" on a symmetric
    /// channel is a degenerate one-way allocation rather than the
    /// uniform split the equal-rate objective recovers.
    ///
    /// The search walks the allocation simplex in two coordinates: the
    /// relay's share of the budget and the terminals' balance. Candidates
    /// from [`Scenario::power_grid`](crate::scenario::Scenario::power_grid)
    /// (or a built-in coarse grid) seed a golden-section polish of each
    /// coordinate. Every candidate is scored against the *same* fade
    /// draws (common random numbers, from the scenario's deterministic
    /// seed streams), so the objective is a fixed deterministic surface
    /// and the result is reproducible at any worker count. The uniform
    /// split is always scored; the returned allocation never falls below
    /// it.
    ///
    /// # Errors
    ///
    /// Currently infallible (see [`Evaluator::dmt`] on the convention);
    /// the `Result` keeps the signature uniform.
    ///
    /// # Panics
    ///
    /// Panics if the scenario has more than one grid point, has no fading
    /// spec, carries a `power_grid` whose budget disagrees with the
    /// network's, or if `eps ∉ (0, 1)`.
    pub fn allocation(&mut self, eps: f64) -> Result<AllocationResult, CoreError> {
        assert!(
            (0.0..1.0).contains(&eps) && eps > 0.0,
            "outage level must lie strictly inside (0, 1), got {eps}"
        );
        assert_eq!(
            self.scenario.points.len(),
            1,
            "allocation() optimises one operating point; give the scenario a single grid point"
        );
        assert!(
            self.scenario.rate_floor.is_none(),
            "rate_floor applies to sweep()/comparisons() only; allocation() scores the \
             unconstrained equal-rate optimum — remove the floor"
        );
        let spec = self
            .scenario
            .fading
            .expect("scenario has no fading model; attach one with Scenario::fading(...)");
        let threads = self.thread_count();
        let sc = &self.scenario;
        let base = sc.points[0].net;
        let state = base.state();
        let total = base.powers().total();

        // Common random numbers: one fade set, drawn from the same
        // per-trial streams as a single-point outage run, scores every
        // candidate split.
        let fades: Vec<(f64, f64, f64)> = (0..spec.trials)
            .map(|t| {
                let mut rng = trial_stream(spec.seed, t as u64);
                (
                    spec.model.sample_power(&mut rng),
                    spec.model.sample_power(&mut rng),
                    spec.model.sample_power(&mut rng),
                )
            })
            .collect();

        let uniform = PowerSplit::uniform(total);
        let candidates: Vec<PowerSplit> = if sc.power_grid.is_empty() {
            DEFAULT_RELAY_SHARES
                .iter()
                .map(|&share| {
                    // The 1/3 entry is the uniform split — use the exact
                    // construction so its coarse score can be reused as
                    // the baseline without a second Monte-Carlo pass.
                    if share == 1.0 / 3.0 {
                        uniform
                    } else {
                        PowerSplit::from_shares(total, share, 0.5)
                    }
                })
                .collect()
        } else {
            for s in &sc.power_grid {
                assert!(
                    (s.total() - total).abs() <= 1e-9 * (1.0 + total),
                    "power grid budget {} disagrees with the network's total {total}",
                    s.total()
                );
            }
            sc.power_grid.clone()
        };

        let mut entries: ProtocolMap<Allocation> = ProtocolMap::new();
        for &protocol in &sc.protocols {
            let objective = |split: PowerSplit| -> f64 {
                let net = GaussianNetwork::with_powers(split, state);
                let samples = par::par_map_range(threads, fades.len(), SolveCtx::new, |ctx, t| {
                    let (fab, far, fbr) = fades[t];
                    let faded = net.with_state(state.faded(fab, far, fbr));
                    // Equal-rate sum: twice the max–min rate on the faded
                    // network (closed-form kernel where available, warm
                    // simplex otherwise; a deep-fade LP failure counts as
                    // rate 0).
                    ctx.solve_one(&faded, crate::kernel::SolveRequest::max_min(protocol))
                        .map(|o| 2.0 * o.value)
                        .unwrap_or(0.0)
                });
                Ecdf::new(samples).quantile(eps)
            };

            // Coarse pass over the candidate grid, remembering the
            // uniform split's score if it is among the candidates (the
            // common-random-numbers design makes re-evaluation a pure
            // waste of `trials` LP solves).
            let mut coarse_uniform: Option<f64> = None;
            let (mut best_split, mut best_value) = (candidates[0], f64::NEG_INFINITY);
            for &cand in &candidates {
                let v = objective(cand);
                if cand == uniform {
                    coarse_uniform = Some(v);
                }
                if v > best_value {
                    (best_split, best_value) = (cand, v);
                }
            }
            // Golden-section polish: relay share in a window around the
            // coarse winner, then terminal balance over its full bracket.
            let balance0 = best_split.terminal_balance();
            let rho0 = best_split.relay_share();
            let rho_lo = (rho0 - POLISH_WINDOW).max(RELAY_SHARE_RANGE.0);
            let rho_hi = (rho0 + POLISH_WINDOW).min(RELAY_SHARE_RANGE.1);
            let rho_star = golden_section_max(
                |rho| objective(PowerSplit::from_shares(total, rho, balance0)),
                rho_lo,
                rho_hi,
                SEARCH_TOL,
            );
            let beta_star = golden_section_max(
                |beta| objective(PowerSplit::from_shares(total, rho_star.x, beta)),
                BALANCE_RANGE.0,
                BALANCE_RANGE.1,
                SEARCH_TOL,
            );
            // Both polish stages are candidates: the objective is a step
            // function (an empirical quantile), so the β-stage midpoint
            // can land on a lower step than the ρ-stage optimum it
            // started from — never discard a point already scored.
            let rho_point = PowerSplit::from_shares(total, rho_star.x, balance0);
            if rho_star.value > best_value {
                (best_split, best_value) = (rho_point, rho_star.value);
            }
            let polished = PowerSplit::from_shares(total, rho_star.x, beta_star.x);
            if beta_star.value > best_value {
                (best_split, best_value) = (polished, beta_star.value);
            }
            // The uniform baseline is always scored and never beaten
            // silently.
            let uniform_value = coarse_uniform.unwrap_or_else(|| objective(uniform));
            if uniform_value >= best_value {
                (best_split, best_value) = (uniform, uniform_value);
            }
            entries.insert(
                protocol,
                Allocation {
                    protocol,
                    split: best_split,
                    value: best_value,
                    uniform_value,
                },
            );
        }
        Ok(AllocationResult {
            eps,
            total_power: total,
            spec,
            protocols: sc.protocols.clone(),
            entries,
        })
    }
}

/// Log–log slopes `−Δ ln p / Δ ln s` along a grid: central differences in
/// the interior, one-sided at the edges, NaN wherever an involved
/// probability is non-positive or the SNR span is degenerate.
fn log_log_slopes(snrs: &[f64], probs: &[f64]) -> Vec<f64> {
    let n = snrs.len();
    (0..n)
        .map(|k| {
            let lo = k.saturating_sub(1);
            let hi = (k + 1).min(n - 1);
            if lo == hi || probs[lo] <= 0.0 || probs[hi] <= 0.0 {
                return f64::NAN;
            }
            let ds = snrs[hi].ln() - snrs[lo].ln();
            if ds == 0.0 {
                return f64::NAN;
            }
            -(probs[hi].ln() - probs[lo].ln()) / ds
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;
    use bcc_channel::fading::FadingModel;
    use bcc_num::Db;

    fn sym_net(p_db: f64) -> GaussianNetwork {
        GaussianNetwork::from_db(Db::new(p_db), Db::new(0.0), Db::new(0.0), Db::new(0.0))
    }

    #[test]
    fn log_log_slopes_recover_exact_power_law() {
        // p = c · s^{-2}: every slope is exactly 2.
        let snrs = [1.0, 2.0, 4.0, 8.0];
        let probs: Vec<f64> = snrs.iter().map(|s| 0.3 / (s * s)).collect();
        for d in log_log_slopes(&snrs, &probs) {
            assert!((d - 2.0).abs() < 1e-12, "slope {d}");
        }
    }

    #[test]
    fn log_log_slopes_flag_undefined_points() {
        let snrs = [1.0, 2.0, 4.0];
        let ds = log_log_slopes(&snrs, &[0.5, 0.0, 0.1]);
        // Edge slopes touch the zero probability and are undefined; the
        // central difference at index 1 skips over it and stays finite.
        assert!(ds[0].is_nan() && ds[2].is_nan(), "{ds:?}");
        assert!(ds[1].is_finite(), "{ds:?}");
        let one = log_log_slopes(&[3.0], &[0.5]);
        assert!(one[0].is_nan());
    }

    #[test]
    fn dmt_outage_monotone_in_gain_and_snr() {
        let mut ev = Scenario::power_sweep_db(sym_net(0.0), [0.0, 6.0, 12.0])
            .protocols([Protocol::DirectTransmission, Protocol::Tdbc])
            .multiplexing_gains([0.2, 0.5])
            .rayleigh(600, 11)
            .build();
        let dmt = ev.dmt().unwrap();
        for &p in dmt.protocols() {
            for gi in 0..2 {
                let o = dmt.outage(p, gi);
                assert!(
                    o.windows(2).all(|w| w[1] <= w[0] + 1e-12),
                    "{p} gain {gi}: outage must fall with SNR: {o:?}"
                );
            }
            // Higher multiplexing gain, higher (or equal) outage pointwise.
            for k in 0..3 {
                assert!(dmt.outage(p, 1)[k] >= dmt.outage(p, 0)[k] - 1e-12);
            }
        }
    }

    #[test]
    fn dmt_without_fading_is_a_step_function() {
        // No fading: outage is 0 or 1 exactly, depending on whether the
        // deterministic optimum clears the target.
        let mut ev = Scenario::power_sweep_db(sym_net(10.0), [10.0])
            .protocols([Protocol::Mabc])
            .multiplexing_gains([0.1, 10.0])
            .fading(FadingModel::None, 8, 1)
            .build();
        let dmt = ev.dmt().unwrap();
        assert_eq!(dmt.outage(Protocol::Mabc, 0), &[0.0]);
        assert_eq!(dmt.outage(Protocol::Mabc, 1), &[1.0]);
        assert!(dmt.diversity_fit(Protocol::Mabc, 0).is_none());
    }

    #[test]
    fn dmt_bit_identical_across_worker_counts() {
        let scenario = Scenario::power_sweep_db(sym_net(0.0), [0.0, 8.0])
            .protocols([Protocol::Mabc])
            .multiplexing_gains([0.3])
            .rayleigh(300, 21);
        let serial = scenario.clone().threads(1).build().dmt().unwrap();
        let par = scenario.threads(4).build().dmt().unwrap();
        assert_eq!(serial, par);
    }

    #[test]
    fn allocation_respects_budget_and_uniform_floor() {
        let mut ev = Scenario::at(sym_net(8.0))
            .protocols([Protocol::Mabc])
            .rayleigh(200, 3)
            .build();
        let alloc = ev.allocation(0.2).unwrap();
        let a = alloc.get(Protocol::Mabc).unwrap();
        assert!((a.split.total() - alloc.total_power).abs() < 1e-9 * alloc.total_power);
        assert!(a.value >= a.uniform_value, "uniform floor violated");
        assert!(a.gain_over_uniform() >= 0.0);
    }

    #[test]
    fn allocation_starves_the_relay_for_direct_transmission() {
        // DT cannot use the relay: the optimal relay share must sit at the
        // bottom of the search bracket.
        let mut ev = Scenario::at(sym_net(8.0))
            .protocols([Protocol::DirectTransmission])
            .rayleigh(150, 9)
            .build();
        let alloc = ev.allocation(0.2).unwrap();
        let a = alloc.get(Protocol::DirectTransmission).unwrap();
        assert!(
            a.split.relay_share() < 0.1,
            "DT relay share {} should be minimal",
            a.split.relay_share()
        );
        assert!(a.value > a.uniform_value, "reclaiming relay power must pay");
    }

    #[test]
    fn allocation_bit_identical_across_worker_counts() {
        let scenario = Scenario::at(sym_net(8.0))
            .protocols([Protocol::Tdbc])
            .rayleigh(120, 5);
        let serial = scenario
            .clone()
            .threads(1)
            .build()
            .allocation(0.25)
            .unwrap();
        let par = scenario.threads(4).build().allocation(0.25).unwrap();
        assert_eq!(serial, par);
    }

    #[test]
    fn allocation_honours_custom_power_grid() {
        let total = 3.0 * Db::new(8.0).to_linear();
        let mut ev = Scenario::at(sym_net(8.0))
            .protocols([Protocol::Mabc])
            .power_grid([
                PowerSplit::from_shares(total, 0.3, 0.5),
                PowerSplit::from_shares(total, 0.5, 0.5),
            ])
            .rayleigh(100, 13)
            .build();
        let alloc = ev.allocation(0.3).unwrap();
        assert!((alloc.total_power - total).abs() < 1e-9 * total);
    }

    #[test]
    #[should_panic(expected = "rate_floor applies to sweep()")]
    fn outage_rejects_rate_floor() {
        let _ = Scenario::at(sym_net(5.0))
            .rate_floor(0.5, 0.5)
            .rayleigh(10, 1)
            .build()
            .outage();
    }

    #[test]
    #[should_panic(expected = "rate_floor applies to sweep()")]
    fn allocation_rejects_rate_floor() {
        let _ = Scenario::at(sym_net(5.0))
            .rate_floor(0.5, 0.5)
            .rayleigh(10, 1)
            .build()
            .allocation(0.1);
    }

    #[test]
    #[should_panic(expected = "multiplexing gains")]
    fn dmt_requires_gains() {
        let _ = Scenario::power_sweep_db(sym_net(0.0), [0.0])
            .rayleigh(10, 1)
            .build()
            .dmt();
    }

    #[test]
    #[should_panic(expected = "single grid point")]
    fn allocation_requires_single_point() {
        let _ = Scenario::power_sweep_db(sym_net(0.0), [0.0, 5.0])
            .rayleigh(10, 1)
            .build()
            .allocation(0.1);
    }
}
