//! Error type for bound computations.

use bcc_lp::LpError;
use std::error::Error;
use std::fmt;

/// Errors produced while evaluating bounds or optimising schedules.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The underlying linear program failed. `context` names the
    /// computation (e.g. `"TDBC sum-rate"`), which matters because an
    /// infeasible LP is expected in membership tests but a bug in
    /// optimisation.
    Lp {
        /// What was being computed.
        context: String,
        /// The solver error.
        source: LpError,
    },
    /// A requested rate is outside the region for every time allocation.
    RateUnachievable {
        /// The requested rate (bits per channel use).
        rate: f64,
    },
    /// Every candidate in a comparison produced a non-finite optimum, so no
    /// winner can be selected. Carries the sum rates actually seen.
    NoFiniteOptimum {
        /// What was being compared (e.g. a scenario grid-point label).
        context: String,
    },
    /// A deterministic chaos fault (see [`bcc_num::faults`]) was injected
    /// at this computation. Only ever produced under an armed
    /// [`bcc_num::faults::FaultPlan`]; batch drivers and the serving
    /// layer degrade per item rather than aborting on it.
    Injected {
        /// The injection site, e.g. `"kernel poison"`.
        site: &'static str,
    },
    /// A scenario or topology input failed validation before any solve
    /// ran — the builder-API counterpart of the serving layer's
    /// up-front query validation. Carries the human-readable reason
    /// (e.g. a relay position outside `(0, 1)`, or a placement whose
    /// clamped path-loss gain still overflowed).
    InvalidInput {
        /// What was rejected and why.
        context: String,
    },
}

impl CoreError {
    pub(crate) fn lp(context: impl Into<String>, source: LpError) -> Self {
        CoreError::Lp {
            context: context.into(),
            source,
        }
    }

    /// `true` if the underlying linear program declared the point
    /// *infeasible* — the one LP failure that describes the input rather
    /// than the solver, so batch drivers record it per grid point and move
    /// on instead of aborting the whole sweep (see
    /// [`SweepResult::skipped`](crate::scenario::SweepResult::skipped)).
    pub fn is_infeasible(&self) -> bool {
        matches!(
            self,
            CoreError::Lp {
                source: LpError::Infeasible,
                ..
            }
        )
    }

    /// `true` if this error was produced by deterministic fault injection
    /// ([`CoreError::Injected`]) — chaos by construction, so degradation
    /// paths contain it per item instead of aborting.
    pub fn is_injected(&self) -> bool {
        matches!(self, CoreError::Injected { .. })
    }

    /// `true` if the input was rejected by up-front validation
    /// ([`CoreError::InvalidInput`]) — the caller supplied an unusable
    /// parameter; nothing was solved.
    pub fn is_invalid_input(&self) -> bool {
        matches!(self, CoreError::InvalidInput { .. })
    }

    /// `true` if the underlying solver ran out of its iteration budget —
    /// the resource-exhaustion failure that serving layers degrade on
    /// (conservative fallback answer) rather than propagate.
    pub fn is_resource_limit(&self) -> bool {
        matches!(
            self,
            CoreError::Lp {
                source: LpError::IterationLimit,
                ..
            }
        )
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Lp { context, source } => {
                write!(f, "linear program failed during {context}: {source}")
            }
            CoreError::RateUnachievable { rate } => {
                write!(
                    f,
                    "rate {rate} bits/use is unachievable for any time allocation"
                )
            }
            CoreError::NoFiniteOptimum { context } => {
                write!(f, "no candidate produced a finite optimum during {context}")
            }
            CoreError::Injected { site } => {
                write!(f, "injected fault: {site}")
            }
            CoreError::InvalidInput { context } => {
                write!(f, "invalid input: {context}")
            }
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Lp { source, .. } => Some(source),
            CoreError::RateUnachievable { .. }
            | CoreError::NoFiniteOptimum { .. }
            | CoreError::Injected { .. }
            | CoreError::InvalidInput { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        let e = CoreError::lp("MABC sum-rate", LpError::Unbounded);
        let msg = e.to_string();
        assert!(msg.contains("MABC sum-rate"));
        assert!(msg.contains("unbounded"));
    }

    #[test]
    fn source_chain() {
        let e = CoreError::lp("x", LpError::Infeasible);
        assert!(e.source().is_some());
        assert!(CoreError::RateUnachievable { rate: 2.0 }.source().is_none());
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
