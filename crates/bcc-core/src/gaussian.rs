//! The Gaussian bidirectional relay network of Section IV.
//!
//! Bundles the per-node transmit power `P` (noise normalised to 1) with the
//! reciprocal power gains and exposes the paper's quantities as methods:
//! constraint sets, rate regions and the sum-rate optimum of each protocol.

use crate::bounds;
use crate::constraint::PhaseVec;
use crate::error::CoreError;
use crate::optimizer::SchedulePoint;
use crate::protocol::{Bound, Protocol};
use crate::region::RateRegion;
use bcc_channel::{ChannelState, PowerSplit};
use bcc_num::Db;

/// A Gaussian three-node network: per-node powers and gains
/// `(G_ab, G_ar, G_br)`.
///
/// The paper's setting is a *common* per-node power `P`
/// ([`GaussianNetwork::new`]); power-allocation studies attach an
/// asymmetric [`PowerSplit`] via [`GaussianNetwork::with_powers`], and
/// every bound evaluates each information term at the transmitting node's
/// power.
///
/// ```
/// use bcc_core::gaussian::GaussianNetwork;
/// use bcc_core::protocol::Protocol;
/// use bcc_num::Db;
///
/// // Fig. 3 setting: P = 15 dB, Gab = 0 dB (relay gains chosen here).
/// let net = GaussianNetwork::from_db(Db::new(15.0), Db::new(0.0), Db::new(10.0), Db::new(10.0));
/// let dt = net.max_sum_rate(Protocol::DirectTransmission).unwrap();
/// let hbc = net.max_sum_rate(Protocol::Hbc).unwrap();
/// assert!(hbc.sum_rate >= dt.sum_rate);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaussianNetwork {
    powers: PowerSplit,
    state: ChannelState,
}

/// Sum-rate optimisation result for one protocol (Fig. 3 data point).
#[derive(Debug, Clone, PartialEq)]
pub struct SumRateSolution {
    /// The protocol optimised.
    pub protocol: Protocol,
    /// Optimal sum rate `R_a + R_b` in bits per channel use.
    pub sum_rate: f64,
    /// Rate of `w_a` at the optimum.
    pub ra: f64,
    /// Rate of `w_b` at the optimum.
    pub rb: f64,
    /// Optimal phase durations (inline [`PhaseVec`] — extracting a
    /// solution allocates nothing).
    pub durations: PhaseVec,
}

impl GaussianNetwork {
    /// Creates a network from a common per-node linear power and a channel
    /// state (the paper's convention).
    ///
    /// # Panics
    ///
    /// Panics if `power` is negative or non-finite.
    pub fn new(power: f64, state: ChannelState) -> Self {
        assert!(
            power.is_finite() && power >= 0.0,
            "transmit power must be finite and non-negative, got {power}"
        );
        GaussianNetwork {
            powers: PowerSplit::symmetric(power),
            state,
        }
    }

    /// Creates a network with an explicit per-node power split — the
    /// power-allocation constructor.
    pub fn with_powers(powers: PowerSplit, state: ChannelState) -> Self {
        GaussianNetwork { powers, state }
    }

    /// Creates a network from dB quantities (the paper's convention).
    pub fn from_db(power: Db, gab: Db, gar: Db, gbr: Db) -> Self {
        GaussianNetwork::new(power.to_linear(), ChannelState::from_db(gab, gar, gbr))
    }

    /// The common per-node transmit power (linear), or `None` if the
    /// network carries an asymmetric [`PowerSplit`] — there is no single
    /// "the power" then; use [`GaussianNetwork::powers`] for the per-node
    /// values. (This used to panic on asymmetric splits; callers that know
    /// the network is symmetric — the paper's convention — can `expect`.)
    pub fn power(&self) -> Option<f64> {
        self.powers.common()
    }

    /// The per-node transmit powers.
    pub fn powers(&self) -> PowerSplit {
        self.powers
    }

    /// The channel gains.
    pub fn state(&self) -> ChannelState {
        self.state
    }

    /// Same powers, different gains — how a quasi-static fading
    /// realisation is applied to a base network.
    pub fn with_state(&self, state: ChannelState) -> Self {
        GaussianNetwork {
            powers: self.powers,
            state,
        }
    }

    /// Same gains, common per-node power — the SNR-sweep constructor.
    pub fn with_power(&self, power: f64) -> Self {
        GaussianNetwork::new(power, self.state)
    }

    /// Same gains, different power split — the allocation-sweep
    /// constructor.
    pub fn with_split(&self, powers: PowerSplit) -> Self {
        GaussianNetwork::with_powers(powers, self.state)
    }

    /// Same gains, power given in dB.
    pub fn with_power_db(&self, power: Db) -> Self {
        self.with_power(power.to_linear())
    }

    /// The constraint-set family of `(protocol, bound)` at this network.
    pub fn constraint_sets(
        &self,
        protocol: Protocol,
        bound: Bound,
    ) -> Vec<crate::constraint::ConstraintSet> {
        bounds::constraint_sets_split(protocol, bound, &self.powers, &self.state)
    }

    /// The rate region of `(protocol, bound)`.
    pub fn region(&self, protocol: Protocol, bound: Bound) -> RateRegion {
        let sets = self.constraint_sets(protocol, bound);
        RateRegion::new(sets, format!("{protocol} {bound}"))
    }

    /// The exact capacity region, available where the paper proves one:
    /// direct transmission and MABC (Theorem 2). `None` for TDBC/HBC whose
    /// capacity is open.
    pub fn capacity_region(&self, protocol: Protocol) -> Option<RateRegion> {
        match protocol {
            Protocol::DirectTransmission | Protocol::Mabc => {
                Some(self.region(protocol, Bound::Inner))
            }
            Protocol::Tdbc | Protocol::Hbc => None,
        }
    }

    /// Optimal *achievable* sum rate of `protocol`, optimising the phase
    /// durations by LP (the quantity plotted in Fig. 3).
    ///
    /// # Errors
    ///
    /// Propagates LP failures (not expected for valid inputs).
    pub fn max_sum_rate(&self, protocol: Protocol) -> Result<SumRateSolution, CoreError> {
        self.max_sum_rate_with(protocol, &mut bcc_lp::Workspace::new())
    }

    /// [`GaussianNetwork::max_sum_rate`] reusing `ws` for LP scratch memory
    /// — the batch entry point used by the
    /// [`Scenario`](crate::scenario::Scenario) evaluator and the fading
    /// Monte-Carlo loops.
    ///
    /// # Errors
    ///
    /// Propagates LP failures (not expected for valid inputs).
    pub fn max_sum_rate_with(
        &self,
        protocol: Protocol,
        ws: &mut bcc_lp::Workspace,
    ) -> Result<SumRateSolution, CoreError> {
        // Two-phase protocols collapse to the closed-form kernel — no LP.
        if let Some(sol) = crate::kernel::max_sum_rate(self, protocol) {
            return Ok(sol);
        }
        // All inner bounds are single sets; solve through the same
        // phase-substituted formulation as the batch hot path so point
        // queries and sweeps agree bit for bit.
        let sets = self.constraint_sets(protocol, Bound::Inner);
        debug_assert_eq!(sets.len(), 1, "inner bounds are singletons");
        let mut prob = bcc_lp::Problem::maximize(&[0.0]);
        let mut sol = bcc_lp::Solution::default();
        let (mut row, mut obj) = (Vec::new(), Vec::new());
        let pt: SchedulePoint = crate::kernel::lp_sum_rate_parts(
            &mut prob, ws, &mut sol, &mut row, &mut obj, &sets[0], None,
        )?;
        Ok(SumRateSolution {
            protocol,
            sum_rate: pt.objective,
            ra: pt.ra,
            rb: pt.rb,
            durations: pt.durations,
        })
    }

    /// Received SNR of the `a → r` link (`p_a·G_ar`).
    pub fn snr_ar(&self) -> f64 {
        self.powers.p_a() * self.state.gar()
    }

    /// Received SNR of the `b → r` link (`p_b·G_br`).
    pub fn snr_br(&self) -> f64 {
        self.powers.p_b() * self.state.gbr()
    }

    /// Received SNR of the `a → b` direct link (`p_a·G_ab`).
    pub fn snr_ab(&self) -> f64 {
        self.powers.p_a() * self.state.gab()
    }

    /// Received SNR of the `b → a` direct link (`p_b·G_ab`).
    pub fn snr_ba(&self) -> f64 {
        self.powers.p_b() * self.state.gab()
    }

    /// The network's reference SNR: mean per-node power against unit
    /// noise (`total / 3`), which equals `P` in the paper's symmetric
    /// setting. Finite-SNR DMT targets are rates `r·log2(1 + SNR_ref)`,
    /// so allocation studies that hold [`PowerSplit::total`] fixed compare
    /// splits at a fixed reference SNR.
    pub fn reference_snr(&self) -> f64 {
        self.powers.total() / 3.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_num::approx_eq;

    fn fig4_net(p_db: f64) -> GaussianNetwork {
        GaussianNetwork::from_db(Db::new(p_db), Db::new(-7.0), Db::new(0.0), Db::new(5.0))
    }

    #[test]
    fn snr_accessors() {
        // Fig. 4 gains: Gab = −7 dB, Gar = 0 dB, Gbr = 5 dB at P = 10 dB.
        let net = fig4_net(10.0);
        assert!(approx_eq(net.snr_ab(), 1.9952623149688795, 1e-9));
        assert!(approx_eq(net.snr_ar(), 10.0, 1e-9));
        assert!(approx_eq(net.snr_br(), 31.622776601683793, 1e-9));
    }

    #[test]
    fn hbc_dominates_special_cases_in_sum_rate() {
        for p_db in [-5.0, 0.0, 5.0, 10.0, 15.0] {
            let net = fig4_net(p_db);
            let hbc = net.max_sum_rate(Protocol::Hbc).unwrap().sum_rate;
            let mabc = net.max_sum_rate(Protocol::Mabc).unwrap().sum_rate;
            let tdbc = net.max_sum_rate(Protocol::Tdbc).unwrap().sum_rate;
            assert!(hbc >= mabc - 1e-8, "P={p_db} dB: HBC {hbc} < MABC {mabc}");
            assert!(hbc >= tdbc - 1e-8, "P={p_db} dB: HBC {hbc} < TDBC {tdbc}");
        }
    }

    #[test]
    fn dt_sum_rate_is_direct_capacity() {
        // DT: Ra + Rb = Δ1 C + Δ2 C = C(P·Gab) for any split.
        let net = fig4_net(10.0);
        let dt = net.max_sum_rate(Protocol::DirectTransmission).unwrap();
        assert!(approx_eq(
            dt.sum_rate,
            bcc_info::awgn_capacity(net.snr_ab()),
            1e-9
        ));
    }

    #[test]
    fn capacity_region_availability_matches_paper() {
        let net = fig4_net(0.0);
        assert!(net.capacity_region(Protocol::DirectTransmission).is_some());
        assert!(net.capacity_region(Protocol::Mabc).is_some());
        assert!(net.capacity_region(Protocol::Tdbc).is_none());
        assert!(net.capacity_region(Protocol::Hbc).is_none());
    }

    #[test]
    fn with_power_rescales_only_power() {
        let net = fig4_net(0.0);
        let boosted = net.with_power_db(Db::new(20.0));
        assert_eq!(net.state(), boosted.state());
        assert!(approx_eq(boosted.power().unwrap(), 100.0, 1e-9));
        // Monotonicity: more power, no smaller sum rate.
        for proto in Protocol::ALL {
            let lo = net.max_sum_rate(proto).unwrap().sum_rate;
            let hi = boosted.max_sum_rate(proto).unwrap().sum_rate;
            assert!(hi >= lo, "{proto}: {hi} < {lo}");
        }
    }

    #[test]
    fn sum_rate_solution_components_add_up() {
        let net = fig4_net(10.0);
        for proto in Protocol::ALL {
            let sol = net.max_sum_rate(proto).unwrap();
            assert!(approx_eq(sol.sum_rate, sol.ra + sol.rb, 1e-8), "{proto}");
            let total: f64 = sol.durations.iter().sum();
            assert!(approx_eq(total, 1.0, 1e-8), "{proto} durations");
            assert_eq!(sol.durations.len(), proto.num_phases());
        }
    }

    #[test]
    fn asymmetric_split_round_trip_and_power_none() {
        let split = PowerSplit::new(2.0, 6.0, 12.0);
        let net = GaussianNetwork::with_powers(split, ChannelState::new(1.0, 2.0, 3.0));
        assert_eq!(net.powers(), split);
        assert!(approx_eq(net.snr_ab(), 2.0, 1e-12));
        assert!(approx_eq(net.snr_ba(), 6.0, 1e-12));
        assert!(approx_eq(net.snr_ar(), 4.0, 1e-12));
        assert!(approx_eq(net.snr_br(), 18.0, 1e-12));
        assert!(approx_eq(net.reference_snr(), 20.0 / 3.0, 1e-12));
        assert_eq!(net.power(), None, "asymmetric split has no common power");
        assert_eq!(net.with_power(2.0).power(), Some(2.0));
    }

    #[test]
    fn with_state_preserves_powers() {
        let split = PowerSplit::from_shares(30.0, 0.5, 0.25);
        let net = GaussianNetwork::with_powers(split, ChannelState::new(1.0, 1.0, 1.0));
        let faded = net.with_state(net.state().faded(0.5, 2.0, 1.0));
        assert_eq!(faded.powers(), split);
        assert!(approx_eq(faded.state().gab(), 0.5, 1e-12));
    }

    #[test]
    fn symmetric_split_matches_common_power_solutions() {
        // The split path at equal powers must reproduce the paper's
        // common-power results exactly.
        let state = ChannelState::new(0.19952623149688797, 1.0, 3.1622776601683795);
        let classic = GaussianNetwork::new(10.0, state);
        let split = GaussianNetwork::with_powers(PowerSplit::symmetric(10.0), state);
        for proto in Protocol::ALL {
            let a = classic.max_sum_rate(proto).unwrap();
            let b = split.max_sum_rate(proto).unwrap();
            assert_eq!(a, b, "{proto}");
        }
    }

    #[test]
    fn relay_power_is_useless_to_direct_transmission() {
        let state = ChannelState::new(1.0, 1.0, 1.0);
        let all_at_relay = GaussianNetwork::with_powers(PowerSplit::new(0.0, 0.0, 30.0), state);
        let dt = all_at_relay
            .max_sum_rate(Protocol::DirectTransmission)
            .unwrap();
        assert!(approx_eq(dt.sum_rate, 0.0, 1e-9));
        let at_terminals = GaussianNetwork::with_powers(PowerSplit::new(15.0, 15.0, 0.0), state);
        let dt2 = at_terminals
            .max_sum_rate(Protocol::DirectTransmission)
            .unwrap();
        assert!(dt2.sum_rate > 3.9, "C(15) ≈ 4 bits split over two phases");
    }

    #[test]
    fn zero_power_network_has_zero_rates() {
        let net = GaussianNetwork::new(0.0, ChannelState::new(1.0, 1.0, 1.0));
        for proto in Protocol::ALL {
            let sol = net.max_sum_rate(proto).unwrap();
            assert!(approx_eq(sol.sum_rate, 0.0, 1e-9), "{proto}");
        }
    }
}
