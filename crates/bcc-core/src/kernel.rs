//! Closed-form fast paths and the zero-allocation batch solve context.
//!
//! # Closed forms
//!
//! For the **two-phase protocols** — direct transmission and MABC — the
//! workspace's dominant queries collapse analytically. With phase split
//! `Δ ∈ [0, 1]` (phase 2 lasts `1 − Δ`), every Theorem-2/DT rate bound is
//! a line `p·Δ + q·(1 − Δ)`, so
//!
//! * `max_sum_rate` maximises a **concave piecewise-linear** function of
//!   `Δ` — `min(mA(Δ) + mB(Δ), Δ·C_MAC)` for MABC, linear for DT — whose
//!   maximum sits at a kink or at an analytic crossing point;
//! * `max_min_rate` maximises `min` of at most five lines, whose maximum
//!   sits at a pairwise line crossing or an endpoint.
//!
//! Both are solved exactly by evaluating a handful of candidate `Δ`s —
//! tens of flops instead of a simplex run. The **multi-phase protocols**
//! follow the same geometry one dimension up: TDBC (sum and max–min) and
//! HBC (sum) are concave piecewise-linear programs over a 2- or
//! 3-simplex, solved exactly by enumerating the vertices of the linearity
//! subdivision (facets × kink planes — a few dozen cross products). The
//! kernel is dispatched automatically by [`SolveCtx`] (and
//! `GaussianNetwork::max_sum_rate`) whenever no QoS rate floor and no
//! outer-bound ρ-family is in play; the simplex remains the fallback for
//! the HBC max–min, floors and outer families, and serves as the proptest
//! oracle for every closed form (`bcc-core/tests/kernel_oracle.rs`).
//!
//! The closed forms themselves are implemented **once**, as width-generic
//! lane kernels in [`crate::batch`]; the scalar entry points here are the
//! width-1 instantiations of those lane bodies, so scalar and batched
//! answers are bit-identical by construction.
//!
//! # The solve API
//!
//! The per-worker entry points are consolidated behind one typed request:
//! a [`SolveRequest`] names the objective ([`Objective::SumRate`] or
//! [`Objective::MaxMin`]), the protocol, the bound side and an optional
//! QoS floor, and resolves to a [`SolveOutcome`] through
//! [`SolveCtx::solve_one`] (scalar), [`SolveCtx::solve_block`] (batched
//! over a [`crate::batch::PointBlock`]) or [`SolveCtx::solve_best`]
//! (argmax over protocols). The historical per-query methods
//! (`sum_rate`, `max_min_rate`, …) remain as thin deprecated wrappers.
//!
//! # The solve context
//!
//! [`SolveCtx`] bundles everything a batch worker needs to evaluate
//! operating points with **zero heap allocations per point** after
//! warm-up: a [`bcc_lp::Workspace`] (flat tableau + warm-start bases), a
//! [`ConstraintBuf`] arena the `*_into` bound builders rebuild in place,
//! a pooled-row [`Problem`], and a reusable [`Solution`]. The `Scenario`
//! evaluator, the fading Monte-Carlo fan-outs and the allocation search
//! all hold one `SolveCtx` per worker thread.

use crate::bounds::{self, LinkCaps};
use crate::constraint::{ConstraintBuf, ConstraintSet, PhaseVec};
use crate::error::CoreError;
use crate::gaussian::{GaussianNetwork, SumRateSolution};
use crate::optimizer::SchedulePoint;
use crate::protocol::{Bound, Protocol};
use bcc_lp::{Problem, Relation, Sense, Solution, Workspace};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Process-wide count of solves served by the closed-form kernel (the
/// companion of [`bcc_lp::stats`]'s solve counters; `bench-report` reads
/// deltas of both to report the kernel-vs-simplex mix).
static KERNEL_HITS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Calling-thread twin of [`KERNEL_HITS`] (see [`kernel_hits_local`]).
    static KERNEL_HITS_LOCAL: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Total solves served by the closed-form kernel since process start.
pub fn kernel_hits() -> u64 {
    KERNEL_HITS.load(Relaxed)
}

/// Kernel solves performed **on the calling thread** since it started —
/// the race-free companion of [`kernel_hits`] for in-process assertions.
///
/// The global counter is process-wide, so a delta taken around a workload
/// in one `cargo test` thread also counts kernel hits from concurrently
/// running tests. A delta of this thread-local counter counts only the
/// calling thread's own solves; pin the workload to one worker
/// (`Scenario::threads(1)` — the serial path runs inline on the caller)
/// for complete capture. See [`bcc_lp::stats::scoped`] for the matching
/// LP-side helper.
pub fn kernel_hits_local() -> u64 {
    KERNEL_HITS_LOCAL.with(std::cell::Cell::get)
}

/// Records one kernel-served solve on both the global and the
/// calling-thread counter.
fn record_kernel_hit() {
    KERNEL_HITS.fetch_add(1, Relaxed);
    KERNEL_HITS_LOCAL.with(|c| c.set(c.get() + 1));
}

/// Bulk form of [`record_kernel_hit`] for the block kernels: one update
/// per block instead of one per point.
pub(crate) fn record_kernel_hits(n: u64) {
    KERNEL_HITS.fetch_add(n, Relaxed);
    KERNEL_HITS_LOCAL.with(|c| c.set(c.get() + n));
}

/// Closed-form `max_sum_rate` — covers **all four** protocols (DT and
/// MABC by 1-D line crossing, TDBC by 2-simplex vertex enumeration, HBC
/// by 3-simplex vertex enumeration). Always `Some` for valid inputs.
pub fn max_sum_rate(net: &GaussianNetwork, protocol: Protocol) -> Option<SumRateSolution> {
    max_sum_rate_from_caps(&LinkCaps::compute(&net.powers(), &net.state()), protocol)
}

/// [`max_sum_rate`] from precomputed [`LinkCaps`] (the batch hot path —
/// one capacity evaluation per point serves every protocol). Covers all
/// four protocols; the `Option` return is kept for API stability (and
/// for forward-compat with caps whose structure defeats a closed form).
pub fn max_sum_rate_from_caps(caps: &LinkCaps, protocol: Protocol) -> Option<SumRateSolution> {
    let sol = crate::batch::sum_rate_one(caps, protocol);
    record_kernel_hit();
    Some(sol)
}

/// Closed-form `max_min_rate` (largest symmetric rate) for DT, MABC and
/// TDBC; `None` for HBC (its four-phase max–min stays on the simplex —
/// the query is off the sweep hot path and the 3-simplex tie structure
/// buys little over a warm-started solve).
pub fn max_min_rate(net: &GaussianNetwork, protocol: Protocol) -> Option<SchedulePoint> {
    match protocol {
        Protocol::DirectTransmission | Protocol::Mabc | Protocol::Tdbc => {
            max_min_rate_from_caps(&LinkCaps::compute(&net.powers(), &net.state()), protocol)
        }
        Protocol::Hbc => None,
    }
}

/// [`max_min_rate`] from precomputed [`LinkCaps`].
pub fn max_min_rate_from_caps(caps: &LinkCaps, protocol: Protocol) -> Option<SchedulePoint> {
    let pt = crate::batch::max_min_one(caps, protocol)?;
    record_kernel_hit();
    Some(pt)
}

/// The objective a [`SolveRequest`] optimises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Objective {
    /// Maximise the sum rate `R_a + R_b`.
    SumRate,
    /// Maximise the symmetric rate `min(R_a, R_b)`.
    MaxMin,
}

/// A typed solve request: one value naming everything a per-point query
/// needs — objective, protocol, bound side and optional QoS floor — in
/// place of the historical family of per-query [`SolveCtx`] methods.
///
/// Build one with [`SolveRequest::sum_rate`] or [`SolveRequest::max_min`]
/// and refine it builder-style:
///
/// ```
/// use bcc_core::kernel::SolveRequest;
/// use bcc_core::prelude::*;
///
/// let req = SolveRequest::sum_rate(Protocol::Hbc)
///     .with_bound(Bound::Outer)
///     .with_floor(Some((0.5, 0.5)));
/// # assert_eq!(req.protocol, Protocol::Hbc);
/// ```
///
/// The floor applies to the [`Objective::SumRate`] objective only (the
/// max–min objective has no floored form) and is ignored otherwise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveRequest {
    /// What to optimise.
    pub objective: Objective,
    /// The protocol whose rate region is being queried.
    pub protocol: Protocol,
    /// Inner (achievable) or outer (converse) bound side.
    pub bound: Bound,
    /// Optional QoS floor `(ra_min, rb_min)` for the sum-rate objective.
    pub floor: Option<(f64, f64)>,
}

impl SolveRequest {
    /// A sum-rate request over the inner bound with no floor.
    pub fn sum_rate(protocol: Protocol) -> Self {
        SolveRequest {
            objective: Objective::SumRate,
            protocol,
            bound: Bound::Inner,
            floor: None,
        }
    }

    /// A max–min (symmetric-rate) request over the inner bound.
    pub fn max_min(protocol: Protocol) -> Self {
        SolveRequest {
            objective: Objective::MaxMin,
            protocol,
            bound: Bound::Inner,
            floor: None,
        }
    }

    /// Replaces the bound side.
    pub fn with_bound(mut self, bound: Bound) -> Self {
        self.bound = bound;
        self
    }

    /// Replaces the QoS floor (sum-rate objective only).
    pub fn with_floor(mut self, floor: Option<(f64, f64)>) -> Self {
        self.floor = floor;
        self
    }

    /// Whether this request is served by the closed-form batch kernels:
    /// inner bound, no floor for the sum-rate objective (floors go
    /// through the LP), and — for max–min — not HBC (whose four-phase
    /// max–min stays on the simplex).
    pub fn is_batchable(&self) -> bool {
        self.bound == Bound::Inner
            && match self.objective {
                Objective::SumRate => self.floor.is_none(),
                Objective::MaxMin => self.protocol != Protocol::Hbc,
            }
    }
}

/// The resolved operating point of one [`SolveRequest`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveOutcome {
    /// The protocol that was solved.
    pub protocol: Protocol,
    /// The objective that was optimised.
    pub objective: Objective,
    /// Rate a → b at the optimum.
    pub ra: f64,
    /// Rate b → a at the optimum.
    pub rb: f64,
    /// Optimal phase durations.
    pub durations: PhaseVec,
    /// Optimal objective value (`ra + rb` for sum rate, the symmetric
    /// rate `t` for max–min).
    pub value: f64,
}

impl SolveOutcome {
    fn from_sum(sol: SumRateSolution) -> Self {
        SolveOutcome {
            protocol: sol.protocol,
            objective: Objective::SumRate,
            ra: sol.ra,
            rb: sol.rb,
            durations: sol.durations,
            value: sol.sum_rate,
        }
    }

    fn from_mm(protocol: Protocol, pt: SchedulePoint) -> Self {
        SolveOutcome {
            protocol,
            objective: Objective::MaxMin,
            ra: pt.ra,
            rb: pt.rb,
            durations: pt.durations,
            value: pt.objective,
        }
    }

    /// This outcome as the legacy [`SumRateSolution`] record.
    pub fn sum_rate_solution(&self) -> SumRateSolution {
        SumRateSolution {
            protocol: self.protocol,
            sum_rate: self.value,
            ra: self.ra,
            rb: self.rb,
            durations: self.durations,
        }
    }

    /// This outcome as the legacy [`SchedulePoint`] record.
    pub fn schedule_point(&self) -> SchedulePoint {
        SchedulePoint {
            ra: self.ra,
            rb: self.rb,
            durations: self.durations,
            objective: self.value,
        }
    }
}

/// A per-worker batch solve context: LP workspace (flat tableau +
/// warm-start bases), constraint arena, pooled problem builder and
/// reusable solution — everything needed to evaluate grid points and fade
/// draws with zero heap allocations per point after warm-up (see the
/// module docs).
#[derive(Debug)]
pub struct SolveCtx {
    ws: Workspace,
    buf: ConstraintBuf,
    prob: Problem,
    sol: Solution,
    row: Vec<f64>,
    obj: Vec<f64>,
    /// Per-point capacity memo: the four protocols of one grid point share
    /// one [`LinkCaps`] evaluation (pure function of the key, so caching
    /// never changes results).
    caps: Option<(bcc_channel::PowerSplit, bcc_channel::ChannelState, LinkCaps)>,
    /// Batched-solve scratch, reused across [`SolveCtx::solve_block`]
    /// calls (amortised to zero allocations per point).
    scratch_sum: Vec<SumRateSolution>,
    scratch_pts: Vec<SchedulePoint>,
}

impl Default for SolveCtx {
    fn default() -> Self {
        SolveCtx {
            ws: Workspace::new(),
            // Placeholder shape; every solve `reset`s the problem first.
            prob: Problem::maximize(&[0.0]),
            buf: ConstraintBuf::new(),
            sol: Solution::default(),
            row: Vec::new(),
            obj: Vec::new(),
            caps: None,
            scratch_sum: Vec::new(),
            scratch_pts: Vec::new(),
        }
    }
}

/// Builds the **phase-substituted** LP rows of `set` into `prob`.
///
/// The textbook formulation carries all `L` durations plus the simplex-
/// share equality `Σ Δ_ℓ = 1`, whose artificial variable forces a phase-1
/// pass on every solve. The hot path instead substitutes
/// `Δ_L = 1 − Σ_{ℓ<L} Δ_ℓ`, turning every rate bound
/// `lhs ≤ Σ c_ℓ Δ_ℓ` into `lhs + Σ_{ℓ<L} (c_L − c_ℓ)·Δ_ℓ ≤ c_L` — all
/// `≤` rows with non-negative right-hand sides, so the all-slack basis is
/// feasible and the simplex starts **directly in phase 2** (and the warm
/// path prices one fewer dimension). Variables are
/// `(R_a, R_b, Δ_1..Δ_{L−1}, [extras])`; `n` is the total count.
fn push_constraint_rows(prob: &mut Problem, row: &mut Vec<f64>, set: &ConstraintSet, n: usize) {
    let l = set.num_phases();
    for c in set.constraints() {
        row.clear();
        row.resize(n, 0.0);
        row[0] = c.ra;
        row[1] = c.rb;
        let c_last = c.phase_coefs[l - 1];
        for (idx, coef) in c.phase_coefs.iter().take(l - 1).enumerate() {
            row[2 + idx] = c_last - coef;
        }
        prob.subject_to(row, Relation::Le, c_last);
    }
    if l > 1 {
        // Δ_L ≥ 0 ⇔ Σ_{ℓ<L} Δ_ℓ ≤ 1.
        row.clear();
        row.resize(n, 0.0);
        for v in row.iter_mut().skip(2).take(l - 1) {
            *v = 1.0;
        }
        prob.subject_to(row, Relation::Le, 1.0);
    }
}

/// Reconstructs the full duration vector from the substituted variables
/// (`Δ_L = 1 − Σ`, clamped against float dust).
fn durations_from(x: &[f64], l: usize) -> PhaseVec {
    let mut d = PhaseVec::from_slice(&x[2..2 + l - 1]);
    let used: f64 = d.iter().sum();
    d.push((1.0 - used).max(0.0));
    d
}

/// The warm-started sum-rate LP over `set` with optional QoS floors,
/// operating on explicitly split context parts (so callers can keep the
/// constraint arena borrowed alongside).
#[allow(clippy::too_many_arguments)]
pub(crate) fn lp_sum_rate_parts(
    prob: &mut Problem,
    ws: &mut Workspace,
    sol: &mut Solution,
    row: &mut Vec<f64>,
    obj: &mut Vec<f64>,
    set: &ConstraintSet,
    floor: Option<(f64, f64)>,
) -> Result<SchedulePoint, CoreError> {
    let l = set.num_phases();
    let n = 2 + (l - 1);
    obj.clear();
    obj.resize(n, 0.0);
    obj[0] = 1.0;
    obj[1] = 1.0;
    prob.reset(Sense::Maximize, obj);
    push_constraint_rows(prob, row, set, n);
    if let Some((ra_min, rb_min)) = floor {
        row.clear();
        row.resize(n, 0.0);
        row[0] = 1.0;
        prob.subject_to(row, Relation::Ge, ra_min);
        row[0] = 0.0;
        row[1] = 1.0;
        prob.subject_to(row, Relation::Ge, rb_min);
    }
    prob.solve_warm_into(ws, sol).map_err(|e| {
        let what = if floor.is_some() {
            "sum-rate with QoS floor"
        } else {
            "sum-rate"
        };
        CoreError::lp(format!("{} {what}", set.name), e)
    })?;
    Ok(SchedulePoint {
        ra: sol.x[0],
        rb: sol.x[1],
        durations: durations_from(&sol.x, l),
        objective: sol.objective,
    })
}

/// The warm-started max–min LP over `set` on split context parts.
pub(crate) fn lp_max_min_parts(
    prob: &mut Problem,
    ws: &mut Workspace,
    sol: &mut Solution,
    row: &mut Vec<f64>,
    obj: &mut Vec<f64>,
    set: &ConstraintSet,
) -> Result<SchedulePoint, CoreError> {
    let l = set.num_phases();
    let n = 2 + (l - 1) + 1;
    obj.clear();
    obj.resize(n, 0.0);
    obj[n - 1] = 1.0;
    prob.reset(Sense::Maximize, obj);
    push_constraint_rows(prob, row, set, n);
    // t − R_a ≤ 0, t − R_b ≤ 0 (kept as `≤` rows so the all-slack basis
    // stays feasible and no phase-1 pass is needed).
    row.clear();
    row.resize(n, 0.0);
    row[0] = -1.0;
    row[n - 1] = 1.0;
    prob.subject_to(row, Relation::Le, 0.0);
    row[0] = 0.0;
    row[1] = -1.0;
    prob.subject_to(row, Relation::Le, 0.0);
    prob.solve_warm_into(ws, sol)
        .map_err(|e| CoreError::lp(format!("{} max-min", set.name), e))?;
    Ok(SchedulePoint {
        ra: sol.x[0],
        rb: sol.x[1],
        durations: durations_from(&sol.x, l),
        objective: sol.objective,
    })
}

impl SolveCtx {
    /// Creates an empty context (buffers grow to fit on first use).
    pub fn new() -> Self {
        SolveCtx::default()
    }

    /// The context's LP workspace (for callers that mix direct
    /// [`bcc_lp`] use with context solves).
    pub fn workspace(&mut self) -> &mut Workspace {
        &mut self.ws
    }

    /// Solves `max R_a + R_b` over `set` by warm-started simplex, with
    /// optional QoS floors `R_a ≥ ra_min`, `R_b ≥ rb_min`.
    ///
    /// # Errors
    ///
    /// Propagates LP failures (infeasibility when a floor is
    /// unachievable).
    pub fn lp_sum_rate(
        &mut self,
        set: &ConstraintSet,
        floor: Option<(f64, f64)>,
    ) -> Result<SchedulePoint, CoreError> {
        let SolveCtx {
            ws,
            prob,
            sol,
            row,
            obj,
            ..
        } = self;
        lp_sum_rate_parts(prob, ws, sol, row, obj, set, floor)
    }

    /// Solves the max–min (symmetric-rate) LP over `set` by warm-started
    /// simplex.
    ///
    /// # Errors
    ///
    /// Propagates LP failures.
    pub fn lp_max_min(&mut self, set: &ConstraintSet) -> Result<SchedulePoint, CoreError> {
        let SolveCtx {
            ws,
            prob,
            sol,
            row,
            obj,
            ..
        } = self;
        lp_max_min_parts(prob, ws, sol, row, obj, set)
    }

    /// Optimal achievable sum rate of `protocol` at `net` — the scalar
    /// sweep/outage/DMT hot path: closed-form kernel where available,
    /// warm-started simplex otherwise.
    fn sum_rate_impl(
        &mut self,
        net: &GaussianNetwork,
        protocol: Protocol,
    ) -> Result<SumRateSolution, CoreError> {
        let caps = self.link_caps(net);
        if let Some(sol) = max_sum_rate_from_caps(&caps, protocol) {
            return Ok(sol);
        }
        let SolveCtx {
            ws,
            buf,
            prob,
            sol,
            row,
            obj,
            ..
        } = self;
        buf.begin();
        bounds::inner_constraints_from_caps_into(protocol, &caps, buf.next_set());
        let pt = lp_sum_rate_parts(prob, ws, sol, row, obj, &buf.sets()[0], None)?;
        Ok(SumRateSolution {
            protocol,
            sum_rate: pt.objective,
            ra: pt.ra,
            rb: pt.rb,
            durations: pt.durations,
        })
    }

    /// The memoised per-point capacity bundle (see [`LinkCaps`]).
    fn link_caps(&mut self, net: &GaussianNetwork) -> LinkCaps {
        let powers = net.powers();
        let state = net.state();
        if let Some((p, st, caps)) = &self.caps {
            if *p == powers && *st == state {
                return *caps;
            }
        }
        let caps = LinkCaps::compute(&powers, &state);
        self.caps = Some((powers, state, caps));
        caps
    }

    /// Sum rate of `(protocol, bound)` with an optional QoS floor — the
    /// general grid-point solve: outer bounds can be set *families*
    /// (HBC's ρ-family, maximised over members), and floors can make
    /// members — or the whole family — infeasible (the family is
    /// infeasible only if every member is).
    fn sum_rate_for_impl(
        &mut self,
        net: &GaussianNetwork,
        protocol: Protocol,
        bound: Bound,
        floor: Option<(f64, f64)>,
    ) -> Result<SumRateSolution, CoreError> {
        if bound == Bound::Inner && floor.is_none() {
            return self.sum_rate_impl(net, protocol);
        }
        let SolveCtx {
            ws,
            buf,
            prob,
            sol,
            row,
            obj,
            ..
        } = self;
        let sets =
            bounds::constraint_sets_split_into(protocol, bound, &net.powers(), &net.state(), buf);
        let mut best: Option<SumRateSolution> = None;
        let mut infeasible: Option<CoreError> = None;
        for set in sets {
            let pt = match lp_sum_rate_parts(prob, ws, sol, row, obj, set, floor) {
                Ok(pt) => pt,
                Err(e) if e.is_infeasible() => {
                    infeasible = Some(e);
                    continue;
                }
                Err(e) => return Err(e),
            };
            if best.as_ref().is_none_or(|b| pt.objective > b.sum_rate) {
                best = Some(SumRateSolution {
                    protocol,
                    sum_rate: pt.objective,
                    ra: pt.ra,
                    rb: pt.rb,
                    durations: pt.durations,
                });
            }
        }
        match best {
            Some(sol) => Ok(sol),
            None => Err(infeasible.expect("constraint families are non-empty")),
        }
    }

    /// Resolves one [`SolveRequest`] at `net`: closed-form kernel where
    /// the request [is batchable](SolveRequest::is_batchable),
    /// warm-started simplex otherwise (outer-bound families are
    /// maximised over members; a floor is honoured for the sum-rate
    /// objective and ignored for max–min).
    ///
    /// # Errors
    ///
    /// Propagates LP failures; with a floor, an infeasibility error
    /// means the floor is unachievable at this operating point.
    pub fn solve_one(
        &mut self,
        net: &GaussianNetwork,
        req: SolveRequest,
    ) -> Result<SolveOutcome, CoreError> {
        // Deterministic chaos hook: an item fated to kernel poison (a pure
        // function of the active fault scope's token — see
        // `bcc_num::faults::site_fated`) fails here, before any
        // computation, and keeps failing on every re-examination, so batch
        // drivers fall back per point and serving layers degrade to a
        // conservative answer. One thread-local read when no scope is
        // active.
        if bcc_num::faults::site_fated(bcc_num::faults::FaultSite::KernelPoison) {
            return Err(CoreError::Injected {
                site: "kernel poison",
            });
        }
        match req.objective {
            Objective::SumRate => self
                .sum_rate_for_impl(net, req.protocol, req.bound, req.floor)
                .map(SolveOutcome::from_sum),
            Objective::MaxMin => self
                .max_min_for_impl(net, req.protocol, req.bound)
                .map(|pt| SolveOutcome::from_mm(req.protocol, pt)),
        }
    }

    /// Resolves one [`SolveRequest`] for **every point of a block**,
    /// appending outcomes to `out` in block order.
    ///
    /// [Batchable](SolveRequest::is_batchable) requests run through the
    /// SIMD-ready lane kernels of [`crate::batch`] (bit-identical to the
    /// scalar path); the HBC max–min over the inner bound reuses the
    /// block's capacity lanes and warm-starts the simplex per point;
    /// everything else falls back to per-point [`SolveCtx::solve_one`].
    ///
    /// # Errors
    ///
    /// Propagates LP failures from the non-batched paths; on error `out`
    /// may hold outcomes for a prefix of the block.
    ///
    /// # Panics
    ///
    /// Panics if the request is batchable (or HBC max–min over the inner
    /// bound) and [`crate::batch::PointBlock::compute_caps`] has not run
    /// since the block's last push.
    pub fn solve_block(
        &mut self,
        block: &crate::batch::PointBlock,
        req: SolveRequest,
        out: &mut Vec<SolveOutcome>,
    ) -> Result<(), CoreError> {
        out.reserve(block.len());
        if req.is_batchable() {
            match req.objective {
                Objective::SumRate => {
                    self.scratch_sum.clear();
                    crate::batch::max_sum_rate_block(block, req.protocol, &mut self.scratch_sum);
                    out.extend(self.scratch_sum.drain(..).map(SolveOutcome::from_sum));
                }
                Objective::MaxMin => {
                    self.scratch_pts.clear();
                    let covered = crate::batch::max_min_rate_block(
                        block,
                        req.protocol,
                        &mut self.scratch_pts,
                    );
                    debug_assert!(covered, "is_batchable excludes HBC max-min");
                    let protocol = req.protocol;
                    out.extend(
                        self.scratch_pts
                            .drain(..)
                            .map(|pt| SolveOutcome::from_mm(protocol, pt)),
                    );
                }
            }
            return Ok(());
        }
        if req.objective == Objective::MaxMin && req.bound == Bound::Inner {
            // HBC max–min (and floored max–min requests): share the
            // block's capacity lanes, one warm-started LP per point.
            for i in 0..block.len() {
                let caps = block.caps(i);
                let SolveCtx {
                    ws,
                    buf,
                    prob,
                    sol,
                    row,
                    obj,
                    ..
                } = self;
                buf.begin();
                bounds::inner_constraints_from_caps_into(req.protocol, &caps, buf.next_set());
                let pt = lp_max_min_parts(prob, ws, sol, row, obj, &buf.sets()[0])?;
                out.push(SolveOutcome::from_mm(req.protocol, pt));
            }
            return Ok(());
        }
        for i in 0..block.len() {
            let outcome = self.solve_one(&block.net(i), req)?;
            out.push(outcome);
        }
        Ok(())
    }

    /// Selects the best protocol at `net` by optimal objective value —
    /// the protocol-selection primitive behind the `bcc-serve` query
    /// engine.
    ///
    /// Every protocol in `protocols` is resolved through
    /// [`SolveCtx::solve_one`] and the winner is the one with the
    /// strictly greatest value; ties resolve to the **earliest** protocol
    /// in `protocols`, so the answer is deterministic. Protocols whose LP
    /// is infeasible under `floor` are skipped; `Ok(None)` means *every*
    /// protocol was infeasible (the floor is unachievable at this
    /// operating point by any strategy).
    ///
    /// # Errors
    ///
    /// Propagates non-infeasibility LP failures (not expected for valid
    /// inputs).
    pub fn solve_best(
        &mut self,
        net: &GaussianNetwork,
        protocols: &[Protocol],
        objective: Objective,
        bound: Bound,
        floor: Option<(f64, f64)>,
    ) -> Result<Option<SolveOutcome>, CoreError> {
        let mut best: Option<SolveOutcome> = None;
        for &protocol in protocols {
            let req = SolveRequest {
                objective,
                protocol,
                bound,
                floor,
            };
            let outcome = match self.solve_one(net, req) {
                Ok(o) => o,
                Err(e) if e.is_infeasible() => continue,
                Err(e) => return Err(e),
            };
            if best.as_ref().is_none_or(|b| outcome.value > b.value) {
                best = Some(outcome);
            }
        }
        Ok(best)
    }

    /// Optimal achievable equal-rate (max–min) operating point of
    /// `protocol` at `net` — closed-form kernel where available,
    /// warm-started zero-allocation simplex otherwise.
    fn max_min_rate_impl(
        &mut self,
        net: &GaussianNetwork,
        protocol: Protocol,
    ) -> Result<SchedulePoint, CoreError> {
        let caps = self.link_caps(net);
        if let Some(pt) = max_min_rate_from_caps(&caps, protocol) {
            return Ok(pt);
        }
        let SolveCtx {
            ws,
            buf,
            prob,
            sol,
            row,
            obj,
            ..
        } = self;
        buf.begin();
        bounds::inner_constraints_from_caps_into(protocol, &caps, buf.next_set());
        lp_max_min_parts(prob, ws, sol, row, obj, &buf.sets()[0])
    }

    /// Max–min rate of `(protocol, bound)` — the general form of
    /// [`SolveCtx::max_min_rate_impl`]: outer bounds can be set
    /// *families* (HBC's ρ-family), maximised over members exactly like
    /// [`SolveCtx::sum_rate_for_impl`].
    fn max_min_for_impl(
        &mut self,
        net: &GaussianNetwork,
        protocol: Protocol,
        bound: Bound,
    ) -> Result<SchedulePoint, CoreError> {
        if bound == Bound::Inner {
            return self.max_min_rate_impl(net, protocol);
        }
        let SolveCtx {
            ws,
            buf,
            prob,
            sol,
            row,
            obj,
            ..
        } = self;
        let sets =
            bounds::constraint_sets_split_into(protocol, bound, &net.powers(), &net.state(), buf);
        let mut best: Option<SchedulePoint> = None;
        let mut infeasible: Option<CoreError> = None;
        for set in sets {
            let pt = match lp_max_min_parts(prob, ws, sol, row, obj, set) {
                Ok(pt) => pt,
                Err(e) if e.is_infeasible() => {
                    infeasible = Some(e);
                    continue;
                }
                Err(e) => return Err(e),
            };
            if best.as_ref().is_none_or(|b| pt.objective > b.objective) {
                best = Some(pt);
            }
        }
        match best {
            Some(pt) => Ok(pt),
            None => Err(infeasible.expect("constraint families are non-empty")),
        }
    }
}

/// Thin deprecated wrappers over the consolidated [`SolveRequest`] API —
/// kept one release for downstream callers; each forwards to the same
/// private implementation the new entry points use, so behaviour (and
/// bit patterns) are unchanged.
impl SolveCtx {
    /// Optimal achievable sum rate of `protocol` at `net`.
    ///
    /// # Errors
    ///
    /// Propagates LP failures (not expected for valid inputs).
    #[deprecated(note = "use SolveCtx::solve_one with SolveRequest::sum_rate(protocol)")]
    pub fn sum_rate(
        &mut self,
        net: &GaussianNetwork,
        protocol: Protocol,
    ) -> Result<SumRateSolution, CoreError> {
        self.sum_rate_impl(net, protocol)
    }

    /// Sum rate of `(protocol, bound)` with an optional QoS floor.
    ///
    /// # Errors
    ///
    /// Propagates LP failures; with a floor, an infeasibility error means
    /// the floor is unachievable at this operating point.
    #[deprecated(
        note = "use SolveCtx::solve_one with SolveRequest::sum_rate(protocol).with_bound(..).with_floor(..)"
    )]
    pub fn sum_rate_for(
        &mut self,
        net: &GaussianNetwork,
        protocol: Protocol,
        bound: Bound,
        floor: Option<(f64, f64)>,
    ) -> Result<SumRateSolution, CoreError> {
        self.sum_rate_for_impl(net, protocol, bound, floor)
    }

    /// Optimal achievable max–min operating point of `protocol` at `net`.
    ///
    /// # Errors
    ///
    /// Propagates LP failures (not expected for valid inputs).
    #[deprecated(note = "use SolveCtx::solve_one with SolveRequest::max_min(protocol)")]
    pub fn max_min_rate(
        &mut self,
        net: &GaussianNetwork,
        protocol: Protocol,
    ) -> Result<SchedulePoint, CoreError> {
        self.max_min_rate_impl(net, protocol)
    }

    /// Max–min rate of `(protocol, bound)`.
    ///
    /// # Errors
    ///
    /// Propagates LP failures.
    #[deprecated(
        note = "use SolveCtx::solve_one with SolveRequest::max_min(protocol).with_bound(..)"
    )]
    pub fn max_min_for(
        &mut self,
        net: &GaussianNetwork,
        protocol: Protocol,
        bound: Bound,
    ) -> Result<SchedulePoint, CoreError> {
        self.max_min_for_impl(net, protocol, bound)
    }

    /// Selects the best protocol at `net` by optimal sum rate.
    ///
    /// # Errors
    ///
    /// Propagates non-infeasibility LP failures.
    #[deprecated(note = "use SolveCtx::solve_best with Objective::SumRate")]
    pub fn best_sum_rate(
        &mut self,
        net: &GaussianNetwork,
        protocols: &[Protocol],
        bound: Bound,
        floor: Option<(f64, f64)>,
    ) -> Result<Option<SumRateSolution>, CoreError> {
        Ok(self
            .solve_best(net, protocols, Objective::SumRate, bound, floor)?
            .map(|o| o.sum_rate_solution()))
    }

    /// The ε-outage allocation objective of one fade draw: twice the
    /// max–min rate (equal-rate sum) of `protocol` at `net`, with a deep-
    /// fade LP failure counting as rate 0 (the Monte-Carlo convention).
    #[deprecated(
        note = "use SolveCtx::solve_one with SolveRequest::max_min(protocol) and map 2·value"
    )]
    pub fn equal_rate_sum(&mut self, net: &GaussianNetwork, protocol: Protocol) -> f64 {
        self.max_min_rate_impl(net, protocol)
            .map(|pt| 2.0 * pt.objective)
            .unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer;
    use bcc_channel::{ChannelState, PowerSplit};

    use bcc_num::approx_eq;

    fn net(p: f64, gab: f64, gar: f64, gbr: f64) -> GaussianNetwork {
        GaussianNetwork::new(p, ChannelState::new(gab, gar, gbr))
    }

    fn fig4(p: f64) -> GaussianNetwork {
        net(p, 0.19952623149688797, 1.0, 3.1622776601683795)
    }

    #[test]
    fn dt_sum_rate_matches_simplex() {
        for p in [0.0, 0.5, 10.0, 31.6] {
            let n = fig4(p);
            let kernel = max_sum_rate(&n, Protocol::DirectTransmission).unwrap();
            let sets = n.constraint_sets(Protocol::DirectTransmission, Bound::Inner);
            let lp = optimizer::max_sum_rate(&sets[0]).unwrap();
            assert!(
                approx_eq(kernel.sum_rate, lp.objective, 1e-9),
                "P={p}: {} vs {}",
                kernel.sum_rate,
                lp.objective
            );
            assert!(sets[0].all_satisfied(kernel.ra, kernel.rb, &kernel.durations, 1e-9));
        }
    }

    #[test]
    fn mabc_sum_rate_matches_simplex_on_grid() {
        for p in [0.5, 2.0, 10.0] {
            for (gar, gbr) in [(1.0, 1.0), (0.2, 5.0), (10.0, 0.01), (3.0, 3.0)] {
                let n = net(p, 1.0, gar, gbr);
                let kernel = max_sum_rate(&n, Protocol::Mabc).unwrap();
                let sets = n.constraint_sets(Protocol::Mabc, Bound::Inner);
                let lp = optimizer::max_sum_rate(&sets[0]).unwrap();
                assert!(
                    approx_eq(kernel.sum_rate, lp.objective, 1e-9),
                    "P={p} gar={gar} gbr={gbr}: {} vs {}",
                    kernel.sum_rate,
                    lp.objective
                );
                assert!(
                    sets[0].all_satisfied(kernel.ra, kernel.rb, &kernel.durations, 1e-9),
                    "kernel point infeasible at P={p} gar={gar} gbr={gbr}"
                );
                let total: f64 = kernel.durations.iter().sum();
                assert!(approx_eq(total, 1.0, 1e-12));
            }
        }
    }

    #[test]
    fn mabc_max_min_matches_simplex_on_grid() {
        for p in [0.5, 2.0, 10.0] {
            for (gar, gbr) in [(1.0, 1.0), (0.2, 5.0), (4.0, 0.5)] {
                let n = net(p, 0.5, gar, gbr);
                let kernel = max_min_rate(&n, Protocol::Mabc).unwrap();
                let sets = n.constraint_sets(Protocol::Mabc, Bound::Inner);
                let lp = optimizer::max_min_rate(&sets[0]).unwrap();
                assert!(
                    approx_eq(kernel.objective, lp.objective, 1e-9),
                    "P={p} gar={gar} gbr={gbr}: {} vs {}",
                    kernel.objective,
                    lp.objective
                );
                assert!(sets[0].all_satisfied(kernel.ra, kernel.rb, &kernel.durations, 1e-9));
            }
        }
    }

    #[test]
    fn dt_max_min_closed_form() {
        let n = net(10.0, 1.0, 1.0, 1.0);
        let kernel = max_min_rate(&n, Protocol::DirectTransmission).unwrap();
        let sets = n.constraint_sets(Protocol::DirectTransmission, Bound::Inner);
        let lp = optimizer::max_min_rate(&sets[0]).unwrap();
        assert!(approx_eq(kernel.objective, lp.objective, 1e-9));
        // Symmetric caps: split is even, t = C/2.
        assert!(approx_eq(kernel.durations[0], 0.5, 1e-12));
    }

    #[test]
    fn kernel_coverage_matches_dispatch_rules() {
        let n = fig4(10.0);
        // Sum rate: every protocol has a closed form.
        assert!(max_sum_rate(&n, Protocol::Tdbc).is_some());
        assert!(max_sum_rate(&n, Protocol::Hbc).is_some());
        // Max–min: everything but HBC.
        assert!(max_min_rate(&n, Protocol::Tdbc).is_some());
        assert!(max_min_rate(&n, Protocol::Hbc).is_none());
    }

    #[test]
    fn hbc_sum_rate_matches_simplex_on_grid() {
        for p in [0.5, 2.0, 10.0, 31.6] {
            for (gab, gar, gbr) in [
                (0.2, 1.0, 3.16),
                (1.0, 1.0, 1.0),
                (1.0, 0.01, 10.0),
                (0.0, 2.0, 2.0),
                (5.0, 0.5, 0.5),
                (1.0, 0.0, 1.0),
                (0.5, 10.0, 0.1),
            ] {
                let n = net(p, gab, gar, gbr);
                let kernel = max_sum_rate(&n, Protocol::Hbc).unwrap();
                let sets = n.constraint_sets(Protocol::Hbc, Bound::Inner);
                let lp = optimizer::max_sum_rate(&sets[0]).unwrap();
                assert!(
                    approx_eq(kernel.sum_rate, lp.objective, 1e-9),
                    "P={p} gab={gab} gar={gar} gbr={gbr}: {} vs {}",
                    kernel.sum_rate,
                    lp.objective
                );
                assert!(
                    sets[0].all_satisfied(kernel.ra, kernel.rb, &kernel.durations, 1e-9),
                    "kernel point infeasible at P={p} gab={gab} gar={gar} gbr={gbr}"
                );
                assert!(approx_eq(kernel.ra + kernel.rb, kernel.sum_rate, 1e-9));
                let total: f64 = kernel.durations.iter().sum();
                assert!(approx_eq(total, 1.0, 1e-8));
            }
        }
    }

    #[test]
    fn tdbc_max_min_matches_simplex_on_grid() {
        for p in [0.5, 2.0, 10.0, 31.6] {
            for (gab, gar, gbr) in [
                (0.2, 1.0, 3.16),
                (1.0, 1.0, 1.0),
                (1.0, 0.01, 10.0),
                (0.0, 2.0, 2.0),
                (5.0, 0.5, 0.5),
                (1.0, 0.0, 1.0),
            ] {
                let n = net(p, gab, gar, gbr);
                let kernel = max_min_rate(&n, Protocol::Tdbc).unwrap();
                let sets = n.constraint_sets(Protocol::Tdbc, Bound::Inner);
                let lp = optimizer::max_min_rate(&sets[0]).unwrap();
                assert!(
                    approx_eq(kernel.objective, lp.objective, 1e-9),
                    "P={p} gab={gab} gar={gar} gbr={gbr}: {} vs {}",
                    kernel.objective,
                    lp.objective
                );
                assert!(
                    sets[0].all_satisfied(kernel.ra, kernel.rb, &kernel.durations, 1e-9),
                    "kernel point infeasible at P={p} gab={gab} gar={gar} gbr={gbr}"
                );
            }
        }
    }

    #[test]
    fn tdbc_sum_rate_matches_simplex_on_grid() {
        for p in [0.5, 2.0, 10.0, 31.6] {
            for (gab, gar, gbr) in [
                (0.2, 1.0, 3.16),
                (1.0, 1.0, 1.0),
                (1.0, 0.01, 10.0),
                (0.0, 2.0, 2.0),
                (5.0, 0.5, 0.5),
                (1.0, 0.0, 1.0),
            ] {
                let n = net(p, gab, gar, gbr);
                let kernel = max_sum_rate(&n, Protocol::Tdbc).unwrap();
                let sets = n.constraint_sets(Protocol::Tdbc, Bound::Inner);
                let lp = optimizer::max_sum_rate(&sets[0]).unwrap();
                assert!(
                    approx_eq(kernel.sum_rate, lp.objective, 1e-9),
                    "P={p} gab={gab} gar={gar} gbr={gbr}: {} vs {}",
                    kernel.sum_rate,
                    lp.objective
                );
                assert!(
                    sets[0].all_satisfied(kernel.ra, kernel.rb, &kernel.durations, 1e-9),
                    "kernel point infeasible at P={p} gab={gab} gar={gar} gbr={gbr}"
                );
                let total: f64 = kernel.durations.iter().sum();
                assert!(approx_eq(total, 1.0, 1e-8));
            }
        }
    }

    #[test]
    fn zero_power_edge_cases() {
        let dead = GaussianNetwork::with_powers(
            PowerSplit::new(0.0, 0.0, 0.0),
            ChannelState::new(1.0, 1.0, 1.0),
        );
        for proto in [Protocol::DirectTransmission, Protocol::Mabc] {
            let s = max_sum_rate(&dead, proto).unwrap();
            assert!(approx_eq(s.sum_rate, 0.0, 1e-12), "{proto}");
            let t = max_min_rate(&dead, proto).unwrap();
            assert!(approx_eq(t.objective, 0.0, 1e-12), "{proto}");
        }
        // Silent relay starves MABC broadcast but not DT.
        let silent_relay = GaussianNetwork::with_powers(
            PowerSplit::new(10.0, 10.0, 0.0),
            ChannelState::new(1.0, 1.0, 1.0),
        );
        let s = max_sum_rate(&silent_relay, Protocol::Mabc).unwrap();
        assert!(approx_eq(s.sum_rate, 0.0, 1e-9), "no broadcast, no rate");
    }

    #[test]
    fn ctx_sum_rate_agrees_with_network_queries() {
        let mut ctx = SolveCtx::new();
        for p in [1.0, 10.0] {
            let n = fig4(p);
            for proto in Protocol::ALL {
                let a = ctx
                    .solve_one(&n, SolveRequest::sum_rate(proto))
                    .unwrap()
                    .sum_rate_solution();
                let b = n.max_sum_rate(proto).unwrap();
                assert_eq!(a, b, "{proto} at P={p}");
            }
        }
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_wrappers_delegate_to_the_typed_api() {
        let mut ctx = SolveCtx::new();
        let n = fig4(10.0);
        for proto in Protocol::ALL {
            let old = ctx.sum_rate(&n, proto).unwrap();
            let new = ctx
                .solve_one(&n, SolveRequest::sum_rate(proto))
                .unwrap()
                .sum_rate_solution();
            assert_eq!(old, new, "sum_rate wrapper drifted for {proto}");
            let old = ctx.sum_rate_for(&n, proto, Bound::Outer, None).unwrap();
            let new = ctx
                .solve_one(&n, SolveRequest::sum_rate(proto).with_bound(Bound::Outer))
                .unwrap()
                .sum_rate_solution();
            assert_eq!(old, new, "sum_rate_for wrapper drifted for {proto}");
            let old = ctx.max_min_for(&n, proto, Bound::Inner).unwrap();
            let new = ctx
                .solve_one(&n, SolveRequest::max_min(proto))
                .unwrap()
                .schedule_point();
            assert_eq!(old, new, "max_min_for wrapper drifted for {proto}");
            let old = ctx.equal_rate_sum(&n, proto);
            let new = ctx
                .solve_one(&n, SolveRequest::max_min(proto))
                .map(|o| 2.0 * o.value)
                .unwrap_or(0.0);
            assert_eq!(old.to_bits(), new.to_bits(), "equal_rate_sum drifted");
        }
    }

    #[test]
    fn best_sum_rate_picks_the_argmax_protocol() {
        let mut ctx = SolveCtx::new();
        for p in [0.5, 10.0, 31.6] {
            let n = fig4(p);
            let best = ctx
                .solve_best(&n, &Protocol::ALL, Objective::SumRate, Bound::Inner, None)
                .unwrap()
                .expect("no floor, always feasible")
                .sum_rate_solution();
            for proto in Protocol::ALL {
                let sol = ctx
                    .solve_one(&n, SolveRequest::sum_rate(proto))
                    .unwrap()
                    .sum_rate_solution();
                assert!(
                    best.sum_rate >= sol.sum_rate,
                    "P={p}: winner {} lost to {proto}",
                    best.protocol
                );
                if proto == best.protocol {
                    assert_eq!(best, sol, "winner must carry its own solution");
                }
            }
        }
    }

    #[test]
    fn best_sum_rate_ties_resolve_to_earliest_protocol() {
        // A dead network scores 0 for every protocol: the first listed wins.
        let dead = GaussianNetwork::with_powers(
            PowerSplit::new(0.0, 0.0, 0.0),
            ChannelState::new(1.0, 1.0, 1.0),
        );
        let mut ctx = SolveCtx::new();
        let best = ctx
            .solve_best(
                &dead,
                &Protocol::ALL,
                Objective::SumRate,
                Bound::Inner,
                None,
            )
            .unwrap()
            .unwrap();
        assert_eq!(best.protocol, Protocol::DirectTransmission);
        let best = ctx
            .solve_best(
                &dead,
                &Protocol::RELAYED,
                Objective::SumRate,
                Bound::Inner,
                None,
            )
            .unwrap()
            .unwrap();
        assert_eq!(best.protocol, Protocol::Mabc);
    }

    #[test]
    fn best_sum_rate_skips_infeasible_and_reports_total_infeasibility() {
        let n = fig4(10.0);
        let mut ctx = SolveCtx::new();
        // A floor no protocol can reach at P = 10 dB.
        let none = ctx
            .solve_best(
                &n,
                &Protocol::ALL,
                Objective::SumRate,
                Bound::Inner,
                Some((50.0, 50.0)),
            )
            .unwrap();
        assert!(none.is_none(), "absurd floor must be infeasible everywhere");
        // A floor only the relay-aided protocols can reach: DT is skipped,
        // the winner still appears.
        let dt_cap = ctx
            .solve_one(&n, SolveRequest::sum_rate(Protocol::DirectTransmission))
            .unwrap()
            .value;
        let floor = (dt_cap * 0.75, dt_cap * 0.75);
        let best = ctx
            .solve_best(
                &n,
                &Protocol::ALL,
                Objective::SumRate,
                Bound::Inner,
                Some(floor),
            )
            .unwrap()
            .expect("relay-aided protocols satisfy the floor");
        assert_ne!(best.protocol, Protocol::DirectTransmission);
        assert!(best.ra >= floor.0 - 1e-9 && best.rb >= floor.1 - 1e-9);
    }

    #[test]
    fn ctx_family_maximum_matches_per_member_solves() {
        let mut ctx = SolveCtx::new();
        let n = fig4(10.0);
        let fam = ctx
            .solve_one(
                &n,
                SolveRequest::sum_rate(Protocol::Hbc).with_bound(Bound::Outer),
            )
            .unwrap()
            .sum_rate_solution();
        let direct: f64 = n
            .constraint_sets(Protocol::Hbc, Bound::Outer)
            .iter()
            .map(|s| optimizer::max_sum_rate(s).unwrap().objective)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(approx_eq(fam.sum_rate, direct, 1e-9));
    }
}
