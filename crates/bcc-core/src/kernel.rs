//! Closed-form fast paths and the zero-allocation batch solve context.
//!
//! # Closed forms
//!
//! For the **two-phase protocols** — direct transmission and MABC — the
//! workspace's dominant queries collapse analytically. With phase split
//! `Δ ∈ [0, 1]` (phase 2 lasts `1 − Δ`), every Theorem-2/DT rate bound is
//! a line `p·Δ + q·(1 − Δ)`, so
//!
//! * `max_sum_rate` maximises a **concave piecewise-linear** function of
//!   `Δ` — `min(mA(Δ) + mB(Δ), Δ·C_MAC)` for MABC, linear for DT — whose
//!   maximum sits at a kink or at an analytic crossing point;
//! * `max_min_rate` maximises `min` of at most five lines, whose maximum
//!   sits at a pairwise line crossing or an endpoint.
//!
//! Both are solved exactly by evaluating a handful of candidate `Δ`s —
//! tens of flops instead of a simplex run. The kernel is dispatched
//! automatically by [`SolveCtx`] (and `GaussianNetwork::max_sum_rate`)
//! whenever no QoS rate floor and no outer-bound ρ-family is in play;
//! the simplex remains the general fallback for TDBC/HBC (three and four
//! phases have genuinely multidimensional schedules) and serves as the
//! proptest oracle for the kernel (`bcc-core/tests/kernel_oracle.rs`).
//!
//! # The solve context
//!
//! [`SolveCtx`] bundles everything a batch worker needs to evaluate
//! operating points with **zero heap allocations per point** after
//! warm-up: a [`bcc_lp::Workspace`] (flat tableau + warm-start bases), a
//! [`ConstraintBuf`] arena the `*_into` bound builders rebuild in place,
//! a pooled-row [`Problem`], and a reusable [`Solution`]. The `Scenario`
//! evaluator, the fading Monte-Carlo fan-outs and the allocation search
//! all hold one `SolveCtx` per worker thread.

use crate::bounds::{self, LinkCaps};
use crate::constraint::{ConstraintBuf, ConstraintSet, PhaseVec};
use crate::error::CoreError;
use crate::gaussian::{GaussianNetwork, SumRateSolution};
use crate::optimizer::SchedulePoint;
use crate::protocol::{Bound, Protocol};
use bcc_lp::{Problem, Relation, Sense, Solution, Workspace};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Process-wide count of solves served by the closed-form kernel (the
/// companion of [`bcc_lp::stats`]'s solve counters; `bench-report` reads
/// deltas of both to report the kernel-vs-simplex mix).
static KERNEL_HITS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Calling-thread twin of [`KERNEL_HITS`] (see [`kernel_hits_local`]).
    static KERNEL_HITS_LOCAL: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Total solves served by the closed-form kernel since process start.
pub fn kernel_hits() -> u64 {
    KERNEL_HITS.load(Relaxed)
}

/// Kernel solves performed **on the calling thread** since it started —
/// the race-free companion of [`kernel_hits`] for in-process assertions.
///
/// The global counter is process-wide, so a delta taken around a workload
/// in one `cargo test` thread also counts kernel hits from concurrently
/// running tests. A delta of this thread-local counter counts only the
/// calling thread's own solves; pin the workload to one worker
/// (`Scenario::threads(1)` — the serial path runs inline on the caller)
/// for complete capture. See [`bcc_lp::stats::scoped`] for the matching
/// LP-side helper.
pub fn kernel_hits_local() -> u64 {
    KERNEL_HITS_LOCAL.with(std::cell::Cell::get)
}

/// Records one kernel-served solve on both the global and the
/// calling-thread counter.
fn record_kernel_hit() {
    KERNEL_HITS.fetch_add(1, Relaxed);
    KERNEL_HITS_LOCAL.with(|c| c.set(c.get() + 1));
}

/// Upper bound on candidate Δs any closed form enumerates.
const MAX_CANDS: usize = 16;

/// Fixed-capacity candidate list (keeps the kernel allocation-free).
struct Cands {
    buf: [f64; MAX_CANDS],
    len: usize,
}

impl Cands {
    fn new() -> Self {
        Cands {
            buf: [0.0; MAX_CANDS],
            len: 0,
        }
    }

    fn push(&mut self, d: f64) {
        if (0.0..=1.0).contains(&d) {
            debug_assert!(self.len < MAX_CANDS);
            self.buf[self.len] = d;
            self.len += 1;
        }
    }

    fn as_slice(&self) -> &[f64] {
        &self.buf[..self.len]
    }
}

/// The value of the line `p·Δ + q·(1 − Δ)`.
fn line(p: f64, q: f64, d: f64) -> f64 {
    p * d + q * (1.0 - d)
}

/// The crossing of lines `(p1, q1)` and `(p2, q2)` if it exists.
fn crossing(p1: f64, q1: f64, p2: f64, q2: f64) -> Option<f64> {
    let denom = (p1 - q1) - (p2 - q2);
    if denom == 0.0 {
        return None;
    }
    Some((q2 - q1) / denom)
}

/// Maximises `Δ ↦ min_i(p_i·Δ + q_i·(1 − Δ))` over `[0, 1]`: the maximum
/// of a concave min-of-lines sits at a pairwise crossing or an endpoint.
/// Returns `(Δ*, value)` (first-found maximum, so ties resolve
/// deterministically).
fn maximize_min_of_lines(lines: &[(f64, f64)]) -> (f64, f64) {
    let mut cands = Cands::new();
    cands.push(0.0);
    cands.push(1.0);
    for i in 0..lines.len() {
        for j in i + 1..lines.len() {
            if let Some(d) = crossing(lines[i].0, lines[i].1, lines[j].0, lines[j].1) {
                cands.push(d);
            }
        }
    }
    let eval = |d: f64| {
        lines
            .iter()
            .map(|&(p, q)| line(p, q, d))
            .fold(f64::INFINITY, f64::min)
    };
    let mut best = (0.0, f64::NEG_INFINITY);
    for &d in cands.as_slice() {
        let v = eval(d);
        if v > best.1 {
            best = (d, v);
        }
    }
    best
}

/// Closed-form `max_sum_rate` for DT, MABC and TDBC; `None` for HBC
/// (simplex fallback — its four-phase schedule is genuinely
/// three-dimensional and vertex enumeration stops paying off).
pub fn max_sum_rate(net: &GaussianNetwork, protocol: Protocol) -> Option<SumRateSolution> {
    match protocol {
        Protocol::DirectTransmission | Protocol::Mabc | Protocol::Tdbc => {
            max_sum_rate_from_caps(&LinkCaps::compute(&net.powers(), &net.state()), protocol)
        }
        Protocol::Hbc => None,
    }
}

/// Exact closed-form TDBC sum rate by **vertex enumeration** over the
/// duration simplex.
///
/// With `u = min(α·Δ₁, β·Δ₁ + γ·Δ₃)` (a's deliverable rate) and
/// `v = min(δ·Δ₂, ε·Δ₂ + ζ·Δ₃)`, the sum rate `u + v` is concave
/// piecewise-linear on the 2-simplex `Δ₁+Δ₂+Δ₃ = 1`, with kinks only on
/// the two planes where a `min` switches sides. Every linear region is
/// bounded by (a subset of) **five planes** — the three simplex
/// boundaries plus the two kink planes — so the maximum is attained at
/// the intersection of two of them with the simplex: at most 10
/// candidate vertices, each a cross product away. Evaluating `u + v` at
/// the candidates is exact (each is a feasible operating point), so the
/// best candidate *is* the LP optimum.
fn tdbc_sum_rate_from_caps(caps: &LinkCaps) -> SumRateSolution {
    let (alpha, beta, gamma) = (caps.c_a_ar, caps.c_a_ab, caps.c_r_br);
    let (delta, eps, zeta) = (caps.c_b_br, caps.c_b_ab, caps.c_r_ar);
    let planes: [[f64; 3]; 5] = [
        [1.0, 0.0, 0.0],             // Δ₁ = 0
        [0.0, 1.0, 0.0],             // Δ₂ = 0
        [0.0, 0.0, 1.0],             // Δ₃ = 0
        [alpha - beta, 0.0, -gamma], // α·Δ₁ = β·Δ₁ + γ·Δ₃
        [0.0, delta - eps, -zeta],   // δ·Δ₂ = ε·Δ₂ + ζ·Δ₃
    ];
    let u = |d: &[f64; 3]| (alpha * d[0]).min(beta * d[0] + gamma * d[2]).max(0.0);
    let v = |d: &[f64; 3]| (delta * d[1]).min(eps * d[1] + zeta * d[2]).max(0.0);
    let mut best = (f64::NEG_INFINITY, [0.0, 0.0, 1.0], 0.0, 0.0);
    for i in 0..planes.len() {
        for j in i + 1..planes.len() {
            let (a, b) = (planes[i], planes[j]);
            // The two planes meet the simplex plane where their cross
            // product, normalised to unit coordinate sum, lands.
            let d = [
                a[1] * b[2] - a[2] * b[1],
                a[2] * b[0] - a[0] * b[2],
                a[0] * b[1] - a[1] * b[0],
            ];
            let sum = d[0] + d[1] + d[2];
            let norm = d[0].abs() + d[1].abs() + d[2].abs();
            if sum.abs() <= 1e-12 * norm || norm == 0.0 {
                continue; // parallel to the simplex plane (or degenerate)
            }
            let d = [d[0] / sum, d[1] / sum, d[2] / sum];
            if d.iter().any(|&x| !(-1e-9..=1.0 + 1e-9).contains(&x)) {
                continue; // outside the simplex
            }
            let d = [d[0].max(0.0), d[1].max(0.0), d[2].max(0.0)];
            let (uu, vv) = (u(&d), v(&d));
            if uu + vv > best.0 {
                best = (uu + vv, d, uu, vv);
            }
        }
    }
    SumRateSolution {
        protocol: Protocol::Tdbc,
        sum_rate: best.0,
        ra: best.2,
        rb: best.3,
        durations: PhaseVec::from(best.1),
    }
}

/// [`max_sum_rate`] from precomputed [`LinkCaps`] (the batch hot path —
/// one capacity evaluation per point serves every protocol). Covers DT,
/// MABC and TDBC; HBC returns `None` and falls back to the simplex.
pub fn max_sum_rate_from_caps(caps: &LinkCaps, protocol: Protocol) -> Option<SumRateSolution> {
    let sol = match protocol {
        Protocol::DirectTransmission => {
            // Sum rate Δ·c_a + (1−Δ)·c_b is linear: all time to the
            // stronger direction.
            let (c_a, c_b) = (caps.c_a_ab, caps.c_b_ab);
            if c_a >= c_b {
                SumRateSolution {
                    protocol,
                    sum_rate: c_a,
                    ra: c_a,
                    rb: 0.0,
                    durations: PhaseVec::from([1.0, 0.0]),
                }
            } else {
                SumRateSolution {
                    protocol,
                    sum_rate: c_b,
                    ra: 0.0,
                    rb: c_b,
                    durations: PhaseVec::from([0.0, 1.0]),
                }
            }
        }
        Protocol::Mabc => {
            let (a1, a2, b1, b2, s) = (
                caps.c_a_ar,
                caps.c_r_br,
                caps.c_b_br,
                caps.c_r_ar,
                caps.c_mac,
            );
            let (d, sum) = mabc_sum_rate(a1, a2, b1, b2, s);
            let ra0 = (d * a1).min((1.0 - d) * a2);
            let rb0 = (d * b1).min((1.0 - d) * b2);
            let cap = d * s;
            let (ra, rb) = if ra0 + rb0 > cap {
                // The MAC sum row binds: keep R_b at its individual cap
                // and give R_a the remainder (any split achieving the sum
                // is optimal; this one is deterministic and feasible).
                let rb = rb0.min(cap);
                (cap - rb, rb)
            } else {
                (ra0, rb0)
            };
            SumRateSolution {
                protocol,
                sum_rate: sum,
                ra,
                rb,
                durations: PhaseVec::from([d, 1.0 - d]),
            }
        }
        Protocol::Tdbc => tdbc_sum_rate_from_caps(caps),
        Protocol::Hbc => return None,
    };
    record_kernel_hit();
    Some(sol)
}

/// Maximises `f(Δ) = min(mA(Δ) + mB(Δ), Δ·s)` over `[0, 1]` where
/// `mX(Δ) = min(Δ·x1, (1−Δ)·x2)` — the MABC sum-rate profile. `f` is
/// concave piecewise-linear; its maximum sits at a kink of `mA + mB`, at a
/// crossing of `mA + mB` with the MAC line, or at an endpoint.
fn mabc_sum_rate(a1: f64, a2: f64, b1: f64, b2: f64, s: f64) -> (f64, f64) {
    let g = |d: f64| (d * a1).min((1.0 - d) * a2) + (d * b1).min((1.0 - d) * b2);
    let f = |d: f64| g(d).min(d * s);
    let mut knots = Cands::new();
    knots.push(0.0);
    if a1 + a2 > 0.0 {
        knots.push(a2 / (a1 + a2));
    }
    if b1 + b2 > 0.0 {
        knots.push(b2 / (b1 + b2));
    }
    knots.push(1.0);
    // Candidates: the knots themselves plus, per segment between adjacent
    // knots (where g is linear), the analytic crossing with the MAC line.
    let mut cands = Cands::new();
    let mut sorted = [0.0; MAX_CANDS];
    let k = knots.as_slice().len();
    sorted[..k].copy_from_slice(knots.as_slice());
    sorted[..k].sort_unstable_by(|x, y| x.partial_cmp(y).expect("finite"));
    for &d in &sorted[..k] {
        cands.push(d);
    }
    for w in sorted[..k].windows(2) {
        let (l, r) = (w[0], w[1]);
        if r - l <= 0.0 {
            continue;
        }
        let slope = (g(r) - g(l)) / (r - l);
        // g(l) + slope·(Δ − l) = s·Δ  ⇒  Δ = (g(l) − slope·l) / (s − slope)
        if s != slope {
            let d = (g(l) - slope * l) / (s - slope);
            if d >= l && d <= r {
                cands.push(d);
            }
        }
    }
    let mut best = (0.0, f64::NEG_INFINITY);
    for &d in cands.as_slice() {
        let v = f(d);
        if v > best.1 {
            best = (d, v);
        }
    }
    best
}

/// Closed-form `max_min_rate` (largest symmetric rate) for the two-phase
/// protocols; `None` for TDBC/HBC.
pub fn max_min_rate(net: &GaussianNetwork, protocol: Protocol) -> Option<SchedulePoint> {
    match protocol {
        Protocol::DirectTransmission | Protocol::Mabc => {
            max_min_rate_from_caps(&LinkCaps::compute(&net.powers(), &net.state()), protocol)
        }
        Protocol::Tdbc | Protocol::Hbc => None,
    }
}

/// [`max_min_rate`] from precomputed [`LinkCaps`].
pub fn max_min_rate_from_caps(caps: &LinkCaps, protocol: Protocol) -> Option<SchedulePoint> {
    let pt = match protocol {
        Protocol::DirectTransmission => {
            // t ≤ Δ·c_a, t ≤ (1−Δ)·c_b: optimum where both bind.
            let (c_a, c_b) = (caps.c_a_ab, caps.c_b_ab);
            if c_a <= 0.0 || c_b <= 0.0 {
                SchedulePoint {
                    ra: 0.0,
                    rb: 0.0,
                    durations: PhaseVec::from([0.5, 0.5]),
                    objective: 0.0,
                }
            } else {
                let d = c_b / (c_a + c_b);
                let t = c_a * c_b / (c_a + c_b);
                SchedulePoint {
                    ra: t,
                    rb: t,
                    durations: PhaseVec::from([d, 1.0 - d]),
                    objective: t,
                }
            }
        }
        Protocol::Mabc => {
            // t ≤ mA(Δ), t ≤ mB(Δ), 2t ≤ Δ·s: min of five lines.
            let (a1, a2, b1, b2, s) = (
                caps.c_a_ar,
                caps.c_r_br,
                caps.c_b_br,
                caps.c_r_ar,
                caps.c_mac,
            );
            let lines = [(a1, 0.0), (0.0, a2), (b1, 0.0), (0.0, b2), (0.5 * s, 0.0)];
            let (d, t) = maximize_min_of_lines(&lines);
            let t = t.max(0.0);
            SchedulePoint {
                ra: t,
                rb: t,
                durations: PhaseVec::from([d, 1.0 - d]),
                objective: t,
            }
        }
        Protocol::Tdbc | Protocol::Hbc => return None,
    };
    record_kernel_hit();
    Some(pt)
}

/// A per-worker batch solve context: LP workspace (flat tableau +
/// warm-start bases), constraint arena, pooled problem builder and
/// reusable solution — everything needed to evaluate grid points and fade
/// draws with zero heap allocations per point after warm-up (see the
/// module docs).
#[derive(Debug)]
pub struct SolveCtx {
    ws: Workspace,
    buf: ConstraintBuf,
    prob: Problem,
    sol: Solution,
    row: Vec<f64>,
    obj: Vec<f64>,
    /// Per-point capacity memo: the four protocols of one grid point share
    /// one [`LinkCaps`] evaluation (pure function of the key, so caching
    /// never changes results).
    caps: Option<(bcc_channel::PowerSplit, bcc_channel::ChannelState, LinkCaps)>,
}

impl Default for SolveCtx {
    fn default() -> Self {
        SolveCtx {
            ws: Workspace::new(),
            // Placeholder shape; every solve `reset`s the problem first.
            prob: Problem::maximize(&[0.0]),
            buf: ConstraintBuf::new(),
            sol: Solution::default(),
            row: Vec::new(),
            obj: Vec::new(),
            caps: None,
        }
    }
}

/// Builds the **phase-substituted** LP rows of `set` into `prob`.
///
/// The textbook formulation carries all `L` durations plus the simplex-
/// share equality `Σ Δ_ℓ = 1`, whose artificial variable forces a phase-1
/// pass on every solve. The hot path instead substitutes
/// `Δ_L = 1 − Σ_{ℓ<L} Δ_ℓ`, turning every rate bound
/// `lhs ≤ Σ c_ℓ Δ_ℓ` into `lhs + Σ_{ℓ<L} (c_L − c_ℓ)·Δ_ℓ ≤ c_L` — all
/// `≤` rows with non-negative right-hand sides, so the all-slack basis is
/// feasible and the simplex starts **directly in phase 2** (and the warm
/// path prices one fewer dimension). Variables are
/// `(R_a, R_b, Δ_1..Δ_{L−1}, [extras])`; `n` is the total count.
fn push_constraint_rows(prob: &mut Problem, row: &mut Vec<f64>, set: &ConstraintSet, n: usize) {
    let l = set.num_phases();
    for c in set.constraints() {
        row.clear();
        row.resize(n, 0.0);
        row[0] = c.ra;
        row[1] = c.rb;
        let c_last = c.phase_coefs[l - 1];
        for (idx, coef) in c.phase_coefs.iter().take(l - 1).enumerate() {
            row[2 + idx] = c_last - coef;
        }
        prob.subject_to(row, Relation::Le, c_last);
    }
    if l > 1 {
        // Δ_L ≥ 0 ⇔ Σ_{ℓ<L} Δ_ℓ ≤ 1.
        row.clear();
        row.resize(n, 0.0);
        for v in row.iter_mut().skip(2).take(l - 1) {
            *v = 1.0;
        }
        prob.subject_to(row, Relation::Le, 1.0);
    }
}

/// Reconstructs the full duration vector from the substituted variables
/// (`Δ_L = 1 − Σ`, clamped against float dust).
fn durations_from(x: &[f64], l: usize) -> PhaseVec {
    let mut d = PhaseVec::from_slice(&x[2..2 + l - 1]);
    let used: f64 = d.iter().sum();
    d.push((1.0 - used).max(0.0));
    d
}

/// The warm-started sum-rate LP over `set` with optional QoS floors,
/// operating on explicitly split context parts (so callers can keep the
/// constraint arena borrowed alongside).
#[allow(clippy::too_many_arguments)]
pub(crate) fn lp_sum_rate_parts(
    prob: &mut Problem,
    ws: &mut Workspace,
    sol: &mut Solution,
    row: &mut Vec<f64>,
    obj: &mut Vec<f64>,
    set: &ConstraintSet,
    floor: Option<(f64, f64)>,
) -> Result<SchedulePoint, CoreError> {
    let l = set.num_phases();
    let n = 2 + (l - 1);
    obj.clear();
    obj.resize(n, 0.0);
    obj[0] = 1.0;
    obj[1] = 1.0;
    prob.reset(Sense::Maximize, obj);
    push_constraint_rows(prob, row, set, n);
    if let Some((ra_min, rb_min)) = floor {
        row.clear();
        row.resize(n, 0.0);
        row[0] = 1.0;
        prob.subject_to(row, Relation::Ge, ra_min);
        row[0] = 0.0;
        row[1] = 1.0;
        prob.subject_to(row, Relation::Ge, rb_min);
    }
    prob.solve_warm_into(ws, sol).map_err(|e| {
        let what = if floor.is_some() {
            "sum-rate with QoS floor"
        } else {
            "sum-rate"
        };
        CoreError::lp(format!("{} {what}", set.name), e)
    })?;
    Ok(SchedulePoint {
        ra: sol.x[0],
        rb: sol.x[1],
        durations: durations_from(&sol.x, l),
        objective: sol.objective,
    })
}

/// The warm-started max–min LP over `set` on split context parts.
pub(crate) fn lp_max_min_parts(
    prob: &mut Problem,
    ws: &mut Workspace,
    sol: &mut Solution,
    row: &mut Vec<f64>,
    obj: &mut Vec<f64>,
    set: &ConstraintSet,
) -> Result<SchedulePoint, CoreError> {
    let l = set.num_phases();
    let n = 2 + (l - 1) + 1;
    obj.clear();
    obj.resize(n, 0.0);
    obj[n - 1] = 1.0;
    prob.reset(Sense::Maximize, obj);
    push_constraint_rows(prob, row, set, n);
    // t − R_a ≤ 0, t − R_b ≤ 0 (kept as `≤` rows so the all-slack basis
    // stays feasible and no phase-1 pass is needed).
    row.clear();
    row.resize(n, 0.0);
    row[0] = -1.0;
    row[n - 1] = 1.0;
    prob.subject_to(row, Relation::Le, 0.0);
    row[0] = 0.0;
    row[1] = -1.0;
    prob.subject_to(row, Relation::Le, 0.0);
    prob.solve_warm_into(ws, sol)
        .map_err(|e| CoreError::lp(format!("{} max-min", set.name), e))?;
    Ok(SchedulePoint {
        ra: sol.x[0],
        rb: sol.x[1],
        durations: durations_from(&sol.x, l),
        objective: sol.objective,
    })
}

impl SolveCtx {
    /// Creates an empty context (buffers grow to fit on first use).
    pub fn new() -> Self {
        SolveCtx::default()
    }

    /// The context's LP workspace (for callers that mix direct
    /// [`bcc_lp`] use with context solves).
    pub fn workspace(&mut self) -> &mut Workspace {
        &mut self.ws
    }

    /// Solves `max R_a + R_b` over `set` by warm-started simplex, with
    /// optional QoS floors `R_a ≥ ra_min`, `R_b ≥ rb_min`.
    ///
    /// # Errors
    ///
    /// Propagates LP failures (infeasibility when a floor is
    /// unachievable).
    pub fn lp_sum_rate(
        &mut self,
        set: &ConstraintSet,
        floor: Option<(f64, f64)>,
    ) -> Result<SchedulePoint, CoreError> {
        let SolveCtx {
            ws,
            prob,
            sol,
            row,
            obj,
            ..
        } = self;
        lp_sum_rate_parts(prob, ws, sol, row, obj, set, floor)
    }

    /// Solves the max–min (symmetric-rate) LP over `set` by warm-started
    /// simplex.
    ///
    /// # Errors
    ///
    /// Propagates LP failures.
    pub fn lp_max_min(&mut self, set: &ConstraintSet) -> Result<SchedulePoint, CoreError> {
        let SolveCtx {
            ws,
            prob,
            sol,
            row,
            obj,
            ..
        } = self;
        lp_max_min_parts(prob, ws, sol, row, obj, set)
    }

    /// Optimal achievable sum rate of `protocol` at `net` — the batch
    /// sweep/outage/DMT hot path: closed-form kernel for the two-phase
    /// protocols, warm-started simplex otherwise.
    ///
    /// # Errors
    ///
    /// Propagates LP failures (not expected for valid inputs).
    pub fn sum_rate(
        &mut self,
        net: &GaussianNetwork,
        protocol: Protocol,
    ) -> Result<SumRateSolution, CoreError> {
        let caps = self.link_caps(net);
        if let Some(sol) = max_sum_rate_from_caps(&caps, protocol) {
            return Ok(sol);
        }
        let SolveCtx {
            ws,
            buf,
            prob,
            sol,
            row,
            obj,
            ..
        } = self;
        buf.begin();
        bounds::inner_constraints_from_caps_into(protocol, &caps, buf.next_set());
        let pt = lp_sum_rate_parts(prob, ws, sol, row, obj, &buf.sets()[0], None)?;
        Ok(SumRateSolution {
            protocol,
            sum_rate: pt.objective,
            ra: pt.ra,
            rb: pt.rb,
            durations: pt.durations,
        })
    }

    /// The memoised per-point capacity bundle (see [`LinkCaps`]).
    fn link_caps(&mut self, net: &GaussianNetwork) -> LinkCaps {
        let powers = net.powers();
        let state = net.state();
        if let Some((p, st, caps)) = &self.caps {
            if *p == powers && *st == state {
                return *caps;
            }
        }
        let caps = LinkCaps::compute(&powers, &state);
        self.caps = Some((powers, state, caps));
        caps
    }

    /// Sum rate of `(protocol, bound)` with an optional QoS floor — the
    /// general grid-point solve behind `Evaluator::sweep`: outer bounds
    /// can be set *families* (HBC's ρ-family, maximised over members), and
    /// floors can make members — or the whole family — infeasible (the
    /// family is infeasible only if every member is).
    ///
    /// # Errors
    ///
    /// Propagates LP failures; with a floor, an infeasibility error means
    /// the floor is unachievable at this operating point.
    pub fn sum_rate_for(
        &mut self,
        net: &GaussianNetwork,
        protocol: Protocol,
        bound: Bound,
        floor: Option<(f64, f64)>,
    ) -> Result<SumRateSolution, CoreError> {
        if bound == Bound::Inner && floor.is_none() {
            return self.sum_rate(net, protocol);
        }
        let SolveCtx {
            ws,
            buf,
            prob,
            sol,
            row,
            obj,
            ..
        } = self;
        let sets =
            bounds::constraint_sets_split_into(protocol, bound, &net.powers(), &net.state(), buf);
        let mut best: Option<SumRateSolution> = None;
        let mut infeasible: Option<CoreError> = None;
        for set in sets {
            let pt = match lp_sum_rate_parts(prob, ws, sol, row, obj, set, floor) {
                Ok(pt) => pt,
                Err(e) if e.is_infeasible() => {
                    infeasible = Some(e);
                    continue;
                }
                Err(e) => return Err(e),
            };
            if best.as_ref().is_none_or(|b| pt.objective > b.sum_rate) {
                best = Some(SumRateSolution {
                    protocol,
                    sum_rate: pt.objective,
                    ra: pt.ra,
                    rb: pt.rb,
                    durations: pt.durations,
                });
            }
        }
        match best {
            Some(sol) => Ok(sol),
            None => Err(infeasible.expect("constraint families are non-empty")),
        }
    }

    /// Selects the best protocol at `net` by optimal sum rate — the
    /// protocol-selection primitive behind the `bcc-serve` query engine.
    ///
    /// Every protocol in `protocols` is solved through this context
    /// ([`SolveCtx::sum_rate_for`]: closed-form kernel where available,
    /// warm-started simplex otherwise) and the winner is the one with the
    /// strictly greatest sum rate; ties resolve to the **earliest**
    /// protocol in `protocols`, so the answer is deterministic. Protocols
    /// whose LP is infeasible under `floor` are skipped; `Ok(None)` means
    /// *every* protocol was infeasible (the floor is unachievable at this
    /// operating point by any strategy).
    ///
    /// # Errors
    ///
    /// Propagates non-infeasibility LP failures (not expected for valid
    /// inputs).
    pub fn best_sum_rate(
        &mut self,
        net: &GaussianNetwork,
        protocols: &[Protocol],
        bound: Bound,
        floor: Option<(f64, f64)>,
    ) -> Result<Option<SumRateSolution>, CoreError> {
        let mut best: Option<SumRateSolution> = None;
        for &protocol in protocols {
            let sol = match self.sum_rate_for(net, protocol, bound, floor) {
                Ok(sol) => sol,
                Err(e) if e.is_infeasible() => continue,
                Err(e) => return Err(e),
            };
            if best.as_ref().is_none_or(|b| sol.sum_rate > b.sum_rate) {
                best = Some(sol);
            }
        }
        Ok(best)
    }

    /// Optimal achievable equal-rate (max–min) operating point of
    /// `protocol` at `net` — closed-form kernel for the two-phase
    /// protocols, warm-started zero-allocation simplex otherwise. The
    /// multi-pair fair-scheduling aggregates are assembled from these
    /// per-pair solves.
    ///
    /// # Errors
    ///
    /// Propagates LP failures (not expected for valid inputs).
    pub fn max_min_rate(
        &mut self,
        net: &GaussianNetwork,
        protocol: Protocol,
    ) -> Result<SchedulePoint, CoreError> {
        let caps = self.link_caps(net);
        if let Some(pt) = max_min_rate_from_caps(&caps, protocol) {
            return Ok(pt);
        }
        let SolveCtx {
            ws,
            buf,
            prob,
            sol,
            row,
            obj,
            ..
        } = self;
        buf.begin();
        bounds::inner_constraints_from_caps_into(protocol, &caps, buf.next_set());
        lp_max_min_parts(prob, ws, sol, row, obj, &buf.sets()[0])
    }

    /// Max–min rate of `(protocol, bound)` — the general form of
    /// [`SolveCtx::max_min_rate`]: outer bounds can be set *families*
    /// (HBC's ρ-family), maximised over members exactly like
    /// [`SolveCtx::sum_rate_for`].
    ///
    /// # Errors
    ///
    /// Propagates LP failures.
    pub fn max_min_for(
        &mut self,
        net: &GaussianNetwork,
        protocol: Protocol,
        bound: Bound,
    ) -> Result<SchedulePoint, CoreError> {
        if bound == Bound::Inner {
            return self.max_min_rate(net, protocol);
        }
        let SolveCtx {
            ws,
            buf,
            prob,
            sol,
            row,
            obj,
            ..
        } = self;
        let sets =
            bounds::constraint_sets_split_into(protocol, bound, &net.powers(), &net.state(), buf);
        let mut best: Option<SchedulePoint> = None;
        let mut infeasible: Option<CoreError> = None;
        for set in sets {
            let pt = match lp_max_min_parts(prob, ws, sol, row, obj, set) {
                Ok(pt) => pt,
                Err(e) if e.is_infeasible() => {
                    infeasible = Some(e);
                    continue;
                }
                Err(e) => return Err(e),
            };
            if best.as_ref().is_none_or(|b| pt.objective > b.objective) {
                best = Some(pt);
            }
        }
        match best {
            Some(pt) => Ok(pt),
            None => Err(infeasible.expect("constraint families are non-empty")),
        }
    }

    /// The ε-outage allocation objective of one fade draw: twice the
    /// max–min rate (equal-rate sum) of `protocol` at `net`, with a deep-
    /// fade LP failure counting as rate 0 (the Monte-Carlo convention).
    pub fn equal_rate_sum(&mut self, net: &GaussianNetwork, protocol: Protocol) -> f64 {
        self.max_min_rate(net, protocol)
            .map(|pt| 2.0 * pt.objective)
            .unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer;
    use bcc_channel::{ChannelState, PowerSplit};

    use bcc_num::approx_eq;

    fn net(p: f64, gab: f64, gar: f64, gbr: f64) -> GaussianNetwork {
        GaussianNetwork::new(p, ChannelState::new(gab, gar, gbr))
    }

    fn fig4(p: f64) -> GaussianNetwork {
        net(p, 0.19952623149688797, 1.0, 3.1622776601683795)
    }

    #[test]
    fn dt_sum_rate_matches_simplex() {
        for p in [0.0, 0.5, 10.0, 31.6] {
            let n = fig4(p);
            let kernel = max_sum_rate(&n, Protocol::DirectTransmission).unwrap();
            let sets = n.constraint_sets(Protocol::DirectTransmission, Bound::Inner);
            let lp = optimizer::max_sum_rate(&sets[0]).unwrap();
            assert!(
                approx_eq(kernel.sum_rate, lp.objective, 1e-9),
                "P={p}: {} vs {}",
                kernel.sum_rate,
                lp.objective
            );
            assert!(sets[0].all_satisfied(kernel.ra, kernel.rb, &kernel.durations, 1e-9));
        }
    }

    #[test]
    fn mabc_sum_rate_matches_simplex_on_grid() {
        for p in [0.5, 2.0, 10.0] {
            for (gar, gbr) in [(1.0, 1.0), (0.2, 5.0), (10.0, 0.01), (3.0, 3.0)] {
                let n = net(p, 1.0, gar, gbr);
                let kernel = max_sum_rate(&n, Protocol::Mabc).unwrap();
                let sets = n.constraint_sets(Protocol::Mabc, Bound::Inner);
                let lp = optimizer::max_sum_rate(&sets[0]).unwrap();
                assert!(
                    approx_eq(kernel.sum_rate, lp.objective, 1e-9),
                    "P={p} gar={gar} gbr={gbr}: {} vs {}",
                    kernel.sum_rate,
                    lp.objective
                );
                assert!(
                    sets[0].all_satisfied(kernel.ra, kernel.rb, &kernel.durations, 1e-9),
                    "kernel point infeasible at P={p} gar={gar} gbr={gbr}"
                );
                let total: f64 = kernel.durations.iter().sum();
                assert!(approx_eq(total, 1.0, 1e-12));
            }
        }
    }

    #[test]
    fn mabc_max_min_matches_simplex_on_grid() {
        for p in [0.5, 2.0, 10.0] {
            for (gar, gbr) in [(1.0, 1.0), (0.2, 5.0), (4.0, 0.5)] {
                let n = net(p, 0.5, gar, gbr);
                let kernel = max_min_rate(&n, Protocol::Mabc).unwrap();
                let sets = n.constraint_sets(Protocol::Mabc, Bound::Inner);
                let lp = optimizer::max_min_rate(&sets[0]).unwrap();
                assert!(
                    approx_eq(kernel.objective, lp.objective, 1e-9),
                    "P={p} gar={gar} gbr={gbr}: {} vs {}",
                    kernel.objective,
                    lp.objective
                );
                assert!(sets[0].all_satisfied(kernel.ra, kernel.rb, &kernel.durations, 1e-9));
            }
        }
    }

    #[test]
    fn dt_max_min_closed_form() {
        let n = net(10.0, 1.0, 1.0, 1.0);
        let kernel = max_min_rate(&n, Protocol::DirectTransmission).unwrap();
        let sets = n.constraint_sets(Protocol::DirectTransmission, Bound::Inner);
        let lp = optimizer::max_min_rate(&sets[0]).unwrap();
        assert!(approx_eq(kernel.objective, lp.objective, 1e-9));
        // Symmetric caps: split is even, t = C/2.
        assert!(approx_eq(kernel.durations[0], 0.5, 1e-12));
    }

    #[test]
    fn kernel_coverage_matches_dispatch_rules() {
        let n = fig4(10.0);
        // Sum rate: everything but HBC has a closed form.
        assert!(max_sum_rate(&n, Protocol::Tdbc).is_some());
        assert!(max_sum_rate(&n, Protocol::Hbc).is_none());
        // Max–min: only the two-phase protocols.
        assert!(max_min_rate(&n, Protocol::Tdbc).is_none());
        assert!(max_min_rate(&n, Protocol::Hbc).is_none());
    }

    #[test]
    fn tdbc_sum_rate_matches_simplex_on_grid() {
        for p in [0.5, 2.0, 10.0, 31.6] {
            for (gab, gar, gbr) in [
                (0.2, 1.0, 3.16),
                (1.0, 1.0, 1.0),
                (1.0, 0.01, 10.0),
                (0.0, 2.0, 2.0),
                (5.0, 0.5, 0.5),
                (1.0, 0.0, 1.0),
            ] {
                let n = net(p, gab, gar, gbr);
                let kernel = max_sum_rate(&n, Protocol::Tdbc).unwrap();
                let sets = n.constraint_sets(Protocol::Tdbc, Bound::Inner);
                let lp = optimizer::max_sum_rate(&sets[0]).unwrap();
                assert!(
                    approx_eq(kernel.sum_rate, lp.objective, 1e-9),
                    "P={p} gab={gab} gar={gar} gbr={gbr}: {} vs {}",
                    kernel.sum_rate,
                    lp.objective
                );
                assert!(
                    sets[0].all_satisfied(kernel.ra, kernel.rb, &kernel.durations, 1e-9),
                    "kernel point infeasible at P={p} gab={gab} gar={gar} gbr={gbr}"
                );
                let total: f64 = kernel.durations.iter().sum();
                assert!(approx_eq(total, 1.0, 1e-8));
            }
        }
    }

    #[test]
    fn zero_power_edge_cases() {
        let dead = GaussianNetwork::with_powers(
            PowerSplit::new(0.0, 0.0, 0.0),
            ChannelState::new(1.0, 1.0, 1.0),
        );
        for proto in [Protocol::DirectTransmission, Protocol::Mabc] {
            let s = max_sum_rate(&dead, proto).unwrap();
            assert!(approx_eq(s.sum_rate, 0.0, 1e-12), "{proto}");
            let t = max_min_rate(&dead, proto).unwrap();
            assert!(approx_eq(t.objective, 0.0, 1e-12), "{proto}");
        }
        // Silent relay starves MABC broadcast but not DT.
        let silent_relay = GaussianNetwork::with_powers(
            PowerSplit::new(10.0, 10.0, 0.0),
            ChannelState::new(1.0, 1.0, 1.0),
        );
        let s = max_sum_rate(&silent_relay, Protocol::Mabc).unwrap();
        assert!(approx_eq(s.sum_rate, 0.0, 1e-9), "no broadcast, no rate");
    }

    #[test]
    fn ctx_sum_rate_agrees_with_network_queries() {
        let mut ctx = SolveCtx::new();
        for p in [1.0, 10.0] {
            let n = fig4(p);
            for proto in Protocol::ALL {
                let a = ctx.sum_rate(&n, proto).unwrap();
                let b = n.max_sum_rate(proto).unwrap();
                assert_eq!(a, b, "{proto} at P={p}");
            }
        }
    }

    #[test]
    fn best_sum_rate_picks_the_argmax_protocol() {
        let mut ctx = SolveCtx::new();
        for p in [0.5, 10.0, 31.6] {
            let n = fig4(p);
            let best = ctx
                .best_sum_rate(&n, &Protocol::ALL, Bound::Inner, None)
                .unwrap()
                .expect("no floor, always feasible");
            for proto in Protocol::ALL {
                let sol = ctx.sum_rate(&n, proto).unwrap();
                assert!(
                    best.sum_rate >= sol.sum_rate,
                    "P={p}: winner {} lost to {proto}",
                    best.protocol
                );
                if proto == best.protocol {
                    assert_eq!(best, sol, "winner must carry its own solution");
                }
            }
        }
    }

    #[test]
    fn best_sum_rate_ties_resolve_to_earliest_protocol() {
        // A dead network scores 0 for every protocol: the first listed wins.
        let dead = GaussianNetwork::with_powers(
            PowerSplit::new(0.0, 0.0, 0.0),
            ChannelState::new(1.0, 1.0, 1.0),
        );
        let mut ctx = SolveCtx::new();
        let best = ctx
            .best_sum_rate(&dead, &Protocol::ALL, Bound::Inner, None)
            .unwrap()
            .unwrap();
        assert_eq!(best.protocol, Protocol::DirectTransmission);
        let best = ctx
            .best_sum_rate(&dead, &Protocol::RELAYED, Bound::Inner, None)
            .unwrap()
            .unwrap();
        assert_eq!(best.protocol, Protocol::Mabc);
    }

    #[test]
    fn best_sum_rate_skips_infeasible_and_reports_total_infeasibility() {
        let n = fig4(10.0);
        let mut ctx = SolveCtx::new();
        // A floor no protocol can reach at P = 10 dB.
        let none = ctx
            .best_sum_rate(&n, &Protocol::ALL, Bound::Inner, Some((50.0, 50.0)))
            .unwrap();
        assert!(none.is_none(), "absurd floor must be infeasible everywhere");
        // A floor only the relay-aided protocols can reach: DT is skipped,
        // the winner still appears.
        let dt_cap = ctx
            .sum_rate(&n, Protocol::DirectTransmission)
            .unwrap()
            .sum_rate;
        let floor = (dt_cap * 0.75, dt_cap * 0.75);
        let best = ctx
            .best_sum_rate(&n, &Protocol::ALL, Bound::Inner, Some(floor))
            .unwrap()
            .expect("relay-aided protocols satisfy the floor");
        assert_ne!(best.protocol, Protocol::DirectTransmission);
        assert!(best.ra >= floor.0 - 1e-9 && best.rb >= floor.1 - 1e-9);
    }

    #[test]
    fn ctx_family_maximum_matches_per_member_solves() {
        let mut ctx = SolveCtx::new();
        let n = fig4(10.0);
        let fam = ctx
            .sum_rate_for(&n, Protocol::Hbc, Bound::Outer, None)
            .unwrap();
        let direct: f64 = n
            .constraint_sets(Protocol::Hbc, Bound::Outer)
            .iter()
            .map(|s| optimizer::max_sum_rate(s).unwrap().objective)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(approx_eq(fam.sum_rate, direct, 1e-9));
    }
}
