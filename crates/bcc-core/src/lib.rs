//! Capacity bounds for bidirectional coded cooperation protocols.
//!
//! This crate is the heart of the workspace: it implements the protocol
//! definitions and every performance bound of
//!
//! > S. J. Kim, P. Mitran, V. Tarokh, *Performance Bounds for Bidirectional
//! > Coded Cooperation Protocols*, IEEE Trans. Inf. Theory 54(11), 2008
//! > (ICDCS 2007 workshop version).
//!
//! Two terminals `a`, `b` exchange independent messages through a relay `r`
//! over a shared half-duplex channel. The paper studies three
//! decode-and-forward protocols with contiguous phases:
//!
//! | Protocol | Phases | Theorems |
//! |---|---|---|
//! | [`Protocol::DirectTransmission`] | `a→b`, `b→a` | (baseline) |
//! | [`Protocol::Mabc`] | `{a,b}→r`, `r→{a,b}` | Thm 2 (capacity) |
//! | [`Protocol::Tdbc`] | `a→·`, `b→·`, `r→{a,b}` | Thm 3 (inner), 4 (outer) |
//! | [`Protocol::Hbc`] | `a→·`, `b→·`, `{a,b}→r`, `r→{a,b}` | Thm 5 (inner), 6 (outer) |
//!
//! In the Gaussian case (Section IV) each mutual-information term becomes
//! `C(P·G) = log2(1 + P·G)`, every bound is **linear in the rates and phase
//! durations jointly**, and regions/optimal schedules are computed exactly
//! by linear programming ([`bcc_lp`]).
//!
//! The batch entry point is the [`scenario`] module: describe a grid of
//! operating points with the builder-style [`scenario::Scenario`], compile
//! it into an [`scenario::Evaluator`], and get typed sweep / comparison /
//! region / outage results back — all figures, benches and tests run
//! through that one code path.
//!
//! # Example: reproduce a Fig. 4 point
//!
//! ```
//! use bcc_core::prelude::*;
//!
//! let net = GaussianNetwork::from_db(Db::new(10.0), Db::new(-7.0), Db::new(0.0), Db::new(5.0));
//! let cmp = Scenario::at(net).build().compare().unwrap();
//! let hbc = cmp.get(Protocol::Hbc).unwrap();
//! // HBC subsumes both two- and three-phase protocols:
//! assert!(hbc.sum_rate >= cmp.get(Protocol::Mabc).unwrap().sum_rate - 1e-9);
//! assert!(hbc.sum_rate >= cmp.get(Protocol::Tdbc).unwrap().sum_rate - 1e-9);
//! ```

// The default build carries no unsafe code at all; the opt-in `simd`
// feature needs `unsafe` solely for the runtime-detected
// `#[target_feature(enable = "avx2")]` wrappers in `batch::simd`.
#![cfg_attr(not(feature = "simd"), forbid(unsafe_code))]
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod bounds;
pub mod city;
pub mod comparison;
pub mod constraint;
pub mod deep;
pub mod discrete;
pub mod dmt;
pub mod error;
pub mod gaussian;
pub mod kernel;
pub mod multipair;
pub mod optimizer;
pub mod protocol;
pub mod region;
pub mod scenario;
pub mod selection;
pub mod tails;

pub use batch::PointBlock;
pub use city::{AssignmentKind, CityEvaluator, CityResult, CityScenario};
pub use constraint::{ConstraintBuf, ConstraintSet, PhaseVec, RateConstraint};
pub use deep::{DeepCell, DeepOutageResult, DeepSpec, TailSource, TiltSelect};
pub use dmt::{Allocation, AllocationResult, DmtResult};
pub use error::CoreError;
pub use gaussian::GaussianNetwork;
pub use kernel::{Objective, SolveCtx, SolveOutcome, SolveRequest};
pub use multipair::{
    MultiPairEvaluator, MultiPairOutage, MultiPairResult, MultiPairScenario, PairSet, PairSolution,
    Schedule,
};
pub use protocol::{Bound, Protocol, ProtocolMap};
pub use region::{RatePoint, RateRegion};
pub use scenario::{Evaluator, Scenario};
pub use tails::{analytic_outage, AnalyticTail, TailForm};

/// One-stop imports for the batch evaluation API.
pub mod prelude {
    pub use crate::batch::PointBlock;
    pub use crate::city::{AssignmentKind, CityEvaluator, CityResult, CityScenario};
    pub use crate::constraint::{ConstraintBuf, ConstraintSet, PhaseVec, RateConstraint};
    pub use crate::deep::{DeepCell, DeepOutageResult, DeepSpec, TailSource, TiltSelect};
    pub use crate::dmt::{Allocation, AllocationResult, DmtResult};
    pub use crate::error::CoreError;
    pub use crate::gaussian::{GaussianNetwork, SumRateSolution};
    pub use crate::kernel::{Objective, SolveCtx, SolveOutcome, SolveRequest};
    pub use crate::multipair::{
        MultiPairEvaluator, MultiPairOutage, MultiPairResult, MultiPairScenario, PairSet,
        PairSolution, Schedule, SCHEDULES,
    };
    pub use crate::protocol::{Bound, Protocol, ProtocolMap};
    pub use crate::region::{RatePoint, RateRegion};
    pub use crate::scenario::{
        ComparisonResult, Evaluator, FadingSpec, GridPoint, OutageResult, ProtocolSeries,
        RegionResult, RegionTrace, Scenario, SkippedSolve, SweepResult,
    };
    pub use crate::tails::{analytic_outage, AnalyticTail, TailForm};
    pub use bcc_channel::fading::{FadingModel, PowerTilt};
    pub use bcc_channel::{ChannelError, ChannelState, PowerSplit, Topology};
    pub use bcc_num::Db;
}
