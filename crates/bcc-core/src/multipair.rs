//! Multi-pair bi-directional relay networks: `K` terminal pairs sharing
//! one half-duplex relay.
//!
//! The paper's bounds cover a single pair `(a, b)` exchanging messages
//! through one relay. Following Kim, Smida & Devroye, *Achievable rate
//! regions and outer bounds for a multi-pair bi-directional relay
//! network* (arXiv:1002.0123), the natural `K`-pair generalisation keeps
//! the relay half-duplex and the phases contiguous, so the pairs are
//! served **orthogonally in time**: the relay runs pair `k`'s protocol
//! phases for a fraction `θ_k` of the block, `Σ_k θ_k = 1`. Each pair
//! carries its own gains and per-node
//! [`PowerSplit`](bcc_channel::PowerSplit) (a [`PairSet`] is a list of
//! [`GaussianNetwork`]s), and because the per-phase power
//! constraints are per-transmission, the pairs do not interact except
//! through the shared time budget.
//!
//! # The decoupling theorem (why the closed forms are exact)
//!
//! The joint `K`-pair schedule LP has variables
//! `(R_a^k, R_b^k, Δ_{k,1}..Δ_{k,L_k})_k` with each pair's Theorem-2/3/5
//! rows and the shared budget `Σ_{k,ℓ} Δ_{k,ℓ} = 1`. Every row is
//! jointly homogeneous of degree one in its pair's own variables, so for
//! a *fixed* time budget `θ_k = Σ_ℓ Δ_{k,ℓ}` the inner optimum of pair
//! `k` is `θ_k` times its per-unit-time optimum — the single-pair solve
//! this workspace already performs through [`SolveCtx`]. The outer
//! problem over `(θ_1..θ_K)` on the simplex is then one-dimensional per
//! pair and solvable in closed form:
//!
//! * **sum rate, joint**: maximise `Σ_k θ_k·S_k` — a linear function,
//!   optimal at a vertex: *all time to the best pair*, value
//!   `max_k S_k`;
//! * **sum rate, time-shared** (equal shares `θ_k = 1/K`): value
//!   `(1/K)·Σ_k S_k`;
//! * **fair (max–min per-user) rate, joint**: maximise `t` subject to
//!   `θ_k·m_k ≥ t`, where `m_k` is pair `k`'s per-unit-time max–min
//!   rate; all constraints bind at the optimum, giving the harmonic form
//!   `t* = 1 / Σ_k (1/m_k)` with shares `θ_k = t*/m_k`;
//! * **fair rate, time-shared**: `min_k m_k / K`.
//!
//! Joint scheduling therefore dominates time-sharing in both metrics for
//! every `K` (the equal-share point is feasible for the joint problem) —
//! a property pinned by `bcc-core/tests/dominance.rs`, which also checks
//! the closed forms against an explicitly assembled joint LP.
//!
//! The per-pair solves run through the same [`SolveCtx`] batch context
//! as the single-pair evaluator — closed-form kernel for the two-phase
//! protocols (and TDBC sum rates), warm-started flat-tableau simplex on
//! the [`ConstraintBuf`](crate::constraint::ConstraintBuf) arena
//! otherwise — so a `K`-pair grid point performs **no heap allocation**
//! in the solver after warm-up, and `K = 1` reduces *bitwise* to the
//! single-pair [`Evaluator`](crate::scenario::Evaluator) path (the
//! anchor of `bcc/tests/multipair_reduction.rs`).
//!
//! # Example
//!
//! ```
//! use bcc_core::prelude::*;
//!
//! // Two pairs share the relay: one relay-advantaged, one nearly direct.
//! let pairs = PairSet::new(vec![
//!     GaussianNetwork::from_db(Db::new(10.0), Db::new(-7.0), Db::new(0.0), Db::new(5.0)),
//!     GaussianNetwork::from_db(Db::new(10.0), Db::new(0.0), Db::new(-10.0), Db::new(-10.0)),
//! ]);
//! let result = Scenario::pairs("network", [(0.0, pairs)])
//!     .build()
//!     .sweep()
//!     .unwrap();
//! let joint = result.sum_rate(Protocol::Hbc, 0, Schedule::Joint);
//! let shared = result.sum_rate(Protocol::Hbc, 0, Schedule::TimeShare);
//! assert!(joint >= shared - 1e-12, "joint scheduling dominates");
//! ```

use crate::error::CoreError;
use crate::gaussian::{GaussianNetwork, SumRateSolution};
use crate::kernel::{SolveCtx, SolveOutcome, SolveRequest};
use crate::optimizer::SchedulePoint;
use crate::protocol::{Bound, Protocol, ProtocolMap};
use crate::scenario::{mix_seed, trial_stream, FadingSpec, Scenario};
use bcc_channel::fading::FadingModel;
use bcc_num::{par, Db};

/// `K` terminal pairs sharing one half-duplex relay: each pair carries
/// its own gains and per-node powers as a full [`GaussianNetwork`]
/// (pair `k`'s `p_r` is the relay's transmit power while serving that
/// pair — per-phase power constraints keep the pairs decoupled).
#[derive(Debug, Clone, PartialEq)]
pub struct PairSet {
    pairs: Vec<GaussianNetwork>,
}

impl PairSet {
    /// Creates a pair set.
    ///
    /// # Panics
    ///
    /// Panics if `pairs` is empty.
    pub fn new(pairs: Vec<GaussianNetwork>) -> Self {
        assert!(!pairs.is_empty(), "a pair set needs at least one pair");
        PairSet { pairs }
    }

    /// `k` identical copies of `net` — the symmetric-load workload.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn replicated(k: usize, net: GaussianNetwork) -> Self {
        PairSet::new(vec![net; k])
    }

    /// Number of pairs `K`.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// `false` always (an empty set cannot be constructed); provided for
    /// clippy-idiomatic `len`/`is_empty` pairing.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// The pairs, in index order.
    pub fn pairs(&self) -> &[GaussianNetwork] {
        &self.pairs
    }

    /// Pair `k`'s network.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn get(&self, k: usize) -> &GaussianNetwork {
        &self.pairs[k]
    }

    /// Iterates the pairs in index order.
    pub fn iter(&self) -> std::slice::Iter<'_, GaussianNetwork> {
        self.pairs.iter()
    }

    /// Same gains per pair, every node at the common linear power `p` —
    /// the SNR-sweep constructor.
    pub fn with_power(&self, p: f64) -> Self {
        PairSet {
            pairs: self.pairs.iter().map(|n| n.with_power(p)).collect(),
        }
    }

    /// [`PairSet::with_power`] in dB.
    pub fn with_power_db(&self, p: Db) -> Self {
        self.with_power(p.to_linear())
    }
}

impl<'a> IntoIterator for &'a PairSet {
    type Item = &'a GaussianNetwork;
    type IntoIter = std::slice::Iter<'a, GaussianNetwork>;
    fn into_iter(self) -> Self::IntoIter {
        self.pairs.iter()
    }
}

/// How the relay divides the block among the `K` pairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Schedule {
    /// Equal time shares `θ_k = 1/K` — the TDMA baseline.
    TimeShare,
    /// Time shares optimised jointly with every pair's internal phase
    /// durations (one LP over all pairs; solved in closed form via the
    /// decoupling theorem — see the module docs).
    Joint,
}

impl Schedule {
    /// Aggregates per-pair sum rates `S_k` into this schedule's network
    /// sum rate: the equal-share mean for [`Schedule::TimeShare`], the
    /// best pair's rate for [`Schedule::Joint`] (the decoupling theorem
    /// of the module docs). Shared by the evaluator and the `bcc-sim`
    /// Monte-Carlo twin so the two paths aggregate bit-identically.
    ///
    /// # Panics
    ///
    /// Panics if `per_pair` is empty.
    pub fn aggregate_sum_rates(self, per_pair: &[f64]) -> f64 {
        assert!(!per_pair.is_empty(), "need at least one pair rate");
        aggregate_sum(per_pair.iter().copied(), per_pair.len(), self)
    }

    /// Aggregates per-pair max–min rates `m_k` into this schedule's
    /// common per-user (fair) rate.
    ///
    /// # Panics
    ///
    /// Panics if `per_pair` is empty.
    pub fn aggregate_fair_rates(self, per_pair: &[f64]) -> f64 {
        assert!(!per_pair.is_empty(), "need at least one pair rate");
        aggregate_fair(per_pair.iter().copied(), per_pair.len(), self)
    }
}

impl std::fmt::Display for Schedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Schedule::TimeShare => write!(f, "time-share"),
            Schedule::Joint => write!(f, "joint"),
        }
    }
}

/// Both scheduling modes, in presentation order.
pub const SCHEDULES: [Schedule; 2] = [Schedule::TimeShare, Schedule::Joint];

/// One pair's per-unit-time optima under one protocol bound — the
/// building block every multi-pair aggregate is assembled from.
#[derive(Debug, Clone, PartialEq)]
pub struct PairSolution {
    /// The pair's sum-rate optimum (`S_k` of the module docs). For
    /// `K = 1` this is bitwise the single-pair evaluator's solution.
    pub sum: SumRateSolution,
    /// The pair's equal-rate (max–min) optimum; `fair.objective` is
    /// `m_k`, the largest rate both users can sustain simultaneously.
    pub fair: SchedulePoint,
}

/// Multi-pair batch description: a grid of [`PairSet`]s (all with the
/// same `K`), a protocol set, a bound side and an optional fading study —
/// the `K`-pair sibling of [`Scenario`], built with
/// [`Scenario::pairs`] and compiled by [`MultiPairScenario::build`].
#[derive(Debug, Clone, PartialEq)]
pub struct MultiPairScenario {
    x_name: String,
    points: Vec<(f64, PairSet)>,
    k: usize,
    protocols: Vec<Protocol>,
    bound: Bound,
    fading: Option<FadingSpec>,
    threads: Option<usize>,
}

impl MultiPairScenario {
    /// An arbitrary `(x, pair set)` grid under a caller-chosen axis label.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty or the pair counts disagree across
    /// grid points.
    pub fn networks(
        x_name: impl Into<String>,
        points: impl IntoIterator<Item = (f64, PairSet)>,
    ) -> Self {
        let points: Vec<(f64, PairSet)> = points.into_iter().collect();
        assert!(
            !points.is_empty(),
            "a multi-pair scenario needs at least one grid point"
        );
        let k = points[0].1.len();
        for (x, ps) in &points {
            assert_eq!(
                ps.len(),
                k,
                "pair count must be constant across the grid (x = {x})"
            );
        }
        MultiPairScenario {
            x_name: x_name.into(),
            points,
            k,
            protocols: Protocol::ALL.to_vec(),
            bound: Bound::Inner,
            fading: None,
            threads: None,
        }
    }

    /// Sweeps the common per-node transmit power (dB) at `base`'s gains —
    /// the SNR axis of the multi-pair study.
    ///
    /// # Panics
    ///
    /// Panics if `powers_db` is empty.
    pub fn power_sweep_db(base: &PairSet, powers_db: impl IntoIterator<Item = f64>) -> Self {
        MultiPairScenario::networks(
            "power [dB]",
            powers_db
                .into_iter()
                .map(|p| (p, base.with_power_db(Db::new(p)))),
        )
    }

    /// Restricts the evaluation to `protocols` (default: all four).
    ///
    /// # Panics
    ///
    /// Panics if `protocols` is empty or contains duplicates.
    pub fn protocols(mut self, protocols: impl IntoIterator<Item = Protocol>) -> Self {
        let protocols: Vec<Protocol> = protocols.into_iter().collect();
        assert!(!protocols.is_empty(), "need at least one protocol");
        let mut seen = ProtocolMap::new();
        for &p in &protocols {
            assert!(seen.insert(p, ()).is_none(), "duplicate protocol {p}");
        }
        self.protocols = protocols;
        self
    }

    /// Selects which side of each bound to evaluate (default:
    /// [`Bound::Inner`]).
    pub fn bound(mut self, bound: Bound) -> Self {
        self.bound = bound;
        self
    }

    /// Attaches a quasi-static fading study (enables
    /// [`MultiPairEvaluator::outage`]): `trials` independent fades per
    /// link *per pair* per grid point, every pair drawing from its own
    /// decorrelated seed stream.
    ///
    /// # Panics
    ///
    /// Panics if `trials == 0`.
    pub fn fading(mut self, model: FadingModel, trials: usize, seed: u64) -> Self {
        assert!(trials > 0, "need at least one fading trial");
        self.fading = Some(FadingSpec {
            model,
            trials,
            seed,
        });
        self
    }

    /// Shorthand for Rayleigh fading (the paper's model).
    pub fn rayleigh(self, trials: usize, seed: u64) -> Self {
        self.fading(FadingModel::Rayleigh, trials, seed)
    }

    /// Pins the evaluator's worker count (default: `BCC_THREADS`, then
    /// the machine's available parallelism). Results are bit-identical at
    /// every worker count.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "need at least one worker thread");
        self.threads = Some(threads);
        self
    }

    /// Compiles the scenario into a reusable [`MultiPairEvaluator`].
    pub fn build(self) -> MultiPairEvaluator {
        MultiPairEvaluator { scenario: self }
    }
}

impl Scenario {
    /// A multi-pair batch over `(x, pair set)` grid points — the entry
    /// point of the `K`-pair workload (see the [`multipair`](crate::multipair)
    /// module docs). For `K = 1` every result reduces bitwise to this
    /// scenario's single-pair equivalent.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty or the pair counts disagree across
    /// grid points.
    pub fn pairs(
        x_name: impl Into<String>,
        points: impl IntoIterator<Item = (f64, PairSet)>,
    ) -> MultiPairScenario {
        MultiPairScenario::networks(x_name, points)
    }
}

/// The compiled form of a [`MultiPairScenario`]: fans the flattened
/// `point × pair × protocol` grid across scoped worker threads, one
/// [`SolveCtx`] per worker.
#[derive(Debug)]
pub struct MultiPairEvaluator {
    scenario: MultiPairScenario,
}

impl MultiPairEvaluator {
    /// The grid being evaluated.
    pub fn points(&self) -> &[(f64, PairSet)] {
        &self.scenario.points
    }

    /// Number of pairs `K` (constant across the grid).
    pub fn num_pairs(&self) -> usize {
        self.scenario.k
    }

    /// The protocols being evaluated, in evaluation order.
    pub fn protocols(&self) -> &[Protocol] {
        &self.scenario.protocols
    }

    /// The effective worker count (override, else the global policy).
    pub fn thread_count(&self) -> usize {
        self.scenario
            .threads
            .unwrap_or_else(bcc_num::par::thread_count)
    }

    /// Runs the batched multi-pair evaluation: per grid point, pair and
    /// protocol, the pair's per-unit-time sum-rate and max–min optima,
    /// fanned across the worker pool as one flat
    /// `point × pair × protocol` job grid (a single-point `K`-pair
    /// comparison still parallelises). Aggregates for either
    /// [`Schedule`] are closed-form views over these solves.
    ///
    /// # Errors
    ///
    /// Propagates LP failures. Unlike the single-pair sweep there is no
    /// infeasibility skip machinery: multi-pair scenarios carry no QoS
    /// floors, and well-posed Gaussian inputs are always feasible.
    pub fn sweep(&mut self) -> Result<MultiPairResult, CoreError> {
        let threads = self.thread_count();
        let sc = &self.scenario;
        let (k, nproto) = (sc.k, sc.protocols.len());
        let flat: Vec<PairSolution> = if sc.bound == Bound::Inner {
            // Inner-bound sweeps run the flattened `point × pair` net list
            // through the SoA lane kernels in [`PointBlock`]-sized jobs;
            // `solve_block` covers HBC's max–min (no closed form) from the
            // same capacity lanes via the warm simplex. Bit-identical to
            // the scalar path at any block size or thread count.
            let nets = sc.points.len() * k;
            let bsz = crate::batch::DEFAULT_BLOCK;
            let nblocks = nets.div_ceil(bsz);
            let worker = || {
                (
                    SolveCtx::new(),
                    crate::batch::PointBlock::new(),
                    vec![Vec::<SolveOutcome>::new(); nproto],
                    vec![Vec::<SolveOutcome>::new(); nproto],
                )
            };
            let blocks: Vec<Vec<PairSolution>> =
                par::try_par_map_range(threads, nblocks, worker, |(ctx, block, sums, mms), j| {
                    let lo = j * bsz;
                    let hi = (lo + bsz).min(nets);
                    block.clear();
                    for idx in lo..hi {
                        block.push_net(sc.points[idx / k].1.get(idx % k));
                    }
                    block.compute_caps();
                    for (pi, &p) in sc.protocols.iter().enumerate() {
                        sums[pi].clear();
                        mms[pi].clear();
                        ctx.solve_block(block, SolveRequest::sum_rate(p), &mut sums[pi])?;
                        ctx.solve_block(block, SolveRequest::max_min(p), &mut mms[pi])?;
                    }
                    // Interleave back to (point, pair, protocol)-major.
                    let mut out = Vec::with_capacity((hi - lo) * nproto);
                    for i in 0..hi - lo {
                        for pi in 0..nproto {
                            out.push(PairSolution {
                                sum: sums[pi][i].sum_rate_solution(),
                                fair: mms[pi][i].schedule_point(),
                            });
                        }
                    }
                    Ok(out)
                })?;
            blocks.into_iter().flatten().collect()
        } else {
            let jobs = sc.points.len() * k * nproto;
            par::try_par_map_range(threads, jobs, SolveCtx::new, |ctx, j| {
                let point = j / (k * nproto);
                let pair = (j / nproto) % k;
                let protocol = sc.protocols[j % nproto];
                let net = sc.points[point].1.get(pair);
                let sum = ctx
                    .solve_one(net, SolveRequest::sum_rate(protocol).with_bound(sc.bound))?
                    .sum_rate_solution();
                let fair = ctx
                    .solve_one(net, SolveRequest::max_min(protocol).with_bound(sc.bound))?
                    .schedule_point();
                Ok(PairSolution { sum, fair })
            })?
        };

        // Reassemble protocol-major: solutions[protocol][point * K + pair].
        let mut solutions: ProtocolMap<Vec<PairSolution>> = ProtocolMap::new();
        for &p in &sc.protocols {
            solutions.insert(p, Vec::with_capacity(sc.points.len() * k));
        }
        for (j, sol) in flat.into_iter().enumerate() {
            let protocol = sc.protocols[j % nproto];
            solutions
                .get_mut(protocol)
                .expect("pre-populated")
                .push(sol);
        }
        Ok(MultiPairResult {
            x_name: sc.x_name.clone(),
            xs: sc.points.iter().map(|p| p.0).collect(),
            k,
            protocols: sc.protocols.clone(),
            solutions,
        })
    }

    /// Runs the scenario's multi-pair fading study: per grid point and
    /// trial, one i.i.d. fade per link **per pair** (each pair drawing
    /// from its own decorrelated stream of the master seed, all
    /// protocols sharing a trial's fades), then every pair's optimal sum
    /// rate under each protocol on the faded networks. Fanned across the
    /// worker pool as a flat `point × trial` grid; bit-identical at any
    /// worker count, and for `K = 1` bitwise equal to
    /// [`Evaluator::outage`](crate::scenario::Evaluator::outage).
    ///
    /// LP failures on a faded draw count as rate 0, matching the
    /// Monte-Carlo convention of `bcc-sim`.
    ///
    /// # Errors
    ///
    /// Currently infallible (failures become rate 0); the `Result` keeps
    /// the signature parallel to [`MultiPairEvaluator::sweep`].
    ///
    /// # Panics
    ///
    /// Panics if the scenario has no fading spec (see
    /// [`MultiPairScenario::fading`]).
    pub fn outage(&mut self) -> Result<MultiPairOutage, CoreError> {
        let spec = self
            .scenario
            .fading
            .expect("scenario has no fading model; attach one with MultiPairScenario::fading(...)");
        let threads = self.thread_count();
        let sc = &self.scenario;
        let (k, nproto) = (sc.k, sc.protocols.len());
        let trials = spec.trials;
        // One seed stream per (point, pair) super-index, matching the
        // single-pair evaluator's convention exactly when K = 1: a lone
        // stream uses the master seed itself (the classic `McConfig`
        // stream), additional streams decorrelate through `mix_seed`.
        let single = sc.points.len() * k == 1;

        // Fan the flattened `point × trial × pair` fade space across the
        // workers in [`PointBlock`]-sized chunks; every faded draw is
        // solved through the closed-form lane kernels (fading always
        // studies the inner optimum). Per-(point, pair, trial) seed
        // streams make each flat index independent of its blockmates, so
        // the blocked fan-out is bit-identical to the serial loop at any
        // block size or thread count.
        let total = sc.points.len() * trials * k;
        let bsz = crate::batch::DEFAULT_BLOCK;
        let nblocks = total.div_ceil(bsz);
        let worker = || {
            (
                SolveCtx::new(),
                crate::batch::PointBlock::new(),
                vec![Vec::<SolveOutcome>::new(); nproto],
            )
        };
        let blocks: Vec<Vec<f64>> =
            par::par_map_range(threads, nblocks, worker, |(ctx, block, outs), b| {
                let lo = b * bsz;
                let hi = (lo + bsz).min(total);
                block.clear();
                for m in lo..hi {
                    let (point, trial, pair) = (m / (trials * k), (m / k) % trials, m % k);
                    let net = sc.points[point].1.get(pair);
                    let stream_seed = if single {
                        spec.seed
                    } else {
                        mix_seed(spec.seed, (point * k + pair) as u64)
                    };
                    let mut rng = trial_stream(stream_seed, trial as u64);
                    let faded = net.with_state(net.state().faded(
                        spec.model.sample_power(&mut rng),
                        spec.model.sample_power(&mut rng),
                        spec.model.sample_power(&mut rng),
                    ));
                    block.push_net(&faded);
                }
                block.compute_caps();
                for (pi, &p) in sc.protocols.iter().enumerate() {
                    outs[pi].clear();
                    ctx.solve_block(block, SolveRequest::sum_rate(p), &mut outs[pi])
                        .expect("closed-form batch solve is infallible");
                }
                let mut rates = Vec::with_capacity((hi - lo) * nproto);
                for i in 0..hi - lo {
                    for lane in outs.iter() {
                        rates.push(lane[i].value);
                    }
                }
                rates
            });

        let mut samples: ProtocolMap<Vec<Vec<f64>>> = ProtocolMap::new();
        for &p in &sc.protocols {
            samples.insert(p, vec![Vec::with_capacity(trials); sc.points.len() * k]);
        }
        for (m, chunk) in blocks
            .iter()
            .flat_map(|block| block.chunks(nproto))
            .enumerate()
        {
            let (point, pair) = (m / (trials * k), m % k);
            for (&p, &rate) in sc.protocols.iter().zip(chunk) {
                samples.get_mut(p).expect("pre-populated")[point * k + pair].push(rate);
            }
        }
        Ok(MultiPairOutage {
            x_name: sc.x_name.clone(),
            xs: sc.points.iter().map(|p| p.0).collect(),
            k,
            spec,
            protocols: sc.protocols.clone(),
            samples,
        })
    }
}

/// Aggregates per-pair sum rates `S_k` into the schedule's network sum
/// rate (see the module-docs decoupling theorem).
fn aggregate_sum(sum_rates: impl Iterator<Item = f64> + Clone, k: usize, s: Schedule) -> f64 {
    match s {
        Schedule::TimeShare => sum_rates.sum::<f64>() / k as f64,
        Schedule::Joint => sum_rates.fold(f64::NEG_INFINITY, f64::max),
    }
}

/// Aggregates per-pair max–min rates `m_k` into the schedule's common
/// per-user (fair) rate. A pair with `m_k = 0` forces 0 — no positive
/// rate can be guaranteed to everyone.
fn aggregate_fair(min_rates: impl Iterator<Item = f64> + Clone, k: usize, s: Schedule) -> f64 {
    match s {
        Schedule::TimeShare => min_rates.fold(f64::INFINITY, f64::min) / k as f64,
        Schedule::Joint => {
            if k == 1 {
                // The harmonic form 1/(1/m) can drift by an ulp; K = 1
                // must reduce to the pair's own max–min rate exactly.
                return min_rates.clone().next().expect("K >= 1");
            }
            if min_rates.clone().any(|m| m <= 0.0) {
                return 0.0;
            }
            1.0 / min_rates.map(|m| 1.0 / m).sum::<f64>()
        }
    }
}

/// The output of [`MultiPairEvaluator::sweep`]: every pair's
/// per-unit-time optima at every grid point, keyed by pair index and
/// [`Protocol`], with closed-form schedule aggregates.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiPairResult {
    /// Human-readable name of the swept parameter.
    pub x_name: String,
    /// The grid coordinates, in sweep order.
    pub xs: Vec<f64>,
    k: usize,
    protocols: Vec<Protocol>,
    /// `solutions[protocol][point * K + pair]`.
    solutions: ProtocolMap<Vec<PairSolution>>,
}

impl MultiPairResult {
    /// Number of grid points.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// `true` if the grid is empty (never produced by an evaluator).
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Number of pairs `K`.
    pub fn num_pairs(&self) -> usize {
        self.k
    }

    /// The protocols evaluated, in evaluation order.
    pub fn protocols(&self) -> &[Protocol] {
        &self.protocols
    }

    /// Pair `pair`'s solution under `protocol` at grid point `point`.
    ///
    /// # Panics
    ///
    /// Panics if `protocol` was not evaluated or an index is out of
    /// range.
    pub fn solution(&self, protocol: Protocol, point: usize, pair: usize) -> &PairSolution {
        assert!(
            pair < self.k,
            "pair index {pair} out of range (K = {})",
            self.k
        );
        let sols = self
            .solutions
            .get(protocol)
            .unwrap_or_else(|| panic!("{protocol} was not part of the scenario"));
        &sols[point * self.k + pair]
    }

    /// The network sum rate of `protocol` at grid point `point` under
    /// `schedule` (closed-form aggregate — see the module docs).
    pub fn sum_rate(&self, protocol: Protocol, point: usize, schedule: Schedule) -> f64 {
        aggregate_sum(
            (0..self.k).map(|p| self.solution(protocol, point, p).sum.sum_rate),
            self.k,
            schedule,
        )
    }

    /// The fair (max–min per-user) rate of `protocol` at grid point
    /// `point` under `schedule`: the largest rate every user of every
    /// pair can be guaranteed simultaneously.
    pub fn fair_rate(&self, protocol: Protocol, point: usize, schedule: Schedule) -> f64 {
        aggregate_fair(
            (0..self.k).map(|p| self.solution(protocol, point, p).fair.objective),
            self.k,
            schedule,
        )
    }

    /// The jointly optimal fair-schedule time shares `θ_k = t*/m_k` at
    /// `(protocol, point)`; uniform shares when no positive common rate
    /// exists (some `m_k = 0`).
    pub fn joint_fair_shares(&self, protocol: Protocol, point: usize) -> Vec<f64> {
        let t = self.fair_rate(protocol, point, Schedule::Joint);
        if t <= 0.0 {
            return vec![1.0 / self.k as f64; self.k];
        }
        (0..self.k)
            .map(|p| t / self.solution(protocol, point, p).fair.objective)
            .collect()
    }

    /// The schedule's sum-rate series of `protocol` as `(x, rate)` pairs
    /// — the shape the plotting crate consumes.
    pub fn sum_rate_series(&self, protocol: Protocol, schedule: Schedule) -> Vec<(f64, f64)> {
        self.xs
            .iter()
            .enumerate()
            .map(|(i, &x)| (x, self.sum_rate(protocol, i, schedule)))
            .collect()
    }

    /// The schedule's fair-rate series of `protocol` as `(x, rate)`
    /// pairs.
    pub fn fair_rate_series(&self, protocol: Protocol, schedule: Schedule) -> Vec<(f64, f64)> {
        self.xs
            .iter()
            .enumerate()
            .map(|(i, &x)| (x, self.fair_rate(protocol, i, schedule)))
            .collect()
    }
}

/// The output of [`MultiPairEvaluator::outage`]: per-protocol,
/// per-(grid point, pair) Monte-Carlo sum-rate samples under
/// quasi-static fading, with per-trial schedule aggregates.
///
/// Fair-rate (max–min) statistics are a deterministic-sweep quantity
/// ([`MultiPairResult::fair_rate`]); the fading study tracks the
/// sum-rate metrics, mirroring the single-pair
/// [`OutageResult`](crate::scenario::OutageResult).
#[derive(Debug, Clone, PartialEq)]
pub struct MultiPairOutage {
    /// Human-readable name of the swept parameter.
    pub x_name: String,
    /// The grid coordinates.
    pub xs: Vec<f64>,
    k: usize,
    /// The fading specification the samples were drawn under.
    pub spec: FadingSpec,
    protocols: Vec<Protocol>,
    /// `samples[protocol][point * K + pair][trial]`.
    samples: ProtocolMap<Vec<Vec<f64>>>,
}

impl MultiPairOutage {
    /// Number of pairs `K`.
    pub fn num_pairs(&self) -> usize {
        self.k
    }

    /// The protocols evaluated, in evaluation order.
    pub fn protocols(&self) -> &[Protocol] {
        &self.protocols
    }

    /// The raw per-trial sum rates of `(protocol, pair)` at grid point
    /// `point`.
    ///
    /// # Panics
    ///
    /// Panics if `protocol` was not evaluated or an index is out of
    /// range.
    pub fn samples(&self, protocol: Protocol, point: usize, pair: usize) -> &[f64] {
        assert!(
            pair < self.k,
            "pair index {pair} out of range (K = {})",
            self.k
        );
        &self
            .samples
            .get(protocol)
            .unwrap_or_else(|| panic!("{protocol} was not part of the scenario"))
            [point * self.k + pair]
    }

    /// Per-trial network sum rates of `protocol` at grid point `point`
    /// under `schedule`: per trial, the equal-share mean
    /// (`TimeShare`) or the best pair's rate (`Joint` — full CSI lets
    /// the scheduler follow the momentarily strongest pair).
    pub fn schedule_samples(
        &self,
        protocol: Protocol,
        point: usize,
        schedule: Schedule,
    ) -> Vec<f64> {
        let trials = self.samples(protocol, point, 0).len();
        (0..trials)
            .map(|t| {
                aggregate_sum(
                    (0..self.k).map(|p| self.samples(protocol, point, p)[t]),
                    self.k,
                    schedule,
                )
            })
            .collect()
    }

    /// `P[schedule sum rate < target]` for `protocol` at grid point
    /// `point`.
    ///
    /// `None` means **unresolved**: no trial fell below a positive
    /// target, so the estimate sits under the `1/trials` resolution
    /// floor. A non-positive target resolves to `Some(0.0)` exactly.
    pub fn outage_probability(
        &self,
        protocol: Protocol,
        point: usize,
        schedule: Schedule,
        target: f64,
    ) -> Option<f64> {
        if target <= 0.0 {
            return Some(0.0);
        }
        let s = self.schedule_samples(protocol, point, schedule);
        let hits = s.iter().filter(|&&v| v < target).count();
        if hits == 0 {
            None
        } else {
            Some(hits as f64 / s.len() as f64)
        }
    }

    /// Ergodic (fading-averaged) schedule sum rate of `protocol` at grid
    /// point `point`.
    pub fn ergodic(&self, protocol: Protocol, point: usize, schedule: Schedule) -> f64 {
        let s = self.schedule_samples(protocol, point, schedule);
        s.iter().sum::<f64>() / s.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_channel::ChannelState;

    fn fig4_net(p_db: f64) -> GaussianNetwork {
        GaussianNetwork::from_db(Db::new(p_db), Db::new(-7.0), Db::new(0.0), Db::new(5.0))
    }

    fn two_pairs(p_db: f64) -> PairSet {
        PairSet::new(vec![
            fig4_net(p_db),
            GaussianNetwork::new(Db::new(p_db).to_linear(), ChannelState::new(1.0, 0.5, 0.5)),
        ])
    }

    #[test]
    fn pair_set_basics() {
        let ps = two_pairs(10.0);
        assert_eq!(ps.len(), 2);
        assert!(!ps.is_empty());
        assert_eq!(ps.get(0), &ps.pairs()[0]);
        assert_eq!(ps.iter().count(), 2);
        let boosted = ps.with_power_db(Db::new(20.0));
        assert_eq!(boosted.get(0).state(), ps.get(0).state());
        assert!((boosted.get(1).power().unwrap() - 100.0).abs() < 1e-9);
        let rep = PairSet::replicated(3, fig4_net(0.0));
        assert_eq!(rep.len(), 3);
        assert_eq!(rep.get(0), rep.get(2));
    }

    #[test]
    #[should_panic(expected = "at least one pair")]
    fn empty_pair_set_rejected() {
        let _ = PairSet::new(Vec::new());
    }

    #[test]
    #[should_panic(expected = "constant across the grid")]
    fn mixed_pair_counts_rejected() {
        let _ = Scenario::pairs(
            "x",
            [
                (0.0, PairSet::replicated(2, fig4_net(0.0))),
                (1.0, PairSet::replicated(3, fig4_net(0.0))),
            ],
        );
    }

    #[test]
    fn aggregates_match_hand_formulas() {
        let mut ev = Scenario::pairs("network", [(0.0, two_pairs(10.0))]).build();
        let r = ev.sweep().unwrap();
        assert_eq!(r.num_pairs(), 2);
        for proto in Protocol::ALL {
            let s0 = r.solution(proto, 0, 0).sum.sum_rate;
            let s1 = r.solution(proto, 0, 1).sum.sum_rate;
            assert_eq!(
                r.sum_rate(proto, 0, Schedule::TimeShare),
                (s0 + s1) / 2.0,
                "{proto}"
            );
            assert_eq!(r.sum_rate(proto, 0, Schedule::Joint), s0.max(s1), "{proto}");
            let m0 = r.solution(proto, 0, 0).fair.objective;
            let m1 = r.solution(proto, 0, 1).fair.objective;
            assert_eq!(
                r.fair_rate(proto, 0, Schedule::TimeShare),
                m0.min(m1) / 2.0,
                "{proto}"
            );
            let joint = r.fair_rate(proto, 0, Schedule::Joint);
            assert!(
                (joint - 1.0 / (1.0 / m0 + 1.0 / m1)).abs() < 1e-12,
                "{proto}"
            );
            // Shares implement the harmonic optimum and sum to one.
            let shares = r.joint_fair_shares(proto, 0);
            assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-9, "{proto}");
            assert!((shares[0] * m0 - joint).abs() < 1e-9, "{proto}");
        }
    }

    #[test]
    fn per_pair_solutions_match_single_pair_queries() {
        let ps = two_pairs(8.0);
        let mut ev = Scenario::pairs("network", [(0.0, ps.clone())]).build();
        let r = ev.sweep().unwrap();
        for (pair, net) in ps.iter().enumerate() {
            for proto in Protocol::ALL {
                let direct = net.max_sum_rate(proto).unwrap();
                assert_eq!(
                    &r.solution(proto, 0, pair).sum,
                    &direct,
                    "{proto} pair {pair}"
                );
            }
        }
    }

    #[test]
    fn joint_dominates_time_share() {
        let base = two_pairs(0.0);
        let mut ev = MultiPairScenario::power_sweep_db(&base, [-5.0, 5.0, 15.0]).build();
        let r = ev.sweep().unwrap();
        for proto in Protocol::ALL {
            for i in 0..r.len() {
                assert!(
                    r.sum_rate(proto, i, Schedule::Joint)
                        >= r.sum_rate(proto, i, Schedule::TimeShare) - 1e-12,
                    "{proto} point {i}"
                );
                assert!(
                    r.fair_rate(proto, i, Schedule::Joint)
                        >= r.fair_rate(proto, i, Schedule::TimeShare) - 1e-12,
                    "{proto} point {i}"
                );
            }
        }
    }

    #[test]
    fn replicated_pairs_make_schedules_agree_on_sum() {
        // K identical pairs: mean == max, so the schedules coincide.
        let ps = PairSet::replicated(3, fig4_net(10.0));
        let mut ev = Scenario::pairs("network", [(0.0, ps)]).build();
        let r = ev.sweep().unwrap();
        for proto in Protocol::ALL {
            let a = r.sum_rate(proto, 0, Schedule::TimeShare);
            let b = r.sum_rate(proto, 0, Schedule::Joint);
            assert!((a - b).abs() < 1e-12, "{proto}: {a} vs {b}");
        }
    }

    #[test]
    fn sweep_thread_override_bit_identical() {
        let base = two_pairs(0.0);
        let scenario = MultiPairScenario::power_sweep_db(&base, (-4..=8).map(f64::from));
        let serial = scenario.clone().threads(1).build().sweep().unwrap();
        for threads in [2, 4, 8] {
            let par = scenario.clone().threads(threads).build().sweep().unwrap();
            assert_eq!(serial, par, "sweep differs at {threads} threads");
        }
    }

    #[test]
    fn outage_thread_override_bit_identical() {
        let scenario = Scenario::pairs("network", [(0.0, two_pairs(10.0))]).rayleigh(50, 0xABCD);
        let serial = scenario.clone().threads(1).build().outage().unwrap();
        let par = scenario.threads(4).build().outage().unwrap();
        assert_eq!(serial, par);
    }

    #[test]
    fn outage_pairs_have_decorrelated_streams() {
        // Two *identical* pairs under fading must still see different
        // fades (per-pair streams), while each trial's fades are shared
        // across protocols (dominance survives into the samples).
        let ps = PairSet::replicated(2, fig4_net(10.0));
        let out = Scenario::pairs("network", [(0.0, ps)])
            .rayleigh(40, 7)
            .build()
            .outage()
            .unwrap();
        assert_ne!(
            out.samples(Protocol::Hbc, 0, 0),
            out.samples(Protocol::Hbc, 0, 1),
            "identical pairs must fade independently"
        );
        for pair in 0..2 {
            let hbc = out.samples(Protocol::Hbc, 0, pair);
            let mabc = out.samples(Protocol::Mabc, 0, pair);
            for t in 0..hbc.len() {
                assert!(hbc[t] >= mabc[t] - 1e-8, "pair {pair} trial {t}");
            }
        }
    }

    #[test]
    fn outage_schedule_samples_aggregate_per_trial() {
        let out = Scenario::pairs("network", [(0.0, two_pairs(10.0))])
            .rayleigh(25, 3)
            .build()
            .outage()
            .unwrap();
        let a = out.samples(Protocol::Mabc, 0, 0);
        let b = out.samples(Protocol::Mabc, 0, 1);
        let shared = out.schedule_samples(Protocol::Mabc, 0, Schedule::TimeShare);
        let joint = out.schedule_samples(Protocol::Mabc, 0, Schedule::Joint);
        for t in 0..a.len() {
            assert_eq!(shared[t], (a[t] + b[t]) / 2.0);
            assert_eq!(joint[t], a[t].max(b[t]));
            assert!(joint[t] >= shared[t]);
        }
        // Ergodic / outage summaries are consistent with the samples.
        let erg = out.ergodic(Protocol::Mabc, 0, Schedule::Joint);
        assert!((erg - joint.iter().sum::<f64>() / joint.len() as f64).abs() < 1e-12);
        assert_eq!(
            out.outage_probability(Protocol::Mabc, 0, Schedule::Joint, 0.0),
            Some(0.0)
        );
        assert_eq!(
            out.outage_probability(Protocol::Mabc, 0, Schedule::Joint, 1e9),
            Some(1.0)
        );
    }

    #[test]
    fn protocol_subset_only_evaluates_selection() {
        let mut ev = Scenario::pairs("network", [(0.0, two_pairs(5.0))])
            .protocols([Protocol::Mabc])
            .build();
        let r = ev.sweep().unwrap();
        assert_eq!(r.protocols(), &[Protocol::Mabc]);
        let _ = r.solution(Protocol::Mabc, 0, 0);
    }

    #[test]
    #[should_panic(expected = "not part of the scenario")]
    fn unevaluated_protocol_panics() {
        let mut ev = Scenario::pairs("network", [(0.0, two_pairs(5.0))])
            .protocols([Protocol::Mabc])
            .build();
        let r = ev.sweep().unwrap();
        let _ = r.solution(Protocol::Hbc, 0, 0);
    }

    #[test]
    fn outer_bound_dominates_inner_per_pair() {
        let sc = Scenario::pairs("network", [(0.0, two_pairs(10.0))]);
        let inner = sc.clone().build().sweep().unwrap();
        let outer = sc.bound(Bound::Outer).build().sweep().unwrap();
        for proto in Protocol::ALL {
            for pair in 0..2 {
                let i = inner.solution(proto, 0, pair).sum.sum_rate;
                let o = outer.solution(proto, 0, pair).sum.sum_rate;
                assert!(o >= i - 1e-7, "{proto} pair {pair}: outer {o} < inner {i}");
            }
        }
    }

    #[test]
    fn fair_rate_zero_when_a_pair_is_dead() {
        // A dead pair (zero power) pins the guaranteed common rate to 0
        // under both schedules, but leaves the joint sum rate at the
        // live pair's optimum.
        let ps = PairSet::new(vec![
            fig4_net(10.0),
            GaussianNetwork::new(0.0, ChannelState::new(1.0, 1.0, 1.0)),
        ]);
        let mut ev = Scenario::pairs("network", [(0.0, ps)]).build();
        let r = ev.sweep().unwrap();
        for s in SCHEDULES {
            assert_eq!(r.fair_rate(Protocol::Mabc, 0, s), 0.0, "{s}");
        }
        let live = r.solution(Protocol::Mabc, 0, 0).sum.sum_rate;
        assert_eq!(r.sum_rate(Protocol::Mabc, 0, Schedule::Joint), live);
        let shares = r.joint_fair_shares(Protocol::Mabc, 0);
        assert_eq!(
            shares,
            vec![0.5, 0.5],
            "degenerate case falls back to uniform"
        );
    }
}
