//! LP formulations over a [`ConstraintSet`]: optimal schedules and rates.
//!
//! Decision variables are `x = (R_a, R_b, Δ_1, …, Δ_L)`, all non-negative.
//! Each [`RateConstraint`](crate::constraint::RateConstraint) becomes the
//! row `ra·R_a + rb·R_b − Σ c_ℓ·Δ_ℓ ≤ 0`, and the simplex-share row
//! `Σ Δ_ℓ = 1` closes the system. Because everything is linear, the
//! optimum over *both* the rates and the time allocation is found in one
//! LP — no alternating optimisation, no duration grid.

use crate::constraint::{ConstraintSet, PhaseVec};
use crate::error::CoreError;
use bcc_lp::{Problem, Relation, Workspace};

/// An optimal operating point of one protocol bound.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedulePoint {
    /// Rate of message `w_a` (a→b), bits per channel use.
    pub ra: f64,
    /// Rate of message `w_b` (b→a), bits per channel use.
    pub rb: f64,
    /// Optimal phase durations `Δ_1..Δ_L` (sum to 1), stored inline
    /// ([`PhaseVec`]) so extracting a solution allocates nothing.
    pub durations: PhaseVec,
    /// The achieved objective (meaning depends on the query).
    pub objective: f64,
}

impl SchedulePoint {
    /// Sum rate `R_a + R_b`.
    pub fn sum_rate(&self) -> f64 {
        self.ra + self.rb
    }
}

fn base_problem(set: &ConstraintSet, objective: &[f64]) -> Problem {
    let l = set.num_phases();
    let n = 2 + l;
    assert_eq!(objective.len(), n, "objective arity mismatch");
    let mut p = Problem::maximize(objective);
    for c in set.constraints() {
        let mut row = vec![0.0; n];
        row[0] = c.ra;
        row[1] = c.rb;
        for (idx, coef) in c.phase_coefs.iter().enumerate() {
            row[2 + idx] = -coef;
        }
        p.subject_to(&row, Relation::Le, 0.0);
    }
    let mut share = vec![0.0; n];
    for v in share.iter_mut().skip(2) {
        *v = 1.0;
    }
    p.subject_to(&share, Relation::Eq, 1.0);
    p
}

fn extract(set: &ConstraintSet, sol: bcc_lp::Solution) -> SchedulePoint {
    let l = set.num_phases();
    SchedulePoint {
        ra: sol.x[0],
        rb: sol.x[1],
        durations: PhaseVec::from_slice(&sol.x[2..2 + l]),
        objective: sol.objective,
    }
}

/// Maximises `wa·R_a + wb·R_b` jointly over rates and phase durations.
///
/// # Errors
///
/// Propagates LP failures; with non-negative weights and valid constraint
/// sets this cannot be infeasible or unbounded.
///
/// # Panics
///
/// Panics if a weight is negative (the region is unbounded in negative
/// directions by `R ≥ 0`, so such queries are ill-posed).
pub fn max_weighted(set: &ConstraintSet, wa: f64, wb: f64) -> Result<SchedulePoint, CoreError> {
    max_weighted_with(set, wa, wb, &mut Workspace::new())
}

/// [`max_weighted`] reusing `ws` for the solver's scratch memory.
///
/// Batch drivers (the `Scenario` evaluator, Monte-Carlo fading loops)
/// should keep one workspace alive across calls so the simplex tableau is
/// allocated once per batch instead of once per LP.
///
/// # Errors
///
/// Same as [`max_weighted`].
///
/// # Panics
///
/// Panics if a weight is negative (see [`max_weighted`]).
pub fn max_weighted_with(
    set: &ConstraintSet,
    wa: f64,
    wb: f64,
    ws: &mut Workspace,
) -> Result<SchedulePoint, CoreError> {
    assert!(wa >= 0.0 && wb >= 0.0, "weights must be non-negative");
    let l = set.num_phases();
    let mut obj = vec![0.0; 2 + l];
    obj[0] = wa;
    obj[1] = wb;
    let p = base_problem(set, &obj);
    let sol = p
        .solve_with(ws)
        .map_err(|e| CoreError::lp(format!("{} weighted-rate", set.name), e))?;
    Ok(extract(set, sol))
}

/// Maximises the sum rate `R_a + R_b` (the paper's Fig. 3 quantity).
pub fn max_sum_rate(set: &ConstraintSet) -> Result<SchedulePoint, CoreError> {
    max_weighted(set, 1.0, 1.0)
}

/// Maximises the sum rate subject to per-user QoS floors `R_a ≥ ra_min`,
/// `R_b ≥ rb_min`.
///
/// Unlike the unconstrained queries this LP **can be infeasible** — a
/// floor above what the bound supports at any time allocation — and that
/// is a statement about the operating point, not the solver: the returned
/// [`CoreError`] satisfies [`CoreError::is_infeasible`], so batch sweeps
/// record it per grid point ([`SweepResult::skipped`]) instead of
/// aborting.
///
/// [`SweepResult::skipped`]: crate::scenario::SweepResult::skipped
///
/// # Errors
///
/// Returns an infeasibility error when the floors are unachievable;
/// propagates other LP failures.
///
/// # Panics
///
/// Panics if a floor is negative or non-finite.
pub fn max_sum_rate_with_floor(
    set: &ConstraintSet,
    ra_min: f64,
    rb_min: f64,
    ws: &mut Workspace,
) -> Result<SchedulePoint, CoreError> {
    assert!(
        ra_min.is_finite() && rb_min.is_finite() && ra_min >= 0.0 && rb_min >= 0.0,
        "rate floors must be finite and non-negative"
    );
    let l = set.num_phases();
    let n = 2 + l;
    let mut obj = vec![0.0; n];
    obj[0] = 1.0;
    obj[1] = 1.0;
    let mut p = base_problem(set, &obj);
    let mut ra_row = vec![0.0; n];
    ra_row[0] = 1.0;
    p.subject_to(&ra_row, Relation::Ge, ra_min);
    let mut rb_row = vec![0.0; n];
    rb_row[1] = 1.0;
    p.subject_to(&rb_row, Relation::Ge, rb_min);
    let sol = p
        .solve_with(ws)
        .map_err(|e| CoreError::lp(format!("{} sum-rate with QoS floor", set.name), e))?;
    Ok(extract(set, sol))
}

/// [`max_sum_rate`] reusing `ws` for the solver's scratch memory.
pub fn max_sum_rate_with(
    set: &ConstraintSet,
    ws: &mut Workspace,
) -> Result<SchedulePoint, CoreError> {
    max_weighted_with(set, 1.0, 1.0, ws)
}

/// Maximises `R_a` subject to `R_b = rb` — the boundary-tracing query.
///
/// # Errors
///
/// Returns [`CoreError::RateUnachievable`] if `rb` exceeds the region's
/// maximum `R_b` (the LP is infeasible).
pub fn max_ra_given_rb(set: &ConstraintSet, rb: f64) -> Result<SchedulePoint, CoreError> {
    assert!(rb >= 0.0, "rates are non-negative");
    let l = set.num_phases();
    let mut obj = vec![0.0; 2 + l];
    obj[0] = 1.0;
    let mut p = base_problem(set, &obj);
    let mut fix = vec![0.0; 2 + l];
    fix[1] = 1.0;
    p.subject_to(&fix, Relation::Eq, rb);
    match p.solve() {
        Ok(sol) => Ok(extract(set, sol)),
        Err(bcc_lp::LpError::Infeasible) => Err(CoreError::RateUnachievable { rate: rb }),
        Err(e) => Err(CoreError::lp(format!("{} boundary", set.name), e)),
    }
}

/// Maximises the symmetric (max–min fair) rate: the largest `t` with
/// `(R_a, R_b) = (t', t'')`, `t' ≥ t`, `t'' ≥ t` achievable.
pub fn max_min_rate(set: &ConstraintSet) -> Result<SchedulePoint, CoreError> {
    max_min_rate_with(set, &mut Workspace::new())
}

/// [`max_min_rate`] reusing `ws` for the solver's scratch memory — the
/// batch entry point of the equal-rate outage studies (the power-
/// allocation search solves one of these per fade draw).
pub fn max_min_rate_with(
    set: &ConstraintSet,
    ws: &mut Workspace,
) -> Result<SchedulePoint, CoreError> {
    // Extra variable t appended after the durations.
    let l = set.num_phases();
    let n = 2 + l + 1;
    let mut obj = vec![0.0; n];
    obj[n - 1] = 1.0;
    let mut p = Problem::maximize(&obj);
    for c in set.constraints() {
        let mut row = vec![0.0; n];
        row[0] = c.ra;
        row[1] = c.rb;
        for (idx, coef) in c.phase_coefs.iter().enumerate() {
            row[2 + idx] = -coef;
        }
        p.subject_to(&row, Relation::Le, 0.0);
    }
    let mut share = vec![0.0; n];
    for v in share.iter_mut().take(2 + l).skip(2) {
        *v = 1.0;
    }
    p.subject_to(&share, Relation::Eq, 1.0);
    // Ra - t >= 0, Rb - t >= 0.
    let mut ra_row = vec![0.0; n];
    ra_row[0] = 1.0;
    ra_row[n - 1] = -1.0;
    p.subject_to(&ra_row, Relation::Ge, 0.0);
    let mut rb_row = vec![0.0; n];
    rb_row[1] = 1.0;
    rb_row[n - 1] = -1.0;
    p.subject_to(&rb_row, Relation::Ge, 0.0);
    let sol = p
        .solve_with(ws)
        .map_err(|e| CoreError::lp(format!("{} max-min", set.name), e))?;
    Ok(SchedulePoint {
        ra: sol.x[0],
        rb: sol.x[1],
        durations: PhaseVec::from_slice(&sol.x[2..2 + l]),
        objective: sol.objective,
    })
}

/// Returns the labels of the constraints that are *tight* (within `tol`)
/// at a schedule point — the sensitivity diagnostic behind statements like
/// "the MAC sum constraint binds at low SNR".
///
/// # Panics
///
/// Panics if the point's duration arity differs from the set's.
pub fn binding_constraints<'a>(
    set: &'a ConstraintSet,
    point: &SchedulePoint,
    tol: f64,
) -> Vec<&'a str> {
    set.constraints()
        .iter()
        .filter(|c| {
            let slack = c.rhs(&point.durations) - c.lhs(point.ra, point.rb);
            slack.abs() <= tol
        })
        .map(|c| c.label.as_ref())
        .collect()
}

/// Tests whether the rate pair `(ra, rb)` is achievable for *some* phase
/// allocation — a pure feasibility LP over the durations.
pub fn is_achievable(set: &ConstraintSet, ra: f64, rb: f64) -> bool {
    if ra < 0.0 || rb < 0.0 {
        return false;
    }
    let l = set.num_phases();
    let obj = vec![0.0; l];
    let mut p = Problem::maximize(&obj);
    for c in set.constraints() {
        // Σ coef_ℓ Δ_ℓ ≥ lhs(ra, rb)
        p.subject_to(&c.phase_coefs, Relation::Ge, c.lhs(ra, rb));
    }
    p.subject_to(&vec![1.0; l], Relation::Eq, 1.0);
    p.solve().is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::{mabc, tdbc};
    use bcc_channel::ChannelState;
    use bcc_num::approx_eq;

    fn fig4_state() -> ChannelState {
        ChannelState::new(0.19952623149688797, 1.0, 3.1622776601683795)
    }

    #[test]
    fn durations_always_sum_to_one() {
        let set = tdbc::inner_constraints(10.0, &fig4_state());
        for (wa, wb) in [(1.0, 1.0), (1.0, 0.0), (0.0, 1.0), (0.3, 0.7)] {
            let pt = max_weighted(&set, wa, wb).expect("solvable");
            let total: f64 = pt.durations.iter().sum();
            assert!(approx_eq(total, 1.0, 1e-9), "durations {:?}", pt.durations);
        }
    }

    #[test]
    fn optimum_satisfies_all_constraints() {
        let set = mabc::capacity_constraints(10.0, &fig4_state());
        let pt = max_sum_rate(&set).expect("solvable");
        assert!(set.all_satisfied(pt.ra, pt.rb, &pt.durations, 1e-7));
    }

    #[test]
    fn sum_rate_equals_component_sum() {
        let set = mabc::capacity_constraints(10.0, &fig4_state());
        let pt = max_sum_rate(&set).expect("solvable");
        assert!(approx_eq(pt.objective, pt.ra + pt.rb, 1e-9));
        assert!(approx_eq(pt.objective, pt.sum_rate(), 1e-9));
    }

    #[test]
    fn one_sided_weight_finds_single_user_maximum() {
        // MABC Ra-only: maximize min(Δ1 C(P Gar), Δ2 C(P Gbr)) over Δ —
        // optimum where the two bind: Ra* = C1 C2 / (C1 + C2).
        let p = 10.0;
        let s = fig4_state();
        let set = mabc::capacity_constraints(p, &s);
        let c1 = bcc_info::awgn_capacity(p * s.gar());
        let c2 = bcc_info::awgn_capacity(p * s.gbr());
        let expected = c1 * c2 / (c1 + c2);
        let pt = max_weighted(&set, 1.0, 0.0).expect("solvable");
        assert!(approx_eq(pt.ra, expected, 1e-8), "{} vs {expected}", pt.ra);
    }

    #[test]
    fn boundary_query_matches_feasibility() {
        let set = tdbc::inner_constraints(10.0, &fig4_state());
        let rb = 0.3;
        let pt = max_ra_given_rb(&set, rb).expect("achievable rb");
        assert!(approx_eq(pt.rb, rb, 1e-9));
        assert!(is_achievable(&set, pt.ra - 1e-6, rb));
        assert!(!is_achievable(&set, pt.ra + 1e-3, rb));
    }

    #[test]
    fn excessive_rb_is_unachievable() {
        let set = tdbc::inner_constraints(1.0, &fig4_state());
        let err = max_ra_given_rb(&set, 100.0).unwrap_err();
        assert!(matches!(err, CoreError::RateUnachievable { .. }));
        assert!(!is_achievable(&set, 0.0, 100.0));
    }

    #[test]
    fn feasible_floor_binds_or_is_slack() {
        let set = mabc::capacity_constraints(10.0, &fig4_state());
        let free = max_sum_rate(&set).expect("solvable");
        let mut ws = Workspace::new();
        // A floor below the free optimum's components changes nothing.
        let gentle = max_sum_rate_with_floor(&set, 0.1, 0.1, &mut ws).expect("feasible");
        assert!(approx_eq(gentle.objective, free.objective, 1e-8));
        // A floor between the free optimum's Ra and the achievable maximum
        // forces Ra up without costing feasibility.
        let ra_max = max_weighted(&set, 1.0, 0.0).expect("solvable").ra;
        let push = 0.5 * (free.ra + ra_max);
        let forced = max_sum_rate_with_floor(&set, push, 0.0, &mut ws).expect("feasible");
        assert!(forced.ra >= push - 1e-8);
        assert!(forced.objective <= free.objective + 1e-8);
    }

    #[test]
    fn impossible_floor_reports_infeasible() {
        let set = mabc::capacity_constraints(1.0, &fig4_state());
        let err = max_sum_rate_with_floor(&set, 50.0, 50.0, &mut Workspace::new()).unwrap_err();
        assert!(err.is_infeasible(), "{err}");
    }

    #[test]
    fn max_min_is_symmetric_point() {
        let set = mabc::capacity_constraints(10.0, &fig4_state());
        let pt = max_min_rate(&set).expect("solvable");
        // Both rates at least the objective.
        assert!(pt.ra >= pt.objective - 1e-9);
        assert!(pt.rb >= pt.objective - 1e-9);
        // And the symmetric point is achievable.
        assert!(is_achievable(&set, pt.objective, pt.objective));
    }

    #[test]
    fn origin_is_always_achievable() {
        let set = tdbc::inner_constraints(0.0, &fig4_state());
        assert!(is_achievable(&set, 0.0, 0.0));
        assert!(!is_achievable(&set, -0.1, 0.0), "negative rates rejected");
    }

    #[test]
    fn binding_constraints_identified_at_optimum() {
        let set = mabc::capacity_constraints(10.0, &fig4_state());
        let pt = max_sum_rate(&set).expect("solvable");
        let binding = binding_constraints(&set, &pt, 1e-7);
        // At an LP optimum at least one constraint binds, and the MABC
        // sum-rate optimum always pins the MAC sum row.
        assert!(!binding.is_empty());
        assert!(
            binding.iter().any(|l| l.contains("MAC sum")),
            "MAC sum row should bind at the sum-rate optimum: {binding:?}"
        );
        // An interior point binds nothing.
        let interior = SchedulePoint {
            ra: 0.01,
            rb: 0.01,
            durations: pt.durations,
            objective: 0.02,
        };
        assert!(binding_constraints(&set, &interior, 1e-7).is_empty());
    }
}
