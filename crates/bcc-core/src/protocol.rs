//! Protocol definitions: phase structure and half-duplex schedules.
//!
//! Encodes Fig. 2 of the paper. All protocols have *contiguous* phases
//! (performed consecutively, never interleaved — Section II-C), and it is
//! assumed that every node listens whenever it is not transmitting, which
//! is what creates the side information exploited by TDBC and HBC.

use bcc_channel::halfduplex::PhaseActivity;
use bcc_channel::NodeId;
use std::fmt;

/// Which side of a performance bound to evaluate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Bound {
    /// Achievable (inner) region — Theorems 2, 3, 5.
    Inner,
    /// Converse (outer) region — Theorems 2, 4, 6.
    Outer,
}

impl fmt::Display for Bound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Bound::Inner => write!(f, "inner"),
            Bound::Outer => write!(f, "outer"),
        }
    }
}

/// The four transmission strategies analysed in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protocol {
    /// Direct transmission without the relay: `a→b` then `b→a` (Fig. 2 DT).
    DirectTransmission,
    /// Multiple-access broadcast, 2 phases: both terminals transmit to the
    /// relay simultaneously, then the relay broadcasts `w_a ⊕ w_b`
    /// (Fig. 2 MABC). No terminal acquires side information.
    Mabc,
    /// Time-division broadcast, 3 phases: `a` alone, `b` alone, relay
    /// broadcast (Fig. 2 TDBC). Each terminal overhears the other's uplink.
    Tdbc,
    /// Hybrid broadcast, 4 phases: `a` alone, `b` alone, joint MAC to the
    /// relay, relay broadcast (Fig. 2 HBC). Subsumes MABC (Δ₁=Δ₂=0) and
    /// TDBC (Δ₃=0).
    Hbc,
}

impl Protocol {
    /// All protocols in presentation order.
    pub const ALL: [Protocol; 4] = [
        Protocol::DirectTransmission,
        Protocol::Mabc,
        Protocol::Tdbc,
        Protocol::Hbc,
    ];

    /// The relay-assisted protocols (everything except direct transmission).
    pub const RELAYED: [Protocol; 3] = [Protocol::Mabc, Protocol::Tdbc, Protocol::Hbc];

    /// This protocol's position in [`Protocol::ALL`] — a dense index for
    /// constant-time keyed storage (see [`ProtocolMap`]).
    pub const fn index(self) -> usize {
        match self {
            Protocol::DirectTransmission => 0,
            Protocol::Mabc => 1,
            Protocol::Tdbc => 2,
            Protocol::Hbc => 3,
        }
    }

    /// Number of phases `L` (durations `Δ_1..Δ_L` sum to one).
    pub fn num_phases(self) -> usize {
        match self {
            Protocol::DirectTransmission | Protocol::Mabc => 2,
            Protocol::Tdbc => 3,
            Protocol::Hbc => 4,
        }
    }

    /// Short name used in tables and plots.
    pub fn name(self) -> &'static str {
        match self {
            Protocol::DirectTransmission => "DT",
            Protocol::Mabc => "MABC",
            Protocol::Tdbc => "TDBC",
            Protocol::Hbc => "HBC",
        }
    }

    /// The transmit schedule of each phase (Fig. 2 of the paper).
    ///
    /// Every node not listed as a transmitter listens during that phase —
    /// the half-duplex rule is enforced by
    /// [`PhaseActivity`].
    pub fn phases(self) -> Vec<PhaseActivity> {
        use NodeId::*;
        let schedule: &[&[NodeId]] = match self {
            Protocol::DirectTransmission => &[&[A], &[B]],
            Protocol::Mabc => &[&[A, B], &[R]],
            Protocol::Tdbc => &[&[A], &[B], &[R]],
            Protocol::Hbc => &[&[A], &[B], &[A, B], &[R]],
        };
        schedule
            .iter()
            .map(|tx| PhaseActivity::new(tx).expect("static schedules are valid"))
            .collect()
    }

    /// `true` if a terminal can overhear the other terminal's *uplink to
    /// the relay* in some phase (the "side information" mechanism of
    /// TDBC/HBC). Direct transmission has no relay, hence no side
    /// information in the paper's sense — the overheard signal *is* the
    /// transmission.
    pub fn has_side_information(self) -> bool {
        self.uses_relay()
            && self
                .phases()
                .iter()
                .any(|p| p.can_hear(NodeId::B, NodeId::A) || p.can_hear(NodeId::A, NodeId::B))
    }

    /// `true` if the protocol uses the relay at all.
    pub fn uses_relay(self) -> bool {
        self.phases().iter().any(|p| p.is_transmitting(NodeId::R))
    }

    /// Renders the protocol's schedule as an ASCII diagram in the style of
    /// the paper's Fig. 2 (rows = nodes, columns = phases, `█` =
    /// transmitting, `·` = listening).
    pub fn schedule_diagram(self) -> String {
        let phases = self.phases();
        let mut out = String::new();
        out.push_str(&format!("{} ({} phases)\n", self.name(), phases.len()));
        out.push_str("      ");
        for (i, _) in phases.iter().enumerate() {
            out.push_str(&format!("ph{:<2} ", i + 1));
        }
        out.push('\n');
        for node in NodeId::ALL {
            out.push_str(&format!("  {}:  ", node));
            for p in &phases {
                out.push_str(if p.is_transmitting(node) {
                    "███  "
                } else {
                    "·    "
                });
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// A dense map from [`Protocol`] to `T` with O(1) lookup.
///
/// The result types of the `Scenario`/`Evaluator` API store per-protocol
/// series in one of these instead of position-searching `Protocol::ALL`
/// on every access.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ProtocolMap<T> {
    slots: [Option<T>; 4],
}

impl<T> ProtocolMap<T> {
    /// Creates an empty map.
    pub fn new() -> Self {
        ProtocolMap {
            slots: [None, None, None, None],
        }
    }

    /// Inserts (or replaces) the entry for `protocol`, returning the old
    /// value if any.
    pub fn insert(&mut self, protocol: Protocol, value: T) -> Option<T> {
        self.slots[protocol.index()].replace(value)
    }

    /// The entry for `protocol`, if present.
    pub fn get(&self, protocol: Protocol) -> Option<&T> {
        self.slots[protocol.index()].as_ref()
    }

    /// Mutable access to the entry for `protocol`, if present.
    pub fn get_mut(&mut self, protocol: Protocol) -> Option<&mut T> {
        self.slots[protocol.index()].as_mut()
    }

    /// `true` if `protocol` has an entry.
    pub fn contains(&self, protocol: Protocol) -> bool {
        self.slots[protocol.index()].is_some()
    }

    /// Number of populated entries.
    pub fn len(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// `true` if no protocol has an entry.
    pub fn is_empty(&self) -> bool {
        self.slots.iter().all(|s| s.is_none())
    }

    /// Iterates populated `(protocol, value)` pairs in [`Protocol::ALL`]
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = (Protocol, &T)> {
        Protocol::ALL
            .into_iter()
            .filter_map(|p| self.slots[p.index()].as_ref().map(|v| (p, v)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_counts_match_paper() {
        assert_eq!(Protocol::DirectTransmission.num_phases(), 2);
        assert_eq!(Protocol::Mabc.num_phases(), 2);
        assert_eq!(Protocol::Tdbc.num_phases(), 3);
        assert_eq!(Protocol::Hbc.num_phases(), 4);
        for p in Protocol::ALL {
            assert_eq!(p.phases().len(), p.num_phases());
        }
    }

    #[test]
    fn mabc_has_no_side_information() {
        // Paper Section II-C: "neither node a nor node b is able to receive
        // any meaningful side-information during the first phase".
        assert!(!Protocol::Mabc.has_side_information());
        assert!(!Protocol::DirectTransmission.has_side_information());
        assert!(Protocol::Tdbc.has_side_information());
        assert!(Protocol::Hbc.has_side_information());
    }

    #[test]
    fn relay_usage() {
        assert!(!Protocol::DirectTransmission.uses_relay());
        for p in Protocol::RELAYED {
            assert!(p.uses_relay(), "{p} should use the relay");
        }
    }

    #[test]
    fn relay_transmits_only_in_final_phase() {
        for p in Protocol::RELAYED {
            let phases = p.phases();
            for (i, ph) in phases.iter().enumerate() {
                let is_last = i + 1 == phases.len();
                assert_eq!(
                    ph.is_transmitting(NodeId::R),
                    is_last,
                    "{p} phase {i}: relay broadcast must be the last phase"
                );
            }
        }
    }

    #[test]
    fn mabc_first_phase_is_mac() {
        let phases = Protocol::Mabc.phases();
        assert_eq!(phases[0].transmitters(), &[NodeId::A, NodeId::B]);
        assert_eq!(phases[0].listeners(), vec![NodeId::R]);
    }

    #[test]
    fn hbc_embeds_tdbc_and_mabc_phases() {
        let hbc = Protocol::Hbc.phases();
        let tdbc = Protocol::Tdbc.phases();
        let mabc = Protocol::Mabc.phases();
        // HBC phases 1,2,4 = TDBC phases 1,2,3; HBC phases 3,4 = MABC 1,2.
        assert_eq!(hbc[0], tdbc[0]);
        assert_eq!(hbc[1], tdbc[1]);
        assert_eq!(hbc[3], tdbc[2]);
        assert_eq!(hbc[2], mabc[0]);
        assert_eq!(hbc[3], mabc[1]);
    }

    #[test]
    fn diagram_mentions_every_node_and_phase() {
        for p in Protocol::ALL {
            let d = p.schedule_diagram();
            for node in ["a:", "b:", "r:"] {
                assert!(d.contains(node), "{p} diagram missing row {node}\n{d}");
            }
            assert!(d.contains(&format!("ph{}", p.num_phases())));
        }
    }

    #[test]
    fn names_and_display() {
        assert_eq!(Protocol::Mabc.to_string(), "MABC");
        assert_eq!(Bound::Inner.to_string(), "inner");
        assert_eq!(Bound::Outer.to_string(), "outer");
    }

    #[test]
    fn index_matches_all_order() {
        for (i, p) in Protocol::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
    }

    #[test]
    fn protocol_map_basic_operations() {
        let mut m: ProtocolMap<u32> = ProtocolMap::new();
        assert!(m.is_empty());
        assert!(m.insert(Protocol::Hbc, 4).is_none());
        assert!(m.insert(Protocol::Mabc, 2).is_none());
        assert_eq!(m.insert(Protocol::Mabc, 20), Some(2));
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(Protocol::Mabc), Some(&20));
        assert!(m.get(Protocol::Tdbc).is_none());
        assert!(m.contains(Protocol::Hbc));
        let pairs: Vec<_> = m.iter().collect();
        assert_eq!(pairs, vec![(Protocol::Mabc, &20), (Protocol::Hbc, &4)]);
        *m.get_mut(Protocol::Hbc).unwrap() += 1;
        assert_eq!(m.get(Protocol::Hbc), Some(&5));
    }
}
