//! Rate regions: unions of duration-optimised constraint polytopes.
//!
//! For a single [`ConstraintSet`] the achievable `(R_a, R_b)` region —
//! *after* optimising the phase durations — is the projection of a
//! polytope, hence itself a convex polygon; all queries reduce to LPs.
//! A [`RateRegion`] holds a **family** of constraint sets and represents
//! the union of their projections: a singleton family for every bound in
//! the paper except the Gaussian-restricted HBC outer bound, whose family
//! is indexed by the phase-3 correlation ρ (see
//! [`crate::bounds::hbc`]).

use crate::constraint::ConstraintSet;
use crate::error::CoreError;
use crate::optimizer;
use std::fmt;

/// A point in the `(R_a, R_b)` plane, bits per channel use.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RatePoint {
    /// Rate of message `w_a` (decoded at `b`).
    pub ra: f64,
    /// Rate of message `w_b` (decoded at `a`).
    pub rb: f64,
}

impl RatePoint {
    /// Creates a rate point.
    pub fn new(ra: f64, rb: f64) -> Self {
        RatePoint { ra, rb }
    }

    /// Sum rate `R_a + R_b`.
    pub fn sum(&self) -> f64 {
        self.ra + self.rb
    }
}

impl fmt::Display for RatePoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.4}, {:.4})", self.ra, self.rb)
    }
}

/// A rate region represented as a union of constraint-set projections.
#[derive(Debug, Clone, PartialEq)]
pub struct RateRegion {
    sets: Vec<ConstraintSet>,
    /// Descriptive name (e.g. `"TDBC outer (Thm 4)"`).
    pub name: String,
}

impl RateRegion {
    /// Wraps a family of constraint sets.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is empty.
    pub fn new(sets: Vec<ConstraintSet>, name: impl Into<String>) -> Self {
        assert!(
            !sets.is_empty(),
            "a region needs at least one constraint set"
        );
        RateRegion {
            sets,
            name: name.into(),
        }
    }

    /// The underlying constraint sets.
    pub fn sets(&self) -> &[ConstraintSet] {
        &self.sets
    }

    /// `true` if `(ra, rb)` is in the region (achievable under some member
    /// set and some phase allocation).
    pub fn contains(&self, ra: f64, rb: f64) -> bool {
        self.sets
            .iter()
            .any(|s| optimizer::is_achievable(s, ra, rb))
    }

    /// Maximum of `wa·R_a + wb·R_b` over the region.
    ///
    /// # Errors
    ///
    /// Propagates LP failures (not expected for valid bounds).
    pub fn max_weighted(&self, wa: f64, wb: f64) -> Result<RatePoint, CoreError> {
        let mut best: Option<RatePoint> = None;
        let mut best_val = f64::NEG_INFINITY;
        for s in &self.sets {
            let pt = optimizer::max_weighted(s, wa, wb)?;
            if pt.objective > best_val {
                best_val = pt.objective;
                best = Some(RatePoint::new(pt.ra, pt.rb));
            }
        }
        Ok(best.expect("non-empty family"))
    }

    /// Maximum sum rate over the region.
    pub fn max_sum_rate(&self) -> Result<f64, CoreError> {
        self.max_weighted(1.0, 1.0).map(|p| p.sum())
    }

    /// Largest achievable `R_b` (at any `R_a`).
    pub fn rb_max(&self) -> Result<f64, CoreError> {
        self.max_weighted(0.0, 1.0).map(|p| p.rb)
    }

    /// Largest achievable `R_a` (at any `R_b`).
    pub fn ra_max(&self) -> Result<f64, CoreError> {
        self.max_weighted(1.0, 0.0).map(|p| p.ra)
    }

    /// Largest `R_a` achievable together with `R_b = rb`, or `None` if `rb`
    /// itself is out of reach for every family member.
    pub fn max_ra_given_rb(&self, rb: f64) -> Option<f64> {
        let mut best: Option<f64> = None;
        for s in &self.sets {
            match optimizer::max_ra_given_rb(s, rb) {
                Ok(pt) => {
                    best = Some(best.map_or(pt.ra, |b: f64| b.max(pt.ra)));
                }
                Err(CoreError::RateUnachievable { .. }) => continue,
                Err(_) => continue,
            }
        }
        best
    }

    /// Traces the upper-right boundary with `n + 1` points: `R_b` is swept
    /// uniformly over `[0, R_b^max]` and the maximal `R_a` recorded for
    /// each. This is the curve plotted in the paper's Fig. 4.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    ///
    /// # Errors
    ///
    /// Propagates LP failures from the `R_b`-max query.
    pub fn boundary(&self, n: usize) -> Result<Vec<RatePoint>, CoreError> {
        assert!(n > 0, "need at least one boundary segment");
        let rb_max = self.rb_max()?;
        let mut pts = Vec::with_capacity(n + 1);
        for i in 0..=n {
            let rb = rb_max * i as f64 / n as f64;
            // rb slightly inside to absorb LP tolerance at the tip.
            let rb_q = if i == n { rb - 1e-12 } else { rb };
            if let Some(ra) = self.max_ra_given_rb(rb_q.max(0.0)) {
                pts.push(RatePoint::new(ra, rb));
            }
        }
        Ok(pts)
    }

    /// The symmetric-rate (max–min fair) point of the region.
    ///
    /// # Errors
    ///
    /// Propagates LP failures.
    pub fn max_min_point(&self) -> Result<RatePoint, CoreError> {
        let mut best = RatePoint::default();
        let mut best_t = f64::NEG_INFINITY;
        for s in &self.sets {
            let pt = optimizer::max_min_rate(s)?;
            if pt.objective > best_t {
                best_t = pt.objective;
                best = RatePoint::new(pt.objective, pt.objective);
            }
        }
        Ok(best)
    }

    /// `true` if every boundary point of `other` (at resolution `n`) lies
    /// inside this region — a practical containment check for convex
    /// regions, used for the paper's dominance claims.
    ///
    /// # Errors
    ///
    /// Propagates LP failures from boundary tracing.
    pub fn contains_region(&self, other: &RateRegion, n: usize) -> Result<bool, CoreError> {
        const TOL: f64 = 1e-7;
        for pt in other.boundary(n)? {
            // Shrink the probe point slightly toward the origin so exact
            // boundary contact counts as containment.
            let ra = (pt.ra - TOL).max(0.0);
            let rb = (pt.rb - TOL).max(0.0);
            if !self.contains(ra, rb) {
                return Ok(false);
            }
        }
        Ok(true)
    }
}

/// The rate pairs reachable by **time sharing** among a set of achievable
/// points — the operational meaning of the paper's `Q` variable. Returns
/// the Pareto-efficient vertices of the "free-disposal" convex hull,
/// sorted by increasing `R_a`.
///
/// Time sharing matters when the underlying points come from *different*
/// input distributions (the general-DMC evaluation in
/// [`crate::discrete`]); for a single Gaussian constraint set the region
/// is already convex and the hull adds nothing.
///
/// # Panics
///
/// Panics if `points` is empty or contains negative/non-finite rates.
pub fn time_sharing_hull(points: &[RatePoint]) -> Vec<RatePoint> {
    assert!(!points.is_empty(), "need at least one achievable point");
    assert!(
        points
            .iter()
            .all(|p| p.ra >= 0.0 && p.rb >= 0.0 && p.ra.is_finite() && p.rb.is_finite()),
        "rates must be non-negative and finite"
    );
    // Free disposal: the axis projections of the extreme points are
    // achievable, so anchor the hull at (ra_max, 0) and (0, rb_max).
    let ra_max = points.iter().map(|p| p.ra).fold(0.0, f64::max);
    let rb_max = points.iter().map(|p| p.rb).fold(0.0, f64::max);
    let mut pts: Vec<RatePoint> = points.to_vec();
    pts.push(RatePoint::new(ra_max, 0.0));
    pts.push(RatePoint::new(0.0, rb_max));
    // Sort by ra, tie-break on rb descending so dominated duplicates drop.
    pts.sort_by(|x, y| {
        x.ra.partial_cmp(&y.ra)
            .expect("finite")
            .then(y.rb.partial_cmp(&x.rb).expect("finite"))
    });
    // Upper hull by monotone chain: keep left turns strictly concave.
    let cross = |o: &RatePoint, a: &RatePoint, b: &RatePoint| -> f64 {
        (a.ra - o.ra) * (b.rb - o.rb) - (a.rb - o.rb) * (b.ra - o.ra)
    };
    let mut hull: Vec<RatePoint> = Vec::new();
    for p in pts {
        while hull.len() >= 2 && cross(&hull[hull.len() - 2], &hull[hull.len() - 1], &p) >= -1e-12 {
            hull.pop();
        }
        hull.push(p);
    }
    // Drop Pareto-dominated hull vertices (can appear at the anchors).
    let snapshot = hull.clone();
    hull.retain(|p| {
        !snapshot
            .iter()
            .any(|q| (q.ra > p.ra + 1e-12 && q.rb >= p.rb) || (q.rb > p.rb + 1e-12 && q.ra >= p.ra))
    });
    hull
}

/// Largest `R_a` reachable at `R_b = rb` by time sharing over `hull`
/// (linear interpolation between adjacent hull vertices). Returns `None`
/// if `rb` exceeds the hull's `R_b` range.
pub fn hull_max_ra(hull: &[RatePoint], rb: f64) -> Option<f64> {
    if hull.is_empty() || rb < 0.0 {
        return None;
    }
    let rb_max = hull.iter().map(|p| p.rb).fold(0.0, f64::max);
    if rb > rb_max + 1e-12 {
        return None;
    }
    // Hull is sorted by ra ascending, hence rb descending along the
    // efficient frontier. Find the bracketing segment.
    let mut best: f64 = 0.0;
    for w in hull.windows(2) {
        let (p, q) = (&w[0], &w[1]);
        let (lo, hi) = if p.rb <= q.rb {
            (p.rb, q.rb)
        } else {
            (q.rb, p.rb)
        };
        if rb >= lo - 1e-12 && rb <= hi + 1e-12 {
            let t = if (q.rb - p.rb).abs() < 1e-15 {
                0.0
            } else {
                (rb - p.rb) / (q.rb - p.rb)
            };
            best = best.max(p.ra + t * (q.ra - p.ra));
        }
    }
    for p in hull {
        if p.rb >= rb - 1e-12 {
            best = best.max(p.ra);
        }
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::{hbc, mabc, tdbc};
    use bcc_channel::ChannelState;
    use bcc_num::approx_eq;

    fn fig4_state() -> ChannelState {
        ChannelState::new(0.19952623149688797, 1.0, 3.1622776601683795)
    }

    fn mabc_region(p: f64) -> RateRegion {
        RateRegion::new(
            vec![mabc::capacity_constraints(p, &fig4_state())],
            "MABC capacity",
        )
    }

    #[test]
    fn origin_always_inside() {
        let r = mabc_region(10.0);
        assert!(r.contains(0.0, 0.0));
        assert!(!r.contains(-0.1, 0.0));
    }

    #[test]
    fn boundary_is_monotone_decreasing() {
        let r = mabc_region(10.0);
        let b = r.boundary(40).expect("boundary");
        assert!(b.len() >= 2);
        for w in b.windows(2) {
            assert!(w[1].rb >= w[0].rb - 1e-12);
            assert!(
                w[1].ra <= w[0].ra + 1e-7,
                "Ra must not increase along increasing Rb: {} -> {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn boundary_endpoints_match_single_user_maxima() {
        let r = mabc_region(10.0);
        let b = r.boundary(20).expect("boundary");
        let ra_max = r.ra_max().expect("ra max");
        let rb_max = r.rb_max().expect("rb max");
        assert!(approx_eq(b[0].ra, ra_max, 1e-6));
        assert!(approx_eq(b.last().unwrap().rb, rb_max, 1e-6));
    }

    #[test]
    fn contains_matches_boundary() {
        let r = mabc_region(5.0);
        for pt in r.boundary(10).expect("boundary") {
            assert!(
                r.contains((pt.ra - 1e-6).max(0.0), (pt.rb - 1e-6).max(0.0)),
                "just-inside point {pt} rejected"
            );
            assert!(
                !r.contains(pt.ra + 1e-3, pt.rb + 1e-3),
                "outside point accepted near {pt}"
            );
        }
    }

    #[test]
    fn tdbc_inner_contained_in_outer() {
        let p = 10.0;
        let s = fig4_state();
        let inner = RateRegion::new(vec![tdbc::inner_constraints(p, &s)], "TDBC inner");
        let outer = RateRegion::new(vec![tdbc::outer_constraints(p, &s)], "TDBC outer");
        assert!(outer
            .contains_region(&inner, 25)
            .expect("containment check"));
        // And generally not vice versa (the outer bound is strictly larger
        // at this channel).
        assert!(!inner
            .contains_region(&outer, 25)
            .expect("containment check"));
    }

    #[test]
    fn hbc_inner_contains_mabc_and_tdbc_inner() {
        let p = 10.0;
        let s = fig4_state();
        let hbc_r = RateRegion::new(vec![hbc::inner_constraints(p, &s)], "HBC inner");
        let mabc_r = mabc_region(p);
        let tdbc_r = RateRegion::new(vec![tdbc::inner_constraints(p, &s)], "TDBC inner");
        assert!(hbc_r.contains_region(&mabc_r, 25).expect("containment"));
        assert!(hbc_r.contains_region(&tdbc_r, 25).expect("containment"));
    }

    #[test]
    fn union_region_is_no_smaller_than_members() {
        let p = 10.0;
        let s = fig4_state();
        let family = hbc::outer_constraint_family(p, &s, 9);
        let union = RateRegion::new(family.clone(), "HBC outer union");
        for member in family {
            let single = RateRegion::new(vec![member], "member");
            assert!(union.contains_region(&single, 15).expect("containment"));
        }
    }

    #[test]
    fn max_min_point_is_achievable_and_symmetric() {
        let r = mabc_region(10.0);
        let pt = r.max_min_point().expect("max-min");
        assert!(approx_eq(pt.ra, pt.rb, 1e-9));
        assert!(r.contains(pt.ra - 1e-7, pt.rb - 1e-7));
    }

    #[test]
    fn sum_rate_consistent_with_weighted_query() {
        let r = mabc_region(10.0);
        let via_sum = r.max_sum_rate().expect("sum");
        let via_weight = r.max_weighted(1.0, 1.0).expect("weighted");
        assert!(approx_eq(via_sum, via_weight.sum(), 1e-9));
    }

    #[test]
    fn hull_of_two_points_is_their_segment() {
        let pts = [RatePoint::new(2.0, 0.0), RatePoint::new(0.0, 2.0)];
        let hull = time_sharing_hull(&pts);
        // Midpoint reachable by 50/50 time sharing.
        assert!(approx_eq(hull_max_ra(&hull, 1.0).unwrap(), 1.0, 1e-9));
        assert!(approx_eq(hull_max_ra(&hull, 0.0).unwrap(), 2.0, 1e-9));
        assert!(hull_max_ra(&hull, 2.5).is_none());
    }

    #[test]
    fn hull_dominates_every_input_point() {
        let pts = [
            RatePoint::new(1.0, 0.2),
            RatePoint::new(0.5, 0.9),
            RatePoint::new(0.2, 1.1),
            RatePoint::new(0.7, 0.7),
        ];
        let hull = time_sharing_hull(&pts);
        for p in &pts {
            let ra = hull_max_ra(&hull, p.rb).expect("inside rb range");
            assert!(ra >= p.ra - 1e-9, "hull lost point {p}: {ra}");
        }
    }

    #[test]
    fn interior_points_are_not_hull_vertices() {
        let pts = [
            RatePoint::new(2.0, 0.0),
            RatePoint::new(0.0, 2.0),
            RatePoint::new(0.5, 0.5), // strictly inside the segment hull
        ];
        let hull = time_sharing_hull(&pts);
        assert!(!hull
            .iter()
            .any(|p| approx_eq(p.ra, 0.5, 1e-12) && approx_eq(p.rb, 0.5, 1e-12)));
    }

    #[test]
    fn hull_of_convex_region_boundary_adds_nothing() {
        // A Gaussian MABC region is already convex: hulling its boundary
        // must not enlarge it.
        let r = mabc_region(10.0);
        let boundary = r.boundary(24).expect("boundary");
        let hull = time_sharing_hull(&boundary);
        for p in &hull {
            assert!(
                r.contains((p.ra - 1e-6).max(0.0), (p.rb - 1e-6).max(0.0)),
                "hull escaped a convex region at {p}"
            );
        }
    }

    #[test]
    fn single_point_hull() {
        let hull = time_sharing_hull(&[RatePoint::new(1.0, 1.0)]);
        // Anchors give the axis points; the point itself survives.
        assert!(hull_max_ra(&hull, 1.0).unwrap() >= 1.0 - 1e-12);
        assert!(hull_max_ra(&hull, 0.0).unwrap() >= 1.0 - 1e-12);
    }
}
