//! The unified batch-evaluation API: declare *what* to evaluate with a
//! builder-style [`Scenario`], compile it into an [`Evaluator`], and run
//! every figure/bench/test workload through one code path.
//!
//! The paper's deliverable is *comparing* protocols across operating
//! points — SNR sweeps (Fig. 3), relay-position sweeps (Fig. 4),
//! fading/outage studies — and before this module every consumer
//! hand-rolled its own loop over
//! [`GaussianNetwork::max_sum_rate`]. A scenario instead captures
//!
//! * a **grid**: one network, a power sweep, a symmetric-relay-gain sweep,
//!   a relay-position sweep, or an arbitrary `(x, network)` list;
//! * a **protocol set** (default: all four);
//! * a **bound selection** (default: achievable/inner);
//! * an optional **fading distribution** with a trial budget and seed;
//!
//! and the compiled evaluator runs the whole grid *batched and parallel*:
//! grid points (and fading trials) fan out over a scoped worker pool
//! ([`bcc_num::par`]), each worker reusing one private
//! [`SolveCtx`] batch context — closed-form kernel for the
//! two-phase protocols, warm-started flat-tableau simplex with a reusable
//! constraint arena otherwise — so the steady-state hot loop performs no
//! heap allocation per grid point. Results come back as typed values —
//! [`SweepResult`],
//! [`ComparisonResult`], [`RegionResult`], [`OutageResult`] — with
//! per-protocol series keyed by [`Protocol`] (constant-time lookup, no
//! `Protocol::ALL` position searches).
//!
//! # Parallelism & determinism
//!
//! Every evaluator method produces **bit-identical results at any worker
//! count**: each grid point's LP solves depend only on that point (the
//! LP solver's output is independent of workspace history), and fading
//! trials draw from decorrelated per-trial streams
//! ([`trial_stream`]) rather than one sequential RNG. The worker count
//! comes from [`Scenario::threads`] if set, else the `BCC_THREADS`
//! environment variable, else the machine's available parallelism —
//! `BCC_THREADS=1` is a drop-in serial oracle for any run.
//!
//! # Example: a Fig. 3 relay-position sweep
//!
//! ```
//! use bcc_core::prelude::*;
//!
//! let sweep = Scenario::relay_position_sweep(15.0, 3.0, (1..=19).map(|k| k as f64 / 20.0))
//!     .unwrap()
//!     .build()
//!     .sweep()
//!     .unwrap();
//! // HBC strictly wins somewhere mid-span (the paper's wedge):
//! assert!(!sweep.strict_wins(Protocol::Hbc, 1e-6).is_empty());
//! // DT ignores the relay position entirely:
//! let dt = sweep.series(Protocol::DirectTransmission).unwrap();
//! assert!((dt.sum_rates()[0] - dt.sum_rates()[18]).abs() < 1e-8);
//! ```

use crate::batch::PointBlock;
use crate::error::CoreError;
use crate::gaussian::{GaussianNetwork, SumRateSolution};
use crate::kernel::{SolveCtx, SolveOutcome, SolveRequest};
use crate::protocol::{Bound, Protocol, ProtocolMap};
use crate::region::{RatePoint, RateRegion};
use bcc_channel::fading::FadingModel;
use bcc_channel::topology::LineNetwork;
use bcc_channel::{ChannelState, PowerSplit};
use bcc_num::faults::{self, FaultPlan, FaultScope, FaultSite};
use bcc_num::{par, Db};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Mixes `(seed, k)` into a decorrelated child seed (SplitMix64
/// finalisation). This is the workspace-wide seeding policy: all
/// Monte-Carlo drivers and topology generators derive per-stream seeds
/// through this function so stream `i` is independent of how much
/// randomness stream `i - 1` consumed. The definition lives in
/// [`bcc_num::seed`] (re-exported here unchanged) so the channel
/// substrate's placement generators share it.
pub use bcc_num::seed::mix_seed;

/// The deterministic RNG stream of trial `k` under master seed `seed`.
pub fn trial_stream(seed: u64, k: u64) -> StdRng {
    StdRng::seed_from_u64(mix_seed(seed, k))
}

/// A quasi-static fading study attached to a scenario: `trials`
/// independent per-link fades per grid point, drawn from `model` with the
/// deterministic seeding policy of [`trial_stream`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FadingSpec {
    /// The per-link fading distribution (unit mean power).
    pub model: FadingModel,
    /// Monte-Carlo trials per grid point.
    pub trials: usize,
    /// Master seed.
    pub seed: u64,
}

/// One point of a scenario grid: the swept coordinate and the network to
/// evaluate there.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridPoint {
    /// The swept parameter value (dB, position, … per the axis label).
    pub x: f64,
    /// The network at this point.
    pub net: GaussianNetwork,
}

/// Declarative description of a batch evaluation (see the module docs).
///
/// Construct with one of the grid constructors, refine with the chained
/// builder methods, then [`Scenario::build`] the [`Evaluator`].
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    pub(crate) x_name: String,
    pub(crate) points: Vec<GridPoint>,
    pub(crate) protocols: Vec<Protocol>,
    pub(crate) bound: Bound,
    pub(crate) fading: Option<FadingSpec>,
    pub(crate) threads: Option<usize>,
    pub(crate) multiplexing_gains: Vec<f64>,
    pub(crate) power_grid: Vec<PowerSplit>,
    pub(crate) rate_floor: Option<(f64, f64)>,
    pub(crate) block_size: Option<usize>,
    pub(crate) faults: FaultPlan,
}

impl Scenario {
    fn from_points(x_name: impl Into<String>, points: Vec<GridPoint>) -> Self {
        assert!(
            !points.is_empty(),
            "a scenario needs at least one grid point"
        );
        Scenario {
            x_name: x_name.into(),
            points,
            protocols: Protocol::ALL.to_vec(),
            bound: Bound::Inner,
            fading: None,
            threads: None,
            multiplexing_gains: Vec::new(),
            power_grid: Vec::new(),
            rate_floor: None,
            block_size: None,
            faults: FaultPlan::none(),
        }
    }

    /// A single-point scenario at `net` (comparisons, region panels).
    pub fn at(net: GaussianNetwork) -> Self {
        Scenario::from_points("network", vec![GridPoint { x: 0.0, net }])
    }

    /// Sweeps the transmit power (dB) at `base`'s gains — the SNR axis of
    /// the paper's crossover study (E-X1).
    ///
    /// # Panics
    ///
    /// Panics if `powers_db` is empty.
    pub fn power_sweep_db(base: GaussianNetwork, powers_db: impl IntoIterator<Item = f64>) -> Self {
        let points = powers_db
            .into_iter()
            .map(|p| GridPoint {
                x: p,
                net: base.with_power_db(Db::new(p)),
            })
            .collect();
        Scenario::from_points("power [dB]", points)
    }

    /// Sweeps symmetric relay gains `G_ar = G_br` (dB) at fixed power and
    /// direct gain — Fig. 3 sweep A.
    ///
    /// # Panics
    ///
    /// Panics if `gains_db` is empty.
    pub fn symmetric_gain_sweep_db(
        power_db: f64,
        gab_db: f64,
        gains_db: impl IntoIterator<Item = f64>,
    ) -> Self {
        let points = gains_db
            .into_iter()
            .map(|g| GridPoint {
                x: g,
                net: GaussianNetwork::from_db(
                    Db::new(power_db),
                    Db::new(gab_db),
                    Db::new(g),
                    Db::new(g),
                ),
            })
            .collect();
        Scenario::from_points("relay gain [dB]", points)
    }

    /// Sweeps the relay position on the a–b line with path-loss exponent
    /// `gamma` — Fig. 3 sweep B.
    ///
    /// Positions are validated up front through [`LineNetwork::try_new`]
    /// (a boundary or out-of-range position used to escape as a raw
    /// geometry panic through this builder); an invalid position or
    /// exponent surfaces as [`CoreError::InvalidInput`] naming the
    /// offending value, matching the serving layer's up-front query
    /// validation discipline.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidInput`] if `positions` is empty, contains a
    /// value outside the open interval `(0, 1)`, or `gamma` is negative
    /// or non-finite.
    pub fn relay_position_sweep(
        power_db: f64,
        gamma: f64,
        positions: impl IntoIterator<Item = f64>,
    ) -> Result<Self, CoreError> {
        let power = Db::new(power_db).to_linear();
        let points = positions
            .into_iter()
            .map(|d| {
                let line = LineNetwork::try_new(d, gamma).map_err(|e| CoreError::InvalidInput {
                    context: format!("relay position sweep: {e}"),
                })?;
                Ok(GridPoint {
                    x: d,
                    net: GaussianNetwork::new(power, line.channel_state()),
                })
            })
            .collect::<Result<Vec<GridPoint>, CoreError>>()?;
        if points.is_empty() {
            return Err(CoreError::InvalidInput {
                context: "relay position sweep: need at least one position".into(),
            });
        }
        Ok(Scenario::from_points("relay position", points))
    }

    /// Sweeps the relay's share of a fixed total power budget at balanced
    /// terminals — the 1-D slice of the allocation simplex that the
    /// finite-SNR power-allocation studies walk. `x` is the relay share.
    ///
    /// # Panics
    ///
    /// Panics if `relay_shares` is empty or contains values outside
    /// `[0, 1]` (propagated from [`PowerSplit::from_shares`]).
    pub fn power_split_sweep(
        state: ChannelState,
        total_power: f64,
        relay_shares: impl IntoIterator<Item = f64>,
    ) -> Self {
        let points = relay_shares
            .into_iter()
            .map(|share| GridPoint {
                x: share,
                net: GaussianNetwork::with_powers(
                    PowerSplit::from_shares(total_power, share, 0.5),
                    state,
                ),
            })
            .collect();
        Scenario::from_points("relay power share", points)
    }

    /// An arbitrary `(x, network)` grid under a caller-chosen axis label —
    /// the escape hatch for geometries the named constructors don't cover.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty.
    pub fn networks(
        x_name: impl Into<String>,
        points: impl IntoIterator<Item = (f64, GaussianNetwork)>,
    ) -> Self {
        let points = points
            .into_iter()
            .map(|(x, net)| GridPoint { x, net })
            .collect();
        Scenario::from_points(x_name, points)
    }

    /// Restricts the evaluation to `protocols` (default: all four).
    ///
    /// # Panics
    ///
    /// Panics if `protocols` is empty or contains duplicates.
    pub fn protocols(mut self, protocols: impl IntoIterator<Item = Protocol>) -> Self {
        let protocols: Vec<Protocol> = protocols.into_iter().collect();
        assert!(!protocols.is_empty(), "need at least one protocol");
        let mut seen = ProtocolMap::new();
        for &p in &protocols {
            assert!(seen.insert(p, ()).is_none(), "duplicate protocol {p}");
        }
        self.protocols = protocols;
        self
    }

    /// Selects which side of each bound to evaluate (default:
    /// [`Bound::Inner`], the achievable side).
    pub fn bound(mut self, bound: Bound) -> Self {
        self.bound = bound;
        self
    }

    /// Attaches a quasi-static fading study (enables
    /// [`Evaluator::outage`]).
    ///
    /// # Panics
    ///
    /// Panics if `trials == 0`.
    pub fn fading(mut self, model: FadingModel, trials: usize, seed: u64) -> Self {
        assert!(trials > 0, "need at least one fading trial");
        self.fading = Some(FadingSpec {
            model,
            trials,
            seed,
        });
        self
    }

    /// Shorthand for Rayleigh fading (the paper's model).
    pub fn rayleigh(self, trials: usize, seed: u64) -> Self {
        self.fading(FadingModel::Rayleigh, trials, seed)
    }

    /// Attaches multiplexing gains for finite-SNR DMT estimation
    /// (enables [`Evaluator::dmt`]): at a grid point with reference SNR
    /// `ρ`, gain `r` targets the sum rate `r·log2(1 + ρ)`.
    ///
    /// # Panics
    ///
    /// Panics if `gains` is empty or contains a non-finite or non-positive
    /// value.
    pub fn multiplexing_gains(mut self, gains: impl IntoIterator<Item = f64>) -> Self {
        let gains: Vec<f64> = gains.into_iter().collect();
        assert!(!gains.is_empty(), "need at least one multiplexing gain");
        for &r in &gains {
            assert!(
                r.is_finite() && r > 0.0,
                "multiplexing gains must be finite and positive, got {r}"
            );
        }
        self.multiplexing_gains = gains;
        self
    }

    /// Attaches candidate power splits for the allocation search
    /// ([`Evaluator::allocation`] seeds its golden-section polish from the
    /// best of these; an empty grid falls back to a built-in coarse grid
    /// of relay shares at balanced terminals).
    ///
    /// All candidates must share one total — the search moves along the
    /// allocation simplex of a fixed budget.
    ///
    /// # Panics
    ///
    /// Panics if `splits` is empty or the totals disagree beyond 1e-9
    /// relative.
    pub fn power_grid(mut self, splits: impl IntoIterator<Item = PowerSplit>) -> Self {
        let splits: Vec<PowerSplit> = splits.into_iter().collect();
        assert!(!splits.is_empty(), "need at least one candidate split");
        let total = splits[0].total();
        for s in &splits {
            assert!(
                (s.total() - total).abs() <= 1e-9 * (1.0 + total),
                "power grid must share one total budget: {} vs {total}",
                s.total()
            );
        }
        self.power_grid = splits;
        self
    }

    /// Imposes per-user QoS floors `R_a ≥ ra_min`, `R_b ≥ rb_min` on every
    /// sum-rate solve of [`Evaluator::sweep`] / [`Evaluator::comparisons`].
    ///
    /// Floors make grid points *genuinely infeasible* when the operating
    /// point cannot support them — those solves are recorded in
    /// [`SweepResult::skipped`] with NaN placeholders rather than aborting
    /// the batch (`comparisons`/`compare` still propagate the error, as
    /// single-point queries have no batch to protect).
    ///
    /// The fading studies ([`Evaluator::outage`], [`Evaluator::dmt`],
    /// [`Evaluator::allocation`]) solve the *unconstrained* optimum and
    /// **panic** if a floor is attached, rather than silently ignoring
    /// it.
    ///
    /// # Panics
    ///
    /// Panics if a floor is negative or non-finite.
    pub fn rate_floor(mut self, ra_min: f64, rb_min: f64) -> Self {
        assert!(
            ra_min.is_finite() && rb_min.is_finite() && ra_min >= 0.0 && rb_min >= 0.0,
            "rate floors must be finite and non-negative"
        );
        self.rate_floor = Some((ra_min, rb_min));
        self
    }

    /// Pins the evaluator's worker count (default: the global policy —
    /// `BCC_THREADS` if set, else the machine's available parallelism).
    ///
    /// Results are bit-identical at every worker count; this knob only
    /// trades wall time, so benches and the determinism suite can flip
    /// between serial and parallel inside one process.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "need at least one worker thread");
        self.threads = Some(threads);
        self
    }

    /// Overrides the number of grid points per structure-of-arrays batch
    /// block (see [`crate::batch::PointBlock`]); the default
    /// ([`crate::batch::DEFAULT_BLOCK`]) balances lane amortisation
    /// against cache residency. Results are bit-identical at every block
    /// size — this knob only trades scheduling granularity.
    ///
    /// # Panics
    ///
    /// Panics if `points == 0`.
    pub fn block_size(mut self, points: usize) -> Self {
        assert!(points >= 1, "need at least one point per block");
        self.block_size = Some(points);
        self
    }

    /// Arms a deterministic fault-injection plan for the batched sweep
    /// paths (chaos testing; see [`bcc_num::faults`]).
    ///
    /// Each grid point runs under a [`FaultScope`] keyed by its global
    /// point index, so the injection schedule is bit-reproducible across
    /// thread counts and block sizes. A point whose kernel is poisoned
    /// (or whose solver resources are exhausted by an armed
    /// `LpIterationLimit` site) degrades to a [`SweepResult::skipped`]
    /// entry — exactly the per-point containment genuinely infeasible
    /// points already get — instead of aborting the batch. The empty plan
    /// (the default) changes nothing, bit for bit.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Compiles the scenario into a reusable [`Evaluator`].
    pub fn build(self) -> Evaluator {
        Evaluator { scenario: self }
    }

    /// The effective points-per-block of the batched paths.
    pub(crate) fn effective_block_size(&self) -> usize {
        self.block_size.unwrap_or(crate::batch::DEFAULT_BLOCK)
    }

    /// Optimal sum rate of `protocol` at `net` under this scenario's bound
    /// selection and optional QoS floor, solved through `ctx` (each
    /// parallel worker owns one [`SolveCtx`]: closed-form kernel where
    /// available, warm-started zero-allocation simplex otherwise).
    fn solve_point_with(
        &self,
        net: &GaussianNetwork,
        protocol: Protocol,
        ctx: &mut SolveCtx,
    ) -> Result<SumRateSolution, CoreError> {
        ctx.solve_one(net, self.sum_request(protocol))
            .map(|o| o.sum_rate_solution())
    }

    /// The sweep's [`SolveRequest`] for `protocol` under this scenario's
    /// bound selection and optional QoS floor.
    fn sum_request(&self, protocol: Protocol) -> SolveRequest {
        SolveRequest::sum_rate(protocol)
            .with_bound(self.bound)
            .with_floor(self.rate_floor)
    }
}

/// Sorts one grid-point solve into the batch policy of
/// [`Evaluator::sweep`]: success and *infeasibility* both let the batch
/// continue (the latter recorded per point as [`SkippedSolve`]), while any
/// other failure — unbounded, iteration limit — still aborts, because it
/// describes the solver rather than the input.
///
/// Under an active fault scope the abort set shrinks: injected kernel
/// poison and solver iteration limits are chaos by construction, so they
/// degrade to per-point skips like infeasibility does. (An organic
/// iteration limit during a chaos run is indistinguishable from an
/// injected one — conservatively contained rather than escalated.)
fn classify_solve(
    result: Result<SumRateSolution, CoreError>,
) -> Result<Result<SumRateSolution, CoreError>, CoreError> {
    match result {
        Ok(sol) => Ok(Ok(sol)),
        Err(e) if e.is_infeasible() => Ok(Err(e)),
        Err(e) if e.is_injected() => Ok(Err(e)),
        Err(e) if faults::active() && e.is_resource_limit() => Ok(Err(e)),
        Err(e) => Err(e),
    }
}

/// The compiled form of a [`Scenario`]: the handle the batch drivers run
/// through. Each run fans its grid out over scoped worker threads, one
/// reusable [`bcc_lp::Workspace`] per worker.
#[derive(Debug)]
pub struct Evaluator {
    pub(crate) scenario: Scenario,
}

impl Evaluator {
    /// The grid being evaluated.
    pub fn points(&self) -> &[GridPoint] {
        &self.scenario.points
    }

    /// The swept-axis label.
    pub fn x_name(&self) -> &str {
        &self.scenario.x_name
    }

    /// The protocols being evaluated, in evaluation order.
    pub fn protocols(&self) -> &[Protocol] {
        &self.scenario.protocols
    }

    /// The effective worker count: the scenario's [`Scenario::threads`]
    /// override if set, else the global policy of
    /// [`bcc_num::par::thread_count`] (`BCC_THREADS`, then available
    /// parallelism).
    pub fn thread_count(&self) -> usize {
        self.scenario
            .threads
            .unwrap_or_else(bcc_num::par::thread_count)
    }

    /// Runs the batched sum-rate evaluation over the whole grid, grid
    /// points fanned across the worker pool.
    ///
    /// A grid point whose LP is *infeasible* does not abort the batch: the
    /// affected protocol's entry becomes a NaN placeholder and the solve is
    /// recorded in [`SweepResult::skipped`], so one degenerate gain
    /// combination cannot kill a 10k-point sweep. (Well-posed Gaussian
    /// scenarios never trigger this — rate 0 is always achievable — but
    /// batch robustness must not depend on every input being well-posed.)
    ///
    /// # Errors
    ///
    /// Propagates non-infeasibility LP failures; returns
    /// [`CoreError::NoFiniteOptimum`] if every protocol's optimum at some
    /// grid point is non-finite without any solve having been skipped.
    pub fn sweep(&mut self) -> Result<SweepResult, CoreError> {
        let threads = self.thread_count();
        let sc = &self.scenario;
        let protocols = sc.protocols.clone();
        let npoints = sc.points.len();
        let nproto = protocols.len();

        // Inner-bound sweeps without a QoS floor are fully closed-form, so
        // the grid runs through the SoA lane kernels: one job per
        // [`PointBlock`], each worker reusing its block and per-protocol
        // scratch across jobs. Every point is solved independently of its
        // blockmates, so the results are bit-identical to the scalar path
        // at any block size or thread count. Outer bounds and floored
        // sweeps keep the per-point simplex fan-out.
        let batchable = protocols.iter().all(|&p| sc.sum_request(p).is_batchable());
        let plan = sc.faults;
        let flat: Vec<Result<SumRateSolution, CoreError>> = if batchable {
            let bsz = sc.effective_block_size();
            let nblocks = npoints.div_ceil(bsz);
            let worker = || {
                (
                    SolveCtx::new(),
                    PointBlock::new(),
                    vec![Vec::<SolveOutcome>::new(); nproto],
                )
            };
            let blocks: Vec<Vec<Result<SumRateSolution, CoreError>>> =
                par::try_par_map_range(threads, nblocks, worker, |(ctx, block, outs), j| {
                    let lo = j * bsz;
                    let hi = (lo + bsz).min(npoints);
                    // Chaos pre-check: a block containing a poisoned
                    // point falls back to per-point scalar solves, which
                    // are bitwise-equal to the lane kernels for its
                    // healthy blockmates — so the poison is contained to
                    // its own point at any block size. The fate of point
                    // `i` is a pure function of `(plan, i)`, never of the
                    // block it happens to share.
                    if !plan.is_empty() {
                        let poisoned = (lo..hi).any(|i| {
                            let _scope = FaultScope::enter(
                                &plan,
                                faults::scope_token(plan.seed(), i as u64),
                            );
                            faults::site_fated(FaultSite::KernelPoison)
                        });
                        if poisoned {
                            let mut flat = Vec::with_capacity((hi - lo) * nproto);
                            for i in lo..hi {
                                let _scope = FaultScope::enter(
                                    &plan,
                                    faults::scope_token(plan.seed(), i as u64),
                                );
                                for &p in protocols.iter() {
                                    flat.push(classify_solve(sc.solve_point_with(
                                        &sc.points[i].net,
                                        p,
                                        ctx,
                                    ))?);
                                }
                            }
                            return Ok(flat);
                        }
                    }
                    block.clear();
                    for pt in &sc.points[lo..hi] {
                        block.push_net(&pt.net);
                    }
                    block.compute_caps();
                    for (pi, &p) in protocols.iter().enumerate() {
                        outs[pi].clear();
                        ctx.solve_block(block, sc.sum_request(p), &mut outs[pi])?;
                    }
                    // Interleave back to the (point, protocol)-major order
                    // the assembly loop expects.
                    let mut flat = Vec::with_capacity((hi - lo) * nproto);
                    for i in 0..hi - lo {
                        for lane in outs.iter() {
                            flat.push(Ok(lane[i].sum_rate_solution()));
                        }
                    }
                    Ok(flat)
                })?;
            blocks.into_iter().flatten().collect()
        } else {
            // Fan the flat `point × protocol` grid across the workers — no
            // per-point collection vector, so the only steady-state
            // allocations are the chunked result buffers the scheduler
            // amortises across many solves.
            par::try_par_map_range(threads, npoints * nproto, SolveCtx::new, |ctx, k| {
                let point = k / nproto;
                let net = &sc.points[point].net;
                // Scope keyed per *point* (not per flat item), so every
                // protocol of a poisoned point shares one fate.
                let _scope =
                    FaultScope::enter(&plan, faults::scope_token(plan.seed(), point as u64));
                classify_solve(sc.solve_point_with(net, sc.protocols[k % nproto], ctx))
            })?
        };

        let mut series: ProtocolMap<ProtocolSeries> = ProtocolMap::new();
        for &p in &protocols {
            series.insert(
                p,
                ProtocolSeries {
                    protocol: p,
                    solutions: Vec::with_capacity(npoints),
                },
            );
        }
        let mut winners = Vec::with_capacity(npoints);
        let mut skipped = Vec::new();
        let mut flat = flat.into_iter();
        for i in 0..npoints {
            let x = sc.points[i].x;
            let mut winner: Option<(Protocol, f64)> = None;
            let mut any_skip = false;
            for &p in &protocols {
                let outcome = flat.next().expect("one result per (point, protocol)");
                let sol = match outcome {
                    Ok(sol) => sol,
                    Err(error) => {
                        any_skip = true;
                        skipped.push(SkippedSolve {
                            index: i,
                            x,
                            protocol: p,
                            error,
                        });
                        SumRateSolution {
                            protocol: p,
                            sum_rate: f64::NAN,
                            ra: f64::NAN,
                            rb: f64::NAN,
                            durations: crate::constraint::PhaseVec::new(),
                        }
                    }
                };
                if sol.sum_rate.is_finite() && winner.is_none_or(|(_, best)| sol.sum_rate > best) {
                    winner = Some((p, sol.sum_rate));
                }
                series
                    .get_mut(p)
                    .expect("series pre-populated")
                    .solutions
                    .push(sol);
            }
            match winner {
                Some((w, _)) => winners.push(Some(w)),
                None if any_skip => winners.push(None),
                None => {
                    return Err(CoreError::NoFiniteOptimum {
                        context: format!("{} sweep at x = {x}", sc.x_name),
                    })
                }
            }
        }
        Ok(SweepResult {
            x_name: sc.x_name.clone(),
            xs: sc.points.iter().map(|p| p.x).collect(),
            protocols,
            series,
            winners,
            skipped,
        })
    }

    /// Evaluates one [`ComparisonResult`] per grid point, points fanned
    /// across the worker pool.
    ///
    /// # Errors
    ///
    /// Propagates LP failures.
    pub fn comparisons(&mut self) -> Result<Vec<ComparisonResult>, CoreError> {
        let threads = self.thread_count();
        let sc = &self.scenario;
        par::try_par_map_range(threads, sc.points.len(), SolveCtx::new, |ctx, i| {
            let GridPoint { x, net } = sc.points[i];
            let mut solutions = ProtocolMap::new();
            for &p in &sc.protocols {
                solutions.insert(p, sc.solve_point_with(&net, p, ctx)?);
            }
            Ok(ComparisonResult {
                x,
                net,
                protocols: sc.protocols.clone(),
                solutions,
            })
        })
    }

    /// Evaluates the comparison at the scenario's single grid point.
    ///
    /// # Errors
    ///
    /// Propagates LP failures.
    ///
    /// # Panics
    ///
    /// Panics if the scenario has more than one grid point (use
    /// [`Evaluator::comparisons`] for grids).
    pub fn compare(&mut self) -> Result<ComparisonResult, CoreError> {
        assert_eq!(
            self.scenario.points.len(),
            1,
            "compare() is for single-point scenarios; use comparisons() on a grid"
        );
        Ok(self.comparisons()?.remove(0))
    }

    /// Traces the rate-region boundaries of every selected protocol at
    /// every grid point, for both the inner and (where distinct) outer
    /// bounds.
    ///
    /// For capacity protocols (DT, MABC — Theorem 2) only the capacity
    /// region is traced, labelled with [`Bound::Inner`].
    ///
    /// # Errors
    ///
    /// Propagates LP failures from boundary tracing.
    pub fn regions(&mut self, resolution: usize) -> Result<Vec<RegionResult>, CoreError> {
        let threads = self.thread_count();
        let sc = &self.scenario;
        par::try_par_map_range(
            threads,
            sc.points.len(),
            || (),
            |(), i| {
                let GridPoint { x, net } = sc.points[i];
                let mut traces = Vec::new();
                for &p in &sc.protocols {
                    let capacity = net.capacity_region(p).is_some();
                    let sides: &[Bound] = if capacity {
                        &[Bound::Inner]
                    } else {
                        &[Bound::Inner, Bound::Outer]
                    };
                    for &b in sides {
                        let region = net.region(p, b);
                        traces.push(RegionTrace {
                            protocol: p,
                            bound: b,
                            is_capacity: capacity,
                            name: region.name.clone(),
                            boundary: region.boundary(resolution)?,
                        });
                    }
                }
                Ok(RegionResult { x, net, traces })
            },
        )
    }

    /// Runs the scenario's fading study: per grid point and trial, one
    /// i.i.d. fade per link (shared across protocols, so per-fade dominance
    /// relations survive into the samples), then the optimal sum rate of
    /// each protocol on the faded network.
    ///
    /// Grid points use decorrelated seed streams derived from the spec's
    /// master seed; a single-point scenario reproduces the classic
    /// `McConfig`-style stream of `trial_stream(seed, trial)` exactly.
    ///
    /// LP failures on a faded draw count as rate 0 (a fade so deep the
    /// protocol is unusable), matching the Monte-Carlo convention of
    /// `bcc-sim`.
    ///
    /// # Panics
    ///
    /// Panics if the scenario has no fading spec (see
    /// [`Scenario::fading`]).
    pub fn outage(&mut self) -> Result<OutageResult, CoreError> {
        let (spec, samples) = self.fading_sum_rate_samples();
        let sc = &self.scenario;
        Ok(OutageResult {
            x_name: sc.x_name.clone(),
            xs: sc.points.iter().map(|p| p.x).collect(),
            spec,
            protocols: sc.protocols.clone(),
            samples,
        })
    }

    /// The shared Monte-Carlo core of [`Evaluator::outage`] and
    /// [`Evaluator::dmt`]: per grid point and trial, one i.i.d. fade per
    /// link, then every selected protocol's optimal sum rate on the faded
    /// network, fanned across the worker pool as a flat `point × trial`
    /// grid. Returns `samples[protocol][point][trial]`.
    pub(crate) fn fading_sum_rate_samples(&self) -> (FadingSpec, ProtocolMap<Vec<Vec<f64>>>) {
        assert!(
            self.scenario.rate_floor.is_none(),
            "rate_floor applies to sweep()/comparisons() only; fading studies \
             (outage/dmt/allocation) solve the unconstrained optimum, so a floored \
             scenario would silently misreport outage — remove the floor"
        );
        let spec = self
            .scenario
            .fading
            .expect("scenario has no fading model; attach one with Scenario::fading(...)");
        let threads = self.thread_count();
        let sc = &self.scenario;
        let protocols = &sc.protocols;
        let points = &sc.points;
        let single = points.len() == 1;
        let trials = spec.trials;

        // Fan the full `point × trial` grid across the workers in
        // [`PointBlock`]-sized chunks (a single-point 10k-trial study must
        // still parallelise). Flat index `k` is point `k / trials`, trial
        // `k % trials`; the per-trial seed streams make every index
        // independent of its blockmates, so the blocked fan-out is exactly
        // the serial loop flattened — bit-identical at any block size or
        // thread count. Fading always solves the unconstrained inner
        // optimum (the assert above), so every draw takes the closed-form
        // lane kernels.
        let total = points.len() * trials;
        let bsz = sc.effective_block_size();
        let nblocks = total.div_ceil(bsz);
        let nproto = protocols.len();
        let worker = || {
            (
                SolveCtx::new(),
                PointBlock::new(),
                vec![Vec::<SolveOutcome>::new(); nproto],
            )
        };
        let blocks: Vec<Vec<Vec<f64>>> =
            par::par_map_range(threads, nblocks, worker, |(ctx, block, outs), j| {
                let lo = j * bsz;
                let hi = (lo + bsz).min(total);
                block.clear();
                for k in lo..hi {
                    let GridPoint { net, .. } = points[k / trials];
                    // Keep the classic single-point stream bit-compatible
                    // with `McConfig::trial_rng`; decorrelate additional
                    // points.
                    let point_seed = if single {
                        spec.seed
                    } else {
                        mix_seed(spec.seed, (k / trials) as u64)
                    };
                    let mut rng = trial_stream(point_seed, (k % trials) as u64);
                    let faded_net = net.with_state(net.state().faded(
                        spec.model.sample_power(&mut rng),
                        spec.model.sample_power(&mut rng),
                        spec.model.sample_power(&mut rng),
                    ));
                    block.push_net(&faded_net);
                }
                block.compute_caps();
                for (pi, &p) in protocols.iter().enumerate() {
                    outs[pi].clear();
                    ctx.solve_block(block, SolveRequest::sum_rate(p), &mut outs[pi])
                        .expect("closed-form batch solve is infallible");
                }
                (0..hi - lo)
                    .map(|i| outs.iter().map(|lane| lane[i].value).collect())
                    .collect()
            });
        let rows = blocks.into_iter().flatten();

        let mut samples: ProtocolMap<Vec<Vec<f64>>> = ProtocolMap::new();
        for &p in protocols {
            samples.insert(p, vec![Vec::with_capacity(trials); points.len()]);
        }
        for (k, row) in rows.enumerate() {
            for (&p, rate) in protocols.iter().zip(row) {
                samples.get_mut(p).expect("pre-populated")[k / trials].push(rate);
            }
        }
        (spec, samples)
    }
}

/// One protocol's column of a [`SweepResult`]: the full
/// [`SumRateSolution`] at every grid point.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtocolSeries {
    /// The protocol this series belongs to.
    pub protocol: Protocol,
    /// One solution per grid point, in grid order.
    pub solutions: Vec<SumRateSolution>,
}

impl ProtocolSeries {
    /// The optimal sum rates, in grid order.
    pub fn sum_rates(&self) -> Vec<f64> {
        self.solutions.iter().map(|s| s.sum_rate).collect()
    }
}

/// One LP solve that [`Evaluator::sweep`] recorded as skipped instead of
/// aborting the batch: `protocol`'s program at grid point `index` was
/// infeasible. Its slot in the protocol's series holds a NaN placeholder.
#[derive(Debug, Clone, PartialEq)]
pub struct SkippedSolve {
    /// Grid-point index into [`SweepResult::xs`].
    pub index: usize,
    /// The swept coordinate at that index.
    pub x: f64,
    /// The protocol whose LP was infeasible there.
    pub protocol: Protocol,
    /// The recorded solver error.
    pub error: CoreError,
}

/// The output of [`Evaluator::sweep`]: per-protocol series over the grid,
/// keyed by [`Protocol`].
#[derive(Debug, Clone, PartialEq)]
pub struct SweepResult {
    /// Human-readable name of the swept parameter.
    pub x_name: String,
    /// The grid coordinates, in sweep order.
    pub xs: Vec<f64>,
    /// The protocols evaluated, in evaluation order.
    protocols: Vec<Protocol>,
    series: ProtocolMap<ProtocolSeries>,
    winners: Vec<Option<Protocol>>,
    skipped: Vec<SkippedSolve>,
}

impl SweepResult {
    /// Number of grid points.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// `true` if the sweep is empty (never produced by an evaluator).
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// The protocols evaluated, in evaluation order.
    pub fn protocols(&self) -> &[Protocol] {
        &self.protocols
    }

    /// The series of `protocol`, or `None` if it was not part of the
    /// scenario. Constant-time: series are keyed by protocol, not searched.
    pub fn series(&self, protocol: Protocol) -> Option<&ProtocolSeries> {
        self.series.get(protocol)
    }

    /// The series of `protocol` as `(x, sum_rate)` pairs — the shape the
    /// plotting crate consumes.
    ///
    /// # Panics
    ///
    /// Panics if `protocol` was not part of the scenario.
    pub fn series_points(&self, protocol: Protocol) -> Vec<(f64, f64)> {
        let s = self
            .series
            .get(protocol)
            .unwrap_or_else(|| panic!("{protocol} was not part of the scenario"));
        self.xs
            .iter()
            .zip(&s.solutions)
            .map(|(&x, sol)| (x, sol.sum_rate))
            .collect()
    }

    /// The sum-rate-optimal protocol at grid point `i` (ties go to the
    /// earlier protocol in evaluation order).
    ///
    /// # Panics
    ///
    /// Panics if every protocol at point `i` was skipped as infeasible
    /// (use [`SweepResult::try_winner`] on sweeps with skips).
    pub fn winner(&self, i: usize) -> Protocol {
        self.winners[i].unwrap_or_else(|| {
            panic!("every protocol at grid point {i} was skipped as infeasible; see skipped()")
        })
    }

    /// The sum-rate-optimal protocol at grid point `i`, or `None` if every
    /// protocol there was skipped as infeasible.
    pub fn try_winner(&self, i: usize) -> Option<Protocol> {
        self.winners[i]
    }

    /// The winning protocol at every grid point (`None` where every
    /// protocol was skipped as infeasible).
    pub fn winners(&self) -> &[Option<Protocol>] {
        &self.winners
    }

    /// The LP solves recorded as skipped (infeasible points) instead of
    /// aborting the batch — empty for every well-posed Gaussian scenario.
    pub fn skipped(&self) -> &[SkippedSolve] {
        &self.skipped
    }

    /// `true` if every `(protocol, grid point)` solve succeeded.
    pub fn is_complete(&self) -> bool {
        self.skipped.is_empty()
    }

    /// Grid coordinates where `protocol` is strictly better than every
    /// other evaluated protocol by more than `margin`.
    ///
    /// # Panics
    ///
    /// Panics if `protocol` was not part of the scenario.
    pub fn strict_wins(&self, protocol: Protocol, margin: f64) -> Vec<f64> {
        let own = self
            .series
            .get(protocol)
            .unwrap_or_else(|| panic!("{protocol} was not part of the scenario"));
        (0..self.len())
            .filter(|&i| {
                let mine = own.solutions[i].sum_rate;
                self.protocols.iter().filter(|&&p| p != protocol).all(|&p| {
                    let other = self.series.get(p).expect("evaluated").solutions[i].sum_rate;
                    mine > other + margin
                })
            })
            .map(|i| self.xs[i])
            .collect()
    }
}

/// The output of [`Evaluator::compare`]: every protocol's optimum at one
/// grid point, keyed by [`Protocol`].
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonResult {
    /// The grid coordinate this comparison was evaluated at.
    pub x: f64,
    /// The network it was evaluated on.
    pub net: GaussianNetwork,
    protocols: Vec<Protocol>,
    solutions: ProtocolMap<SumRateSolution>,
}

impl ComparisonResult {
    /// The solution of `protocol`, or `None` if it was not evaluated.
    pub fn get(&self, protocol: Protocol) -> Option<&SumRateSolution> {
        self.solutions.get(protocol)
    }

    /// Iterates the solutions in evaluation order.
    pub fn solutions(&self) -> impl Iterator<Item = &SumRateSolution> {
        self.protocols.iter().filter_map(|&p| self.solutions.get(p))
    }

    /// The winning protocol's solution, ignoring non-finite optima.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NoFiniteOptimum`] if every evaluated optimum is
    /// NaN or infinite (a numerically broken batch must not panic a whole
    /// sweep).
    pub fn best(&self) -> Result<&SumRateSolution, CoreError> {
        self.solutions()
            .filter(|s| s.sum_rate.is_finite())
            .max_by(|a, b| {
                a.sum_rate
                    .partial_cmp(&b.sum_rate)
                    .expect("finite rates compare")
            })
            .ok_or_else(|| CoreError::NoFiniteOptimum {
                context: format!("comparison at x = {}", self.x),
            })
    }

    /// The finite solutions ranked best-first.
    pub fn ranked(&self) -> Vec<&SumRateSolution> {
        let mut v: Vec<&SumRateSolution> = self
            .solutions()
            .filter(|s| s.sum_rate.is_finite())
            .collect();
        v.sort_by(|a, b| {
            b.sum_rate
                .partial_cmp(&a.sum_rate)
                .expect("finite rates compare")
        });
        v
    }
}

/// One traced rate-region boundary inside a [`RegionResult`].
#[derive(Debug, Clone, PartialEq)]
pub struct RegionTrace {
    /// The protocol.
    pub protocol: Protocol,
    /// Which side of the bound the trace follows.
    pub bound: Bound,
    /// `true` if inner = outer for this protocol (Theorem 2 capacity).
    pub is_capacity: bool,
    /// The region's descriptive name (e.g. `"TDBC outer"`).
    pub name: String,
    /// Boundary points, `R_b` swept from 0 to its maximum.
    pub boundary: Vec<RatePoint>,
}

/// The output of [`Evaluator::regions`] at one grid point: boundary traces
/// of every selected protocol's bounds.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionResult {
    /// The grid coordinate.
    pub x: f64,
    /// The network the regions belong to.
    pub net: GaussianNetwork,
    /// All traces, in (protocol, inner-then-outer) order.
    pub traces: Vec<RegionTrace>,
}

impl RegionResult {
    /// The trace of `(protocol, bound)`, if present. For capacity
    /// protocols the single capacity trace is stored under
    /// [`Bound::Inner`].
    pub fn get(&self, protocol: Protocol, bound: Bound) -> Option<&RegionTrace> {
        self.traces
            .iter()
            .find(|t| t.protocol == protocol && t.bound == bound)
    }

    /// Rebuilds the [`RateRegion`] of one trace (for membership queries).
    pub fn region(&self, protocol: Protocol, bound: Bound) -> RateRegion {
        self.net.region(protocol, bound)
    }
}

/// The output of [`Evaluator::outage`]: per-protocol, per-grid-point
/// Monte-Carlo sum-rate samples under quasi-static fading, with ergodic
/// and ε-outage summaries.
#[derive(Debug, Clone, PartialEq)]
pub struct OutageResult {
    /// Human-readable name of the swept parameter.
    pub x_name: String,
    /// The grid coordinates.
    pub xs: Vec<f64>,
    /// The fading specification the samples were drawn under.
    pub spec: FadingSpec,
    protocols: Vec<Protocol>,
    /// `samples[protocol][point][trial]`.
    samples: ProtocolMap<Vec<Vec<f64>>>,
}

impl OutageResult {
    /// The protocols evaluated, in evaluation order.
    pub fn protocols(&self) -> &[Protocol] {
        &self.protocols
    }

    /// The raw per-trial sum rates of `protocol` at grid point `i`.
    ///
    /// # Panics
    ///
    /// Panics if `protocol` was not part of the scenario or `i` is out of
    /// range.
    pub fn samples(&self, protocol: Protocol, i: usize) -> &[f64] {
        &self.samples.get(protocol).expect("protocol evaluated")[i]
    }

    /// Consumes the result, returning `protocol`'s per-grid-point sample
    /// vectors without copying (for adapters that only need one
    /// protocol's raw samples).
    ///
    /// # Panics
    ///
    /// Panics if `protocol` was not part of the scenario.
    pub fn into_samples(mut self, protocol: Protocol) -> Vec<Vec<f64>> {
        self.samples
            .get_mut(protocol)
            .map(std::mem::take)
            .expect("protocol evaluated")
    }

    /// Ergodic (fading-averaged) sum rate of `protocol` at each grid
    /// point, as `(x, mean)` pairs.
    pub fn ergodic_series(&self, protocol: Protocol) -> Vec<(f64, f64)> {
        self.xs
            .iter()
            .enumerate()
            .map(|(i, &x)| {
                let s = self.samples(protocol, i);
                (x, s.iter().sum::<f64>() / s.len() as f64)
            })
            .collect()
    }

    /// The ε-outage sum rate of `protocol` at each grid point: the largest
    /// rate supported in all but an `eps` fraction of fades. `None`
    /// entries sit below the Monte-Carlo resolution floor `1/trials`.
    pub fn outage_rate_series(&self, protocol: Protocol, eps: f64) -> Vec<(f64, Option<f64>)> {
        self.xs
            .iter()
            .enumerate()
            .map(|(i, &x)| (x, self.outage_rate(protocol, i, eps)))
            .collect()
    }

    /// The ε-outage sum rate of `protocol` at grid point `i`, or `None`
    /// when `eps` sits below the resolution floor `1/trials` (the
    /// empirical quantile there is just the sample minimum — Monte Carlo
    /// cannot certify it).
    ///
    /// # Panics
    ///
    /// Panics if `eps` is outside `[0, 1]`.
    pub fn outage_rate(&self, protocol: Protocol, i: usize, eps: f64) -> Option<f64> {
        assert!(
            (0.0..=1.0).contains(&eps),
            "eps must lie in [0, 1], got {eps}"
        );
        let profile = self.profile(protocol, i);
        if eps < 1.0 / profile.len() as f64 {
            None
        } else {
            Some(profile.quantile(eps))
        }
    }

    /// The empirical sum-rate distribution of `protocol` at grid point `i`
    /// (build once, then query any number of quantiles/probabilities).
    pub fn profile(&self, protocol: Protocol, i: usize) -> bcc_num::stats::Ecdf {
        bcc_num::stats::Ecdf::new(self.samples(protocol, i).to_vec())
    }

    /// `P[optimal sum rate < target]` for `protocol` at grid point `i`.
    ///
    /// `None` means **unresolved**: no trial fell below a positive target,
    /// so the estimate sits under the `1/trials` floor (the deep-outage
    /// evaluator resolves those cells). A non-positive target resolves to
    /// `Some(0.0)` exactly.
    pub fn outage_probability(&self, protocol: Protocol, i: usize, target: f64) -> Option<f64> {
        if target <= 0.0 {
            return Some(0.0);
        }
        let s = self.samples(protocol, i);
        let hits = s.iter().filter(|&&v| v < target).count();
        if hits == 0 {
            None
        } else {
            Some(hits as f64 / s.len() as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_channel::ChannelState;

    fn fig4_net(p_db: f64) -> GaussianNetwork {
        GaussianNetwork::from_db(Db::new(p_db), Db::new(-7.0), Db::new(0.0), Db::new(5.0))
    }

    #[test]
    fn sweep_matches_pointwise_max_sum_rate() {
        let base = fig4_net(0.0);
        let powers: Vec<f64> = vec![-5.0, 0.0, 5.0, 10.0];
        let sweep = Scenario::power_sweep_db(base, powers.clone())
            .build()
            .sweep()
            .unwrap();
        assert_eq!(sweep.len(), 4);
        for (i, &p) in powers.iter().enumerate() {
            let net = base.with_power_db(Db::new(p));
            for proto in Protocol::ALL {
                let direct = net.max_sum_rate(proto).unwrap();
                let batched = &sweep.series(proto).unwrap().solutions[i];
                assert!(
                    (direct.sum_rate - batched.sum_rate).abs() < 1e-12,
                    "{proto} at {p} dB: {} vs {}",
                    direct.sum_rate,
                    batched.sum_rate
                );
                assert_eq!(direct.durations.len(), batched.durations.len());
            }
        }
    }

    #[test]
    fn winner_is_max_of_series() {
        let sweep = Scenario::power_sweep_db(fig4_net(0.0), vec![0.0, 10.0, 20.0])
            .build()
            .sweep()
            .unwrap();
        for i in 0..sweep.len() {
            let w = sweep.winner(i);
            let best = sweep.series(w).unwrap().solutions[i].sum_rate;
            for p in Protocol::ALL {
                assert!(best >= sweep.series(p).unwrap().solutions[i].sum_rate - 1e-12);
            }
        }
    }

    #[test]
    fn protocol_subset_only_evaluates_selection() {
        let sweep = Scenario::power_sweep_db(fig4_net(0.0), vec![0.0, 10.0])
            .protocols([Protocol::Mabc, Protocol::Tdbc])
            .build()
            .sweep()
            .unwrap();
        assert!(sweep.series(Protocol::Hbc).is_none());
        assert!(sweep.series(Protocol::Mabc).is_some());
        assert_eq!(sweep.protocols(), &[Protocol::Mabc, Protocol::Tdbc]);
        // Winners restricted to the selection.
        for i in 0..sweep.len() {
            assert!(matches!(sweep.winner(i), Protocol::Mabc | Protocol::Tdbc));
        }
    }

    #[test]
    fn position_sweep_mirror_symmetric() {
        let sweep = Scenario::relay_position_sweep(15.0, 3.0, vec![0.25, 0.5, 0.75])
            .unwrap()
            .build()
            .sweep()
            .unwrap();
        for p in Protocol::ALL {
            let s = sweep.series(p).unwrap().sum_rates();
            assert!((s[0] - s[2]).abs() < 1e-8, "{p} not mirror symmetric");
        }
        // Boundary positions are validation errors now, not panics:
        let err = Scenario::relay_position_sweep(15.0, 3.0, vec![0.5, 1.0]).unwrap_err();
        assert!(err.is_invalid_input(), "got {err}");
        assert!(Scenario::relay_position_sweep(15.0, 3.0, Vec::new())
            .unwrap_err()
            .is_invalid_input());
    }

    #[test]
    fn outer_bound_sweep_dominates_inner_sweep() {
        let xs = vec![0.0, 10.0];
        let inner = Scenario::power_sweep_db(fig4_net(0.0), xs.clone())
            .build()
            .sweep()
            .unwrap();
        let outer = Scenario::power_sweep_db(fig4_net(0.0), xs)
            .bound(Bound::Outer)
            .build()
            .sweep()
            .unwrap();
        for p in Protocol::ALL {
            let i = inner.series(p).unwrap().sum_rates();
            let o = outer.series(p).unwrap().sum_rates();
            for k in 0..i.len() {
                assert!(o[k] >= i[k] - 1e-7, "{p}: outer {} < inner {}", o[k], i[k]);
            }
        }
    }

    #[test]
    fn compare_matches_direct_evaluation() {
        let net = fig4_net(10.0);
        let cmp = Scenario::at(net).build().compare().unwrap();
        for p in Protocol::ALL {
            let direct = net.max_sum_rate(p).unwrap().sum_rate;
            assert!((cmp.get(p).unwrap().sum_rate - direct).abs() < 1e-12);
        }
        let best = cmp.best().unwrap();
        assert!(matches!(
            best.protocol,
            Protocol::Hbc | Protocol::DirectTransmission
        ));
        let ranked = cmp.ranked();
        assert_eq!(ranked.len(), 4);
        assert!(ranked.windows(2).all(|w| w[0].sum_rate >= w[1].sum_rate));
    }

    #[test]
    fn regions_trace_capacity_once_and_bounds_twice() {
        let results = Scenario::at(fig4_net(10.0)).build().regions(16).unwrap();
        assert_eq!(results.len(), 1);
        let r = &results[0];
        assert!(r.get(Protocol::Mabc, Bound::Inner).unwrap().is_capacity);
        assert!(r.get(Protocol::Mabc, Bound::Outer).is_none());
        assert!(!r.get(Protocol::Hbc, Bound::Inner).unwrap().is_capacity);
        assert!(r.get(Protocol::Hbc, Bound::Outer).is_some());
        // DT + MABC capacity traces, TDBC/HBC inner + outer.
        assert_eq!(r.traces.len(), 6);
        for t in &r.traces {
            assert_eq!(t.boundary.len(), 17, "{}: n+1 boundary points", t.name);
        }
    }

    #[test]
    fn outage_samples_preserve_per_fade_dominance() {
        let out = Scenario::at(fig4_net(10.0))
            .rayleigh(60, 42)
            .build()
            .outage()
            .unwrap();
        let hbc = out.samples(Protocol::Hbc, 0);
        let mabc = out.samples(Protocol::Mabc, 0);
        let tdbc = out.samples(Protocol::Tdbc, 0);
        assert_eq!(hbc.len(), 60);
        for i in 0..hbc.len() {
            assert!(hbc[i] >= mabc[i] - 1e-8, "trial {i}");
            assert!(hbc[i] >= tdbc[i] - 1e-8, "trial {i}");
        }
        // Quantiles are monotone in eps (both resolve at 60 trials).
        let q10 = out.outage_rate(Protocol::Hbc, 0, 0.10).unwrap();
        let q50 = out.outage_rate(Protocol::Hbc, 0, 0.50).unwrap();
        assert!(q10 <= q50);
        // Probability inverts rate approximately.
        assert!(out.outage_probability(Protocol::Hbc, 0, q50).unwrap() <= 0.55);
    }

    #[test]
    fn outage_without_fading_has_zero_spread() {
        let out = Scenario::at(fig4_net(5.0))
            .fading(FadingModel::None, 8, 1)
            .build()
            .outage()
            .unwrap();
        let exact = fig4_net(5.0).max_sum_rate(Protocol::Mabc).unwrap().sum_rate;
        for &s in out.samples(Protocol::Mabc, 0) {
            assert!((s - exact).abs() < 1e-9);
        }
        let erg = out.ergodic_series(Protocol::Mabc);
        assert!((erg[0].1 - exact).abs() < 1e-9);
    }

    #[test]
    fn networks_axis_escape_hatch() {
        let pts = vec![
            (
                1.0,
                GaussianNetwork::new(1.0, ChannelState::new(0.5, 1.0, 1.0)),
            ),
            (
                2.0,
                GaussianNetwork::new(2.0, ChannelState::new(0.5, 1.0, 1.0)),
            ),
        ];
        let mut ev = Scenario::networks("custom", pts).build();
        assert_eq!(ev.x_name(), "custom");
        let sweep = ev.sweep().unwrap();
        assert_eq!(sweep.xs, vec![1.0, 2.0]);
        // More power, no smaller sum rate.
        for p in Protocol::ALL {
            let s = sweep.series(p).unwrap().sum_rates();
            assert!(s[1] >= s[0] - 1e-9);
        }
    }

    #[test]
    fn power_split_sweep_uniform_point_matches_symmetric_network() {
        // relay share 1/3 at balance 1/2 is the paper's symmetric setting.
        let state = ChannelState::new(1.0, 2.0, 2.0);
        let sweep = Scenario::power_split_sweep(state, 30.0, vec![1.0 / 3.0, 0.6])
            .build()
            .sweep()
            .unwrap();
        let classic = GaussianNetwork::new(10.0, state);
        for p in Protocol::ALL {
            let direct = classic.max_sum_rate(p).unwrap().sum_rate;
            let batched = sweep.series(p).unwrap().sum_rates()[0];
            assert!(
                (direct - batched).abs() < 1e-12,
                "{p}: {direct} vs {batched}"
            );
        }
        // Starving the terminals (60% at the relay) cannot help DT.
        let dt = sweep
            .series(Protocol::DirectTransmission)
            .unwrap()
            .sum_rates();
        assert!(dt[1] < dt[0]);
    }

    #[test]
    fn rate_floor_below_optimum_changes_nothing() {
        let scenario = Scenario::power_sweep_db(fig4_net(0.0), vec![5.0, 10.0]);
        let free = scenario.clone().build().sweep().unwrap();
        let floored = scenario.rate_floor(1e-6, 1e-6).build().sweep().unwrap();
        assert!(floored.is_complete());
        for p in Protocol::ALL {
            let a = free.series(p).unwrap().sum_rates();
            let b = floored.series(p).unwrap().sum_rates();
            for k in 0..a.len() {
                assert!((a[k] - b[k]).abs() < 1e-9, "{p} point {k}");
            }
        }
    }

    #[test]
    fn infeasible_rate_floor_is_recorded_not_fatal() {
        // At −20 dB nothing supports a 2-bit-per-user floor; at 25 dB the
        // relay protocols do. The batch must survive and record the skips.
        let sweep = Scenario::power_sweep_db(fig4_net(0.0), vec![-20.0, 25.0])
            .rate_floor(2.0, 2.0)
            .build()
            .sweep()
            .unwrap();
        assert!(!sweep.is_complete());
        assert_eq!(sweep.try_winner(0), None, "all protocols skipped");
        assert!(sweep.try_winner(1).is_some(), "high power is feasible");
        for p in Protocol::ALL {
            let s = &sweep.series(p).unwrap().solutions[0];
            assert!(s.sum_rate.is_nan(), "{p} placeholder");
        }
        for skip in sweep.skipped() {
            assert!(skip.error.is_infeasible());
        }
    }

    #[test]
    fn seeding_policy_is_deterministic_and_decorrelated() {
        assert_eq!(mix_seed(1, 0), mix_seed(1, 0));
        assert_ne!(mix_seed(1, 0), mix_seed(1, 1));
        assert_ne!(mix_seed(1, 0), mix_seed(2, 0));
        let a = Scenario::at(fig4_net(0.0))
            .rayleigh(20, 9)
            .build()
            .outage()
            .unwrap();
        let b = Scenario::at(fig4_net(0.0))
            .rayleigh(20, 9)
            .build()
            .outage()
            .unwrap();
        assert_eq!(a.samples(Protocol::Hbc, 0), b.samples(Protocol::Hbc, 0));
    }

    #[test]
    fn thread_override_does_not_change_results() {
        let scenario = Scenario::power_sweep_db(fig4_net(0.0), (-4..=12).map(f64::from));
        let serial = scenario.clone().threads(1).build().sweep().unwrap();
        for threads in [2, 3, 8] {
            let par = scenario.clone().threads(threads).build().sweep().unwrap();
            assert_eq!(serial, par, "sweep differs at {threads} threads");
        }
        assert!(serial.is_complete());
        assert!(serial.skipped().is_empty());
        assert_eq!(serial.try_winner(0), Some(serial.winner(0)));
    }

    #[test]
    fn outage_thread_override_bit_identical() {
        let scenario = Scenario::at(fig4_net(10.0)).rayleigh(40, 77);
        let serial = scenario.clone().threads(1).build().outage().unwrap();
        let par = scenario.threads(4).build().outage().unwrap();
        assert_eq!(serial, par);
    }

    #[test]
    fn classify_solve_skips_only_infeasible() {
        let sol = SumRateSolution {
            protocol: Protocol::Mabc,
            sum_rate: 1.0,
            ra: 0.5,
            rb: 0.5,
            durations: crate::constraint::PhaseVec::from([0.5, 0.5]),
        };
        assert!(matches!(classify_solve(Ok(sol)), Ok(Ok(_))));
        // Infeasibility is recorded, not propagated...
        let infeasible = CoreError::Lp {
            context: "test".into(),
            source: bcc_lp::LpError::Infeasible,
        };
        assert!(matches!(classify_solve(Err(infeasible)), Ok(Err(e)) if e.is_infeasible()));
        // ...while solver breakdowns still abort the batch.
        let unbounded = CoreError::Lp {
            context: "test".into(),
            source: bcc_lp::LpError::Unbounded,
        };
        assert!(classify_solve(Err(unbounded)).is_err());
        let no_opt = CoreError::NoFiniteOptimum {
            context: "test".into(),
        };
        assert!(classify_solve(Err(no_opt)).is_err());
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_rejected() {
        let _ = Scenario::at(fig4_net(0.0)).threads(0);
    }

    #[test]
    fn strict_wins_respects_margin() {
        let sweep = Scenario::relay_position_sweep(15.0, 3.0, (1..=19).map(|k| k as f64 / 20.0))
            .unwrap()
            .build()
            .sweep()
            .unwrap();
        let wins = sweep.strict_wins(Protocol::Hbc, 1e-6);
        assert!(!wins.is_empty(), "HBC strict band must exist at P = 15 dB");
        assert!(wins.iter().all(|&d| (0.2..=0.8).contains(&d)));
        // An absurd margin kills every win.
        assert!(sweep.strict_wins(Protocol::Hbc, 100.0).is_empty());
    }
}
