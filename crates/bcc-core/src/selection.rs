//! Relay selection — a multi-relay extension of the paper's model.
//!
//! The paper notes (Section I) that coded bidirectional cooperation
//! extends to multiple relays [Wu–Chou–Kung]. The simplest such extension
//! with decode-and-forward protocols is **selection**: per channel
//! realisation, run the chosen protocol through the single best relay.
//! With full CSI this is optimal among single-relay strategies and already
//! captures the *selection diversity* gain under fading — which the
//! Monte-Carlo experiments quantify.

use crate::error::CoreError;
use crate::gaussian::{GaussianNetwork, SumRateSolution};
use crate::protocol::Protocol;
use bcc_channel::ChannelState;

/// A set of candidate relays for the same terminal pair.
///
/// Each candidate contributes its own `(G_ar, G_br)` pair; `G_ab` is a
/// property of the terminals and shared.
#[derive(Debug, Clone, PartialEq)]
pub struct RelayCandidates {
    gab: f64,
    relays: Vec<(f64, f64)>,
}

/// The outcome of a selection decision.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectionResult {
    /// Index of the winning relay in the candidate list.
    pub relay_index: usize,
    /// The winning relay's sum-rate solution.
    pub solution: SumRateSolution,
}

impl RelayCandidates {
    /// Creates a candidate set.
    ///
    /// # Panics
    ///
    /// Panics if `relays` is empty or any gain is invalid (propagated from
    /// [`ChannelState::new`]).
    pub fn new(gab: f64, relays: Vec<(f64, f64)>) -> Self {
        assert!(!relays.is_empty(), "need at least one candidate relay");
        for &(gar, gbr) in &relays {
            // Validate eagerly so selection can't panic mid-optimisation.
            let _ = ChannelState::new(gab, gar, gbr);
        }
        RelayCandidates { gab, relays }
    }

    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.relays.len()
    }

    /// `true` if there are no candidates (unreachable after construction).
    pub fn is_empty(&self) -> bool {
        self.relays.is_empty()
    }

    /// The network through candidate `i` at transmit power `power`.
    pub fn network(&self, i: usize, power: f64) -> GaussianNetwork {
        let (gar, gbr) = self.relays[i];
        GaussianNetwork::new(power, ChannelState::new(self.gab, gar, gbr))
    }

    /// Selects the relay maximising `protocol`'s optimal sum rate.
    ///
    /// # Errors
    ///
    /// Propagates LP failures from any candidate evaluation.
    pub fn select(&self, protocol: Protocol, power: f64) -> Result<SelectionResult, CoreError> {
        self.select_with(protocol, power, &mut crate::kernel::SolveCtx::new())
    }

    /// [`RelayCandidates::select`] solving every candidate through a
    /// caller-owned [`SolveCtx`](crate::kernel::SolveCtx) — the batch form
    /// for Monte-Carlo selection studies, where one context per worker
    /// makes the per-fade candidate scan allocation-free.
    ///
    /// # Errors
    ///
    /// Propagates LP failures from any candidate evaluation.
    pub fn select_with(
        &self,
        protocol: Protocol,
        power: f64,
        ctx: &mut crate::kernel::SolveCtx,
    ) -> Result<SelectionResult, CoreError> {
        let mut best: Option<SelectionResult> = None;
        for i in 0..self.relays.len() {
            let req = crate::kernel::SolveRequest::sum_rate(protocol);
            let sol = ctx
                .solve_one(&self.network(i, power), req)?
                .sum_rate_solution();
            let better = match &best {
                None => true,
                Some(b) => sol.sum_rate > b.solution.sum_rate,
            };
            if better {
                best = Some(SelectionResult {
                    relay_index: i,
                    solution: sol,
                });
            }
        }
        Ok(best.expect("non-empty candidate set"))
    }

    /// Applies independent fading factors to every candidate's relay links
    /// (and a common factor to the shared direct link), returning a new
    /// candidate set — one quasi-static realisation of the multi-relay
    /// network.
    ///
    /// # Panics
    ///
    /// Panics if `fades.len() != self.len()` or any factor is invalid.
    pub fn faded(&self, direct_fade: f64, fades: &[(f64, f64)]) -> Self {
        assert_eq!(fades.len(), self.relays.len(), "one fade pair per relay");
        let relays = self
            .relays
            .iter()
            .zip(fades)
            .map(|(&(gar, gbr), &(fa, fb))| (gar * fa, gbr * fb))
            .collect();
        RelayCandidates::new(self.gab * direct_fade, relays)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn candidates() -> RelayCandidates {
        RelayCandidates::new(0.2, vec![(1.0, 3.16), (0.5, 0.5), (3.16, 1.0)])
    }

    #[test]
    fn selection_at_least_as_good_as_each_candidate() {
        let c = candidates();
        for proto in Protocol::RELAYED {
            let sel = c.select(proto, 10.0).unwrap();
            for i in 0..c.len() {
                let single = c.network(i, 10.0).max_sum_rate(proto).unwrap();
                assert!(
                    sel.solution.sum_rate >= single.sum_rate - 1e-9,
                    "{proto}: selection lost to fixed relay {i}"
                );
            }
        }
    }

    #[test]
    fn symmetric_candidates_tie_by_sum_rate() {
        // Relays 0 and 2 are mirror images; their sum rates coincide, so
        // whichever is chosen, the value matches.
        let c = candidates();
        let sel = c.select(Protocol::Mabc, 10.0).unwrap();
        let v0 = c
            .network(0, 10.0)
            .max_sum_rate(Protocol::Mabc)
            .unwrap()
            .sum_rate;
        let v2 = c
            .network(2, 10.0)
            .max_sum_rate(Protocol::Mabc)
            .unwrap()
            .sum_rate;
        assert!((v0 - v2).abs() < 1e-9);
        assert!((sel.solution.sum_rate - v0).abs() < 1e-9);
        assert_ne!(sel.relay_index, 1, "the weak middle relay can never win");
    }

    #[test]
    fn fading_can_flip_the_selection() {
        let c = candidates();
        // Deep fade on relay 0/2's links, boost on relay 1.
        let faded = c.faded(1.0, &[(0.01, 0.01), (10.0, 10.0), (0.01, 0.01)]);
        let sel = faded.select(Protocol::Mabc, 10.0).unwrap();
        assert_eq!(sel.relay_index, 1, "boosted relay must win after the fade");
    }

    #[test]
    fn single_candidate_degenerates_to_fixed_relay() {
        let c = RelayCandidates::new(0.2, vec![(1.0, 1.0)]);
        let sel = c.select(Protocol::Hbc, 5.0).unwrap();
        let direct = c.network(0, 5.0).max_sum_rate(Protocol::Hbc).unwrap();
        assert_eq!(sel.relay_index, 0);
        assert!((sel.solution.sum_rate - direct.sum_rate).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one candidate")]
    fn empty_candidates_rejected() {
        let _ = RelayCandidates::new(0.2, vec![]);
    }
}
