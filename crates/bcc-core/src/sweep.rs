//! Structured parameter sweeps — the inner loops of Figs. 3 and 4 as
//! reusable, tested utilities.
//!
//! Each sweep evaluates every protocol's optimal sum rate across one
//! scalar parameter and returns a tidy [`SweepResult`] that the plotting
//! crate and the experiment binaries consume. Keeping the loops here (with
//! tests) rather than inline in the binaries means the figures and the
//! test-suite exercise the *same* code path.

use crate::comparison::SumRateComparison;
use crate::error::CoreError;
use crate::gaussian::GaussianNetwork;
use crate::protocol::Protocol;
use bcc_channel::topology::LineNetwork;
use bcc_num::Db;

/// One row of a sweep: the parameter value and each protocol's optimum.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRow {
    /// The swept parameter value (dB, position, … per the sweep's doc).
    pub x: f64,
    /// Optimal sum rates in [`Protocol::ALL`] order.
    pub sum_rates: Vec<f64>,
    /// The winning protocol at this point.
    pub winner: Protocol,
}

/// The output of a sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepResult {
    /// Human-readable name of the swept parameter.
    pub x_name: String,
    /// The rows, in sweep order.
    pub rows: Vec<SweepRow>,
}

impl SweepResult {
    /// The series of one protocol as `(x, sum_rate)` pairs.
    pub fn series(&self, protocol: Protocol) -> Vec<(f64, f64)> {
        let idx = Protocol::ALL
            .iter()
            .position(|&p| p == protocol)
            .expect("protocol in ALL");
        self.rows.iter().map(|r| (r.x, r.sum_rates[idx])).collect()
    }

    /// Parameter intervals (as grid-point values) where `protocol` is
    /// strictly better than every other protocol by more than `margin`.
    pub fn strict_wins(&self, protocol: Protocol, margin: f64) -> Vec<f64> {
        let idx = Protocol::ALL
            .iter()
            .position(|&p| p == protocol)
            .expect("protocol in ALL");
        self.rows
            .iter()
            .filter(|r| {
                let own = r.sum_rates[idx];
                r.sum_rates
                    .iter()
                    .enumerate()
                    .all(|(j, &v)| j == idx || own > v + margin)
            })
            .map(|r| r.x)
            .collect()
    }
}

fn evaluate(x: f64, net: &GaussianNetwork) -> Result<SweepRow, CoreError> {
    let cmp = SumRateComparison::evaluate(net)?;
    Ok(SweepRow {
        x,
        sum_rates: cmp.solutions.iter().map(|s| s.sum_rate).collect(),
        winner: cmp.best().protocol,
    })
}

/// Sweeps the transmit power (dB) at fixed gains — the E-X1 axis.
///
/// # Errors
///
/// Propagates LP failures.
///
/// # Panics
///
/// Panics if `powers_db` is empty.
pub fn power_sweep(net: &GaussianNetwork, powers_db: &[f64]) -> Result<SweepResult, CoreError> {
    assert!(!powers_db.is_empty(), "need at least one power point");
    let rows = powers_db
        .iter()
        .map(|&p| evaluate(p, &net.with_power_db(Db::new(p))))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(SweepResult {
        x_name: "power [dB]".into(),
        rows,
    })
}

/// Sweeps symmetric relay gains `G_ar = G_br` (dB) at fixed power and
/// direct gain — Fig. 3 sweep A.
///
/// # Errors
///
/// Propagates LP failures.
///
/// # Panics
///
/// Panics if `gains_db` is empty.
pub fn symmetric_gain_sweep(
    power_db: f64,
    gab_db: f64,
    gains_db: &[f64],
) -> Result<SweepResult, CoreError> {
    assert!(!gains_db.is_empty(), "need at least one gain point");
    let rows = gains_db
        .iter()
        .map(|&g| {
            let net = GaussianNetwork::from_db(
                Db::new(power_db),
                Db::new(gab_db),
                Db::new(g),
                Db::new(g),
            );
            evaluate(g, &net)
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(SweepResult {
        x_name: "relay gain [dB]".into(),
        rows,
    })
}

/// Sweeps the relay position on the a–b line with path-loss exponent
/// `gamma` — Fig. 3 sweep B.
///
/// # Errors
///
/// Propagates LP failures.
///
/// # Panics
///
/// Panics if `positions` is empty or contains values outside `(0, 1)`
/// (propagated from [`LineNetwork::new`]).
pub fn position_sweep(
    power_db: f64,
    gamma: f64,
    positions: &[f64],
) -> Result<SweepResult, CoreError> {
    assert!(!positions.is_empty(), "need at least one position");
    let rows = positions
        .iter()
        .map(|&d| {
            let net = GaussianNetwork::new(
                Db::new(power_db).to_linear(),
                LineNetwork::new(d, gamma).channel_state(),
            );
            evaluate(d, &net)
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(SweepResult {
        x_name: "relay position".into(),
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_channel::ChannelState;

    fn fig4_net() -> GaussianNetwork {
        GaussianNetwork::new(
            1.0,
            ChannelState::new(0.19952623149688797, 1.0, 3.1622776601683795),
        )
    }

    #[test]
    fn power_sweep_shapes() {
        let r = power_sweep(&fig4_net(), &[-5.0, 0.0, 5.0, 10.0]).unwrap();
        assert_eq!(r.rows.len(), 4);
        for row in &r.rows {
            assert_eq!(row.sum_rates.len(), Protocol::ALL.len());
        }
        // Monotone in power for every protocol.
        for proto in Protocol::ALL {
            let s = r.series(proto);
            for w in s.windows(2) {
                assert!(w[1].1 >= w[0].1 - 1e-9, "{proto} not monotone");
            }
        }
    }

    #[test]
    fn winner_matches_max_column() {
        let r = power_sweep(&fig4_net(), &[0.0, 10.0, 20.0]).unwrap();
        for row in &r.rows {
            let idx = Protocol::ALL.iter().position(|&p| p == row.winner).unwrap();
            let best = row.sum_rates.iter().cloned().fold(f64::MIN, f64::max);
            assert!((row.sum_rates[idx] - best).abs() < 1e-12);
        }
    }

    #[test]
    fn position_sweep_mirror_symmetric() {
        let r = position_sweep(15.0, 3.0, &[0.25, 0.5, 0.75]).unwrap();
        // Sum rates at d and 1-d coincide for every protocol (swap
        // symmetry of the line network).
        for (i, proto) in Protocol::ALL.iter().enumerate() {
            let _ = proto;
            assert!(
                (r.rows[0].sum_rates[i] - r.rows[2].sum_rates[i]).abs() < 1e-8,
                "asymmetry at protocol index {i}"
            );
        }
    }

    #[test]
    fn hbc_strict_band_detected_in_position_sweep() {
        // Fig. 3 sweep B showed HBC strictly winning around d = 0.3/0.7.
        let positions: Vec<f64> = (1..=19).map(|k| k as f64 / 20.0).collect();
        let r = position_sweep(15.0, 3.0, &positions).unwrap();
        let wins = r.strict_wins(Protocol::Hbc, 1e-6);
        assert!(!wins.is_empty(), "HBC strict band must exist at P = 15 dB");
        assert!(wins.iter().all(|&d| (0.2..=0.8).contains(&d)));
    }

    #[test]
    fn symmetric_gain_sweep_tdbc_catches_dt() {
        // At G_ar = G_br = G_ab (0 dB), TDBC degenerates to DT exactly.
        let r = symmetric_gain_sweep(15.0, 0.0, &[0.0]).unwrap();
        let dt = r.series(Protocol::DirectTransmission)[0].1;
        let tdbc = r.series(Protocol::Tdbc)[0].1;
        assert!((dt - tdbc).abs() < 1e-8);
    }

    #[test]
    fn dt_flat_in_relay_gain() {
        let r = symmetric_gain_sweep(15.0, 0.0, &[0.0, 10.0, 20.0]).unwrap();
        let s = r.series(Protocol::DirectTransmission);
        assert!((s[0].1 - s[2].1).abs() < 1e-9, "DT must ignore relay gains");
    }
}
