//! Deprecated sweep shims.
//!
//! The free functions that used to hold the Fig. 3 / Fig. 4 inner loops
//! now delegate to the batch API: build the equivalent
//! [`Scenario`](crate::scenario) and run its
//! [`Evaluator`](crate::scenario::Evaluator). Only the function
//! *signatures* are preserved — the result type changed with the API
//! redesign: the old row-based `SweepResult` (`rows`, `SweepRow`,
//! `series() -> Vec<(f64, f64)>`) is gone, and these wrappers return the
//! new [`scenario::SweepResult`](crate::scenario::SweepResult) (series
//! keyed by `Protocol`; use `series_points` for `(x, y)` pairs). New code
//! should construct scenarios directly — the builder composes with
//! protocol subsets, bound selection and fading, which these wrappers
//! cannot express.

use crate::error::CoreError;
use crate::gaussian::GaussianNetwork;
use crate::scenario::Scenario;
pub use crate::scenario::{ProtocolSeries, SweepResult};

/// Sweeps the transmit power (dB) at fixed gains — the E-X1 axis.
///
/// # Errors
///
/// Propagates LP failures.
///
/// # Panics
///
/// Panics if `powers_db` is empty.
#[deprecated(
    since = "0.2.0",
    note = "use `Scenario::power_sweep_db(net, powers).build().sweep()`"
)]
pub fn power_sweep(net: &GaussianNetwork, powers_db: &[f64]) -> Result<SweepResult, CoreError> {
    assert!(!powers_db.is_empty(), "need at least one power point");
    Scenario::power_sweep_db(*net, powers_db.iter().copied())
        .build()
        .sweep()
}

/// Sweeps symmetric relay gains `G_ar = G_br` (dB) at fixed power and
/// direct gain — Fig. 3 sweep A.
///
/// # Errors
///
/// Propagates LP failures.
///
/// # Panics
///
/// Panics if `gains_db` is empty.
#[deprecated(
    since = "0.2.0",
    note = "use `Scenario::symmetric_gain_sweep_db(power, gab, gains).build().sweep()`"
)]
pub fn symmetric_gain_sweep(
    power_db: f64,
    gab_db: f64,
    gains_db: &[f64],
) -> Result<SweepResult, CoreError> {
    assert!(!gains_db.is_empty(), "need at least one gain point");
    Scenario::symmetric_gain_sweep_db(power_db, gab_db, gains_db.iter().copied())
        .build()
        .sweep()
}

/// Sweeps the relay position on the a–b line with path-loss exponent
/// `gamma` — Fig. 3 sweep B.
///
/// # Errors
///
/// Propagates LP failures.
///
/// # Panics
///
/// Panics if `positions` is empty or contains values outside `(0, 1)`
/// (propagated from [`bcc_channel::topology::LineNetwork::new`]).
#[deprecated(
    since = "0.2.0",
    note = "use `Scenario::relay_position_sweep(power, gamma, positions).build().sweep()`"
)]
pub fn position_sweep(
    power_db: f64,
    gamma: f64,
    positions: &[f64],
) -> Result<SweepResult, CoreError> {
    assert!(!positions.is_empty(), "need at least one position");
    Scenario::relay_position_sweep(power_db, gamma, positions.iter().copied())
        .build()
        .sweep()
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::protocol::Protocol;
    use bcc_channel::ChannelState;

    fn fig4_net() -> GaussianNetwork {
        GaussianNetwork::new(
            1.0,
            ChannelState::new(0.19952623149688797, 1.0, 3.1622776601683795),
        )
    }

    #[test]
    fn power_sweep_shim_matches_scenario() {
        let grid = [-5.0, 0.0, 5.0, 10.0];
        let shim = power_sweep(&fig4_net(), &grid).unwrap();
        let direct = Scenario::power_sweep_db(fig4_net(), grid)
            .build()
            .sweep()
            .unwrap();
        assert_eq!(shim, direct);
        // Monotone in power for every protocol.
        for proto in Protocol::ALL {
            let s = shim.series_points(proto);
            for w in s.windows(2) {
                assert!(w[1].1 >= w[0].1 - 1e-9, "{proto} not monotone");
            }
        }
    }

    #[test]
    fn symmetric_gain_sweep_tdbc_catches_dt() {
        // At G_ar = G_br = G_ab (0 dB), TDBC degenerates to DT exactly.
        let r = symmetric_gain_sweep(15.0, 0.0, &[0.0]).unwrap();
        let dt = r.series_points(Protocol::DirectTransmission)[0].1;
        let tdbc = r.series_points(Protocol::Tdbc)[0].1;
        assert!((dt - tdbc).abs() < 1e-8);
    }

    #[test]
    fn dt_flat_in_relay_gain() {
        let r = symmetric_gain_sweep(15.0, 0.0, &[0.0, 10.0, 20.0]).unwrap();
        let s = r.series_points(Protocol::DirectTransmission);
        assert!((s[0].1 - s[2].1).abs() < 1e-9, "DT must ignore relay gains");
    }

    #[test]
    fn position_sweep_shim_finds_hbc_band() {
        // Fig. 3 sweep B showed HBC strictly winning around d = 0.3/0.7.
        let positions: Vec<f64> = (1..=19).map(|k| k as f64 / 20.0).collect();
        let r = position_sweep(15.0, 3.0, &positions).unwrap();
        let wins = r.strict_wins(Protocol::Hbc, 1e-6);
        assert!(!wins.is_empty(), "HBC strict band must exist at P = 15 dB");
    }
}
