//! Closed-form deep-outage tails for the Gaussian fading bounds.
//!
//! Plain Monte-Carlo outage estimation bottoms out at the resolution floor
//! `1/trials`; the importance-sampled estimator in [`crate::deep`] goes far
//! below it, but needs independent cross-checks. This module derives what the
//! paper's bounds admit in closed form when the fade powers are i.i.d.
//! Gamma-distributed (Rayleigh is `Gamma(1, 1)`, Nakagami-m is
//! `Gamma(m, 1/m)` — both unit mean):
//!
//! * **DT** (direct transmission) — the sum rate is
//!   `C(max(P_a, P_b) · G_ab · x_ab)`, a monotone map of the single fade
//!   `x_ab`, so the outage probability is **exact**:
//!   `P(m, m·g)` with `g = (2^R − 1) / (max(P_a, P_b) · G_ab)` and `P` the
//!   regularized lower incomplete gamma function.
//! * **MABC** (Theorem 2) — closed-form **lower and upper bounds**. The lower
//!   bound comes from the per-link sum caps `S ≤ C(max(P_a, P_r)·G_ar·x_ar)`
//!   and `S ≤ C(max(P_b, P_r)·G_br·x_br)` (outage whenever either link fades
//!   below its threshold); the upper bound from the equal-duration
//!   achievable schedule plus a union bound. Both decay with diversity
//!   order `m` (one fade must fail).
//! * **TDBC** (Theorems 3/4) — **lower bound** by 1-D quadrature of the
//!   two-receiver cut-set event over the direct fade `x_ab`, and a
//!   closed-form **upper bound** from three achievable sub-schedules
//!   (`Δ = (1,0,0)`, `(0,1,0)`, `(⅓,⅓,⅓)`) intersected exactly. Both decay
//!   with diversity order `2m` — two independent fades must fail — which is
//!   the `d(r) = 2(1 − r)`-type behaviour of cooperative diversity
//!   (Azarian/El Gamal/Schniter, cs/0506018) at `m = 1`.
//! * **HBC** — no usable closed form is implemented; callers fall back to
//!   importance sampling.
//!
//! All bounds are valid for both [`Bound::Inner`] and [`Bound::Outer`]
//! outage probabilities: lower bounds are derived from outer-bound cut
//! events (outer ≥ inner rate ⇒ both outage probabilities dominate the cut
//! event), upper bounds from inner-bound achievable schedules (inner ≤ outer
//! rate ⇒ both outage probabilities are dominated by the schedule's outage).
//!
//! [`Bound::Inner`]: crate::protocol::Bound::Inner
//! [`Bound::Outer`]: crate::protocol::Bound::Outer

use crate::gaussian::GaussianNetwork;
use crate::protocol::Protocol;
use bcc_channel::fading::FadingModel;
use bcc_num::quadrature::adaptive_simpson;
use bcc_num::special::{gamma_p, gamma_q, ln_gamma};

/// How an [`AnalyticTail`] value should be interpreted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TailForm {
    /// `lo == hi` is the exact outage probability.
    Exact,
    /// `lo`/`hi` bracket the outage probability; the truth lies between.
    Bounds,
}

/// An analytic outage-tail value: either exact or a `[lo, hi]` sandwich.
///
/// Produced by [`analytic_outage`]; consumed by the deep-outage evaluator
/// (exact fast path) and the golden cross-check tests (sandwich assertions).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalyticTail {
    /// Whether the tail is exact or a two-sided bound.
    pub form: TailForm,
    /// Lower bound on (or exact value of) the outage probability.
    pub lo: f64,
    /// Upper bound on (or exact value of) the outage probability.
    pub hi: f64,
}

impl AnalyticTail {
    fn exact_value(p: f64) -> Self {
        AnalyticTail {
            form: TailForm::Exact,
            lo: p,
            hi: p,
        }
    }

    fn bounds(lo: f64, hi: f64) -> Self {
        let lo = lo.clamp(0.0, 1.0);
        let hi = hi.clamp(lo, 1.0);
        AnalyticTail {
            form: TailForm::Bounds,
            lo,
            hi,
        }
    }

    /// The exact probability, when the tail is exact.
    pub fn exact(&self) -> Option<f64> {
        match self.form {
            TailForm::Exact => Some(self.lo),
            TailForm::Bounds => None,
        }
    }

    /// Whether `p` lies inside the (slightly widened) bracket.
    pub fn contains(&self, p: f64, tol: f64) -> bool {
        p >= self.lo - tol && p <= self.hi + tol
    }
}

/// CDF of the unit-mean Gamma fade power with shape `m`: `P[X ≤ x]`.
///
/// Returns `None` when `model` has no Gamma-distributed power
/// ([`FadingModel::Rician`] and [`FadingModel::None`]).
pub fn fade_power_cdf(model: FadingModel, x: f64) -> Option<f64> {
    model.power_shape().map(|m| cdf_m(m, x))
}

/// Survival function of the unit-mean Gamma fade power: `P[X > x]`.
///
/// Evaluated directly via the upper regularized gamma function, so it keeps
/// relative precision in the deep tail where `1 − cdf` would cancel.
pub fn fade_power_survival(model: FadingModel, x: f64) -> Option<f64> {
    model.power_shape().map(|m| sf_m(m, x))
}

fn cdf_m(m: f64, x: f64) -> f64 {
    if x <= 0.0 {
        0.0
    } else if x == f64::INFINITY {
        1.0
    } else if m == 1.0 {
        -(-x).exp_m1()
    } else {
        gamma_p(m, m * x)
    }
}

fn sf_m(m: f64, x: f64) -> f64 {
    if x <= 0.0 {
        1.0
    } else if x == f64::INFINITY {
        0.0
    } else if m == 1.0 {
        (-x).exp()
    } else {
        gamma_q(m, m * x)
    }
}

/// Fade threshold `tau / (p · g)`, infinite when the link carries no power.
fn thr(tau: f64, p: f64, g: f64) -> f64 {
    let denom = p * g;
    if denom > 0.0 {
        tau / denom
    } else {
        f64::INFINITY
    }
}

/// `2^x − 1` without cancellation for small `x`.
fn exp2_m1(x: f64) -> f64 {
    (x * std::f64::consts::LN_2).exp_m1()
}

/// Analytic outage tail of `protocol`'s sum rate at `target` bits/use.
///
/// The network's gains are the *mean* gains; the fade powers multiplying
/// them are i.i.d. unit-mean Gamma draws per link, as produced by
/// [`FadingModel::sample_power`]. Returns `None` when no analytic form is
/// implemented (HBC) or the model's power is not Gamma (Rician, no fading).
///
/// `target <= 0` is exactly never in outage (rates are non-negative).
pub fn analytic_outage(
    net: &GaussianNetwork,
    protocol: Protocol,
    model: FadingModel,
    target: f64,
) -> Option<AnalyticTail> {
    assert!(
        target.is_finite(),
        "outage target must be finite, got {target}"
    );
    let m = model.power_shape()?;
    if target <= 0.0 {
        return Some(AnalyticTail::exact_value(0.0));
    }
    let powers = net.powers();
    let (pa, pb, pr) = (powers.p_a(), powers.p_b(), powers.p_r());
    let state = net.state();
    let (gab, gar, gbr) = (state.gab(), state.gar(), state.gbr());
    let tau = exp2_m1(target);
    match protocol {
        Protocol::DirectTransmission => {
            // Sum rate = C(max(pa, pb) · gab · x_ab): outage iff the single
            // fade drops below the threshold.
            Some(AnalyticTail::exact_value(cdf_m(
                m,
                thr(tau, pa.max(pb), gab),
            )))
        }
        Protocol::Mabc => {
            let lo = 1.0 - sf_m(m, thr(tau, pa.max(pr), gar)) * sf_m(m, thr(tau, pb.max(pr), gbr));
            let tau2 = exp2_m1(2.0 * target);
            let hi_a = 2.0 * cdf_m(m, thr(tau2, pa, gar)) + cdf_m(m, thr(tau2, pr, gbr));
            let hi_b = 2.0 * cdf_m(m, thr(tau2, pb, gbr)) + cdf_m(m, thr(tau2, pr, gar));
            Some(AnalyticTail::bounds(lo, hi_a.min(hi_b)))
        }
        Protocol::Tdbc => {
            let lo = tdbc_cut_lower(m, tau, pa, pb, gab, gar, gbr);
            let tau3 = exp2_m1(3.0 * target);
            let a1 = thr(tau, pa, gar);
            let a2 = thr(tau, pa, gab);
            let b1 = thr(tau, pb, gbr);
            let b2 = thr(tau, pb, gab);
            // Two interchangeable relay-path events from the Δ = (⅓,⅓,⅓)
            // schedule; intersect with whichever gives the tighter bound.
            let hi_e3 =
                tdbc_schedule_upper(m, a1, a2, b1, b2, thr(tau3, pa, gar), thr(tau3, pr, gbr));
            let hi_e4 =
                tdbc_schedule_upper(m, a1, a2, b1, b2, thr(tau3, pr, gar), thr(tau3, pb, gbr));
            Some(AnalyticTail::bounds(lo, hi_e3.min(hi_e4)))
        }
        Protocol::Hbc => None,
    }
}

/// `P[two-receiver cut at a < R  AND  two-receiver cut at b < R]`.
///
/// The Theorem-4 cuts are `C(p_a(G_ar·x_ar + G_ab·v))` and
/// `C(p_b(G_br·x_br + G_ab·v))` with `v = x_ab`; conditioning on `v` the two
/// events are independent, leaving a 1-D integral over the Gamma density of
/// `v`. Integrated in `u = v^m` to remove the `v^{m−1}` endpoint singularity
/// for shapes `m < 1`.
fn tdbc_cut_lower(m: f64, tau: f64, pa: f64, pb: f64, gab: f64, gar: f64, gbr: f64) -> f64 {
    // Conditional factor: P[x · gain · p < budget] for one uplink.
    let cond = |budget: f64, p: f64, gain: f64| -> f64 {
        if budget <= 0.0 || p <= 0.0 {
            return if budget > 0.0 { 1.0 } else { 0.0 };
        }
        cdf_m(m, thr(budget, p, gain))
    };
    if gab == 0.0 || pa.max(pb) == 0.0 {
        // No direct link (or no terminal power): the cut events decouple.
        return cond(tau, pa, gar) * cond(tau, pb, gbr);
    }
    // Both budgets positive requires v < vmax.
    let vmax = tau / (gab * pa.max(pb));
    let vcap = vmax.min(80.0 / m);
    if vcap <= 0.0 {
        return 0.0;
    }
    let g = |v: f64| cond(tau - pa * gab * v, pa, gar) * cond(tau - pb * gab * v, pb, gbr);
    // ∫ f_m(v) g(v) dv with f_m(v) = m^m v^{m−1} e^{−mv} / Γ(m), in u = v^m:
    // v^{m−1} dv = du / m.
    let scale = (m * m.ln() - ln_gamma(m)).exp() / m;
    let upper = vcap.powf(m);
    let integrand = |u: f64| {
        let v = u.powf(1.0 / m);
        (-m * v).exp() * g(v)
    };
    // Absolute tolerance scaled to the integrand's magnitude so deep tails
    // (lo ~ 1e-12) keep relative accuracy.
    let mut peak = 0.0_f64;
    for i in 0..=32 {
        peak = peak.max(integrand(upper * f64::from(i) / 32.0));
    }
    if peak == 0.0 {
        return 0.0;
    }
    let tol = (peak * upper * 1e-10).max(f64::MIN_POSITIVE);
    (scale * adaptive_simpson(integrand, 0.0, upper, tol, 48)).clamp(0.0, 1.0)
}

/// `P[E1 ∩ E2 ∩ E_relay]` for the TDBC achievable sub-schedules, in closed
/// form.
///
/// * `E1 = {x_ar < a1} ∪ {v < a2}` — outage of the `Δ = (1,0,0)` schedule
///   (`S ≥ min(c_a_ar, c_a_ab)`).
/// * `E2 = {x_br < b1} ∪ {v < b2}` — outage of `Δ = (0,1,0)`.
/// * `E_relay = {x_ar < r_ar} ∪ {x_br < r_br}` — outage of `Δ = (⅓,⅓,⅓)`.
///
/// `(x_ar, x_br, v)` are independent, so conditioning on which of the three
/// `v`-regions `[0, min(a2,b2))`, `[min, max)`, `[max, ∞)` holds reduces the
/// probability to products of fade CDFs via inclusion–exclusion.
fn tdbc_schedule_upper(m: f64, a1: f64, a2: f64, b1: f64, b2: f64, r_ar: f64, r_br: f64) -> f64 {
    let f = |x: f64| cdf_m(m, x);
    let m1 = a2.min(b2);
    let m2 = a2.max(b2);
    // v < m1: E1 and E2 hold automatically.
    let p1 = f(r_ar) + f(r_br) - f(r_ar) * f(r_br);
    // m1 <= v < m2: the schedule with the larger direct threshold still
    // holds automatically; the other needs its uplink fade to fail.
    let p2 = if a2 <= b2 {
        f(a1.min(r_ar)) + f(a1) * f(r_br) - f(a1.min(r_ar)) * f(r_br)
    } else {
        f(b1.min(r_br)) + f(b1) * f(r_ar) - f(b1.min(r_br)) * f(r_ar)
    };
    // v >= m2: both uplink fades must fail.
    let p3 = f(a1.min(r_ar)) * f(b1) + f(a1) * f(b1.min(r_br)) - f(a1.min(r_ar)) * f(b1.min(r_br));
    let w1 = f(m1);
    let w2 = f(m2) - w1;
    let w3 = 1.0 - f(m2);
    (w1 * p1 + w2 * p2 + w3 * p3).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{SolveCtx, SolveRequest};
    use bcc_channel::ChannelState;
    use bcc_num::approx_eq;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fig4_net(p_db: f64) -> GaussianNetwork {
        GaussianNetwork::new(
            10f64.powf(p_db / 10.0),
            ChannelState::new(0.19952623149688797, 1.0, 3.1622776601683795),
        )
    }

    #[test]
    fn dt_tail_matches_rayleigh_closed_form() {
        for p_db in [0.0, 10.0, 20.0] {
            let net = fig4_net(p_db);
            let snr = net.powers().p_a() * net.state().gab();
            let target = 0.5 * (1.0 + snr).log2();
            let g = ((1.0 + snr).powf(0.5) - 1.0) / snr;
            let exact = 1.0 - (-g).exp();
            let tail = analytic_outage(
                &net,
                Protocol::DirectTransmission,
                FadingModel::Rayleigh,
                target,
            )
            .unwrap();
            assert_eq!(tail.form, TailForm::Exact);
            assert!(approx_eq(tail.exact().unwrap(), exact, 1e-12));
        }
    }

    #[test]
    fn dt_tail_nakagami_uses_regularized_gamma() {
        let net = fig4_net(10.0);
        let model = FadingModel::nakagami(2.5);
        let target = 1.0;
        let snr = net.powers().p_a().max(net.powers().p_b()) * net.state().gab();
        let g = (2f64.powf(target) - 1.0) / snr;
        let tail = analytic_outage(&net, Protocol::DirectTransmission, model, target).unwrap();
        assert!(approx_eq(
            tail.exact().unwrap(),
            gamma_p(2.5, 2.5 * g),
            1e-12
        ));
    }

    #[test]
    fn zero_target_is_exactly_never_in_outage() {
        let net = fig4_net(5.0);
        for protocol in [Protocol::DirectTransmission, Protocol::Mabc, Protocol::Tdbc] {
            let tail = analytic_outage(&net, protocol, FadingModel::Rayleigh, 0.0).unwrap();
            assert_eq!(tail.exact(), Some(0.0));
        }
    }

    #[test]
    fn hbc_and_non_gamma_models_have_no_analytic_tail() {
        let net = fig4_net(5.0);
        assert!(analytic_outage(&net, Protocol::Hbc, FadingModel::Rayleigh, 1.0).is_none());
        assert!(
            analytic_outage(&net, Protocol::Mabc, FadingModel::Rician { k: 3.0 }, 1.0).is_none()
        );
        assert!(analytic_outage(&net, Protocol::Tdbc, FadingModel::None, 1.0).is_none());
    }

    #[test]
    fn bounds_are_ordered_and_monotone_in_target() {
        let net = fig4_net(12.0);
        for model in [FadingModel::Rayleigh, FadingModel::nakagami(2.0)] {
            for protocol in [Protocol::Mabc, Protocol::Tdbc] {
                let mut prev_lo = 0.0;
                let mut prev_hi = 0.0;
                for step in 1..=8 {
                    let target = 0.5 * f64::from(step);
                    let tail = analytic_outage(&net, protocol, model, target).unwrap();
                    assert_eq!(tail.form, TailForm::Bounds);
                    assert!(tail.lo <= tail.hi, "{protocol:?} lo > hi at {target}");
                    assert!(tail.lo >= prev_lo - 1e-12, "{protocol:?} lo not monotone");
                    assert!(tail.hi >= prev_hi - 1e-12, "{protocol:?} hi not monotone");
                    prev_lo = tail.lo;
                    prev_hi = tail.hi;
                }
            }
        }
    }

    #[test]
    fn tdbc_lower_bound_degenerates_without_direct_link() {
        let net = GaussianNetwork::new(10.0, ChannelState::new(0.0, 1.0, 2.0));
        let target = 1.0;
        let tau = 2f64.powf(target) - 1.0;
        let powers = net.powers();
        let expect = (1.0 - (-tau / (powers.p_a() * 1.0)).exp())
            * (1.0 - (-tau / (powers.p_b() * 2.0)).exp());
        let tail = analytic_outage(&net, Protocol::Tdbc, FadingModel::Rayleigh, target).unwrap();
        assert!(approx_eq(tail.lo, expect, 1e-12));
    }

    #[test]
    fn tdbc_cut_quadrature_matches_monte_carlo() {
        // The 1-D quadrature must reproduce a direct MC estimate of the
        // joint cut event, including the singular-density shape m = 0.6.
        for (model, seed) in [
            (FadingModel::Rayleigh, 0x7A11_0001_u64),
            (FadingModel::nakagami(0.6), 0x7A11_0002),
            (FadingModel::nakagami(2.5), 0x7A11_0003),
        ] {
            let net = fig4_net(6.0);
            let powers = net.powers();
            let (pa, pb) = (powers.p_a(), powers.p_b());
            let state = net.state();
            let target = 1.2;
            let tau = 2f64.powf(target) - 1.0;
            let lo = analytic_outage(&net, Protocol::Tdbc, model, target)
                .unwrap()
                .lo;
            let mut rng = StdRng::seed_from_u64(seed);
            let trials = 200_000u32;
            let mut hits = 0u32;
            for _ in 0..trials {
                let v = model.sample_power(&mut rng);
                let x_ar = model.sample_power(&mut rng);
                let x_br = model.sample_power(&mut rng);
                let cut_a = pa * (state.gar() * x_ar + state.gab() * v);
                let cut_b = pb * (state.gbr() * x_br + state.gab() * v);
                if cut_a < tau && cut_b < tau {
                    hits += 1;
                }
            }
            let p_hat = f64::from(hits) / f64::from(trials);
            let sigma = (lo * (1.0 - lo) / f64::from(trials)).sqrt();
            assert!(
                (p_hat - lo).abs() < 4.0 * sigma + 1e-9,
                "{model:?}: quadrature {lo} vs MC {p_hat} (sigma {sigma})"
            );
        }
    }

    /// Event-level validation of every bound derivation against the actual
    /// LP kernel: the lower-bound event must imply outage, and outage must
    /// imply the upper-bound events, sample by sample.
    #[test]
    fn bound_events_bracket_kernel_outage_samplewise() {
        let mut ctx = SolveCtx::new();
        for (p_db, target) in [(4.0, 0.8), (10.0, 1.5), (16.0, 2.2)] {
            let net = fig4_net(p_db);
            let powers = net.powers();
            let (pa, pb, pr) = (powers.p_a(), powers.p_b(), powers.p_r());
            let state = net.state();
            let (gab, gar, gbr) = (state.gab(), state.gar(), state.gbr());
            let tau = 2f64.powf(target) - 1.0;
            let tau2 = 2f64.powf(2.0 * target) - 1.0;
            let tau3 = 2f64.powf(3.0 * target) - 1.0;
            let model = FadingModel::Rayleigh;
            let mut rng = StdRng::seed_from_u64(0xE4E7_0000 ^ p_db.to_bits());
            for _ in 0..600 {
                let v = model.sample_power(&mut rng);
                let x_ar = model.sample_power(&mut rng);
                let x_br = model.sample_power(&mut rng);
                let faded = net.with_state(state.faded(v, x_ar, x_br));

                let mabc = ctx
                    .solve_one(&faded, SolveRequest::sum_rate(Protocol::Mabc))
                    .unwrap()
                    .value;
                let mabc_lo_event =
                    x_ar < thr(tau, pa.max(pr), gar) || x_br < thr(tau, pb.max(pr), gbr);
                if mabc_lo_event {
                    assert!(mabc < target + 1e-9, "MABC lo event but rate {mabc}");
                }
                if mabc < target - 1e-9 {
                    assert!(
                        x_ar < thr(tau2, pa, gar) || x_br < thr(tau2, pr, gbr),
                        "MABC outage escaped the hiA event set"
                    );
                    assert!(
                        x_br < thr(tau2, pb, gbr) || x_ar < thr(tau2, pr, gar),
                        "MABC outage escaped the hiB event set"
                    );
                }

                let tdbc = ctx
                    .solve_one(&faded, SolveRequest::sum_rate(Protocol::Tdbc))
                    .unwrap()
                    .value;
                let cut_event =
                    pa * (gar * x_ar + gab * v) < tau && pb * (gbr * x_br + gab * v) < tau;
                if cut_event {
                    assert!(tdbc < target + 1e-9, "TDBC cut event but rate {tdbc}");
                }
                if tdbc < target - 1e-9 {
                    let e1 = x_ar < thr(tau, pa, gar) || v < thr(tau, pa, gab);
                    let e2 = x_br < thr(tau, pb, gbr) || v < thr(tau, pb, gab);
                    let e3 = x_ar < thr(tau3, pa, gar) || x_br < thr(tau3, pr, gbr);
                    let e4 = x_ar < thr(tau3, pr, gar) || x_br < thr(tau3, pb, gbr);
                    assert!(e1 && e2 && e3 && e4, "TDBC outage escaped the hi events");
                }
            }
        }
    }

    #[test]
    fn survival_keeps_relative_precision_in_deep_tail() {
        let s = fade_power_survival(FadingModel::Rayleigh, 40.0).unwrap();
        assert!(approx_eq(
            s,
            (-40f64).exp(),
            1e-12 * (-40f64).exp().recip().recip()
        ));
        assert!(s > 0.0);
        let s2 = fade_power_survival(FadingModel::nakagami(2.0), 40.0).unwrap();
        assert!(s2 > 0.0 && s2 < 1e-25);
    }

    #[test]
    #[should_panic(expected = "outage target must be finite")]
    fn non_finite_target_is_rejected() {
        let net = fig4_net(5.0);
        analytic_outage(
            &net,
            Protocol::DirectTransmission,
            FadingModel::Rayleigh,
            f64::NAN,
        );
    }
}
