//! Chaos coverage for the batched sweep paths: a [`Scenario::faults`]
//! plan poisons a deterministic subset of grid points, and the sweep must
//! (a) contain each poisoned point to a [`SweepResult::skipped`] entry
//! instead of aborting, (b) leave every healthy point bitwise identical
//! to the fault-free run, and (c) produce the exact same outcome at every
//! thread count and block size — the chaos schedule itself is replayable.

use bcc_core::scenario::SweepResult;
use bcc_core::{GaussianNetwork, Scenario};
use bcc_num::faults::{FaultPlan, FaultSite};
use bcc_num::Db;

const POINTS: usize = 257;

fn gain_scenario() -> Scenario {
    let gains = (0..POINTS).map(|i| -5.0 + 20.0 * i as f64 / (POINTS - 1) as f64);
    Scenario::symmetric_gain_sweep_db(10.0, -7.0, gains)
}

fn poison_plan() -> FaultPlan {
    FaultPlan::new(0xC0A5).with(FaultSite::KernelPoison, 0.05, 1)
}

/// Bit-level fingerprint of a sweep: every solution field of every
/// protocol series plus the skip records.
fn fingerprint(sweep: &SweepResult) -> Vec<String> {
    let mut out = Vec::new();
    for &p in sweep.protocols() {
        for sol in &sweep.series(p).unwrap().solutions {
            out.push(format!(
                "{p:?}|{:016x}|{:016x}|{:016x}",
                sol.sum_rate.to_bits(),
                sol.ra.to_bits(),
                sol.rb.to_bits()
            ));
        }
    }
    for skip in sweep.skipped() {
        out.push(format!(
            "skip|{}|{:?}|{}",
            skip.index, skip.protocol, skip.error
        ));
    }
    out
}

#[test]
fn poisoned_sweep_skips_points_and_replays_bitwise() {
    let clean = gain_scenario().build().sweep().unwrap();
    assert!(clean.is_complete());

    let reference = gain_scenario()
        .faults(poison_plan())
        .threads(1)
        .build()
        .sweep()
        .unwrap();

    // The plan fires somewhere (p = 0.05 over 257 points), but not
    // everywhere, and every skip is the injected kernel poison.
    let skipped = reference.skipped();
    assert!(!skipped.is_empty(), "plan should poison at least one point");
    let poisoned: std::collections::BTreeSet<usize> = skipped.iter().map(|s| s.index).collect();
    assert!(poisoned.len() < POINTS / 2);
    for skip in skipped {
        assert!(skip.error.is_injected(), "unexpected skip: {}", skip.error);
    }
    // A poisoned point loses *all* protocols (the point is fated, not one
    // lane), and its winner degrades to None.
    for &i in &poisoned {
        let at: Vec<_> = skipped.iter().filter(|s| s.index == i).collect();
        assert_eq!(at.len(), reference.protocols().len());
        assert_eq!(reference.try_winner(i), None);
    }

    // Healthy points are bitwise identical to the fault-free sweep.
    for &p in reference.protocols() {
        let chaos = &reference.series(p).unwrap().solutions;
        let base = &clean.series(p).unwrap().solutions;
        for i in 0..POINTS {
            if poisoned.contains(&i) {
                assert!(chaos[i].sum_rate.is_nan());
            } else {
                assert_eq!(chaos[i].sum_rate.to_bits(), base[i].sum_rate.to_bits());
                assert_eq!(chaos[i].ra.to_bits(), base[i].ra.to_bits());
                assert_eq!(chaos[i].rb.to_bits(), base[i].rb.to_bits());
            }
        }
    }

    // The chaos run replays bit-identically across thread counts and
    // block sizes — including block sizes that slice poisoned and healthy
    // points into the same block.
    let want = fingerprint(&reference);
    for threads in [1usize, 4] {
        for block in [16usize, 64, 512] {
            let again = gain_scenario()
                .faults(poison_plan())
                .threads(threads)
                .block_size(block)
                .build()
                .sweep()
                .unwrap();
            assert_eq!(
                fingerprint(&again),
                want,
                "threads = {threads}, block = {block}"
            );
        }
    }
}

#[test]
fn empty_plan_is_bitwise_invisible() {
    let clean = gain_scenario().build().sweep().unwrap();
    let armed_empty = gain_scenario()
        .faults(FaultPlan::none())
        .build()
        .sweep()
        .unwrap();
    assert_eq!(fingerprint(&clean), fingerprint(&armed_empty));
    assert!(armed_empty.skipped().is_empty());
}

#[test]
fn floored_sweep_contains_injected_iteration_limits() {
    // A QoS floor forces the per-point simplex path; an armed
    // LpIterationLimit site then exhausts a deterministic subset of
    // solves, which must degrade to per-point skips (like genuine
    // infeasibility) rather than abort the sweep — at every thread count.
    let base = GaussianNetwork::from_db(Db::new(0.0), Db::new(-7.0), Db::new(0.0), Db::new(5.0));
    let scenario = || {
        Scenario::power_sweep_db(base, (0..64).map(|i| 15.0 + 0.2 * i as f64))
            .rate_floor(0.25, 0.25)
            .faults(FaultPlan::new(77).with(FaultSite::LpIterationLimit, 0.08, 1))
    };
    let reference = scenario().threads(1).build().sweep().unwrap();
    assert!(
        reference.skipped().iter().any(|s| !s.error.is_infeasible()),
        "some skips should be injected iteration limits"
    );
    let want = fingerprint(&reference);
    for threads in [2usize, 4] {
        let again = scenario().threads(threads).build().sweep().unwrap();
        assert_eq!(fingerprint(&again), want, "threads = {threads}");
    }
}
