//! Protocol- and schedule-dominance property tests.
//!
//! Two families of ordering facts hold structurally and were previously
//! only spot-checked in the `lib.rs` doctest:
//!
//! * **Protocol dominance** — HBC's four-phase schedule subsumes MABC
//!   (`Δ₁ = Δ₂ = 0`) and TDBC (`Δ₃ = 0`), so its achievable sum rate and
//!   max–min rate dominate both at *every* channel state and power
//!   split;
//! * **Schedule dominance** — the jointly optimised multi-pair schedule
//!   contains the equal-share point, so joint sum and fair rates
//!   dominate time-sharing for every `K`.
//!
//! The multi-pair closed forms (`max_k S_k`, the harmonic fair rate —
//! see the `bcc_core::multipair` module docs) are additionally pinned
//! against an **explicitly assembled joint LP** over all `K` pairs'
//! variables, built directly on `bcc_lp` — the oracle the decoupling
//! theorem claims to shortcut.

use bcc_channel::{ChannelState, PowerSplit};
use bcc_core::kernel::SolveCtx;
use bcc_core::prelude::*;
use bcc_lp::{Problem, Relation};
use proptest::prelude::*;

fn random_net(p: (f64, f64, f64), g: (f64, f64, f64)) -> GaussianNetwork {
    GaussianNetwork::with_powers(
        PowerSplit::new(p.0, p.1, p.2),
        ChannelState::new(g.0, g.1, g.2),
    )
}

/// Joint `K`-pair sum-rate LP: variables `(R_a^k, R_b^k, Δ_{k,1..L_k})_k`
/// (plus a trailing `t` when `fair`), every pair's inner-bound rows, one
/// shared duration budget `Σ_{k,ℓ} Δ_{k,ℓ} = 1`. Returns the optimal
/// objective — `Σ_k (R_a^k + R_b^k)`, or the common per-user rate `t`.
fn joint_lp(pairs: &PairSet, protocol: Protocol, fair: bool) -> f64 {
    let sets: Vec<ConstraintSet> = pairs
        .iter()
        .map(|net| {
            let mut family = net.constraint_sets(protocol, Bound::Inner);
            assert_eq!(family.len(), 1, "inner bounds are singletons");
            family.remove(0)
        })
        .collect();
    // Variable layout: per pair, a block (R_a, R_b, Δ_1..Δ_L); then t.
    let block = 2 + protocol.num_phases();
    let n = pairs.len() * block + usize::from(fair);
    let mut objective = vec![0.0; n];
    if fair {
        objective[n - 1] = 1.0;
    } else {
        for k in 0..pairs.len() {
            objective[k * block] = 1.0;
            objective[k * block + 1] = 1.0;
        }
    }
    let mut p = Problem::maximize(&objective);
    let mut row = vec![0.0; n];
    for (k, set) in sets.iter().enumerate() {
        for c in set.constraints() {
            row.iter_mut().for_each(|v| *v = 0.0);
            row[k * block] = c.ra;
            row[k * block + 1] = c.rb;
            for (l, coef) in c.phase_coefs.iter().enumerate() {
                row[k * block + 2 + l] = -coef;
            }
            p.subject_to(&row, Relation::Le, 0.0);
        }
        if fair {
            // t ≤ R_a^k and t ≤ R_b^k: everyone gets the common rate.
            for user in 0..2 {
                row.iter_mut().for_each(|v| *v = 0.0);
                row[n - 1] = 1.0;
                row[k * block + user] = -1.0;
                p.subject_to(&row, Relation::Le, 0.0);
            }
        }
    }
    // The shared relay serves the pairs orthogonally: one time budget.
    row.iter_mut().for_each(|v| *v = 0.0);
    for k in 0..pairs.len() {
        for l in 0..protocol.num_phases() {
            row[k * block + 2 + l] = 1.0;
        }
    }
    p.subject_to(&row, Relation::Eq, 1.0);
    p.solve().expect("joint LP solvable").objective
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hbc_dominates_mabc_and_tdbc_everywhere(
        p in (0.0f64..40.0, 0.0f64..40.0, 0.0f64..40.0),
        g in (0.0f64..10.0, 0.0f64..10.0, 0.0f64..10.0),
    ) {
        let net = random_net(p, g);
        let mut ctx = SolveCtx::new();
        let hbc_sum = ctx
            .solve_one(&net, SolveRequest::sum_rate(Protocol::Hbc))
            .unwrap()
            .value;
        let hbc_min = ctx
            .solve_one(&net, SolveRequest::max_min(Protocol::Hbc))
            .unwrap()
            .value;
        for proto in [Protocol::Mabc, Protocol::Tdbc] {
            let sum = ctx
                .solve_one(&net, SolveRequest::sum_rate(proto))
                .unwrap()
                .value;
            prop_assert!(
                hbc_sum >= sum - 1e-8 * (1.0 + sum),
                "{proto} sum {sum} beats HBC {hbc_sum} at {net:?}"
            );
            let min = ctx
                .solve_one(&net, SolveRequest::max_min(proto))
                .unwrap()
                .value;
            prop_assert!(
                hbc_min >= min - 1e-8 * (1.0 + min),
                "{proto} max-min {min} beats HBC {hbc_min} at {net:?}"
            );
        }
    }

    #[test]
    fn joint_schedule_dominates_time_sharing_for_every_k(
        k in 1usize..=4,
        p in (0.1f64..40.0, 0.1f64..40.0, 0.1f64..40.0),
        g in (0.01f64..10.0, 0.01f64..10.0, 0.01f64..10.0),
        tilt in 0.1f64..2.0,
    ) {
        // K pairs with systematically tilted gains so they are genuinely
        // heterogeneous (the interesting case for scheduling).
        let nets: Vec<GaussianNetwork> = (0..k)
            .map(|i| {
                let f = tilt.powi(i as i32);
                random_net(p, (g.0 * f, g.1 / f, g.2 * f))
            })
            .collect();
        let mut ev = Scenario::pairs("network", [(0.0, PairSet::new(nets))]).build();
        let r = ev.sweep().unwrap();
        for proto in Protocol::ALL {
            let joint = r.sum_rate(proto, 0, Schedule::Joint);
            let shared = r.sum_rate(proto, 0, Schedule::TimeShare);
            prop_assert!(
                joint >= shared - 1e-9 * (1.0 + shared),
                "{proto} K={k}: joint sum {joint} < time-share {shared}"
            );
            let joint_fair = r.fair_rate(proto, 0, Schedule::Joint);
            let shared_fair = r.fair_rate(proto, 0, Schedule::TimeShare);
            prop_assert!(
                joint_fair >= shared_fair - 1e-9 * (1.0 + shared_fair),
                "{proto} K={k}: joint fair {joint_fair} < time-share {shared_fair}"
            );
        }
    }

    #[test]
    fn closed_form_aggregates_match_joint_lp_oracle(
        k in 1usize..=3,
        p in (0.1f64..30.0, 0.1f64..30.0, 0.1f64..30.0),
        g in (0.01f64..8.0, 0.01f64..8.0, 0.01f64..8.0),
        tilt in 0.2f64..2.0,
    ) {
        let nets: Vec<GaussianNetwork> = (0..k)
            .map(|i| {
                let f = tilt.powi(i as i32);
                random_net((p.0 * f, p.1, p.2 / f), (g.0, g.1 * f, g.2))
            })
            .collect();
        let pairs = PairSet::new(nets);
        let mut ev = Scenario::pairs("network", [(0.0, pairs.clone())]).build();
        let r = ev.sweep().unwrap();
        for proto in Protocol::ALL {
            let closed = r.sum_rate(proto, 0, Schedule::Joint);
            let lp = joint_lp(&pairs, proto, false);
            prop_assert!(
                (closed - lp).abs() <= 1e-7 * (1.0 + lp.abs()),
                "{proto} K={k}: closed-form joint sum {closed} vs joint LP {lp}"
            );
            let closed_fair = r.fair_rate(proto, 0, Schedule::Joint);
            let lp_fair = joint_lp(&pairs, proto, true);
            prop_assert!(
                (closed_fair - lp_fair).abs() <= 1e-7 * (1.0 + lp_fair.abs()),
                "{proto} K={k}: closed-form fair {closed_fair} vs joint LP {lp_fair}"
            );
        }
    }

    #[test]
    fn outer_bounds_dominate_inner_for_multipair_aggregates(
        p in (0.1f64..30.0, 0.1f64..30.0, 0.1f64..30.0),
        g in (0.01f64..8.0, 0.01f64..8.0, 0.01f64..8.0),
    ) {
        let pairs = PairSet::new(vec![
            random_net(p, g),
            random_net((p.1, p.2, p.0), (g.2, g.0, g.1)),
        ]);
        let sc = Scenario::pairs("network", [(0.0, pairs)]);
        let inner = sc.clone().build().sweep().unwrap();
        let outer = sc.bound(Bound::Outer).build().sweep().unwrap();
        for proto in Protocol::ALL {
            for schedule in SCHEDULES {
                let i = inner.sum_rate(proto, 0, schedule);
                let o = outer.sum_rate(proto, 0, schedule);
                prop_assert!(
                    o >= i - 1e-7 * (1.0 + i),
                    "{proto} {schedule}: outer {o} < inner {i}"
                );
            }
        }
    }
}

// City-scale placement and assignment dominance. Separate block with a
// smaller case budget: each case solves a full (pairs × relays) edge
// grid.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn every_random_placement_yields_finite_gains(
        seed in 0u64..u64::MAX,
        k in 1usize..=40,
        n in 1usize..=12,
        radius in 0.05f64..50.0,
        gamma in 0.0f64..6.0,
    ) {
        // The headline bugfix as a property: no disc placement — however
        // tight, however co-located the draws — produces a non-finite
        // path-loss gain once the d_min clamp is in force.
        let topo = Topology::random(seed, k, n, radius, gamma).unwrap();
        for pair in 0..k {
            for j in 0..n {
                let state = topo.try_edge_state(pair, j).unwrap();
                for g in [state.gab(), state.gar(), state.gbr()] {
                    prop_assert!(
                        g.is_finite() && g >= 0.0,
                        "non-finite gain at pair {pair}, relay {j}: {g}"
                    );
                }
            }
        }
    }

    #[test]
    fn city_assignment_dominance(
        seed in 0u64..u64::MAX,
        k in 1usize..=8,
        n in 2usize..=5,
        power_db in 0.0f64..20.0,
    ) {
        use bcc_core::city::{AssignmentKind, SCHEDULES as CITY_SCHEDULES};
        let topo = Topology::random(seed, k, n, 10.0, 3.0).unwrap();

        // Greedy best-edge attachment dominates the random baseline.
        let full = Scenario::city(topo.clone(), power_db).build().sweep().unwrap();
        let greedy = full.best_edge_rate(AssignmentKind::Greedy);
        let random = full.best_edge_rate(AssignmentKind::Random);
        prop_assert!(greedy >= random, "greedy {greedy} < random {random}");

        // Refined dominates both seeds on the scheduled objective.
        let refined = full.scheduled_rate(AssignmentKind::Refined, Schedule::TimeShare);
        for kind in [AssignmentKind::Greedy, AssignmentKind::Random] {
            let seed_rate = full.scheduled_rate(kind, Schedule::TimeShare);
            prop_assert!(refined >= seed_rate, "refined {refined} < {kind} {seed_rate}");
        }
        for schedule in CITY_SCHEDULES {
            prop_assert!(full.scheduled_rate(AssignmentKind::Refined, schedule).is_finite());
        }

        // More relays never hurt: the prefix-stable placement means the
        // (n-1)-relay city is exactly the n-relay city minus one option
        // per pair.
        let fewer = Scenario::city(topo.with_relays(n - 1), power_db)
            .build()
            .sweep()
            .unwrap();
        let fewer_greedy = fewer.best_edge_rate(AssignmentKind::Greedy);
        prop_assert!(
            greedy >= fewer_greedy,
            "{n} relays give {greedy} < {} relays' {fewer_greedy}", n - 1
        );
    }
}
