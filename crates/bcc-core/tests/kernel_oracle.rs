//! Property tests pinning the closed-form solve kernel against the
//! simplex oracle.
//!
//! The kernel (`bcc_core::kernel`) answers the hot-loop queries —
//! `max_sum_rate` for all four protocols and `max_min_rate` for
//! DT/MABC/TDBC — analytically, while `bcc_core::optimizer` keeps solving the same
//! programs through the general cold two-phase simplex. Over random
//! channel states and per-node power splits the two must agree:
//!
//! * objectives within 1e-9;
//! * the kernel's operating point is feasible and its durations form a
//!   probability vector;
//! * the kernel's point *binds* at least one constraint whenever its
//!   optimum is positive (an LP optimum always sits on the boundary);
//! * when both solvers land on the same vertex (unique optimum), their
//!   binding-constraint sets agree exactly.

use bcc_channel::{ChannelState, PowerSplit};
use bcc_core::bounds;
use bcc_core::kernel;
use bcc_core::optimizer::{self, SchedulePoint};
use bcc_core::prelude::*;
use proptest::prelude::*;

/// Binding labels of `point` in `set` at tolerance `tol`.
fn binding<'a>(set: &'a ConstraintSet, pt: &SchedulePoint, tol: f64) -> Vec<&'a str> {
    optimizer::binding_constraints(set, pt, tol)
}

fn as_point(sol: &bcc_core::gaussian::SumRateSolution) -> SchedulePoint {
    SchedulePoint {
        ra: sol.ra,
        rb: sol.rb,
        durations: sol.durations,
        objective: sol.sum_rate,
    }
}

/// Shared oracle check for one `(protocol, network)` sum-rate query.
fn check_sum_rate(net: &GaussianNetwork, protocol: Protocol) {
    let Some(kernel_sol) = kernel::max_sum_rate(net, protocol) else {
        return; // protocol not covered by the kernel (HBC)
    };
    let sets = bounds::constraint_sets_split(protocol, Bound::Inner, &net.powers(), &net.state());
    let set = &sets[0];
    let lp = optimizer::max_sum_rate(set).expect("oracle solvable");

    // Objective agreement.
    prop_assert!(
        (kernel_sol.sum_rate - lp.objective).abs() <= 1e-9 * (1.0 + lp.objective.abs()),
        "{protocol}: kernel {} vs simplex {}",
        kernel_sol.sum_rate,
        lp.objective
    );
    // Feasibility of the kernel's operating point.
    prop_assert!(
        set.all_satisfied(kernel_sol.ra, kernel_sol.rb, &kernel_sol.durations, 1e-8),
        "{protocol}: kernel point infeasible"
    );
    let total: f64 = kernel_sol.durations.iter().sum();
    prop_assert!((total - 1.0).abs() <= 1e-8, "durations sum {total}");
    prop_assert!(kernel_sol.durations.iter().all(|&d| d >= -1e-12));

    // A positive optimum must sit on the boundary: something binds.
    let kpt = as_point(&kernel_sol);
    if kernel_sol.sum_rate > 1e-6 {
        prop_assert!(
            !binding(set, &kpt, 1e-7).is_empty(),
            "{protocol}: positive optimum with no binding constraint"
        );
    }
    // Unique-vertex case: binding sets must agree exactly.
    let same_vertex = (kernel_sol.ra - lp.ra).abs() < 1e-7
        && (kernel_sol.rb - lp.rb).abs() < 1e-7
        && kernel_sol
            .durations
            .iter()
            .zip(lp.durations.iter())
            .all(|(a, b)| (a - b).abs() < 1e-7);
    if same_vertex {
        prop_assert_eq!(
            binding(set, &kpt, 1e-7),
            binding(set, &lp, 1e-7),
            "{} binding sets diverge at a shared vertex",
            protocol
        );
    }
}

/// Shared oracle check for one `(protocol, network)` max–min query.
fn check_max_min(net: &GaussianNetwork, protocol: Protocol) {
    let Some(kpt) = kernel::max_min_rate(net, protocol) else {
        return;
    };
    let sets = bounds::constraint_sets_split(protocol, Bound::Inner, &net.powers(), &net.state());
    let set = &sets[0];
    let lp = optimizer::max_min_rate(set).expect("oracle solvable");
    prop_assert!(
        (kpt.objective - lp.objective).abs() <= 1e-9 * (1.0 + lp.objective.abs()),
        "{protocol}: kernel max-min {} vs simplex {}",
        kpt.objective,
        lp.objective
    );
    prop_assert!(
        set.all_satisfied(kpt.ra, kpt.rb, &kpt.durations, 1e-8),
        "{protocol}: kernel max-min point infeasible"
    );
    let total: f64 = kpt.durations.iter().sum();
    prop_assert!((total - 1.0).abs() <= 1e-8);
    // The symmetric point must itself be achievable.
    prop_assert!(optimizer::is_achievable(
        set,
        (kpt.objective - 1e-9).max(0.0),
        (kpt.objective - 1e-9).max(0.0)
    ));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn kernel_sum_rate_matches_simplex_oracle(
        p_a in 0.0f64..40.0,
        p_b in 0.0f64..40.0,
        p_r in 0.0f64..40.0,
        gab in 0.0f64..10.0,
        gar in 0.0f64..10.0,
        gbr in 0.0f64..10.0,
    ) {
        let net = GaussianNetwork::with_powers(
            PowerSplit::new(p_a, p_b, p_r),
            ChannelState::new(gab, gar, gbr),
        );
        for proto in Protocol::ALL {
            check_sum_rate(&net, proto);
        }
    }

    #[test]
    fn kernel_max_min_matches_simplex_oracle(
        p_a in 0.0f64..40.0,
        p_b in 0.0f64..40.0,
        p_r in 0.0f64..40.0,
        gab in 0.0f64..10.0,
        gar in 0.0f64..10.0,
        gbr in 0.0f64..10.0,
    ) {
        let net = GaussianNetwork::with_powers(
            PowerSplit::new(p_a, p_b, p_r),
            ChannelState::new(gab, gar, gbr),
        );
        for proto in Protocol::ALL {
            check_max_min(&net, proto);
        }
    }

    #[test]
    fn kernel_symmetric_networks(
        p in 0.0f64..60.0,
        g in 0.0f64..20.0,
        gab in 0.0f64..5.0,
    ) {
        // The fig3 shape: symmetric relay gains, where degenerate optima
        // (whole optimal faces) are the norm rather than the exception.
        let net = GaussianNetwork::new(p, ChannelState::new(gab, g, g));
        for proto in Protocol::ALL {
            check_sum_rate(&net, proto);
            check_max_min(&net, proto);
        }
    }
}

#[test]
fn kernel_handles_extreme_scales() {
    // Deterministic edge sweep outside proptest: huge/tiny capacities and
    // dead links must not break candidate enumeration.
    let cases = [
        (1e6, 1e-6, 1e6, 1e-6),
        (1e-9, 1e-9, 1e-9, 1e-9),
        (0.0, 1.0, 1.0, 0.0),
        (1e4, 1e4, 1e4, 1e4),
    ];
    for (p, gab, gar, gbr) in cases {
        let net = GaussianNetwork::new(p, ChannelState::new(gab, gar, gbr));
        for proto in Protocol::ALL {
            let k = kernel::max_sum_rate(&net, proto).expect("covered");
            let sets = net.constraint_sets(proto, Bound::Inner);
            let lp = optimizer::max_sum_rate(&sets[0]).expect("solvable");
            assert!(
                (k.sum_rate - lp.objective).abs() <= 1e-9 * (1.0 + lp.objective.abs()),
                "{proto} at p={p} gab={gab} gar={gar} gbr={gbr}: {} vs {}",
                k.sum_rate,
                lp.objective
            );
        }
    }
}
