//! Deep numeric consistency checks of the theorem implementations:
//! closed-form corner values, protocol-embedding identities at the region
//! level, and agreement between the constraint coefficients and the
//! information-theoretic primitives they are built from.

use bcc_channel::ChannelState;
use bcc_core::bounds::{hbc, mabc, tdbc};
use bcc_core::gaussian::GaussianNetwork;
use bcc_core::optimizer;
use bcc_core::protocol::{Bound, Protocol};
use bcc_info::awgn_capacity;
use bcc_info::gaussian::mac_sum_capacity;

fn fig4_state() -> ChannelState {
    ChannelState::new(0.19952623149688797, 1.0, 3.1622776601683795)
}

#[test]
fn mabc_single_user_corner_closed_form() {
    // With Rb = 0 the MABC optimum solves min(Δ1·C_ar, Δ2·C_br) over the
    // simplex: Ra* = C_ar·C_br/(C_ar + C_br).
    let p = 10.0;
    let s = fig4_state();
    let c_ar = awgn_capacity(p * s.gar());
    let c_br = awgn_capacity(p * s.gbr());
    let expect = c_ar * c_br / (c_ar + c_br);
    let set = mabc::capacity_constraints(p, &s);
    let pt = optimizer::max_weighted(&set, 1.0, 0.0).unwrap();
    assert!((pt.ra - expect).abs() < 1e-8, "{} vs {expect}", pt.ra);
}

#[test]
fn mabc_sum_rate_closed_form_when_mac_binds() {
    // Symmetric gains G: sum* = C(2PG)·2C(PG) / (C(2PG) + 2C(PG)).
    let p = 10.0;
    let s = ChannelState::new(0.1, 1.5, 1.5);
    let c1 = mac_sum_capacity(p * 1.5, p * 1.5);
    let c2 = awgn_capacity(p * 1.5);
    let expect = c1 * 2.0 * c2 / (c1 + 2.0 * c2);
    let sol = optimizer::max_sum_rate(&mabc::capacity_constraints(p, &s)).unwrap();
    assert!(
        (sol.objective - expect).abs() < 1e-8,
        "{} vs {expect}",
        sol.objective
    );
}

#[test]
fn tdbc_sum_rate_closed_form_dead_direct_link() {
    // Gab = 0: b decodes only from the relay phase, so
    // Ra ≤ min(Δ1·C_ar, Δ3·C_br), Rb ≤ min(Δ2·C_br, Δ3·C_ar).
    // With symmetric relay gains C_ar = C_br = c the optimum is
    // Δ = (1/3, 1/3, 1/3) giving sum = 2c/3.
    let p = 4.0;
    let s = ChannelState::new(0.0, 2.0, 2.0);
    let c = awgn_capacity(p * 2.0);
    let sol = optimizer::max_sum_rate(&tdbc::inner_constraints(p, &s)).unwrap();
    assert!((sol.objective - 2.0 * c / 3.0).abs() < 1e-8);
    // And the durations split evenly.
    for d in &sol.durations {
        assert!(
            (d - 1.0 / 3.0).abs() < 1e-6,
            "durations {:?}",
            sol.durations
        );
    }
}

#[test]
fn hbc_weighted_optima_dominate_both_embeddings_for_all_weights() {
    let p = 10.0;
    let s = fig4_state();
    let hbc_set = hbc::inner_constraints(p, &s);
    let mabc_set = mabc::capacity_constraints(p, &s);
    let tdbc_set = tdbc::inner_constraints(p, &s);
    for k in 0..=10 {
        let wa = k as f64 / 10.0;
        let wb = 1.0 - wa;
        let h = optimizer::max_weighted(&hbc_set, wa, wb).unwrap().objective;
        let m = optimizer::max_weighted(&mabc_set, wa, wb)
            .unwrap()
            .objective;
        let t = optimizer::max_weighted(&tdbc_set, wa, wb)
            .unwrap()
            .objective;
        assert!(h >= m - 1e-8, "w=({wa},{wb}): HBC {h} < MABC {m}");
        assert!(h >= t - 1e-8, "w=({wa},{wb}): HBC {h} < TDBC {t}");
    }
}

#[test]
fn theorem2_constraint_coefficients_match_primitives() {
    let p = 7.5;
    let s = fig4_state();
    let set = mabc::capacity_constraints(p, &s);
    let rows = set.constraints();
    assert!((rows[0].phase_coefs[0] - awgn_capacity(p * s.gar())).abs() < 1e-12);
    assert!((rows[1].phase_coefs[1] - awgn_capacity(p * s.gbr())).abs() < 1e-12);
    assert!((rows[4].phase_coefs[0] - mac_sum_capacity(p * s.gar(), p * s.gbr())).abs() < 1e-12);
}

#[test]
fn outer_bounds_collapse_to_inner_when_direct_link_dies() {
    // Theorem 4's cut terms C(P(G_ar + G_ab)) reduce to C(P·G_ar) at
    // G_ab = 0, so inner and outer TDBC differ only by the sum-rate row.
    let p = 5.0;
    let s = ChannelState::new(0.0, 1.3, 0.7);
    let inner = tdbc::inner_constraints(p, &s);
    let outer = tdbc::outer_constraints(p, &s);
    for i in 0..4 {
        assert_eq!(
            inner.constraints()[i].phase_coefs,
            outer.constraints()[i].phase_coefs,
            "row {i} should coincide at Gab = 0"
        );
    }
    // With the extra sum row, the outer optimum can only be ≤ relaxed.
    let si = optimizer::max_sum_rate(&inner).unwrap().objective;
    let so = optimizer::max_sum_rate(&outer).unwrap().objective;
    assert!(so <= si + 1e-9, "sum row can only cut: {so} vs {si}");
}

#[test]
fn hbc_outer_family_rho_zero_matches_tdbc_style_cuts() {
    // At ρ = 0 the HBC outer phase-3 terms are the independent-input MAC
    // values; check the family endpoint against first principles.
    let p = 3.0;
    let s = fig4_state();
    let set = hbc::outer_constraints_with_rho(p, &s, 0.0);
    let rows = set.constraints();
    assert!((rows[0].phase_coefs[2] - awgn_capacity(p * s.gar())).abs() < 1e-12);
    assert!((rows[4].phase_coefs[2] - mac_sum_capacity(p * s.gar(), p * s.gbr())).abs() < 1e-12);
}

#[test]
fn capacity_region_consistency_between_apis() {
    // GaussianNetwork::max_sum_rate must agree with the raw
    // optimizer-on-constraints path for every protocol.
    let net = GaussianNetwork::new(10.0, fig4_state());
    for proto in Protocol::ALL {
        let via_net = net.max_sum_rate(proto).unwrap().sum_rate;
        let sets = net.constraint_sets(proto, Bound::Inner);
        let via_opt = optimizer::max_sum_rate(&sets[0]).unwrap().objective;
        assert!((via_net - via_opt).abs() < 1e-12, "{proto}");
    }
}
