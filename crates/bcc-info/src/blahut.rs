//! Blahut–Arimoto computation of DMC capacity.
//!
//! Used to cross-check the closed-form capacities in [`crate::channels`]
//! and to obtain capacities of channels with no closed form (e.g. cascades
//! of asymmetric channels that arise in the naive four-phase forwarding
//! baseline). The implementation follows the standard alternating
//! maximisation; convergence is geometric for any DMC with full output
//! support.

use crate::channels::Dmc;

/// Result of a Blahut–Arimoto run.
#[derive(Debug, Clone, PartialEq)]
pub struct BlahutResult {
    /// Channel capacity in bits per use.
    pub capacity: f64,
    /// The capacity-achieving input distribution.
    pub input: Vec<f64>,
    /// Iterations consumed.
    pub iterations: usize,
}

/// Computes the capacity of `channel` to absolute tolerance `tol` (bits).
///
/// # Panics
///
/// Panics if `tol <= 0` or `max_iter == 0`.
pub fn capacity(channel: &Dmc, tol: f64, max_iter: usize) -> BlahutResult {
    assert!(tol > 0.0, "tolerance must be positive");
    assert!(max_iter > 0, "need at least one iteration");
    let nx = channel.num_inputs();
    let ny = channel.num_outputs();
    let mut p = vec![1.0 / nx as f64; nx];
    let mut iterations = 0;
    let mut cap = 0.0;
    for it in 0..max_iter {
        iterations = it + 1;
        // q(y) = Σ_x p(x) W(y|x)
        let mut q = vec![0.0; ny];
        for (x, &px) in p.iter().enumerate() {
            for (y, qy) in q.iter_mut().enumerate() {
                *qy += px * channel.transition(x, y);
            }
        }
        // D(x) = Σ_y W(y|x) log2( W(y|x) / q(y) )
        let mut d = vec![0.0; nx];
        for (x, dx) in d.iter_mut().enumerate() {
            for (y, &qy) in q.iter().enumerate() {
                let w = channel.transition(x, y);
                if w > 0.0 {
                    *dx += w * (w / qy).log2();
                }
            }
        }
        // Capacity bracket (Csiszár): max_x D(x) upper-bounds C, Σ p·D
        // lower-bounds it at the current iterate.
        let lower: f64 = p.iter().zip(&d).map(|(pi, di)| pi * di).sum();
        let upper = d.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        cap = lower;
        if upper - lower < tol {
            break;
        }
        // p(x) ∝ p(x) 2^{D(x)}
        let mut z = 0.0;
        for (px, dx) in p.iter_mut().zip(&d) {
            *px *= (*dx * std::f64::consts::LN_2).exp();
            z += *px;
        }
        for px in &mut p {
            *px /= z;
        }
    }
    BlahutResult {
        capacity: cap.max(0.0),
        input: p,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_num::approx_eq;
    use bcc_num::special::binary_entropy;

    #[test]
    fn bsc_capacity() {
        for &p in &[0.05, 0.11, 0.25] {
            let r = capacity(&Dmc::bsc(p), 1e-10, 10_000);
            assert!(
                approx_eq(r.capacity, 1.0 - binary_entropy(p), 1e-8),
                "p={p}: {}",
                r.capacity
            );
            // Capacity-achieving input of a symmetric channel is uniform.
            assert!(approx_eq(r.input[0], 0.5, 1e-5));
        }
    }

    #[test]
    fn bec_capacity() {
        let r = capacity(&Dmc::bec(0.4), 1e-10, 10_000);
        assert!(approx_eq(r.capacity, 0.6, 1e-8));
    }

    #[test]
    fn z_channel_capacity_beats_uniform_mi() {
        use crate::discrete::Pmf;
        let ch = Dmc::z_channel(0.3);
        let uniform_mi = ch.mutual_information(&Pmf::uniform(2));
        let r = capacity(&ch, 1e-10, 10_000);
        // The Z-channel's optimal input is biased, so capacity strictly
        // exceeds the uniform-input mutual information.
        assert!(r.capacity > uniform_mi + 1e-6);
        // Closed form: C(Z(p)) = log2(1 + (1-p) p^{p/(1-p)}).
        let p = 0.3_f64;
        let closed_form = (1.0 + (1.0 - p) * p.powf(p / (1.0 - p))).log2();
        assert!(
            approx_eq(r.capacity, closed_form, 1e-6),
            "{} vs {closed_form}",
            r.capacity
        );
    }

    #[test]
    fn useless_channel_capacity_zero() {
        let ch = Dmc::bsc(0.5);
        let r = capacity(&ch, 1e-10, 1000);
        assert!(r.capacity.abs() < 1e-9);
    }

    #[test]
    fn capacity_input_is_distribution() {
        let r = capacity(&Dmc::z_channel(0.25), 1e-10, 10_000);
        let sum: f64 = r.input.iter().sum();
        assert!(approx_eq(sum, 1.0, 1e-9));
        assert!(r.input.iter().all(|&x| x >= 0.0));
    }
}
