//! Discrete memoryless channels as validated stochastic matrices.
//!
//! The packet/symbol simulators in `bcc-sim` exercise the relay protocols
//! over *concrete* channels; the analytic machinery needs their mutual
//! informations. A [`Dmc`] bundles a transition matrix `W(y|x)` with
//! helpers to compute `I(X;Y)` for a given input and to pass symbols
//! through the channel.

use crate::discrete::{JointPmf, Pmf};
use rand::Rng;

/// A discrete memoryless channel `W(y | x)`.
///
/// Rows index inputs, columns outputs; every row is a probability vector.
///
/// ```
/// use bcc_info::{Dmc, Pmf};
///
/// let bsc = Dmc::bsc(0.11);
/// let mi = bsc.mutual_information(&Pmf::uniform(2));
/// assert!((mi - (1.0 - bcc_num::special::binary_entropy(0.11))).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dmc {
    rows: Vec<Vec<f64>>,
}

impl Dmc {
    /// Creates a DMC from transition rows.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is empty, ragged, contains invalid
    /// probabilities, or has a row that does not sum to 1.
    pub fn new(rows: Vec<Vec<f64>>) -> Self {
        assert!(!rows.is_empty(), "channel needs at least one input");
        let ny = rows[0].len();
        assert!(ny > 0, "channel needs at least one output");
        for (x, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), ny, "ragged transition matrix at row {x}");
            let mut sum = 0.0;
            for &w in row {
                assert!(
                    w.is_finite() && (0.0..=1.0).contains(&w),
                    "invalid transition probability {w} in row {x}"
                );
                sum += w;
            }
            assert!(
                (sum - 1.0).abs() < 1e-9,
                "row {x} sums to {sum}, expected 1"
            );
        }
        Dmc { rows }
    }

    /// Binary symmetric channel with crossover probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p ∉ [0, 1]`.
    pub fn bsc(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "crossover out of range: {p}");
        Dmc::new(vec![vec![1.0 - p, p], vec![p, 1.0 - p]])
    }

    /// Binary erasure channel with erasure probability `eps`; output 2 is
    /// the erasure symbol.
    ///
    /// # Panics
    ///
    /// Panics if `eps ∉ [0, 1]`.
    pub fn bec(eps: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&eps),
            "erasure prob out of range: {eps}"
        );
        Dmc::new(vec![vec![1.0 - eps, 0.0, eps], vec![0.0, 1.0 - eps, eps]])
    }

    /// Z-channel: input 0 is noiseless, input 1 flips with probability `p`.
    pub fn z_channel(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "flip prob out of range: {p}");
        Dmc::new(vec![vec![1.0, 0.0], vec![p, 1.0 - p]])
    }

    /// Binary-input AWGN channel hard-quantised to one bit: equivalent to a
    /// BSC with `p = Q(√(2·snr))` (BPSK with coherent detection).
    pub fn bi_awgn_hard(snr: f64) -> Self {
        assert!(snr >= 0.0, "SNR must be non-negative");
        Dmc::bsc(bcc_num::special::q_function((2.0 * snr).sqrt()))
    }

    /// Number of channel inputs.
    pub fn num_inputs(&self) -> usize {
        self.rows.len()
    }

    /// Number of channel outputs.
    pub fn num_outputs(&self) -> usize {
        self.rows[0].len()
    }

    /// Transition probability `W(y|x)`.
    pub fn transition(&self, x: usize, y: usize) -> f64 {
        self.rows[x][y]
    }

    /// Transition rows (one per input).
    pub fn rows(&self) -> &[Vec<f64>] {
        &self.rows
    }

    /// Mutual information `I(X;Y)` in bits for the given input distribution.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != num_inputs()`.
    pub fn mutual_information(&self, input: &Pmf) -> f64 {
        JointPmf::from_input_and_channel(input, &self.rows).mutual_information()
    }

    /// Samples one channel output for input `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is out of range.
    pub fn sample<R: Rng + ?Sized>(&self, x: usize, rng: &mut R) -> usize {
        let row = &self.rows[x];
        let u: f64 = rng.gen();
        let mut acc = 0.0;
        for (y, &w) in row.iter().enumerate() {
            acc += w;
            if u < acc {
                return y;
            }
        }
        row.len() - 1
    }

    /// Cascade of `self` followed by `other` (matrix product of the
    /// stochastic matrices) — the channel seen across a two-hop path when
    /// the relay forwards symbols without decoding.
    ///
    /// # Panics
    ///
    /// Panics if `self.num_outputs() != other.num_inputs()`.
    pub fn cascade(&self, other: &Dmc) -> Dmc {
        assert_eq!(
            self.num_outputs(),
            other.num_inputs(),
            "cascade alphabet mismatch"
        );
        let rows = self
            .rows
            .iter()
            .map(|row| {
                (0..other.num_outputs())
                    .map(|z| {
                        row.iter()
                            .enumerate()
                            .map(|(y, &w)| w * other.transition(y, z))
                            .sum()
                    })
                    .collect()
            })
            .collect();
        Dmc::new(rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_num::approx_eq;
    use bcc_num::special::binary_entropy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn bsc_capacity_closed_form() {
        for &p in &[0.0, 0.05, 0.11, 0.5] {
            let mi = Dmc::bsc(p).mutual_information(&Pmf::uniform(2));
            assert!(approx_eq(mi, 1.0 - binary_entropy(p), 1e-12), "p={p}");
        }
    }

    #[test]
    fn bec_capacity_closed_form() {
        for &e in &[0.0, 0.3, 1.0] {
            let mi = Dmc::bec(e).mutual_information(&Pmf::uniform(2));
            assert!(approx_eq(mi, 1.0 - e, 1e-12), "eps={e}");
        }
    }

    #[test]
    fn z_channel_uniform_input_mi() {
        // I(X;Y) for uniform input on Z(p): H(Y) - H(Y|X)
        // p(Y=1) = (1-p)/2 + 0 → H(Y) = h2((1-p)/2); H(Y|X) = h2(p)/2.
        let p = 0.2;
        let mi = Dmc::z_channel(p).mutual_information(&Pmf::uniform(2));
        let expected = binary_entropy((1.0 - p) / 2.0) - binary_entropy(p) / 2.0;
        assert!(approx_eq(mi, expected, 1e-12));
    }

    #[test]
    fn hard_quantised_awgn_loses_capacity() {
        let snr = 1.0;
        let hard = Dmc::bi_awgn_hard(snr).mutual_information(&Pmf::uniform(2));
        // Hard decision cannot beat the unquantised capacity.
        assert!(hard < crate::gaussian::awgn_capacity(snr));
        assert!(hard > 0.0);
    }

    #[test]
    fn cascade_of_bscs_composes_crossovers() {
        // BSC(p) ∘ BSC(q) = BSC(p(1-q) + q(1-p)).
        let (p, q) = (0.1, 0.2);
        let cascade = Dmc::bsc(p).cascade(&Dmc::bsc(q));
        let expected = p * (1.0 - q) + q * (1.0 - p);
        assert!(approx_eq(cascade.transition(0, 1), expected, 1e-12));
        assert!(approx_eq(cascade.transition(1, 0), expected, 1e-12));
    }

    #[test]
    fn sampling_matches_transition_frequencies() {
        let ch = Dmc::bsc(0.3);
        let mut rng = StdRng::seed_from_u64(7);
        let n = 200_000;
        let flips = (0..n).filter(|_| ch.sample(0, &mut rng) == 1).count();
        let rate = flips as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.01, "observed flip rate {rate}");
    }

    #[test]
    fn noiseless_channel_mi_is_input_entropy() {
        let id = Dmc::new(vec![vec![1.0, 0.0], vec![0.0, 1.0]]);
        let input = Pmf::bernoulli(0.3);
        assert!(approx_eq(
            id.mutual_information(&input),
            input.entropy(),
            1e-12
        ));
    }

    #[test]
    #[should_panic(expected = "sums to")]
    fn unnormalised_row_rejected() {
        let _ = Dmc::new(vec![vec![0.5, 0.4]]);
    }
}
