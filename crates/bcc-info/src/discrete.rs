//! Validated discrete distributions and exact mutual information.
//!
//! [`Pmf`] is a checked probability vector; [`JointPmf`] a checked joint
//! distribution over a product alphabet. Mutual information is computed by
//! the identity `I(X;Y) = H(X) + H(Y) − H(X,Y)` with exact marginalisation,
//! which is numerically robust for the small alphabets used here.

use crate::entropy::entropy_bits;

/// Tolerance for "sums to one" validation.
const NORM_TOL: f64 = 1e-9;

/// A validated probability mass function.
///
/// ```
/// use bcc_info::Pmf;
///
/// let p = Pmf::new(vec![0.5, 0.25, 0.25]).unwrap();
/// assert!((p.entropy() - 1.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Pmf {
    probs: Vec<f64>,
}

/// Error constructing a [`Pmf`] or [`JointPmf`].
#[derive(Debug, Clone, PartialEq)]
pub enum DistributionError {
    /// Some entry was negative or non-finite.
    InvalidEntry {
        /// Index (flattened for joints) of the offending entry.
        index: usize,
        /// Its value.
        value: f64,
    },
    /// Entries do not sum to 1 within tolerance.
    NotNormalised {
        /// The actual sum.
        sum: f64,
    },
    /// The distribution has no entries.
    Empty,
}

impl std::fmt::Display for DistributionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistributionError::InvalidEntry { index, value } => {
                write!(f, "invalid probability {value} at index {index}")
            }
            DistributionError::NotNormalised { sum } => {
                write!(f, "probabilities sum to {sum}, expected 1")
            }
            DistributionError::Empty => write!(f, "empty distribution"),
        }
    }
}

impl std::error::Error for DistributionError {}

fn validate(probs: &[f64]) -> Result<(), DistributionError> {
    if probs.is_empty() {
        return Err(DistributionError::Empty);
    }
    for (i, &p) in probs.iter().enumerate() {
        if !p.is_finite() || p < 0.0 {
            return Err(DistributionError::InvalidEntry { index: i, value: p });
        }
    }
    let sum: f64 = probs.iter().sum();
    if (sum - 1.0).abs() > NORM_TOL {
        return Err(DistributionError::NotNormalised { sum });
    }
    Ok(())
}

impl Pmf {
    /// Creates a PMF, validating non-negativity and normalisation.
    ///
    /// # Errors
    ///
    /// Returns a [`DistributionError`] describing the first violation.
    pub fn new(probs: Vec<f64>) -> Result<Self, DistributionError> {
        validate(&probs)?;
        Ok(Pmf { probs })
    }

    /// Uniform distribution over `n` outcomes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn uniform(n: usize) -> Self {
        assert!(n > 0, "uniform distribution needs n >= 1");
        Pmf {
            probs: vec![1.0 / n as f64; n],
        }
    }

    /// Bernoulli distribution `(1-p, p)`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn bernoulli(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        Pmf {
            probs: vec![1.0 - p, p],
        }
    }

    /// Alphabet size.
    pub fn len(&self) -> usize {
        self.probs.len()
    }

    /// `true` if the alphabet is empty (unreachable for validated PMFs).
    pub fn is_empty(&self) -> bool {
        self.probs.is_empty()
    }

    /// Probability of outcome `i`.
    pub fn prob(&self, i: usize) -> f64 {
        self.probs[i]
    }

    /// The underlying probability slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.probs
    }

    /// Shannon entropy in bits.
    pub fn entropy(&self) -> f64 {
        entropy_bits(&self.probs)
    }
}

/// A validated joint PMF over a product alphabet `X × Y`, stored row-major
/// (`x` indexes rows, `y` columns).
#[derive(Debug, Clone, PartialEq)]
pub struct JointPmf {
    nx: usize,
    ny: usize,
    probs: Vec<f64>,
}

impl JointPmf {
    /// Creates a joint PMF from a row-major grid.
    ///
    /// # Errors
    ///
    /// Returns a [`DistributionError`] on invalid or unnormalised entries.
    ///
    /// # Panics
    ///
    /// Panics if `probs.len() != nx * ny`.
    pub fn new(nx: usize, ny: usize, probs: Vec<f64>) -> Result<Self, DistributionError> {
        assert_eq!(probs.len(), nx * ny, "grid size mismatch");
        validate(&probs)?;
        Ok(JointPmf { nx, ny, probs })
    }

    /// Builds the joint distribution `p(x) · W(y|x)` from an input PMF and a
    /// channel transition matrix given as rows `W(·|x)`.
    ///
    /// # Panics
    ///
    /// Panics if `channel_rows.len() != input.len()` or rows have unequal
    /// lengths.
    pub fn from_input_and_channel(input: &Pmf, channel_rows: &[Vec<f64>]) -> Self {
        assert_eq!(
            channel_rows.len(),
            input.len(),
            "channel row count mismatch"
        );
        let ny = channel_rows.first().map_or(0, |r| r.len());
        assert!(ny > 0, "channel must have at least one output");
        assert!(
            channel_rows.iter().all(|r| r.len() == ny),
            "ragged channel matrix"
        );
        let mut probs = Vec::with_capacity(input.len() * ny);
        for (x, row) in channel_rows.iter().enumerate() {
            for &w in row {
                probs.push(input.prob(x) * w);
            }
        }
        JointPmf {
            nx: input.len(),
            ny,
            probs,
        }
    }

    /// Joint probability `p(x, y)`.
    pub fn prob(&self, x: usize, y: usize) -> f64 {
        self.probs[x * self.ny + y]
    }

    /// Input-alphabet size.
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Output-alphabet size.
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Marginal distribution of `X`.
    pub fn marginal_x(&self) -> Vec<f64> {
        (0..self.nx)
            .map(|x| (0..self.ny).map(|y| self.prob(x, y)).sum())
            .collect()
    }

    /// Marginal distribution of `Y`.
    pub fn marginal_y(&self) -> Vec<f64> {
        (0..self.ny)
            .map(|y| (0..self.nx).map(|x| self.prob(x, y)).sum())
            .collect()
    }

    /// Joint entropy `H(X, Y)` in bits.
    pub fn joint_entropy(&self) -> f64 {
        entropy_bits(&self.probs)
    }

    /// Mutual information `I(X; Y)` in bits via
    /// `H(X) + H(Y) − H(X, Y)` (clamped at zero to absorb rounding).
    pub fn mutual_information(&self) -> f64 {
        let hx = entropy_bits(&self.marginal_x());
        let hy = entropy_bits(&self.marginal_y());
        (hx + hy - self.joint_entropy()).max(0.0)
    }

    /// Conditional entropy `H(Y | X)` in bits.
    pub fn conditional_entropy_y_given_x(&self) -> f64 {
        self.joint_entropy() - entropy_bits(&self.marginal_x())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_num::approx_eq;

    #[test]
    fn pmf_validation() {
        assert!(Pmf::new(vec![0.5, 0.5]).is_ok());
        assert!(matches!(Pmf::new(vec![]), Err(DistributionError::Empty)));
        assert!(matches!(
            Pmf::new(vec![0.5, 0.6]),
            Err(DistributionError::NotNormalised { .. })
        ));
        assert!(matches!(
            Pmf::new(vec![1.5, -0.5]),
            Err(DistributionError::InvalidEntry { .. })
        ));
    }

    #[test]
    fn uniform_and_bernoulli() {
        assert!(approx_eq(Pmf::uniform(8).entropy(), 3.0, 1e-12));
        assert!(approx_eq(Pmf::bernoulli(0.5).entropy(), 1.0, 1e-12));
        assert_eq!(Pmf::bernoulli(0.0).entropy(), 0.0);
    }

    #[test]
    fn independent_joint_has_zero_mi() {
        // p(x,y) = p(x) q(y).
        let p = [0.3, 0.7];
        let q = [0.25, 0.25, 0.5];
        let mut grid = Vec::new();
        for &px in &p {
            for &qy in &q {
                grid.push(px * qy);
            }
        }
        let j = JointPmf::new(2, 3, grid).unwrap();
        assert!(approx_eq(j.mutual_information(), 0.0, 1e-12));
    }

    #[test]
    fn deterministic_channel_mi_equals_input_entropy() {
        // Y = X: joint diag(0.3, 0.7).
        let j = JointPmf::new(2, 2, vec![0.3, 0.0, 0.0, 0.7]).unwrap();
        assert!(approx_eq(
            j.mutual_information(),
            entropy_bits(&[0.3, 0.7]),
            1e-12
        ));
        assert!(approx_eq(j.conditional_entropy_y_given_x(), 0.0, 1e-12));
    }

    #[test]
    fn bsc_mutual_information_closed_form() {
        // Uniform input through BSC(p): I = 1 - h2(p).
        let p = 0.11;
        let input = Pmf::uniform(2);
        let rows = vec![vec![1.0 - p, p], vec![p, 1.0 - p]];
        let j = JointPmf::from_input_and_channel(&input, &rows);
        let expected = 1.0 - bcc_num::special::binary_entropy(p);
        assert!(approx_eq(j.mutual_information(), expected, 1e-12));
    }

    #[test]
    fn marginals_are_consistent() {
        let j = JointPmf::new(2, 2, vec![0.1, 0.2, 0.3, 0.4]).unwrap();
        assert!(approx_eq(j.marginal_x()[0], 0.3, 1e-12));
        assert!(approx_eq(j.marginal_y()[0], 0.4, 1e-12));
        let sx: f64 = j.marginal_x().iter().sum();
        assert!(approx_eq(sx, 1.0, 1e-12));
    }

    #[test]
    fn chain_rule_holds() {
        let j = JointPmf::new(2, 3, vec![0.1, 0.15, 0.05, 0.2, 0.3, 0.2]).unwrap();
        let hx = entropy_bits(&j.marginal_x());
        assert!(approx_eq(
            j.joint_entropy(),
            hx + j.conditional_entropy_y_given_x(),
            1e-12
        ));
    }
}
