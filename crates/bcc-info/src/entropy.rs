//! Entropy and divergence functionals over probability vectors.
//!
//! These operate on raw `&[f64]` slices; the validated wrappers live in
//! [`crate::discrete`]. All results are in **bits**.

/// Shannon entropy `H(p) = -Σ pᵢ log2 pᵢ` in bits, with `0 log 0 = 0`.
///
/// The input is not required to be normalised here (callers in hot loops
/// pass validated PMFs); see [`crate::discrete::Pmf::entropy`] for the
/// checked version.
pub fn entropy_bits(p: &[f64]) -> f64 {
    -p.iter()
        .filter(|&&x| x > 0.0)
        .map(|&x| x * x.log2())
        .sum::<f64>()
}

/// Kullback–Leibler divergence `D(p ‖ q)` in bits.
///
/// Returns `+inf` when `p` puts mass where `q` does not (absolute-continuity
/// violation).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn kl_divergence_bits(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distribution size mismatch");
    let mut d = 0.0;
    for (&pi, &qi) in p.iter().zip(q) {
        if pi == 0.0 {
            continue;
        }
        if qi == 0.0 {
            return f64::INFINITY;
        }
        d += pi * (pi / qi).log2();
    }
    d
}

/// Cross entropy `H(p, q) = H(p) + D(p‖q)` in bits.
pub fn cross_entropy_bits(p: &[f64], q: &[f64]) -> f64 {
    entropy_bits(p) + kl_divergence_bits(p, q)
}

/// Jensen–Shannon divergence in bits — a bounded, symmetric similarity
/// measure used by the test-suite to compare empirical and analytic
/// distributions.
pub fn js_divergence_bits(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distribution size mismatch");
    let m: Vec<f64> = p.iter().zip(q).map(|(&a, &b)| 0.5 * (a + b)).collect();
    0.5 * kl_divergence_bits(p, &m) + 0.5 * kl_divergence_bits(q, &m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_num::approx_eq;

    #[test]
    fn uniform_entropy_is_log_alphabet() {
        let p = [0.25; 4];
        assert!(approx_eq(entropy_bits(&p), 2.0, 1e-12));
    }

    #[test]
    fn deterministic_entropy_is_zero() {
        assert_eq!(entropy_bits(&[1.0, 0.0, 0.0]), 0.0);
    }

    #[test]
    fn kl_self_is_zero() {
        let p = [0.2, 0.3, 0.5];
        assert!(approx_eq(kl_divergence_bits(&p, &p), 0.0, 1e-12));
    }

    #[test]
    fn kl_nonnegative_gibbs() {
        let p = [0.7, 0.2, 0.1];
        let q = [0.1, 0.2, 0.7];
        assert!(kl_divergence_bits(&p, &q) > 0.0);
    }

    #[test]
    fn kl_infinite_on_support_violation() {
        assert_eq!(kl_divergence_bits(&[0.5, 0.5], &[1.0, 0.0]), f64::INFINITY);
        // But q putting mass where p does not is fine:
        assert!(kl_divergence_bits(&[1.0, 0.0], &[0.5, 0.5]).is_finite());
    }

    #[test]
    fn cross_entropy_decomposition() {
        let p = [0.6, 0.4];
        let q = [0.3, 0.7];
        assert!(approx_eq(
            cross_entropy_bits(&p, &q),
            entropy_bits(&p) + kl_divergence_bits(&p, &q),
            1e-12
        ));
    }

    #[test]
    fn js_symmetric_and_bounded() {
        let p = [0.9, 0.1];
        let q = [0.1, 0.9];
        let d1 = js_divergence_bits(&p, &q);
        let d2 = js_divergence_bits(&q, &p);
        assert!(approx_eq(d1, d2, 1e-12));
        assert!(d1 > 0.0 && d1 <= 1.0 + 1e-12);
        // Identical distributions → 0.
        assert!(approx_eq(js_divergence_bits(&p, &p), 0.0, 1e-12));
    }
}
