//! Gaussian-channel rate formulas (paper Section IV).
//!
//! With complex circularly-symmetric Gaussian codebooks, transmit power `P`
//! per node per phase, unit noise power and channel power gain `G`, the
//! mutual information of a point-to-point link is `C(P·G)` where
//! `C(x) := log2(1 + x)` — the paper's eponymous function. The two-user
//! multiple-access phase at the relay contributes per-user constraints
//! `C(P·G_i)` and the sum constraint `C(P·G_a + P·G_b)`, and a receiver that
//! listens to the same transmitter in two phases simply **adds** the phase
//! mutual informations (weighted by phase durations), because the phases
//! are independent channel uses.

use bcc_num::special::log2_1p;

/// The AWGN capacity function `C(x) = log2(1 + x)` in bits per channel use.
///
/// `x` is the received SNR (power gain × transmit power over unit noise).
///
/// # Panics
///
/// Panics if `x < 0`.
///
/// ```
/// // C(1) = 1 bit, C(3) = 2 bits.
/// assert!((bcc_info::awgn_capacity(1.0) - 1.0).abs() < 1e-12);
/// assert!((bcc_info::awgn_capacity(3.0) - 2.0).abs() < 1e-12);
/// ```
pub fn awgn_capacity(x: f64) -> f64 {
    assert!(x >= 0.0, "received SNR must be non-negative, got {x}");
    log2_1p(x)
}

/// Sum-rate constraint of a two-user Gaussian MAC with *independent* inputs:
/// `I(X_a, X_b; Y) = C(snr_a + snr_b)`.
pub fn mac_sum_capacity(snr_a: f64, snr_b: f64) -> f64 {
    awgn_capacity(snr_a + snr_b)
}

/// Sum-rate constraint of a two-user Gaussian MAC whose inputs have
/// correlation coefficient `rho ∈ [0, 1]`:
/// `C(snr_a + snr_b + 2ρ√(snr_a·snr_b))`.
///
/// Used only by the Gaussian-restricted HBC outer-bound heuristic (the paper
/// leaves the optimal joint distribution open — see DESIGN.md §2).
///
/// # Panics
///
/// Panics if `rho` is outside `[0, 1]`.
pub fn mac_sum_capacity_correlated(snr_a: f64, snr_b: f64, rho: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&rho),
        "correlation out of range: {rho}"
    );
    awgn_capacity(snr_a + snr_b + 2.0 * rho * (snr_a * snr_b).sqrt())
}

/// Per-user constraint of a correlated-input Gaussian MAC:
/// `I(X_a; Y | X_b) = C(snr_a (1 − ρ²))`.
pub fn mac_individual_capacity_correlated(snr_a: f64, rho: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&rho),
        "correlation out of range: {rho}"
    );
    awgn_capacity(snr_a * (1.0 - rho * rho))
}

/// Mutual information of one transmitter observed by **two** receivers with
/// independent noise: `I(X; Y_1, Y_2) = C(snr_1 + snr_2)` (maximum-ratio
/// combining of the two looks). This is the cut `S₁ = {a}` term in
/// Theorems 4 and 6.
pub fn two_receiver_capacity(snr_1: f64, snr_2: f64) -> f64 {
    awgn_capacity(snr_1 + snr_2)
}

/// Capacity of the **BPSK-input** real AWGN channel `y = √snr·x + z`,
/// `x ∈ {±1}` equiprobable, `z ~ N(0, 1)`, in bits per channel use:
///
/// ```text
/// C_bpsk(snr) = 1 − E_z[ log2(1 + e^{−2·snr − 2·√snr·z}) ]
/// ```
///
/// evaluated by adaptive Simpson quadrature over the Gaussian density.
/// This is the modulation-constrained ceiling the symbol-level simulators
/// operate under — it saturates at 1 bit/use instead of growing like
/// `C(x)`.
///
/// # Panics
///
/// Panics if `snr < 0`.
pub fn bpsk_awgn_capacity(snr: f64) -> f64 {
    assert!(snr >= 0.0, "SNR must be non-negative, got {snr}");
    if snr == 0.0 {
        return 0.0;
    }
    let sqrt_snr = snr.sqrt();
    let integrand = |z: f64| {
        let pdf = (-0.5 * z * z).exp() / (2.0 * std::f64::consts::PI).sqrt();
        let exponent = -2.0 * snr - 2.0 * sqrt_snr * z;
        // log2(1 + e^exponent), stable for large |exponent|.
        let log_term = if exponent > 30.0 {
            exponent / std::f64::consts::LN_2
        } else {
            exponent.exp().ln_1p() / std::f64::consts::LN_2
        };
        pdf * log_term
    };
    let loss = bcc_num::quadrature::adaptive_simpson(integrand, -10.0, 10.0, 1e-12, 48);
    (1.0 - loss).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_num::approx_eq;

    #[test]
    fn capacity_reference_points() {
        assert_eq!(awgn_capacity(0.0), 0.0);
        assert!(approx_eq(awgn_capacity(1.0), 1.0, 1e-12));
        assert!(approx_eq(awgn_capacity(15.0), 4.0, 1e-12));
    }

    #[test]
    fn capacity_is_monotone_and_concave() {
        let xs = [0.0, 0.5, 1.0, 2.0, 4.0, 8.0];
        for w in xs.windows(2) {
            assert!(awgn_capacity(w[1]) > awgn_capacity(w[0]));
        }
        // Concavity: midpoint value above chord.
        let (a, b) = (1.0, 9.0);
        let mid = awgn_capacity(0.5 * (a + b));
        let chord = 0.5 * (awgn_capacity(a) + awgn_capacity(b));
        assert!(mid > chord);
    }

    #[test]
    fn mac_sum_dominates_individuals() {
        let (sa, sb) = (3.0, 5.0);
        let sum = mac_sum_capacity(sa, sb);
        assert!(sum > awgn_capacity(sa).max(awgn_capacity(sb)));
        assert!(sum < awgn_capacity(sa) + awgn_capacity(sb));
    }

    #[test]
    fn correlated_mac_limits() {
        let (sa, sb) = (2.0, 8.0);
        // rho = 0 reduces to independent case.
        assert!(approx_eq(
            mac_sum_capacity_correlated(sa, sb, 0.0),
            mac_sum_capacity(sa, sb),
            1e-12
        ));
        // rho = 1 gives coherent combining.
        assert!(approx_eq(
            mac_sum_capacity_correlated(sa, sb, 1.0),
            awgn_capacity(sa + sb + 2.0 * (sa * sb).sqrt()),
            1e-12
        ));
        // Individual term vanishes at full correlation.
        assert_eq!(mac_individual_capacity_correlated(sa, 1.0), 0.0);
    }

    #[test]
    fn two_receiver_combining_beats_single() {
        assert!(two_receiver_capacity(1.0, 2.0) > awgn_capacity(2.0));
        assert!(approx_eq(
            two_receiver_capacity(1.0, 2.0),
            awgn_capacity(3.0),
            1e-12
        ));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_snr_rejected() {
        let _ = awgn_capacity(-0.5);
    }

    #[test]
    fn bpsk_capacity_reference_value() {
        // BI-AWGN capacity at Es/N0 = 0 dB is ≈ 0.4859 bits.
        assert!(approx_eq(bpsk_awgn_capacity(1.0), 0.4859, 2e-3));
        assert_eq!(bpsk_awgn_capacity(0.0), 0.0);
    }

    #[test]
    fn bpsk_capacity_saturates_at_one_bit() {
        let c = bpsk_awgn_capacity(100.0);
        assert!(c > 0.999 && c <= 1.0, "c = {c}");
        // And is monotone.
        assert!(bpsk_awgn_capacity(0.5) < bpsk_awgn_capacity(2.0));
    }

    #[test]
    fn bpsk_below_unconstrained_capacity() {
        // Real AWGN with power snr and unit noise: C = ½·log2(1+snr).
        for &snr in &[0.25f64, 1.0, 4.0, 16.0] {
            let shannon = 0.5 * (1.0 + snr).log2();
            let bpsk = bpsk_awgn_capacity(snr);
            assert!(
                bpsk <= shannon.min(1.0) + 1e-9,
                "snr={snr}: {bpsk} vs {shannon}"
            );
        }
    }

    #[test]
    fn soft_decisions_beat_hard_decisions() {
        // Hard-quantised BPSK over the same real channel is a BSC with
        // p = Q(√snr); soft decoding keeps strictly more information.
        use crate::discrete::Pmf;
        use crate::Dmc;
        for &snr in &[0.5f64, 1.0, 4.0] {
            let p = bcc_num::special::q_function(snr.sqrt());
            let hard = Dmc::bsc(p).mutual_information(&Pmf::uniform(2));
            let soft = bpsk_awgn_capacity(snr);
            assert!(soft > hard, "snr={snr}: soft {soft} <= hard {hard}");
        }
    }
}
