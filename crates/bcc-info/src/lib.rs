//! Information-theoretic primitives for the bidirectional relay workspace.
//!
//! The bounds in Kim–Mitran–Tarokh are stated as mutual-information
//! expressions; this crate supplies the machinery to evaluate them:
//!
//! * [`units`] — explicit bit/nat conversions.
//! * [`entropy`] — entropy, KL divergence and friends over discrete
//!   distributions.
//! * [`discrete`] — validated PMFs, joint PMFs and exact mutual-information
//!   computation for finite alphabets.
//! * [`channels`] — discrete memoryless channels (BSC, BEC, Z-channel,
//!   quantised binary-input AWGN) as stochastic matrices.
//! * [`blahut`] — the Blahut–Arimoto algorithm for DMC capacity, used to
//!   cross-check closed-form capacities and to handle channels with no
//!   closed form.
//! * [`gaussian`] — the AWGN capacity function `C(x) = log2(1+x)` from
//!   Section IV of the paper, plus multiple-access helpers.
//! * [`typicality`] — weak-typicality tests used by the simulation crate to
//!   mirror the paper's jointly-typical decoding arguments at finite block
//!   length.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blahut;
pub mod channels;
pub mod discrete;
pub mod entropy;
pub mod gaussian;
pub mod typicality;
pub mod units;

pub use channels::Dmc;
pub use discrete::{JointPmf, Pmf};
pub use gaussian::awgn_capacity;
