//! Weak typicality at finite block length.
//!
//! The achievability proofs in the paper (Theorems 2, 3, 5) use
//! jointly-typical decoding with ε-weakly-typical sets `A_ε^(ℓ)`. The
//! symbol-level simulator mirrors that style of decoding at small block
//! lengths; this module provides the typicality predicates.

use crate::discrete::{JointPmf, Pmf};

/// Empirical per-symbol self-information of `seq` under `pmf`, in bits:
/// `-(1/n) log2 p(x₁…xₙ)`.
///
/// Returns `+inf` if any symbol has zero probability.
///
/// # Panics
///
/// Panics if `seq` is empty or contains an out-of-alphabet symbol.
pub fn empirical_rate(pmf: &Pmf, seq: &[usize]) -> f64 {
    assert!(!seq.is_empty(), "empty sequence");
    let mut total = 0.0;
    for &s in seq {
        assert!(
            s < pmf.len(),
            "symbol {s} outside alphabet of size {}",
            pmf.len()
        );
        let p = pmf.prob(s);
        if p == 0.0 {
            return f64::INFINITY;
        }
        total -= p.log2();
    }
    let _ = total;
    // Recompute correctly: sum of -log2 p(x_i) over the sequence.
    let sum: f64 = seq.iter().map(|&s| -pmf.prob(s).log2()).sum();
    sum / seq.len() as f64
}

/// `true` if `seq` is ε-weakly typical for `pmf`:
/// `| -(1/n) log2 p(x^n) - H(X) | ≤ ε`.
pub fn is_typical(pmf: &Pmf, seq: &[usize], eps: f64) -> bool {
    (empirical_rate(pmf, seq) - pmf.entropy()).abs() <= eps
}

/// `true` if the pair `(xs, ys)` is jointly ε-weakly typical for `joint`:
/// all three conditions (on `x`, on `y`, and on the pair) must hold, as in
/// the standard definition of the jointly typical set.
///
/// # Panics
///
/// Panics if the sequences have different or zero lengths, or contain
/// out-of-alphabet symbols.
pub fn is_jointly_typical(joint: &JointPmf, xs: &[usize], ys: &[usize], eps: f64) -> bool {
    assert_eq!(xs.len(), ys.len(), "sequence length mismatch");
    assert!(!xs.is_empty(), "empty sequences");
    let n = xs.len() as f64;

    let px = joint.marginal_x();
    let py = joint.marginal_y();
    let hx = crate::entropy::entropy_bits(&px);
    let hy = crate::entropy::entropy_bits(&py);
    let hxy = joint.joint_entropy();

    let mut lx = 0.0;
    let mut ly = 0.0;
    let mut lxy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        assert!(x < joint.nx() && y < joint.ny(), "symbol outside alphabet");
        let pxv = px[x];
        let pyv = py[y];
        let pxyv = joint.prob(x, y);
        if pxv == 0.0 || pyv == 0.0 || pxyv == 0.0 {
            return false;
        }
        lx -= pxv.log2();
        ly -= pyv.log2();
        lxy -= pxyv.log2();
    }
    (lx / n - hx).abs() <= eps && (ly / n - hy).abs() <= eps && (lxy / n - hxy).abs() <= eps
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn sample_iid(pmf: &Pmf, n: usize, rng: &mut StdRng) -> Vec<usize> {
        (0..n)
            .map(|_| {
                let u: f64 = rng.gen();
                let mut acc = 0.0;
                for i in 0..pmf.len() {
                    acc += pmf.prob(i);
                    if u < acc {
                        return i;
                    }
                }
                pmf.len() - 1
            })
            .collect()
    }

    #[test]
    fn uniform_sequences_always_typical() {
        // Under a uniform PMF every sequence has exactly rate log2(k).
        let pmf = Pmf::uniform(4);
        let seq = vec![0, 1, 2, 3, 0, 0, 3];
        assert_eq!(empirical_rate(&pmf, &seq), 2.0);
        assert!(is_typical(&pmf, &seq, 1e-9));
    }

    #[test]
    fn skewed_sequence_not_typical_for_skewed_source() {
        // All-1 sequence under Bernoulli(0.1): rate = -log2(0.1) ≈ 3.32,
        // entropy ≈ 0.469 → far from typical.
        let pmf = Pmf::bernoulli(0.1);
        let seq = vec![1; 50];
        assert!(!is_typical(&pmf, &seq, 0.5));
    }

    #[test]
    fn long_iid_sequences_become_typical_aep() {
        let pmf = Pmf::bernoulli(0.3);
        let mut rng = StdRng::seed_from_u64(11);
        let mut hits = 0;
        let trials = 100;
        for _ in 0..trials {
            let seq = sample_iid(&pmf, 2000, &mut rng);
            if is_typical(&pmf, &seq, 0.05) {
                hits += 1;
            }
        }
        // AEP: overwhelmingly typical at n = 2000.
        assert!(hits >= 95, "only {hits}/{trials} typical");
    }

    #[test]
    fn zero_probability_symbol_is_atypical() {
        let pmf = Pmf::bernoulli(0.0); // symbol 1 has probability 0
        assert_eq!(empirical_rate(&pmf, &[1]), f64::INFINITY);
        assert!(!is_typical(&pmf, &[0, 1, 0], 10.0));
    }

    #[test]
    fn joint_typicality_of_correlated_pairs() {
        // X uniform bit, Y = X through BSC(0.1).
        let input = Pmf::uniform(2);
        let rows = vec![vec![0.9, 0.1], vec![0.1, 0.9]];
        let joint = JointPmf::from_input_and_channel(&input, &rows);
        let mut rng = StdRng::seed_from_u64(3);
        let n = 5000;
        let xs: Vec<usize> = (0..n).map(|_| rng.gen_range(0..2)).collect();
        let ys: Vec<usize> = xs
            .iter()
            .map(|&x| if rng.gen::<f64>() < 0.1 { 1 - x } else { x })
            .collect();
        assert!(is_jointly_typical(&joint, &xs, &ys, 0.05));
        // An independent y-sequence should fail the joint condition.
        let ys_indep: Vec<usize> = (0..n).map(|_| rng.gen_range(0..2)).collect();
        assert!(!is_jointly_typical(&joint, &xs, &ys_indep, 0.05));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let joint = JointPmf::new(2, 2, vec![0.25; 4]).unwrap();
        let _ = is_jointly_typical(&joint, &[0, 1], &[0], 0.1);
    }
}
