//! Bit/nat unit conversions.
//!
//! Everything in the public API of this workspace is measured in **bits per
//! channel use** (the paper's `log2` convention). Internal derivations
//! occasionally produce nats; these helpers make each conversion explicit
//! and greppable instead of scattering `* LN_2` factors around.

use std::f64::consts::LN_2;

/// Converts nats to bits.
///
/// ```
/// assert!((bcc_info::units::nats_to_bits(std::f64::consts::LN_2) - 1.0).abs() < 1e-12);
/// ```
pub fn nats_to_bits(nats: f64) -> f64 {
    nats / LN_2
}

/// Converts bits to nats.
pub fn bits_to_nats(bits: f64) -> f64 {
    bits * LN_2
}

/// A data rate in bits per channel use.
///
/// Thin wrapper used at API boundaries where confusing a rate with, say, an
/// SNR would be easy. Construct with [`Rate::bits`] and read back with
/// [`Rate::as_bits`].
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Rate(f64);

impl Rate {
    /// A rate of zero.
    pub const ZERO: Rate = Rate(0.0);

    /// Creates a rate from bits per channel use.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is negative or NaN.
    pub fn bits(bits: f64) -> Self {
        assert!(bits >= 0.0, "rate must be non-negative, got {bits}");
        Rate(bits)
    }

    /// Creates a rate from nats per channel use.
    pub fn nats(nats: f64) -> Self {
        Rate::bits(nats_to_bits(nats))
    }

    /// Rate in bits per channel use.
    pub fn as_bits(self) -> f64 {
        self.0
    }

    /// Rate in nats per channel use.
    pub fn as_nats(self) -> f64 {
        bits_to_nats(self.0)
    }
}

impl std::ops::Add for Rate {
    type Output = Rate;
    fn add(self, rhs: Rate) -> Rate {
        Rate(self.0 + rhs.0)
    }
}

impl std::iter::Sum for Rate {
    fn sum<I: Iterator<Item = Rate>>(iter: I) -> Rate {
        iter.fold(Rate::ZERO, |a, b| a + b)
    }
}

impl std::fmt::Display for Rate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.4} bit/use", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let r = Rate::bits(1.5);
        assert!((Rate::nats(r.as_nats()).as_bits() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn one_nat_is_1_44_bits() {
        assert!((nats_to_bits(1.0) - std::f64::consts::LOG2_E).abs() < 1e-12);
        assert!((bits_to_nats(1.0) - LN_2).abs() < 1e-12);
    }

    #[test]
    fn rates_add_and_sum() {
        let total: Rate = [0.5, 0.25, 0.25].into_iter().map(Rate::bits).sum();
        assert_eq!(total, Rate::bits(1.0));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_rate_rejected() {
        let _ = Rate::bits(-0.1);
    }

    #[test]
    fn display() {
        assert_eq!(Rate::bits(0.75).to_string(), "0.7500 bit/use");
    }
}
