//! Property-based tests of the information-theory substrate.

use bcc_info::blahut;
use bcc_info::discrete::{JointPmf, Pmf};
use bcc_info::entropy::{entropy_bits, kl_divergence_bits};
use bcc_info::Dmc;
use proptest::prelude::*;

/// Strategy producing a normalised probability vector of length 2..=6.
fn pmf_vec() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.01f64..1.0, 2..=6).prop_map(|mut v| {
        let s: f64 = v.iter().sum();
        for x in &mut v {
            *x /= s;
        }
        v
    })
}

/// Strategy producing a random DMC with the given input count and 2..=5
/// outputs.
fn dmc(inputs: usize) -> impl Strategy<Value = Dmc> {
    (2usize..=5).prop_flat_map(move |outputs| {
        prop::collection::vec(prop::collection::vec(0.01f64..1.0, outputs), inputs).prop_map(
            |rows| {
                let rows = rows
                    .into_iter()
                    .map(|mut r| {
                        let s: f64 = r.iter().sum();
                        for x in &mut r {
                            *x /= s;
                        }
                        // Renormalise exactly against fp drift.
                        let s2: f64 = r.iter().sum();
                        let last = r.len() - 1;
                        r[last] += 1.0 - s2;
                        r
                    })
                    .collect();
                Dmc::new(rows)
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn entropy_bounds(v in pmf_vec()) {
        let h = entropy_bits(&v);
        prop_assert!(h >= -1e-12);
        prop_assert!(h <= (v.len() as f64).log2() + 1e-9, "H = {h} over {} outcomes", v.len());
    }

    #[test]
    fn kl_nonnegative(p in pmf_vec(), q in pmf_vec()) {
        prop_assume!(p.len() == q.len());
        let d = kl_divergence_bits(&p, &q);
        prop_assert!(d >= -1e-12, "Gibbs violated: {d}");
    }

    #[test]
    fn mutual_information_bounds(v in pmf_vec(), ch in dmc(4)) {
        prop_assume!(v.len() <= 4);
        // Pad the input to 4 symbols with zero mass so alphabets line up.
        let mut probs = v.clone();
        probs.resize(4, 0.0);
        let input = Pmf::new(probs).unwrap();
        let mi = ch.mutual_information(&input);
        let hx = input.entropy();
        let hy = entropy_bits(&JointPmf::from_input_and_channel(&input, ch.rows()).marginal_y());
        prop_assert!(mi >= -1e-12);
        prop_assert!(mi <= hx + 1e-9, "I = {mi} > H(X) = {hx}");
        prop_assert!(mi <= hy + 1e-9, "I = {mi} > H(Y) = {hy}");
    }

    #[test]
    fn data_processing_inequality(input_p in 0.05f64..0.95, ch1 in dmc(2)) {
        prop_assume!(ch1.num_outputs() == 2);
        // Cascade with a BSC degrades information.
        let input = Pmf::bernoulli(input_p);
        let direct = ch1.mutual_information(&input);
        let degraded = ch1.cascade(&Dmc::bsc(0.2)).mutual_information(&input);
        prop_assert!(degraded <= direct + 1e-9, "DPI violated: {degraded} > {direct}");
    }

    #[test]
    fn blahut_capacity_dominates_any_input(ch in dmc(3)) {
        let cap = blahut::capacity(&ch, 1e-9, 5000);
        for p in [Pmf::uniform(3), Pmf::new(vec![0.6, 0.3, 0.1]).unwrap()] {
            let mi = ch.mutual_information(&p);
            prop_assert!(
                cap.capacity >= mi - 1e-6,
                "capacity {} below achievable MI {mi}",
                cap.capacity
            );
        }
    }

    #[test]
    fn bsc_capacity_symmetric_in_p(p in 0.0f64..=1.0) {
        let c1 = Dmc::bsc(p).mutual_information(&Pmf::uniform(2));
        let c2 = Dmc::bsc(1.0 - p).mutual_information(&Pmf::uniform(2));
        prop_assert!((c1 - c2).abs() < 1e-9);
    }
}
