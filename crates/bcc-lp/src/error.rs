//! Error type for the LP solver.

use std::error::Error;
use std::fmt;

/// Reasons a linear program cannot be solved to a finite optimum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpError {
    /// The constraint set is empty (phase-1 simplex terminated with a
    /// positive artificial-variable sum).
    Infeasible,
    /// The objective is unbounded over the feasible region (a column with
    /// negative reduced cost has no blocking row in the ratio test).
    Unbounded,
    /// The iteration limit was reached — with Bland's rule this indicates a
    /// numerical-tolerance problem rather than cycling.
    IterationLimit,
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "linear program is infeasible"),
            LpError::Unbounded => write!(f, "linear program is unbounded"),
            LpError::IterationLimit => write!(f, "simplex iteration limit reached"),
        }
    }
}

impl Error for LpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            LpError::Infeasible.to_string(),
            "linear program is infeasible"
        );
        assert_eq!(
            LpError::Unbounded.to_string(),
            "linear program is unbounded"
        );
        assert_eq!(
            LpError::IterationLimit.to_string(),
            "simplex iteration limit reached"
        );
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LpError>();
    }
}
