//! A small dense linear-programming solver (no dependencies beyond the
//! workspace's numerical substrate).
//!
//! In the Gaussian evaluation of the bidirectional relay protocols (Section
//! IV of Kim–Mitran–Tarokh), every rate constraint of Theorems 2–6 is
//! *linear* in the rate pair `(R_a, R_b)` **and** in the phase durations
//! `Δ_ℓ` jointly. Finding optimal time allocations and tracing achievable
//! rate regions therefore reduces to a stream of small linear programs —
//! this crate solves them exactly with a two-phase primal simplex method
//! using Bland's anti-cycling rule.
//!
//! The solver is deliberately dense and simple: the workspace's LPs have at
//! most a dozen variables and constraints, so asymptotics are irrelevant but
//! *robustness* (degeneracy, redundant rows, infeasibility detection) is
//! not.
//!
//! # Example
//!
//! Maximize `3x + 5y` subject to `x ≤ 4`, `2y ≤ 12`, `3x + 2y ≤ 18`
//! (the textbook Wyndor Glass problem; optimum 36 at `(2, 6)`):
//!
//! ```
//! use bcc_lp::{Problem, Relation};
//!
//! # fn main() -> Result<(), bcc_lp::LpError> {
//! let mut p = Problem::maximize(&[3.0, 5.0]);
//! p.subject_to(&[1.0, 0.0], Relation::Le, 4.0);
//! p.subject_to(&[0.0, 2.0], Relation::Le, 12.0);
//! p.subject_to(&[3.0, 2.0], Relation::Le, 18.0);
//! let sol = p.solve()?;
//! assert!((sol.objective - 36.0).abs() < 1e-9);
//! assert!((sol.x[0] - 2.0).abs() < 1e-9);
//! assert!((sol.x[1] - 6.0).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```
//!
//! All decision variables are constrained to be non-negative, which matches
//! every use in this workspace (rates, phase durations, probabilities).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod problem;
mod simplex;
pub mod stats;

pub use error::LpError;
pub use problem::{Problem, Relation, Sense};
pub use simplex::{Solution, Workspace};
pub use stats::LpStats;

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-8, "{a} != {b}");
    }

    #[test]
    fn wyndor_glass() {
        let mut p = Problem::maximize(&[3.0, 5.0]);
        p.subject_to(&[1.0, 0.0], Relation::Le, 4.0);
        p.subject_to(&[0.0, 2.0], Relation::Le, 12.0);
        p.subject_to(&[3.0, 2.0], Relation::Le, 18.0);
        let s = p.solve().expect("feasible");
        assert_close(s.objective, 36.0);
        assert_close(s.x[0], 2.0);
        assert_close(s.x[1], 6.0);
    }

    #[test]
    fn minimization_with_ge() {
        // minimize 0.12x + 0.15y s.t. 60x + 60y >= 300, 12x + 6y >= 36,
        // 10x + 30y >= 90  (classic diet problem; optimum 0.66 at (3, 2)).
        let mut p = Problem::minimize(&[0.12, 0.15]);
        p.subject_to(&[60.0, 60.0], Relation::Ge, 300.0);
        p.subject_to(&[12.0, 6.0], Relation::Ge, 36.0);
        p.subject_to(&[10.0, 30.0], Relation::Ge, 90.0);
        let s = p.solve().expect("feasible");
        assert_close(s.objective, 0.66);
        assert_close(s.x[0], 3.0);
        assert_close(s.x[1], 2.0);
    }

    #[test]
    fn equality_constraint_simplex_share() {
        // maximize x + 2y + 3z s.t. x + y + z = 1  →  z = 1, objective 3.
        let mut p = Problem::maximize(&[1.0, 2.0, 3.0]);
        p.subject_to(&[1.0, 1.0, 1.0], Relation::Eq, 1.0);
        let s = p.solve().expect("feasible");
        assert_close(s.objective, 3.0);
        assert_close(s.x[2], 1.0);
    }

    #[test]
    fn infeasible_detected() {
        let mut p = Problem::maximize(&[1.0]);
        p.subject_to(&[1.0], Relation::Le, 1.0);
        p.subject_to(&[1.0], Relation::Ge, 2.0);
        assert_eq!(p.solve().unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut p = Problem::maximize(&[1.0, 1.0]);
        p.subject_to(&[1.0, -1.0], Relation::Le, 1.0);
        assert_eq!(p.solve().unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn negative_rhs_normalised() {
        // x - y <= -1 with x,y >= 0 means y >= x + 1.
        let mut p = Problem::maximize(&[1.0, -1.0]);
        p.subject_to(&[1.0, -1.0], Relation::Le, -1.0);
        p.subject_to(&[1.0, 0.0], Relation::Le, 5.0);
        p.subject_to(&[0.0, 1.0], Relation::Le, 10.0);
        let s = p.solve().expect("feasible");
        // best is x=5, y=6 → objective -1.
        assert_close(s.objective, -1.0);
    }

    #[test]
    fn degenerate_beale_terminates() {
        // Beale's classic cycling example — Bland's rule must terminate.
        let mut p = Problem::maximize(&[0.75, -150.0, 0.02, -6.0]);
        p.subject_to(&[0.25, -60.0, -1.0 / 25.0, 9.0], Relation::Le, 0.0);
        p.subject_to(&[0.5, -90.0, -1.0 / 50.0, 3.0], Relation::Le, 0.0);
        p.subject_to(&[0.0, 0.0, 1.0, 0.0], Relation::Le, 1.0);
        let s = p.solve().expect("feasible");
        assert_close(s.objective, 0.05);
    }

    #[test]
    fn redundant_equality_rows() {
        // Duplicate equality constraints must not break phase 1.
        let mut p = Problem::maximize(&[1.0, 1.0]);
        p.subject_to(&[1.0, 1.0], Relation::Eq, 1.0);
        p.subject_to(&[1.0, 1.0], Relation::Eq, 1.0);
        p.subject_to(&[2.0, 2.0], Relation::Eq, 2.0);
        let s = p.solve().expect("feasible");
        assert_close(s.objective, 1.0);
    }

    #[test]
    fn zero_objective_is_feasibility_check() {
        let mut p = Problem::maximize(&[0.0, 0.0]);
        p.subject_to(&[1.0, 1.0], Relation::Ge, 1.0);
        p.subject_to(&[1.0, 1.0], Relation::Le, 2.0);
        let s = p.solve().expect("feasible");
        assert_close(s.objective, 0.0);
        let x = s.x;
        assert!(x[0] + x[1] >= 1.0 - 1e-9 && x[0] + x[1] <= 2.0 + 1e-9);
    }

    #[test]
    fn phase_duration_shape_lp() {
        // A miniature of the paper's TDBC sum-rate LP:
        // maximize Ra + Rb over (Ra, Rb, d1, d2, d3):
        //   Ra <= d1 * 2.0              (relay decodes a)
        //   Ra <= d1 * 0.5 + d3 * 1.0   (b decodes a)
        //   Rb <= d2 * 1.5
        //   Rb <= d2 * 0.5 + d3 * 2.0
        //   d1 + d2 + d3 = 1
        let mut p = Problem::maximize(&[1.0, 1.0, 0.0, 0.0, 0.0]);
        p.subject_to(&[1.0, 0.0, -2.0, 0.0, 0.0], Relation::Le, 0.0);
        p.subject_to(&[1.0, 0.0, -0.5, 0.0, -1.0], Relation::Le, 0.0);
        p.subject_to(&[0.0, 1.0, 0.0, -1.5, 0.0], Relation::Le, 0.0);
        p.subject_to(&[0.0, 1.0, 0.0, -0.5, -2.0], Relation::Le, 0.0);
        p.subject_to(&[0.0, 0.0, 1.0, 1.0, 1.0], Relation::Eq, 1.0);
        let s = p.solve().expect("feasible");
        // Durations sum to 1 and rates satisfy constraints.
        assert_close(s.x[2] + s.x[3] + s.x[4], 1.0);
        assert!(s.objective > 0.0);
        assert!(s.x[0] <= 2.0 * s.x[2] + 1e-9);
    }
}
