//! LP problem construction (the user-facing builder).

use crate::error::LpError;
use crate::simplex::{self, Solution, Workspace};

/// Direction of optimisation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sense {
    /// Maximize the objective.
    Maximize,
    /// Minimize the objective.
    Minimize,
}

/// Relation of a linear constraint row to its right-hand side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Relation {
    /// `a·x ≤ b`
    Le,
    /// `a·x ≥ b`
    Ge,
    /// `a·x = b`
    Eq,
}

#[derive(Debug, Clone)]
pub(crate) struct Row {
    pub coeffs: Vec<f64>,
    pub rel: Relation,
    pub rhs: f64,
}

/// A linear program over non-negative variables.
///
/// Build with [`Problem::maximize`] / [`Problem::minimize`], add constraint
/// rows with [`Problem::subject_to`], then call [`Problem::solve`]. The
/// builder is non-consuming, so parameter sweeps can clone a template
/// problem and append scenario-specific rows.
#[derive(Debug, Clone)]
pub struct Problem {
    sense: Sense,
    objective: Vec<f64>,
    rows: Vec<Row>,
}

impl Problem {
    /// Creates a maximization problem with the given objective coefficients
    /// (one per decision variable; all variables are `≥ 0`).
    ///
    /// # Panics
    ///
    /// Panics if `objective` is empty or contains non-finite values.
    pub fn maximize(objective: &[f64]) -> Self {
        Problem::new(Sense::Maximize, objective)
    }

    /// Creates a minimization problem. See [`Problem::maximize`].
    pub fn minimize(objective: &[f64]) -> Self {
        Problem::new(Sense::Minimize, objective)
    }

    /// Creates a problem with an explicit [`Sense`].
    ///
    /// # Panics
    ///
    /// Panics if `objective` is empty or contains non-finite values.
    pub fn new(sense: Sense, objective: &[f64]) -> Self {
        assert!(
            !objective.is_empty(),
            "objective must have at least one variable"
        );
        assert!(
            objective.iter().all(|c| c.is_finite()),
            "objective coefficients must be finite"
        );
        Problem {
            sense,
            objective: objective.to_vec(),
            rows: Vec::new(),
        }
    }

    /// Number of decision variables.
    pub fn num_vars(&self) -> usize {
        self.objective.len()
    }

    /// Number of constraint rows added so far.
    pub fn num_constraints(&self) -> usize {
        self.rows.len()
    }

    /// Adds the constraint `coeffs · x  rel  rhs`.
    ///
    /// Returns `&mut self` so constraints can be chained.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len()` differs from the number of variables, or if
    /// any coefficient or the right-hand side is non-finite.
    pub fn subject_to(&mut self, coeffs: &[f64], rel: Relation, rhs: f64) -> &mut Self {
        assert_eq!(
            coeffs.len(),
            self.objective.len(),
            "constraint arity mismatch: {} coefficients for {} variables",
            coeffs.len(),
            self.objective.len()
        );
        assert!(
            coeffs.iter().all(|c| c.is_finite()) && rhs.is_finite(),
            "constraint entries must be finite"
        );
        self.rows.push(Row {
            coeffs: coeffs.to_vec(),
            rel,
            rhs,
        });
        self
    }

    /// Solves the program with a throwaway [`Workspace`].
    ///
    /// # Errors
    ///
    /// * [`LpError::Infeasible`] — no point satisfies all constraints.
    /// * [`LpError::Unbounded`] — the objective can grow without limit.
    /// * [`LpError::IterationLimit`] — numerical breakdown (should not occur
    ///   on well-scaled inputs).
    pub fn solve(&self) -> Result<Solution, LpError> {
        self.solve_with(&mut Workspace::new())
    }

    /// Solves the program reusing `ws` for all scratch memory.
    ///
    /// Batch workloads (parameter sweeps, Monte-Carlo fading trials) should
    /// keep one workspace alive across solves: the tableau and reduced-cost
    /// buffers are then allocated once instead of once per LP.
    ///
    /// # Errors
    ///
    /// Same as [`Problem::solve`].
    pub fn solve_with(&self, ws: &mut Workspace) -> Result<Solution, LpError> {
        // Internally everything is a maximization; flip the sign for
        // minimization and flip the optimum back afterwards.
        let obj: Vec<f64> = match self.sense {
            Sense::Maximize => self.objective.clone(),
            Sense::Minimize => self.objective.iter().map(|c| -c).collect(),
        };
        let mut sol = simplex::solve_max(&obj, &self.rows, ws)?;
        if self.sense == Sense::Minimize {
            sol.objective = -sol.objective;
        }
        Ok(sol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_counts() {
        let mut p = Problem::maximize(&[1.0, 2.0]);
        assert_eq!(p.num_vars(), 2);
        p.subject_to(&[1.0, 0.0], Relation::Le, 1.0)
            .subject_to(&[0.0, 1.0], Relation::Le, 1.0);
        assert_eq!(p.num_constraints(), 2);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_mismatch_panics() {
        let mut p = Problem::maximize(&[1.0, 2.0]);
        p.subject_to(&[1.0], Relation::Le, 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one variable")]
    fn empty_objective_panics() {
        let _ = Problem::maximize(&[]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_rhs_panics() {
        let mut p = Problem::maximize(&[1.0]);
        p.subject_to(&[1.0], Relation::Le, f64::NAN);
    }

    #[test]
    fn clone_for_sweep() {
        let mut template = Problem::maximize(&[1.0, 1.0]);
        template.subject_to(&[1.0, 1.0], Relation::Le, 1.0);
        for cap in [0.2, 0.5, 0.9] {
            let mut p = template.clone();
            p.subject_to(&[1.0, 0.0], Relation::Le, cap);
            let s = p.solve().expect("feasible");
            assert!((s.objective - 1.0).abs() < 1e-9);
        }
    }
}
