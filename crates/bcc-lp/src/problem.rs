//! LP problem construction (the user-facing builder).

use crate::error::LpError;
use crate::simplex::{self, Solution, Workspace};

/// Direction of optimisation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sense {
    /// Maximize the objective.
    Maximize,
    /// Minimize the objective.
    Minimize,
}

/// Relation of a linear constraint row to its right-hand side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Relation {
    /// `a·x ≤ b`
    Le,
    /// `a·x ≥ b`
    Ge,
    /// `a·x = b`
    Eq,
}

#[derive(Debug, Clone)]
pub(crate) struct Row {
    pub coeffs: Vec<f64>,
    pub rel: Relation,
    pub rhs: f64,
}

/// A linear program over non-negative variables.
///
/// Build with [`Problem::maximize`] / [`Problem::minimize`], add constraint
/// rows with [`Problem::subject_to`], then call [`Problem::solve`]. The
/// builder is non-consuming, so parameter sweeps can clone a template
/// problem and append scenario-specific rows. Batch drivers that rebuild a
/// same-shaped program per grid point should keep one `Problem` alive and
/// [`Problem::reset`] it instead: row buffers are pooled, so steady-state
/// rebuilding performs no heap allocation.
#[derive(Debug, Clone)]
pub struct Problem {
    sense: Sense,
    objective: Vec<f64>,
    rows: Vec<Row>,
    /// Retired row buffers recycled by [`Problem::reset`] +
    /// [`Problem::subject_to`].
    spare: Vec<Row>,
}

impl Problem {
    /// Creates a maximization problem with the given objective coefficients
    /// (one per decision variable; all variables are `≥ 0`).
    ///
    /// # Panics
    ///
    /// Panics if `objective` is empty or contains non-finite values.
    pub fn maximize(objective: &[f64]) -> Self {
        Problem::new(Sense::Maximize, objective)
    }

    /// Creates a minimization problem. See [`Problem::maximize`].
    pub fn minimize(objective: &[f64]) -> Self {
        Problem::new(Sense::Minimize, objective)
    }

    /// Creates a problem with an explicit [`Sense`].
    ///
    /// # Panics
    ///
    /// Panics if `objective` is empty or contains non-finite values.
    pub fn new(sense: Sense, objective: &[f64]) -> Self {
        assert!(
            !objective.is_empty(),
            "objective must have at least one variable"
        );
        assert!(
            objective.iter().all(|c| c.is_finite()),
            "objective coefficients must be finite"
        );
        Problem {
            sense,
            objective: objective.to_vec(),
            rows: Vec::new(),
            spare: Vec::new(),
        }
    }

    /// Clears the program back to an empty constraint system with a new
    /// sense and objective, **recycling** the row buffers — the zero-
    /// allocation rebuild path for batch drivers that solve one same-shaped
    /// program per grid point.
    ///
    /// # Panics
    ///
    /// Panics if `objective` is empty or contains non-finite values (same
    /// contract as [`Problem::new`]).
    pub fn reset(&mut self, sense: Sense, objective: &[f64]) -> &mut Self {
        assert!(
            !objective.is_empty(),
            "objective must have at least one variable"
        );
        assert!(
            objective.iter().all(|c| c.is_finite()),
            "objective coefficients must be finite"
        );
        self.sense = sense;
        self.objective.clear();
        self.objective.extend_from_slice(objective);
        self.spare.append(&mut self.rows);
        self
    }

    /// Number of decision variables.
    pub fn num_vars(&self) -> usize {
        self.objective.len()
    }

    /// Number of constraint rows added so far.
    pub fn num_constraints(&self) -> usize {
        self.rows.len()
    }

    /// Adds the constraint `coeffs · x  rel  rhs`.
    ///
    /// Returns `&mut self` so constraints can be chained.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len()` differs from the number of variables, or if
    /// any coefficient or the right-hand side is non-finite.
    pub fn subject_to(&mut self, coeffs: &[f64], rel: Relation, rhs: f64) -> &mut Self {
        assert_eq!(
            coeffs.len(),
            self.objective.len(),
            "constraint arity mismatch: {} coefficients for {} variables",
            coeffs.len(),
            self.objective.len()
        );
        assert!(
            coeffs.iter().all(|c| c.is_finite()) && rhs.is_finite(),
            "constraint entries must be finite"
        );
        let mut row = self.spare.pop().unwrap_or(Row {
            coeffs: Vec::new(),
            rel,
            rhs,
        });
        row.coeffs.clear();
        row.coeffs.extend_from_slice(coeffs);
        row.rel = rel;
        row.rhs = rhs;
        self.rows.push(row);
        self
    }

    /// Solves the program with a throwaway [`Workspace`].
    ///
    /// # Errors
    ///
    /// * [`LpError::Infeasible`] — no point satisfies all constraints.
    /// * [`LpError::Unbounded`] — the objective can grow without limit.
    /// * [`LpError::IterationLimit`] — numerical breakdown (should not occur
    ///   on well-scaled inputs).
    pub fn solve(&self) -> Result<Solution, LpError> {
        self.solve_with(&mut Workspace::new())
    }

    /// Solves the program reusing `ws` for all scratch memory.
    ///
    /// Batch workloads (parameter sweeps, Monte-Carlo fading trials) should
    /// keep one workspace alive across solves: the tableau and reduced-cost
    /// buffers are then allocated once instead of once per LP.
    ///
    /// # Errors
    ///
    /// Same as [`Problem::solve`].
    pub fn solve_with(&self, ws: &mut Workspace) -> Result<Solution, LpError> {
        let mut out = Solution::default();
        simplex::solve_sense_into(self.sense, &self.objective, &self.rows, ws, false, &mut out)?;
        Ok(out)
    }

    /// Solves the program with the workspace's **warm-start fast path**:
    /// if a recent solve through `ws` had the same shape (variable count
    /// and per-row relation pattern) and its optimal basis is still — and
    /// strictly — optimal for this data, the solve skips the simplex
    /// entirely and prices that basis instead.
    ///
    /// The result is always identical to [`Problem::solve_with`]: warm
    /// acceptance is restricted to strictly nondegenerate optima, where
    /// the optimal basis is unique, so the fast path cannot steer the
    /// answer (see the `simplex` module docs for the argument). This is
    /// what makes it safe inside batch drivers whose work-stealing
    /// scheduler hands each worker a nondeterministic slice of the grid.
    ///
    /// # Errors
    ///
    /// Same as [`Problem::solve`].
    pub fn solve_warm_with(&self, ws: &mut Workspace) -> Result<Solution, LpError> {
        let mut out = Solution::default();
        self.solve_warm_into(ws, &mut out)?;
        Ok(out)
    }

    /// [`Problem::solve_warm_with`] writing into a caller-owned
    /// [`Solution`], so steady-state batch loops allocate nothing per
    /// solve.
    ///
    /// # Errors
    ///
    /// Same as [`Problem::solve`].
    pub fn solve_warm_into(&self, ws: &mut Workspace, out: &mut Solution) -> Result<(), LpError> {
        simplex::solve_sense_into(self.sense, &self.objective, &self.rows, ws, true, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_counts() {
        let mut p = Problem::maximize(&[1.0, 2.0]);
        assert_eq!(p.num_vars(), 2);
        p.subject_to(&[1.0, 0.0], Relation::Le, 1.0)
            .subject_to(&[0.0, 1.0], Relation::Le, 1.0);
        assert_eq!(p.num_constraints(), 2);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_mismatch_panics() {
        let mut p = Problem::maximize(&[1.0, 2.0]);
        p.subject_to(&[1.0], Relation::Le, 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one variable")]
    fn empty_objective_panics() {
        let _ = Problem::maximize(&[]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_rhs_panics() {
        let mut p = Problem::maximize(&[1.0]);
        p.subject_to(&[1.0], Relation::Le, f64::NAN);
    }

    #[test]
    fn clone_for_sweep() {
        let mut template = Problem::maximize(&[1.0, 1.0]);
        template.subject_to(&[1.0, 1.0], Relation::Le, 1.0);
        for cap in [0.2, 0.5, 0.9] {
            let mut p = template.clone();
            p.subject_to(&[1.0, 0.0], Relation::Le, cap);
            let s = p.solve().expect("feasible");
            assert!((s.objective - 1.0).abs() < 1e-9);
        }
    }
}
