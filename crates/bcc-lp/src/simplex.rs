//! Two-phase dense primal simplex with Bland's rule.
//!
//! The implementation follows the classic tableau formulation:
//!
//! 1. Normalise every row to a non-negative right-hand side.
//! 2. Add a slack variable per `≤` row, a surplus variable per `≥` row, and
//!    an artificial variable per `≥`/`=` row.
//! 3. **Phase 1** minimises the sum of artificials; a positive optimum means
//!    the program is infeasible. Artificials stuck in the basis at level
//!    zero are pivoted out (or their rows dropped as redundant).
//! 4. **Phase 2** optimises the true objective with artificial columns
//!    barred from entering.
//!
//! Bland's smallest-index rule guarantees termination even on degenerate
//! problems (e.g. the Beale cycling example in the crate tests), at the cost
//! of a few extra pivots — irrelevant at this problem scale.
//!
//! All scratch memory (the tableau, the basis, the reduced-cost rows) lives
//! in a caller-supplied [`Workspace`] so batched workloads — the `Scenario`
//! evaluator in `bcc-core` solves thousands of near-identical LPs per sweep
//! — pay for the buffers once instead of once per solve.

use crate::error::LpError;
use crate::problem::{Relation, Row};

/// Numerical tolerance for reduced costs, ratio tests and feasibility.
const TOL: f64 = 1e-9;
/// Hard pivot budget; Bland's rule terminates long before this on any sane
/// input, so hitting it signals numerical breakdown.
const MAX_PIVOTS: usize = 100_000;

/// An optimal LP solution.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Optimal values of the decision variables (structural variables only,
    /// in the order they were declared).
    pub x: Vec<f64>,
    /// Objective value at `x`, in the problem's original sense.
    pub objective: f64,
    /// Total simplex pivots across both phases (diagnostic).
    pub pivots: usize,
}

/// Reusable solver scratch memory.
///
/// A default-constructed workspace is empty; buffers grow to fit the first
/// problem solved through it and are reused (not shrunk) afterwards. One
/// workspace serves any number of sequential solves of any sizes; it is
/// `Send`, so batch drivers can move it into worker threads.
#[derive(Debug, Default)]
pub struct Workspace {
    /// Tableau rows, each `ncols + 1` wide (the last column is the RHS).
    a: Vec<Vec<f64>>,
    /// Spare tableau rows retained from earlier, larger solves.
    spare: Vec<Vec<f64>>,
    /// Basic variable (column index) of each row.
    basis: Vec<usize>,
    /// Phase-2 reduced-cost row.
    obj: Vec<f64>,
    /// Phase-1 reduced-cost row.
    w: Vec<f64>,
    /// Per-row effective relation after RHS sign normalisation.
    rels: Vec<Relation>,
}

impl Workspace {
    /// Creates an empty workspace.
    pub fn new() -> Self {
        Workspace::default()
    }
}

struct Tableau<'ws> {
    /// `rows × cols` coefficient grid; the last column is the RHS.
    a: &'ws mut Vec<Vec<f64>>,
    /// Overflow store for rows dropped as redundant (keeps their buffers).
    spare: &'ws mut Vec<Vec<f64>>,
    /// Basic variable (column index) of each row.
    basis: &'ws mut Vec<usize>,
    /// Number of columns excluding the RHS.
    ncols: usize,
    /// Column index where artificial variables start (`== ncols` if none).
    art_start: usize,
    pivots: usize,
}

impl Tableau<'_> {
    fn rhs(&self, r: usize) -> f64 {
        self.a[r][self.ncols]
    }

    /// Gauss–Jordan pivot on (`row`, `col`), updating `extra` objective rows
    /// alongside the constraint rows.
    fn pivot(&mut self, row: usize, col: usize, extra: &mut [&mut Vec<f64>]) {
        let piv = self.a[row][col];
        debug_assert!(piv.abs() > TOL, "pivot on near-zero element");
        let inv = 1.0 / piv;
        for v in self.a[row].iter_mut() {
            *v *= inv;
        }
        // Make the pivot element exactly 1 to limit drift.
        self.a[row][col] = 1.0;
        let pivot_row = std::mem::take(&mut self.a[row]);
        for (r, arow) in self.a.iter_mut().enumerate() {
            if r == row {
                continue;
            }
            let factor = arow[col];
            if factor == 0.0 {
                continue;
            }
            for (v, p) in arow.iter_mut().zip(&pivot_row) {
                *v -= factor * p;
            }
            arow[col] = 0.0;
        }
        for orow in extra.iter_mut() {
            let factor = orow[col];
            if factor == 0.0 {
                continue;
            }
            for (v, p) in orow.iter_mut().zip(&pivot_row) {
                *v -= factor * p;
            }
            orow[col] = 0.0;
        }
        self.a[row] = pivot_row;
        self.basis[row] = col;
        self.pivots += 1;
    }

    /// Bland ratio test: smallest non-negative ratio, ties broken by the
    /// smallest basic-variable index. Returns `None` if the column is
    /// unbounded below.
    fn ratio_test(&self, col: usize) -> Option<usize> {
        let mut best: Option<(f64, usize, usize)> = None; // (ratio, basis var, row)
        for r in 0..self.basis.len() {
            let coef = self.a[r][col];
            if coef > TOL {
                let ratio = self.rhs(r) / coef;
                let key = (ratio, self.basis[r]);
                match best {
                    None => best = Some((key.0, key.1, r)),
                    Some((br, bv, _)) => {
                        if ratio < br - TOL || (ratio < br + TOL && self.basis[r] < bv) {
                            best = Some((key.0, key.1, r));
                        }
                    }
                }
            }
        }
        best.map(|(_, _, r)| r)
    }

    /// Runs simplex iterations on the objective row `obj` (reduced-cost
    /// convention: entry `< -TOL` means the column improves a maximization).
    /// Columns `>= col_limit` are barred from entering.
    fn optimize(&mut self, obj: &mut Vec<f64>, col_limit: usize) -> Result<(), LpError> {
        loop {
            if self.pivots > MAX_PIVOTS {
                return Err(LpError::IterationLimit);
            }
            // Bland entering rule: smallest index with negative reduced cost.
            let entering = (0..col_limit).find(|&j| obj[j] < -TOL);
            let Some(col) = entering else {
                return Ok(());
            };
            let Some(row) = self.ratio_test(col) else {
                return Err(LpError::Unbounded);
            };
            self.pivot(row, col, &mut [&mut *obj]);
        }
    }
}

/// Resizes `buf` to `rows` rows of `width` zeros, reusing prior row
/// allocations (including rows parked in `spare`).
fn reset_grid(buf: &mut Vec<Vec<f64>>, spare: &mut Vec<Vec<f64>>, rows: usize, width: usize) {
    if buf.len() > rows {
        spare.extend(buf.drain(rows..));
    }
    while buf.len() < rows {
        buf.push(spare.pop().unwrap_or_default());
    }
    for row in buf.iter_mut() {
        row.clear();
        row.resize(width, 0.0);
    }
}

/// Solves `maximize c·x  s.t. rows, x ≥ 0` using `ws` for scratch memory.
pub(crate) fn solve_max(c: &[f64], rows: &[Row], ws: &mut Workspace) -> Result<Solution, LpError> {
    let nstruct = c.len();
    // Classify rows (after RHS sign normalisation) and count aux columns.
    let mut n_slack = 0;
    let mut n_art = 0;
    ws.rels.clear();
    for r in rows {
        let mut rel = r.rel;
        if r.rhs < 0.0 {
            rel = match rel {
                Relation::Le => Relation::Ge,
                Relation::Ge => Relation::Le,
                Relation::Eq => Relation::Eq,
            };
        }
        match rel {
            Relation::Le => n_slack += 1,
            Relation::Ge => {
                n_slack += 1;
                n_art += 1;
            }
            Relation::Eq => n_art += 1,
        }
        ws.rels.push(rel);
    }

    let slack_start = nstruct;
    let art_start = nstruct + n_slack;
    let ncols = nstruct + n_slack + n_art;
    let m = rows.len();

    reset_grid(&mut ws.a, &mut ws.spare, m, ncols + 1);
    ws.basis.clear();
    ws.basis.resize(m, usize::MAX);
    let mut t = Tableau {
        a: &mut ws.a,
        spare: &mut ws.spare,
        basis: &mut ws.basis,
        ncols,
        art_start,
        pivots: 0,
    };

    let mut next_slack = slack_start;
    let mut next_art = art_start;
    for (i, row) in rows.iter().enumerate() {
        let flip = row.rhs < 0.0;
        let sign = if flip { -1.0 } else { 1.0 };
        for (dst, &src) in t.a[i][..nstruct].iter_mut().zip(&row.coeffs) {
            *dst = sign * src;
        }
        t.a[i][ncols] = sign * row.rhs;
        match ws.rels[i] {
            Relation::Le => {
                t.a[i][next_slack] = 1.0;
                t.basis[i] = next_slack;
                next_slack += 1;
            }
            Relation::Ge => {
                t.a[i][next_slack] = -1.0;
                next_slack += 1;
                t.a[i][next_art] = 1.0;
                t.basis[i] = next_art;
                next_art += 1;
            }
            Relation::Eq => {
                t.a[i][next_art] = 1.0;
                t.basis[i] = next_art;
                next_art += 1;
            }
        }
    }

    // ---- Phase 1: minimise the artificial sum (skip if no artificials).
    if n_art > 0 {
        // Maximize -(sum of artificials): reduced-cost row starts as
        // +1 on artificial columns, then price out the artificial basis.
        let w = &mut ws.w;
        w.clear();
        w.resize(ncols + 1, 0.0);
        for wj in w[art_start..ncols].iter_mut() {
            *wj = 1.0;
        }
        for (r, &b) in t.basis.iter().enumerate() {
            if b >= art_start {
                for (wj, aj) in w.iter_mut().zip(t.a[r].iter()) {
                    *wj -= aj;
                }
            }
        }
        // Artificials may not re-enter during phase 1 either.
        t.optimize(w, art_start)?;
        let infeas = -w[ncols];
        if infeas > 1e-7 {
            return Err(LpError::Infeasible);
        }
        // Drive remaining zero-level artificials out of the basis.
        let mut r = 0;
        while r < t.basis.len() {
            if t.basis[r] >= t.art_start {
                // Find any non-artificial column with a nonzero entry.
                let col = (0..t.art_start).find(|&j| t.a[r][j].abs() > 1e-7);
                match col {
                    Some(j) => {
                        t.pivot(r, j, &mut [&mut *w]);
                        r += 1;
                    }
                    None => {
                        // Redundant row: every structural/slack coefficient is
                        // ~0 and the RHS is ~0 (else phase 1 would be
                        // positive). Drop it (parking the buffer for reuse).
                        let dropped = t.a.remove(r);
                        t.spare.push(dropped);
                        t.basis.remove(r);
                    }
                }
            } else {
                r += 1;
            }
        }
    }

    // ---- Phase 2: optimise the true objective.
    let obj = &mut ws.obj;
    obj.clear();
    obj.resize(ncols + 1, 0.0);
    for (j, &cj) in c.iter().enumerate() {
        obj[j] = -cj;
    }
    // Price out basic variables with nonzero objective coefficients.
    for (r, &b) in t.basis.iter().enumerate() {
        if obj[b] != 0.0 {
            let factor = obj[b];
            for (oj, aj) in obj.iter_mut().zip(t.a[r].iter()) {
                *oj -= factor * aj;
            }
            obj[b] = 0.0;
        }
    }
    t.optimize(obj, t.art_start)?;

    // Extract structural solution.
    let mut x = vec![0.0; nstruct];
    for (r, &b) in t.basis.iter().enumerate() {
        if b < nstruct {
            x[b] = t.rhs(r).max(0.0);
        }
    }
    let objective = c.iter().zip(&x).map(|(ci, xi)| ci * xi).sum();
    Ok(Solution {
        x,
        objective,
        pivots: t.pivots,
    })
}

#[cfg(test)]
mod tests {
    use crate::problem::{Problem, Relation};
    use crate::Workspace;

    #[test]
    fn pivots_reported() {
        let mut p = Problem::maximize(&[1.0, 1.0]);
        p.subject_to(&[1.0, 0.0], Relation::Le, 1.0);
        p.subject_to(&[0.0, 1.0], Relation::Le, 1.0);
        let s = p.solve().expect("feasible");
        assert!(s.pivots >= 2);
        assert!((s.objective - 2.0).abs() < 1e-9);
    }

    #[test]
    fn solution_is_feasible_and_optimal_on_simplex_face() {
        // maximize x0 on the probability simplex of dim 4.
        let mut p = Problem::maximize(&[1.0, 0.0, 0.0, 0.0]);
        p.subject_to(&[1.0, 1.0, 1.0, 1.0], Relation::Eq, 1.0);
        let s = p.solve().expect("feasible");
        assert!((s.objective - 1.0).abs() < 1e-9);
        assert!((s.x[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn all_relations_mixed() {
        // maximize x + y s.t. x + y <= 10, x >= 2, y = 3 → x=7,y=3.
        let mut p = Problem::maximize(&[1.0, 1.0]);
        p.subject_to(&[1.0, 1.0], Relation::Le, 10.0);
        p.subject_to(&[1.0, 0.0], Relation::Ge, 2.0);
        p.subject_to(&[0.0, 1.0], Relation::Eq, 3.0);
        let s = p.solve().expect("feasible");
        assert!((s.objective - 10.0).abs() < 1e-9);
        assert!((s.x[0] - 7.0).abs() < 1e-9);
        assert!((s.x[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn ge_bound_binds_from_below() {
        // minimize x s.t. x >= 4.25.
        let mut p = Problem::minimize(&[1.0]);
        p.subject_to(&[1.0], Relation::Ge, 4.25);
        let s = p.solve().expect("feasible");
        assert!((s.objective - 4.25).abs() < 1e-9);
    }

    #[test]
    fn zero_rhs_equality() {
        // maximize x s.t. x - y = 0, y <= 2 → x = 2.
        let mut p = Problem::maximize(&[1.0, 0.0]);
        p.subject_to(&[1.0, -1.0], Relation::Eq, 0.0);
        p.subject_to(&[0.0, 1.0], Relation::Le, 2.0);
        let s = p.solve().expect("feasible");
        assert!((s.objective - 2.0).abs() < 1e-9);
    }

    #[test]
    fn workspace_reuse_across_shapes_matches_fresh_solves() {
        // Solving problems of different sizes through one workspace must
        // give identical results to fresh per-solve workspaces.
        let mut ws = Workspace::new();
        let problems: Vec<Problem> = (1..6)
            .map(|k| {
                let n = k + 1;
                let mut p = Problem::maximize(&vec![1.0; n]);
                p.subject_to(&vec![1.0; n], Relation::Eq, k as f64);
                for j in 0..n {
                    let mut row = vec![0.0; n];
                    row[j] = 1.0;
                    p.subject_to(&row, Relation::Le, 1.0);
                }
                p
            })
            .collect();
        // Interleave growing and shrinking problem sizes.
        for &i in &[0usize, 4, 1, 3, 0, 2, 4, 0] {
            let reused = problems[i].solve_with(&mut ws).expect("feasible");
            let fresh = problems[i].solve().expect("feasible");
            assert_eq!(reused.x, fresh.x);
            assert_eq!(reused.objective, fresh.objective);
        }
    }

    #[test]
    fn workspace_reuse_after_infeasible_and_redundant_rows() {
        let mut ws = Workspace::new();
        let mut bad = Problem::maximize(&[1.0]);
        bad.subject_to(&[1.0], Relation::Le, 1.0);
        bad.subject_to(&[1.0], Relation::Ge, 2.0);
        assert!(bad.solve_with(&mut ws).is_err());

        // Redundant equalities shrink the tableau mid-solve; the workspace
        // must recover for the next problem.
        let mut red = Problem::maximize(&[1.0, 1.0]);
        red.subject_to(&[1.0, 1.0], Relation::Eq, 1.0);
        red.subject_to(&[1.0, 1.0], Relation::Eq, 1.0);
        let s = red.solve_with(&mut ws).expect("feasible");
        assert!((s.objective - 1.0).abs() < 1e-9);

        let mut ok = Problem::maximize(&[2.0]);
        ok.subject_to(&[1.0], Relation::Le, 3.0);
        let s = ok.solve_with(&mut ws).expect("feasible");
        assert!((s.objective - 6.0).abs() < 1e-9);
    }
}
